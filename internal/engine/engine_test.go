package engine_test

import (
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// referenceReach is the pre-refactor product BFS kept verbatim as the
// test-only reference implementation: it explores (node, NFA-state-set)
// configurations keyed by strings and regroups edge labels at every visited
// node. The engine's integer-interned Reach must agree with it exactly.
func referenceReach(db *graph.DB, m *automata.NFA, src int, forward bool) []int {
	type cfg struct {
		node int
		set  string
	}
	start := m.EpsClosure(m.Start())
	seen := map[cfg]bool{}
	var hits []int
	hitSet := map[int]bool{}
	queue := []struct {
		node int
		set  automata.StateSet
	}{{src, start}}
	seen[cfg{src, start.Key()}] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if m.ContainsFinal(cur.set) && !hitSet[cur.node] {
			hitSet[cur.node] = true
			hits = append(hits, cur.node)
		}
		var edges []graph.Edge
		if forward {
			edges = db.Out(cur.node)
		} else {
			edges = db.In(cur.node)
		}
		bySym := map[rune][]int{}
		for _, e := range edges {
			if forward {
				bySym[e.Label] = append(bySym[e.Label], e.To)
			} else {
				bySym[e.Label] = append(bySym[e.Label], e.From)
			}
		}
		for sym, targets := range bySym {
			next := m.Step(cur.set, int32(sym))
			if len(next) == 0 {
				continue
			}
			k := next.Key()
			for _, v := range targets {
				c := cfg{v, k}
				if !seen[c] {
					seen[c] = true
					queue = append(queue, struct {
						node int
						set  automata.StateSet
					}{v, next})
				}
			}
		}
	}
	// The reference collected hits in BFS order; Reach returns them sorted.
	sortInts(hits)
	return hits
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// reverseNFA mirrors the engine-side reversal used for backward searches.
func reverseNFA(m *automata.NFA) *automata.NFA {
	r := automata.New(m.NumStates() + 1)
	newStart := m.NumStates()
	r.SetStart(newStart)
	for p := 0; p < m.NumStates(); p++ {
		for _, t := range m.Transitions(p) {
			r.AddTr(t.To, t.Label, p)
		}
		if m.IsFinal(p) {
			r.AddTr(newStart, automata.Epsilon, p)
		}
	}
	r.SetFinal(m.Start(), true)
	return r
}

// randNode generates a random classical regex AST over letters.
func randNode(r interface{ Intn(int) int }, letters string, depth int) xregex.Node {
	if depth <= 0 {
		return xregex.Word(string(letters[r.Intn(len(letters))]))
	}
	switch r.Intn(8) {
	case 0:
		return &xregex.Cat{Kids: []xregex.Node{
			randNode(r, letters, depth-1), randNode(r, letters, depth-1),
		}}
	case 1:
		return &xregex.Alt{Kids: []xregex.Node{
			randNode(r, letters, depth-1), randNode(r, letters, depth-1),
		}}
	case 2:
		return &xregex.Star{Kid: randNode(r, letters, depth-1)}
	case 3:
		return &xregex.Plus{Kid: randNode(r, letters, depth-1)}
	case 4:
		return &xregex.Opt{Kid: randNode(r, letters, depth-1)}
	case 5:
		return xregex.Word("")
	default:
		return xregex.Word(string(letters[r.Intn(len(letters))]))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReachAgreesWithReference is the differential property test of the
// refactor: on randomized graphs and regexes, the integer-interned engine
// must compute exactly the same reachability sets as the legacy map-based
// BFS, forward and backward, from every source.
func TestReachAgreesWithReference(t *testing.T) {
	const letters = "abc"
	for seed := int64(0); seed < 40; seed++ {
		rng := workload.NewRNG(seed*77 + 13)
		db := workload.Random(seed, 4+rng.Intn(8), 6+rng.Intn(20), letters)
		n := randNode(rng, letters, 1+rng.Intn(3))
		m, err := xregex.Compile(n, []rune(letters))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ix := db.Index()
		fc := automata.NewSubsetCache(m)
		rm := reverseNFA(m)
		rc := automata.NewSubsetCache(rm)
		for src := 0; src < db.NumNodes(); src++ {
			got := engine.Reach(ix, fc, src, true)
			want := referenceReach(db, m, src, true)
			if !equalInts(got, want) {
				t.Fatalf("seed %d regex %s: forward Reach(%d) = %v, reference %v",
					seed, xregex.String(n), src, got, want)
			}
			got = engine.Reach(ix, rc, src, false)
			want = referenceReach(db, rm, src, false)
			if !equalInts(got, want) {
				t.Fatalf("seed %d regex %s: backward Reach(%d) = %v, reference %v",
					seed, xregex.String(n), src, got, want)
			}
		}
	}
}

// TestReachAllMatchesReach checks that the parallel fan-out returns exactly
// the per-source results, for every worker-pool width.
func TestReachAllMatchesReach(t *testing.T) {
	const letters = "ab"
	db := workload.Random(5, 14, 40, letters)
	m := xregex.MustCompile(xregex.MustParse("a(a|b)*b"), []rune(letters))
	ix := db.Index()
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	want := make([][]int, len(srcs))
	seq := automata.NewSubsetCache(m)
	for i, s := range srcs {
		want[i] = engine.Reach(ix, seq, s, true)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		prev := engine.SetMaxWorkers(workers)
		got := engine.ReachAll(ix, automata.NewSubsetCache(m), srcs, true)
		engine.SetMaxWorkers(prev)
		for i := range srcs {
			if !equalInts(got[i], want[i]) {
				t.Fatalf("workers=%d: ReachAll[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestReachSharedCacheConcurrent hammers one shared SubsetCache from many
// goroutines (via ReachAll) and checks the results stay correct — the cache
// is the piece shared across parallel branch evaluations.
func TestReachSharedCacheConcurrent(t *testing.T) {
	const letters = "abc"
	db := workload.Random(9, 30, 120, letters)
	m := xregex.MustCompile(xregex.MustParse("(a|b)(a|b|c)*c?"), []rune(letters))
	ix := db.Index()
	shared := automata.NewSubsetCache(m)
	srcs := make([]int, 0, db.NumNodes()*4)
	for r := 0; r < 4; r++ {
		for i := 0; i < db.NumNodes(); i++ {
			srcs = append(srcs, i)
		}
	}
	got := engine.ReachAll(ix, shared, srcs, true)
	for i, s := range srcs {
		want := referenceReach(db, m, s, true)
		if !equalInts(got[i], want) {
			t.Fatalf("concurrent ReachAll[%d] (src %d) = %v, want %v", i, s, got[i], want)
		}
	}
}

func TestFanCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		hit := make([]int32, n)
		engine.Fan(n, func(i int) { hit[i]++ })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	prev := engine.SetMaxWorkers(3)
	defer engine.SetMaxWorkers(prev)
	if w := engine.Workers(10); w != 3 {
		t.Fatalf("Workers(10) = %d, want 3", w)
	}
	if w := engine.Workers(2); w != 2 {
		t.Fatalf("Workers(2) = %d, want 2", w)
	}
}
