package engine

import (
	"math"
	"math/bits"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
)

// Weight is a pluggable per-edge cost for witness ranking: it maps a graph
// edge label to the nonnegative cost of traversing one edge with that label.
// A nil Weight means unit cost — every edge counts 1, and witness cost
// degenerates to the BFS level (shortest matching-path edge count) the
// unweighted kernels already compute. Negative returns are clamped to 0.
//
// A Weight must be pure (same label → same cost for the lifetime of a query):
// the kernels precompute it per symbol, and the ranked enumeration's
// nondecreasing-cost guarantee is Dijkstra's invariant, which needs
// nonnegative, stable edge costs. Weighted relations are never admitted to
// the cross-query relation caches — a function has no cache identity — so
// supplying a Weight trades cache reuse for the custom metric.
type Weight func(label rune) int32

// weightTable precomputes the clamped per-symbol costs of w over the
// index's symbol table (nil w yields nil, meaning unit cost).
func weightTable(ix *graph.Index, w Weight) []int32 {
	if w == nil {
		return nil
	}
	nSyms := ix.NumSyms()
	tbl := make([]int32, nSyms)
	for s := 0; s < nSyms; s++ {
		c := w(ix.Sym(int32(s)))
		if c < 0 {
			c = 0
		}
		tbl[s] = c
	}
	return tbl
}

// ReachLevelsW is ReachLevels under a pluggable edge weight: for every hit it
// reports the minimum total weight of an accepted path instead of the edge
// count. With a nil weight it is exactly ReachLevels (one BFS). With a
// weight it runs Dijkstra over the (node, automaton-set-id) product
// configurations — a lazy-deletion binary heap keyed by accumulated cost, so
// the first settle of an accepting configuration carries the node's minimal
// weighted witness. The budget is polled every few hundred pops; a canceled
// search returns the sound settled prefix (every entry is a true minimal
// cost; costlier hits may be missing).
func ReachLevelsW(ix *graph.Index, c *automata.SubsetCache, src int, forward bool, bud *Budget, w Weight) (hits []int, levs []int32) {
	if w == nil {
		return ReachLevels(ix, c, src, forward, bud)
	}
	n := ix.NumNodes()
	if src < 0 || src >= n {
		return nil, nil
	}
	nSyms := ix.NumSyms()
	words := (n + 63) / 64
	wsym := weightTable(ix, w)

	const inf = int32(math.MaxInt32)
	// dist[id] is the best known cost per node for DFA set id; ids are dense
	// and appear in discovery order, so the slice grows lazily (mirroring
	// reachCore's visited structure).
	var dist [][]int32
	distFor := func(id int32) []int32 {
		for int(id) >= len(dist) {
			dist = append(dist, nil)
		}
		if dist[id] == nil {
			row := make([]int32, n)
			for i := range row {
				row[i] = inf
			}
			dist[id] = row
		}
		return dist[id]
	}
	var local [][]int32
	localFor := func(id int32) []int32 {
		for int(id) >= len(local) {
			local = append(local, nil)
		}
		if local[id] == nil {
			row := make([]int32, nSyms)
			for s := range row {
				row[s] = unknown
			}
			local[id] = row
		}
		return local[id]
	}

	type wcfg struct {
		cost int32
		node int32
		id   int32
	}
	// lazy-deletion binary min-heap on cost
	heap := []wcfg{{0, int32(src), c.Start()}}
	push := func(x wcfg) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].cost <= heap[i].cost {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() wcfg {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < last && heap[l].cost < heap[m].cost {
				m = l
			}
			if r < last && heap[r].cost < heap[m].cost {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	distFor(c.Start())[src] = 0

	hitBits := make([]uint64, words)
	hitLev := make([]int32, n)
	pops := 0
	for len(heap) > 0 {
		cur := pop()
		pops++
		if pops%256 == 0 && bud.Canceled() {
			break
		}
		drow := distFor(cur.id)
		if cur.cost > drow[cur.node] {
			continue // stale heap entry: a cheaper path already settled it
		}
		if c.Final(cur.id) {
			w, b := cur.node/64, uint64(1)<<(cur.node%64)
			if hitBits[w]&b == 0 {
				hitBits[w] |= b
				hitLev[cur.node] = cur.cost // first settle ⇒ minimal cost
			}
		}
		row := localFor(cur.id)
		for s := int32(0); s < int32(nSyms); s++ {
			var tgts []int32
			if forward {
				tgts = ix.OutByID(int(cur.node), s)
			} else {
				tgts = ix.InByID(int(cur.node), s)
			}
			if len(tgts) == 0 {
				continue
			}
			nid := row[s]
			if nid == unknown {
				nid = c.Step(cur.id, int32(ix.Sym(s)))
				row[s] = nid
			}
			if nid == automata.Dead {
				continue
			}
			nc := cur.cost + wsym[s]
			ndrow := distFor(nid)
			for _, v := range tgts {
				if nc < ndrow[v] {
					ndrow[v] = nc
					push(wcfg{nc, v, nid})
				}
			}
		}
	}
	for wi, bs := range hitBits {
		for bs != 0 {
			v := wi*64 + bits.TrailingZeros64(bs)
			bs &= bs - 1
			hits = append(hits, v)
			levs = append(levs, hitLev[v])
		}
	}
	return hits, levs
}

// reachBatchWeighted answers a weighted ReachBatchEx request: the MS-BFS
// word-packed kernel is level-synchronous and cannot batch Dijkstra
// frontiers, so the sources fan out across the worker pool, one ReachLevelsW
// each. Truncation is detected through the shared budget, like the batched
// kernel: a canceled sweep leaves some sources' lists sound but incomplete
// (or missing entirely), so the result must not enter cross-query caches.
func reachBatchWeighted(ix *graph.Index, c *automata.SubsetCache, srcs []int, forward bool, opts BatchOpts) BatchResult {
	res := BatchResult{Hits: make([][]int, len(srcs)), Levs: make([][]int32, len(srcs))}
	Fan(len(srcs), func(i int) {
		if opts.Budget.Canceled() {
			return
		}
		res.Hits[i], res.Levs[i] = ReachLevelsW(ix, c, srcs[i], forward, opts.Budget, opts.Weight)
	})
	if opts.Budget.Canceled() {
		res.Truncated = true
	}
	return res
}
