package engine

// Per-query evaluation budget. A Budget is threaded from the public entry
// points (Session.Stream, Session.Do, the server's /query handler) down into
// the BFS kernels and join recursions, which poll it at level granularity:
// once the deadline passes, the context is done, the row allowance is spent,
// or Stop is called, every loop that sees the budget unwinds promptly.
// Truncation keeps soundness — every tuple already emitted came from a
// completed search prefix — but gives up completeness, so budget-truncated
// intermediate results must never be installed in cross-query caches
// (RelCache and the session result cache both check for this).

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrCanceled is returned (wrapped or bare) by evaluation paths that were
// cut short by a Budget: deadline, context cancellation, row limit, or an
// explicit Stop. Callers distinguish "partial result" from "failure" with
// errors.Is.
var ErrCanceled = errors.New("engine: evaluation budget exhausted")

// Budget bounds one evaluation: an optional wall-clock deadline, an optional
// row allowance, an optional context whose cancellation is honored, and a
// manual stop flag (used by parallel fans to cancel siblings once a witness
// is found). The zero Budget and the nil *Budget are both unlimited; every
// method is safe on a nil receiver, so kernels thread the pointer without
// guarding call sites. All methods are safe for concurrent use.
type Budget struct {
	ctx      context.Context
	deadline time.Time
	maxRows  int64
	rows     atomic.Int64
	stopped  atomic.Bool
	parent   *Budget
}

// NewBudget builds a budget. ctx may be nil (no context check), deadline may
// be zero (no deadline), maxRows may be 0 (no row cap). A context deadline
// tighter than the explicit one wins, because ctx.Err() fires first.
func NewBudget(ctx context.Context, deadline time.Time, maxRows int) *Budget {
	return &Budget{ctx: ctx, deadline: deadline, maxRows: int64(maxRows)}
}

// Stop cancels the budget manually; all subsequent Canceled calls return
// true. Used to cancel sibling branch evaluations on first witness.
func (b *Budget) Stop() {
	if b != nil {
		b.stopped.Store(true)
	}
}

// Fork derives a child budget observing this one: the child is canceled
// whenever the parent is, but stopping the child leaves the parent alive.
// This is the shape a parallel fan needs — one shared child per fan, stopped
// on first witness, cancels every sibling without spending the caller's
// budget. Forking a nil budget yields a fresh standalone budget, so fans can
// always cancel siblings even when the caller runs unlimited. Row accounting
// stays with the root: the child carries no row cap of its own.
func (b *Budget) Fork() *Budget {
	return &Budget{parent: b}
}

// Canceled reports whether evaluation under this budget should unwind:
// stopped, row allowance spent, deadline passed, or context done. It is
// monotonic — once true it stays true — which the sharded kernel relies on
// (one shard decides per level and publishes through a barrier).
func (b *Budget) Canceled() bool {
	if b == nil {
		return false
	}
	if b.stopped.Load() {
		return true
	}
	if b.parent.Canceled() {
		b.stopped.Store(true)
		return true
	}
	if b.maxRows > 0 && b.rows.Load() >= b.maxRows {
		return true
	}
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		b.stopped.Store(true)
		return true
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			b.stopped.Store(true)
			return true
		default:
		}
	}
	return false
}

// AddRow charges one emitted row against the allowance and reports whether
// the caller may continue enumerating. On a nil or uncapped budget it always
// returns true.
func (b *Budget) AddRow() bool {
	if b == nil {
		return true
	}
	if b.parent != nil {
		return b.parent.AddRow() // row accounting lives at the fork root
	}
	n := b.rows.Add(1)
	return b.maxRows <= 0 || n < b.maxRows
}

// Rows returns the number of rows charged so far.
func (b *Budget) Rows() int64 {
	if b == nil {
		return 0
	}
	if b.parent != nil {
		return b.parent.Rows()
	}
	return b.rows.Load()
}

// Err returns ErrCanceled when the budget is spent and nil otherwise.
func (b *Budget) Err() error {
	if b.Canceled() {
		return ErrCanceled
	}
	return nil
}
