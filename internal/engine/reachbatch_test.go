package engine_test

import (
	"runtime"
	"sync"
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// shardCounts returns the deduplicated shard counts the differential tests
// sweep: 1 (MS-BFS only), 2, GOMAXPROCS and 2·GOMAXPROCS.
func shardCounts() []int {
	p := runtime.GOMAXPROCS(0)
	var out []int
	for _, k := range []int{1, 2, p, 2 * p} {
		dup := false
		for _, seen := range out {
			if seen == k {
				dup = true
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}

// TestReachBatchMatchesReach is the differential property test of the
// sharded kernel: over randomized graphs both above and below the
// single-shard gate, random regexes, every swept shard count and both
// directions, ReachBatch must return exactly the per-source Reach results.
func TestReachBatchMatchesReach(t *testing.T) {
	const letters = "abc"
	for seed := int64(0); seed < 12; seed++ {
		rng := workload.NewRNG(seed*131 + 7)
		// Odd seeds stay below the minShardedNodes gate (inline worker),
		// even seeds go well above it (goroutines + frontier exchange).
		nodes := 40 + rng.Intn(40)
		if seed%2 == 0 {
			nodes = 200 + rng.Intn(300)
		}
		db := workload.Random(seed, nodes, 4*nodes, letters)
		n := randNode(rng, letters, 1+rng.Intn(3))
		m, err := xregex.Compile(n, []rune(letters))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ix := db.Index()
		rm := reverseNFA(m)
		srcs := make([]int, db.NumNodes())
		for i := range srcs {
			srcs[i] = i
		}
		for _, forward := range []bool{true, false} {
			nfa := m
			if !forward {
				nfa = rm
			}
			want := engine.ReachAll(ix, automata.NewSubsetCache(nfa), srcs, forward)
			for _, k := range shardCounts() {
				got := engine.ReachBatch(ix, db.Partition(k), automata.NewSubsetCache(nfa), srcs, forward)
				for u := range want {
					if !equalInts(got[u], want[u]) {
						t.Fatalf("seed %d nodes %d shards %d forward %v: src %d: got %v want %v",
							seed, nodes, k, forward, u, got[u], want[u])
					}
				}
			}
		}
	}
}

// TestReachBatchManySources covers the MS-BFS batch boundary: more sources
// than one machine word, duplicates (each gets its own result), and
// out-of-range sources (nil, like Reach).
func TestReachBatchManySources(t *testing.T) {
	db := workload.Random(3, 200, 900, "ab")
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(a|b)*"), []rune("ab"))
	srcs := make([]int, 0, 150)
	for i := 0; i < 140; i++ {
		srcs = append(srcs, i%db.NumNodes())
	}
	srcs = append(srcs, 5, 5, -1, db.NumNodes(), 5) // duplicates + out of range
	got := engine.ReachBatch(ix, db.Partition(4), automata.NewSubsetCache(m), srcs, true)
	if len(got) != len(srcs) {
		t.Fatalf("got %d results for %d sources", len(got), len(srcs))
	}
	c := automata.NewSubsetCache(m)
	for i, src := range srcs {
		want := engine.Reach(ix, c, src, true)
		if !equalInts(got[i], want) {
			t.Fatalf("source %d (=%d): got %v want %v", i, src, got[i], want)
		}
	}
}

// TestReachBatchStaleOrNilPartition: a nil partition and a partition built
// for a different node count must both fall back to the single-shard path,
// still returning correct results.
func TestReachBatchStaleOrNilPartition(t *testing.T) {
	db := workload.Random(9, 160, 700, "ab")
	stale := db.Partition(4)
	db.AddNode() // partition is now stale
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("(a|b)+"), []rune("ab"))
	srcs := []int{0, 3, 50, 160}
	c := automata.NewSubsetCache(m)
	for _, part := range []*graph.Partition{nil, stale} {
		got := engine.ReachBatch(ix, part, automata.NewSubsetCache(m), srcs, true)
		for i, src := range srcs {
			if want := engine.Reach(ix, c, src, true); !equalInts(got[i], want) {
				t.Fatalf("part=%v src %d: got %v want %v", part != nil, src, got[i], want)
			}
		}
	}
}

// TestReachBitsMatchesReach: the bitset view must contain exactly the
// sorted hit list of Reach.
func TestReachBitsMatchesReach(t *testing.T) {
	db := workload.Random(21, 90, 400, "abc")
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(b|c)*a?"), []rune("abc"))
	c := automata.NewSubsetCache(m)
	for src := -1; src <= db.NumNodes(); src++ {
		bits := engine.ReachBits(ix, c, src, true)
		want := engine.Reach(ix, c, src, true)
		if bits == nil {
			if src >= 0 && src < db.NumNodes() {
				t.Fatalf("src %d: nil bits for in-range source", src)
			}
			if want != nil {
				t.Fatalf("src %d: Reach non-nil for out-of-range source", src)
			}
			continue
		}
		var got []int
		for v := 0; v < db.NumNodes(); v++ {
			if bits[v/64]&(1<<(uint(v)%64)) != 0 {
				got = append(got, v)
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("src %d: bits %v want %v", src, got, want)
		}
	}
}

// TestReachBatchCounters: a sharded run over a graph above the gate must
// record batches, edge volume and (with ≥2 shards) cross-shard exchange
// traffic in the kernel counters.
func TestReachBatchCounters(t *testing.T) {
	engine.ResetReachBatchStats()
	db := workload.GMark(11, 400)
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(a|b)*"), db.Alphabet())
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	engine.ReachBatch(ix, db.Partition(4), automata.NewSubsetCache(m), srcs, true)
	st := engine.ReachBatchStats()
	if st.Batches == 0 || st.Sources != uint64(len(srcs)) || st.Edges == 0 {
		t.Fatalf("counters not recorded: %+v", st)
	}
	if st.Exchanged == 0 {
		t.Fatal("4-shard run on a 400-node graph exchanged nothing cross-shard")
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard breakdown has %d entries, want 4", len(st.PerShard))
	}
	var perEdges, perEx uint64
	for _, v := range st.PerShard {
		perEdges += v.Edges
		perEx += v.Exchanged
	}
	if perEdges != st.Edges || perEx != st.Exchanged {
		t.Fatalf("per-shard volumes (%d, %d) do not sum to totals (%d, %d)", perEdges, perEx, st.Edges, st.Exchanged)
	}
}

// TestReachBatchConcurrentSharedCache: concurrent ReachBatch calls may
// share one SubsetCache (the on-the-fly determinization interns under its
// own lock); results must stay correct. Run with -race.
func TestReachBatchConcurrentSharedCache(t *testing.T) {
	db := workload.GMark(13, 300)
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("(a|b)+c?"), db.Alphabet())
	shared := automata.NewSubsetCache(m)
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	want := engine.ReachAll(ix, automata.NewSubsetCache(m), srcs, true)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := db.Partition(1 + g%4)
			got := engine.ReachBatch(ix, part, shared, srcs, true)
			for u := range want {
				if !equalInts(got[u], want[u]) {
					errs <- "goroutine result diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestSetShards: the knob round-trips and Shards() normalizes upward to a
// power of two.
func TestSetShards(t *testing.T) {
	old := engine.SetShards(6)
	defer engine.SetShards(old)
	if got := engine.Shards(); got != 8 {
		t.Fatalf("Shards()=%d after SetShards(6), want 8", got)
	}
	if prev := engine.SetShards(0); prev != 6 {
		t.Fatalf("SetShards returned %d, want 6", prev)
	}
	if got := engine.Shards(); got&(got-1) != 0 || got < 1 {
		t.Fatalf("default Shards()=%d not a power of two", got)
	}
}
