// Package engine is the product-reachability core shared by every
// evaluation path in the library: CRPQs (Lemma 1), the ECRPQ^er
// synchronized-product engine, and the CXRPQ fragment algorithms all bottom
// out in reachability over the product of a graph database with an
// automaton. The engine runs that search over integer-interned machinery —
// a label-indexed CSR graph view (graph.Index), an on-the-fly subset
// construction with dense set ids (automata.SubsetCache), and per-set-id
// node bitsets for the visited structure — and fans independent searches
// out across a bounded worker pool.
package engine

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
)

// unknown marks a transition not yet copied from the shared SubsetCache
// into a Reach call's lock-free local table.
const unknown int32 = -2

// Reach returns the sorted graph nodes v reachable from src through a path
// whose label is accepted by the automaton behind c: paths follow out-edges
// when forward is true and in-edges otherwise (the caller supplies the
// reversed automaton for backward searches). It is the integer-interned
// replacement for the string-keyed (node, state-set) BFS. The result is
// materialized by scanning the hit bitset, so it comes out sorted for free
// (O(n/64 + h) instead of the old O(h log h) sort); callers that only need
// membership should take ReachBits directly.
func Reach(ix *graph.Index, c *automata.SubsetCache, src int, forward bool) []int {
	return ReachBitsToList(ReachBits(ix, c, src, forward))
}

// ReachBitsToList materializes a hit bitset into the sorted node list.
func ReachBitsToList(hitBits []uint64) []int {
	if hitBits == nil {
		return nil
	}
	var hits []int
	for wi, bs := range hitBits {
		for bs != 0 {
			hits = append(hits, wi*64+bits.TrailingZeros64(bs))
			bs &= bs - 1
		}
	}
	return hits
}

// ReachLevels is Reach that additionally reports, for every hit, the BFS
// level (number of graph edges on a shortest accepted path) at which the
// node was first reported, and honors an optional budget at level
// granularity. levs is parallel to hits. The levels come straight out of the
// FIFO order the kernel already runs in — no second search. When bud is
// canceled mid-search the prefix found so far is returned (every entry is a
// genuine hit with its true shortest level; deeper hits may be missing).
func ReachLevels(ix *graph.Index, c *automata.SubsetCache, src int, forward bool, bud *Budget) (hits []int, levs []int32) {
	n := ix.NumNodes()
	if src < 0 || src >= n {
		return nil, nil
	}
	hitLev := make([]int32, n)
	hitBits := reachCore(ix, c, src, forward, bud, hitLev)
	for wi, bs := range hitBits {
		for bs != 0 {
			v := wi*64 + bits.TrailingZeros64(bs)
			bs &= bs - 1
			hits = append(hits, v)
			levs = append(levs, hitLev[v])
		}
	}
	return hits, levs
}

// ReachBits is Reach returning the raw hit bitset (word i, bit b ⇔ node
// 64i+b reachable): membership-only callers skip the list materialization
// entirely. It returns nil when src is out of range.
func ReachBits(ix *graph.Index, c *automata.SubsetCache, src int, forward bool) []uint64 {
	return ReachBitsBudget(ix, c, src, forward, nil)
}

// ReachBitsBudget is ReachBits under an optional budget, polled once per BFS
// level; a canceled budget yields the (sound, incomplete) prefix bitset.
func ReachBitsBudget(ix *graph.Index, c *automata.SubsetCache, src int, forward bool, bud *Budget) []uint64 {
	n := ix.NumNodes()
	if src < 0 || src >= n {
		return nil
	}
	return reachCore(ix, c, src, forward, bud, nil)
}

// reachCore is the scalar product BFS shared by Reach/ReachBits/ReachLevels.
// When hitLev is non-nil it receives the first-hit level per node (indexed
// by node id; positions whose hit bit is never set are untouched).
func reachCore(ix *graph.Index, c *automata.SubsetCache, src int, forward bool, bud *Budget, hitLev []int32) []uint64 {
	n := ix.NumNodes()
	nSyms := ix.NumSyms()
	words := (n + 63) / 64

	// visited[id] is a bitset over nodes for DFA set id; ids are dense and
	// appear in discovery order, so the slice grows lazily.
	var visited [][]uint64
	ensure := func(id int32) []uint64 {
		for int(id) >= len(visited) {
			visited = append(visited, nil)
		}
		if visited[id] == nil {
			visited[id] = make([]uint64, words)
		}
		return visited[id]
	}
	// local copies the shared (lock-guarded) transition table into a dense
	// per-call array so the BFS inner loop stays lock-free after first use.
	var local [][]int32
	localFor := func(id int32) []int32 {
		for int(id) >= len(local) {
			local = append(local, nil)
		}
		if local[id] == nil {
			row := make([]int32, nSyms)
			for s := range row {
				row[s] = unknown
			}
			local[id] = row
		}
		return local[id]
	}

	type cfg struct {
		node int32
		id   int32
	}
	startID := c.Start()
	queue := []cfg{{int32(src), startID}}
	ensure(startID)[src/64] |= 1 << (src % 64)

	hitBits := make([]uint64, words)
	depth := int32(0)
	levelEnd := 1 // queue prefix holding the current BFS level
	for qi := 0; qi < len(queue); qi++ {
		if qi == levelEnd {
			depth++
			levelEnd = len(queue)
			if bud.Canceled() {
				break
			}
		}
		cur := queue[qi]
		if c.Final(cur.id) {
			w, b := cur.node/64, uint64(1)<<(cur.node%64)
			if hitBits[w]&b == 0 {
				hitBits[w] |= b
				if hitLev != nil {
					hitLev[cur.node] = depth
				}
			}
		}
		row := localFor(cur.id)
		for s := int32(0); s < int32(nSyms); s++ {
			var tgts []int32
			if forward {
				tgts = ix.OutByID(int(cur.node), s)
			} else {
				tgts = ix.InByID(int(cur.node), s)
			}
			if len(tgts) == 0 {
				continue
			}
			nid := row[s]
			if nid == unknown {
				nid = c.Step(cur.id, int32(ix.Sym(s)))
				row[s] = nid
			}
			if nid == automata.Dead {
				continue
			}
			vb := ensure(nid)
			for _, v := range tgts {
				if vb[v/64]&(1<<(uint(v)%64)) == 0 {
					vb[v/64] |= 1 << (uint(v) % 64)
					queue = append(queue, cfg{v, nid})
				}
			}
		}
	}
	return hitBits
}

// ReachAll runs Reach from every source in srcs, fanning the independent
// searches out across the worker pool, and returns the per-source results
// in input order.
func ReachAll(ix *graph.Index, c *automata.SubsetCache, srcs []int, forward bool) [][]int {
	out := make([][]int, len(srcs))
	Fan(len(srcs), func(i int) {
		out[i] = Reach(ix, c, srcs[i], forward)
	})
	return out
}

// maxWorkers bounds the engine's fan-out; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// SetMaxWorkers bounds the worker pool used by Fan/ReachAll (0 restores the
// default of GOMAXPROCS). It returns the previous bound.
func SetMaxWorkers(n int) int {
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the effective worker-pool size for n independent tasks.
func Workers(n int) int {
	w := int(maxWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Fan runs f(0..n-1) across the bounded worker pool and waits for all calls
// to finish. f must be safe for concurrent invocation on distinct indices;
// with a single worker (or n == 1) the calls run inline in order. Workers
// claim chunked runs of ~n/(8w) indices per fetch-and-add rather than one
// index each, so tiny per-task bodies stop serializing on the shared
// counter while the 8× oversubscription keeps load balance for skewed task
// costs.
func Fan(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunk := n / (8 * w)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}
