package engine

// This file is the sharded multi-source product-reachability kernel: a
// level-synchronous frontier-exchange BFS over the product graph × subset
// automaton, with MS-BFS source batching.
//
// Sharding (frontier exchange): the interned node space is cut into
// contiguous degree-balanced ranges by graph.Partition, and each shard is
// owned by exactly one goroutine. All per-shard state — visited masks,
// pending frontiers, the final/transition caches — is shard-private, so the
// inner loop takes no locks. A product edge whose target lands in another
// shard is buffered into a per-(src-shard, dst-shard) exchange queue; the
// queues are drained at the two level barriers (expand → barrier → drain →
// barrier → swap), which also carry the happens-before edges the
// termination count relies on.
//
// MS-BFS batching: up to BatchWidth sources are packed into one machine
// word, and a source-set bitmask is propagated through every product
// configuration (node, set-id). One sweep over an adjacency span answers
// the corresponding step of up to 64 independent Reach calls — an
// algorithmic saving over the per-source fan that holds even at
// GOMAXPROCS=1, because shared prefix structure of the searches is walked
// once instead of once per source.
//
// Small graphs (or a single-shard partition) skip the goroutines and
// exchange machinery entirely and run the same batched worker inline.

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
)

// BatchWidth is the number of sources packed into one MS-BFS machine word.
const BatchWidth = 64

// minShardedNodes gates the goroutine + exchange machinery: below this node
// count the per-level barrier cost dominates any locality win, so the
// kernel runs the single worker inline (still source-batched).
const minShardedNodes = 128

// shardCount holds the configured shard count; 0 means GOMAXPROCS.
var shardCount atomic.Int64

// SetShards sets the shard count used when callers ask for the default
// partition (0 restores the GOMAXPROCS default). The value is normalized to
// a power of two on use. It returns the previous setting.
func SetShards(n int) int { return int(shardCount.Swap(int64(n))) }

// Shards returns the effective shard count: the SetShards value, or
// GOMAXPROCS, rounded up to the next power of two. Callers pass it to
// graph.DB.Partition, which additionally clamps to the node count.
func Shards() int {
	s := int(shardCount.Load())
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s < 1 {
		s = 1
	}
	if s&(s-1) != 0 {
		s = 1 << bits.Len(uint(s))
	}
	return s
}

// ShardVolume is the per-shard work profile of the batched kernel: product
// edges expanded by the shard's goroutine and configurations it exported
// into exchange queues.
type ShardVolume struct {
	Edges     uint64 `json:"edges"`
	Exchanged uint64 `json:"exchanged"`
}

// KernelStats is a snapshot of the ReachBatch counters, exported by the
// cxrpq-serve /stats endpoint for shard-count tuning: batch/level/source
// totals, global edge and exchange volume, and the per-shard breakdown
// (indexed by shard id of the most recent partition width used).
type KernelStats struct {
	Shards    int           `json:"shards"`
	Batches   uint64        `json:"batches"`
	Levels    uint64        `json:"levels"`
	Sources   uint64        `json:"sources"`
	Edges     uint64        `json:"edges"`
	Exchanged uint64        `json:"exchanged"`
	PerShard  []ShardVolume `json:"per_shard"`
}

var (
	kstatMu sync.Mutex
	kstat   KernelStats
)

// ReachBatchStats returns a snapshot of the batched-kernel counters.
func ReachBatchStats() KernelStats {
	kstatMu.Lock()
	defer kstatMu.Unlock()
	out := kstat
	out.Shards = Shards()
	out.PerShard = append([]ShardVolume(nil), kstat.PerShard...)
	return out
}

// ResetReachBatchStats zeroes the batched-kernel counters (tests).
func ResetReachBatchStats() {
	kstatMu.Lock()
	defer kstatMu.Unlock()
	kstat = KernelStats{}
}

// batchCfg is one live product configuration of a shard's frontier.
type batchCfg struct {
	node int32 // graph node (owned by this shard)
	id   int32 // subset-automaton set id
}

// exMsg is one cross-shard product edge: configuration (node, id) reached
// by the sources in mask, to be inserted by the owning shard at the next
// level barrier.
type exMsg struct {
	node, id int32
	mask     uint64
}

// shardWorker is the state owned by one shard's goroutine. visited/pend are
// indexed [set id][node - lo] and hold source masks; final/local cache the
// automaton's acceptance and transition rows per set id (they survive
// across batches — the automaton does not change between batches, only the
// source masks do).
type shardWorker struct {
	idx     int
	lo, hi  int32
	ix      *graph.Index
	c       *automata.SubsetCache
	part    *graph.Partition // nil when running single-shard
	forward bool
	nSyms   int32
	bud     *Budget // optional; polled once per level
	depth   int32   // current BFS level (0 while seeding)

	visited [][]uint64 // [id][node-lo] -> mask of sources that reached it
	pend    [][]uint64 // [id][node-lo] -> mask not yet expanded
	hits    []uint64   // [node-lo] -> mask of sources hitting node finally
	hitLev  []int32    // [(node-lo)*64+srcbit] -> first-hit level (nil unless requested)
	final   []int8     // [id] -> -1 unknown / 0 no / 1 yes
	local   [][]int32  // [id] -> per-symbol transition row (lock-free copy)

	frontier, next []batchCfg
	masks          []uint64  // per-frontier-entry pend snapshot (scratch, see expand)
	outbox         [][]exMsg // [dst shard] -> exported configurations

	edges     uint64 // product edges expanded
	exchanged uint64 // configurations exported cross-shard
	levels    uint64 // levels driven (counted by shard 0 only)
}

// state returns the visited and pending mask arrays of set id, growing the
// per-id slices on first sight of the id.
func (w *shardWorker) state(id int32) ([]uint64, []uint64) {
	for int(id) >= len(w.visited) {
		w.visited = append(w.visited, nil)
		w.pend = append(w.pend, nil)
	}
	if w.visited[id] == nil {
		sz := int(w.hi - w.lo)
		w.visited[id] = make([]uint64, sz)
		w.pend[id] = make([]uint64, sz)
	}
	return w.visited[id], w.pend[id]
}

// isFinal caches c.Final per set id so the insert path takes the
// SubsetCache read lock at most once per id per ReachBatch call.
func (w *shardWorker) isFinal(id int32) bool {
	for int(id) >= len(w.final) {
		w.final = append(w.final, -1)
	}
	if w.final[id] < 0 {
		if w.c.Final(id) {
			w.final[id] = 1
		} else {
			w.final[id] = 0
		}
	}
	return w.final[id] == 1
}

// row returns the lock-free local transition row of set id.
func (w *shardWorker) row(id int32) []int32 {
	for int(id) >= len(w.local) {
		w.local = append(w.local, nil)
	}
	if w.local[id] == nil {
		r := make([]int32, w.nSyms)
		for s := range r {
			r[s] = unknown
		}
		w.local[id] = r
	}
	return w.local[id]
}

// insert merges mask into configuration (v, id), queueing it for the next
// level when it gains its first pending bits. v must be owned by w.
func (w *shardWorker) insert(v, id int32, mask uint64) {
	vb, pb := w.state(id)
	li := v - w.lo
	delta := mask &^ vb[li]
	if delta == 0 {
		return
	}
	vb[li] |= delta
	if pb[li] == 0 {
		w.next = append(w.next, batchCfg{node: v, id: id})
	}
	pb[li] |= delta
	if w.isFinal(id) {
		fresh := delta &^ w.hits[li]
		w.hits[li] |= delta
		if w.hitLev != nil {
			// Level-synchronous BFS: a source bit's first hit on a node is at
			// its minimal level, so recording once at first sight is exact.
			for m := fresh; m != 0; m &= m - 1 {
				w.hitLev[int(li)*64+bits.TrailingZeros64(m)] = w.depth
			}
		}
	}
}

// expand walks the current frontier: for every live configuration it steps
// the subset automaton over each symbol's adjacency span, inserting local
// targets directly and buffering cross-shard targets into the outbox.
func (w *shardWorker) expand() {
	// Snapshot-and-clear every frontier entry's pending mask before stepping
	// any of them. An insert below may land on a frontier configuration that
	// has not had its turn yet; if its bits merged into the live pend mask
	// they would be expanded in this same pass — one level early — silently
	// understating every downstream first-hit level (the hit set stays
	// correct, the BFS distances do not). With the masks drained up front such
	// an insert sees pend == 0 and re-queues the configuration for the next
	// level, which is when its new bits are actually one step old.
	w.masks = w.masks[:0]
	for _, cur := range w.frontier {
		pb := w.pend[cur.id]
		li := cur.node - w.lo
		w.masks = append(w.masks, pb[li])
		pb[li] = 0
	}
	for qi := 0; qi < len(w.frontier); qi++ {
		cur := w.frontier[qi]
		mask := w.masks[qi]
		if mask == 0 {
			continue
		}
		row := w.row(cur.id)
		for s := int32(0); s < w.nSyms; s++ {
			var tgts []int32
			if w.forward {
				tgts = w.ix.OutByID(int(cur.node), s)
			} else {
				tgts = w.ix.InByID(int(cur.node), s)
			}
			if len(tgts) == 0 {
				continue
			}
			nid := row[s]
			if nid == unknown {
				nid = w.c.Step(cur.id, int32(w.ix.Sym(s)))
				row[s] = nid
			}
			if nid == automata.Dead {
				continue
			}
			w.edges += uint64(len(tgts))
			if w.part == nil {
				for _, v := range tgts {
					w.insert(v, nid, mask)
				}
				continue
			}
			for _, v := range tgts {
				if ds := w.part.ShardOf(v); ds == w.idx {
					w.insert(v, nid, mask)
				} else {
					w.outbox[ds] = append(w.outbox[ds], exMsg{node: v, id: nid, mask: mask})
					w.exchanged++
				}
			}
		}
	}
	w.frontier = w.frontier[:0]
}

// reset clears the per-batch state (visited/pend masks, hits, frontiers)
// while keeping the batch-independent final/transition caches and all
// allocated storage.
func (w *shardWorker) reset() {
	for i := range w.visited {
		if w.visited[i] != nil {
			clear(w.visited[i])
			clear(w.pend[i])
		}
	}
	clear(w.hits)
	w.frontier = w.frontier[:0]
	w.next = w.next[:0]
}

// barrier is a reusable counting barrier for the level-synchronous workers.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// kernel is the shared state of one sharded batch run.
type kernel struct {
	workers []*shardWorker
	bar     *barrier
	sizes   []int // per-shard next-frontier sizes, valid between the barriers
	bud     *Budget
	stopped bool // set by shard 0 between the barriers; read by all after
}

// run is the per-shard goroutine body: expand → barrier → drain inbound
// exchange queues → publish next-frontier size → barrier → clear own
// outboxes, swap frontiers, terminate when the global frontier is empty.
// The second barrier both publishes the sizes and fences the outbox reads
// before their owner reuses the buffers. The budget is polled by shard 0
// only and the verdict published through the same barrier, so every shard
// leaves the loop at the same level (a per-shard poll could disagree and
// deadlock the barrier).
func (w *shardWorker) run(k *kernel) {
	for {
		w.expand()
		k.bar.wait()
		for _, src := range k.workers {
			for _, m := range src.outbox[w.idx] {
				w.insert(m.node, m.id, m.mask)
			}
		}
		k.sizes[w.idx] = len(w.next)
		if w.idx == 0 && k.bud.Canceled() {
			k.stopped = true
		}
		k.bar.wait()
		total := 0
		for _, s := range k.sizes {
			total += s
		}
		for i := range w.outbox {
			w.outbox[i] = w.outbox[i][:0]
		}
		w.frontier, w.next = w.next, w.frontier
		if total == 0 || k.stopped {
			return
		}
		w.depth++
		if w.idx == 0 {
			w.levels++
		}
	}
}

// runSingle is the inline single-shard loop: same batched expansion, no
// barriers, no exchange.
func (w *shardWorker) runSingle() {
	for {
		w.expand()
		if len(w.next) == 0 || w.bud.Canceled() {
			return
		}
		w.frontier, w.next = w.next, w.frontier
		w.depth++
		w.levels++
	}
}

// ReachBatch answers Reach for every source in srcs with the sharded
// MS-BFS kernel and returns the per-source results in input order (each
// sorted ascending; nil for out-of-range sources, like Reach). part is the
// shard map to run under — normally db.Partition(Shards()); a nil or stale
// partition (node count differing from ix) and small graphs fall back to a
// single inline shard. The SubsetCache may be shared with concurrent
// ReachBatch/Reach calls; the graph must be quiescent (the usual contract).
func ReachBatch(ix *graph.Index, part *graph.Partition, c *automata.SubsetCache, srcs []int, forward bool) [][]int {
	return ReachBatchEx(ix, part, c, srcs, forward, BatchOpts{}).Hits
}

// BatchOpts extends ReachBatch: an optional per-query budget polled at level
// granularity, first-hit level capture for ranked (shortest-witness-first)
// enumeration, and a pluggable edge weight.
type BatchOpts struct {
	Budget *Budget
	Levels bool // record BFS first-hit levels per (source, node)

	// Weight switches the level capture from BFS edge counts to minimum
	// total edge weight (implies Levels). The MS-BFS word-packing is
	// level-synchronous and cannot batch Dijkstra frontiers, so a weighted
	// batch runs as a per-source ReachLevelsW fan instead of the sharded
	// kernel — correct, budget-honoring, but without the 64-way sharing.
	Weight Weight
}

// BatchResult is the extended kernel output. Levs is parallel to Hits
// (Levs[i][j] is the shortest accepted-path edge count from srcs[i] to
// Hits[i][j]) and nil unless Levels was requested. Truncated reports that
// the budget fired: the hits are sound but possibly incomplete, and callers
// must not install them in cross-query caches.
type BatchResult struct {
	Hits      [][]int
	Levs      [][]int32
	Truncated bool
}

// ReachBatchEx is ReachBatch with options; see BatchOpts/BatchResult.
func ReachBatchEx(ix *graph.Index, part *graph.Partition, c *automata.SubsetCache, srcs []int, forward bool, opts BatchOpts) BatchResult {
	if opts.Weight != nil {
		return reachBatchWeighted(ix, c, srcs, forward, opts)
	}
	res := BatchResult{Hits: make([][]int, len(srcs))}
	if opts.Levels {
		res.Levs = make([][]int32, len(srcs))
	}
	out := res.Hits
	bud := opts.Budget
	n := ix.NumNodes()
	if n == 0 || len(srcs) == 0 {
		return res
	}
	if part != nil && (part.NumNodes() != n || part.NumShards() == 1 || n < minShardedNodes) {
		part = nil
	}
	var workers []*shardWorker
	if part == nil {
		workers = []*shardWorker{{lo: 0, hi: int32(n)}}
	} else {
		workers = make([]*shardWorker, part.NumShards())
		for i := range workers {
			lo, hi := part.Range(i)
			workers[i] = &shardWorker{idx: i, lo: lo, hi: hi, part: part,
				outbox: make([][]exMsg, len(workers))}
		}
	}
	for _, w := range workers {
		w.ix, w.c, w.forward, w.nSyms = ix, c, forward, int32(ix.NumSyms())
		w.bud = bud
		w.hits = make([]uint64, int(w.hi-w.lo))
		if opts.Levels {
			w.hitLev = make([]int32, int(w.hi-w.lo)*64)
		}
	}
	startID := c.Start()
	var batches, seeded uint64
	for base := 0; base < len(srcs); base += BatchWidth {
		if bud.Canceled() {
			res.Truncated = true
			break
		}
		batch := srcs[base:min(base+BatchWidth, len(srcs))]
		if base > 0 {
			for _, w := range workers {
				w.reset()
			}
		}
		any := false
		for si, src := range batch {
			if src < 0 || src >= n {
				continue
			}
			w := workers[0]
			if part != nil {
				w = workers[part.ShardOf(int32(src))]
			}
			w.depth = 0
			w.insert(int32(src), startID, 1<<uint(si))
			any = true
			seeded++
		}
		for _, w := range workers {
			w.frontier, w.next = w.next, w.frontier
			w.depth = 1
		}
		if any {
			batches++
			if len(workers) == 1 {
				workers[0].runSingle()
			} else {
				k := &kernel{workers: workers, bar: newBarrier(len(workers)),
					sizes: make([]int, len(workers)), bud: bud}
				var wg sync.WaitGroup
				wg.Add(len(workers))
				for _, w := range workers {
					go func(w *shardWorker) {
						defer wg.Done()
						w.run(k)
					}(w)
				}
				wg.Wait()
			}
		}
		// Gather: shards cover contiguous ascending ranges and local nodes
		// are scanned ascending, so each source's list comes out sorted.
		for _, w := range workers {
			for li, m := range w.hits {
				for m != 0 {
					si := bits.TrailingZeros64(m)
					m &= m - 1
					out[base+si] = append(out[base+si], int(w.lo)+li)
					if res.Levs != nil {
						res.Levs[base+si] = append(res.Levs[base+si], w.hitLev[li*64+si])
					}
				}
			}
		}
	}
	if bud.Canceled() {
		res.Truncated = true
	}

	kstatMu.Lock()
	kstat.Batches += batches
	kstat.Sources += seeded
	for _, w := range workers {
		kstat.Levels += w.levels
		kstat.Edges += w.edges
		kstat.Exchanged += w.exchanged
		for w.idx >= len(kstat.PerShard) {
			kstat.PerShard = append(kstat.PerShard, ShardVolume{})
		}
		kstat.PerShard[w.idx].Edges += w.edges
		kstat.PerShard[w.idx].Exchanged += w.exchanged
	}
	kstatMu.Unlock()
	return res
}
