package engine_test

import (
	"testing"
	"time"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

func compiled(t *testing.T, expr string, sigma []rune) *automata.SubsetCache {
	t.Helper()
	m, err := xregex.Compile(xregex.MustParse(expr), sigma)
	if err != nil {
		t.Fatal(err)
	}
	return automata.NewSubsetCache(m)
}

// Unit weight must reproduce the BFS kernel exactly: same hits, same levels.
// This exercises the whole Dijkstra machinery (lazy deletion, per-set-id
// distance rows, first-settle hit capture) against the independent BFS.
func TestReachLevelsWUnitMatchesBFS(t *testing.T) {
	sigma := []rune("ab")
	for seed := int64(1); seed <= 8; seed++ {
		db := workload.Random(seed, 40, 160, "ab")
		ix := db.Index()
		for _, expr := range []string{"a(a|b)*", "(a|b)+", "ab|b", "b?a"} {
			c := compiled(t, expr, sigma)
			unit := engine.Weight(func(label rune) int32 { return 1 })
			for src := 0; src < db.NumNodes(); src += 7 {
				wantH, wantL := engine.ReachLevels(ix, c, src, true, nil)
				gotH, gotL := engine.ReachLevelsW(ix, c, src, true, nil, unit)
				if len(gotH) != len(wantH) {
					t.Fatalf("seed %d %s src %d: %d hits, want %d", seed, expr, src, len(gotH), len(wantH))
				}
				for i := range wantH {
					if gotH[i] != wantH[i] || gotL[i] != wantL[i] {
						t.Fatalf("seed %d %s src %d hit %d: got (%d,%d) want (%d,%d)",
							seed, expr, src, i, gotH[i], gotL[i], wantH[i], wantL[i])
					}
				}
			}
		}
	}
}

// A non-uniform weight must pick the cheaper path even when it is longer in
// edge count: s→t directly via b (weight 5) or via two a edges (1 each).
func TestReachLevelsWPrefersCheaperLongerPath(t *testing.T) {
	db, err := graph.Parse("s b t\ns a x\nx a t")
	if err != nil {
		t.Fatal(err)
	}
	ix := db.Index()
	c := compiled(t, "aa|b", []rune("ab"))
	w := engine.Weight(func(label rune) int32 {
		if label == 'b' {
			return 5
		}
		return 1
	})
	s, _ := db.Lookup("s")
	tt, _ := db.Lookup("t")
	hits, levs := engine.ReachLevelsW(ix, c, s, true, nil, w)
	found := false
	for i, h := range hits {
		if h == tt {
			found = true
			if levs[i] != 2 {
				t.Fatalf("weighted dist s→t = %d, want 2 (two a edges beat one b edge)", levs[i])
			}
		}
	}
	if !found {
		t.Fatal("t not reached")
	}
	// Sanity: the unweighted level of the same pair is 1 (the single b edge).
	_, bl := engine.ReachLevels(ix, c, s, true, nil)
	for i, h := range hits {
		_ = i
		if h == tt && bl[i] != 1 {
			t.Fatalf("unweighted level s→t = %d, want 1", bl[i])
		}
	}
}

// Negative weights are clamped to zero rather than breaking the Dijkstra
// invariant.
func TestReachLevelsWClampsNegative(t *testing.T) {
	db := workload.Random(3, 20, 60, "ab")
	ix := db.Index()
	c := compiled(t, "(a|b)+", []rune("ab"))
	neg := engine.Weight(func(label rune) int32 { return -7 })
	hits, levs := engine.ReachLevelsW(ix, c, 0, true, nil, neg)
	wantH, _ := engine.ReachLevels(ix, c, 0, true, nil)
	if len(hits) != len(wantH) {
		t.Fatalf("clamped search found %d hits, want %d", len(hits), len(wantH))
	}
	for _, l := range levs {
		if l != 0 {
			t.Fatalf("clamped-to-zero weights must yield cost 0, got %d", l)
		}
	}
}

// The weighted batch entry point must agree with the per-source kernel and
// flag truncation under a canceled budget.
func TestReachBatchExWeighted(t *testing.T) {
	db := workload.Random(11, 60, 240, "ab")
	ix := db.Index()
	c := compiled(t, "a(a|b)*", []rune("ab"))
	w := engine.Weight(func(label rune) int32 {
		if label == 'a' {
			return 2
		}
		return 3
	})
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	res := engine.ReachBatchEx(ix, db.Partition(engine.Shards()), c, srcs, true,
		engine.BatchOpts{Weight: w})
	if res.Truncated {
		t.Fatal("unbudgeted weighted batch reported truncation")
	}
	for i, src := range srcs {
		wantH, wantL := engine.ReachLevelsW(ix, c, src, true, nil, w)
		if len(res.Hits[i]) != len(wantH) {
			t.Fatalf("src %d: batch %d hits, fan %d", src, len(res.Hits[i]), len(wantH))
		}
		for j := range wantH {
			if res.Hits[i][j] != wantH[j] || res.Levs[i][j] != wantL[j] {
				t.Fatalf("src %d hit %d: batch (%d,%d), fan (%d,%d)",
					src, j, res.Hits[i][j], res.Levs[i][j], wantH[j], wantL[j])
			}
		}
	}

	bud := engine.NewBudget(nil, time.Now().Add(-time.Second), 0)
	res = engine.ReachBatchEx(ix, nil, c, srcs, true, engine.BatchOpts{Weight: w, Budget: bud})
	if !res.Truncated {
		t.Fatal("expired budget must mark the weighted batch truncated")
	}
}
