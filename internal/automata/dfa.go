package automata

import (
	"fmt"
	"sort"
)

// DFA is a deterministic finite automaton over an explicit alphabet with a
// complete transition function (a dead state is materialized as needed).
type DFA struct {
	Alphabet []int32
	start    int
	final    []bool
	delta    [][]int // delta[state][symbolIndex]
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.delta) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// IsFinal reports whether p is final.
func (d *DFA) IsFinal(p int) bool { return d.final[p] }

// Step returns the successor of p on the given symbol, or -1 if the symbol
// is not in the alphabet.
func (d *DFA) Step(p int, label int32) int {
	i := sort.Search(len(d.Alphabet), func(i int) bool { return d.Alphabet[i] >= label })
	if i >= len(d.Alphabet) || d.Alphabet[i] != label {
		return -1
	}
	return d.delta[p][i]
}

// Accepts reports whether the DFA accepts the word.
func (d *DFA) Accepts(word []int32) bool {
	p := d.start
	for _, l := range word {
		p = d.Step(p, l)
		if p < 0 {
			return false
		}
	}
	return d.final[p]
}

// Determinize converts the NFA to a complete DFA over the given alphabet
// (which must contain every label used by the automaton; pass nil to use
// the automaton's own label set) via the subset construction.
func (m *NFA) Determinize(alphabet []int32) *DFA {
	if alphabet == nil {
		alphabet = m.Labels()
	} else {
		alphabet = append([]int32(nil), alphabet...)
		sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	}
	d := &DFA{Alphabet: alphabet}
	idx := map[string]int{}
	var sets []StateSet
	newState := func(s StateSet) int {
		k := s.Key()
		if i, ok := idx[k]; ok {
			return i
		}
		i := len(sets)
		idx[k] = i
		sets = append(sets, s)
		d.delta = append(d.delta, make([]int, len(alphabet)))
		d.final = append(d.final, m.ContainsFinal(s))
		return i
	}
	start := newState(m.EpsClosure(m.start))
	d.start = start
	for i := 0; i < len(sets); i++ {
		for ai, l := range alphabet {
			next := m.Step(sets[i], l)
			d.delta[i][ai] = newState(next) // empty set becomes the dead state
		}
	}
	return d
}

// Complement returns a DFA accepting the complement language over the DFA's
// alphabet.
func (d *DFA) Complement() *DFA {
	c := &DFA{Alphabet: d.Alphabet, start: d.start, delta: d.delta}
	c.final = make([]bool, len(d.final))
	for i, f := range d.final {
		c.final[i] = !f
	}
	return c
}

// ToNFA converts the DFA back to an NFA.
func (d *DFA) ToNFA() *NFA {
	m := New(d.NumStates())
	m.SetStart(d.start)
	for p := range d.delta {
		m.final[p] = d.final[p]
		for ai, q := range d.delta[p] {
			m.AddTr(p, d.Alphabet[ai], q)
		}
	}
	return m
}

// Equivalent decides L(a) = L(b) over the union of their label sets, by
// checking emptiness of the two difference languages.
func Equivalent(a, b *NFA) bool {
	labels := map[int32]bool{}
	for _, l := range a.Labels() {
		labels[l] = true
	}
	for _, l := range b.Labels() {
		labels[l] = true
	}
	alphabet := make([]int32, 0, len(labels))
	for l := range labels {
		alphabet = append(alphabet, l)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	da := a.Determinize(alphabet)
	db := b.Determinize(alphabet)
	if !Intersect(a, db.Complement().ToNFA()).IsEmpty() {
		return false
	}
	return Intersect(b, da.Complement().ToNFA()).IsEmpty()
}

// CounterExample returns a shortest word in the symmetric difference of the
// two languages, or false if they are equivalent.
func CounterExample(a, b *NFA) ([]int32, bool) {
	labels := map[int32]bool{}
	for _, l := range a.Labels() {
		labels[l] = true
	}
	for _, l := range b.Labels() {
		labels[l] = true
	}
	alphabet := make([]int32, 0, len(labels))
	for l := range labels {
		alphabet = append(alphabet, l)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	da := b.Determinize(alphabet)
	if w, ok := Intersect(a, da.Complement().ToNFA()).SomeWord(); ok {
		return w, true
	}
	db := a.Determinize(alphabet)
	if w, ok := Intersect(b, db.Complement().ToNFA()).SomeWord(); ok {
		return w, true
	}
	return nil, false
}

// String renders the DFA compactly for debugging.
func (d *DFA) String() string {
	return fmt.Sprintf("DFA{states: %d, alphabet: %d, start: %d}", d.NumStates(), len(d.Alphabet), d.start)
}
