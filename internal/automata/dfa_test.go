package automata

import (
	"testing"
	"testing/quick"
)

func TestDeterminize(t *testing.T) {
	m := abNFA() // (ab)+
	d := m.Determinize(nil)
	for _, c := range []struct {
		w    string
		want bool
	}{{"", false}, {"ab", true}, {"abab", true}, {"aba", false}, {"ba", false}} {
		word := make([]int32, 0, len(c.w))
		for _, r := range c.w {
			word = append(word, int32(r))
		}
		if got := d.Accepts(word); got != c.want {
			t.Errorf("DFA accepts(%q) = %v, want %v", c.w, got, c.want)
		}
	}
	if d.Step(d.Start(), int32('z')) != -1 {
		t.Error("symbol outside alphabet should return -1")
	}
}

func TestComplement(t *testing.T) {
	m := abNFA()
	comp := m.Determinize(nil).Complement()
	words := []string{"", "ab", "abab", "a", "b", "ba", "abb"}
	for _, w := range words {
		word := make([]int32, 0, len(w))
		for _, r := range w {
			word = append(word, int32(r))
		}
		if m.Accepts(word) == comp.Accepts(word) {
			t.Errorf("complement agrees with original on %q", w)
		}
	}
}

func TestEquivalent(t *testing.T) {
	// (ab)+ vs ab(ab)* — equivalent
	a := abNFA()
	b := New(3)
	b.AddTr(0, int32('a'), 1)
	b.AddTr(1, int32('b'), 2)
	b.AddTr(2, Epsilon, 0)
	b.SetFinal(2, true)
	if !Equivalent(a, b) {
		t.Fatal("(ab)+ variants should be equivalent")
	}
	// (ab)+ vs (ab)* — differ on ε
	c := b.Clone()
	c.SetFinal(0, true)
	if Equivalent(a, c) {
		t.Fatal("(ab)+ and (ab)* differ")
	}
	w, ok := CounterExample(a, c)
	if !ok || len(w) != 0 {
		t.Fatalf("counterexample should be ε, got %v %v", w, ok)
	}
}

func TestToNFARoundTrip(t *testing.T) {
	m := abNFA()
	back := m.Determinize(nil).ToNFA()
	if !Equivalent(m, back) {
		t.Fatal("determinize/ToNFA changed the language")
	}
}

// Property: determinization preserves acceptance on random words.
func TestQuickDeterminizePreserves(t *testing.T) {
	m := abNFA()
	d := m.Determinize(nil)
	f := func(bits []bool) bool {
		if len(bits) > 10 {
			bits = bits[:10]
		}
		word := make([]int32, len(bits))
		for i, b := range bits {
			if b {
				word[i] = int32('a')
			} else {
				word[i] = int32('b')
			}
		}
		return m.Accepts(word) == d.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
