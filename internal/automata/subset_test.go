package automata

import (
	"sync"
	"testing"
)

// abStarNFA builds an NFA for a(b|a)*b with an ε-transition thrown in.
func abStarNFA() *NFA {
	m := New(4)
	m.AddTr(0, 'a', 1)
	m.AddTr(1, Epsilon, 2)
	m.AddTr(2, 'b', 2)
	m.AddTr(2, 'a', 2)
	m.AddTr(2, 'b', 3)
	m.SetFinal(3, true)
	return m
}

func TestSubsetCacheAgreesWithNFA(t *testing.T) {
	m := abStarNFA()
	c := NewSubsetCache(m)
	words := [][]int32{
		{}, {'a'}, {'b'}, {'a', 'b'}, {'a', 'a', 'b'}, {'a', 'b', 'b'},
		{'b', 'a'}, {'a', 'a', 'a'}, {'a', 'b', 'a', 'b'},
	}
	for _, w := range words {
		if got, want := c.Accepts(w), m.Accepts(w); got != want {
			t.Fatalf("Accepts(%v) = %v, want %v", w, got, want)
		}
	}
}

func TestSubsetCacheInternsSets(t *testing.T) {
	m := abStarNFA()
	c := NewSubsetCache(m)
	id1 := c.Step(c.Start(), 'a')
	id2 := c.Step(c.Start(), 'a')
	if id1 != id2 {
		t.Fatalf("same transition returned distinct ids %d, %d", id1, id2)
	}
	if id1 == Dead {
		t.Fatal("live transition reported Dead")
	}
	if c.Step(c.Start(), 'b') != Dead {
		t.Fatal("dead transition not reported Dead")
	}
	if c.Final(c.Start()) {
		t.Fatal("start set should not be final")
	}
	fin := c.Step(id1, 'b')
	if fin == Dead || !c.Final(fin) {
		t.Fatalf("ab should reach a final set, got id %d", fin)
	}
	set := c.Set(id1)
	if !set.Contains(1) || !set.Contains(2) {
		t.Fatalf("Set(%d) = %v, want the ε-closed {1,2}", id1, set)
	}
	if c.NumSets() < 2 {
		t.Fatalf("NumSets = %d, want at least 2", c.NumSets())
	}
}

func TestSubsetCacheConcurrentStep(t *testing.T) {
	m := abStarNFA()
	c := NewSubsetCache(m)
	words := [][]int32{
		{'a', 'b'}, {'a', 'a', 'b'}, {'a', 'b', 'b'}, {'b'}, {'a'},
		{'a', 'b', 'a', 'b'}, {'a', 'a', 'a', 'b'},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for _, w := range words {
					if got, want := c.Accepts(w), m.Accepts(w); got != want {
						errs <- "concurrent Accepts disagrees with NFA"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
