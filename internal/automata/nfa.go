// Package automata implements nondeterministic finite automata over
// int32-encoded labels. It is the shared substrate for classical regular
// expressions (labels are runes), ref-word automata (labels encode variable
// parentheses and references), and the synchronized-product constructions of
// the ECRPQ engine (labels encode symbol tuples).
//
// The paper (Schmid, PODS 2020, §2.2) observes that NFAs are just graph
// databases with a start state and final states, and additionally allow ε as
// an edge label; this package follows that definition.
package automata

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Epsilon is the reserved label for ε-transitions. It is outside the valid
// rune range, so rune-labelled automata can never collide with it.
const Epsilon int32 = -1 << 30

// Tr is a single transition with a label and a target state.
type Tr struct {
	Label int32
	To    int
}

// NFA is a nondeterministic finite automaton. States are dense integers
// 0..NumStates()-1. The zero value is not usable; create automata with New.
type NFA struct {
	adj   [][]Tr
	start int
	final []bool
}

// New returns an empty NFA with n states, start state 0 and no final states.
func New(n int) *NFA {
	if n < 1 {
		n = 1
	}
	return &NFA{adj: make([][]Tr, n), final: make([]bool, n)}
}

// NumStates returns the number of states.
func (m *NFA) NumStates() int { return len(m.adj) }

// AddState adds a fresh state and returns its index.
func (m *NFA) AddState() int {
	m.adj = append(m.adj, nil)
	m.final = append(m.final, false)
	return len(m.adj) - 1
}

// AddTr adds a transition from state p to state q with the given label.
func (m *NFA) AddTr(p int, label int32, q int) {
	m.adj[p] = append(m.adj[p], Tr{Label: label, To: q})
}

// SetStart makes p the start state.
func (m *NFA) SetStart(p int) { m.start = p }

// Start returns the start state.
func (m *NFA) Start() int { return m.start }

// SetFinal marks or unmarks p as a final state.
func (m *NFA) SetFinal(p int, f bool) { m.final[p] = f }

// IsFinal reports whether p is a final state.
func (m *NFA) IsFinal(p int) bool { return m.final[p] }

// Finals returns the sorted list of final states.
func (m *NFA) Finals() []int {
	var fs []int
	for p, f := range m.final {
		if f {
			fs = append(fs, p)
		}
	}
	return fs
}

// Transitions returns the transition slice of state p. The caller must not
// modify the returned slice.
func (m *NFA) Transitions(p int) []Tr { return m.adj[p] }

// NumTransitions returns the total number of transitions.
func (m *NFA) NumTransitions() int {
	n := 0
	for _, ts := range m.adj {
		n += len(ts)
	}
	return n
}

// Labels returns the sorted set of non-ε labels that occur on transitions.
func (m *NFA) Labels() []int32 {
	set := map[int32]bool{}
	for _, ts := range m.adj {
		for _, t := range ts {
			if t.Label != Epsilon {
				set[t.Label] = true
			}
		}
	}
	out := make([]int32, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the NFA.
func (m *NFA) Clone() *NFA {
	c := &NFA{
		adj:   make([][]Tr, len(m.adj)),
		start: m.start,
		final: append([]bool(nil), m.final...),
	}
	for p, ts := range m.adj {
		c.adj[p] = append([]Tr(nil), ts...)
	}
	return c
}

// StateSet is a set of states represented as a sorted slice; it is the
// working representation for subset-style simulations.
type StateSet []int

func newStateSet(states map[int]bool) StateSet {
	s := make(StateSet, 0, len(states))
	for p := range states {
		s = append(s, p)
	}
	sort.Ints(s)
	return s
}

// keyBuf recycles the scratch buffer Key encodes into (the returned string
// is its own allocation either way).
var keyBuf = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Key returns a canonical string key for use in maps: the uvarint encoding
// of the sorted states, concatenated. Varints are self-delimiting, so
// distinct sets yield distinct keys — far cheaper than the decimal print
// this replaces, which subset constructions pay per discovered set.
func (s StateSet) Key() string {
	bp := keyBuf.Get().(*[]byte)
	b := (*bp)[:0]
	for _, p := range s {
		b = binary.AppendUvarint(b, uint64(p))
	}
	k := string(b)
	*bp = b
	keyBuf.Put(bp)
	return k
}

// Contains reports whether p is in the (sorted) set.
func (s StateSet) Contains(p int) bool {
	i := sort.SearchInts(s, p)
	return i < len(s) && s[i] == p
}

// EpsClosure returns the ε-closure of the given states as a sorted StateSet.
func (m *NFA) EpsClosure(states ...int) StateSet {
	seen := map[int]bool{}
	stack := append([]int(nil), states...)
	for _, p := range stack {
		seen[p] = true
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.adj[p] {
			if t.Label == Epsilon && !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return newStateSet(seen)
}

// Step returns the ε-closure of the set of states reachable from s by one
// transition labelled l.
func (m *NFA) Step(s StateSet, l int32) StateSet {
	next := map[int]bool{}
	for _, p := range s {
		for _, t := range m.adj[p] {
			if t.Label == l {
				next[t.To] = true
			}
		}
	}
	if len(next) == 0 {
		return nil
	}
	states := make([]int, 0, len(next))
	for p := range next {
		states = append(states, p)
	}
	return m.EpsClosure(states...)
}

// ContainsFinal reports whether the set contains a final state.
func (m *NFA) ContainsFinal(s StateSet) bool {
	for _, p := range s {
		if m.final[p] {
			return true
		}
	}
	return false
}

// Accepts reports whether the automaton accepts the given word of labels.
func (m *NFA) Accepts(word []int32) bool {
	cur := m.EpsClosure(m.start)
	for _, l := range word {
		cur = m.Step(cur, l)
		if len(cur) == 0 {
			return false
		}
	}
	return m.ContainsFinal(cur)
}

// AcceptsString reports whether the automaton (with rune labels) accepts w.
func (m *NFA) AcceptsString(w string) bool {
	rs := []rune(w)
	word := make([]int32, len(rs))
	for i, r := range rs {
		word[i] = int32(r)
	}
	return m.Accepts(word)
}

// IsEmpty reports whether L(M) = ∅, i.e. no final state is reachable.
func (m *NFA) IsEmpty() bool {
	seen := make([]bool, len(m.adj))
	stack := []int{m.start}
	seen[m.start] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m.final[p] {
			return false
		}
		for _, t := range m.adj[p] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return true
}

// Trim returns an equivalent NFA containing only states that are both
// reachable from the start state and co-reachable from a final state. The
// start state is always kept. Trimming never changes the language.
func (m *NFA) Trim() *NFA {
	n := len(m.adj)
	reach := make([]bool, n)
	stack := []int{m.start}
	reach[m.start] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.adj[p] {
			if !reach[t.To] {
				reach[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	// Reverse reachability from finals.
	radj := make([][]int, n)
	for p, ts := range m.adj {
		for _, t := range ts {
			radj[t.To] = append(radj[t.To], p)
		}
	}
	co := make([]bool, n)
	for p, f := range m.final {
		if f && reach[p] {
			co[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range radj[p] {
			if reach[q] && !co[q] {
				co[q] = true
				stack = append(stack, q)
			}
		}
	}
	keep := make([]int, n)
	cnt := 0
	for p := 0; p < n; p++ {
		if (reach[p] && co[p]) || p == m.start {
			keep[p] = cnt
			cnt++
		} else {
			keep[p] = -1
		}
	}
	out := New(cnt)
	out.SetStart(keep[m.start])
	for p := 0; p < n; p++ {
		if keep[p] < 0 {
			continue
		}
		out.final[keep[p]] = m.final[p] && reach[p]
		for _, t := range m.adj[p] {
			if keep[t.To] >= 0 && reach[p] && co[p] && co[t.To] {
				out.AddTr(keep[p], t.Label, keep[t.To])
			}
		}
	}
	return out
}

// Intersect returns the product automaton accepting L(a) ∩ L(b).
// ε-transitions in either operand are handled by asynchronous product moves.
func Intersect(a, b *NFA) *NFA {
	type pair struct{ p, q int }
	idx := map[pair]int{}
	out := New(1)
	var get func(pr pair) int
	get = func(pr pair) int {
		if i, ok := idx[pr]; ok {
			return i
		}
		var i int
		if len(idx) == 0 {
			i = 0
		} else {
			i = out.AddState()
		}
		idx[pr] = i
		out.SetFinal(i, a.final[pr.p] && b.final[pr.q])
		return i
	}
	startPair := pair{a.start, b.start}
	stack := []pair{startPair}
	get(startPair)
	seen := map[pair]bool{startPair: true}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		src := get(pr)
		push := func(np pair, label int32) {
			dst := get(np)
			out.AddTr(src, label, dst)
			if !seen[np] {
				seen[np] = true
				stack = append(stack, np)
			}
		}
		for _, t := range a.adj[pr.p] {
			if t.Label == Epsilon {
				push(pair{t.To, pr.q}, Epsilon)
				continue
			}
			for _, u := range b.adj[pr.q] {
				if u.Label == t.Label {
					push(pair{t.To, u.To}, t.Label)
				}
			}
		}
		for _, u := range b.adj[pr.q] {
			if u.Label == Epsilon {
				push(pair{pr.p, u.To}, Epsilon)
			}
		}
	}
	return out.Trim()
}

// IntersectAll intersects a non-empty list of automata left to right.
func IntersectAll(ms ...*NFA) *NFA {
	if len(ms) == 0 {
		panic("automata: IntersectAll requires at least one automaton")
	}
	cur := ms[0]
	for _, m := range ms[1:] {
		cur = Intersect(cur, m)
	}
	return cur
}

// SomeWord returns a shortest accepted word, or nil and false if L(M) = ∅.
func (m *NFA) SomeWord() ([]int32, bool) {
	type item struct {
		state int
		word  []int32
	}
	seen := make([]bool, len(m.adj))
	queue := []item{{m.start, nil}}
	seen[m.start] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if m.final[it.state] {
			return it.word, true
		}
		for _, t := range m.adj[it.state] {
			if seen[t.To] {
				continue
			}
			seen[t.To] = true
			w := it.word
			if t.Label != Epsilon {
				w = append(append([]int32(nil), it.word...), t.Label)
			}
			queue = append(queue, item{t.To, w})
		}
	}
	return nil, false
}

// EnumerateWords returns all accepted words of length at most maxLen, as
// label slices, in length-then-lexicographic order, up to maxCount words
// (maxCount <= 0 means unlimited). It is intended for small automata in tests
// and for the bounded-image candidate enumeration of Theorem 6.
func (m *NFA) EnumerateWords(maxLen, maxCount int) [][]int32 {
	var out [][]int32
	type cfg struct {
		set  StateSet
		word []int32
	}
	labels := m.Labels()
	level := []cfg{{m.EpsClosure(m.start), nil}}
	seenWord := map[string]bool{}
	for length := 0; length <= maxLen; length++ {
		var next []cfg
		for _, c := range level {
			if m.ContainsFinal(c.set) {
				k := fmt.Sprint(c.word)
				if !seenWord[k] {
					seenWord[k] = true
					out = append(out, c.word)
					if maxCount > 0 && len(out) >= maxCount {
						return out
					}
				}
			}
			if length == maxLen {
				continue
			}
			for _, l := range labels {
				ns := m.Step(c.set, l)
				if len(ns) == 0 {
					continue
				}
				w := append(append([]int32(nil), c.word...), l)
				next = append(next, cfg{ns, w})
			}
		}
		// Deduplicate configurations by (word) to avoid exponential blowup
		// from multiple NFA runs over the same word.
		dedup := map[string]int{}
		var merged []cfg
		for _, c := range next {
			k := fmt.Sprint(c.word)
			if i, ok := dedup[k]; ok {
				set := map[int]bool{}
				for _, p := range merged[i].set {
					set[p] = true
				}
				for _, p := range c.set {
					set[p] = true
				}
				merged[i].set = newStateSet(set)
			} else {
				dedup[k] = len(merged)
				merged = append(merged, c)
			}
		}
		level = merged
	}
	return out
}
