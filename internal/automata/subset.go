package automata

import (
	"encoding/binary"
	"sync"
)

// Dead is the sentinel returned by SubsetCache.Step when the transition
// leads to the empty state set (the run dies).
const Dead int32 = -1

// SubsetCache performs the subset construction of an NFA on the fly,
// interning every reachable state set as a dense int32 id and memoizing the
// (set id, label) → set id transition table. It is the determinization
// substrate of the product engines: hot loops operate on int32 ids and
// never touch string keys or StateSet slices.
//
// A SubsetCache is safe for concurrent use, so compiled automata (and their
// accumulated determinization work) can be shared across goroutines and
// across evaluations of the same query parts.
type SubsetCache struct {
	mu    sync.RWMutex
	m     *NFA
	sets  []StateSet        // id → interned set
	ids   map[string]int32  // canonical set key → id
	final []bool            // id → set contains a final state
	trans []map[int32]int32 // id → label → id (Dead for empty)
	start int32
}

// NewSubsetCache returns a cache for m, with the ε-closure of the start
// state interned as id Start().
func NewSubsetCache(m *NFA) *SubsetCache {
	c := &SubsetCache{m: m, ids: map[string]int32{}}
	c.start = c.intern(m.EpsClosure(m.Start()))
	return c
}

// NFA returns the underlying automaton.
func (c *SubsetCache) NFA() *NFA { return c.m }

// Start returns the id of the initial state set.
func (c *SubsetCache) Start() int32 { return c.start }

// NumSets returns the number of interned state sets so far.
func (c *SubsetCache) NumSets() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sets)
}

// Final reports whether set id contains a final NFA state.
func (c *SubsetCache) Final(id int32) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.final[id]
}

// Set returns the interned StateSet of id (callers must not modify it).
func (c *SubsetCache) Set(id int32) StateSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sets[id]
}

// Step returns the id of the set reached from id by one transition labelled
// l (ε-closed), or Dead if the run dies. Results are memoized.
func (c *SubsetCache) Step(id int32, l int32) int32 {
	c.mu.RLock()
	if t, ok := c.trans[id][l]; ok {
		c.mu.RUnlock()
		return t
	}
	set := c.sets[id]
	c.mu.RUnlock()

	next := c.m.Step(set, l)
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.trans[id][l]; ok { // raced with another writer
		return t
	}
	nid := Dead
	if len(next) > 0 {
		nid = c.internLocked(next)
	}
	c.trans[id][l] = nid
	return nid
}

// Accepts reports whether the automaton accepts the word, running through
// the cache (and warming it).
func (c *SubsetCache) Accepts(word []int32) bool {
	id := c.start
	for _, l := range word {
		id = c.Step(id, l)
		if id == Dead {
			return false
		}
	}
	return c.Final(id)
}

func (c *SubsetCache) intern(s StateSet) int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.internLocked(s)
}

func (c *SubsetCache) internLocked(s StateSet) int32 {
	k := setKey(s)
	if id, ok := c.ids[k]; ok {
		return id
	}
	id := int32(len(c.sets))
	c.ids[k] = id
	c.sets = append(c.sets, s)
	c.final = append(c.final, c.m.ContainsFinal(s))
	c.trans = append(c.trans, make(map[int32]int32, 4))
	return id
}

// setKey encodes a sorted state set as a compact binary string key.
func setKey(s StateSet) string {
	buf := make([]byte, 4*len(s))
	for i, p := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(p))
	}
	return string(buf)
}
