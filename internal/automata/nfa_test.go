package automata

import (
	"testing"
	"testing/quick"
)

// abNFA returns an NFA for the language (ab)+ over runes.
func abNFA() *NFA {
	m := New(3)
	m.AddTr(0, int32('a'), 1)
	m.AddTr(1, int32('b'), 2)
	m.AddTr(2, Epsilon, 0)
	m.SetFinal(2, true)
	return m
}

func TestAcceptsBasic(t *testing.T) {
	m := abNFA()
	cases := []struct {
		w    string
		want bool
	}{
		{"", false}, {"ab", true}, {"abab", true}, {"a", false},
		{"ba", false}, {"ababab", true}, {"abb", false},
	}
	for _, c := range cases {
		if got := m.AcceptsString(c.w); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestEpsClosure(t *testing.T) {
	m := New(4)
	m.AddTr(0, Epsilon, 1)
	m.AddTr(1, Epsilon, 2)
	m.AddTr(2, int32('a'), 3)
	got := m.EpsClosure(0)
	if len(got) != 3 || !got.Contains(0) || !got.Contains(1) || !got.Contains(2) {
		t.Fatalf("EpsClosure(0) = %v, want {0,1,2}", got)
	}
	if got.Contains(3) {
		t.Fatalf("closure must not cross labelled transition")
	}
}

func TestIsEmpty(t *testing.T) {
	m := New(2)
	m.AddTr(0, int32('a'), 1)
	if !m.IsEmpty() {
		t.Fatal("no final state: language should be empty")
	}
	m.SetFinal(1, true)
	if m.IsEmpty() {
		t.Fatal("final state reachable: language should be non-empty")
	}
	// Unreachable final state.
	m2 := New(3)
	m2.SetFinal(2, true)
	m2.AddTr(1, int32('a'), 2)
	if !m2.IsEmpty() {
		t.Fatal("final state unreachable: language should be empty")
	}
}

func TestTrimPreservesLanguage(t *testing.T) {
	m := abNFA()
	// Add junk: unreachable state and a dead-end state.
	dead := m.AddState()
	m.AddTr(0, int32('z'), dead)
	junk := m.AddState()
	m.AddTr(junk, int32('a'), junk)
	trimmed := m.Trim()
	if trimmed.NumStates() >= m.NumStates() {
		t.Fatalf("trim did not remove states: %d vs %d", trimmed.NumStates(), m.NumStates())
	}
	for _, w := range []string{"", "ab", "abab", "z", "zab"} {
		if m.AcceptsString(w) != trimmed.AcceptsString(w) {
			t.Errorf("trim changed acceptance of %q", w)
		}
	}
}

func wordNFA(w string) *NFA {
	rs := []rune(w)
	m := New(len(rs) + 1)
	for i, r := range rs {
		m.AddTr(i, int32(r), i+1)
	}
	m.SetFinal(len(rs), true)
	return m
}

func TestIntersect(t *testing.T) {
	// (ab)+ ∩ {abab} = {abab}
	p := Intersect(abNFA(), wordNFA("abab"))
	if !p.AcceptsString("abab") {
		t.Fatal("intersection should accept abab")
	}
	if p.AcceptsString("ab") {
		t.Fatal("intersection should not accept ab")
	}
	// (ab)+ ∩ {ba} = ∅
	q := Intersect(abNFA(), wordNFA("ba"))
	if !q.IsEmpty() {
		t.Fatal("intersection with ba should be empty")
	}
}

func TestIntersectAll(t *testing.T) {
	m := IntersectAll(abNFA(), abNFA(), wordNFA("ab"))
	w, ok := m.SomeWord()
	if !ok || string([]rune{rune(w[0]), rune(w[1])}) != "ab" {
		t.Fatalf("SomeWord = %v, %v; want ab", w, ok)
	}
}

func TestSomeWordShortest(t *testing.T) {
	m := abNFA()
	w, ok := m.SomeWord()
	if !ok || len(w) != 2 {
		t.Fatalf("shortest word of (ab)+ should have length 2, got %v", w)
	}
	empty := New(1)
	if _, ok := empty.SomeWord(); ok {
		t.Fatal("empty language should yield no word")
	}
}

func TestEnumerateWords(t *testing.T) {
	m := abNFA()
	words := m.EnumerateWords(6, 0)
	if len(words) != 3 { // ab, abab, ababab
		t.Fatalf("EnumerateWords = %d words, want 3", len(words))
	}
	if len(words[0]) != 2 || len(words[1]) != 4 || len(words[2]) != 6 {
		t.Fatalf("words not in length order: %v", words)
	}
	if got := m.EnumerateWords(6, 2); len(got) != 2 {
		t.Fatalf("maxCount not honoured: %d", len(got))
	}
}

func TestLabels(t *testing.T) {
	m := abNFA()
	ls := m.Labels()
	if len(ls) != 2 || ls[0] != int32('a') || ls[1] != int32('b') {
		t.Fatalf("Labels = %v", ls)
	}
}

// Property: for random words over {a,b}, acceptance by (ab)+ equals the
// direct string check, and Trim/Clone never change acceptance.
func TestQuickAcceptAgainstSpec(t *testing.T) {
	m := abNFA()
	trimmed := m.Trim()
	cloned := m.Clone()
	spec := func(w string) bool {
		if len(w) == 0 || len(w)%2 != 0 {
			return false
		}
		for i := 0; i < len(w); i += 2 {
			if w[i] != 'a' || w[i+1] != 'b' {
				return false
			}
		}
		return true
	}
	f := func(bits []bool) bool {
		if len(bits) > 12 {
			bits = bits[:12]
		}
		w := make([]byte, len(bits))
		for i, b := range bits {
			if b {
				w[i] = 'a'
			} else {
				w[i] = 'b'
			}
		}
		s := string(w)
		want := spec(s)
		return m.AcceptsString(s) == want &&
			trimmed.AcceptsString(s) == want &&
			cloned.AcceptsString(s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStateSetKeyInjective: the binary Key must separate state sets that a
// naive byte concatenation would conflate (varints are self-delimiting).
func TestStateSetKeyInjective(t *testing.T) {
	sets := []StateSet{
		{}, {0}, {1}, {0, 1}, {1, 2}, {128}, {1, 28}, {12, 8},
		{127}, {127, 128}, {16384}, {0, 16384},
	}
	seen := map[string]int{}
	for i, s := range sets {
		k := s.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("sets %v and %v share key %q", sets[j], s, k)
		}
		seen[k] = i
	}
}
