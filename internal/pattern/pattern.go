// Package pattern provides the shared representation of graph patterns for
// conjunctive path queries (§2.3): a directed, edge-labelled graph whose
// vertices are node variables and whose edge labels are language descriptors
// (here: xregex trees; classical regular expressions for CRPQs).
package pattern

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"cxrpq/internal/xregex"
)

// Edge is one arc (From, Label, To) of a graph pattern.
type Edge struct {
	From  string
	To    string
	Label xregex.Node
}

// Graph is an ℜ-graph pattern together with the output tuple z̄ of the
// query q = z̄ ← G. An empty Out means a Boolean query.
type Graph struct {
	Out   []string
	Edges []Edge
}

// Vars returns the sorted node variables of the pattern (edge endpoints and
// output variables).
func (g *Graph) Vars() []string {
	set := map[string]bool{}
	for _, e := range g.Edges {
		set[e.From] = true
		set[e.To] = true
	}
	for _, z := range g.Out {
		set[z] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Labels returns the edge labels in edge order.
func (g *Graph) Labels() []xregex.Node {
	out := make([]xregex.Node, len(g.Edges))
	for i, e := range g.Edges {
		out[i] = e.Label
	}
	return out
}

// Validate checks that every output variable occurs in the pattern.
func (g *Graph) Validate() error {
	vars := map[string]bool{}
	for _, e := range g.Edges {
		vars[e.From] = true
		vars[e.To] = true
	}
	for _, z := range g.Out {
		if !vars[z] {
			return fmt.Errorf("pattern: output variable %q does not occur in any edge", z)
		}
	}
	return nil
}

// Size returns |q|: the number of edges plus the sizes of all edge labels.
func (g *Graph) Size() int {
	s := len(g.Edges)
	for _, e := range g.Edges {
		s += xregex.Size(e.Label)
	}
	return s
}

// IsBoolean reports whether the query has an empty output tuple.
func (g *Graph) IsBoolean() bool { return len(g.Out) == 0 }

// String renders the pattern in the textual query format.
func (g *Graph) String() string {
	s := "ans("
	for i, z := range g.Out {
		if i > 0 {
			s += ", "
		}
		s += z
	}
	s += ")\n"
	for _, e := range g.Edges {
		s += fmt.Sprintf("%s %s : %s\n", e.From, e.To, xregex.String(e.Label))
	}
	return s
}

// Clone returns a deep copy of the pattern.
func (g *Graph) Clone() *Graph {
	c := &Graph{Out: append([]string(nil), g.Out...)}
	for _, e := range g.Edges {
		c.Edges = append(c.Edges, Edge{From: e.From, To: e.To, Label: xregex.Clone(e.Label)})
	}
	return c
}

// Tuple is an output tuple of node ids.
type Tuple []int

// keyBuf recycles the scratch buffer Key encodes into; the returned string
// is its own allocation, so pooling the buffer leaves exactly one
// allocation per key.
var keyBuf = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Key returns a canonical map key for the tuple: the uvarint encoding of
// its ids, concatenated. Varints are self-delimiting, so distinct tuples
// yield distinct keys, at a fraction of the cost and size of the decimal
// print this replaces. uint64 conversion is a bijection on int, so the
// encoding stays injective even for out-of-range ids.
func (t Tuple) Key() string {
	bp := keyBuf.Get().(*[]byte)
	b := (*bp)[:0]
	for _, v := range t {
		b = binary.AppendUvarint(b, uint64(v))
	}
	s := string(b)
	*bp = b
	keyBuf.Put(bp)
	return s
}

// TupleSet is a set of output tuples with deterministic enumeration order.
type TupleSet struct {
	seen map[string]bool
	list []Tuple
}

// NewTupleSet returns an empty tuple set.
func NewTupleSet() *TupleSet { return &TupleSet{seen: map[string]bool{}} }

// Add inserts t if not present; it reports whether t was new.
func (s *TupleSet) Add(t Tuple) bool {
	k := t.Key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.list = append(s.list, append(Tuple(nil), t...))
	return true
}

// Contains reports membership.
func (s *TupleSet) Contains(t Tuple) bool { return s.seen[t.Key()] }

// Len returns the number of tuples.
func (s *TupleSet) Len() int { return len(s.list) }

// All returns the tuples in insertion order. The returned slice is the
// set's backing storage — callers must not modify it or hold it across a
// later Add.
func (s *TupleSet) All() []Tuple { return s.list }

// Sorted returns the tuples in lexicographic order.
func (s *TupleSet) Sorted() []Tuple {
	out := append([]Tuple(nil), s.list...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Equal reports whether two tuple sets contain the same tuples.
func (s *TupleSet) Equal(o *TupleSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.seen {
		if !o.seen[k] {
			return false
		}
	}
	return true
}
