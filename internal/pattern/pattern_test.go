package pattern

import (
	"testing"

	"cxrpq/internal/xregex"
)

func TestParseQuery(t *testing.T) {
	q := MustParseQuery(`
# G1 of Figure 2
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)+
`)
	if len(q.Out) != 2 || q.Out[0] != "v1" || q.Out[1] != "v2" {
		t.Fatalf("out = %v", q.Out)
	}
	if len(q.Edges) != 2 {
		t.Fatalf("edges = %d", len(q.Edges))
	}
	if got := q.Edges[0].From; got != "u" {
		t.Fatalf("edge0 from = %s", got)
	}
	if xregex.String(q.Edges[1].Label) != "($x|c)+" {
		t.Fatalf("edge1 label = %s", xregex.String(q.Edges[1].Label))
	}
	vars := q.Vars()
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestParseQueryBooleanAndErrors(t *testing.T) {
	q := MustParseQuery("ans()\nx y : a*")
	if !q.IsBoolean() {
		t.Fatal("ans() should be Boolean")
	}
	for _, bad := range []string{
		"x y : a",              // missing ans
		"ans(x)\ny z : a",      // output var not in pattern
		"ans()\nx : a",         // malformed edge head
		"ans()\nx y a",         // missing colon
		"ans()\nx y : $v{a$v}", // invalid xregex
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q): expected error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParseQuery("ans(x)\nx y : a(b|c)*\ny x : $v{a}$v")
	q2, err := ParseQuery(q.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, q.String())
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestTupleSet(t *testing.T) {
	s := NewTupleSet()
	if !s.Add(Tuple{1, 2}) || s.Add(Tuple{1, 2}) {
		t.Fatal("Add dedup broken")
	}
	s.Add(Tuple{0, 5})
	sorted := s.Sorted()
	if len(sorted) != 2 || sorted[0][0] != 0 {
		t.Fatalf("sorted = %v", sorted)
	}
	o := NewTupleSet()
	o.Add(Tuple{0, 5})
	o.Add(Tuple{1, 2})
	if !s.Equal(o) {
		t.Fatal("sets should be equal")
	}
	o.Add(Tuple{9})
	if s.Equal(o) {
		t.Fatal("sets should differ")
	}
}

func TestSizeAndClone(t *testing.T) {
	q := MustParseQuery("ans()\nx y : ab*")
	if q.Size() < 4 {
		t.Fatalf("size = %d", q.Size())
	}
	c := q.Clone()
	if c.String() != q.String() {
		t.Fatal("clone mismatch")
	}
}

// TestTupleKeyInjective: the compact binary Key must distinguish every
// distinct tuple, including length-vs-value boundaries the old decimal
// print separated with brackets and spaces.
func TestTupleKeyInjective(t *testing.T) {
	tuples := []Tuple{
		{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {128}, {1, 28}, {12, 8},
		{127, 1}, {16384}, {128, 128}, {-1}, {-1, 0}, {1 << 40},
	}
	seen := map[string]int{}
	for i, a := range tuples {
		k := a.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("tuples %v and %v share key %q", tuples[j], a, k)
		}
		seen[k] = i
	}
	// And stability: the same tuple keys identically across pooled buffers.
	for _, a := range tuples {
		if a.Key() != a.Key() {
			t.Fatalf("key of %v is not stable", a)
		}
	}
}
