package pattern

import (
	"bufio"
	"fmt"
	"strings"

	"cxrpq/internal/xregex"
)

// ParseQuery parses the textual query format:
//
//	# comment
//	ans(x, y)          — output tuple (ans() for Boolean queries)
//	x y : xregex       — one edge per line
//
// The first non-comment line must be the ans(...) clause.
func ParseQuery(src string) (*Graph, error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	g := &Graph{}
	sawAns := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawAns {
			if !strings.HasPrefix(line, "ans(") || !strings.HasSuffix(line, ")") {
				return nil, fmt.Errorf("query: line %d: expected ans(...) clause, got %q", lineNo, line)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(line, "ans("), ")")
			inner = strings.TrimSpace(inner)
			if inner != "" {
				for _, v := range strings.Split(inner, ",") {
					g.Out = append(g.Out, strings.TrimSpace(v))
				}
			}
			sawAns = true
			continue
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("query: line %d: expected 'from to : xregex', got %q", lineNo, line)
		}
		head := strings.Fields(line[:colon])
		if len(head) != 2 {
			return nil, fmt.Errorf("query: line %d: expected two node variables before ':', got %q", lineNo, line[:colon])
		}
		label, err := xregex.Parse(strings.TrimSpace(line[colon+1:]))
		if err != nil {
			return nil, fmt.Errorf("query: line %d: %v", lineNo, err)
		}
		g.Edges = append(g.Edges, Edge{From: head[0], To: head[1], Label: label})
	}
	if !sawAns {
		return nil, fmt.Errorf("query: missing ans(...) clause")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(src string) *Graph {
	g, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return g
}
