package graph

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// equalDB asserts two databases agree on names (in id order), the edge
// multiset per node (order-insensitive: checkpoint reload regroups the
// incoming-edge interleaving by source node), the alphabet, and the
// revision counter.
func equalDB(t *testing.T, a, b *DB) {
	t.Helper()
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("names differ:\n%v\n%v", a.Names(), b.Names())
	}
	for u := 0; u < a.NumNodes(); u++ {
		if !equalEdgeSet(a.Out(u), b.Out(u)) {
			t.Fatalf("out(%s) differs: %v vs %v", a.Name(u), a.Out(u), b.Out(u))
		}
		if !equalEdgeSet(a.In(u), b.In(u)) {
			t.Fatalf("in(%s) differs: %v vs %v", a.Name(u), a.In(u), b.In(u))
		}
	}
	if string(a.Alphabet()) != string(b.Alphabet()) {
		t.Fatalf("alphabet differs: %q vs %q", a.Alphabet(), b.Alphabet())
	}
	if a.Revision() != b.Revision() {
		t.Fatalf("revision differs: %d vs %d", a.Revision(), b.Revision())
	}
}

func equalEdgeSet(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(e Edge) string { return fmt.Sprintf("%d|%c|%d", e.From, e.Label, e.To) }
	cnt := map[string]int{}
	for _, e := range a {
		cnt[key(e)]++
	}
	for _, e := range b {
		if cnt[key(e)]--; cnt[key(e)] < 0 {
			return false
		}
	}
	return true
}

// randomDB builds a database exercising the serialization corner cases:
// isolated nodes, anonymous "#N" node names (which plain Read would drop as
// comments when they start an edge line), parallel edges, and multi-rune
// labels from a small alphabet.
func randomDB(rng *rand.Rand) *DB {
	d := New()
	n := 2 + rng.Intn(12)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			d.AddNode()
		default:
			d.Node(fmt.Sprintf("v%d", i))
		}
	}
	labels := []rune("abc")
	for i := rng.Intn(4 * n); i > 0; i-- {
		d.AddEdge(rng.Intn(d.NumNodes()), labels[rng.Intn(len(labels))], rng.Intn(d.NumNodes()))
	}
	return d
}

// Satellite coverage: the WriteFull checkpoint format round-trips names,
// edges, alphabet and revision exactly — including isolated nodes and
// anonymous '#'-prefixed names that the plain Write/Read edge format cannot
// represent.
func TestWriteFullRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		var buf bytes.Buffer
		if err := d.WriteFull(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFull(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		equalDB(t, d, got)
	}
}

// The plain Write format round-trips the edge multiset for ordinary names
// (its documented contract); isolated nodes are out of scope for it.
func TestWriteRoundTripEdges(t *testing.T) {
	d := MustParse("u a v\nu a v\nv b w\n")
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != d.NumEdges() || got.NumNodes() != d.NumNodes() {
		t.Fatalf("Write/Read drifted: %d/%d nodes, %d/%d edges",
			got.NumNodes(), d.NumNodes(), got.NumEdges(), d.NumEdges())
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{FromRev: 0, ToRev: 7, Delta: Delta{Add: []DeltaEdge{{From: "u", Label: 'a', To: "v"}}}},
		{FromRev: 7, ToRev: 9, Delta: Delta{
			Add: []DeltaEdge{{From: "#2", Label: '∂', To: "x y"}}, // names are opaque bytes here
			Del: []DeltaEdge{{From: "u", Label: 'a', To: "v"}},
		}},
		{FromRev: 9, ToRev: 9, Delta: Delta{}},
	}
	var buf []byte
	for _, r := range recs {
		buf = encodeWALRecord(buf, r)
	}
	got, valid, err := parseWAL(buf)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(buf) {
		t.Fatalf("valid prefix %d != %d", valid, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].FromRev != recs[i].FromRev || got[i].ToRev != recs[i].ToRev ||
			!reflect.DeepEqual(append([]DeltaEdge{}, got[i].Delta.Add...), append([]DeltaEdge{}, recs[i].Delta.Add...)) ||
			!reflect.DeepEqual(append([]DeltaEdge{}, got[i].Delta.Del...), append([]DeltaEdge{}, recs[i].Delta.Del...)) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, got[i], recs[i])
		}
	}
}

func storeDelta(t *testing.T, s *Store, delta Delta) {
	t.Helper()
	from := s.DB().Revision()
	if _, err := s.DB().ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(delta, from, s.DB().Revision()); err != nil {
		t.Fatal(err)
	}
}

func add(from string, to string) Delta {
	return Delta{Add: []DeltaEdge{{From: from, Label: 'a', To: to}}}
}

// Crash recovery drops a torn tail record (the append that never finished
// was never acknowledged) and keeps everything before it.
func TestStoreRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("u", "v"))
	storeDelta(t, s, add("v", "w"))
	want := s.DB().Revision()
	storeDelta(t, s, add("w", "x"))
	// Crash mid-append of the third record: chop bytes off the WAL tail.
	// The store is abandoned without Close, like a killed process.
	walPath := filepath.Join(dir, walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.DB().Revision(); got != want {
		t.Fatalf("recovered revision %d, want %d (torn record dropped)", got, want)
	}
	if _, ok := s2.DB().Lookup("x"); ok {
		t.Fatal("torn record leaked into recovery")
	}
	if st := s2.Stats(); st.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2", st.ReplayedRecords)
	}
	// The tail was physically truncated, so appends resume on a frame
	// boundary and a further recovery sees them.
	storeDelta(t, s2, add("w", "y"))
	s3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := s3.DB().Lookup("y"); !ok {
		t.Fatal("append after torn-tail recovery lost")
	}
}

// A CRC failure in the interior of the log (valid frames after it) is
// corruption, not a torn tail: recovery must refuse rather than silently
// resurrect a partial history.
func TestStoreRejectsInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("u", "v"))
	storeDelta(t, s, add("v", "w"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[9] ^= 0xff // a payload byte of the first record
	if err := os.WriteFile(walPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("OpenStore on corrupt interior = %v, want ErrWALCorrupt", err)
	}
}

// Checkpoint + replay must reproduce the live database exactly, across
// random mutation batches (including removals and fresh nodes) and store
// reopens at arbitrary points — compared against an in-memory twin that
// applies the same deltas without any persistence.
func TestStoreCheckpointReplayTwin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		// Tiny checkpoint threshold: force frequent checkpoint+truncate.
		s, err := OpenStore(dir, StoreOptions{CheckpointBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		twin := New()
		for step := 0; step < 40; step++ {
			var delta Delta
			for i := 0; i <= rng.Intn(3); i++ {
				delta.Add = append(delta.Add, DeltaEdge{
					From:  fmt.Sprintf("n%d", rng.Intn(10)),
					Label: rune('a' + rng.Intn(2)),
					To:    fmt.Sprintf("n%d", rng.Intn(10)),
				})
			}
			// Occasionally remove an edge that exists on the twin.
			if twin.NumEdges() > 0 && rng.Intn(3) == 0 {
				u := rng.Intn(twin.NumNodes())
				if es := twin.Out(u); len(es) > 0 {
					e := es[rng.Intn(len(es))]
					delta.Del = append(delta.Del, DeltaEdge{
						From: twin.Name(e.From), Label: e.Label, To: twin.Name(e.To)})
				}
			}
			if _, err := twin.ApplyDelta(delta); err != nil {
				t.Fatalf("seed %d step %d: twin: %v", seed, step, err)
			}
			storeDelta(t, s, delta)
			if rng.Intn(8) == 0 { // crash: reopen without Close
				if s, err = OpenStore(dir, StoreOptions{CheckpointBytes: 256}); err != nil {
					t.Fatalf("seed %d step %d: reopen: %v", seed, step, err)
				}
			}
		}
		s2, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Revision counters survive checkpoints (forceRevision), so the
		// twin and the recovered store agree on the full lineage.
		equalDB(t, twin, s2.DB())
		s2.Close()
	}
}

func TestFollowerTailsLeader(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("u", "v"))
	f, err := OpenFollower(dir)
	if err != nil {
		t.Fatal(err)
	}
	equalDB(t, s.DB(), f.DB())
	storeDelta(t, s, add("v", "w"))
	storeDelta(t, s, add("w", "x"))
	if n, err := f.Poll(); err != nil || n != 2 {
		t.Fatalf("Poll = %d, %v; want 2 records", n, err)
	}
	equalDB(t, s.DB(), f.DB())
	if n, err := f.Poll(); err != nil || n != 0 {
		t.Fatalf("idle Poll = %d, %v; want 0", n, err)
	}
	// Leader checkpoints (WAL truncates under the follower's offset), then
	// keeps writing: the follower reloads and catches up.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("x", "y"))
	for i := 0; i < 3; i++ { // reload may take an extra poll cycle
		if _, err := f.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if f.DB().Revision() != s.DB().Revision() {
		t.Fatalf("follower at revision %d, leader at %d", f.DB().Revision(), s.DB().Revision())
	}
	equalDB(t, s.DB(), f.DB())
	if f.Reloads() == 0 {
		t.Fatal("follower never took the checkpoint-reload path")
	}
}

// Side records interleave with delta records without disturbing the
// revision lineage: recovery replays the deltas, surfaces the side blobs in
// log order, and a follower tailing the same WAL skips them entirely.
func TestStoreSideRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("u", "v"))
	if err := s.AppendSide(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("v", "w"))
	if err := s.AppendSide(2, []byte("other-kind")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSide(1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	want := s.DB().Revision()
	if got := s.SideRecords(1); len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("live SideRecords(1) = %q", got)
	}

	// A follower tailing the same WAL applies only the deltas.
	f, err := OpenFollower(dir)
	if err != nil {
		t.Fatal(err)
	}
	equalDB(t, s.DB(), f.DB())
	if err := s.AppendSide(1, []byte("third")); err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("w", "x"))
	if n, err := f.Poll(); err != nil || n != 1 {
		t.Fatalf("Poll = %d, %v; want 1 delta (side record skipped)", n, err)
	}
	equalDB(t, s.DB(), f.DB())
	want = s.DB().Revision()

	// Crash recovery (reopen without Close) keeps lineage and side blobs.
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.DB().Revision() != want {
		t.Fatalf("recovered revision %d, want %d", s2.DB().Revision(), want)
	}
	if got := s2.SideRecords(1); len(got) != 3 || string(got[2]) != "third" {
		t.Fatalf("recovered SideRecords(1) = %q", got)
	}
	if got := s2.SideRecords(2); len(got) != 1 || string(got[0]) != "other-kind" {
		t.Fatalf("recovered SideRecords(2) = %q", got)
	}
	if st := s2.Stats(); st.ReplayedRecords != 3 {
		t.Fatalf("replayed %d delta records, want 3", st.ReplayedRecords)
	}

	// Checkpoint truncates the WAL: side records are gone, by contract.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s2.SideRecords(1); got != nil {
		t.Fatalf("SideRecords after checkpoint = %q, want none", got)
	}
	s2.Close()
}

// A torn side-record tail is dropped like a torn delta tail.
func TestStoreSideRecordTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeDelta(t, s, add("u", "v"))
	if err := s.AppendSide(1, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSide(1, []byte("torn-away")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("recovery after torn side tail: %v", err)
	}
	defer s2.Close()
	if got := s2.SideRecords(1); len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("SideRecords = %q, want only the intact record", got)
	}
	if _, ok := s2.DB().Lookup("v"); !ok {
		t.Fatal("delta before torn side record lost")
	}
}
