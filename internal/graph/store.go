package graph

// Store is the durability layer under one database: an append-only WAL of
// Delta batches (wal.go framing) plus periodic full checkpoints written
// with WriteFull. The layout of a store directory is
//
//	checkpoint.graph      last durable checkpoint (WriteFull format)
//	wal.log               delta records applied since that checkpoint
//
// Recovery protocol (Open): load the checkpoint if present (else start
// empty), scan the WAL, truncate a torn tail (a crash mid-append — that
// batch was never acknowledged), and replay every record whose window
// extends past the checkpoint revision. Replay is deterministic: ApplyDelta
// validates removals first and interns nodes in request order, so the
// rebuilt lineage reproduces the original revision numbers exactly.
//
// Write protocol (Append): the caller applies the batch to its live DB
// first (validation and revision assignment), then appends the framed
// record and fsyncs before acknowledging. A crash between apply and append
// loses only unacknowledged work. Checkpointing writes the current graph to
// a temp file, fsyncs, renames over checkpoint.graph, then truncates the
// WAL; records already covered by the checkpoint revision are skipped on
// replay, so a crash anywhere in that sequence recovers consistently.
//
// Side records (AppendSide/SideRecords, wal.go sentinel framing) let the
// application piggyback small opaque state on the same log — the serving
// layer persists parked ranked cursors this way. They do not participate in
// revision continuity and are discarded whenever a checkpoint truncates the
// WAL: side state must always be best-effort reconstructible.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	checkpointFile = "checkpoint.graph"
	walFile        = "wal.log"
)

// StoreOptions tunes durability cadence.
type StoreOptions struct {
	// SyncEvery is the fsync cadence in appended records: 1 (the default)
	// fsyncs every append before it is acknowledged — the crash-safety
	// contract. Larger values batch fsyncs (group commit across batches,
	// bounded-loss), negative never fsyncs (benchmarks).
	SyncEvery int
	// CheckpointBytes triggers an automatic checkpoint when the WAL grows
	// past this size. 0 means the 4MB default; negative disables automatic
	// checkpoints.
	CheckpointBytes int64
}

const defaultCheckpointBytes = 4 << 20

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = defaultCheckpointBytes
	}
	return o
}

// storeCounters are atomics so the /stats read path can observe them while
// the writer appends.
type storeCounters struct {
	walBytes    atomic.Int64
	records     atomic.Uint64
	sideRecords atomic.Uint64
	fsyncs      atomic.Uint64
	checkpoints atomic.Uint64
	replayed    atomic.Uint64
}

// StoreStats is a snapshot of the durability counters.
type StoreStats struct {
	WALBytes        int64  `json:"wal_bytes"`        // bytes of WAL since the last checkpoint
	Records         uint64 `json:"wal_records"`      // delta records appended this process lifetime
	SideRecords     uint64 `json:"wal_side_records"` // side records appended this process lifetime
	Fsyncs          uint64 `json:"wal_fsyncs"`       // fsyncs issued on the WAL
	Checkpoints     uint64 `json:"checkpoints"`      // checkpoints written this process lifetime
	ReplayedRecords uint64 `json:"replayed_records"` // WAL records replayed during recovery
}

// Store is the durable home of one database. Append/Checkpoint/Close follow
// the writer side of the DB contract (one mutator at a time) but are also
// serialized against AppendSide by an internal mutex, because side records
// originate on read paths (a cursor parking mid-pagination) that do not hold
// the application's write lock. Stats and SideRecords are safe concurrently.
type Store struct {
	dir  string
	db   *DB
	wal  *os.File
	opts StoreOptions

	mu        sync.Mutex // serializes Append/AppendSide/Checkpoint/Close
	sinceSync int
	buf       []byte
	sides     []walRecord // side records in the current WAL generation
	c         storeCounters
}

// OpenStore opens (or initializes) the store directory and recovers the
// database from checkpoint + WAL replay.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	db, valid, replayed, sides, err := recoverDB(dir)
	if err != nil {
		return nil, err
	}
	s.db = db
	s.sides = sides
	s.c.replayed.Store(uint64(replayed))
	walPath := filepath.Join(dir, walFile)
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > valid {
		// Torn tail from a crashed append: drop it before reopening for
		// append, so the next record starts at a frame boundary.
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("graph: truncating torn wal tail: %w", err)
		}
	}
	s.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.c.walBytes.Store(valid)
	return s, nil
}

// recoverDB loads checkpoint + WAL from dir and returns the recovered
// database, the valid WAL prefix length, the number of replayed delta
// records, and the side records found in the WAL (in log order). Side
// records are excluded from the revision-continuity checks.
func recoverDB(dir string) (*DB, int64, int, []walRecord, error) {
	db := New()
	if f, err := os.Open(filepath.Join(dir, checkpointFile)); err == nil {
		db, err = func() (*DB, error) { defer f.Close(); return ReadFull(f) }()
		if err != nil {
			return nil, 0, 0, nil, fmt.Errorf("graph: loading checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil, err
	}
	buf, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil, err
	}
	recs, valid, err := parseWAL(buf)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	replayed := 0
	var sides []walRecord
	for _, rec := range recs {
		if rec.Side {
			sides = append(sides, rec)
			continue
		}
		if rec.ToRev <= db.Revision() {
			continue // covered by the checkpoint
		}
		if rec.FromRev != db.Revision() {
			return nil, 0, 0, nil, fmt.Errorf("%w: record window (%d,%d] does not continue revision %d",
				ErrWALCorrupt, rec.FromRev, rec.ToRev, db.Revision())
		}
		if _, err := db.ApplyDelta(rec.Delta); err != nil {
			return nil, 0, 0, nil, fmt.Errorf("graph: wal replay: %w", err)
		}
		if db.Revision() != rec.ToRev {
			return nil, 0, 0, nil, fmt.Errorf("%w: replay reached revision %d, record declares %d",
				ErrWALCorrupt, db.Revision(), rec.ToRev)
		}
		replayed++
	}
	return db, int64(valid), replayed, sides, nil
}

// DB returns the recovered database. The caller owns mutations on it and
// must pair every ApplyDelta with an Append before acknowledging.
func (s *Store) DB() *DB { return s.db }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append frames the already-applied batch (window (fromRev, toRev] on the
// store's DB) onto the WAL and fsyncs per the SyncEvery cadence. After a
// successful Append the batch is durable and may be acknowledged. It then
// checkpoints automatically when the WAL has outgrown CheckpointBytes.
func (s *Store) Append(delta Delta, fromRev, toRev uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = encodeWALRecord(s.buf[:0], walRecord{FromRev: fromRev, ToRev: toRev, Delta: delta})
	if err := s.writeLocked(); err != nil {
		return err
	}
	s.c.records.Add(1)
	if s.opts.CheckpointBytes > 0 && s.c.walBytes.Load() >= s.opts.CheckpointBytes {
		return s.checkpointLocked()
	}
	return nil
}

// AppendSide frames an opaque application side record onto the WAL under the
// same fsync cadence as Append. Side records survive crash recovery (see
// SideRecords) but not checkpoints — the WAL truncation discards them — so
// they must only carry state the application can afford to lose. Unlike
// Append, AppendSide is safe to call from read paths: the internal mutex
// serializes it against the writer.
func (s *Store) AppendSide(kind uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = encodeWALSideRecord(s.buf[:0], kind, blob)
	if err := s.writeLocked(); err != nil {
		return err
	}
	s.c.sideRecords.Add(1)
	s.sides = append(s.sides, walRecord{Side: true, Kind: kind, Blob: append([]byte(nil), blob...)})
	return nil
}

// SideRecords returns the blobs of every side record of the given kind in
// the current WAL generation (recovered at open plus appended since, in log
// order). A checkpoint empties the set.
func (s *Store) SideRecords(kind uint64) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]byte
	for _, rec := range s.sides {
		if rec.Kind == kind {
			out = append(out, rec.Blob)
		}
	}
	return out
}

// writeLocked flushes s.buf to the WAL and applies the fsync cadence.
func (s *Store) writeLocked() error {
	if _, err := s.wal.Write(s.buf); err != nil {
		return err
	}
	s.c.walBytes.Add(int64(len(s.buf)))
	s.sinceSync++
	if s.opts.SyncEvery > 0 && s.sinceSync >= s.opts.SyncEvery {
		if err := s.wal.Sync(); err != nil {
			return err
		}
		s.sinceSync = 0
		s.c.fsyncs.Add(1)
	}
	return nil
}

// Checkpoint writes the current graph as a durable checkpoint and resets
// the WAL. Crash-safe at every step: temp write + fsync + atomic rename,
// and the WAL is truncated only after the rename — replay skips records the
// checkpoint already covers. Side records in the WAL are discarded.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	tmp, err := os.CreateTemp(s.dir, checkpointFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.db.WriteFull(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, checkpointFile)); err != nil {
		return err
	}
	syncDir(s.dir)
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	s.c.walBytes.Store(0)
	s.c.checkpoints.Add(1)
	s.sides = nil
	return nil
}

// Stats returns a snapshot of the durability counters; safe concurrently
// with the writer.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		WALBytes:        s.c.walBytes.Load(),
		Records:         s.c.records.Load(),
		Fsyncs:          s.c.fsyncs.Load(),
		Checkpoints:     s.c.checkpoints.Load(),
		ReplayedRecords: s.c.replayed.Load(),
	}
}

// Close fsyncs and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: rename durability on metadata-journaling filesystems
		d.Close()
	}
}

// Follower tails the WAL of a store owned by another process (a leader),
// maintaining a read-scaling replica: OpenFollower recovers the current
// state exactly like OpenStore (without taking ownership of the files), and
// each Poll applies the records the leader appended since. A torn tail is
// not an error for a follower — it is an append in progress; Poll simply
// stops before it and retries on the next cycle. When the leader
// checkpoints (the WAL shrinks under the follower's offset), Poll reloads
// from the new checkpoint; the DB identity then changes, which callers
// observe via DB().
type Follower struct {
	dir      string
	db       *DB
	off      int64
	replayed atomic.Uint64
	reloads  atomic.Uint64
}

// OpenFollower opens a read-only view of a store directory. Side records in
// the leader's WAL are ignored: they carry leader-local state (e.g. parked
// cursors) that has no meaning on a replica.
func OpenFollower(dir string) (*Follower, error) {
	db, valid, replayed, _, err := recoverDB(dir)
	if err != nil {
		return nil, err
	}
	f := &Follower{dir: dir, db: db, off: valid}
	f.replayed.Store(uint64(replayed))
	return f, nil
}

// DB returns the follower's current database. The pointer changes when a
// leader checkpoint forces a reload; callers should re-read it after every
// Poll.
func (f *Follower) DB() *DB { return f.db }

// Replayed returns the total number of WAL records applied (initial
// recovery plus tailing), and Reloads the number of checkpoint-forced
// reloads. Safe concurrently with Poll per the usual single-writer rule.
func (f *Follower) Replayed() uint64 { return f.replayed.Load() }
func (f *Follower) Reloads() uint64  { return f.reloads.Load() }

// Poll applies every complete record the leader appended since the last
// Poll and returns how many were applied. Poll mutates the follower's DB:
// it must not run concurrently with readers of DB() — the serving layer
// publishes snapshots, exactly like a leader's writer goroutine.
func (f *Follower) Poll() (int, error) {
	fi, err := os.Stat(filepath.Join(f.dir, walFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if fi.Size() < f.off {
		// The leader checkpointed and reset the WAL: our offset is in a
		// discarded generation.
		return f.reload()
	}
	if fi.Size() == f.off {
		return 0, nil
	}
	wal, err := os.Open(filepath.Join(f.dir, walFile))
	if err != nil {
		return 0, err
	}
	defer wal.Close()
	buf := make([]byte, fi.Size()-f.off)
	n, err := wal.ReadAt(buf, f.off)
	if err != nil && !errors.Is(err, io.EOF) {
		return 0, err
	}
	recs, valid, err := parseWAL(buf[:n])
	if err != nil {
		// Misaligned tail: the leader checkpointed and the new WAL already
		// grew past our stale offset, so we read from mid-frame. A reload
		// from the checkpoint resolves it (genuine corruption resurfaces
		// there as an error).
		return f.reload()
	}
	applied := 0
	for _, rec := range recs {
		if rec.Side {
			continue // leader-local side state; not part of the lineage
		}
		if rec.ToRev <= f.db.Revision() {
			continue
		}
		if rec.FromRev != f.db.Revision() {
			return f.reload() // revision gap: same stale-offset cause
		}
		if _, err := f.db.ApplyDelta(rec.Delta); err != nil {
			return applied, fmt.Errorf("graph: follower replay: %w", err)
		}
		applied++
		f.replayed.Add(1)
	}
	f.off += int64(valid)
	return applied, nil
}

// reload re-recovers from checkpoint + WAL. If the on-disk pair is
// transiently older than the follower's state (we raced the leader's
// checkpoint rename), the current state is kept and the next Poll retries.
func (f *Follower) reload() (int, error) {
	db, valid, replayed, _, err := recoverDB(f.dir)
	if err != nil || db.Revision() < f.db.Revision() {
		return 0, err
	}
	applied := int(db.Revision() - f.db.Revision())
	f.db, f.off = db, valid
	f.replayed.Add(uint64(replayed))
	f.reloads.Add(1)
	return applied, nil
}
