package graph

import (
	"fmt"
	"testing"
)

// buildSkewed returns a graph with a strong degree skew: node 0 is a hub
// with an edge to every other node, the rest form a sparse chain.
func buildSkewed(n int) *DB {
	d := New()
	for i := 0; i < n; i++ {
		d.AddNode()
	}
	for v := 1; v < n; v++ {
		d.AddEdge(0, 'a', v)
	}
	for v := 0; v+1 < n; v++ {
		d.AddEdge(v, 'b', v+1)
	}
	return d
}

func TestPartitionCoversContiguously(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 100} {
		d := buildSkewed(n)
		if n == 0 {
			d = New()
		}
		for _, k := range []int{1, 2, 3, 4, 8, 1000} {
			p := d.Partition(k)
			if p.NumNodes() != n {
				t.Fatalf("n=%d k=%d: NumNodes=%d", n, k, p.NumNodes())
			}
			s := p.NumShards()
			if s&(s-1) != 0 || s < 1 {
				t.Fatalf("n=%d k=%d: shard count %d not a power of two", n, k, s)
			}
			if n > 0 && s > n {
				t.Fatalf("n=%d k=%d: %d shards exceed node count", n, k, s)
			}
			lo0, _ := p.Range(0)
			if lo0 != 0 {
				t.Fatalf("n=%d k=%d: first range starts at %d", n, k, lo0)
			}
			prevHi := int32(0)
			for sh := 0; sh < s; sh++ {
				lo, hi := p.Range(sh)
				if lo != prevHi {
					t.Fatalf("n=%d k=%d: shard %d range [%d,%d) not contiguous after %d", n, k, sh, lo, hi, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d k=%d: shard %d inverted range", n, k, sh)
				}
				if n >= s && hi == lo {
					t.Fatalf("n=%d k=%d: shard %d empty", n, k, sh)
				}
				for v := lo; v < hi; v++ {
					if p.ShardOf(v) != sh {
						t.Fatalf("n=%d k=%d: ShardOf(%d)=%d, want %d", n, k, v, p.ShardOf(v), sh)
					}
				}
				prevHi = hi
			}
			if int(prevHi) != n {
				t.Fatalf("n=%d k=%d: ranges cover %d of %d nodes", n, k, prevHi, n)
			}
		}
	}
}

func TestPartitionDegreeBalance(t *testing.T) {
	// The hub node carries about half the total adjacency weight; a degree-
	// balanced 4-way cut must therefore give the hub's shard far fewer nodes
	// than a uniform cut would, and no shard should exceed ~2x the mean
	// weight (the hub alone is an unavoidable outlier bounded by one node).
	d := buildSkewed(256)
	p := d.Partition(4)
	if p.NumShards() != 4 {
		t.Fatalf("NumShards=%d, want 4", p.NumShards())
	}
	var total int64
	for s := 0; s < 4; s++ {
		total += p.Weight(s)
	}
	_, hubHi := p.Range(0)
	if hubHi > 128 {
		t.Fatalf("hub shard owns %d of 256 nodes; cut is not degree-balanced", hubHi)
	}
	mean := total / 4
	for s := 1; s < 4; s++ { // shard 0 holds the single-node hub outlier
		if w := p.Weight(s); w > 2*mean+256 {
			t.Fatalf("shard %d weight %d exceeds 2x mean %d", s, w, mean)
		}
	}
}

func TestPartitionRevisionCached(t *testing.T) {
	d := buildSkewed(64)
	p1 := d.Partition(4)
	if p2 := d.Partition(4); p2 != p1 {
		t.Fatal("same revision, same shard count: partition not reused")
	}
	before := d.MaintStats().PartitionRebuilds
	if p3 := d.Partition(8); p3 == p1 || p3.NumShards() != 8 {
		t.Fatal("shard-count change must rebuild the partition")
	}
	if got := d.MaintStats().PartitionRebuilds; got != before+1 {
		t.Fatalf("PartitionRebuilds=%d, want %d", got, before+1)
	}
	p4 := d.Partition(8)
	d.AddEdge(0, 'c', 5)
	if p5 := d.Partition(8); p5 == p4 {
		t.Fatal("mutation must invalidate the cached partition")
	}
}

func TestPartitionShardOfMatchesRanges(t *testing.T) {
	for seed := 0; seed < 4; seed++ {
		d := New()
		n := 50 + seed*37
		for i := 0; i < n; i++ {
			d.AddNode()
		}
		for i := 0; i < 3*n; i++ {
			d.AddEdge((i*7+seed)%n, 'a', (i*13+1)%n)
		}
		p := d.Partition(8)
		for v := 0; v < n; v++ {
			sh := p.ShardOf(int32(v))
			lo, hi := p.Range(sh)
			if int32(v) < lo || int32(v) >= hi {
				t.Fatalf("seed %d: node %d routed to shard %d with range [%d,%d)", seed, v, sh, lo, hi)
			}
		}
	}
}

func ExampleDB_Partition() {
	d := buildSkewed(16)
	p := d.Partition(2)
	lo, hi := p.Range(0)
	fmt.Println(p.NumShards(), lo, hi < 8)
	// Output: 2 0 true
}
