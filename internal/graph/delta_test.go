package graph

import (
	"reflect"
	"testing"
)

// rebuildFrom returns a structurally fresh DB with the same node interning
// order and edge multiset as d — the ground truth every delta-maintained
// view is compared against.
func rebuildFrom(d *DB) *DB {
	f := New()
	for id := 0; id < d.NumNodes(); id++ {
		f.Node(d.Name(id))
	}
	for u := 0; u < d.NumNodes(); u++ {
		for _, e := range d.Out(u) {
			f.AddEdge(e.From, e.Label, e.To)
		}
	}
	return f
}

// assertIndexEqual compares every (node, label) span of the two databases'
// indexes as multisets.
func assertIndexEqual(t *testing.T, label string, got, want *DB) {
	t.Helper()
	gix, wix := got.Index(), want.Index()
	if gix.NumNodes() != wix.NumNodes() {
		t.Fatalf("%s: index nodes %d, want %d", label, gix.NumNodes(), wix.NumNodes())
	}
	counts := func(sp []int32) map[int32]int {
		m := map[int32]int{}
		for _, v := range sp {
			m[v]++
		}
		return m
	}
	for u := 0; u < wix.NumNodes(); u++ {
		for _, r := range want.Alphabet() {
			if g, w := counts(gix.OutByLabel(u, r)), counts(wix.OutByLabel(u, r)); !reflect.DeepEqual(g, w) {
				t.Fatalf("%s: out span (%d, %c): %v, want %v", label, u, r, g, w)
			}
			if g, w := counts(gix.InByLabel(u, r)), counts(wix.InByLabel(u, r)); !reflect.DeepEqual(g, w) {
				t.Fatalf("%s: in span (%d, %c): %v, want %v", label, u, r, g, w)
			}
		}
	}
	if !reflect.DeepEqual(got.Alphabet(), want.Alphabet()) {
		t.Fatalf("%s: alphabet %q, want %q", label, string(got.Alphabet()), string(want.Alphabet()))
	}
}

// assertStatsEqual compares the full statistics snapshots.
func assertStatsEqual(t *testing.T, label string, got, want *DB) {
	t.Helper()
	g, w := got.Stats(), want.Stats()
	if g.Nodes != w.Nodes || g.Edges != w.Edges {
		t.Fatalf("%s: stats totals (%d, %d), want (%d, %d)", label, g.Nodes, g.Edges, w.Nodes, w.Edges)
	}
	for _, ls := range w.BySym {
		gl, ok := g.Label(ls.Sym)
		if !ok || gl != ls {
			t.Fatalf("%s: label %c stats %+v, want %+v", label, ls.Sym, gl, ls)
		}
	}
	if len(g.BySym) != len(w.BySym) {
		t.Fatalf("%s: %d label stats, want %d", label, len(g.BySym), len(w.BySym))
	}
}

func TestApplyDeltaMaintainsDerivedState(t *testing.T) {
	d := MustParse("u a v\nv b w\nw a u\nu b w")
	// Materialize every derived view before mutating.
	d.Index()
	d.Stats()
	d.Alphabet()

	steps := []Delta{
		{Add: []DeltaEdge{{"v", 'a', "w"}}},                                    // existing nodes, existing label
		{Add: []DeltaEdge{{"x", 'b', "u"}, {"x", 'a', "v"}}},                   // interns a new node
		{Add: []DeltaEdge{{"u", 'c', "x"}}},                                    // brand-new label: rebuild path
		{Del: []DeltaEdge{{"u", 'b', "w"}}},                                    // removal: rebuild path
		{Add: []DeltaEdge{{"y", 'a', "y"}}, Del: []DeltaEdge{{"v", 'a', "w"}}}, // mixed
	}
	for i, delta := range steps {
		info, err := d.ApplyDelta(delta)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if want := len(delta.Del) == 0; info.InsertOnly() != want {
			t.Fatalf("step %d: InsertOnly=%v, want %v", i, info.InsertOnly(), want)
		}
		fresh := rebuildFrom(d)
		assertIndexEqual(t, "step", d, fresh)
		assertStatsEqual(t, "step", d, fresh)
		if d.NumEdges() != fresh.NumEdges() {
			t.Fatalf("step %d: %d edges, want %d", i, d.NumEdges(), fresh.NumEdges())
		}
	}
}

// TestDeltaRetainedCounters is the regression test for the former
// rebuild-everything behavior: a delta touching one label must leave every
// other label's statistics retained, revalidate the alphabet without
// recomputation, and extend the index rather than rebuild it.
func TestDeltaRetainedCounters(t *testing.T) {
	d := MustParse("u a v\nv b w\nw c u")
	d.Index()
	d.Stats()
	d.Alphabet()
	base := d.MaintStats()

	if _, err := d.ApplyDelta(Delta{Add: []DeltaEdge{{"u", 'a', "w"}}}); err != nil {
		t.Fatal(err)
	}
	d.Index()
	d.Stats()
	d.Alphabet()
	ms := d.MaintStats()

	if got := ms.IndexExtended - base.IndexExtended; got != 1 {
		t.Fatalf("IndexExtended moved by %d, want 1 (%+v)", got, ms)
	}
	if ms.IndexRebuilds != base.IndexRebuilds {
		t.Fatalf("index rebuilt on an insert-only single-label delta (%+v)", ms)
	}
	if got := ms.StatsDeltaUpdates - base.StatsDeltaUpdates; got != 1 {
		t.Fatalf("StatsDeltaUpdates moved by %d, want 1 (%+v)", got, ms)
	}
	// Labels b and c retained, label a recomputed.
	if got := ms.LabelStatsRetained - base.LabelStatsRetained; got != 2 {
		t.Fatalf("LabelStatsRetained moved by %d, want 2 (%+v)", got, ms)
	}
	if got := ms.LabelStatsRecomputed - base.LabelStatsRecomputed; got != 1 {
		t.Fatalf("LabelStatsRecomputed moved by %d, want 1 (%+v)", got, ms)
	}
	if got := ms.AlphaRetained - base.AlphaRetained; got != 1 {
		t.Fatalf("AlphaRetained moved by %d, want 1 (%+v)", got, ms)
	}
	if ms.AlphaRebuilds != base.AlphaRebuilds {
		t.Fatalf("alphabet rebuilt on a known-label delta (%+v)", ms)
	}

	// A removal must take the rebuild path for stats and the index.
	if _, err := d.ApplyDelta(Delta{Del: []DeltaEdge{{"v", 'b', "w"}}}); err != nil {
		t.Fatal(err)
	}
	d.Index()
	d.Stats()
	ms2 := d.MaintStats()
	if ms2.IndexRebuilds != ms.IndexRebuilds+1 || ms2.StatsRebuilds != ms.StatsRebuilds+1 {
		t.Fatalf("removal did not rebuild index/stats: %+v -> %+v", ms, ms2)
	}
	// The removal dropped b's last edge: the alphabet must shrink.
	if string(d.Alphabet()) != "ac" {
		t.Fatalf("alphabet after removing last b edge: %q, want \"ac\"", string(d.Alphabet()))
	}
}

func TestDeltaSinceCancellation(t *testing.T) {
	d := MustParse("u a v\nv a w")
	rev := d.Revision()
	if _, err := d.ApplyDelta(Delta{Add: []DeltaEdge{{"u", 'a', "w"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyDelta(Delta{Del: []DeltaEdge{{"u", 'a', "w"}}}); err != nil {
		t.Fatal(err)
	}
	info := d.DeltaSince(rev)
	if info == nil {
		t.Fatal("window not covered")
	}
	if !info.Empty() {
		t.Fatalf("add-then-remove round trip not empty: %+v", info)
	}
	// Removing first and re-adding cancels the same way.
	rev = d.Revision()
	if _, err := d.ApplyDelta(Delta{Del: []DeltaEdge{{"v", 'a', "w"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyDelta(Delta{Add: []DeltaEdge{{"v", 'a', "w"}}}); err != nil {
		t.Fatal(err)
	}
	if info := d.DeltaSince(rev); info == nil || !info.Empty() {
		t.Fatalf("remove-then-add round trip not empty: %+v", info)
	}
}

func TestDeltaSinceWindow(t *testing.T) {
	d := New()
	u, v := d.Node("u"), d.Node("v")
	rev := d.Revision()
	d.AddEdge(u, 'a', v)
	w := d.Node("w")
	d.AddEdge(v, 'b', w)

	info := d.DeltaSince(rev)
	if info == nil {
		t.Fatal("window not covered")
	}
	if len(info.Added) != 2 || info.NewNodes != 1 || info.FirstNewNode() != w {
		t.Fatalf("unexpected window: %+v", info)
	}
	if string(info.Labels) != "ab" || string(info.NewLabels) != "ab" {
		t.Fatalf("labels %q new %q, want ab/ab", string(info.Labels), string(info.NewLabels))
	}
	if d.DeltaSince(d.Revision()+1) != nil {
		t.Fatal("future revision must not be covered")
	}
	if got := d.DeltaSince(d.Revision()); got == nil || !got.Empty() {
		t.Fatalf("empty window: %+v", got)
	}
}

func TestDeltaLogOverflow(t *testing.T) {
	d := New()
	a, b := d.Node("a"), d.Node("b")
	rev := d.Revision()
	for i := 0; i < maxDeltaLog+10; i++ {
		d.AddEdge(a, 'x', b)
	}
	if d.DeltaSince(rev) != nil {
		t.Fatal("overflowed log must not cover the full window")
	}
	recent := d.Revision() - 5
	info := d.DeltaSince(recent)
	if info == nil || len(info.Added) != 5 {
		t.Fatalf("recent window after overflow: %+v", info)
	}
	// Derived state still correct after overflow (rebuild path).
	fresh := rebuildFrom(d)
	assertIndexEqual(t, "overflow", d, fresh)
	assertStatsEqual(t, "overflow", d, fresh)
}

func TestApplyDeltaRejectsBadRemovals(t *testing.T) {
	d := MustParse("u a v")
	rev := d.Revision()
	cases := []Delta{
		{Del: []DeltaEdge{{"u", 'b', "v"}}},                                    // wrong label
		{Del: []DeltaEdge{{"u", 'a', "z"}}},                                    // unknown node
		{Del: []DeltaEdge{{"u", 'a', "v"}, {"u", 'a', "v"}}},                   // too many occurrences
		{Add: []DeltaEdge{{"u", 'a', "v"}}, Del: []DeltaEdge{{"v", 'a', "u"}}}, // del validated pre-add
	}
	for i, delta := range cases {
		if _, err := d.ApplyDelta(delta); err == nil {
			t.Fatalf("case %d: bad removal accepted", i)
		}
		if d.Revision() != rev || d.NumEdges() != 1 {
			t.Fatalf("case %d: rejected delta left a partial application", i)
		}
	}
}

func TestParseDeltaEdges(t *testing.T) {
	got, err := ParseDeltaEdges("u a v\n# comment\n\n v b w ")
	if err != nil {
		t.Fatal(err)
	}
	want := []DeltaEdge{{"u", 'a', "v"}, {"v", 'b', "w"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if _, err := ParseDeltaEdges("u ab v"); err == nil {
		t.Fatal("multi-rune label accepted")
	}
	if _, err := ParseDeltaEdges("u a"); err == nil {
		t.Fatal("two-field line accepted")
	}
}

// TestIndexExtensionChain drives many consecutive insert-only deltas through
// the same DB so extension chains (and eventually compaction) happen, and
// checks the spans plus path queries against a fresh rebuild each time.
func TestIndexExtensionChain(t *testing.T) {
	d := MustParse("n0 a n1\nn1 b n2\nn2 a n0")
	d.Index()
	names := []string{"n0", "n1", "n2"}
	for i := 0; i < 24; i++ {
		from := names[i%len(names)]
		to := names[(i*7+1)%len(names)]
		delta := Delta{Add: []DeltaEdge{{from, []rune("ab")[i%2], to}}}
		if i%5 == 4 {
			nn := "m" + string(rune('0'+i))
			delta.Add = append(delta.Add, DeltaEdge{nn, 'a', names[0]})
			names = append(names, nn)
		}
		if _, err := d.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		fresh := rebuildFrom(d)
		assertIndexEqual(t, "chain", d, fresh)
		if got, want := d.HasPath(0, "aba", 2), fresh.HasPath(0, "aba", 2); got != want {
			t.Fatalf("step %d: HasPath diverged: %v vs %v", i, got, want)
		}
	}
	if ms := d.MaintStats(); ms.IndexExtended == 0 {
		t.Fatalf("no index extensions happened: %+v", ms)
	}
}
