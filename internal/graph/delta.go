package graph

// This file is the write path of the incremental-update subsystem: batched
// mutations (Delta / ApplyDelta), the per-revision delta log the DB keeps
// next to its revision counter, and the DeltaSince window that lets derived
// state (the CSR index, the per-label statistics, the cached alphabet, a
// prepared-query session's relation caches) maintain itself from the delta
// instead of rebuilding from scratch. MaintStats exposes retained-vs-rebuilt
// counters so callers (and the cxrpq-serve /stats endpoint) can observe
// which path a mutation took.
//
// Soundness model: node ids are dense and never removed, and edge insertion
// is monotone for every reachability relation the evaluation stack derives,
// so an insert-only delta window admits in-place extension of derived
// state; removals and brand-new labels fall back to a rebuild of whatever
// they touch. A window that cancels out (every added edge removed again) is
// reported as empty — the graph is the same multiset of edges, so derived
// state is retained wholesale.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// DeltaEdge is one edge of a batched mutation, by node name (nodes named in
// Add edges are interned on application; Del edges must reference existing
// nodes).
type DeltaEdge struct {
	From  string
	Label rune
	To    string
}

// Delta is a batched mutation: edge additions (interning new nodes as
// needed) and edge removals. Removals refer to edges present before the
// delta is applied; in a multigraph one occurrence of (from, label, to) is
// removed per Del entry.
type Delta struct {
	Add []DeltaEdge
	Del []DeltaEdge
}

// DeltaInfo summarizes the net effect of a revision window (FromRev, ToRev]:
// the added and removed edge multisets with add/remove pairs cancelled, the
// number of nodes interned in the window, and the labels the window touched.
// It is what delta-maintained caches consume to decide between retaining,
// extending and rebuilding their entries.
type DeltaInfo struct {
	FromRev, ToRev uint64
	Added          []Edge // net added edges (id-based)
	Removed        []Edge // net removed edges
	Nodes          int    // node count at ToRev
	NewNodes       int    // nodes interned in the window: ids [Nodes-NewNodes, Nodes)
	Labels         []rune // distinct labels of Added+Removed (sorted)
	NewLabels      []rune // labels first seen in the window (sorted; conservative)
}

// InsertOnly reports whether the window removed nothing — the monotone case
// where derived reachability state can be extended in place.
func (i *DeltaInfo) InsertOnly() bool { return len(i.Removed) == 0 }

// Empty reports whether the window net-changed nothing (e.g. an
// add-then-remove round trip): same edge multiset, same nodes — derived
// state can be retained wholesale.
func (i *DeltaInfo) Empty() bool {
	return len(i.Added) == 0 && len(i.Removed) == 0 && i.NewNodes == 0
}

// FirstNewNode returns the smallest node id interned in the window (== Nodes
// when the window interned none).
func (i *DeltaInfo) FirstNewNode() int { return i.Nodes - i.NewNodes }

// deltaRec is one logged mutation. Records are contiguous: the i-th record
// of the log moves the revision from log.start+i to log.start+i+1.
type deltaRec struct {
	kind   uint8
	edge   Edge // kind recAddNode: From holds the new node id
	newLbl bool // recAddEdge: the label had no edges before this record
}

const (
	recAddNode = uint8(iota)
	recAddEdge
	recDelEdge
)

// maxDeltaLog bounds the log; on overflow the older half is discarded, so
// consumers whose revision predates the retained window rebuild instead.
const maxDeltaLog = 8192

type deltaLog struct {
	start uint64 // revision before recs[0]
	recs  []deltaRec
}

func (l *deltaLog) append(r deltaRec) {
	if len(l.recs) >= maxDeltaLog {
		half := len(l.recs) / 2
		l.start += uint64(half)
		l.recs = append([]deltaRec(nil), l.recs[half:]...)
	}
	l.recs = append(l.recs, r)
}

// maintCounters tracks which maintenance path derived state took; atomic so
// MaintStats can be read concurrently with the (quiescent-writer) contract.
type maintCounters struct {
	idxExtended, idxRetained, idxRebuilt     atomic.Uint64
	statsDelta, statsRebuilt                 atomic.Uint64
	labelStatsRetained, labelStatsRecomputed atomic.Uint64
	alphaRetained, alphaRebuilt              atomic.Uint64
	partRebuilt                              atomic.Uint64
}

// MaintStats is a snapshot of the database's derived-state maintenance
// counters: how often the index, statistics and alphabet were delta-updated
// (or retained outright) versus rebuilt from scratch.
type MaintStats struct {
	IndexExtended uint64 `json:"index_extended"` // CSR view extended in place from an insert-only delta
	IndexRetained uint64 `json:"index_retained"` // CSR view reused unchanged (empty net delta)
	IndexRebuilds uint64 `json:"index_rebuilds"` // CSR view rebuilt from the adjacency lists

	StatsDeltaUpdates    uint64 `json:"stats_delta_updates"`    // statistics updated from a delta
	StatsRebuilds        uint64 `json:"stats_rebuilds"`         // statistics rebuilt from scratch
	LabelStatsRetained   uint64 `json:"label_stats_retained"`   // per-label stat entries carried over untouched
	LabelStatsRecomputed uint64 `json:"label_stats_recomputed"` // per-label stat entries recomputed (label touched by a delta)

	AlphaRetained uint64 `json:"alpha_retained"` // cached alphabet revalidated without recomputation
	AlphaRebuilds uint64 `json:"alpha_rebuilds"` // alphabet re-sorted from the label counts

	PartitionRebuilds uint64 `json:"partition_rebuilds"` // shard map rebuilt (stale revision or shard-count change)
}

// MaintStats returns a snapshot of the maintenance counters.
func (d *DB) MaintStats() MaintStats {
	return MaintStats{
		IndexExtended:        d.maint.idxExtended.Load(),
		IndexRetained:        d.maint.idxRetained.Load(),
		IndexRebuilds:        d.maint.idxRebuilt.Load(),
		StatsDeltaUpdates:    d.maint.statsDelta.Load(),
		StatsRebuilds:        d.maint.statsRebuilt.Load(),
		LabelStatsRetained:   d.maint.labelStatsRetained.Load(),
		LabelStatsRecomputed: d.maint.labelStatsRecomputed.Load(),
		AlphaRetained:        d.maint.alphaRetained.Load(),
		AlphaRebuilds:        d.maint.alphaRebuilt.Load(),
		PartitionRebuilds:    d.maint.partRebuilt.Load(),
	}
}

// DeltaSince returns the net delta of the revision window (rev, Revision()],
// or nil when the log no longer covers the window (the consumer must
// rebuild). Added and removed occurrences of the same (from, label, to)
// cancel, so an add-then-remove round trip reports as Empty. Like every
// other read, it must not run concurrently with mutations.
func (d *DB) DeltaSince(rev uint64) *DeltaInfo {
	cur := d.version
	if rev > cur || rev < d.log.start {
		return nil
	}
	info := &DeltaInfo{FromRev: rev, ToRev: cur, Nodes: len(d.names)}
	addCnt := map[Edge]int{}
	delCnt := map[Edge]int{}
	newLbl := map[rune]bool{}
	for _, r := range d.log.recs[rev-d.log.start:] {
		switch r.kind {
		case recAddNode:
			info.NewNodes++
		case recAddEdge:
			if delCnt[r.edge] > 0 {
				delCnt[r.edge]--
			} else {
				addCnt[r.edge]++
			}
			if r.newLbl {
				newLbl[r.edge.Label] = true
			}
		case recDelEdge:
			if addCnt[r.edge] > 0 {
				addCnt[r.edge]--
			} else {
				delCnt[r.edge]++
			}
		}
	}
	labels := map[rune]bool{}
	materialize := func(cnt map[Edge]int) []Edge {
		var out []Edge
		for e, n := range cnt {
			if n <= 0 {
				continue
			}
			labels[e.Label] = true
			for i := 0; i < n; i++ {
				out = append(out, e)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.Label != b.Label {
				return a.Label < b.Label
			}
			return a.To < b.To
		})
		return out
	}
	info.Added = materialize(addCnt)
	info.Removed = materialize(delCnt)
	info.Labels = sortedLabelSet(labels)
	info.NewLabels = sortedLabelSet(newLbl)
	return info
}

func sortedLabelSet(set map[rune]bool) []rune {
	if len(set) == 0 {
		return nil
	}
	out := make([]rune, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyDelta applies a batched mutation: removals first (validated up front,
// so an invalid delta is rejected before anything is applied), then
// additions, interning nodes named by Add edges as needed. It returns the
// net DeltaInfo of the batch. Mutations must not run concurrently with
// readers (the usual revision contract).
func (d *DB) ApplyDelta(delta Delta) (*DeltaInfo, error) {
	d.mutable()
	fromRev := d.version
	preNodes := len(d.names)
	// Validate removals against the pre-delta multiset.
	need := map[Edge]int{}
	dels := make([]Edge, 0, len(delta.Del))
	for _, de := range delta.Del {
		u, ok := d.byName[de.From]
		if !ok {
			return nil, fmt.Errorf("graph: delta removes edge from unknown node %q", de.From)
		}
		v, ok := d.byName[de.To]
		if !ok {
			return nil, fmt.Errorf("graph: delta removes edge to unknown node %q", de.To)
		}
		e := Edge{From: u, Label: de.Label, To: v}
		need[e]++
		dels = append(dels, e)
	}
	for e, n := range need {
		if have := d.countEdge(e); have < n {
			return nil, fmt.Errorf("graph: delta removes %d occurrences of (%s %c %s), database has %d",
				n, d.names[e.From], e.Label, d.names[e.To], have)
		}
	}
	for _, e := range dels {
		d.removeEdge(e)
	}
	for _, ae := range delta.Add {
		d.AddEdge(d.Node(ae.From), ae.Label, d.Node(ae.To))
	}
	info := d.DeltaSince(fromRev)
	if info == nil {
		// The log overflowed inside the batch (it was larger than the
		// retained window): summarize from the request without add/remove
		// cancellation. Consumers re-reading DeltaSince see the window as
		// uncovered and rebuild, so this summary is reporting-only.
		info = &DeltaInfo{FromRev: fromRev, ToRev: d.version,
			Nodes: len(d.names), NewNodes: len(d.names) - preNodes}
		labels := map[rune]bool{}
		for _, de := range delta.Add {
			e := Edge{From: d.byName[de.From], Label: de.Label, To: d.byName[de.To]}
			info.Added = append(info.Added, e)
			labels[de.Label] = true
		}
		for _, de := range delta.Del {
			e := Edge{From: d.byName[de.From], Label: de.Label, To: d.byName[de.To]}
			info.Removed = append(info.Removed, e)
			labels[de.Label] = true
		}
		info.Labels = sortedLabelSet(labels)
		info.NewLabels = info.Labels // unknown: conservative
	}
	return info, nil
}

// countEdge returns the number of occurrences of e in the database.
func (d *DB) countEdge(e Edge) int {
	if e.From < 0 || e.From >= len(d.out) {
		return 0
	}
	n := 0
	for _, o := range d.out[e.From] {
		if o == e {
			n++
		}
	}
	return n
}

// removeEdge removes one occurrence of e (which must exist), preserving the
// relative order of the remaining adjacency entries.
func (d *DB) removeEdge(e Edge) {
	d.out[e.From] = spliceEdge(d.out[e.From], e)
	d.in[e.To] = spliceEdge(d.in[e.To], e)
	d.nEdges--
	if d.sigma[e.Label] <= 1 {
		delete(d.sigma, e.Label)
	} else {
		d.sigma[e.Label]--
	}
	d.version++
	d.log.append(deltaRec{kind: recDelEdge, edge: e})
}

func spliceEdge(edges []Edge, e Edge) []Edge {
	for i, o := range edges {
		if o == e {
			return append(edges[:i:i], edges[i+1:]...)
		}
	}
	panic("graph: removeEdge: edge not present")
}

// ParseDeltaEdges parses the textual edge-list format ("from label to" per
// line, '#' comments and blank lines ignored) into delta edges — the
// /update request format of cxrpq-serve.
func ParseDeltaEdges(s string) ([]DeltaEdge, error) {
	var out []DeltaEdge
	for lineNo, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		from, label, to, err := parseEdgeLine(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo+1, err)
		}
		out = append(out, DeltaEdge{From: from, Label: label, To: to})
	}
	return out, nil
}

// parseEdgeLine splits one "from label to" triple.
func parseEdgeLine(line string) (from string, label rune, to string, err error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return "", 0, "", fmt.Errorf("want 'from label to', got %q", line)
	}
	rs := []rune(fields[1])
	if len(rs) != 1 {
		return "", 0, "", fmt.Errorf("label must be a single symbol, got %q", fields[1])
	}
	return fields[0], rs[0], fields[2], nil
}
