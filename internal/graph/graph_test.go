package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `
# parent/supervisor example
u1 p u2
u2 s u3
u3 p u1
`

func TestParseAndBasics(t *testing.T) {
	d := MustParse(sample)
	if d.NumNodes() != 3 || d.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", d.NumNodes(), d.NumEdges())
	}
	if got := string(d.Alphabet()); got != "ps" {
		t.Fatalf("alphabet = %q", got)
	}
	u1, _ := d.Lookup("u1")
	u3, _ := d.Lookup("u3")
	if !d.HasPath(u1, "ps", u3) {
		t.Fatal("u1 -p-> u2 -s-> u3 should exist")
	}
	if !d.HasPath(u1, "", u1) {
		t.Fatal("every node has an ε-path to itself")
	}
	if d.HasPath(u1, "sp", u3) {
		t.Fatal("no sp path from u1")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("a b"); err == nil {
		t.Fatal("two fields should fail")
	}
	if _, err := Parse("a xy b"); err == nil {
		t.Fatal("multi-rune label should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	d := MustParse(sample)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumNodes() != d.NumNodes() || d2.NumEdges() != d.NumEdges() {
		t.Fatal("round trip changed graph size")
	}
}

func TestAddPath(t *testing.T) {
	d := New()
	s := d.Node("s")
	tt := d.Node("t")
	d.AddPath(s, "###", tt)
	if !d.HasPath(s, "###", tt) {
		t.Fatal("AddPath should create the labelled path")
	}
	if d.NumNodes() != 4 {
		t.Fatalf("expected 2 intermediate nodes, total 4, got %d", d.NumNodes())
	}
}

func TestPathLabels(t *testing.T) {
	d := MustParse("a x b\nb y c\nc x a")
	labels := d.PathLabels(3, 0)
	// cycle a -x-> b -y-> c -x-> a: all rotations of the xyx pattern appear
	want := map[string]bool{
		"": true, "x": true, "y": true,
		"xy": true, "yx": true, "xx": true,
		"xyx": true, "yxx": true, "xxy": true,
	}
	for _, w := range labels {
		if !want[w] {
			t.Errorf("unexpected path label %q", w)
		}
		delete(want, w)
	}
	if len(want) > 0 {
		t.Errorf("missing path labels: %v", want)
	}
	if got := d.PathLabels(3, 2); len(got) != 2 {
		t.Errorf("cap not honoured: %v", got)
	}
}

func TestPathLabelsOrdered(t *testing.T) {
	// length-then-lexicographic order, ε first (the bitset walk must emit
	// each level already sorted)
	d := MustParse("a x b\nb y c\nc x a\na z c")
	labels := d.PathLabels(2, 0)
	for i := 1; i < len(labels); i++ {
		a, b := labels[i-1], labels[i]
		if len(a) > len(b) || (len(a) == len(b) && a >= b) {
			t.Fatalf("labels out of order at %d: %q before %q (all: %v)", i, a, b, labels)
		}
	}
}

func TestHasPathOfLen(t *testing.T) {
	// chain of 3 edges: paths of every length up to 3, none longer
	d := MustParse("n0 a n1\nn1 b n2\nn2 a n3")
	for n := 0; n <= 3; n++ {
		if !d.HasPathOfLen(n) {
			t.Errorf("chain has a path of length %d", n)
		}
	}
	if d.HasPathOfLen(4) {
		t.Error("chain has no path of length 4")
	}
	// a cycle has paths of every length
	c := MustParse("a x b\nb x a")
	if !c.HasPathOfLen(100) {
		t.Error("cycle has paths of every length")
	}
	// agree with the PathLabels-growth definition
	for n := 1; n <= 5; n++ {
		want := len(d.PathLabels(n, 0)) > len(d.PathLabels(n-1, 0))
		if got := d.HasPathOfLen(n); got != want {
			t.Errorf("HasPathOfLen(%d) = %v, PathLabels growth says %v", n, got, want)
		}
	}
	empty := New()
	if empty.HasPathOfLen(1) {
		t.Error("empty graph has no paths")
	}
	if !MustParse("a x a").HasPathOfLen(0) {
		t.Error("length-0 paths exist at every node")
	}
}

func TestPathWordsBetween(t *testing.T) {
	d := MustParse("a x b\nb y c\na z c")
	ai, _ := d.Lookup("a")
	ci, _ := d.Lookup("c")
	words := d.PathWordsBetween(ai, ci, 2)
	if len(words) != 2 || words[0] != "z" || words[1] != "xy" {
		t.Fatalf("words = %v, want [z xy]", words)
	}
	if got := d.PathWordsBetween(ai, ai, 2); len(got) != 1 || got[0] != "" {
		t.Fatalf("self words = %v, want [ε]", got)
	}
}

func TestReachableBy(t *testing.T) {
	d := MustParse("a x b\nb x c\nb x d")
	ai, _ := d.Lookup("a")
	got := d.ReachableBy(ai, "xx")
	if len(got) != 2 {
		t.Fatalf("ReachableBy = %v", got)
	}
}

func TestMultigraph(t *testing.T) {
	// Multiple edges between the same nodes with different labels.
	d := New()
	u, v := d.Node("u"), d.Node("v")
	d.AddEdge(u, 'a', v)
	d.AddEdge(u, 'b', v)
	d.AddEdge(u, 'a', v) // parallel duplicate allowed (multigraph)
	if d.NumEdges() != 3 {
		t.Fatalf("edges = %d", d.NumEdges())
	}
	if !strings.Contains(string(d.Alphabet()), "a") {
		t.Fatal("alphabet missing a")
	}
}
