package graph

import "math/bits"

// Partition is a degree-balanced sharding of the interned node space, the
// graph-side half of the sharded product-reachability kernel
// (engine.ReachBatch): shard s owns the contiguous node range
// [Range(s)), so each shard's slice of the CSR adjacency is itself
// contiguous — the per-shard working set a frontier-exchange BFS walks is
// cache-resident instead of strided across the whole arrays. Boundaries
// are chosen so every shard carries roughly the same adjacency weight
// (out-degree + in-degree + 1 per node), not the same node count: a hub-
// heavy prefix gets fewer nodes than a sparse tail. The shard count is
// normalized to a power of two and clamped to the node count.
//
// A Partition is immutable and safe for concurrent use. Like Index and
// Stats it is built lazily and revision-cached on the DB (DB.Partition);
// the usual contract applies (mutations must not run concurrently with
// readers).
type Partition struct {
	n       int
	starts  []int32  // shard s owns nodes [starts[s], starts[s+1])
	shardOf []uint16 // node -> owning shard, the kernel's O(1) routing table
	weight  []int64  // per-shard adjacency weight (for balance introspection)
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.starts) - 1 }

// NumNodes returns the number of nodes the partition covers.
func (p *Partition) NumNodes() int { return p.n }

// ShardOf returns the shard owning node v.
func (p *Partition) ShardOf(v int32) int { return int(p.shardOf[v]) }

// Range returns the contiguous node range [lo, hi) owned by shard s.
func (p *Partition) Range(s int) (lo, hi int32) { return p.starts[s], p.starts[s+1] }

// Weight returns the adjacency weight (out-degree + in-degree + 1 summed
// over owned nodes) of shard s — the balance target of the build.
func (p *Partition) Weight(s int) int64 { return p.weight[s] }

// normShards clamps a requested shard count to a power of two in
// [1, min(n, 1<<16)] (shardOf routes through uint16 ids).
func normShards(k, n int) int {
	if n < 1 {
		return 1
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k > 1<<16 {
		k = 1 << 16
	}
	return 1 << (bits.Len(uint(k)) - 1) // largest power of two <= k
}

// buildPartition cuts the node space into `shards` contiguous ranges of
// roughly equal adjacency weight by a single greedy sweep: a boundary is
// placed at the first node where the accumulated weight passes the next
// s/shards quota of the total. At most one boundary lands on any node, and
// a boundary is forced whenever the remaining nodes only just cover the
// remaining shards — together these guarantee every shard nonempty (a hub
// node heavier than several quotas spreads the overdue cuts across the
// following nodes instead of stacking empty ranges on one).
func buildPartition(d *DB, shards int) *Partition {
	n := d.NumNodes()
	shards = normShards(shards, n)
	p := &Partition{
		n:       n,
		starts:  make([]int32, shards+1),
		shardOf: make([]uint16, n),
		weight:  make([]int64, shards),
	}
	var total int64
	for u := 0; u < n; u++ {
		total += int64(1 + len(d.out[u]) + len(d.in[u]))
	}
	var acc int64
	s := 0
	for u := 0; u < n; u++ {
		if s+1 < shards &&
			(n-u == shards-s-1 ||
				(acc*int64(shards) >= total*int64(s+1) && n-u > shards-s-1)) {
			s++
			p.starts[s] = int32(u)
		}
		p.shardOf[u] = uint16(s)
		w := int64(1 + len(d.out[u]) + len(d.in[u]))
		p.weight[s] += w
		acc += w
	}
	for t := s + 1; t <= shards; t++ {
		p.starts[t] = int32(n)
	}
	return p
}

// Partition returns the degree-balanced shard map of the database for the
// given shard count (normalized to a power of two and clamped to the node
// count), computing it on first use and caching it per (revision, shard
// count) like Index and Stats. The returned Partition is immutable and
// safe for concurrent readers; mutations must not run concurrently with
// readers (the usual revision contract).
func (d *DB) Partition(shards int) *Partition {
	want := normShards(shards, d.NumNodes())
	d.partMu.Lock()
	defer d.partMu.Unlock()
	if d.part != nil && d.partVersion == d.version && d.part.NumShards() == want {
		return d.part
	}
	d.part = buildPartition(d, want)
	d.partVersion = d.version
	d.maint.partRebuilt.Add(1)
	return d.part
}
