package graph

import (
	"sort"
	"testing"
)

func collect(edges []Edge, label rune, to bool) []int32 {
	var out []int32
	for _, e := range edges {
		if e.Label != label {
			continue
		}
		if to {
			out = append(out, int32(e.To))
		} else {
			out = append(out, int32(e.From))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sorted32(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexMatchesAdjacency(t *testing.T) {
	d := MustParse(`
a x b
a y c
b x c
c x a
c x b
b y a
`)
	ix := d.Index()
	if ix.NumNodes() != d.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", ix.NumNodes(), d.NumNodes())
	}
	for u := 0; u < d.NumNodes(); u++ {
		for _, r := range d.Alphabet() {
			if got, want := sorted32(ix.OutByLabel(u, r)), collect(d.Out(u), r, true); !equal32(got, want) {
				t.Fatalf("OutByLabel(%d, %c) = %v, want %v", u, r, got, want)
			}
			if got, want := sorted32(ix.InByLabel(u, r)), collect(d.In(u), r, false); !equal32(got, want) {
				t.Fatalf("InByLabel(%d, %c) = %v, want %v", u, r, got, want)
			}
		}
	}
	if got := ix.OutByLabel(0, 'z'); got != nil {
		t.Fatalf("OutByLabel with unknown label = %v, want nil", got)
	}
}

func TestIndexSymInterning(t *testing.T) {
	d := MustParse("a x b\nb y c")
	ix := d.Index()
	if ix.NumSyms() != 2 {
		t.Fatalf("NumSyms = %d, want 2", ix.NumSyms())
	}
	for s := int32(0); s < int32(ix.NumSyms()); s++ {
		r := ix.Sym(s)
		id, ok := ix.SymID(r)
		if !ok || id != s {
			t.Fatalf("SymID(Sym(%d)) = %d,%v", s, id, ok)
		}
	}
	if _, ok := ix.SymID('z'); ok {
		t.Fatal("SymID('z') should not resolve")
	}
}

func TestIndexRebuildsAfterMutation(t *testing.T) {
	d := MustParse("a x b")
	ix1 := d.Index()
	if ix1 != d.Index() {
		t.Fatal("Index should be cached while the DB is unchanged")
	}
	d.AddEdgeNames("b", 'y', "c")
	ix2 := d.Index()
	if ix1 == ix2 {
		t.Fatal("Index should rebuild after AddEdge")
	}
	b, _ := d.Lookup("b")
	c, _ := d.Lookup("c")
	if got := ix2.OutByLabel(b, 'y'); len(got) != 1 || got[0] != int32(c) {
		t.Fatalf("OutByLabel after mutation = %v, want [%d]", got, c)
	}
}
