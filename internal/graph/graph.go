// Package graph implements the graph databases of §2.2: directed,
// edge-labelled multigraphs D = (V_D, E_D) with E_D ⊆ V_D × Σ × V_D. Nodes
// are dense integers with optional string names; a textual format, builders
// and path utilities are provided.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Edge is a single arc (From, Label, To).
type Edge struct {
	From  int
	Label rune
	To    int
}

// DB is a graph database. The zero value is an empty database.
type DB struct {
	names  []string       // node id -> name
	byName map[string]int // name -> node id
	out    [][]Edge       // adjacency by source
	in     [][]Edge       // adjacency by target
	nEdges int
	sigma  map[rune]int // label -> live edge count

	version uint64   // bumped on every mutation
	log     deltaLog // per-revision mutation records (see delta.go)
	maint   maintCounters

	// Snapshot support (see snapshot.go). frozen marks a read-only view
	// returned by Snapshot(): mutators panic on it. layer is the immutable
	// layered name→id map a frozen view resolves Lookup through instead of
	// byName (which frozen views do not carry). The snap* fields live on the
	// live DB only and cache layer/handle construction across Snapshot calls.
	frozen      bool
	layer       *nameLayer
	snapLayer   *nameLayer
	lastSnap    *Snapshot
	lastSnapRev uint64
	snapOnce    bool

	idxMu      sync.Mutex
	idx        *Index
	idxVersion uint64

	statsMu      sync.Mutex
	stats        *Stats
	statsVersion uint64

	alphaMu      sync.Mutex
	alpha        []rune
	alphaOK      bool
	alphaVersion uint64

	partMu      sync.Mutex
	part        *Partition
	partVersion uint64
}

// New returns an empty graph database.
func New() *DB {
	return &DB{byName: map[string]int{}, sigma: map[rune]int{}}
}

// Node returns the id for name, adding a fresh node if necessary.
func (d *DB) Node(name string) int {
	if id, ok := d.byName[name]; ok {
		return id
	}
	d.mutable()
	id := len(d.names)
	d.names = append(d.names, name)
	d.byName[name] = id
	d.out = append(d.out, nil)
	d.in = append(d.in, nil)
	d.version++
	d.log.append(deltaRec{kind: recAddNode, edge: Edge{From: id}})
	return id
}

// AddNode adds an anonymous node and returns its id. The generated "#i"
// name starts at the node count but probes upward until it is fresh: a
// caller may already have interned a node literally named "#3" (delta edge
// lists and test fixtures do), and returning that existing id here would
// silently alias two logically distinct nodes.
func (d *DB) AddNode() int {
	for i := len(d.names); ; i++ {
		name := fmt.Sprintf("#%d", i)
		if _, taken := d.byName[name]; !taken {
			return d.Node(name)
		}
	}
}

// Lookup returns the id of a named node.
func (d *DB) Lookup(name string) (int, bool) {
	if d.layer != nil {
		return d.layer.lookup(name)
	}
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name of node id.
func (d *DB) Name(id int) string { return d.names[id] }

// AddEdge adds the arc (from, label, to); nodes must already exist.
func (d *DB) AddEdge(from int, label rune, to int) {
	d.mutable()
	e := Edge{From: from, Label: label, To: to}
	d.out[from] = append(d.out[from], e)
	d.in[to] = append(d.in[to], e)
	d.nEdges++
	fresh := d.sigma[label] == 0
	d.sigma[label]++
	d.version++
	d.log.append(deltaRec{kind: recAddEdge, edge: e, newLbl: fresh})
}

// Index returns the label-indexed CSR adjacency view of the database,
// building it on first use and maintaining it across mutations: an
// insert-only delta covered by the mutation log extends the previous view
// in place (shared CSR storage plus a small overlay, see extendIndex), a
// net-empty delta retains it outright, and anything else — removals, new
// labels, an overgrown overlay, an uncovered revision window — rebuilds.
// The returned Index is immutable and safe for concurrent readers;
// concurrent Index calls are safe as long as no goroutine is mutating the
// DB.
func (d *DB) Index() *Index {
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	if d.idx != nil && d.idxVersion == d.version {
		return d.idx
	}
	if d.idx != nil {
		if info := d.DeltaSince(d.idxVersion); info != nil && info.InsertOnly() {
			if info.Empty() {
				d.idxVersion = d.version
				d.maint.idxRetained.Add(1)
				return d.idx
			}
			if nix := extendIndex(d, d.idx, info); nix != nil {
				d.idx = nix
				d.idxVersion = d.version
				d.maint.idxExtended.Add(1)
				return d.idx
			}
		}
	}
	d.idx = buildIndex(d)
	d.idxVersion = d.version
	d.maint.idxRebuilt.Add(1)
	return d.idx
}

// Revision returns the database's mutation counter: it is bumped by every
// Node/AddEdge call, so a caller holding derived state (the label index, a
// prepared-query session's relation caches) can detect staleness by
// comparing revisions. Mutations must not run concurrently with readers;
// the revision check supports the sequential mutate-then-query pattern.
func (d *DB) Revision() uint64 { return d.version }

// AddEdgeNames adds an arc between named nodes, creating them as needed.
func (d *DB) AddEdgeNames(from string, label rune, to string) {
	d.AddEdge(d.Node(from), label, d.Node(to))
}

// AddPath adds a path from `from` to `to` labelled with word, creating
// fresh intermediate nodes. It supports the paper's convention of using
// words like "##" as arc labels (Theorem 1's construction).
func (d *DB) AddPath(from int, word string, to int) {
	rs := []rune(word)
	if len(rs) == 0 {
		return // ε-paths exist implicitly (length-0 paths)
	}
	cur := from
	for i, r := range rs {
		next := to
		if i < len(rs)-1 {
			next = d.AddNode()
		}
		d.AddEdge(cur, r, next)
		cur = next
	}
}

// NumNodes returns |V_D|.
func (d *DB) NumNodes() int { return len(d.names) }

// NumEdges returns |E_D|.
func (d *DB) NumEdges() int { return d.nEdges }

// Size returns |D| = |V_D| + |E_D|, the size measure used in the paper.
func (d *DB) Size() int { return d.NumNodes() + d.nEdges }

// Out returns the outgoing edges of node u (caller must not modify).
func (d *DB) Out(u int) []Edge { return d.out[u] }

// In returns the incoming edges of node u (caller must not modify).
func (d *DB) In(u int) []Edge { return d.in[u] }

// Alphabet returns the sorted set of edge labels. The slice is cached (it
// feeds RelationFor and the alphabet merges on every evaluation) and shared
// between callers: treat it as immutable. A mutation that cannot change the
// label set — a delta touching only labels that keep at least one edge —
// revalidates the cached slice instead of recomputing it; anything else
// re-sorts from the per-label counts. The usual revision contract applies
// (mutations must not run concurrently with readers).
func (d *DB) Alphabet() []rune {
	d.alphaMu.Lock()
	defer d.alphaMu.Unlock()
	if d.alphaOK && d.alphaVersion == d.version {
		return d.alpha
	}
	if d.alphaOK {
		if info := d.DeltaSince(d.alphaVersion); info != nil && d.alphaCoversLocked(info) {
			d.alphaVersion = d.version
			d.maint.alphaRetained.Add(1)
			return d.alpha
		}
	}
	out := make([]rune, 0, len(d.sigma))
	for r := range d.sigma {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	d.alpha = out
	d.alphaOK = true
	d.alphaVersion = d.version
	d.maint.alphaRebuilt.Add(1)
	return d.alpha
}

// alphaCoversLocked reports whether the cached alphabet is still exactly the
// label set after the delta window: every label the window touched must be
// present in the cache iff it still has live edges.
func (d *DB) alphaCoversLocked(info *DeltaInfo) bool {
	check := func(r rune) bool {
		i := sort.Search(len(d.alpha), func(i int) bool { return d.alpha[i] >= r })
		cached := i < len(d.alpha) && d.alpha[i] == r
		return cached == (d.sigma[r] > 0)
	}
	for _, r := range info.Labels {
		if !check(r) {
			return false
		}
	}
	for _, r := range info.NewLabels {
		if !check(r) {
			return false
		}
	}
	return true
}

// Names returns the node names in id order.
func (d *DB) Names() []string { return append([]string(nil), d.names...) }

// HasPath reports whether D contains a path from u to v labelled word
// (length-0 ε-paths from every node to itself included). The frontier is a
// node bitset advanced over the label-indexed CSR spans, the same machinery
// as PathLabels/HasPathOfLen.
func (d *DB) HasPath(u int, word string, v int) bool {
	n := d.NumNodes()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	ix := d.Index()
	words := (n + 63) / 64
	cur := make([]uint64, words)
	cur[u/64] |= 1 << (uint(u) % 64)
	next := make([]uint64, words)
	for _, r := range word {
		s, ok := ix.SymID(r)
		if !ok {
			return false
		}
		clear(next)
		any := false
		for wi, bs := range cur {
			for bs != 0 {
				p := wi*64 + bits.TrailingZeros64(bs)
				bs &= bs - 1
				for _, q := range ix.OutByID(p, s) {
					next[q/64] |= 1 << (uint(q) % 64)
					any = true
				}
			}
		}
		if !any {
			return false
		}
		cur, next = next, cur
	}
	return cur[v/64]&(1<<(uint(v)%64)) != 0
}

// PathLabels returns the set of distinct words of length ≤ maxLen that
// label at least one path in D, capped at maxWords entries (<= 0 means
// unlimited), in length-then-lexicographic order. Used for candidate
// pruning in the CXRPQ^≤k evaluation: every variable image must label a
// path of D.
//
// The walk is level-synchronous over the label-indexed CSR view: each live
// word carries one bitset of end nodes, and a word's extensions come from
// the per-symbol adjacency spans of its set bits. Words within a level are
// pairwise distinct by construction (a parent word has exactly one
// extension per symbol), and since parents are lexicographically ordered
// and symbol ids are interned from the sorted alphabet, each level is
// emitted already sorted.
func (d *DB) PathLabels(maxLen, maxWords int) []string {
	out := []string{""}
	n := d.NumNodes()
	if maxLen <= 0 || n == 0 {
		return out
	}
	ix := d.Index()
	nSyms := ix.NumSyms()
	words := (n + 63) / 64
	type cfg struct {
		word  string
		nodes []uint64
	}
	all := make([]uint64, words)
	for u := 0; u < n; u++ {
		all[u/64] |= 1 << (u % 64)
	}
	level := []cfg{{"", all}}
	for length := 1; length <= maxLen && len(level) > 0; length++ {
		var next []cfg
		for _, c := range level {
			for s := int32(0); s < int32(nSyms); s++ {
				var nb []uint64
				for wi, bs := range c.nodes {
					for bs != 0 {
						u := wi*64 + bits.TrailingZeros64(bs)
						bs &= bs - 1
						for _, v := range ix.OutByID(u, s) {
							if nb == nil {
								nb = make([]uint64, words)
							}
							nb[v/64] |= 1 << (uint(v) % 64)
						}
					}
				}
				if nb != nil {
					next = append(next, cfg{c.word + string(ix.Sym(s)), nb})
				}
			}
		}
		for _, c := range next {
			out = append(out, c.word)
			if maxWords > 0 && len(out) >= maxWords {
				return out
			}
		}
		level = next
	}
	return out
}

// HasPathOfLen reports whether D contains a path of exactly n edges (and
// hence of every shorter length). It is the single-pass frontier sweep that
// replaces comparing PathLabels(n) against PathLabels(n-1): only node
// bitsets are propagated, no words are materialized.
func (d *DB) HasPathOfLen(n int) bool {
	if n <= 0 {
		return d.NumNodes() > 0 // length-0 paths exist at every node
	}
	nn := d.NumNodes()
	words := (nn + 63) / 64
	cur := make([]uint64, words)
	for u := 0; u < nn; u++ {
		cur[u/64] |= 1 << (u % 64)
	}
	for step := 0; step < n; step++ {
		next := make([]uint64, words)
		any := false
		for wi, bs := range cur {
			for bs != 0 {
				u := wi*64 + bits.TrailingZeros64(bs)
				bs &= bs - 1
				for _, e := range d.out[u] {
					next[e.To/64] |= 1 << (uint(e.To) % 64)
					any = true
				}
			}
		}
		if !any {
			return false
		}
		cur = next
	}
	return true
}

// Write serialises the database in the textual format accepted by Read:
// one "from label to" triple per line.
func (d *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u := range d.out {
		for _, e := range d.out[u] {
			if _, err := fmt.Fprintf(bw, "%s %c %s\n", d.names[e.From], e.Label, d.names[e.To]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFull serialises the database in the checkpoint superset of the Write
// format: a "#cxrpq v1 rev=R" header, one "#node <name>" directive per node
// in id order, then the Write edge lines. Unlike Write, the output
// reconstructs isolated nodes, the exact name→id assignment, and the
// revision lineage — everything the WAL checkpoint needs. Plain Read treats
// the directives as comments, so a checkpoint file still loads as a graph
// with older tooling (minus isolated nodes).
func (d *DB) WriteFull(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#cxrpq v1 rev=%d\n", d.version); err != nil {
		return err
	}
	for _, name := range d.names {
		if _, err := fmt.Fprintf(bw, "#node %s\n", name); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return d.Write(w)
}

// ReadFull parses the WriteFull checkpoint format. "#node" directives are
// interned in file order (restoring the id assignment), "#cxrpq ... rev=R"
// pins the revision counter, and every remaining line — including lines
// whose from-node happens to start with '#', which plain Read would drop as
// comments — is parsed as an edge when its first field names a declared
// node. Lines starting with '#' that do not resolve to a declared node stay
// comments, keeping ReadFull a superset of Read.
func ReadFull(r io.Reader) (*DB, error) {
	d := New()
	var rev uint64
	haveRev := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#cxrpq "):
			for _, f := range strings.Fields(line)[1:] {
				if v, ok := strings.CutPrefix(f, "rev="); ok {
					if _, err := fmt.Sscanf(v, "%d", &rev); err != nil {
						return nil, fmt.Errorf("graph: line %d: bad rev %q", lineNo, v)
					}
					haveRev = true
				}
			}
			continue
		case strings.HasPrefix(line, "#node "):
			d.Node(strings.TrimSpace(strings.TrimPrefix(line, "#node ")))
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first := strings.Fields(line)[0]; !d.hasName(first) {
				continue // genuine comment
			}
		}
		from, label, to, err := parseEdgeLine(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		d.AddEdgeNames(from, label, to)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if haveRev {
		d.forceRevision(rev)
	}
	return d, nil
}

func (d *DB) hasName(name string) bool {
	_, ok := d.byName[name]
	return ok
}

// forceRevision pins the revision counter to rev (used when reloading a
// checkpoint: the reload replays a different op count than the lineage the
// WAL's record windows refer to). The mutation log is cleared — DeltaSince
// windows older than rev report uncovered, which is the truth.
func (d *DB) forceRevision(rev uint64) {
	d.version = rev
	d.log = deltaLog{start: rev}
}

// Read parses the textual format: one edge per line, "from label to";
// blank lines and lines starting with '#' are ignored.
func Read(r io.Reader) (*DB, error) {
	d := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		from, label, to, err := parseEdgeLine(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		d.AddEdgeNames(from, label, to)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Parse parses the textual format from a string.
func Parse(s string) (*DB, error) { return Read(strings.NewReader(s)) }

// MustParse is Parse but panics on error.
func MustParse(s string) *DB {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}
