package graph

import (
	"math/rand"
	"testing"
)

func TestStatsBasic(t *testing.T) {
	d := MustParse("u a v\nu a w\nv a w\nv b u\nw b u")
	st := d.Stats()
	if st.Nodes != 3 || st.Edges != 5 {
		t.Fatalf("Nodes/Edges = %d/%d, want 3/5", st.Nodes, st.Edges)
	}
	a, ok := st.Label('a')
	if !ok {
		t.Fatal("label a missing")
	}
	// a-edges: u->v, u->w, v->w: 3 edges, srcs {u,v}, tgts {v,w}, max out 2.
	if a.Edges != 3 || a.Srcs != 2 || a.Tgts != 2 || a.MaxOut != 2 || a.MaxIn != 2 {
		t.Fatalf("a stats = %+v", a)
	}
	if got := a.AvgOut(); got != 1.5 {
		t.Fatalf("a.AvgOut() = %v, want 1.5", got)
	}
	b, ok := st.Label('b')
	if !ok {
		t.Fatal("label b missing")
	}
	if b.Edges != 2 || b.Srcs != 2 || b.Tgts != 1 || b.MaxOut != 1 || b.MaxIn != 2 {
		t.Fatalf("b stats = %+v", b)
	}
	if _, ok := st.Label('z'); ok {
		t.Fatal("label z should be absent")
	}
}

func TestStatsRevisionCached(t *testing.T) {
	d := MustParse("u a v")
	s1 := d.Stats()
	if s2 := d.Stats(); s2 != s1 {
		t.Fatal("Stats not cached across calls at the same revision")
	}
	d.AddEdgeNames("v", 'b', "w")
	s3 := d.Stats()
	if s3 == s1 {
		t.Fatal("Stats not invalidated by a mutation")
	}
	if _, ok := s3.Label('b'); !ok {
		t.Fatal("new label missing from recomputed stats")
	}
}

func TestAlphabetCached(t *testing.T) {
	d := MustParse("u b v\nv a w")
	a1 := d.Alphabet()
	if string(a1) != "ab" {
		t.Fatalf("Alphabet = %q, want %q", string(a1), "ab")
	}
	a2 := d.Alphabet()
	if &a1[0] != &a2[0] {
		t.Fatal("Alphabet not cached: repeated calls returned distinct slices")
	}
	d.AddEdgeNames("w", 'c', "u")
	a3 := d.Alphabet()
	if string(a3) != "abc" {
		t.Fatalf("Alphabet after mutation = %q, want %q", string(a3), "abc")
	}
	if string(a1) != "ab" {
		t.Fatal("previously returned alphabet slice was mutated")
	}
	// Adding a node (no new label) still bumps the revision; the recomputed
	// alphabet must stay correct.
	d.AddNode()
	if string(d.Alphabet()) != "abc" {
		t.Fatal("alphabet wrong after node-only mutation")
	}
}

// hasPathRef is the pre-planner map-based frontier implementation, kept as
// the behavioral reference for the bitset rewrite.
func hasPathRef(d *DB, u int, word string, v int) bool {
	cur := map[int]bool{u: true}
	for _, r := range word {
		next := map[int]bool{}
		for p := range cur {
			for _, e := range d.Out(p) {
				if e.Label == r {
					next[e.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return cur[v]
}

func TestHasPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abc")
	for trial := 0; trial < 30; trial++ {
		d := New()
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			d.AddNode()
		}
		for e := 0; e < 3*n; e++ {
			d.AddEdge(rng.Intn(n), alphabet[rng.Intn(len(alphabet))], rng.Intn(n))
		}
		words := []string{"", "a", "b", "c", "ab", "ba", "abc", "aa", "cab", "abca", "d", "ad"}
		for _, w := range words {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					got := d.HasPath(u, w, v)
					want := hasPathRef(d, u, w, v)
					if got != want {
						t.Fatalf("trial %d: HasPath(%d, %q, %d) = %v, want %v", trial, u, w, v, got, want)
					}
				}
			}
		}
	}
}

func TestHasPathOutOfRange(t *testing.T) {
	d := MustParse("u a v")
	if d.HasPath(-1, "a", 0) || d.HasPath(0, "a", 99) {
		t.Fatal("out-of-range endpoints must not match")
	}
}
