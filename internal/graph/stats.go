package graph

// Stats is an immutable snapshot of per-label statistics over a DB's CSR
// index, the input of the cost-based query planner (internal/planner): for
// every edge label the edge count, the number of distinct sources and
// targets, and the extremal degrees. Like the Index it is built lazily,
// cached per DB revision (DB.Stats), and safe for concurrent readers.
type Stats struct {
	Nodes int         // |V_D|
	Edges int         // |E_D|
	BySym []LabelStat // indexed by the Index's dense symbol ids
	symID map[rune]int32
}

// LabelStat holds the statistics of a single edge label.
type LabelStat struct {
	Sym    rune // the label
	Edges  int  // number of edges carrying the label
	Srcs   int  // distinct source nodes
	Tgts   int  // distinct target nodes
	MaxOut int  // maximum per-node out-degree under the label
	MaxIn  int  // maximum per-node in-degree under the label
}

// AvgOut returns the mean out-degree over the label's distinct sources.
func (s LabelStat) AvgOut() float64 {
	if s.Srcs == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.Srcs)
}

// AvgIn returns the mean in-degree over the label's distinct targets.
func (s LabelStat) AvgIn() float64 {
	if s.Tgts == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.Tgts)
}

// Label returns the statistics for label r and whether r labels any edge.
func (s *Stats) Label(r rune) (LabelStat, bool) {
	id, ok := s.symID[r]
	if !ok {
		return LabelStat{}, false
	}
	return s.BySym[id], true
}

// Stats returns the per-label statistics of the database, computing them on
// first use and recomputing after mutations (same revision contract as
// Index: mutations must not run concurrently with readers).
func (d *DB) Stats() *Stats {
	ix := d.Index() // ensure the index matches the current revision first
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	if d.stats == nil || d.statsVersion != d.version {
		d.stats = buildStats(d, ix)
		d.statsVersion = d.version
	}
	return d.stats
}

func buildStats(d *DB, ix *Index) *Stats {
	n := ix.NumNodes()
	nSyms := ix.NumSyms()
	st := &Stats{
		Nodes: n,
		Edges: d.NumEdges(),
		BySym: make([]LabelStat, nSyms),
		symID: make(map[rune]int32, nSyms),
	}
	for s := int32(0); s < int32(nSyms); s++ {
		ls := LabelStat{Sym: ix.Sym(s)}
		for u := 0; u < n; u++ {
			if out := len(ix.OutByID(u, s)); out > 0 {
				ls.Edges += out
				ls.Srcs++
				if out > ls.MaxOut {
					ls.MaxOut = out
				}
			}
			if in := len(ix.InByID(u, s)); in > 0 {
				ls.Tgts++
				if in > ls.MaxIn {
					ls.MaxIn = in
				}
			}
		}
		st.BySym[s] = ls
		st.symID[ls.Sym] = s
	}
	return st
}
