package graph

// Stats is an immutable snapshot of per-label statistics over a DB's CSR
// index, the input of the cost-based query planner (internal/planner): for
// every edge label the edge count, the number of distinct sources and
// targets, and the extremal degrees. Like the Index it is built lazily,
// cached per DB revision (DB.Stats), and safe for concurrent readers.
type Stats struct {
	Nodes int         // |V_D|
	Edges int         // |E_D|
	BySym []LabelStat // indexed by the Index's dense symbol ids
	symID map[rune]int32
}

// LabelStat holds the statistics of a single edge label.
type LabelStat struct {
	Sym    rune // the label
	Edges  int  // number of edges carrying the label
	Srcs   int  // distinct source nodes
	Tgts   int  // distinct target nodes
	MaxOut int  // maximum per-node out-degree under the label
	MaxIn  int  // maximum per-node in-degree under the label
}

// AvgOut returns the mean out-degree over the label's distinct sources.
func (s LabelStat) AvgOut() float64 {
	if s.Srcs == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.Srcs)
}

// AvgIn returns the mean in-degree over the label's distinct targets.
func (s LabelStat) AvgIn() float64 {
	if s.Tgts == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.Tgts)
}

// Label returns the statistics for label r and whether r labels any edge.
func (s *Stats) Label(r rune) (LabelStat, bool) {
	id, ok := s.symID[r]
	if !ok {
		return LabelStat{}, false
	}
	return s.BySym[id], true
}

// Stats returns the per-label statistics of the database, computing them on
// first use and maintaining them across mutations (same revision contract
// as Index: mutations must not run concurrently with readers). An
// insert-only delta covered by the mutation log recomputes only the
// LabelStat entries of labels the delta touched and carries every other
// label over unchanged; removals, new labels and uncovered windows rebuild
// the whole snapshot.
func (d *DB) Stats() *Stats {
	ix := d.Index() // ensure the index matches the current revision first
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	if d.stats != nil && d.statsVersion == d.version {
		return d.stats
	}
	if d.stats != nil {
		if info := d.DeltaSince(d.statsVersion); info != nil && info.InsertOnly() && len(info.NewLabels) == 0 {
			d.stats = updateStats(d, ix, d.stats, info)
			d.statsVersion = d.version
			d.maint.statsDelta.Add(1)
			d.maint.labelStatsRetained.Add(uint64(len(d.stats.BySym) - len(info.Labels)))
			d.maint.labelStatsRecomputed.Add(uint64(len(info.Labels)))
			return d.stats
		}
	}
	d.stats = buildStats(d, ix)
	d.statsVersion = d.version
	d.maint.statsRebuilt.Add(1)
	return d.stats
}

// updateStats derives the statistics of the current revision from prev by
// recomputing exactly the labels an insert-only delta touched (one index
// sweep per touched label) and retaining the rest. The caller guarantees
// the delta introduced no new label, so the dense symbol ids of prev.BySym
// still match the index.
func updateStats(d *DB, ix *Index, prev *Stats, info *DeltaInfo) *Stats {
	st := &Stats{
		Nodes: ix.NumNodes(),
		Edges: d.NumEdges(),
		BySym: append([]LabelStat(nil), prev.BySym...),
		symID: prev.symID,
	}
	for _, r := range info.Labels {
		s := prev.symID[r]
		st.BySym[s] = sweepLabel(ix, s)
	}
	return st
}

func buildStats(d *DB, ix *Index) *Stats {
	n := ix.NumNodes()
	nSyms := ix.NumSyms()
	st := &Stats{
		Nodes: n,
		Edges: d.NumEdges(),
		BySym: make([]LabelStat, nSyms),
		symID: make(map[rune]int32, nSyms),
	}
	for s := int32(0); s < int32(nSyms); s++ {
		ls := sweepLabel(ix, s)
		st.BySym[s] = ls
		st.symID[ls.Sym] = s
	}
	return st
}

// sweepLabel computes one label's statistics by a full sweep over the
// index's per-node spans.
func sweepLabel(ix *Index, s int32) LabelStat {
	ls := LabelStat{Sym: ix.Sym(s)}
	for u := 0; u < ix.NumNodes(); u++ {
		if out := len(ix.OutByID(u, s)); out > 0 {
			ls.Edges += out
			ls.Srcs++
			if out > ls.MaxOut {
				ls.MaxOut = out
			}
		}
		if in := len(ix.InByID(u, s)); in > 0 {
			ls.Tgts++
			if in > ls.MaxIn {
				ls.MaxIn = in
			}
		}
	}
	return ls
}
