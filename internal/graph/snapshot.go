package graph

// Snapshot isolation for the mutation path. DB.Snapshot() returns a
// revision-pinned, immutable read view of the database that shares storage
// with the live DB instead of copying it:
//
//   - names is an append-only slice, so the view pins a length-capped header;
//   - out/in adjacency is a fresh outer slice of pinned inner headers — a
//     later AddEdge appends beyond the pinned length (invisible here) and
//     removeEdge reallocates the suffix without touching the shared prefix;
//   - the name→id map is a chain of immutable overlay layers (nameLayer), so
//     a snapshot costs O(new names) instead of O(all names);
//   - the CSR Index, alphabet, statistics and partition caches are carried
//     over pre-warmed when current (the base-plus-overlay Index is exactly
//     the shared-storage mechanism: an extended successor shares the base
//     CSR arrays with every older pinned view).
//
// The contract mirrors the rest of the package: Snapshot() itself must be
// called from the mutator side (never concurrently with Node / AddEdge /
// ApplyDelta), but the returned view is immutable and safe for any number
// of concurrent readers, with no lock shared with the writer. Mutating a
// frozen view panics.

// nameLayer is one immutable layer of the name→id map: over holds the names
// interned in (parent.count, count]. Lookup walks the chain newest-first;
// names are unique and never removed, so shadowing cannot occur. Layers are
// folded into a fresh base map when the chain gets deep or the overlays
// rival the base, keeping lookups O(depth≤maxLayerDepth) and fold cost
// amortized O(1) per interned name.
type nameLayer struct {
	parent  *nameLayer
	over    map[string]int
	count   int // names covered by this layer and its ancestors
	depth   int
	overSum int // total overlay entries on the chain (fold trigger)
}

const maxLayerDepth = 32

func (l *nameLayer) lookup(name string) (int, bool) {
	for cur := l; cur != nil; cur = cur.parent {
		if id, ok := cur.over[name]; ok {
			return id, true
		}
	}
	return 0, false
}

// snapLayerFor returns an immutable layer covering exactly names[:n],
// extending (or folding) the live DB's cached chain.
func (d *DB) snapLayerFor(n int) *nameLayer {
	l := d.snapLayer
	if l != nil && l.count == n {
		return l
	}
	if l == nil || l.depth >= maxLayerDepth || (l.overSum+(n-l.count))*2 >= n {
		base := make(map[string]int, n)
		for id, name := range d.names[:n] {
			base[name] = id
		}
		l = &nameLayer{over: base, count: n, overSum: 0}
	} else {
		over := make(map[string]int, n-l.count)
		for id := l.count; id < n; id++ {
			over[d.names[id]] = id
		}
		l = &nameLayer{parent: l, over: over, count: n,
			depth: l.depth + 1, overSum: l.overSum + len(over)}
	}
	d.snapLayer = l
	return l
}

// Snapshot is a revision-pinned handle on an immutable read view of a DB.
type Snapshot struct {
	db  *DB
	rev uint64
}

// DB returns the frozen read view. It satisfies the full read API of *DB
// (Lookup/Name/Out/In/Index/Alphabet/Stats/Partition/DeltaSince/queries);
// mutators panic on it.
func (s *Snapshot) DB() *DB { return s.db }

// Revision returns the revision the snapshot pins.
func (s *Snapshot) Revision() uint64 { return s.rev }

// Snapshot returns a revision-pinned immutable view of the database. It
// must be called from the mutator side (same quiescence rule as Node /
// AddEdge / ApplyDelta); the returned view is then safe for concurrent
// readers while the live DB keeps mutating. Calling Snapshot twice without
// an intervening mutation returns the same handle; snapshotting a frozen
// view returns a handle on the view itself.
func (d *DB) Snapshot() *Snapshot {
	if d.frozen {
		return &Snapshot{db: d, rev: d.version}
	}
	if d.snapOnce && d.lastSnapRev == d.version && d.lastSnap != nil {
		return d.lastSnap
	}
	n := len(d.names)
	view := &DB{
		names:  d.names[:n:n],
		layer:  d.snapLayerFor(n),
		out:    pinAdj(d.out),
		in:     pinAdj(d.in),
		nEdges: d.nEdges,
		sigma:  cloneSigma(d.sigma),

		version: d.version,
		log:     deltaLog{start: d.log.start, recs: d.log.recs[:len(d.log.recs):len(d.log.recs)]},
		frozen:  true,
	}
	// Pre-warm the derived-state caches on the writer side so the first
	// reader on the new view pays nothing: Index/Alphabet are incrementally
	// maintained on the live DB and shared by pointer.
	view.idx, view.idxVersion = d.Index(), d.version
	view.alpha, view.alphaOK, view.alphaVersion = d.Alphabet(), true, d.version
	d.statsMu.Lock()
	if d.stats != nil && d.statsVersion == d.version {
		view.stats, view.statsVersion = d.stats, d.version
	}
	d.statsMu.Unlock()
	d.partMu.Lock()
	if d.part != nil && d.partVersion == d.version {
		view.part, view.partVersion = d.part, d.version
	}
	d.partMu.Unlock()
	s := &Snapshot{db: view, rev: d.version}
	d.lastSnap, d.lastSnapRev, d.snapOnce = s, d.version, true
	return s
}

// Frozen reports whether d is a read-only snapshot view.
func (d *DB) Frozen() bool { return d.frozen }

// mutable panics when d is a frozen snapshot view. Every mutator calls it
// first, so a reader-side misuse fails loudly instead of corrupting the
// storage shared with other pinned revisions.
func (d *DB) mutable() {
	if d.frozen {
		panic("graph: mutation on a read-only snapshot view")
	}
}

// pinAdj copies the outer adjacency headers, pinning each inner slice at
// its current length: a later append on the live DB either writes beyond
// the pinned length in place (invisible through the pinned header) or
// relocates, and removals reallocate the suffix (spliceEdge's three-index
// append never mutates the shared prefix).
func pinAdj(adj [][]Edge) [][]Edge {
	out := make([][]Edge, len(adj))
	for i, es := range adj {
		out[i] = es[:len(es):len(es)]
	}
	return out
}

func cloneSigma(m map[rune]int) map[rune]int {
	out := make(map[rune]int, len(m))
	for r, n := range m {
		out[r] = n
	}
	return out
}
