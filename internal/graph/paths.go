package graph

// This file provides the brute-force path machinery used by the reference
// oracles in tests: explicit enumeration of path labels between node pairs.

// PathWordsBetween returns the distinct words of length ≤ maxLen labelling a
// path from u to v, in length-then-lexicographic order.
func (d *DB) PathWordsBetween(u, v int, maxLen int) []string {
	type cfg struct {
		word  string
		nodes map[int]bool
	}
	level := []cfg{{"", map[int]bool{u: true}}}
	var out []string
	if u == v {
		out = append(out, "")
	}
	for length := 1; length <= maxLen; length++ {
		var next []cfg
		byWord := map[string]int{}
		for _, c := range level {
			for p := range c.nodes {
				for _, e := range d.out[p] {
					w := c.word + string(e.Label)
					i, ok := byWord[w]
					if !ok {
						i = len(next)
						byWord[w] = i
						next = append(next, cfg{w, map[int]bool{}})
					}
					next[i].nodes[e.To] = true
				}
			}
		}
		for _, c := range next {
			if c.nodes[v] {
				out = append(out, c.word)
			}
		}
		level = next
	}
	return out
}

// ReachableBy returns the set of nodes v such that D has a path from u to v
// labelled word.
func (d *DB) ReachableBy(u int, word string) map[int]bool {
	cur := map[int]bool{u: true}
	for _, r := range word {
		next := map[int]bool{}
		for p := range cur {
			for _, e := range d.out[p] {
				if e.Label == r {
					next[e.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur
}
