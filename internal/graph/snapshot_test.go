package graph

import (
	"fmt"
	"sync"
	"testing"
)

// Regression: AddNode used to derive the anonymous name as "#len(names)",
// so a caller that had already interned a node literally named "#N" got
// that existing id back — two logically distinct nodes silently aliased.
func TestAddNodeAliasRegression(t *testing.T) {
	d := New()
	collided := d.Node("#1") // the name AddNode would generate for the second node
	first := d.AddNode()     // "#0": free
	second := d.AddNode()    // would be "#1" — must probe past the collision
	if first == collided || second == collided || first == second {
		t.Fatalf("AddNode aliased an existing node: #1=%d, AddNode()=%d,%d", collided, first, second)
	}
	if d.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", d.NumNodes())
	}
	seen := map[string]bool{}
	for i := 0; i < d.NumNodes(); i++ {
		if name := d.Name(i); seen[name] {
			t.Fatalf("duplicate node name %q", name)
		} else {
			seen[name] = true
		}
	}
}

func TestAddNodeManyCollisions(t *testing.T) {
	d := New()
	for i := 2; i < 12; i++ {
		d.Node(fmt.Sprintf("#%d", i)) // pre-intern a dense block of generated names
	}
	id := d.AddNode()
	if got := d.Name(id); got != "#12" {
		t.Fatalf("AddNode produced %q, want the first fresh generated name #12", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d := MustParse("u a v\nu a w\nv b w\n")
	snap := d.Snapshot()
	view := snap.DB()
	if snap.Revision() != d.Revision() {
		t.Fatalf("snapshot revision %d != live %d", snap.Revision(), d.Revision())
	}
	if d.Snapshot() != snap {
		t.Fatal("Snapshot without intervening mutation should return the cached handle")
	}

	// Mutate the live DB: add edges and nodes, remove an edge, new label.
	if _, err := d.ApplyDelta(Delta{
		Add: []DeltaEdge{{From: "w", Label: 'c', To: "x"}, {From: "u", Label: 'a', To: "x"}},
		Del: []DeltaEdge{{From: "v", Label: 'b', To: "w"}},
	}); err != nil {
		t.Fatal(err)
	}

	if view.NumNodes() != 3 || view.NumEdges() != 3 {
		t.Fatalf("snapshot sizes changed: %d nodes %d edges", view.NumNodes(), view.NumEdges())
	}
	if _, ok := view.Lookup("x"); ok {
		t.Fatal("snapshot sees a node interned after it was taken")
	}
	if id, ok := d.Lookup("x"); !ok || id != 3 {
		t.Fatalf("live DB lost the new node: id=%d ok=%v", id, ok)
	}
	u, _ := view.Lookup("u")
	v, _ := view.Lookup("v")
	w, _ := view.Lookup("w")
	if len(view.Out(u)) != 2 {
		t.Fatalf("snapshot out(u) = %v", view.Out(u))
	}
	if !view.HasPath(v, "b", w) {
		t.Fatal("snapshot lost the removed-later edge v-b->w")
	}
	if got := string(view.Alphabet()); got != "ab" {
		t.Fatalf("snapshot alphabet = %q, want ab", got)
	}
	if got := string(d.Alphabet()); got != "ac" {
		t.Fatalf("live alphabet = %q, want ac", got)
	}
	if info := view.DeltaSince(snap.Revision()); info == nil || !info.Empty() {
		t.Fatalf("DeltaSince on the pinned view should be empty, got %+v", info)
	}

	// A second snapshot pins the new revision; the first is untouched.
	snap2 := d.Snapshot()
	if snap2 == snap || snap2.Revision() == snap.Revision() {
		t.Fatal("second snapshot should pin the new revision")
	}
	if _, ok := snap2.DB().Lookup("x"); !ok {
		t.Fatal("second snapshot misses the new node")
	}
	if view.NumEdges() != 3 {
		t.Fatal("first snapshot perturbed by taking the second")
	}
	if s3 := view.Snapshot(); s3.DB() != view {
		t.Fatal("snapshotting a frozen view should return the view itself")
	}
}

func TestSnapshotMutatorsPanic(t *testing.T) {
	d := MustParse("u a v\n")
	view := d.Snapshot().DB()
	for name, f := range map[string]func(){
		"Node":       func() { view.Node("fresh") },
		"AddNode":    func() { view.AddNode() },
		"AddEdge":    func() { view.AddEdge(0, 'z', 1) },
		"ApplyDelta": func() { view.ApplyDelta(Delta{Add: []DeltaEdge{{From: "u", Label: 'a', To: "v"}}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a frozen view did not panic", name)
				}
			}()
			f()
		}()
	}
	// Read-path entry points must keep working on the frozen view.
	if id, ok := view.Lookup("u"); !ok || view.Name(id) != "u" {
		t.Fatal("Lookup broken on frozen view")
	}
}

// Many snapshots interleaved with mutations: every pinned view must keep
// resolving exactly the names it covered, and never the later ones. This
// exercises the layered name map across fold boundaries.
func TestSnapshotLayeredLookup(t *testing.T) {
	d := New()
	type pin struct {
		view  *DB
		nodes int
	}
	var pins []pin
	for i := 0; i < 100; i++ {
		a, b := fmt.Sprintf("n%d", 2*i), fmt.Sprintf("n%d", 2*i+1)
		d.AddEdgeNames(a, 'a', b)
		s := d.Snapshot()
		pins = append(pins, pin{view: s.DB(), nodes: d.NumNodes()})
	}
	for k, p := range pins {
		if p.view.NumNodes() != p.nodes {
			t.Fatalf("pin %d: NumNodes %d, want %d", k, p.view.NumNodes(), p.nodes)
		}
		for id := 0; id < p.nodes; id++ {
			name := p.view.Name(id)
			if got, ok := p.view.Lookup(name); !ok || got != id {
				t.Fatalf("pin %d: Lookup(%q) = %d,%v want %d", k, name, got, ok, id)
			}
		}
		if _, ok := p.view.Lookup(fmt.Sprintf("n%d", p.nodes)); ok {
			t.Fatalf("pin %d resolves a name interned later", k)
		}
	}
}

// Readers hold pinned snapshots while the writer keeps mutating — run under
// -race this proves the no-shared-lock contract.
func TestSnapshotConcurrentReaders(t *testing.T) {
	d := MustParse("u a v\nv a w\nw b u\n")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		snap := d.Snapshot()
		wg.Add(1)
		go func(view *DB, wantEdges int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if view.NumEdges() != wantEdges {
					t.Errorf("snapshot edge count drifted: %d != %d", view.NumEdges(), wantEdges)
					return
				}
				ix := view.Index()
				u, _ := view.Lookup("u")
				_ = ix.OutByLabel(u, 'a')
				_ = view.HasPath(u, "aab", u)
			}
		}(snap.DB(), d.NumEdges())
		// Writer keeps going between reader launches.
		for i := 0; i < 50; i++ {
			if _, err := d.ApplyDelta(Delta{Add: []DeltaEdge{
				{From: fmt.Sprintf("m%d_%d", r, i), Label: 'a', To: "u"},
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
