package graph

// Write-ahead log encoding: the durable on-disk form of the per-revision
// mutation log. One record frames one applied Delta batch together with its
// revision window, so replay reproduces the exact lineage the in-memory
// deltaLog describes:
//
//	frame   := length(uint32 LE) crc(uint32 LE) payload
//	payload := fromRev(uvarint) toRev(uvarint) edges(Add) edges(Del)
//	edges   := count(uvarint) { len(from) from len(to) to label(uvarint) }*
//
// The CRC is IEEE CRC-32 over the payload. Recovery distinguishes a torn
// tail (a crash mid-append: the last frame is shorter than its declared
// length, or its CRC fails with nothing after it — truncated and forgotten,
// the batch was never acknowledged) from mid-file corruption (a CRC failure
// with valid data after it — a hard error, the log is not trustworthy).
//
// Side records share the frame format but carry opaque application state
// instead of a Delta batch. They are recognized by a sentinel first uvarint:
//
//	payload := sideFromRev(uvarint = 2^64-1) kind(uvarint) blob(rest)
//
// No real record can declare fromRev 2^64-1 (it would leave no room for
// toRev > fromRev), so old logs parse unchanged. Replay and follower tailing
// skip side records in the revision-continuity checks — they interleave
// freely with delta records. The serving layer uses kind 1 to persist parked
// ranked cursors across restarts (see cmd/cxrpq-serve); blobs are opaque to
// this package. Side records live in the WAL only: a checkpoint truncates
// them away, which is why side state must always be reconstructible (for
// cursors: a lost record degrades to HTTP 410, the pre-persistence
// behavior).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// sideFromRev marks a side-record payload: an impossible fromRev.
const sideFromRev = math.MaxUint64

// walRecord is one framed Delta batch: applying Delta to the graph at
// revision FromRev yields revision ToRev. With Side set it is instead an
// opaque application side record (Kind + Blob) and the other fields are
// meaningless.
type walRecord struct {
	FromRev, ToRev uint64
	Delta          Delta

	Side bool
	Kind uint64
	Blob []byte
}

// maxWALRecord bounds a single record frame; a declared length beyond it is
// treated as corruption rather than an allocation request.
const maxWALRecord = 1 << 30

// ErrWALCorrupt reports a CRC or structural failure in the interior of the
// log — unlike a torn tail, it cannot be explained by a crashed append.
var ErrWALCorrupt = errors.New("graph: wal corrupt")

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendEdges(b []byte, edges []DeltaEdge) []byte {
	b = appendUvarint(b, uint64(len(edges)))
	for _, e := range edges {
		b = appendUvarint(b, uint64(len(e.From)))
		b = append(b, e.From...)
		b = appendUvarint(b, uint64(len(e.To)))
		b = append(b, e.To...)
		b = appendUvarint(b, uint64(uint32(e.Label)))
	}
	return b
}

// encodeWALRecord appends the full frame (header + payload) for rec to b.
func encodeWALRecord(b []byte, rec walRecord) []byte {
	payload := appendUvarint(nil, rec.FromRev)
	payload = appendUvarint(payload, rec.ToRev)
	payload = appendEdges(payload, rec.Delta.Add)
	payload = appendEdges(payload, rec.Delta.Del)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// encodeWALSideRecord appends the full frame for an application side record:
// the sentinel fromRev, the record kind, then the opaque blob.
func encodeWALSideRecord(b []byte, kind uint64, blob []byte) []byte {
	payload := appendUvarint(nil, uint64(sideFromRev))
	payload = appendUvarint(payload, kind)
	payload = append(payload, blob...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

type walDecoder struct {
	buf []byte
	off int
}

func (d *walDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrWALCorrupt)
	}
	d.off += n
	return v, nil
}

func (d *walDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("%w: string overruns payload", ErrWALCorrupt)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *walDecoder) edges() ([]DeltaEdge, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) { // every edge takes ≥ 3 bytes
		return nil, fmt.Errorf("%w: edge count overruns payload", ErrWALCorrupt)
	}
	out := make([]DeltaEdge, 0, n)
	for i := uint64(0); i < n; i++ {
		var e DeltaEdge
		if e.From, err = d.str(); err != nil {
			return nil, err
		}
		if e.To, err = d.str(); err != nil {
			return nil, err
		}
		lbl, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		e.Label = rune(uint32(lbl))
		out = append(out, e)
	}
	return out, nil
}

func decodeWALPayload(payload []byte) (walRecord, error) {
	d := &walDecoder{buf: payload}
	var rec walRecord
	var err error
	if rec.FromRev, err = d.uvarint(); err != nil {
		return rec, err
	}
	if rec.FromRev == sideFromRev {
		rec.Side = true
		if rec.Kind, err = d.uvarint(); err != nil {
			return rec, err
		}
		rec.Blob = append([]byte(nil), d.buf[d.off:]...)
		return rec, nil
	}
	if rec.ToRev, err = d.uvarint(); err != nil {
		return rec, err
	}
	if rec.Delta.Add, err = d.edges(); err != nil {
		return rec, err
	}
	if rec.Delta.Del, err = d.edges(); err != nil {
		return rec, err
	}
	if d.off != len(payload) {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrWALCorrupt, len(payload)-d.off)
	}
	return rec, nil
}

// parseWAL scans buf for complete valid frames. It returns the decoded
// records and the byte length of the valid prefix. A torn tail — an
// incomplete final frame, or a final frame whose CRC fails with no data
// after it — ends the scan cleanly at the last valid frame; interior CRC or
// structural failures return ErrWALCorrupt.
func parseWAL(buf []byte) (recs []walRecord, valid int, err error) {
	off := 0
	for off < len(buf) {
		rem := len(buf) - off
		if rem < 8 {
			return recs, off, nil // torn header
		}
		length := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if length > maxWALRecord {
			return recs, off, fmt.Errorf("%w: frame length %d at offset %d", ErrWALCorrupt, length, off)
		}
		if rem < 8+length {
			return recs, off, nil // torn payload
		}
		payload := buf[off+8 : off+8+length]
		if crc32.ChecksumIEEE(payload) != crc {
			if off+8+length == len(buf) {
				return recs, off, nil // torn final frame
			}
			return recs, off, fmt.Errorf("%w: crc mismatch at offset %d", ErrWALCorrupt, off)
		}
		rec, derr := decodeWALPayload(payload)
		if derr != nil {
			return recs, off, fmt.Errorf("offset %d: %w", off, derr)
		}
		recs = append(recs, rec)
		off += 8 + length
	}
	return recs, off, nil
}
