package graph

import "sort"

// Index is an immutable label-indexed adjacency view of a DB in CSR
// (compressed sparse row) form: for every (node, label) pair the outgoing
// and incoming neighbour lists are contiguous int32 slices, and labels are
// interned as dense symbol ids. It is built once per DB revision (see
// DB.Index) and replaces the per-BFS-step label grouping that the product
// engines previously recomputed at every visited node.
//
// After an insert-only mutation delta the view is extended instead of
// rebuilt (extendIndex): the new Index shares the base CSR arrays of its
// predecessor and carries the touched (node, symbol) spans — plus all spans
// of nodes interned after the base was built — in a small overlay map.
// Lookups check the overlay first (one nil test on the hot path when the
// index is a fresh build); when the overlay grows past a fraction of the
// base, DB.Index compacts by rebuilding. Removals and new labels always
// rebuild, so symbol ids stay the dense ids of the sorted alphabet.
//
// All methods are safe for concurrent use; the returned slices are views
// into shared storage and must not be modified.
type Index struct {
	n     int
	syms  []rune
	symID map[rune]int32
	out   labelCSR
	in    labelCSR

	// Overlay of a delta-extended index. baseN/baseSyms delimit the CSR
	// arrays (built for an older revision); ovOut/ovIn hold the merged
	// spans of every (node, symbol) pair touched since. nil maps mean a
	// fresh build.
	baseN   int
	ovOut   map[int64][]int32
	ovIn    map[int64][]int32
	ovEdges int // overlay-carried edges, the compaction trigger
}

// labelCSR stores, for each (node, symbol id) pair, a span into a flat
// target array: targets of (u, s) are tgt[off[u*S+s]:off[u*S+s+1]].
type labelCSR struct {
	off []int32
	tgt []int32
}

func (c *labelCSR) span(u int, s int32, nSyms int) []int32 {
	i := u*nSyms + int(s)
	return c.tgt[c.off[i]:c.off[i+1]]
}

func buildIndex(d *DB) *Index {
	n := d.NumNodes()
	syms := d.Alphabet()
	symID := make(map[rune]int32, len(syms))
	for i, r := range syms {
		symID[r] = int32(i)
	}
	ix := &Index{n: n, baseN: n, syms: syms, symID: symID}
	ix.out = buildCSR(n, len(syms), symID, d.out, func(e Edge) int { return e.To })
	ix.in = buildCSR(n, len(syms), symID, d.in, func(e Edge) int { return e.From })
	return ix
}

func buildCSR(n, nSyms int, symID map[rune]int32, adj [][]Edge, endpoint func(Edge) int) labelCSR {
	off := make([]int32, n*nSyms+1)
	for u := 0; u < n; u++ {
		for _, e := range adj[u] {
			off[u*nSyms+int(symID[e.Label])+1]++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	tgt := make([]int32, off[len(off)-1])
	fill := make([]int32, n*nSyms)
	for u := 0; u < n; u++ {
		for _, e := range adj[u] {
			i := u*nSyms + int(symID[e.Label])
			tgt[off[i]+fill[i]] = int32(endpoint(e))
			fill[i]++
		}
	}
	return labelCSR{off: off, tgt: tgt}
}

// ovKey packs a (node, symbol id) pair into one overlay map key.
func ovKey(u int, s int32) int64 { return int64(u)<<32 | int64(uint32(s)) }

// extendIndexFrac caps the overlay at 1/extendIndexFrac of the edge count
// before compaction (a full rebuild) kicks in.
const extendIndexFrac = 4

// extendIndex derives the index of the current revision from prev by
// applying an insert-only delta: the CSR arrays are shared, and only the
// (node, symbol) spans the delta touches get fresh merged slices in the
// overlay. It returns nil — asking the caller to rebuild — when the delta
// carries a label unknown to prev (dense ids would shift) or when the
// accumulated overlay would exceed its fraction of the edge set.
func extendIndex(d *DB, prev *Index, info *DeltaInfo) *Index {
	for _, r := range info.Labels {
		if _, ok := prev.symID[r]; !ok {
			return nil
		}
	}
	ovEdges := prev.ovEdges + len(info.Added)
	if ovEdges*extendIndexFrac > d.nEdges+extendIndexFrac {
		return nil
	}
	ix := &Index{
		n:     d.NumNodes(),
		baseN: prev.baseN,
		syms:  prev.syms,
		symID: prev.symID,
		out:   prev.out,
		in:    prev.in,
		ovOut: cloneOverlay(prev.ovOut, len(info.Added)),
		ovIn:  cloneOverlay(prev.ovIn, len(info.Added)),

		ovEdges: ovEdges,
	}
	for _, e := range info.Added {
		s := ix.symID[e.Label]
		ix.ovOut[ovKey(e.From, s)] = ix.appendSpan(ix.ovOut, &ix.out, e.From, s, int32(e.To))
		ix.ovIn[ovKey(e.To, s)] = ix.appendSpan(ix.ovIn, &ix.in, e.To, s, int32(e.From))
	}
	return ix
}

func cloneOverlay(m map[int64][]int32, extra int) map[int64][]int32 {
	out := make(map[int64][]int32, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// appendSpan returns the overlay span of (u, s) with v appended, starting
// from the existing overlay entry or from a fresh copy of the base span.
// Appending to a predecessor's overlay slice is safe: every older index
// sees a strictly shorter length over the same backing array.
func (ix *Index) appendSpan(ov map[int64][]int32, base *labelCSR, u int, s int32, v int32) []int32 {
	if sp, ok := ov[ovKey(u, s)]; ok {
		return append(sp, v)
	}
	var bs []int32
	if u < ix.baseN {
		bs = base.span(u, s, len(ix.syms))
	}
	sp := make([]int32, len(bs), len(bs)+4)
	copy(sp, bs)
	return append(sp, v)
}

// NumNodes returns the number of nodes covered by the index.
func (ix *Index) NumNodes() int { return ix.n }

// NumSyms returns the number of distinct edge labels.
func (ix *Index) NumSyms() int { return len(ix.syms) }

// Sym returns the rune for symbol id s.
func (ix *Index) Sym(s int32) rune { return ix.syms[s] }

// SymID returns the dense id of label r, or false if r labels no edge.
func (ix *Index) SymID(r rune) (int32, bool) {
	s, ok := ix.symID[r]
	return s, ok
}

// OutByID returns the targets of u's outgoing edges labelled with symbol id s.
func (ix *Index) OutByID(u int, s int32) []int32 {
	if ix.ovOut != nil {
		if sp, ok := ix.ovOut[ovKey(u, s)]; ok {
			return sp
		}
	}
	if u < ix.baseN {
		return ix.out.span(u, s, len(ix.syms))
	}
	return nil
}

// InByID returns the sources of u's incoming edges labelled with symbol id s.
func (ix *Index) InByID(u int, s int32) []int32 {
	if ix.ovIn != nil {
		if sp, ok := ix.ovIn[ovKey(u, s)]; ok {
			return sp
		}
	}
	if u < ix.baseN {
		return ix.in.span(u, s, len(ix.syms))
	}
	return nil
}

// OutByLabel returns the targets of u's outgoing edges labelled r.
func (ix *Index) OutByLabel(u int, r rune) []int32 {
	if s, ok := ix.symID[r]; ok {
		return ix.OutByID(u, s)
	}
	return nil
}

// InByLabel returns the sources of u's incoming edges labelled r.
func (ix *Index) InByLabel(u int, r rune) []int32 {
	if s, ok := ix.symID[r]; ok {
		return ix.InByID(u, s)
	}
	return nil
}

// OutDegree returns the number of outgoing edges of u with symbol id s.
func (ix *Index) OutDegree(u int, s int32) int { return len(ix.OutByID(u, s)) }

// SortSpans sorts every neighbour span in place (deterministic iteration
// order for tests; the engines do not rely on it). Overlay spans are copied
// before sorting: their backing arrays may be shared with the predecessor
// index the overlay was extended from.
func (ix *Index) SortSpans() {
	for u := 0; u < ix.baseN; u++ {
		for s := int32(0); s < int32(len(ix.syms)); s++ {
			span := ix.out.span(u, s, len(ix.syms))
			sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
			span = ix.in.span(u, s, len(ix.syms))
			sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
		}
	}
	for _, ov := range []map[int64][]int32{ix.ovOut, ix.ovIn} {
		for k, sp := range ov {
			cp := append([]int32(nil), sp...)
			sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
			ov[k] = cp
		}
	}
}
