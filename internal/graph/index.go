package graph

import "sort"

// Index is an immutable label-indexed adjacency view of a DB in CSR
// (compressed sparse row) form: for every (node, label) pair the outgoing
// and incoming neighbour lists are contiguous int32 slices, and labels are
// interned as dense symbol ids. It is built once per DB revision (see
// DB.Index) and replaces the per-BFS-step label grouping that the product
// engines previously recomputed at every visited node.
//
// All methods are safe for concurrent use; the returned slices are views
// into shared storage and must not be modified.
type Index struct {
	n     int
	syms  []rune
	symID map[rune]int32
	out   labelCSR
	in    labelCSR
}

// labelCSR stores, for each (node, symbol id) pair, a span into a flat
// target array: targets of (u, s) are tgt[off[u*S+s]:off[u*S+s+1]].
type labelCSR struct {
	off []int32
	tgt []int32
}

func (c *labelCSR) span(u int, s int32, nSyms int) []int32 {
	i := u*nSyms + int(s)
	return c.tgt[c.off[i]:c.off[i+1]]
}

func buildIndex(d *DB) *Index {
	n := d.NumNodes()
	syms := d.Alphabet()
	symID := make(map[rune]int32, len(syms))
	for i, r := range syms {
		symID[r] = int32(i)
	}
	ix := &Index{n: n, syms: syms, symID: symID}
	ix.out = buildCSR(n, len(syms), symID, d.out, func(e Edge) int { return e.To })
	ix.in = buildCSR(n, len(syms), symID, d.in, func(e Edge) int { return e.From })
	return ix
}

func buildCSR(n, nSyms int, symID map[rune]int32, adj [][]Edge, endpoint func(Edge) int) labelCSR {
	off := make([]int32, n*nSyms+1)
	for u := 0; u < n; u++ {
		for _, e := range adj[u] {
			off[u*nSyms+int(symID[e.Label])+1]++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	tgt := make([]int32, off[len(off)-1])
	fill := make([]int32, n*nSyms)
	for u := 0; u < n; u++ {
		for _, e := range adj[u] {
			i := u*nSyms + int(symID[e.Label])
			tgt[off[i]+fill[i]] = int32(endpoint(e))
			fill[i]++
		}
	}
	return labelCSR{off: off, tgt: tgt}
}

// NumNodes returns the number of nodes covered by the index.
func (ix *Index) NumNodes() int { return ix.n }

// NumSyms returns the number of distinct edge labels.
func (ix *Index) NumSyms() int { return len(ix.syms) }

// Sym returns the rune for symbol id s.
func (ix *Index) Sym(s int32) rune { return ix.syms[s] }

// SymID returns the dense id of label r, or false if r labels no edge.
func (ix *Index) SymID(r rune) (int32, bool) {
	s, ok := ix.symID[r]
	return s, ok
}

// OutByID returns the targets of u's outgoing edges labelled with symbol id s.
func (ix *Index) OutByID(u int, s int32) []int32 { return ix.out.span(u, s, len(ix.syms)) }

// InByID returns the sources of u's incoming edges labelled with symbol id s.
func (ix *Index) InByID(u int, s int32) []int32 { return ix.in.span(u, s, len(ix.syms)) }

// OutByLabel returns the targets of u's outgoing edges labelled r.
func (ix *Index) OutByLabel(u int, r rune) []int32 {
	if s, ok := ix.symID[r]; ok {
		return ix.out.span(u, s, len(ix.syms))
	}
	return nil
}

// InByLabel returns the sources of u's incoming edges labelled r.
func (ix *Index) InByLabel(u int, r rune) []int32 {
	if s, ok := ix.symID[r]; ok {
		return ix.in.span(u, s, len(ix.syms))
	}
	return nil
}

// OutDegree returns the number of outgoing edges of u with symbol id s.
func (ix *Index) OutDegree(u int, s int32) int { return len(ix.OutByID(u, s)) }

// SortSpans sorts every neighbour span in place (deterministic iteration
// order for tests; the engines do not rely on it).
func (ix *Index) SortSpans() {
	for u := 0; u < ix.n; u++ {
		for s := int32(0); s < int32(len(ix.syms)); s++ {
			span := ix.out.span(u, s, len(ix.syms))
			sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
			span = ix.in.span(u, s, len(ix.syms))
			sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
		}
	}
}
