package separations

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
)

func TestQAnBnDistinguishes(t *testing.T) {
	q := QAnBn()
	for _, tc := range []struct {
		n, m int
		want bool
	}{{2, 2, true}, {4, 4, true}, {2, 3, false}, {0, 0, true}, {1, 0, false}} {
		db := DnMPaths(tc.n, tc.m, 'b')
		got, err := ecrpq.EvalBool(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("q_anbn on D_{%d,%d}: got %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestQAnAnDistinguishes(t *testing.T) {
	q := QAnAn()
	for _, tc := range []struct {
		n, m int
		want bool
	}{{2, 2, true}, {3, 3, true}, {2, 4, false}} {
		db := DnMPaths(tc.n, tc.m, 'a')
		got, err := ecrpq.EvalBool(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("q_anan on D_{%d,%d}: got %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

// Lemma 15: q1 accepts D_{σ1,σ2} iff σ1 = σ2 ∈ {a,b} or σ2 = c; the CRPQ
// surrogate (variable relaxed to its domain) wrongly accepts D_{a,b}.
func TestQ1SeparationFromCRPQ(t *testing.T) {
	q1 := Q1()
	if q1.IsCRPQ() {
		t.Fatal("q1 must use a string variable")
	}
	cases := []struct {
		s1, s2 rune
		want   bool
	}{
		{'a', 'a', true},
		{'b', 'b', true},
		{'a', 'c', true},
		{'b', 'c', true},
		{'a', 'b', false},
		{'b', 'a', false},
	}
	for _, tc := range cases {
		db := DSigma(tc.s1, tc.s2)
		got, err := cxrpq.EvalBoundedBool(q1, db, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("q1 on D_{%c,%c}: got %v, want %v", tc.s1, tc.s2, got, tc.want)
		}
	}
	// the surrogate confuses D_{a,b} with D_{a,a}
	sur := CRPQSurrogateForQ1()
	okAB, err := cxrpq.EvalBool(sur, DSigma('a', 'b'))
	if err != nil {
		t.Fatal(err)
	}
	if !okAB {
		t.Fatal("surrogate should (wrongly) accept D_{a,b} — that is the point of Lemma 15")
	}
}

// Lemma 16: q2 accepts exactly paths #(a^n1 b)^n2 c(a^n1 b)^n2 #.
func TestQ2Witnesses(t *testing.T) {
	q2 := Q2()
	if q2.IsVStarFree() {
		t.Fatal("q2 uses x and y under stars")
	}
	for _, tc := range []struct {
		n1, n2 int
		want   bool
	}{{1, 1, true}, {2, 2, true}, {1, 3, true}} {
		ok, err := cxrpq.EvalBoundedBool(q2, Q2Witness(tc.n1, tc.n2), tc.n1+tc.n2+3)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("q2 on witness(%d,%d): got %v, want %v", tc.n1, tc.n2, ok, tc.want)
		}
	}
	ok, err := cxrpq.EvalBoundedBool(q2, Q2WitnessBroken(1, 2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("q2 must reject the broken witness (differing block lengths)")
	}
}

func TestDescribeFigure5(t *testing.T) {
	edges := DescribeFigure5()
	if len(edges) != 10 {
		t.Fatalf("Figure 5 should list 10 relationships, got %d", len(edges))
	}
}

func TestDBSummary(t *testing.T) {
	s := DBSummary(DnMPaths(2, 2, 'b'))
	if s == "" {
		t.Fatal("empty summary")
	}
}
