// Package separations implements the expressiveness separations of §7
// (Figure 5) as executable artefacts: the separating queries q_anbn and
// q_anan (Theorems 9 and 10, Figure 6), q1 and q2 (Lemmas 15 and 16,
// Figure 7), and the witness database families on which the proofs pump.
// The experiment harness evaluates them to demonstrate the separations
// empirically: the separating query distinguishes databases that every
// candidate of the weaker class must (per the pumping argument) confuse.
package separations

import (
	"fmt"
	"strings"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// QAnBn is the ECRPQ of Theorem 9 (Figure 6): two disjoint arcs
// x -c·a*·c-> z and x' -d·b*·d-> z' whose a*/b* segments are constrained to
// have equal length. ⟦q_anbn⟧ ∉ ⟦ECRPQ^er⟧.
func QAnBn() *ecrpq.Query {
	return &ecrpq.Query{
		Pattern: pattern.MustParseQuery(`
ans()
x y1 : c
y1 y2 : a*
y2 z : c
xp w1 : d
w1 w2 : b*
w2 zp : d
`),
		Groups: []ecrpq.Group{{Edges: []int{1, 4}, Rel: ecrpq.EqualLength(2, []rune("ab"))}},
	}
}

// QAnAn is the ECRPQ^er of Theorem 9: as q_anbn but both segments are a*
// and must be equal. ⟦q_anan⟧ ∉ ⟦CRPQ⟧.
func QAnAn() *ecrpq.Query {
	return &ecrpq.Query{
		Pattern: pattern.MustParseQuery(`
ans()
x y1 : c
y1 y2 : a*
y2 z : c
xp w1 : d
w1 w2 : a*
w2 zp : d
`),
		Groups: []ecrpq.Group{{Edges: []int{1, 4}, Rel: &ecrpq.Equality{N: 2}}},
	}
}

// DnMPaths is the witness family of Theorem 9: two node-disjoint paths
// labelled c a^n c and d b^m d (secondLabel 'b'), or c a^n c and d a^m d
// (secondLabel 'a').
func DnMPaths(n, m int, secondLabel rune) *graph.DB {
	d := graph.New()
	r0 := d.Node("r0")
	rt := d.Node("rt")
	d.AddPath(r0, "c"+strings.Repeat("a", n)+"c", rt)
	s0 := d.Node("s0")
	st := d.Node("st")
	d.AddPath(s0, "d"+strings.Repeat(string(secondLabel), m)+"d", st)
	return d
}

// Q1 is the CXRPQ^≤1 of Lemma 15 (Figure 7): u1 -x{a|b}-> u2 <-d- u3
// -(x|c)-> u4. ⟦q1⟧ ∉ ⟦CRPQ⟧ even though the variable image is bounded
// by 1.
func Q1() *cxrpq.Query {
	return cxrpq.MustParse(`
ans()
u1 u2 : $x{a|b}
u3 u2 : d
u3 u4 : $x|c
`)
}

// DSigma is the witness family for Lemma 15: nodes v1..v4 with arcs
// (v1, σ1, v2), (v3, d, v2), (v3, σ2, v4).
func DSigma(s1, s2 rune) *graph.DB {
	d := graph.New()
	v1, v2, v3, v4 := d.Node("v1"), d.Node("v2"), d.Node("v3"), d.Node("v4")
	d.AddEdge(v1, s1, v2)
	d.AddEdge(v3, 'd', v2)
	d.AddEdge(v3, s2, v4)
	return d
}

// Q2 is the CXRPQ of Lemma 16 (Figure 7): a single edge labelled
// #y{x{a+b}x*}cy#. D |= q2 iff D has a path labelled
// #(a^{n1}b)^{n2}c(a^{n1}b)^{n2}# for some n1, n2 ≥ 1.
// ⟦q2⟧ ∉ ⟦ECRPQ^er⟧.
func Q2() *cxrpq.Query {
	return cxrpq.MustParse(`
ans()
u1 u2 : #$y{$x{a+b}$x*}c$y#
`)
}

// Q2Witness builds the single-path database labelled
// #(a^n1 b)^n2 c (a^n1 b)^n2 #.
func Q2Witness(n1, n2 int) *graph.DB {
	block := strings.Repeat("a", n1) + "b"
	word := "#" + strings.Repeat(block, n2) + "c" + strings.Repeat(block, n2) + "#"
	d := graph.New()
	s := d.Node("s")
	t := d.Node("t")
	d.AddPath(s, word, t)
	return d
}

// Q2WitnessBroken builds a near-miss path where the two block counts (or
// block lengths) differ, which q2 must reject.
func Q2WitnessBroken(n1, n2 int) *graph.DB {
	block := strings.Repeat("a", n1) + "b"
	block2 := strings.Repeat("a", n1+1) + "b"
	word := "#" + strings.Repeat(block, n2) + "c" + strings.Repeat(block2, n2) + "#"
	d := graph.New()
	s := d.Node("s")
	t := d.Node("t")
	d.AddPath(s, word, t)
	return d
}

// CRPQSurrogateForQ1 is the best CRPQ approximation of q1 obtained by
// relaxing the variable to its domain (a|b): the Lemma 15 proof shows any
// CRPQ equivalent to q1 leads to a contradiction; this surrogate witnesses
// the failure mode concretely (it wrongly accepts D_{a,b}).
func CRPQSurrogateForQ1() *cxrpq.Query {
	return cxrpq.MustParse(`
ans()
u1 u2 : a|b
u3 u2 : d
u3 u4 : a|b|c
`)
}

// DescribeFigure5 returns the inclusion diagram edges of Figure 5 with
// machine-checkable status labels, used by experiment E11.
func DescribeFigure5() []string {
	return []string{
		"CRPQ ⊊ ECRPQ^er (Theorem 9, witness q_anan)",
		"ECRPQ^er ⊊ ECRPQ (Theorem 9, witness q_anbn)",
		"CRPQ ⊆ CXRPQ^≤k (by definition)",
		"CXRPQ^≤k ⊋ CRPQ (Lemma 15, witness q1)",
		"ECRPQ^er ⊆ CXRPQ^vsf,fl (Lemma 12)",
		"CXRPQ^vsf,fl ⊆ CXRPQ^vsf ⊆ CXRPQ (by definition)",
		"CXRPQ ⊋ ECRPQ^er (Lemma 16, witness q2)",
		"CXRPQ^≤k ⊆ ∪-CRPQ (Lemma 14)",
		"CXRPQ^vsf ⊆ ∪-ECRPQ^er (Lemma 13)",
		"∪-CRPQ ⊊ ∪-ECRPQ^er ⊊ ∪-ECRPQ (Theorem 10)",
	}
}

// PumpingFamilyQ2 builds the Lemma 16 database: the path
// #(a^p b)^{pm} c (a^p b)^{pm} # used to pump ECRPQ^er candidates.
func PumpingFamilyQ2(p, m int) *graph.DB {
	return Q2Witness(p, p*m)
}

// String summary of a database for experiment tables.
func DBSummary(d *graph.DB) string {
	return fmt.Sprintf("|V|=%d |E|=%d", d.NumNodes(), d.NumEdges())
}
