package workload

import "testing"

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, 10, 20, "ab")
	b := Random(5, 10, 20, "ab")
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	if a.NumNodes() != 10 || a.NumEdges() != 20 {
		t.Fatalf("nodes=%d edges=%d", a.NumNodes(), a.NumEdges())
	}
	c := Random(6, 10, 20, "ab")
	_ = c // different seed is fine either way; just must not panic
}

func TestGenealogy(t *testing.T) {
	g := Genealogy(1, 20)
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	hasP, hasS := false, false
	for _, r := range g.Alphabet() {
		if r == 'p' {
			hasP = true
		}
		if r == 's' {
			hasS = true
		}
	}
	if !hasP || !hasS {
		t.Fatal("genealogy must have p and s arcs")
	}
}

func TestMessageNetwork(t *testing.T) {
	g := MessageNetwork(2, 10, "ab", 2, 3, 2)
	if g.NumNodes() <= 10 {
		t.Fatal("hidden-pair nodes missing")
	}
	// hidden pair paths must exist: h0_a reaches h0_b by a 3-message path
	a, ok := g.Lookup("h0_a")
	if !ok {
		t.Fatal("h0_a missing")
	}
	m, ok := g.Lookup("h0_m")
	if !ok {
		t.Fatal("h0_m missing")
	}
	found := false
	for _, w := range g.PathWordsBetween(a, m, 6) {
		if len(w) == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("hidden 6-step path to mutual contact missing")
	}
}

func TestPathAndCycle(t *testing.T) {
	p := Path("ab", 3)
	s, _ := p.Lookup("s")
	tt, _ := p.Lookup("t")
	if !p.HasPath(s, "ababab", tt) {
		t.Fatal("path mislabelled")
	}
	c := Cycle("abc", 6)
	if c.NumNodes() != 6 || c.NumEdges() != 6 {
		t.Fatalf("cycle size wrong: %d/%d", c.NumNodes(), c.NumEdges())
	}
}

func TestLayered(t *testing.T) {
	g := Layered(3, 4, 3, "ab")
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3*3*2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

// Every RandomQuery template must parse and validate for any seed, and the
// generator must be deterministic per seed (the fuzz harness replays seeds).
func TestRandomQueryValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 3000; seed++ {
		for _, finite := range []bool{true, false} {
			q1 := RandomQuery(NewRNG(seed), finite)
			q2 := RandomQuery(NewRNG(seed), finite)
			if err := q1.Validate(); err != nil {
				t.Fatalf("seed %d finite=%v: %v", seed, finite, err)
			}
			if q1.Pattern.String() != q2.Pattern.String() {
				t.Fatalf("seed %d finite=%v: nondeterministic generator", seed, finite)
			}
		}
	}
}
