// Package workload generates the synthetic graph databases used by the
// examples and experiments: random labelled graphs, the genealogy graphs of
// Figure 1, the message networks motivating G3 of Figure 2, and scalable
// path/cycle families for the data-complexity scaling experiments.
package workload

import (
	"fmt"
	"strings"

	"cxrpq/internal/graph"
)

// RNG is a small deterministic PRNG (SplitMix-style) so experiments are
// reproducible without importing math/rand state. It is exported so
// external test packages (the differential fuzz harness, benchmarks) can
// drive the generators with their own seeds.
type RNG struct{ s uint64 }

// NewRNG returns a deterministic generator.
func NewRNG(seed int64) *RNG { return &RNG{s: uint64(seed)*2654435761 + 1} }

func (r *RNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.next() % uint64(n)) }

// Random returns a random multigraph with the given node count, edge count
// and label alphabet.
func Random(seed int64, nodes, edges int, alphabet string) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	for i := 0; i < nodes; i++ {
		d.AddNode()
	}
	al := []rune(alphabet)
	for i := 0; i < edges; i++ {
		d.AddEdge(r.Intn(nodes), al[r.Intn(len(al))], r.Intn(nodes))
	}
	return d
}

// Genealogy builds a parent/supervisor graph (labels p, s) with the given
// number of persons: a binary parent forest plus random supervision arcs,
// as in the Figure 1 examples.
func Genealogy(seed int64, persons int) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	for i := 0; i < persons; i++ {
		d.Node(fmt.Sprintf("p%d", i))
	}
	for i := 1; i < persons; i++ {
		parent := r.Intn(i)
		d.AddEdge(parent, 'p', i)
	}
	for i := 0; i < persons/2; i++ {
		a, b := r.Intn(persons), r.Intn(persons)
		if a != b {
			d.AddEdge(a, 's', b)
		}
	}
	return d
}

// MessageNetwork builds the hidden-communication scenario motivating G3 of
// Figure 2: persons exchanging text messages (labels from alphabet), with
// `pairs` hidden pairs that communicate by routing a secret message
// sequence of length seqLen through chains of intermediaries, repeated
// `reps` times towards a mutual contact.
func MessageNetwork(seed int64, persons int, alphabet string, pairs, seqLen, reps int) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	for i := 0; i < persons; i++ {
		d.Node(fmt.Sprintf("u%d", i))
	}
	al := []rune(alphabet)
	// background noise
	for i := 0; i < persons*2; i++ {
		d.AddEdge(r.Intn(persons), al[r.Intn(len(al))], r.Intn(persons))
	}
	// hidden pairs
	for p := 0; p < pairs; p++ {
		v1 := d.Node(fmt.Sprintf("h%d_a", p))
		v2 := d.Node(fmt.Sprintf("h%d_b", p))
		mutual := d.Node(fmt.Sprintf("h%d_m", p))
		var x, y strings.Builder
		for i := 0; i < seqLen; i++ {
			x.WriteRune(al[r.Intn(len(al))])
			y.WriteRune(al[r.Intn(len(al))])
		}
		// v1 -x-> v2, v2 -y-> v1
		d.AddPath(v1, x.String(), v2)
		d.AddPath(v2, y.String(), v1)
		// v1 -x^reps-> mutual, v2 -y^reps-> mutual
		d.AddPath(v1, strings.Repeat(x.String(), reps), mutual)
		d.AddPath(v2, strings.Repeat(y.String(), reps), mutual)
	}
	return d
}

// Path returns a single path labelled with word repeated `reps` times.
func Path(word string, reps int) *graph.DB {
	d := graph.New()
	s := d.Node("s")
	t := d.Node("t")
	d.AddPath(s, strings.Repeat(word, reps), t)
	return d
}

// Cycle returns a labelled cycle over the alphabet, for unbounded-image
// workloads.
func Cycle(alphabet string, length int) *graph.DB {
	d := graph.New()
	al := []rune(alphabet)
	nodes := make([]int, length)
	for i := range nodes {
		nodes[i] = d.AddNode()
	}
	for i := range nodes {
		d.AddEdge(nodes[i], al[i%len(al)], nodes[(i+1)%len(nodes)])
	}
	return d
}

// Layered returns a layered DAG with `layers` layers of `width` nodes and
// random labelled arcs between consecutive layers; scaling families with
// predictable diameter for the E6/E8 experiments.
func Layered(seed int64, layers, width int, alphabet string) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	al := []rune(alphabet)
	ids := make([][]int, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]int, width)
		for w := 0; w < width; w++ {
			ids[l][w] = d.Node(fmt.Sprintf("l%d_%d", l, w))
		}
	}
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			// two outgoing arcs per node
			for j := 0; j < 2; j++ {
				d.AddEdge(ids[l][w], al[r.Intn(len(al))], ids[l+1][r.Intn(width)])
			}
		}
	}
	return d
}

// MutationStream returns the live-mutation workload of the E21
// incremental-update experiment: a random base graph of `base` nodes over
// labels a/b plus a stream of `steps` insert-only deltas, each interning
// `perStep` fresh "arrival" nodes whose edges point INTO the existing
// graph (new users messaging existing ones — the append-mostly shape of an
// event stream). Because nothing points at an arrival node, the set of
// sources whose reachability can change is tiny, which is exactly the case
// delta maintenance converts from O(rebuild) to O(delta); every delta
// still changes the answer set of queries over a/b, so result caches
// cannot mask the work. The same (seed, …) arguments always produce the
// same base graph and stream.
func MutationStream(seed int64, base, steps, perStep int) (*graph.DB, []graph.Delta) {
	r := NewRNG(seed)
	d := graph.New()
	for i := 0; i < base; i++ {
		d.Node(fmt.Sprintf("n%d", i))
	}
	al := []rune("ab")
	for i := 0; i < 3*base; i++ {
		d.AddEdge(r.Intn(base), al[r.Intn(2)], r.Intn(base))
	}
	deltas := make([]graph.Delta, steps)
	for s := 0; s < steps; s++ {
		var delta graph.Delta
		for j := 0; j < perStep; j++ {
			fresh := fmt.Sprintf("u%d_%d", s, j)
			for e := 0; e <= r.Intn(2); e++ {
				delta.Add = append(delta.Add, graph.DeltaEdge{
					From:  fresh,
					Label: al[r.Intn(2)],
					To:    fmt.Sprintf("n%d", r.Intn(base)),
				})
			}
		}
		deltas[s] = delta
	}
	return d, deltas
}

// GMark returns a gMark-style scaled workload graph over labels a/b/c, the
// shape the sharded-kernel experiments (E22, BenchmarkReachBatch) target:
// 'a' edges follow a heavy-tailed out-degree distribution (geometric
// doubling, capped) with half of all targets drawn from a small popular
// prefix (in-degree skew — the hubs a degree-balanced partition must split
// around), 'b' edges are sparse uniform noise, and 'c' edges form a
// locality chain with occasional long shortcuts (diameter for the
// level-synchronous frontier). Deterministic in (seed, nodes).
func GMark(seed int64, nodes int) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	for i := 0; i < nodes; i++ {
		d.AddNode()
	}
	hub := nodes / 16
	if hub < 1 {
		hub = 1
	}
	degCap := nodes / 8
	if degCap < 4 {
		degCap = 4
	}
	for u := 0; u < nodes; u++ {
		deg := 1
		for deg < degCap && r.Intn(4) == 0 {
			deg *= 4
		}
		for j := 0; j < deg; j++ {
			v := r.Intn(nodes)
			if r.Intn(2) == 0 {
				v = r.Intn(hub)
			}
			d.AddEdge(u, 'a', v)
		}
	}
	for i := 0; i < nodes; i++ {
		d.AddEdge(r.Intn(nodes), 'b', r.Intn(nodes))
	}
	for u := 0; u+1 < nodes; u++ {
		d.AddEdge(u, 'c', u+1)
		if r.Intn(8) == 0 {
			d.AddEdge(u, 'c', r.Intn(nodes))
		}
	}
	return d
}

// SkewedJoin returns the join-order stress graph of the planner
// benchmarks and differential tests: a dense h-labelled bipartite hub
// (hub × hub pairs ai -h-> bj) plus a short selective s-chain off a single
// hub target (b0 -s-> c0 -s-> c1). On queries joining the hub atom with
// the selective atoms, the structural most-bound-first order ties at zero
// and scans the hub first, while the cost-based order starts from the
// selective atoms — the cardinality skew the planning layer exists for.
func SkewedJoin(hub int) *graph.DB {
	d := graph.New()
	as := make([]int, hub)
	bs := make([]int, hub)
	for i := 0; i < hub; i++ {
		as[i] = d.Node(fmt.Sprintf("a%d", i))
	}
	for j := 0; j < hub; j++ {
		bs[j] = d.Node(fmt.Sprintf("b%d", j))
	}
	for _, a := range as {
		for _, b := range bs {
			d.AddEdge(a, 'h', b)
		}
	}
	c0 := d.Node("c0")
	c1 := d.Node("c1")
	d.AddEdge(bs[0], 's', c0)
	d.AddEdge(c0, 's', c1)
	return d
}

// TriStar returns the free-connex enumeration stress graph of E25: `hubs`
// center nodes, each with `fanout` private a-, b- and c-labelled leaves.
// On the star query ans(x) <- (x,a,y1), (x,b,y2), (x,c,y3) a backtracking
// join enumerates fanout³ satisfying assignments per center — all
// projecting to the same output tuple — while the Yannakakis program's
// enumeration pass skips the unneeded leaf variables and emits each
// center once after the semijoin passes certified its three arms.
func TriStar(hubs, fanout int) *graph.DB {
	d := graph.New()
	for h := 0; h < hubs; h++ {
		c := d.Node(fmt.Sprintf("h%d", h))
		for _, l := range []rune{'a', 'b', 'c'} {
			for j := 0; j < fanout; j++ {
				d.AddEdge(c, l, d.AddNode())
			}
		}
	}
	return d
}

// DeadEndChain returns the semijoin stress graph of E25: a four-layer DAG
// over the single label a whose dense hops are twisted against each other
// — first-hop edges land only on middle sources whose second-hop targets
// have no third-hop continuation, and third-hop sources are fed only by
// middle nodes with no first-hop predecessors — except for `bridge`
// dedicated chains threading all three hops. Each atom's relation has
// ~width·fanout edges of identical shape, so whichever end a backtracking
// join anchors at, it explores ~width·fanout² partial assignments that
// die one atom later; the Yannakakis bottom-up pass deletes every dead
// pair in two linear sweeps before enumeration.
func DeadEndChain(seed int64, width, fanout, bridge int) *graph.DB {
	r := NewRNG(seed)
	d := graph.New()
	mk := func(prefix string, n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = d.Node(fmt.Sprintf("%s%d", prefix, i))
		}
		return ids
	}
	l0 := mk("s", width)   // chain sources
	m1a := mk("ma", width) // middle-1: reachable from l0, leads nowhere useful
	m1b := mk("mb", width) // middle-1: unreachable from l0, feeds m2b
	m2a := mk("na", width) // middle-2: reachable via m1a, no outgoing hop
	m2b := mk("nb", width) // middle-2: feeds l3, fed only by m1b
	l3 := mk("t", width)   // chain targets
	for i := 0; i < width; i++ {
		for j := 0; j < fanout; j++ {
			d.AddEdge(l0[i], 'a', m1a[r.Intn(width)])
			d.AddEdge(m1a[i], 'a', m2a[r.Intn(width)])
			d.AddEdge(m1b[i], 'a', m2b[r.Intn(width)])
			d.AddEdge(m2b[i], 'a', l3[r.Intn(width)])
		}
	}
	// The surviving chains: dedicated nodes so the answer set is exactly
	// the bridge pairs plus whatever the random fans happen to align.
	for b := 0; b < bridge && b < width; b++ {
		d.AddEdge(l0[b], 'a', m1b[b])
		d.AddEdge(m2a[b], 'a', l3[b])
		d.AddEdge(m1a[b], 'a', m2b[b])
	}
	return d
}
