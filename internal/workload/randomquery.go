package workload

import (
	"strings"

	"cxrpq/internal/cxrpq"
)

// This file generates random CXRPQ queries over the alphabet {a, b} for the
// differential fuzz harness and the benchmarks: small conjunctive patterns
// (2–3 edges) with one or two string variables, the second variable's
// definition body possibly referencing the first, so the ≺-topological
// prefix machinery, the Lemma 10 force condition and the bounded engine's
// relaxed-atom pruning all fire across the corpus. Every template yields a
// valid (sequential, acyclic) conjunctive xregex by construction.

// RandomQueryMaxWord bounds the length of any word matched by any edge of a
// finite-mode RandomQuery: with finite=true every sub-language is finite,
// definition-body images have length ≤ RandomQueryMaxImage, and no matched
// edge word exceeds RandomQueryMaxWord. Under these bounds the brute-force
// oracle with word cap RandomQueryMaxWord computes the query's exact
// (unrestricted) semantics, which coincides with the ≤k semantics for every
// k ≥ RandomQueryMaxImage — the property the three-way differential fuzz
// harness relies on.
const (
	RandomQueryMaxWord  = 3
	RandomQueryMaxImage = 1
)

// finite-mode pools: every expression denotes a finite language; definition
// bodies produce images of length ≤ RandomQueryMaxImage. The bounds are
// kept tiny on purpose: the oracle's cost is exponential in the word cap,
// and the finite mode exists to make the oracle comparison exact, not deep
// (the general mode covers depth via the naive differential).
var (
	finXBodies = []string{"a|b", "a", "b", "a?", "b?"}
	finYBodies = []string{"$x", "$x|b", "a|b", "b?"}
	finTail1   = []string{"", "a?", "b?"}
	finMids    = []string{"", "$x", "a?"}
	finTails   = []string{"$x", "$y", "$x$y", "($x|$y)", "a?b?"}
)

// general-mode pools: repetition operators included (references under
// Plus/Star, classical star tails), exercising the engines beyond finite
// languages; the oracle can then only be compared by containment.
var (
	genXBodies = []string{"a|b", "(a|b)+", "ab|b", "b?a"}
	genYBodies = []string{"$x", "$x|b", "a|b", "$x a?"}
	genTail1   = []string{"", "c?", "a*"}
	genMids    = []string{"$y", "($x|$y)", "$x+", "($y|a)b*"}
	genTails   = []string{"$x", "$x+|b", "($x|$y)+", "$y?a*"}
)

var outHeads = []string{"ans()", "ans(p)", "ans(p, q)", "ans(p, m)"}

// RandomQuery returns a random small CXRPQ drawn from r. With finite=true
// the query's languages are all finite and bounded as documented on
// RandomQueryMaxWord, making exact oracle comparison possible; with
// finite=false the templates include repetition operators. The generated
// source always parses and validates.
func RandomQuery(r *RNG, finite bool) *cxrpq.Query {
	xB, yB, t1, mids, tails := genXBodies, genYBodies, genTail1, genMids, genTails
	if finite {
		xB, yB, t1, mids, tails = finXBodies, finYBodies, finTail1, finMids, finTails
	}
	var b strings.Builder
	b.WriteString(outHeads[r.Intn(len(outHeads))])
	b.WriteString("\n")
	threeEdges := r.Intn(2) == 0
	b.WriteString("p m : $x{" + xB[r.Intn(len(xB))] + "}" + t1[r.Intn(len(t1))] + "\n")
	if threeEdges {
		b.WriteString("m n : $y{" + yB[r.Intn(len(yB))] + "}" + mids[r.Intn(len(mids))] + "\n")
		b.WriteString("n q : " + tails[r.Intn(len(tails))] + "\n")
	} else {
		b.WriteString("m q : $y{" + yB[r.Intn(len(yB))] + "}" + tails[r.Intn(len(tails))] + "\n")
	}
	return cxrpq.MustParse(b.String())
}
