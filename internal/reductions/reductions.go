// Package reductions implements the hardness reductions of the paper as
// executable constructions. They serve three purposes: correctness tests
// (solve small instances both through the reduction and directly), workload
// generators for the complexity experiments, and faithful documentation of
// the lower-bound proofs.
//
//   - Theorem 1: NFA intersection → Boolean single-edge CXRPQ evaluation
//     with the fixed xregex α_ni = #z{(a∨b)*}(##z)*### (PSpace-hardness in
//     data complexity).
//   - Theorem 3: the vstar-free variant α^k_ni = #z{(a∨b)*}(##z)^{k-1}###
//     (PSpace-hardness of CXRPQ^vsf in combined complexity), plus the
//     reachability → CRPQ reduction (NL-hardness in data complexity).
//   - Theorem 7 (Figure 4): Hitting Set → Boolean single-edge CXRPQ^≤1
//     evaluation (NP-hardness in combined complexity even for single-edge
//     patterns).
package reductions

import (
	"fmt"
	"strings"

	"cxrpq/internal/automata"
	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// AlphaNI returns the fixed xregex α_ni = #z{(a|b)*}(##z)*### of Theorem 1.
func AlphaNI() xregex.Node {
	return xregex.MustParse("#$z{(a|b)*}(##$z)*###")
}

// AlphaNIK returns the vstar-free α^k_ni = #z{(a|b)*}(##z)^{k-1}### of
// Theorem 3 (the star over the variable is unrolled k−1 times).
func AlphaNIK(k int) xregex.Node {
	var b strings.Builder
	b.WriteString("#$z{(a|b)*}")
	for i := 0; i < k-1; i++ {
		b.WriteString("(##$z)")
	}
	b.WriteString("###")
	return xregex.MustParse(b.String())
}

// NFAIntersectionInstance is an instance of the PSpace-complete
// NFA-intersection problem over {a, b}.
type NFAIntersectionInstance struct {
	Machines []*automata.NFA
}

// RandomNFAs generates k deterministic-ish random NFAs over {a,b} with the
// given number of states, for the E3/E4 experiments.
func RandomNFAs(seed int64, k, states int) *NFAIntersectionInstance {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	inst := &NFAIntersectionInstance{}
	for i := 0; i < k; i++ {
		m := automata.New(states)
		for p := 0; p < states; p++ {
			for _, sym := range []rune{'a', 'b'} {
				// 1-2 transitions per (state, symbol)
				m.AddTr(p, int32(sym), int(next(uint64(states))))
				if next(3) == 0 {
					m.AddTr(p, int32(sym), int(next(uint64(states))))
				}
			}
		}
		m.SetFinal(int(next(uint64(states))), true)
		inst.Machines = append(inst.Machines, m)
	}
	return inst
}

// IntersectionNonEmpty solves the instance directly via the product
// automaton (the oracle side of the reduction check).
func (inst *NFAIntersectionInstance) IntersectionNonEmpty() bool {
	return !automata.IntersectAll(inst.Machines...).IsEmpty()
}

// ToGraphDB builds the graph database of Theorem 1's reduction: the NFAs'
// transition graphs chained with ##-paths, with #- and ###-paths attaching
// fresh s and t nodes. D contains a path labelled by a word of L(α_ni) iff
// ⋂ L(M_i) ≠ ∅. Nodes are named s, t and q<i>_<state>.
func (inst *NFAIntersectionInstance) ToGraphDB() (*graph.DB, error) {
	k := len(inst.Machines)
	if k == 0 {
		return nil, fmt.Errorf("reductions: empty NFA-intersection instance")
	}
	d := graph.New()
	node := func(i, state int) int { return d.Node(fmt.Sprintf("q%d_%d", i, state)) }
	for i, m := range inst.Machines {
		for p := 0; p < m.NumStates(); p++ {
			for _, tr := range m.Transitions(p) {
				if tr.Label == automata.Epsilon {
					return nil, fmt.Errorf("reductions: ε-transitions not supported by the Theorem 1 construction")
				}
				d.AddEdge(node(i, p), rune(tr.Label), node(i, tr.To))
			}
		}
		finals := m.Finals()
		if len(finals) != 1 {
			return nil, fmt.Errorf("reductions: machine %d must have exactly one final state (got %d)", i, len(finals))
		}
	}
	s := d.Node("s")
	t := d.Node("t")
	d.AddPath(s, "#", node(0, inst.Machines[0].Start()))
	for i := 0; i < k-1; i++ {
		d.AddPath(node(i, inst.Machines[i].Finals()[0]), "##", node(i+1, inst.Machines[i+1].Start()))
	}
	d.AddPath(node(k-1, inst.Machines[k-1].Finals()[0]), "###", t)
	return d, nil
}

// ToCXRPQ returns the Boolean single-edge query of Theorem 1 (unrestricted,
// with α_ni) or of Theorem 3 (vstar-free, with α^k_ni) for this instance.
func (inst *NFAIntersectionInstance) ToCXRPQ(vstarFree bool) (*cxrpq.Query, error) {
	var label xregex.Node
	if vstarFree {
		label = AlphaNIK(len(inst.Machines))
	} else {
		label = AlphaNI()
	}
	return cxrpq.Parse(fmt.Sprintf("ans()\nx y : %s", xregex.String(label)))
}

// ReachabilityInstance is a directed-graph reachability instance (the
// canonical NL-complete problem) for the Theorem 3/7 data-complexity lower
// bounds.
type ReachabilityInstance struct {
	N     int
	Edges [][2]int
	S, T  int
}

// RandomReachability generates a random instance.
func RandomReachability(seed int64, n, edges int) *ReachabilityInstance {
	s := uint64(seed)
	next := func(m uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % m
	}
	inst := &ReachabilityInstance{N: n, S: 0, T: n - 1}
	for i := 0; i < edges; i++ {
		inst.Edges = append(inst.Edges, [2]int{int(next(uint64(n))), int(next(uint64(n)))})
	}
	return inst
}

// Reachable solves the instance directly by BFS.
func (r *ReachabilityInstance) Reachable() bool {
	adj := make([][]int, r.N)
	for _, e := range r.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	seen := make([]bool, r.N)
	stack := []int{r.S}
	seen[r.S] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == r.T {
			return true
		}
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// ToCRPQ builds the Theorem 3 construction: D with b-labelled edges plus
// marker arcs (s', a, s), (t, a, t'), (t', a, t”), and the fixed Boolean
// CRPQ (x, ab*aa, z). D |= q iff t is reachable from s.
func (r *ReachabilityInstance) ToCRPQ() (*graph.DB, *cxrpq.Query, error) {
	d := graph.New()
	node := func(i int) int { return d.Node(fmt.Sprintf("v%d", i)) }
	for _, e := range r.Edges {
		d.AddEdge(node(e[0]), 'b', node(e[1]))
	}
	sp := d.Node("s'")
	tp := d.Node("t'")
	tpp := d.Node("t''")
	d.AddEdge(sp, 'a', node(r.S))
	d.AddEdge(node(r.T), 'a', tp)
	d.AddEdge(tp, 'a', tpp)
	q, err := cxrpq.Parse("ans()\nx z : ab*aa")
	if err != nil {
		return nil, nil, err
	}
	return d, q, nil
}
