package reductions

import (
	"fmt"
	"strings"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
)

// HittingSetInstance is an instance of the NP-complete Hitting Set problem:
// subsets A_1,…,A_m of a universe U = {0,…,N-1} and a bound K.
type HittingSetInstance struct {
	N    int
	Sets [][]int
	K    int
}

// HasHittingSet solves the instance by brute force (the oracle side of the
// Theorem 7 correctness check).
func (h *HittingSetInstance) HasHittingSet() bool {
	// enumerate subsets B ⊆ U with |B| ≤ K
	var rec func(start int, chosen []int) bool
	hits := func(chosen []int) bool {
		for _, set := range h.Sets {
			hit := false
			for _, z := range set {
				for _, c := range chosen {
					if z == c {
						hit = true
						break
					}
				}
				if hit {
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	rec = func(start int, chosen []int) bool {
		if hits(chosen) {
			return true
		}
		if len(chosen) == h.K {
			return false
		}
		for z := start; z < h.N; z++ {
			if rec(z+1, append(chosen, z)) {
				return true
			}
		}
		return false
	}
	return rec(0, nil)
}

// encode is ⟨z_i⟩ = b a^{i+1} b (the paper uses 1-based indices).
func (h *HittingSetInstance) encode(z int) string {
	return "b" + strings.Repeat("a", z+1) + "b"
}

// ToGraphDB builds the database of Figure 4: a #-arc into a chain of K
// "choose an element" blocks, a #-arc into a chain of m "hit set A_i"
// blocks with U-self-loops in between, and a final #-arc to t.
func (h *HittingSetInstance) ToGraphDB() *graph.DB {
	d := graph.New()
	s := d.Node("s")
	t := d.Node("t")
	u := make([]int, h.K+1)
	for i := range u {
		u[i] = d.Node(fmt.Sprintf("u%d", i))
	}
	v := make([]int, len(h.Sets)+1)
	for i := range v {
		v[i] = d.Node(fmt.Sprintf("v%d", i))
	}
	d.AddEdge(s, '#', u[0])
	for i := 1; i <= h.K; i++ {
		for z := 0; z < h.N; z++ {
			d.AddPath(u[i-1], h.encode(z), u[i])
		}
	}
	d.AddEdge(u[h.K], '#', v[0])
	for i, set := range h.Sets {
		for _, z := range set {
			d.AddPath(v[i], h.encode(z), v[i+1])
		}
	}
	for i := 0; i <= len(h.Sets); i++ {
		for z := 0; z < h.N; z++ {
			d.AddPath(v[i], h.encode(z), v[i]) // U-self-loops
		}
	}
	d.AddEdge(v[len(h.Sets)], '#', t)
	return d
}

// ToCXRPQ builds the Boolean single-edge query of Theorem 7:
//
//	α = # Π_{i=1}^{(n+2)k} x_i{a|b|ε} # ( Π x_i )^m #
//
// Every variable image is a single symbol or ε, so the query can be read as
// a CXRPQ^≤1 (in fact L^≤k(α) = L(α) for every k ≥ 1). The conjunctive
// xregex is simple, yet evaluation is NP-hard in combined complexity.
func (h *HittingSetInstance) ToCXRPQ() (*cxrpq.Query, error) {
	nvars := (h.N + 2) * h.K
	var defs, refs strings.Builder
	for i := 1; i <= nvars; i++ {
		fmt.Fprintf(&defs, "$x%d{a|b|()}", i)
		fmt.Fprintf(&refs, "$x%d", i)
	}
	var label strings.Builder
	label.WriteString("#")
	label.WriteString(defs.String())
	label.WriteString("#")
	label.WriteString("(" + refs.String() + ")")
	for i := 1; i < len(h.Sets); i++ {
		label.WriteString("(" + refs.String() + ")")
	}
	label.WriteString("#")
	return cxrpq.Parse("ans()\nx y : " + label.String())
}

// SolveViaReduction answers the instance by evaluating the reduction's
// query on the reduction's database under CXRPQ^≤1 semantics.
func (h *HittingSetInstance) SolveViaReduction() (bool, error) {
	q, err := h.ToCXRPQ()
	if err != nil {
		return false, err
	}
	return cxrpq.EvalBoundedBool(q, h.ToGraphDB(), 1)
}
