package reductions

import (
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/cxrpq"
	"cxrpq/internal/xregex"
)

// wordAutomaton returns an NFA accepting exactly {w}.
func wordAutomaton(w string) *automata.NFA {
	m := automata.New(len(w) + 1)
	for i, r := range w {
		m.AddTr(i, int32(r), i+1)
	}
	m.SetFinal(len(w), true)
	return m
}

// abStar returns an NFA for (a|b)* with one final state.
func abStar() *automata.NFA {
	m := automata.New(1)
	m.AddTr(0, int32('a'), 0)
	m.AddTr(0, int32('b'), 0)
	m.SetFinal(0, true)
	return m
}

func TestAlphaNIShape(t *testing.T) {
	a := AlphaNI()
	if xregex.IsVStarFree(a) {
		t.Fatal("α_ni has z under *: not vstar-free")
	}
	ak := AlphaNIK(3)
	if !xregex.IsVStarFree(ak) {
		t.Fatal("α^k_ni must be vstar-free")
	}
	// α^k_ni matches #w(##w)^{k-1}###
	if !xregex.MatchBool(ak, "#ab##ab##ab###", []rune("ab#")) {
		t.Fatal("α^3_ni should match #ab##ab##ab###")
	}
	if xregex.MatchBool(ak, "#ab##ba##ab###", []rune("ab#")) {
		t.Fatal("α^3_ni must reject differing blocks")
	}
}

func TestTheorem1ReductionPositive(t *testing.T) {
	// Machines with non-empty intersection: {ab} and (a|b)* restricted.
	inst := &NFAIntersectionInstance{Machines: []*automata.NFA{
		wordAutomaton("ab"),
		abStar(),
		wordAutomaton("ab"),
	}}
	if !inst.IntersectionNonEmpty() {
		t.Fatal("oracle: intersection should be non-empty")
	}
	db, err := inst.ToGraphDB()
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate with the vstar-free variant (Theorem 3) via EvalVsf.
	q, err := inst.ToCXRPQ(true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cxrpq.EvalVsfBool(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reduction: D |= α^k_ni expected")
	}
	// And with the unrestricted α_ni via image-capped evaluation.
	q1, err := inst.ToCXRPQ(false)
	if err != nil {
		t.Fatal(err)
	}
	ok1, err := cxrpq.EvalBoundedBool(q1, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok1 {
		t.Fatal("reduction: D |=^≤2 α_ni expected (witness word ab)")
	}
}

func TestTheorem1ReductionNegative(t *testing.T) {
	// {ab} ∩ {ba} = ∅.
	inst := &NFAIntersectionInstance{Machines: []*automata.NFA{
		wordAutomaton("ab"),
		wordAutomaton("ba"),
	}}
	if inst.IntersectionNonEmpty() {
		t.Fatal("oracle: intersection should be empty")
	}
	db, err := inst.ToGraphDB()
	if err != nil {
		t.Fatal(err)
	}
	q, err := inst.ToCXRPQ(true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cxrpq.EvalVsfBool(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("reduction: D must not satisfy α^k_ni")
	}
}

func TestTheorem1RandomAgreement(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst := RandomNFAs(seed, 2, 3)
		db, err := inst.ToGraphDB()
		if err != nil {
			t.Fatal(err)
		}
		q, err := inst.ToCXRPQ(true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cxrpq.EvalVsfBool(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.IntersectionNonEmpty()
		if got != want {
			t.Errorf("seed %d: reduction %v, oracle %v", seed, got, want)
		}
	}
}

func TestReachabilityReduction(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := RandomReachability(seed, 6, 7)
		db, q, err := inst.ToCRPQ()
		if err != nil {
			t.Fatal(err)
		}
		got, err := cxrpq.EvalBool(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.Reachable()
		if got != want {
			t.Errorf("seed %d: reduction %v, oracle %v", seed, got, want)
		}
	}
}

func TestHittingSetOracle(t *testing.T) {
	h := &HittingSetInstance{N: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1}
	if !h.HasHittingSet() {
		t.Fatal("{1} hits both sets")
	}
	h2 := &HittingSetInstance{N: 4, Sets: [][]int{{0}, {1}, {2}}, K: 2}
	if h2.HasHittingSet() {
		t.Fatal("three disjoint singletons need 3 elements")
	}
}

func TestHittingSetReduction(t *testing.T) {
	cases := []*HittingSetInstance{
		{N: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1}, // yes: {1}
		{N: 3, Sets: [][]int{{0}, {2}}, K: 1},       // no
		{N: 3, Sets: [][]int{{0}, {2}}, K: 2},       // yes: {0,2}
		{N: 2, Sets: [][]int{{0, 1}}, K: 1},         // yes
	}
	for i, h := range cases {
		got, err := h.SolveViaReduction()
		if err != nil {
			t.Fatal(err)
		}
		want := h.HasHittingSet()
		if got != want {
			t.Errorf("case %d: reduction %v, oracle %v", i, got, want)
		}
	}
}

func TestHittingSetQueryShape(t *testing.T) {
	h := &HittingSetInstance{N: 2, Sets: [][]int{{0}, {1}}, K: 1}
	q, err := h.ToCXRPQ()
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 7: the xregex is simple and single-edge.
	if !q.IsSimple() {
		t.Fatal("Theorem 7 query must be simple")
	}
	if len(q.Pattern.Edges) != 1 {
		t.Fatal("Theorem 7 query must be single-edge")
	}
}
