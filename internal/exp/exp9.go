package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/workload"
)

// e26Query is the ranked-enumeration stress query: a two-atom join on the
// gMark-style graph whose first atom is a cheap single-label scan while the
// join's answer set is quadratic-ish — so the incremental enumerator's
// first row costs one scan plus one shallow single-source sweep, while
// drain-then-sort pays for the whole join and a global sort before the
// first row can leave the cursor.
const e26Query = "ans(x, z)\nx y : a+\ny z : b+"

// e26DrainLess replicates the default ranked comparator exactly (cost
// ascending, then lexicographic tuple order, then arity). Passing it as a
// custom StreamOptions.Less forces the historical drain-then-sort producer
// while leaving the output order identical — the in-tree baseline the
// incremental any-k enumerator is measured against.
func e26DrainLess(a, b cxrpq.Row) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	n := len(a.Tuple)
	if len(b.Tuple) < n {
		n = len(b.Tuple)
	}
	for i := 0; i < n; i++ {
		if a.Tuple[i] != b.Tuple[i] {
			return a.Tuple[i] < b.Tuple[i]
		}
	}
	return len(a.Tuple) < len(b.Tuple)
}

// E26RankedTTFR measures the incremental any-k ranked enumerator (PR 10)
// against the drain-then-sort baseline on the gMark-style workload: the
// time until the first ranked row leaves the cursor, session-cold, for the
// priority-queue producer (default comparator — pops partial assignments by
// an admissible lower bound and emits the global minimum without touching
// the rest of the answer space) versus the historical producer (forced via
// a custom Less that replicates the default order byte for byte, so only
// the production strategy differs). The first rows of both streams are
// asserted identical, a shared prefix is asserted equal row by row, and the
// incremental stream's costs are asserted nondecreasing. The acceptance
// floor for PR 10 is ttfr_speedup ≥ 50x — an algorithmic gap (one best-first
// probe versus materializing and sorting the whole quadratic-ish answer
// set), so it holds at any GOMAXPROCS.
func E26RankedTTFR(scale int) *Table {
	t := &Table{ID: "E26", Title: "Incremental any-k: ranked time-to-first-row vs drain-then-sort (gMark-style)",
		Header: []string{"mode", "first row", "first cost", "ttfr", "speedup"}}
	db := workload.GMark(7, 1200*scale)
	db.Index() // shared label index: warm it outside every timing
	plan, err := cxrpq.PrepareSrc(e26Query)
	if err != nil {
		return fail(t, err)
	}

	const reps = 3
	firstRow := func(opts cxrpq.StreamOptions) (cxrpq.Row, time.Duration, error) {
		var row cxrpq.Row
		best := time.Duration(0)
		for i := 0; i < reps; i++ {
			start := time.Now()
			cur, err := plan.Bind(db).Stream(opts) // fresh bind: session-cold
			if err != nil {
				return row, 0, err
			}
			rows := cur.Fetch(1)
			d := time.Since(start)
			cur.Close()
			if len(rows) != 1 {
				return row, 0, fmt.Errorf("ranked stream produced no first row")
			}
			row = rows[0]
			if best == 0 || d < best {
				best = d
			}
		}
		return row, best, nil
	}

	incFirst, incD, err := firstRow(cxrpq.StreamOptions{Ranked: true})
	if err != nil {
		return fail(t, err)
	}
	drainFirst, drainD, err := firstRow(cxrpq.StreamOptions{Ranked: true, Less: e26DrainLess})
	if err != nil {
		return fail(t, err)
	}
	if incFirst.Cost != drainFirst.Cost || incFirst.Tuple.Key() != drainFirst.Tuple.Key() {
		return fail(t, fmt.Errorf("first ranked row diverged: any-k %v/%d, drain %v/%d",
			incFirst.Tuple, incFirst.Cost, drainFirst.Tuple, drainFirst.Cost))
	}

	// Order agreement beyond the first row, and the any-k cost invariant: a
	// shared prefix of both streams must match row by row, with the
	// incremental stream's costs nondecreasing throughout.
	const prefix = 64
	take := func(opts cxrpq.StreamOptions) ([]cxrpq.Row, error) {
		cur, err := plan.Bind(db).Stream(opts)
		if err != nil {
			return nil, err
		}
		defer cur.Close()
		rows := cur.Fetch(prefix)
		return rows, cur.Err()
	}
	incRows, err := take(cxrpq.StreamOptions{Ranked: true, Limit: prefix})
	if err != nil {
		return fail(t, err)
	}
	drainRows, err := take(cxrpq.StreamOptions{Ranked: true, Less: e26DrainLess, Limit: prefix})
	if err != nil {
		return fail(t, err)
	}
	if len(incRows) != len(drainRows) {
		return fail(t, fmt.Errorf("prefix lengths diverged: any-k %d, drain %d", len(incRows), len(drainRows)))
	}
	for i := range incRows {
		if incRows[i].Cost != drainRows[i].Cost || incRows[i].Tuple.Key() != drainRows[i].Tuple.Key() {
			return fail(t, fmt.Errorf("prefix row %d diverged: any-k %v/%d, drain %v/%d",
				i, incRows[i].Tuple, incRows[i].Cost, drainRows[i].Tuple, drainRows[i].Cost))
		}
		if i > 0 && incRows[i].Cost < incRows[i-1].Cost {
			return fail(t, fmt.Errorf("any-k cost decreased at row %d: %d after %d",
				i, incRows[i].Cost, incRows[i-1].Cost))
		}
	}

	speedup := float64(drainD.Nanoseconds()) / float64(max64(incD.Nanoseconds(), 1))
	t.Rows = append(t.Rows,
		[]string{"any-k (incremental)", fmt.Sprint(incFirst.Tuple), fmt.Sprint(incFirst.Cost), ms(incD), fmt.Sprintf("%.0fx", speedup)},
		[]string{"drain-then-sort", fmt.Sprint(drainFirst.Tuple), fmt.Sprint(drainFirst.Cost), ms(drainD), "1x"})
	if speedup < 50 {
		return fail(t, fmt.Errorf("ranked TTFR speedup %.1fx below the 50x acceptance floor (any-k %v, drain %v)",
			speedup, incD, drainD))
	}
	t.Metrics = map[string]float64{
		"anyk_ttfr_ms":  float64(incD.Microseconds()) / 1000,
		"drain_ttfr_ms": float64(drainD.Microseconds()) / 1000,
		"ttfr_speedup":  speedup,
	}
	return t
}
