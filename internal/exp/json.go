package exp

import (
	"encoding/json"
	"os"
	"time"
)

// TimedTable is one experiment's result table with its wall-clock run time.
type TimedTable struct {
	Table  *Table
	Millis float64
}

// AllTimed runs every experiment at the given scale, timing each.
func AllTimed(scale int) []TimedTable {
	out := make([]TimedTable, len(Registry))
	for i, f := range Registry {
		start := time.Now()
		t := f(scale)
		out[i] = TimedTable{Table: t, Millis: float64(time.Since(start).Microseconds()) / 1000}
	}
	return out
}

// BenchResult is one experiment's entry in the machine-readable benchmark
// report tracked across PRs (BENCH_engine.json).
type BenchResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Millis  float64            `json:"ms"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// BenchReport is the machine-readable benchmark report.
type BenchReport struct {
	Scale       int           `json:"scale"`
	TotalMillis float64       `json:"total_ms"`
	Results     []BenchResult `json:"results"`
}

// Report converts timed tables into a benchmark report.
func Report(tts []TimedTable, scale int) *BenchReport {
	rep := &BenchReport{Scale: scale}
	for _, tt := range tts {
		r := BenchResult{ID: tt.Table.ID, Title: tt.Table.Title, Millis: tt.Millis, Metrics: tt.Table.Metrics}
		if tt.Table.Err != nil {
			r.Error = tt.Table.Err.Error()
		}
		rep.TotalMillis += tt.Millis
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// WriteBenchJSON writes the report for the timed tables to path as indented
// JSON (the BENCH_engine.json format future PRs diff against).
func WriteBenchJSON(path string, tts []TimedTable, scale int) error {
	data, err := json.MarshalIndent(Report(tts, scale), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
