package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// e22Exprs are the classical regexes of the sharded-kernel experiment:
// hub-heavy transitive closure, an alternation walk, and a chain-following
// expression — together they exercise both the high-fanout 'a' hubs the
// degree-balanced partition splits around and the long 'c' chains that
// stress the level-synchronous frontier.
var e22Exprs = []string{"a(a|b)*", "(a|b)+c?", "c*a(b|c)*"}

// E22ShardedReach measures the sharded multi-source product-reachability
// kernel (PR 6) on a gMark-style scaled workload: for each expression the
// all-sources relation is computed three ways — the historical per-source
// BFS fan (engine.ReachAll), the batched kernel on a single shard (MS-BFS
// source batching only), and the batched kernel on the full degree-balanced
// partition (batching + frontier exchange) — asserting all three agree
// exactly. The totals, the aggregate speedup of the sharded kernel over the
// fan, and the cross-shard exchange volume are exported as metrics into
// BENCH_engine.json. The batching win is algorithmic (64 sources share one
// edge sweep), so the speedup holds even at GOMAXPROCS=1.
func E22ShardedReach(scale int) *Table {
	// The sharded column always runs with at least 4 shards so the
	// frontier-exchange machinery is measured even on a single-core runner
	// (where Shards() would collapse to 1 and alias the batch-x1 column).
	shards := engine.Shards()
	if shards < 4 {
		shards = 4
	}
	t := &Table{ID: "E22", Title: "Sharded MS-BFS reachability: ReachBatch vs per-source ReachAll (gMark-style)",
		Header: []string{"expr", "nodes", "edges", "reachall", "batch x1", fmt.Sprintf("batch x%d", shards), "speedup"}}
	db := workload.GMark(7, 1200*scale)
	ix := db.Index()
	sigma := db.Alphabet()
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	statsBefore := engine.ReachBatchStats()
	var totalBase, totalOne, totalSharded time.Duration
	for _, src := range e22Exprs {
		nfa, err := xregex.Compile(xregex.MustParse(src), sigma)
		if err != nil {
			return fail(t, err)
		}
		// Each mode gets a fresh subset cache so all three pay the same
		// on-the-fly determinization cost.
		startBase := time.Now()
		base := engine.ReachAll(ix, automata.NewSubsetCache(nfa), srcs, true)
		baseD := time.Since(startBase)

		startOne := time.Now()
		one := engine.ReachBatch(ix, db.Partition(1), automata.NewSubsetCache(nfa), srcs, true)
		oneD := time.Since(startOne)

		startSharded := time.Now()
		sharded := engine.ReachBatch(ix, db.Partition(shards), automata.NewSubsetCache(nfa), srcs, true)
		shardedD := time.Since(startSharded)

		for u := range base {
			if !sameInts(base[u], one[u]) || !sameInts(base[u], sharded[u]) {
				return fail(t, fmt.Errorf("%s: source %d: batched kernel diverged from per-source fan", src, u))
			}
		}
		totalBase += baseD
		totalOne += oneD
		totalSharded += shardedD
		t.Rows = append(t.Rows, []string{src, fmt.Sprint(db.NumNodes()), fmt.Sprint(db.NumEdges()),
			ms(baseD), ms(oneD), ms(shardedD),
			fmt.Sprintf("%.1fx", float64(baseD.Nanoseconds())/float64(max64(shardedD.Nanoseconds(), 1)))})
	}
	statsAfter := engine.ReachBatchStats()
	t.Metrics = map[string]float64{
		"reachall_ms": float64(totalBase.Microseconds()) / 1000,
		"batch1_ms":   float64(totalOne.Microseconds()) / 1000,
		"sharded_ms":  float64(totalSharded.Microseconds()) / 1000,
		"speedup":     float64(totalBase.Nanoseconds()) / float64(max64(totalSharded.Nanoseconds(), 1)),
		"shards":      float64(shards),
		"exchanged":   float64(statsAfter.Exchanged - statsBefore.Exchanged),
	}
	return t
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
