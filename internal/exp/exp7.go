package exp

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/workload"
)

// e24Query keeps per-session EdgeRel caches alive ($w atoms materialize
// label relations), so every insert delta forces real maintenance work —
// frontier extension of the cached relations — which the lock discipline
// performs under the write lock and the MVCC discipline performs in the
// writer's fork, off the reader path.
const e24Query = "ans(x, y)\nx y : $w{a|b}\ny z : $w+"

// E24SnapshotReadsUnderWrites measures what the MVCC publish step (PR 8)
// buys readers during a write storm. Two disciplines replay the identical
// MutationStream over the identical graph:
//
//   - lock: the historical server shape — one RWMutex, readers evaluate
//     under RLock, the writer applies each delta and eagerly refreshes the
//     session under Lock, so every mutation is quiescent w.r.t. reads;
//   - mvcc: the writer applies to its private DB, snapshots, forks the
//     session (delta-maintaining its caches), and publishes via one atomic
//     pointer store; readers load the pointer and evaluate lock-free on a
//     frozen view.
//
// Both disciplines do the same total maintenance work; only who waits for
// it differs. Reported: read-latency p50/p99 under the storm, the stalled
// read (a probe issued while the writer deliberately sits 25ms inside its
// critical section — under the lock it waits the stall out, under MVCC it
// completes against the previous snapshot, which is the non-blocking
// proof), and WAL recovery throughput (checkpoint-load + replay per MB).
// Each discipline's final answers are checked against a fresh bind.
func E24SnapshotReadsUnderWrites(scale int) *Table {
	t := &Table{ID: "E24", Title: "MVCC snapshot reads under a write storm (global lock vs snapshot publish)",
		Header: []string{"discipline", "reads", "p50", "p99", "stalled read"}}
	const (
		seed    = 11
		steps   = 48
		perStep = 16
		readers = 4
		pool    = 4 // pooled sessions: all maintained per write, like the server
		stall   = 25 * time.Millisecond
		k       = 1
		// Readers pace their probes instead of spinning: a closed loop
		// self-synchronizes with the RWMutex handoff (every woken reader
		// sneaks one free read per write cycle, putting the median on a
		// knife edge), while paced arrivals sample the storm uniformly —
		// the blocked fraction then reflects how long the writer actually
		// holds the lock, which is the quantity under test.
		pace = 500 * time.Microsecond
	)
	base := 250 * scale

	plan, err := cxrpq.PrepareSrc(e24Query)
	if err != nil {
		return fail(t, err)
	}

	type epoch struct{ sess []*cxrpq.Session }

	run := func(mvcc bool) (lat []time.Duration, stalled time.Duration, err error) {
		db, deltas := workload.MutationStream(seed, base, steps, perStep)
		var cur atomic.Pointer[epoch]
		var mu sync.RWMutex
		bind := func(view *graph.DB) *epoch {
			e := &epoch{sess: make([]*cxrpq.Session, pool)}
			for i := range e.sess {
				e.sess[i] = plan.Bind(view)
			}
			return e
		}
		if mvcc {
			cur.Store(bind(db.Snapshot().DB()))
		} else {
			cur.Store(bind(db))
		}
		for _, s := range cur.Load().sess { // warm the rel caches
			if _, err := s.EvalBounded(k); err != nil {
				return nil, 0, err
			}
		}

		read := func(r int) (time.Duration, error) {
			start := time.Now()
			var err error
			if mvcc {
				_, err = cur.Load().sess[r%pool].EvalBounded(k)
			} else {
				mu.RLock()
				_, err = cur.Load().sess[r%pool].EvalBounded(k)
				mu.RUnlock()
			}
			return time.Since(start), err
		}
		write := func(delta graph.Delta, pause time.Duration) error {
			if mvcc {
				// Readers keep the previous publish throughout — the pause
				// and all pool maintenance happen before the pointer store.
				if _, err := db.ApplyDelta(delta); err != nil {
					return err
				}
				time.Sleep(pause)
				view := db.Snapshot().DB()
				old := cur.Load()
				ns := &epoch{sess: make([]*cxrpq.Session, pool)}
				for i, s := range old.sess {
					ns.sess[i] = s.Fork(view)
				}
				cur.Store(ns)
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			if _, err := db.ApplyDelta(delta); err != nil {
				return err
			}
			time.Sleep(pause)
			for _, s := range cur.Load().sess {
				s.Refresh() // the historical eager refresh, under the lock
			}
			return nil
		}

		// Stall probe: the writer sits inside its critical section; a read
		// issued mid-stall must not wait for it under MVCC.
		inStall := make(chan struct{})
		probeErr := make(chan error, 1)
		go func() {
			close(inStall)
			probeErr <- write(deltas[0], stall)
		}()
		<-inStall
		time.Sleep(stall / 4) // land the probe inside the stall window
		stalled, err = read(0)
		if err != nil {
			return nil, 0, err
		}
		if err := <-probeErr; err != nil {
			return nil, 0, err
		}

		// Write storm: back-to-back deltas against paced readers.
		var wg sync.WaitGroup
		done := make(chan struct{})
		lats := make([][]time.Duration, readers)
		errs := make([]error, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					case <-time.After(pace):
					}
					d, err := read(r)
					if err != nil {
						errs[r] = err
						return
					}
					lats[r] = append(lats[r], d)
				}
			}(r)
		}
		for _, delta := range deltas[1:] {
			if err := write(delta, 0); err != nil {
				close(done)
				wg.Wait()
				return nil, 0, err
			}
		}
		close(done)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		for _, l := range lats {
			lat = append(lat, l...)
		}

		// Differential: the discipline's final answers equal a fresh bind.
		got, err := cur.Load().sess[0].EvalBounded(k)
		if err != nil {
			return nil, 0, err
		}
		want, err := plan.Bind(db).EvalBounded(k)
		if err != nil {
			return nil, 0, err
		}
		if !got.Equal(want) {
			return nil, 0, fmt.Errorf("final answers diverged from a fresh bind (%d vs %d tuples)", got.Len(), want.Len())
		}
		return lat, stalled, nil
	}

	lockLat, lockStall, err := run(false)
	if err != nil {
		return fail(t, err)
	}
	mvccLat, mvccStall, err := run(true)
	if err != nil {
		return fail(t, err)
	}
	for _, d := range []struct {
		name  string
		lat   []time.Duration
		stall time.Duration
	}{{"global-lock", lockLat, lockStall}, {"mvcc-snapshot", mvccLat, mvccStall}} {
		t.Rows = append(t.Rows, []string{d.name, fmt.Sprint(len(d.lat)),
			ms(pctile(d.lat, 0.50)), ms(pctile(d.lat, 0.99)), ms(d.stall)})
	}

	// Recovery throughput: replay the same stream through a store, then
	// time a cold recovery (checkpoint load + WAL replay) per WAL megabyte.
	recovMS, walMB, err := e24Recovery(seed, base, steps, perStep)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"wal-recovery", fmt.Sprintf("%.2f MB", walMB),
		fmt.Sprintf("%.1f ms", recovMS), "", ""})

	t.Metrics = map[string]float64{
		"read_p50_lock_ms":   float64(pctile(lockLat, 0.50).Microseconds()) / 1000,
		"read_p50_mvcc_ms":   float64(pctile(mvccLat, 0.50).Microseconds()) / 1000,
		"read_p99_lock_ms":   float64(pctile(lockLat, 0.99).Microseconds()) / 1000,
		"read_p99_mvcc_ms":   float64(pctile(mvccLat, 0.99).Microseconds()) / 1000,
		"p50_speedup":        float64(pctile(lockLat, 0.50).Nanoseconds()) / float64(max64(pctile(mvccLat, 0.50).Nanoseconds(), 1)),
		"p99_speedup":        float64(pctile(lockLat, 0.99).Nanoseconds()) / float64(max64(pctile(mvccLat, 0.99).Nanoseconds(), 1)),
		"stall_read_lock_ms": float64(lockStall.Microseconds()) / 1000,
		"stall_read_mvcc_ms": float64(mvccStall.Microseconds()) / 1000,
		"recovery_ms_per_mb": recovMS / walMB,
		"wal_mb":             walMB,
	}
	return t
}

// e24Recovery replays the stream through a graph.Store and times a cold
// open (OpenFollower: pure checkpoint-load + replay, no file mutation).
func e24Recovery(seed int64, base, steps, perStep int) (recovMS, walMB float64, err error) {
	dir, err := os.MkdirTemp("", "e24store")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	st, err := graph.OpenStore(dir, graph.StoreOptions{SyncEvery: -1, CheckpointBytes: -1})
	if err != nil {
		return 0, 0, err
	}
	_, deltas := workload.MutationStream(seed, base, steps, perStep)
	db := st.DB()
	for _, delta := range deltas {
		from := db.Revision()
		if _, err := db.ApplyDelta(delta); err != nil {
			return 0, 0, err
		}
		if err := st.Append(delta, from, db.Revision()); err != nil {
			return 0, 0, err
		}
	}
	if err := st.Close(); err != nil {
		return 0, 0, err
	}
	walMB = float64(st.Stats().WALBytes) / (1 << 20)
	start := time.Now()
	fo, err := graph.OpenFollower(dir)
	if err != nil {
		return 0, 0, err
	}
	recovMS = float64(time.Since(start).Microseconds()) / 1000
	if fo.DB().Revision() != db.Revision() {
		return 0, 0, fmt.Errorf("recovered revision %d, wrote %d", fo.DB().Revision(), db.Revision())
	}
	return recovMS, walMB, nil
}

// pctile returns the q-quantile of lat by nearest-rank on a sorted copy.
func pctile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}
