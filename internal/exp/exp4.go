package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// IncrementalUpdateItem is one workload of the E21 live-mutation
// experiment: a MutationStream base graph and delta stream plus an
// operation re-issued after every delta. Incremental routes each delta
// through Session.ApplyDelta (fine-grained cache maintenance); Rebuild
// applies the same delta and then forces the historical whole-epoch flush
// with Session.Invalidate.
type IncrementalUpdateItem struct {
	Name  string
	Query *cxrpq.Query
	K     int
	Seed  int64
	Base  int
	Steps int
	Per   int
	// Do is the per-step operation; results are normalized to tuple sets
	// for the cross-mode agreement check.
	Do func(*cxrpq.Session, int) (*pattern.TupleSet, error)
}

// IncrementalUpdateItems returns the E21 workloads (shared with
// BenchmarkApplyDelta), covering the three serving paths of a live
// database: full enumeration after each write, a Boolean liveness probe
// ("does the pattern still hold?"), and a membership check of a fixed
// tuple ("are these two still related?"). The enumeration path also pays
// the per-answer materialization both modes share, so its ratio is the
// most conservative; the probe paths isolate the relation work the
// subsystem actually saves.
func IncrementalUpdateItems(scale int) []IncrementalUpdateItem {
	boolSet := func(ok bool) *pattern.TupleSet {
		s := pattern.NewTupleSet()
		if ok {
			s.Add(pattern.Tuple{})
		}
		return s
	}
	qEval := cxrpq.MustParse("ans(s, t)\ns m : $x{a|b}\nm t : ($x|b)a?")
	qBool := cxrpq.MustParse("ans(s, t)\ns m : $x{a|b}\nm n : $y{a|b}b?\nn t : ($x|$y)a?")
	qChk := cxrpq.MustParse("ans(s, t)\ns m : $x{a|b}\nm t : ($x|b)a?")
	return []IncrementalUpdateItem{
		{
			Name: "stream-eval", Query: qEval, K: 1, Seed: 5, Base: 40 * scale, Steps: 6, Per: 2,
			Do: func(s *cxrpq.Session, _ int) (*pattern.TupleSet, error) { return s.EvalBounded(1) },
		},
		{
			Name: "stream-bool", Query: qBool, K: 1, Seed: 11, Base: 64 * scale, Steps: 6, Per: 2,
			Do: func(s *cxrpq.Session, _ int) (*pattern.TupleSet, error) {
				ok, err := s.EvalBoundedBool(1)
				return boolSet(ok), err
			},
		},
		{
			Name: "stream-check", Query: qChk, K: 1, Seed: 17, Base: 64 * scale, Steps: 6, Per: 2,
			Do: func(s *cxrpq.Session, step int) (*pattern.TupleSet, error) {
				// Membership probes over a rotating pair of base nodes.
				n := s.DB().NumNodes()
				ok, err := s.CheckBounded(1, pattern.Tuple{step % n, (step*13 + 7) % n})
				return boolSet(ok), err
			},
		},
	}
}

// SetupMutationStream builds one item's database, delta stream and warmed
// session (setup is excluded from the timed mutate-then-query loop).
func SetupMutationStream(it IncrementalUpdateItem) (*cxrpq.Session, []graph.Delta, error) {
	db, deltas := workload.MutationStream(it.Seed, it.Base, it.Steps, it.Per)
	sess := cxrpq.MustPrepare(it.Query).Bind(db)
	if _, err := it.Do(sess, 0); err != nil { // warm the caches
		return nil, nil, err
	}
	return sess, deltas, nil
}

// runMutationStream replays a delta stream through a warmed session,
// calling apply for every delta; it returns the per-step results for the
// cross-mode agreement check. This is the timed loop.
func runMutationStream(it IncrementalUpdateItem, sess *cxrpq.Session, deltas []graph.Delta, apply func(sess *cxrpq.Session, delta graph.Delta) error) ([]*pattern.TupleSet, error) {
	var out []*pattern.TupleSet
	for step, delta := range deltas {
		if err := apply(sess, delta); err != nil {
			return nil, err
		}
		res, err := it.Do(sess, step)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// E21IncrementalUpdate measures the incremental-update subsystem (PR 5) on
// the append-mostly MutationStream workload: after every delta the item's
// operation re-runs, once with fine-grained delta maintenance
// (Session.ApplyDelta: relations retained or frontier-extended, the
// feasibility memo kept) and once with the historical flush-and-rebuild
// behavior (apply + Invalidate). Per-step results are asserted equal; the
// totals, the aggregate speedup and the retained/extended relation-entry
// counts are exported as metrics into BENCH_engine.json. The PR's
// acceptance floor is a ≥2x aggregate speedup of the incremental path.
func E21IncrementalUpdate(scale int) *Table {
	t := &Table{ID: "E21", Title: "Incremental updates: delta-maintained session vs flush-and-rebuild (MutationStream)",
		Header: []string{"workload", "steps", "rebuild", "incremental", "speedup", "rel retained", "rel extended"}}
	var totalInc, totalReb time.Duration
	var retained, extended uint64
	for _, it := range IncrementalUpdateItems(scale) {
		rebSess, rebDeltas, err := SetupMutationStream(it)
		if err != nil {
			return fail(t, err)
		}
		startReb := time.Now()
		wantSteps, err := runMutationStream(it, rebSess, rebDeltas, func(sess *cxrpq.Session, delta graph.Delta) error {
			if _, err := sess.DB().ApplyDelta(delta); err != nil {
				return err
			}
			sess.Invalidate() // the historical whole-epoch flush
			return nil
		})
		if err != nil {
			return fail(t, err)
		}
		rebD := time.Since(startReb)

		sess, incDeltas, err := SetupMutationStream(it)
		if err != nil {
			return fail(t, err)
		}
		startInc := time.Now()
		gotSteps, err := runMutationStream(it, sess, incDeltas, func(sess *cxrpq.Session, delta graph.Delta) error {
			_, err := sess.ApplyDelta(delta)
			return err
		})
		if err != nil {
			return fail(t, err)
		}
		incD := time.Since(startInc)

		for i := range wantSteps {
			if !gotSteps[i].Equal(wantSteps[i]) {
				return fail(t, fmt.Errorf("%s: step %d: incremental result diverged from rebuild (%d vs %d tuples)",
					it.Name, i, gotSteps[i].Len(), wantSteps[i].Len()))
			}
		}
		st := sess.Stats()
		if st.Maint.DeltaApplies == 0 {
			return fail(t, fmt.Errorf("%s: no delta maintenance happened", it.Name))
		}
		totalInc += incD
		totalReb += rebD
		retained += st.Rel.Retained
		extended += st.Rel.Extended
		t.Rows = append(t.Rows, []string{it.Name, fmt.Sprint(it.Steps), ms(rebD), ms(incD),
			fmt.Sprintf("%.1fx", float64(rebD.Nanoseconds())/float64(max64(incD.Nanoseconds(), 1))),
			fmt.Sprint(st.Rel.Retained), fmt.Sprint(st.Rel.Extended)})
	}
	t.Metrics = map[string]float64{
		"rebuild_ms":     float64(totalReb.Microseconds()) / 1000,
		"incremental_ms": float64(totalInc.Microseconds()) / 1000,
		"speedup":        float64(totalReb.Nanoseconds()) / float64(max64(totalInc.Nanoseconds(), 1)),
		"rel_retained":   float64(retained),
		"rel_extended":   float64(extended),
	}
	return t
}
