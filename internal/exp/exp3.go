package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/reductions"
	"cxrpq/internal/workload"
)

// PreparedReuseItem is one workload of the prepared-session experiment:
// the same evaluation issued through the one-shot API and through a bound
// Session, with an agreement check between the two.
type PreparedReuseItem struct {
	Name    string
	Query   *cxrpq.Query
	DB      *graph.DB
	OneShot func(*cxrpq.Query, *graph.DB) (*pattern.TupleSet, error)
	Session func(*cxrpq.Session) (*pattern.TupleSet, error)
}

// PreparedReuseItems returns the workloads of E19 (shared with
// BenchmarkPreparedReuse): the E2 bounded queries, the E6 vstar-free query
// and the E9 hitting-set reduction.
func PreparedReuseItems(scale int) ([]PreparedReuseItem, error) {
	boolSet := func(ok bool) *pattern.TupleSet {
		s := pattern.NewTupleSet()
		if ok {
			s.Add(pattern.Tuple{})
		}
		return s
	}
	h := &reductions.HittingSetInstance{N: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1}
	hq, err := h.ToCXRPQ()
	if err != nil {
		return nil, err
	}
	return []PreparedReuseItem{
		{
			Name:  "E2-G1 (bounded k=1)",
			Query: cxrpq.MustParse("ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|c)+"),
			DB:    workload.Random(3, 10*scale, 25*scale, "abc"),
			OneShot: func(q *cxrpq.Query, db *graph.DB) (*pattern.TupleSet, error) {
				return cxrpq.EvalBounded(q, db, 1)
			},
			Session: func(s *cxrpq.Session) (*pattern.TupleSet, error) { return s.EvalBounded(1) },
		},
		{
			Name:  "E2-G3 (bounded k=2)",
			Query: cxrpq.MustParse("ans(v1, v2)\nv1 v2 : $x{..+}\nv2 v1 : $y{..+}\nv1 w : ($x|$y)+\nv2 w : ($x|$y)+"),
			DB:    workload.MessageNetwork(7, 8*scale, "ab", 2, 2, 2),
			OneShot: func(q *cxrpq.Query, db *graph.DB) (*pattern.TupleSet, error) {
				return cxrpq.EvalBounded(q, db, 2)
			},
			Session: func(s *cxrpq.Session) (*pattern.TupleSet, error) { return s.EvalBounded(2) },
		},
		{
			Name:  "E6 (vstar-free)",
			Query: cxrpq.MustParse("ans(v1, v2)\nv1 v2 : $x{aa|b}\nv2 v3 : c*\nv3 v1 : $x|c"),
			DB:    workload.Random(9, 24*scale, 72*scale, "abc"),
			OneShot: func(q *cxrpq.Query, db *graph.DB) (*pattern.TupleSet, error) {
				return cxrpq.EvalVsf(q, db)
			},
			Session: func(s *cxrpq.Session) (*pattern.TupleSet, error) { return s.EvalVsf() },
		},
		{
			Name:  "E9 (hitting set, bounded k=1)",
			Query: hq,
			DB:    h.ToGraphDB(),
			OneShot: func(q *cxrpq.Query, db *graph.DB) (*pattern.TupleSet, error) {
				ok, err := cxrpq.EvalBoundedBool(q, db, 1)
				return boolSet(ok), err
			},
			Session: func(s *cxrpq.Session) (*pattern.TupleSet, error) {
				ok, err := s.EvalBoundedBool(1)
				return boolSet(ok), err
			},
		},
	}, nil
}

// E19PreparedReuse measures the prepared-query subsystem (PR 3): Plan.Bind
// once and re-evaluate through the Session caches, against the same number
// of one-shot evaluations that recompile and re-derive everything per call.
// Two session variants are timed: the default (whole-result cache on — the
// server's hot path for repeated identical queries) and one with the result
// cache disabled, which isolates the structural reuse (plan + relation /
// feasibility caches) so a regression there cannot hide behind result-cache
// hits. Session and one-shot results are asserted equal on every rep.
func E19PreparedReuse(scale int) *Table {
	t := &Table{ID: "E19", Title: "Prepared sessions: repeated Session eval vs repeated one-shot eval",
		Header: []string{"workload", "reps", "one-shot", "session", "session (no result cache)", "speedup", "speedup (no rc)"}}
	items, err := PreparedReuseItems(scale)
	if err != nil {
		return fail(t, err)
	}
	reps := 4 * scale
	for _, it := range items {
		var want *pattern.TupleSet
		startOne := time.Now()
		for i := 0; i < reps; i++ {
			res, err := it.OneShot(it.Query, it.DB)
			if err != nil {
				return fail(t, err)
			}
			want = res
		}
		oneShot := time.Since(startOne)

		plan, err := cxrpq.Prepare(it.Query)
		if err != nil {
			return fail(t, err)
		}
		timeSession := func(sess *cxrpq.Session) (time.Duration, error) {
			start := time.Now()
			for i := 0; i < reps; i++ {
				res, err := it.Session(sess)
				if err != nil {
					return 0, err
				}
				if !res.Equal(want) {
					return 0, fmt.Errorf("%s: session result diverged from one-shot", it.Name)
				}
			}
			return time.Since(start), nil
		}
		sessD, err := timeSession(plan.Bind(it.DB))
		if err != nil {
			return fail(t, err)
		}
		noRC, err := timeSession(plan.BindOpts(it.DB, cxrpq.SessionOptions{ResultCacheCap: -1}))
		if err != nil {
			return fail(t, err)
		}

		speedup := func(d time.Duration) string {
			return fmt.Sprintf("%.1fx", float64(oneShot.Nanoseconds())/float64(max64(d.Nanoseconds(), 1)))
		}
		t.Rows = append(t.Rows, []string{it.Name, fmt.Sprint(reps),
			ms(oneShot), ms(sessD), ms(noRC), speedup(sessD), speedup(noRC)})
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PlannerJoinItem is one workload of E20: the same evaluation run with the
// structural join order (Structural) and with the cost-based planner
// (Planned); both toggle planner.SetEnabled internally where needed.
type PlannerJoinItem struct {
	Name       string
	Structural func() (*pattern.TupleSet, error)
	Planned    func() (*pattern.TupleSet, error)
}

// PlannerJoinItems returns the workloads of E20 (shared with
// BenchmarkPlannerJoin): the skewed-cardinality graph — one dense hub atom
// plus selective atoms — evaluated through the ecrpq evaluator's join, the
// bounded engine's leaf joins, and a raw JoinRelations call.
func PlannerJoinItems(scale int) ([]PlannerJoinItem, error) {
	db := workload.SkewedJoin(24 * scale)
	withPlanner := func(on bool, f func() (*pattern.TupleSet, error)) (*pattern.TupleSet, error) {
		prev := planner.SetEnabled(on)
		defer planner.SetEnabled(prev)
		return f()
	}
	qCRPQ := cxrpq.MustParse("ans(x, z)\nx y : h\ny z : s")
	qBounded := cxrpq.MustParse("ans(x, z)\nx y : $w{h}\ny z : s$w?")
	g := pattern.MustParseQuery("ans(x, z)\nx y : h\ny z : s")
	sigma := db.Alphabet()
	rels := make([]*ecrpq.EdgeRel, len(g.Edges))
	for i, e := range g.Edges {
		r, err := ecrpq.RelationFor(db, e.Label, sigma)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	return []PlannerJoinItem{
		{
			Name: "ecrpq eval (CRPQ join)",
			Structural: func() (*pattern.TupleSet, error) {
				return withPlanner(false, func() (*pattern.TupleSet, error) { return cxrpq.Eval(qCRPQ, db) })
			},
			Planned: func() (*pattern.TupleSet, error) {
				return withPlanner(true, func() (*pattern.TupleSet, error) { return cxrpq.Eval(qCRPQ, db) })
			},
		},
		{
			Name: "bounded leaf joins (k=1)",
			Structural: func() (*pattern.TupleSet, error) {
				return withPlanner(false, func() (*pattern.TupleSet, error) { return cxrpq.EvalBounded(qBounded, db, 1) })
			},
			Planned: func() (*pattern.TupleSet, error) {
				return withPlanner(true, func() (*pattern.TupleSet, error) { return cxrpq.EvalBounded(qBounded, db, 1) })
			},
		},
		{
			Name: "relation join (JoinRelations)",
			Structural: func() (*pattern.TupleSet, error) {
				return ecrpq.JoinRelations(g, rels, nil, nil, false), nil
			},
			Planned: func() (*pattern.TupleSet, error) {
				return ecrpq.JoinRelations(g, rels, ecrpq.PlanJoin(g, rels, nil), nil, false), nil
			},
		},
	}, nil
}

// E20PlannerJoin measures the cost-based planning layer (PR 4) on a
// skewed-cardinality workload: a dense h-labelled hub atom joined with
// highly selective s atoms. The structural most-bound-first heuristic ties
// at score zero and scans the hub first; the planner's cardinality
// estimates start from the selective atoms (and the semijoin pass shrinks
// the hub's candidate domain). Structural and planner results are asserted
// equal on every rep; the per-path timings and the aggregate speedup are
// exported as metrics into BENCH_engine.json.
func E20PlannerJoin(scale int) *Table {
	t := &Table{ID: "E20", Title: "Cost-based join order vs structural order (skewed hub + selective atoms)",
		Header: []string{"path", "reps", "structural", "planner", "speedup"}}
	items, err := PlannerJoinItems(scale)
	if err != nil {
		return fail(t, err)
	}
	reps := 3 * scale
	var totalStruct, totalPlan time.Duration
	for _, it := range items {
		var want *pattern.TupleSet
		startS := time.Now()
		for i := 0; i < reps; i++ {
			res, err := it.Structural()
			if err != nil {
				return fail(t, err)
			}
			want = res
		}
		structD := time.Since(startS)
		startP := time.Now()
		for i := 0; i < reps; i++ {
			res, err := it.Planned()
			if err != nil {
				return fail(t, err)
			}
			if !res.Equal(want) {
				return fail(t, fmt.Errorf("%s: planner result diverged from structural", it.Name))
			}
		}
		planD := time.Since(startP)
		totalStruct += structD
		totalPlan += planD
		t.Rows = append(t.Rows, []string{it.Name, fmt.Sprint(reps), ms(structD), ms(planD),
			fmt.Sprintf("%.1fx", float64(structD.Nanoseconds())/float64(max64(planD.Nanoseconds(), 1)))})
	}
	t.Metrics = map[string]float64{
		"structural_ms": float64(totalStruct.Microseconds()) / 1000,
		"planner_ms":    float64(totalPlan.Microseconds()) / 1000,
		"speedup":       float64(totalStruct.Nanoseconds()) / float64(max64(totalPlan.Nanoseconds(), 1)),
	}
	return t
}
