package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/workload"
)

// The planner-v2 workload families (PR 9). The chain query over
// workload.DeadEndChain makes every backtracking anchor explore
// ~width·fanout² partial assignments that die one atom later; the star
// query over workload.TriStar makes backtracking enumerate fanout³
// satisfying assignments per center that all project to the same output
// tuple; the redundant query carries a duplicated atom and an atom widened
// to a|b over the same endpoints as an a atom, both of which the
// containment-based minimization pass deletes.
const (
	e25Chain     = "ans(x0, x3)\nx0 x1 : a\nx1 x2 : a\nx2 x3 : a"
	e25Star      = "ans(x)\nx y1 : a\nx y2 : b\nx y3 : c"
	e25Redundant = "ans(x, z)\nx y : a\nx y : a|b\ny z : a\ny z : a"
)

// E25PlannerV2 measures the planner-v2 rewrites (PR 9) against the
// backtracking baseline on their stress families:
//
//   - chain/star: the same query is evaluated with the Yannakakis switch
//     off (pure backtracking over the planner's join order) and on (GYO
//     join tree + two semijoin passes + backtrack-free enumeration with
//     free-connex variable skipping); results are asserted equal and the
//     acyclic path is asserted to have actually fired via the planner
//     counters.
//   - redundant: the query carrying a duplicate atom and a containment-
//     widened atom is evaluated with minimization off and on (Yannakakis
//     disabled throughout so only the rewrite under test moves); results
//     are asserted equal and the /plan report is asserted to name the
//     deleted atoms.
func E25PlannerV2(scale int) *Table {
	t := &Table{ID: "E25", Title: "Planner v2: acyclic Yannakakis joins + containment minimization",
		Header: []string{"family", "tuples", "baseline", "planner-v2", "speedup"}}
	reps := 3

	evalTimed := func(plan *cxrpq.Plan, db *graph.DB) (*pattern.TupleSet, time.Duration, error) {
		var res *pattern.TupleSet
		start := time.Now()
		for i := 0; i < reps; i++ {
			r, err := plan.Bind(db).Eval() // fresh bind: no result-cache carryover
			if err != nil {
				return nil, 0, err
			}
			res = r
		}
		return res, time.Since(start), nil
	}

	metrics := map[string]float64{}

	// Acyclic families: Yannakakis off vs on.
	acyclic := []struct {
		name string
		src  string
		db   *graph.DB
	}{
		{"dead-end chain", e25Chain, workload.DeadEndChain(3, 120*scale, 20, 2)},
		{"tri-label star", e25Star, workload.TriStar(30*scale, 20)},
	}
	for _, it := range acyclic {
		plan, err := cxrpq.PrepareSrc(it.src)
		if err != nil {
			return fail(t, err)
		}
		it.db.Index() // shared label index: warm outside both timings
		prev := planner.SetYannakakis(false)
		want, backD, err := evalTimed(plan, it.db)
		planner.SetYannakakis(true)
		if err != nil {
			planner.SetYannakakis(prev)
			return fail(t, err)
		}
		before := planner.Stats().AcyclicPlans
		got, yanD, yerr := evalTimed(plan, it.db)
		fired := planner.Stats().AcyclicPlans - before
		planner.SetYannakakis(prev)
		if yerr != nil {
			return fail(t, yerr)
		}
		if !got.Equal(want) {
			return fail(t, fmt.Errorf("%s: Yannakakis result diverged (%d vs %d tuples)", it.name, got.Len(), want.Len()))
		}
		if fired == 0 {
			return fail(t, fmt.Errorf("%s: acyclic path never fired", it.name))
		}
		speedup := float64(backD.Nanoseconds()) / float64(max64(yanD.Nanoseconds(), 1))
		t.Rows = append(t.Rows, []string{it.name, fmt.Sprint(want.Len()), ms(backD), ms(yanD),
			fmt.Sprintf("%.1fx", speedup)})
		key := "chain"
		if it.name == "tri-label star" {
			key = "star"
		}
		metrics[key+"_backtracking_ms"] = float64(backD.Microseconds()) / 1000
		metrics[key+"_yannakakis_ms"] = float64(yanD.Microseconds()) / 1000
		metrics[key+"_speedup"] = speedup
	}

	// Redundant family: minimization off vs on (Yannakakis parked so only
	// the atom deletion moves the needle).
	plan, err := cxrpq.PrepareSrc(e25Redundant)
	if err != nil {
		return fail(t, err)
	}
	db := workload.Random(5, 400*scale, 2400*scale, "ab")
	db.Index()
	yanPrev := planner.SetYannakakis(false)
	minPrev := planner.SetMinimize(false)
	want, baseD, err := evalTimed(plan, db)
	planner.SetMinimize(true)
	if err != nil {
		planner.SetMinimize(minPrev)
		planner.SetYannakakis(yanPrev)
		return fail(t, err)
	}
	got, minD, merr := evalTimed(plan, db)
	var rep *cxrpq.PlanReport
	var rerr error
	if merr == nil {
		rep, rerr = plan.Bind(db).PlanReport()
	}
	planner.SetMinimize(minPrev)
	planner.SetYannakakis(yanPrev)
	if merr != nil {
		return fail(t, merr)
	}
	if rerr != nil {
		return fail(t, rerr)
	}
	if !got.Equal(want) {
		return fail(t, fmt.Errorf("redundant: minimized result diverged (%d vs %d tuples)", got.Len(), want.Len()))
	}
	if len(rep.MinimizedAtoms) < 1 {
		return fail(t, fmt.Errorf("redundant: minimization deleted no atom (plan report: %v)", rep.MinimizedAtoms))
	}
	minSpeed := float64(baseD.Nanoseconds()) / float64(max64(minD.Nanoseconds(), 1))
	t.Rows = append(t.Rows, []string{"redundant atoms", fmt.Sprint(want.Len()), ms(baseD), ms(minD),
		fmt.Sprintf("%.1fx", minSpeed)})
	metrics["redundant_full_ms"] = float64(baseD.Microseconds()) / 1000
	metrics["redundant_minimized_ms"] = float64(minD.Microseconds()) / 1000
	metrics["redundant_speedup"] = minSpeed
	metrics["atoms_dropped"] = float64(len(rep.MinimizedAtoms))

	t.Metrics = metrics
	return t
}
