// Package exp implements the experiment harness: one function per
// experiment in the DESIGN.md index (E1–E16), each regenerating a paper
// artefact (figure, theorem-level claim, or size bound) as a printable
// table. cmd/cxrpq-exp runs them all; bench_test.go wraps them as
// benchmarks. Scale 1 is the fast configuration used in benchmarks; higher
// scales enlarge the workloads.
package exp

import (
	"fmt"
	"strings"
	"time"

	"cxrpq/internal/crpq"
	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/reductions"
	"cxrpq/internal/separations"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// Table is one experiment's result table. Metrics optionally carries
// named scalar results (timings, ratios) that the benchmark JSON report
// records alongside the experiment's wall-clock time, so before/after
// comparisons inside an experiment survive into BENCH_engine.json.
type Table struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Metrics map[string]float64
	Err     error
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Err != nil {
		fmt.Fprintf(&b, "ERROR: %v\n", t.Err)
		return b.String()
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }

func fail(t *Table, err error) *Table { t.Err = err; return t }

// E01Figure1 evaluates the four CRPQs of Figure 1 on a genealogy graph.
func E01Figure1(scale int) *Table {
	t := &Table{ID: "E1", Title: "Figure 1: CRPQs G1–G4 on a genealogy graph",
		Header: []string{"query", "pattern", "answers", "time"}}
	db := workload.Genealogy(42, 30*scale)
	queries := []struct{ name, src string }{
		{"G1", "ans(v1, v2)\nv1 m : p\nm w : s\nv2 w : p"},
		{"G2", "ans(v1, v2)\nv1 v2 : p+|s+"},
		{"G3", "ans(v1)\nz v1 : p+\nz v1 : s+"},
		{"G4", "ans(v1, v2)\nz1 v1 : p+\nz1 v2 : p+\nz2 v1 : s+\nz2 v2 : s+"},
	}
	for _, qc := range queries {
		q, err := crpq.Parse(qc.src)
		if err != nil {
			return fail(t, err)
		}
		start := time.Now()
		res, err := q.Eval(db)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{qc.name, strings.ReplaceAll(qc.src, "\n", "; "),
			fmt.Sprint(res.Len()), ms(time.Since(start))})
	}
	return t
}

// E02Figure2 evaluates the four CXRPQs of Figure 2 with the strongest
// complete algorithm for their fragment.
func E02Figure2(scale int) *Table {
	t := &Table{ID: "E2", Title: "Figure 2: CXRPQs G1–G4, fragments and evaluation",
		Header: []string{"query", "fragment", "algorithm", "answers", "time"}}
	type item struct {
		name, src, algo string
		eval            func(*cxrpq.Query, *graph.DB) (int, error)
		db              *graph.DB
	}
	viaBounded := func(k int) func(*cxrpq.Query, *graph.DB) (int, error) {
		return func(q *cxrpq.Query, db *graph.DB) (int, error) {
			res, err := cxrpq.EvalBounded(q, db, k)
			if err != nil {
				return 0, err
			}
			return res.Len(), nil
		}
	}
	viaVsf := func(q *cxrpq.Query, db *graph.DB) (int, error) {
		res, err := cxrpq.EvalVsf(q, db)
		if err != nil {
			return 0, err
		}
		return res.Len(), nil
	}
	msgNet := workload.MessageNetwork(7, 8*scale, "ab", 2, 2, 2)
	items := []item{
		{"G1", "ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|c)+", "EvalBounded(k=1)", viaBounded(1),
			workload.Random(3, 10*scale, 25*scale, "abc")},
		{"G2", "ans(v1, v2, v3)\nv1 v2 : $x{aa|b}\nv2 v3 : $y{[^ab]*}\nv3 v1 : $x|$y", "EvalVsf", viaVsf,
			workload.Random(4, 8*scale, 20*scale, "abc")},
		{"G3", "ans(v1, v2)\nv1 v2 : $x{..+}\nv2 v1 : $y{..+}\nv1 w : ($x|$y)+\nv2 w : ($x|$y)+", "EvalBounded(k=2)", viaBounded(2),
			msgNet},
		{"G4", "ans(v1, v2)\nv1 v2 : a*($x{($y a*)|(b*$y)})$z\nw v1 : b*($y{c*|d*})\nw v2 : $z{$x|$y}|$z{a*}", "EvalVsf", viaVsf,
			workload.Random(5, 6*scale, 15*scale, "abcd")},
	}
	for _, it := range items {
		q, err := cxrpq.Parse(it.src)
		if err != nil {
			return fail(t, err)
		}
		start := time.Now()
		n, err := it.eval(q, it.db)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{it.name, q.Fragment(), it.algo, fmt.Sprint(n), ms(time.Since(start))})
	}
	return t
}

// E03Theorem1 runs the NFA-intersection reduction (Theorem 1/3) for growing
// numbers of machines and cross-checks against the product-automaton oracle.
func E03Theorem1(scale int) *Table {
	t := &Table{ID: "E3", Title: "Theorem 1/3: NFA-intersection via single-edge CXRPQ (reduction vs oracle)",
		Header: []string{"k machines", "|D|", "D |= α^k_ni", "oracle", "agree", "time"}}
	maxK := 2 + scale
	for k := 1; k <= maxK; k++ {
		inst := reductions.RandomNFAs(int64(10+k), k, 3)
		db, err := inst.ToGraphDB()
		if err != nil {
			return fail(t, err)
		}
		q, err := inst.ToCXRPQ(true)
		if err != nil {
			return fail(t, err)
		}
		start := time.Now()
		got, err := cxrpq.EvalVsfBool(q, db)
		if err != nil {
			return fail(t, err)
		}
		el := time.Since(start)
		want := inst.IntersectionNonEmpty()
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprint(db.Size()),
			fmt.Sprint(got), fmt.Sprint(want), fmt.Sprint(got == want), ms(el)})
	}
	return t
}

// E04Theorem3 runs the NL-hardness reachability reduction at growing sizes.
func E04Theorem3(scale int) *Table {
	t := &Table{ID: "E4", Title: "Theorem 3/7: reachability via fixed CRPQ ab*aa (data complexity, NL-hardness side)",
		Header: []string{"n nodes", "|D|", "D |= q", "oracle", "agree", "time"}}
	for i := 1; i <= 4; i++ {
		n := 10 * i * scale
		inst := reductions.RandomReachability(int64(i), n, 2*n)
		db, q, err := inst.ToCRPQ()
		if err != nil {
			return fail(t, err)
		}
		start := time.Now()
		got, err := cxrpq.EvalBool(q, db)
		if err != nil {
			return fail(t, err)
		}
		el := time.Since(start)
		want := inst.Reachable()
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(db.Size()),
			fmt.Sprint(got), fmt.Sprint(want), fmt.Sprint(got == want), ms(el)})
	}
	return t
}

// E05NormalForm reproduces the §5.3 blow-up: exponential normal-form growth
// for the chain x1{a}x2{x1x1}… versus quadratic growth for flat tuples
// (Lemma 8).
func E05NormalForm(scale int) *Table {
	t := &Table{ID: "E5", Title: "Lemmas 4-6/8 & §5.3: normal-form size, chain (exponential) vs flat (quadratic)",
		Header: []string{"n vars", "|chain|", "|NF(chain)|", "|flat|", "|NF(flat)|"}}
	maxN := 5 + scale
	for n := 2; n <= maxN; n++ {
		chainSrc := "$x1{a}"
		for i := 2; i <= n; i++ {
			chainSrc += fmt.Sprintf("$x%d{$x%d$x%d}", i, i-1, i-1)
		}
		chain := cxrpq.CXRE{xregex.MustParse(chainSrc)}
		_, cs, err := cxrpq.NormalForm(chain)
		if err != nil {
			return fail(t, err)
		}
		// flat but non-basic: each x_i's definition contains a reference of
		// the basic-definition variable y, and no x_i is referenced inside
		// another definition — Step 3 fires but stays quadratic (Lemma 8).
		flatSrc := "$y{a|b}"
		for i := 1; i <= n; i++ {
			flatSrc += fmt.Sprintf("$x%d{a*($y)b*}", i)
		}
		for i := 1; i <= n; i++ {
			flatSrc += fmt.Sprintf("$x%d", i)
		}
		flat := cxrpq.CXRE{xregex.MustParse(flatSrc)}
		if !flat.FlatVars() {
			return fail(t, fmt.Errorf("E5 flat family must be flat"))
		}
		_, fs, err := cxrpq.NormalForm(flat)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n),
			fmt.Sprint(cs.Input), fmt.Sprint(cs.AfterStep3),
			fmt.Sprint(fs.Input), fmt.Sprint(fs.AfterStep3)})
	}
	return t
}

// E06VsfEval measures CXRPQ^vsf evaluation against growing databases
// (Theorem 2: NL ⇒ polynomial data complexity for the deterministic
// simulation).
func E06VsfEval(scale int) *Table {
	t := &Table{ID: "E6", Title: "Theorem 2: CXRPQ^vsf evaluation, runtime vs |D| (fixed query)",
		Header: []string{"|D|", "answers", "time"}}
	q := cxrpq.MustParse(`
ans(v1, v2)
v1 v2 : $x{aa|b}
v2 v3 : c*
v3 v1 : $x|c
`)
	for i := 1; i <= 4; i++ {
		n := 6 * i * scale
		db := workload.Random(9, n, 3*n, "abc")
		start := time.Now()
		res, err := cxrpq.EvalVsf(q, db)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(db.Size()), fmt.Sprint(res.Len()), ms(time.Since(start))})
	}
	return t
}

// E07VsfFlat verifies the Lemma 8 polynomial normal form and measures
// CXRPQ^vsf,fl evaluation (Theorem 5).
func E07VsfFlat(scale int) *Table {
	t := &Table{ID: "E7", Title: "Theorem 5 / Lemma 8: CXRPQ^vsf,fl — polynomial normal form and evaluation",
		Header: []string{"n vars", "|q|", "|NF|", "NF/|q|^2", "eval time"}}
	db := workload.Random(11, 8*scale, 20*scale, "ab")
	maxN := 3 + scale
	for n := 2; n <= maxN; n++ {
		// flat tuple: n variables defined on edge 1, referenced on edge 2
		var defs, refs strings.Builder
		for i := 1; i <= n; i++ {
			fmt.Fprintf(&defs, "$v%d{a|b}", i)
			fmt.Fprintf(&refs, "$v%d", i)
		}
		q, err := cxrpq.Parse(fmt.Sprintf("ans(x, y)\nx m : %s\nm y : %s|a*", defs.String(), refs.String()))
		if err != nil {
			return fail(t, err)
		}
		if !q.IsVStarFreeFlat() {
			return fail(t, fmt.Errorf("E7 query not in CXRPQ^vsf,fl"))
		}
		nf, stats, err := cxrpq.NormalForm(q.CXRE())
		if err != nil {
			return fail(t, err)
		}
		_ = nf
		start := time.Now()
		if _, err := cxrpq.EvalVsf(q, db); err != nil {
			return fail(t, err)
		}
		ratio := float64(stats.AfterStep3) / float64(stats.Input*stats.Input)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(stats.Input),
			fmt.Sprint(stats.AfterStep3), fmt.Sprintf("%.3f", ratio), ms(time.Since(start))})
	}
	return t
}

// E08BoundedEval measures CXRPQ^≤k evaluation: runtime vs |D| for fixed k,
// and vs k for fixed D (Theorem 6: NL data complexity, NP combined).
func E08BoundedEval(scale int) *Table {
	t := &Table{ID: "E8", Title: "Theorem 6: CXRPQ^≤k evaluation, runtime vs |D| and vs k",
		Header: []string{"|D|", "k", "answers", "time"}}
	q := cxrpq.MustParse(`
ans(s, t)
s t : $x{(a|b)+}c
t s : $x+|b
`)
	for i := 1; i <= 3; i++ {
		n := 5 * i * scale
		db := workload.Random(13, n, 3*n, "abc")
		start := time.Now()
		res, err := cxrpq.EvalBounded(q, db, 2)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(db.Size()), "2", fmt.Sprint(res.Len()), ms(time.Since(start))})
	}
	db := workload.Random(13, 5*scale, 15*scale, "abc")
	for k := 1; k <= 3; k++ {
		start := time.Now()
		res, err := cxrpq.EvalBounded(q, db, k)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(db.Size()), fmt.Sprint(k), fmt.Sprint(res.Len()), ms(time.Since(start))})
	}
	return t
}

// used by tests to keep imports tidy
var _ = oracle.EvalECRPQ
var _ = ecrpq.EqualityContains
var _ = separations.DBSummary
