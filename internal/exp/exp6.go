package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/workload"
)

// e23Exprs are the high-output reachability expressions of the streaming
// experiment: transitive-closure-style patterns on a gMark-style graph whose
// answer sets are quadratic-ish in the node count, so full materialization
// pays for every pair while the first row is one shallow BFS probe away.
var e23Exprs = []string{"a(a|b)*", "(a|b)+"}

// E23TimeToFirstRow measures the pull-based streaming layer (PR 7) against
// full materialization on a high-output workload: for each expression the
// answer relation is produced three ways on session-cold caches — the first
// row alone through Session.Stream (the any-k fast path: lazy chunked source
// sweeps compute only what the consumer pulls), the whole relation by
// draining the same kind of stream page by page, and the whole relation
// materialized by Session.Eval — asserting the drain and the materialized
// set have identical cardinality. The exported metrics are the aggregate
// time-to-first-row, full-materialization and drain times, the
// ttfr speedup (full/ttfr, the streaming win), and the drain overhead ratio
// (drain/full, the price of pull-based delivery on a full scan).
func E23TimeToFirstRow(scale int) *Table {
	t := &Table{ID: "E23", Title: "Streaming any-k: time-to-first-row vs full materialization (gMark-style)",
		Header: []string{"expr", "rows", "ttfr", "drain", "full eval", "speedup"}}
	db := workload.GMark(7, 1200*scale)
	db.Index() // the label index is shared state: warm it outside every timing

	var totalTTFR, totalDrain, totalFull time.Duration
	for _, src := range e23Exprs {
		qsrc := fmt.Sprintf("ans(x, y)\nx y : %s", src)
		plan, err := cxrpq.PrepareSrc(qsrc)
		if err != nil {
			return fail(t, err)
		}

		// First row, session-cold: the lazy stream computes only the source
		// chunks the single pulled row needs.
		startTTFR := time.Now()
		cur, err := plan.Bind(db).Stream(cxrpq.StreamOptions{})
		if err != nil {
			return fail(t, err)
		}
		first := cur.Fetch(1)
		ttfr := time.Since(startTTFR)
		cur.Close()
		if len(first) == 0 {
			return fail(t, fmt.Errorf("%s: empty result, not a streaming workload", src))
		}

		// Full drain through the cursor, fresh session: page after page
		// until exhaustion — the throughput cost of pull-based delivery.
		startDrain := time.Now()
		cur, err = plan.Bind(db).Stream(cxrpq.StreamOptions{})
		if err != nil {
			return fail(t, err)
		}
		drained := 0
		for {
			page := cur.Fetch(4096)
			drained += len(page)
			if len(page) < 4096 {
				break
			}
		}
		drainD := time.Since(startDrain)
		if err := cur.Err(); err != nil {
			return fail(t, err)
		}
		cur.Close()

		// Full materialization, fresh session: the historical eval path.
		startFull := time.Now()
		full, err := plan.Bind(db).Eval()
		if err != nil {
			return fail(t, err)
		}
		fullD := time.Since(startFull)
		if drained != full.Len() {
			return fail(t, fmt.Errorf("%s: drained %d rows, materialized %d", src, drained, full.Len()))
		}

		totalTTFR += ttfr
		totalDrain += drainD
		totalFull += fullD
		t.Rows = append(t.Rows, []string{src, fmt.Sprint(full.Len()),
			ms(ttfr), ms(drainD), ms(fullD),
			fmt.Sprintf("%.0fx", float64(fullD.Nanoseconds())/float64(max64(ttfr.Nanoseconds(), 1)))})
	}
	t.Metrics = map[string]float64{
		"ttfr_ms":      float64(totalTTFR.Microseconds()) / 1000,
		"drain_ms":     float64(totalDrain.Microseconds()) / 1000,
		"full_ms":      float64(totalFull.Microseconds()) / 1000,
		"ttfr_speedup": float64(totalFull.Nanoseconds()) / float64(max64(totalTTFR.Nanoseconds(), 1)),
		"drain_ratio":  float64(totalDrain.Nanoseconds()) / float64(max64(totalFull.Nanoseconds(), 1)),
	}
	return t
}
