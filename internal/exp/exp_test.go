package exp

import (
	"strings"
	"testing"
)

// Every experiment must complete without error at scale 1 and produce rows.
func TestAllExperimentsScale1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, tbl := range All(1) {
		if tbl.Err != nil {
			t.Errorf("%s: %v", tbl.ID, tbl.Err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		out := tbl.Render()
		if !strings.Contains(out, tbl.ID) {
			t.Errorf("%s: render missing ID", tbl.ID)
		}
	}
}

// E3, E4, E9 are reduction-vs-oracle checks: every row must agree.
func TestReductionAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, tbl := range []*Table{E03Theorem1(1), E04Theorem3(1), E09HittingSet(1)} {
		if tbl.Err != nil {
			t.Fatalf("%s: %v", tbl.ID, tbl.Err)
		}
		for _, row := range tbl.Rows {
			if row[len(row)-2] != "true" {
				t.Errorf("%s: disagreement in row %v", tbl.ID, row)
			}
		}
	}
}

// E11 must report VERIFIED for every Figure 5 relationship.
func TestFigure5AllVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tbl := E11Figure5(1)
	if tbl.Err != nil {
		t.Fatal(tbl.Err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "VERIFIED" {
			t.Errorf("Figure 5 relationship not verified: %v", row)
		}
	}
}

// E13's match column must equal its expected column.
func TestE13Expectations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tbl := E13Fig7(1)
	if tbl.Err != nil {
		t.Fatal(tbl.Err)
	}
	for _, row := range tbl.Rows {
		if row[2] != row[3] {
			t.Errorf("E13 mismatch: %v", row)
		}
	}
}
