package exp

import (
	"fmt"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pathsem"
	"cxrpq/internal/pattern"
	"cxrpq/internal/reductions"
	"cxrpq/internal/separations"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// E09HittingSet runs the Theorem 7 reduction on Hitting Set instances and
// cross-checks against brute force.
func E09HittingSet(scale int) *Table {
	t := &Table{ID: "E9", Title: "Theorem 7 (Fig. 4): Hitting Set via single-edge CXRPQ^≤1 (reduction vs oracle)",
		Header: []string{"n", "m sets", "k", "reduction", "oracle", "agree", "time"}}
	cases := []*reductions.HittingSetInstance{
		{N: 2, Sets: [][]int{{0, 1}}, K: 1},
		{N: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1},
		{N: 3, Sets: [][]int{{0}, {2}}, K: 1},
		{N: 3, Sets: [][]int{{0}, {2}}, K: 2},
	}
	if scale > 1 {
		cases = append(cases, &reductions.HittingSetInstance{N: 4, Sets: [][]int{{0, 1}, {2, 3}, {1, 2}}, K: 2})
	}
	for _, h := range cases {
		start := time.Now()
		got, err := h.SolveViaReduction()
		if err != nil {
			return fail(t, err)
		}
		el := time.Since(start)
		want := h.HasHittingSet()
		t.Rows = append(t.Rows, []string{fmt.Sprint(h.N), fmt.Sprint(len(h.Sets)), fmt.Sprint(h.K),
			fmt.Sprint(got), fmt.Sprint(want), fmt.Sprint(got == want), ms(el)})
	}
	return t
}

// E10LogBounded measures CXRPQ^log evaluation (Corollary 1): the image
// bound grows with log |D|.
func E10LogBounded(scale int) *Table {
	t := &Table{ID: "E10", Title: "Corollary 1: CXRPQ^log evaluation (k = ceil(log2 |D|))",
		Header: []string{"|D|", "k=log|D|", "match", "time"}}
	q := cxrpq.MustParse("ans()\nx y : #$v{a+}b$v#")
	for i := 1; i <= 3; i++ {
		n := 2 * i * scale
		db := workload.Path(fmt.Sprintf("#%sb%s#", repeat("a", n), repeat("a", n)), 1)
		start := time.Now()
		ok, err := cxrpq.EvalLogBool(q, db)
		if err != nil {
			return fail(t, err)
		}
		el := time.Since(start)
		sz := db.Size()
		t.Rows = append(t.Rows, []string{fmt.Sprint(sz), fmt.Sprint(logOf(sz)),
			fmt.Sprint(ok), ms(el)})
	}
	return t
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

func logOf(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}

// E11Figure5 mechanically verifies the Figure 5 diagram: each inclusion by
// translating sample queries and comparing results on random databases,
// each separation by running the separating query on its witness family.
func E11Figure5(scale int) *Table {
	t := &Table{ID: "E11", Title: "Figure 5: inclusion diagram, mechanically verified",
		Header: []string{"relationship", "status", "evidence"}}
	dbs := []*graph.DB{
		workload.Random(21, 5*scale, 12*scale, "ab"),
		workload.Random(22, 6*scale, 10*scale, "ab"),
	}

	// 1. ECRPQ^er ⊆ CXRPQ^vsf,fl (Lemma 12)
	eq := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans(x1, y1, x2, y2)\nx1 y1 : (ab)+\nx2 y2 : a(ba)*b"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}},
	}
	q12, err := cxrpq.FromECRPQer(eq, []rune("ab"))
	if err != nil {
		return fail(t, err)
	}
	ok := true
	for _, db := range dbs {
		a, err := ecrpq.Eval(eq, db)
		if err != nil {
			return fail(t, err)
		}
		b, err := cxrpq.Eval(q12, db)
		if err != nil {
			return fail(t, err)
		}
		if !a.Equal(b) {
			ok = false
		}
	}
	t.Rows = append(t.Rows, []string{"ECRPQ^er ⊆ CXRPQ^vsf,fl (Lemma 12)", status(ok),
		"translated sample query agrees on random DBs"})

	// 2. CXRPQ^vsf ⊆ ∪-ECRPQ^er (Lemma 13)
	qvsf := cxrpq.MustParse("ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|b)($x|a)?")
	u13, err := cxrpq.VsfToUnionECRPQer(qvsf)
	if err != nil {
		return fail(t, err)
	}
	ok = true
	for _, db := range dbs {
		a, err := cxrpq.EvalVsf(qvsf, db)
		if err != nil {
			return fail(t, err)
		}
		b, err := ecrpq.EvalUnion(u13, db)
		if err != nil {
			return fail(t, err)
		}
		if !a.Equal(b) {
			ok = false
		}
	}
	t.Rows = append(t.Rows, []string{"CXRPQ^vsf ⊆ ∪-ECRPQ^er (Lemma 13)", status(ok),
		fmt.Sprintf("%d union members agree on random DBs", len(u13.Members))})

	// 3. CXRPQ^≤k ⊆ ∪-CRPQ (Lemma 14)
	q14 := cxrpq.MustParse("ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|b)+")
	u14, err := cxrpq.BoundedToUnionCRPQ(q14, 1, []rune("ab"))
	if err != nil {
		return fail(t, err)
	}
	ok = true
	for _, db := range dbs {
		a, err := cxrpq.EvalBounded(q14, db, 1)
		if err != nil {
			return fail(t, err)
		}
		b, err := u14.Eval(db)
		if err != nil {
			return fail(t, err)
		}
		if !a.Equal(b) {
			ok = false
		}
	}
	t.Rows = append(t.Rows, []string{"CXRPQ^≤k ⊆ ∪-CRPQ (Lemma 14)", status(ok),
		fmt.Sprintf("%d union members agree on random DBs", len(u14.Members))})

	// 4. Separation CRPQ ⊊ CXRPQ^≤1 (Lemma 15): q1 distinguishes D_{a,a}
	// from D_{a,b} while its CRPQ relaxation cannot.
	q1 := separations.Q1()
	okAA, err := cxrpq.EvalBoundedBool(q1, separations.DSigma('a', 'a'), 1)
	if err != nil {
		return fail(t, err)
	}
	okAB, err := cxrpq.EvalBoundedBool(q1, separations.DSigma('a', 'b'), 1)
	if err != nil {
		return fail(t, err)
	}
	sur := separations.CRPQSurrogateForQ1()
	surAB, err := cxrpq.EvalBool(sur, separations.DSigma('a', 'b'))
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"CRPQ ⊊ CXRPQ^≤1 (Lemma 15)", status(okAA && !okAB && surAB),
		"q1 separates D_{a,a} from D_{a,b}; CRPQ relaxation conflates them"})

	// 5. Separation ECRPQ^er ⊊ CXRPQ (Lemma 16): q2 on its witness family.
	q2 := separations.Q2()
	okW, err := cxrpq.EvalBoundedBool(q2, separations.Q2Witness(1, 2), 6)
	if err != nil {
		return fail(t, err)
	}
	okB, err := cxrpq.EvalBoundedBool(q2, separations.Q2WitnessBroken(1, 2), 8)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"ECRPQ^er ⊊ CXRPQ (Lemma 16)", status(okW && !okB),
		"q2 accepts #(a b)^2 c (a b)^2 # and rejects the pumped variant"})

	// 6. Separation CRPQ ⊊ ECRPQ^er ⊊ ECRPQ (Theorem 9): q_anan / q_anbn.
	anan := separations.QAnAn()
	a1, err := ecrpq.EvalBool(anan, separations.DnMPaths(2, 2, 'a'))
	if err != nil {
		return fail(t, err)
	}
	a2, err := ecrpq.EvalBool(anan, separations.DnMPaths(2, 3, 'a'))
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"CRPQ ⊊ ECRPQ^er (Theorem 9)", status(a1 && !a2),
		"q_anan separates D_{2,2} from D_{2,3}"})
	anbn := separations.QAnBn()
	b1, err := ecrpq.EvalBool(anbn, separations.DnMPaths(3, 3, 'b'))
	if err != nil {
		return fail(t, err)
	}
	b2, err := ecrpq.EvalBool(anbn, separations.DnMPaths(3, 4, 'b'))
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"ECRPQ^er ⊊ ECRPQ (Theorem 9)", status(b1 && !b2),
		"q_anbn (equal-length) separates D_{3,3} from D_{3,4}"})
	return t
}

func status(ok bool) string {
	if ok {
		return "VERIFIED"
	}
	return "FAILED"
}

// E12Separations tabulates q_anbn and q_anan over the D_{n,m} family
// (Theorem 9 / Figure 6).
func E12Separations(scale int) *Table {
	t := &Table{ID: "E12", Title: "Theorem 9 (Fig. 6): q_anbn and q_anan over the D_{n,m} path family",
		Header: []string{"n", "m", "q_anbn(D c·aⁿ·c / d·bᵐ·d)", "q_anan(D c·aⁿ·c / d·aᵐ·d)"}}
	maxN := 2 + scale
	anbn := separations.QAnBn()
	anan := separations.QAnAn()
	for n := 1; n <= maxN; n++ {
		for m := n; m <= n+1; m++ {
			r1, err := ecrpq.EvalBool(anbn, separations.DnMPaths(n, m, 'b'))
			if err != nil {
				return fail(t, err)
			}
			r2, err := ecrpq.EvalBool(anan, separations.DnMPaths(n, m, 'a'))
			if err != nil {
				return fail(t, err)
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(m), fmt.Sprint(r1), fmt.Sprint(r2)})
		}
	}
	return t
}

// E13Fig7 tabulates q1 over the D_{σ1,σ2} family and q2 over its witness
// family (Lemmas 15/16, Figure 7).
func E13Fig7(scale int) *Table {
	t := &Table{ID: "E13", Title: "Lemmas 15/16 (Fig. 7): q1 on D_{σ1,σ2}; q2 on #(a^n1 b)^n2 c(a^n1 b)^n2 #",
		Header: []string{"instance", "query", "match", "expected"}}
	q1 := separations.Q1()
	for _, tc := range []struct {
		s1, s2 rune
		want   bool
	}{{'a', 'a', true}, {'b', 'b', true}, {'a', 'c', true}, {'a', 'b', false}, {'b', 'a', false}} {
		got, err := cxrpq.EvalBoundedBool(q1, separations.DSigma(tc.s1, tc.s2), 1)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("D_{%c,%c}", tc.s1, tc.s2), "q1",
			fmt.Sprint(got), fmt.Sprint(tc.want)})
	}
	q2 := separations.Q2()
	for _, tc := range []struct {
		n1, n2 int
		broken bool
		want   bool
	}{{1, 1, false, true}, {1, 2, false, true}, {2, 1 + scale/2, false, true}, {1, 2, true, false}} {
		var db *graph.DB
		name := fmt.Sprintf("witness(%d,%d)", tc.n1, tc.n2)
		if tc.broken {
			db = separations.Q2WitnessBroken(tc.n1, tc.n2)
			name = fmt.Sprintf("broken(%d,%d)", tc.n1, tc.n2)
		} else {
			db = separations.Q2Witness(tc.n1, tc.n2)
		}
		got, err := cxrpq.EvalBoundedBool(q2, db, tc.n1+tc.n2+4)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{name, "q2", fmt.Sprint(got), fmt.Sprint(tc.want)})
	}
	return t
}

// E14Lemma12 measures the Lemma 12 translation sizes (regex intersection via
// state elimination can blow up).
func E14Lemma12(scale int) *Table {
	t := &Table{ID: "E14", Title: "Lemma 12: ECRPQ^er → CXRPQ^vsf,fl translation size",
		Header: []string{"class arity", "|ECRPQ^er|", "|CXRPQ|", "time"}}
	exprs := []string{"(ab)+", "a(ba)*b", "(a|b)(a|b)((a|b)(a|b))*"}
	for s := 2; s <= 2+scale/2+1; s++ {
		var edges string
		for i := 0; i < s; i++ {
			edges += fmt.Sprintf("x%d y%d : %s\n", i, i, exprs[i%len(exprs)])
		}
		idx := make([]int, s)
		for i := range idx {
			idx[i] = i
		}
		eq := &ecrpq.Query{
			Pattern: pattern.MustParseQuery("ans()\n" + edges),
			Groups:  []ecrpq.Group{{Edges: idx, Rel: &ecrpq.Equality{N: s}}},
		}
		start := time.Now()
		q, err := cxrpq.FromECRPQer(eq, []rune("ab"))
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(s), fmt.Sprint(eq.Size()), fmt.Sprint(q.Size()), ms(time.Since(start))})
	}
	return t
}

// E15Lemma13 measures the Lemma 13 blow-up: number and size of union
// members as alternation branches grow.
func E15Lemma13(scale int) *Table {
	t := &Table{ID: "E15", Title: "Lemma 13: CXRPQ^vsf → ∪-ECRPQ^er blow-up (branch combinations)",
		Header: []string{"alternations", "|q|", "members", "|∪-ECRPQ^er|"}}
	maxA := 2 + scale
	for a := 1; a <= maxA; a++ {
		src := "ans()\nu v : $x{a|b}\n"
		for i := 0; i < a; i++ {
			src += fmt.Sprintf("v w%d : ($x|c)(a|$x)\n", i)
		}
		q, err := cxrpq.Parse(src)
		if err != nil {
			return fail(t, err)
		}
		u, err := cxrpq.VsfToUnionECRPQer(q)
		if err != nil {
			return fail(t, err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(a), fmt.Sprint(q.Size()),
			fmt.Sprint(len(u.Members)), fmt.Sprint(u.Size())})
	}
	return t
}

// E16Lemma14 measures the Lemma 14 blow-up: (|Σ|+1)^{nk} union members.
func E16Lemma14(scale int) *Table {
	t := &Table{ID: "E16", Title: "Lemma 14 / §8: CXRPQ^≤k → ∪-CRPQ blow-up ((|Σ|+1)^{nk} members before pruning)",
		Header: []string{"n vars", "k", "|Σ|", "members", "|∪-CRPQ|"}}
	for n := 1; n <= 2; n++ {
		for k := 1; k <= 1+scale/2+1; k++ {
			var defs, refs string
			for i := 1; i <= n; i++ {
				defs += fmt.Sprintf("$w%d{(a|b)+}", i)
				refs += fmt.Sprintf("$w%d", i)
			}
			q, err := cxrpq.Parse(fmt.Sprintf("ans()\nu v : %sc\nv u : %s|b", defs, refs))
			if err != nil {
				return fail(t, err)
			}
			u, err := cxrpq.BoundedToUnionCRPQ(q, k, []rune("ab"))
			if err != nil {
				return fail(t, err)
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(k), "2",
				fmt.Sprint(len(u.Members)), fmt.Sprint(u.Size())})
		}
	}
	return t
}

// E17Ablations measures the design choices called out in DESIGN.md:
// (a) the Theorem 6 candidate pruning vs the literal blind guess over
// (Σ^≤k)^n, and (b) the specialized lock-step equality product vs the
// generic ⊥-padded relation engine driven by an explicit equality NFA.
func E17Ablations(scale int) *Table {
	t := &Table{ID: "E17", Title: "Ablations: bounded-eval pruning; specialized vs generic equality product",
		Header: []string{"ablation", "variant", "answers", "time"}}
	db := workload.Random(13, 5*scale, 15*scale, "abc")
	q := cxrpq.MustParse("ans(s, t)\ns t : $x{(a|b)+}c\nt s : $x+|b")
	start := time.Now()
	r1, err := cxrpq.EvalBounded(q, db, 2)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"Theorem 6 guess", "pruned (path labels + def bodies)", fmt.Sprint(r1.Len()), ms(time.Since(start))})
	start = time.Now()
	r2, err := cxrpq.EvalBoundedNaive(q, db, 2)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"Theorem 6 guess", "naive (all of (Σ^≤k)^n)", fmt.Sprint(r2.Len()), ms(time.Since(start))})
	if !r1.Equal(r2) {
		return fail(t, fmt.Errorf("pruning changed the result"))
	}

	db2 := workload.Random(17, 8*scale, 20*scale, "ab")
	pat := "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+"
	qe1 := &ecrpq.Query{Pattern: pattern.MustParseQuery(pat),
		Groups: []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}}}
	start = time.Now()
	s1, err := ecrpq.Eval(qe1, db2)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"equality product", "specialized lock-step", fmt.Sprint(s1.Len()), ms(time.Since(start))})
	qe2 := &ecrpq.Query{Pattern: pattern.MustParseQuery(pat),
		Groups: []ecrpq.Group{{Edges: []int{0, 1}, Rel: ecrpq.EqualityNFA(2, []rune("ab"))}}}
	start = time.Now()
	s2, err := ecrpq.Eval(qe2, db2)
	if err != nil {
		return fail(t, err)
	}
	t.Rows = append(t.Rows, []string{"equality product", "generic ⊥-padded NFA relation", fmt.Sprint(s2.Len()), ms(time.Since(start))})
	if !s1.Equal(s2) {
		return fail(t, fmt.Errorf("equality variants disagree"))
	}
	return t
}

// E18PathSemantics demonstrates the §1 discussion on path semantics (refs
// [34–36]): the same RPQ returns different answers under arbitrary, simple
// and trail semantics once cycles are involved.
func E18PathSemantics(scale int) *Table {
	t := &Table{ID: "E18", Title: "§1 path semantics: RPQ answers under arbitrary / simple / trail",
		Header: []string{"graph", "query", "arbitrary", "simple", "trail"}}
	type inst struct {
		name string
		db   *graph.DB
		rx   string
	}
	cycle := workload.Cycle("a", 3)
	eight := graph.MustParse("m a p\np a m\nm a q\nq a m")
	dag := workload.Layered(5, 3*scale, 3, "ab")
	items := []inst{
		{"3-cycle", cycle, "aaaa"},
		{"figure-eight", eight, "aaaa"},
		{"layered DAG", dag, "(a|b)(a|b)"},
	}
	for _, it := range items {
		rx := xregex.MustParse(it.rx)
		var counts [3]int
		for i, sem := range []pathsem.Semantics{pathsem.Arbitrary, pathsem.Simple, pathsem.Trail} {
			res, err := pathsem.EvalRPQ(it.db, rx, sem)
			if err != nil {
				return fail(t, err)
			}
			counts[i] = res.Len()
		}
		t.Rows = append(t.Rows, []string{it.name, it.rx,
			fmt.Sprint(counts[0]), fmt.Sprint(counts[1]), fmt.Sprint(counts[2])})
	}
	return t
}

// Registry lists every experiment in index order; All, AllTimed and the
// benchmark JSON emitter all run from it.
var Registry = []func(int) *Table{
	E01Figure1, E02Figure2, E03Theorem1, E04Theorem3,
	E05NormalForm, E06VsfEval, E07VsfFlat, E08BoundedEval,
	E09HittingSet, E10LogBounded, E11Figure5, E12Separations,
	E13Fig7, E14Lemma12, E15Lemma13, E16Lemma14,
	E17Ablations, E18PathSemantics, E19PreparedReuse, E20PlannerJoin,
	E21IncrementalUpdate, E22ShardedReach, E23TimeToFirstRow,
	E24SnapshotReadsUnderWrites, E25PlannerV2, E26RankedTTFR,
}

// All runs every experiment at the given scale.
func All(scale int) []*Table {
	out := make([]*Table, len(Registry))
	for i, f := range Registry {
		out[i] = f(scale)
	}
	return out
}
