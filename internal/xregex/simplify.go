package xregex

// Simplify rewrites n using the language-preserving ∅/ε algebra:
//
//	∅·r = r·∅ = ∅      ε·r = r·ε = r        (r∨∅) = r
//	(∅)+ = ∅           (∅)* = (∅)? = ε      (ε)+ = (ε)* = ε
//	x{∅} = ∅           Cat() = ε            Alt() = ∅
//	[]   = ∅ (positive empty class)
//
// together with flattening of nested Cat/Alt. ∅-propagation through Cat and
// Def nodes is exactly the "delete every node up to the nearest alternation,
// then replace the alternation by its other child" surgery in the proof of
// Lemma 10; Simplify is therefore used after every cutting step of the
// bounded-image instantiation.
func Simplify(n Node) Node {
	switch t := n.(type) {
	case *Empty, *Eps, *Sym, *Ref:
		return n
	case *Class:
		if !t.Neg && len(t.Set) == 0 {
			return &Empty{}
		}
		return n
	case *Def:
		body := Simplify(t.Body)
		if isEmpty(body) {
			return &Empty{}
		}
		return &Def{Var: t.Var, Body: body}
	case *Cat:
		var kids []Node
		for _, k := range t.Kids {
			s := Simplify(k)
			switch st := s.(type) {
			case *Empty:
				return &Empty{}
			case *Eps:
				// drop
			case *Cat:
				kids = append(kids, st.Kids...)
			default:
				kids = append(kids, s)
			}
		}
		switch len(kids) {
		case 0:
			return &Eps{}
		case 1:
			return kids[0]
		}
		return &Cat{Kids: kids}
	case *Alt:
		var kids []Node
		for _, k := range t.Kids {
			s := Simplify(k)
			switch st := s.(type) {
			case *Empty:
				// drop
			case *Alt:
				kids = append(kids, st.Kids...)
			default:
				kids = append(kids, s)
			}
		}
		switch len(kids) {
		case 0:
			return &Empty{}
		case 1:
			return kids[0]
		}
		return &Alt{Kids: kids}
	case *Plus:
		kid := Simplify(t.Kid)
		switch kid.(type) {
		case *Empty:
			return &Empty{}
		case *Eps:
			return &Eps{}
		}
		return &Plus{Kid: kid}
	case *Star:
		kid := Simplify(t.Kid)
		switch kid.(type) {
		case *Empty, *Eps:
			return &Eps{}
		}
		return &Star{Kid: kid}
	case *Opt:
		kid := Simplify(t.Kid)
		switch kid.(type) {
		case *Empty, *Eps:
			return &Eps{}
		}
		return &Opt{Kid: kid}
	}
	panic("xregex: unknown node type")
}

func isEmpty(n Node) bool {
	_, ok := n.(*Empty)
	return ok
}

func isEps(n Node) bool {
	_, ok := n.(*Eps)
	return ok
}
