package xregex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxrpq/internal/automata"
)

// quickCfg returns a deterministic quick.Config: testing/quick's default
// RNG is time-seeded, which made rare pathological random expressions (whose
// determinization explodes) appear only on some runs. A fixed seed plus the
// size guards below keep these property tests fast and reproducible.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(7))}
}

// smallEnoughForDFA guards the equivalence-based properties: subset
// construction is worst-case exponential, so skip random expressions whose
// Thompson NFA is large.
func smallEnoughForDFA(m *automata.NFA) bool { return m.NumStates() <= 36 }

// randVarXregex generates a random sequential, acyclic xregex over {a,b}
// with up to two variables, biased toward vstar-free shapes.
func randVarXregex(seed int64, depth int) Node {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	// Build x-definition body (classical), then assemble a concatenation
	// mixing definitions, references and classical parts — always
	// sequential by construction.
	var classical func(d int) Node
	classical = func(d int) Node {
		if d == 0 {
			if next(2) == 0 {
				return &Sym{R: 'a'}
			}
			return &Sym{R: 'b'}
		}
		switch next(5) {
		case 0:
			return &Cat{Kids: []Node{classical(d - 1), classical(d - 1)}}
		case 1:
			return &Alt{Kids: []Node{classical(d - 1), classical(d - 1)}}
		case 2:
			return &Star{Kid: classical(d - 1)}
		case 3:
			return &Opt{Kid: classical(d - 1)}
		default:
			return classical(0)
		}
	}
	kids := []Node{
		&Def{Var: "x", Body: classical(depth)},
		classical(depth - 1),
	}
	if next(2) == 0 {
		kids = append(kids, &Ref{Var: "x"})
	}
	if next(2) == 0 {
		kids = append(kids, &Def{Var: "y", Body: &Ref{Var: "x"}}, &Ref{Var: "y"})
	} else {
		kids = append(kids, &Ref{Var: "x"})
	}
	return &Cat{Kids: kids}
}

// Property: every ref-word enumerated from L_ref(α) derefs to a word of
// L(α) (consistency between the ref-word semantics and the matcher).
func TestQuickRefWordsDerefMatch(t *testing.T) {
	sigma := []rune("ab")
	f := func(seed int64) bool {
		n := randVarXregex(seed, 2)
		if !IsSequential(n) || !IsAcyclic(n) {
			return true // generator should prevent this
		}
		for _, rw := range EnumerateRefWords(n, sigma, 7, 5) {
			w, _, err := Deref(rw)
			if err != nil {
				return false
			}
			if !MatchBool(n, w, sigma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// Property: FromNFA(Compile(r)) preserves the language *exactly* (decided
// via determinization and complement, not sampling).
func TestQuickFromNFAPreservesLanguage(t *testing.T) {
	sigma := []rune("ab")
	f := func(seed int64) bool {
		n := randClassical(seed, 4)
		m, err := Compile(n, sigma)
		if err != nil {
			return false
		}
		if !smallEnoughForDFA(m) {
			return true
		}
		back := FromNFA(m)
		m2, err := Compile(back, sigma)
		if err != nil {
			return false
		}
		if !smallEnoughForDFA(m2) {
			return true
		}
		return automata.Equivalent(m, m2)
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectionRegex is exactly the intersection language.
func TestQuickIntersectionRegexExact(t *testing.T) {
	sigma := []rune("ab")
	f := func(s1, s2 int64) bool {
		a := randClassical(s1, 3)
		b := randClassical(s2, 3)
		ma, err1 := Compile(a, sigma)
		mb, err2 := Compile(b, sigma)
		if err1 != nil || err2 != nil {
			return false
		}
		if !smallEnoughForDFA(ma) || !smallEnoughForDFA(mb) {
			return true
		}
		inter, err := IntersectionRegex(sigma, a, b)
		if err != nil {
			return false
		}
		mi, err3 := Compile(inter, sigma)
		if err3 != nil {
			return false
		}
		if !smallEnoughForDFA(mi) {
			return true
		}
		return automata.Equivalent(automata.Intersect(ma, mb), mi)
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// Property: InstantiateComponent is sound — every word of the instantiated
// expression matches the original xregex.
func TestQuickInstantiateSound(t *testing.T) {
	sigma := []rune("ab")
	images := []string{"", "a", "b", "ab", "aa"}
	f := func(seed int64, xi, yi uint8) bool {
		n := randVarXregex(seed, 2)
		v := map[string]string{
			"x": images[int(xi)%len(images)],
			"y": images[int(yi)%len(images)],
		}
		// y is an alias of x when present (y{x}): only consistent mappings
		// are sound inputs, so force v[y] ∈ {v[x], ""}.
		if ContainsDef(n, "y") && v["y"] != "" {
			v["y"] = v["x"]
		}
		inst, err := InstantiateComponent(n, v, sigma)
		if err != nil {
			return false
		}
		m, err := Compile(inst, MergeAlphabets(sigma, []rune(v["x"]+v["y"])))
		if err != nil {
			return false
		}
		for _, w := range m.EnumerateWords(6, 4) {
			if !MatchBool(n, decode(w), sigma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// Property: the ref-word automaton accepts exactly strings that validate
// as ref-words (spot check: enumerated ref-words always validate).
func TestQuickEnumeratedRefWordsValid(t *testing.T) {
	sigma := []rune("ab")
	f := func(seed int64) bool {
		n := randVarXregex(seed, 1)
		for _, rw := range EnumerateRefWords(n, sigma, 6, 8) {
			if err := ValidateRefWord(rw); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(80)); err != nil {
		t.Fatal(err)
	}
}

func allWords(sigma []rune, maxLen int) []string {
	words := []string{""}
	level := []string{""}
	for i := 0; i < maxLen; i++ {
		var next []string
		for _, w := range level {
			for _, r := range sigma {
				next = append(next, w+string(r))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}

func decode(w []int32) string {
	rs := make([]rune, len(w))
	for i, c := range w {
		if c == automata.Epsilon {
			continue
		}
		rs[i] = rune(c)
	}
	return string(rs)
}
