package xregex

import "fmt"

// ReplaceRefs returns n with every reference of x replaced by a deep copy of
// repl. Definitions of x are left untouched.
func ReplaceRefs(n Node, x string, repl Node) Node {
	switch t := n.(type) {
	case *Ref:
		if t.Var == x {
			return Clone(repl)
		}
		return n
	case *Def:
		return &Def{Var: t.Var, Body: ReplaceRefs(t.Body, x, repl)}
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = ReplaceRefs(k, x, repl)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = ReplaceRefs(k, x, repl)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: ReplaceRefs(t.Kid, x, repl)}
	case *Star:
		return &Star{Kid: ReplaceRefs(t.Kid, x, repl)}
	case *Opt:
		return &Opt{Kid: ReplaceRefs(t.Kid, x, repl)}
	default:
		return n
	}
}

// ReplaceDefs returns n with every definition of x replaced by repl(body).
func ReplaceDefs(n Node, x string, repl func(body Node) Node) Node {
	switch t := n.(type) {
	case *Def:
		if t.Var == x {
			return repl(t.Body)
		}
		return &Def{Var: t.Var, Body: ReplaceDefs(t.Body, x, repl)}
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = ReplaceDefs(k, x, repl)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = ReplaceDefs(k, x, repl)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: ReplaceDefs(t.Kid, x, repl)}
	case *Star:
		return &Star{Kid: ReplaceDefs(t.Kid, x, repl)}
	case *Opt:
		return &Opt{Kid: ReplaceDefs(t.Kid, x, repl)}
	default:
		return n
	}
}

// RenameVar renames variable old to nu in definitions and references.
func RenameVar(n Node, old, nu string) Node {
	switch t := n.(type) {
	case *Ref:
		if t.Var == old {
			return &Ref{Var: nu}
		}
		return n
	case *Def:
		v := t.Var
		if v == old {
			v = nu
		}
		return &Def{Var: v, Body: RenameVar(t.Body, old, nu)}
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = RenameVar(k, old, nu)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = RenameVar(k, old, nu)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: RenameVar(t.Kid, old, nu)}
	case *Star:
		return &Star{Kid: RenameVar(t.Kid, old, nu)}
	case *Opt:
		return &Opt{Kid: RenameVar(t.Kid, old, nu)}
	default:
		return n
	}
}

// ExpandVariableSimple implements Step 1 of the normal-form construction
// (Lemma 4): it "multiplies out" every alternation that contains a variable
// definition or reference, turning a vstar-free xregex into a list of
// variable-simple xregex whose union of ref-languages equals L_ref(n). The
// result can be exponentially larger than n. It returns an error if n is not
// vstar-free.
func ExpandVariableSimple(n Node) ([]Node, error) {
	if !HasVars(n) {
		return []Node{n}, nil
	}
	switch t := n.(type) {
	case *Ref:
		return []Node{n}, nil
	case *Def:
		bodies, err := ExpandVariableSimple(t.Body)
		if err != nil {
			return nil, err
		}
		out := make([]Node, len(bodies))
		for i, b := range bodies {
			out[i] = &Def{Var: t.Var, Body: b}
		}
		return out, nil
	case *Cat:
		acc := []Node{&Eps{}}
		for _, k := range t.Kids {
			parts, err := ExpandVariableSimple(k)
			if err != nil {
				return nil, err
			}
			var next []Node
			for _, a := range acc {
				for _, p := range parts {
					next = append(next, Simplify(&Cat{Kids: []Node{a, p}}))
				}
			}
			acc = next
		}
		return acc, nil
	case *Alt:
		var out []Node
		for _, k := range t.Kids {
			parts, err := ExpandVariableSimple(k)
			if err != nil {
				return nil, err
			}
			out = append(out, parts...)
		}
		return out, nil
	case *Opt:
		parts, err := ExpandVariableSimple(t.Kid)
		if err != nil {
			return nil, err
		}
		return append(parts, &Eps{}), nil
	case *Plus, *Star:
		return nil, fmt.Errorf("xregex: variable under +/* — expression is not vstar-free: %s", String(n))
	}
	panic("xregex: unknown node type")
}

// FactorKind classifies one factor of a variable-simple xregex.
type FactorKind int

const (
	// FClassical is a maximal run of variable-free subexpressions, merged
	// into one classical expression.
	FClassical FactorKind = iota
	// FRef is a single variable reference.
	FRef
	// FDef is a variable definition.
	FDef
)

// Factor is one factor of the factorization α = β1 β2 … βk of a
// variable-simple xregex, where each βi is a classical regular expression, a
// variable reference, or a variable definition (§5).
type Factor struct {
	Kind FactorKind
	Expr Node   // FClassical: the expression; FDef: the definition body
	Var  string // FRef / FDef
}

// Node converts a factor back into an AST node.
func (f Factor) Node() Node {
	switch f.Kind {
	case FClassical:
		return f.Expr
	case FRef:
		return &Ref{Var: f.Var}
	default:
		return &Def{Var: f.Var, Body: f.Expr}
	}
}

// Factorize splits a variable-simple xregex into factors, merging adjacent
// classical pieces. It returns an error if n is not variable-simple.
func Factorize(n Node) ([]Factor, error) {
	if !IsVariableSimple(n) {
		return nil, fmt.Errorf("xregex: not variable-simple: %s", String(n))
	}
	var raw []Factor
	var walk func(Node) error
	walk = func(n Node) error {
		switch t := n.(type) {
		case *Cat:
			for _, k := range t.Kids {
				if err := walk(k); err != nil {
					return err
				}
			}
			return nil
		case *Ref:
			raw = append(raw, Factor{Kind: FRef, Var: t.Var})
			return nil
		case *Def:
			raw = append(raw, Factor{Kind: FDef, Var: t.Var, Expr: t.Body})
			return nil
		default:
			if HasVars(n) {
				// variable-simple guarantees Alt/Plus/Star/Opt subtrees with
				// variables cannot occur here
				return fmt.Errorf("xregex: unexpected variable under %T", n)
			}
			raw = append(raw, Factor{Kind: FClassical, Expr: n})
			return nil
		}
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	// merge adjacent classical factors
	var out []Factor
	for _, f := range raw {
		if f.Kind == FClassical && len(out) > 0 && out[len(out)-1].Kind == FClassical {
			prev := out[len(out)-1]
			out[len(out)-1] = Factor{
				Kind: FClassical,
				Expr: Simplify(&Cat{Kids: []Node{prev.Expr, f.Expr}}),
			}
			continue
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		out = append(out, Factor{Kind: FClassical, Expr: &Eps{}})
	}
	return out, nil
}

// FactorsNode rebuilds a concatenation node from factors.
func FactorsNode(fs []Factor) Node {
	kids := make([]Node, len(fs))
	for i, f := range fs {
		kids[i] = f.Node()
	}
	return Simplify(&Cat{Kids: kids})
}
