// Package xregex implements regular expressions with backreferences (xregex,
// Definition 3 of Schmid, PODS 2020) over a finite terminal alphabet Σ and a
// set of string variables, together with the classical regular expressions
// REΣ as the variable-free subset.
//
// On top of the AST the package provides: a parser and printer, the
// ref-word semantics of §2.1 (Definitions 1 and 2), the syntactic fragment
// classifiers of §5 (vstar-free, valt-free, variable-simple, simple, normal
// form, basic definitions), Thompson compilation of classical expressions to
// NFAs, conversion of NFAs back to classical expressions by state
// elimination (needed for Lemma 12), word matching with witness variable
// mappings, and the syntax-tree transformations used by the normal-form
// construction (Lemmas 4–6) and the bounded-image instantiation (Lemma 10).
package xregex

import "sort"

// Node is an xregex syntax tree. All implementations are pointer types;
// trees are treated as immutable values — transformations build new trees.
type Node interface{ node() }

// Empty is ∅, the expression with L(∅) = ∅.
type Empty struct{}

// Eps is ε, the empty word.
type Eps struct{}

// Sym is a single terminal symbol a ∈ Σ.
type Sym struct{ R rune }

// Class is a character class: [abc] (Neg=false) matches any listed symbol;
// [^abc] (Neg=true) matches any symbol of Σ not listed. The wildcard "."
// is Class{Neg: true} with an empty set. Classes are syntactic sugar for
// alternations of symbols, resolved against a concrete Σ at compile time.
type Class struct {
	Neg bool
	Set []rune // sorted, unique
}

// Ref is a reference of string variable Var.
type Ref struct{ Var string }

// Def is a definition Var{Body} of string variable Var.
type Def struct {
	Var  string
	Body Node
}

// Cat is concatenation of the Kids in order.
type Cat struct{ Kids []Node }

// Alt is alternation (∨) of the Kids.
type Alt struct{ Kids []Node }

// Plus is (Kid)+, one or more repetitions.
type Plus struct{ Kid Node }

// Star is (Kid)*, shorthand for (Kid)+ ∨ ε as in the paper.
type Star struct{ Kid Node }

// Opt is (Kid)?, shorthand for Kid ∨ ε.
type Opt struct{ Kid Node }

func (*Empty) node() {}
func (*Eps) node()   {}
func (*Sym) node()   {}
func (*Class) node() {}
func (*Ref) node()   {}
func (*Def) node()   {}
func (*Cat) node()   {}
func (*Alt) node()   {}
func (*Plus) node()  {}
func (*Star) node()  {}
func (*Opt) node()   {}

// NewClass builds a Class with a sorted, deduplicated set.
func NewClass(neg bool, set []rune) *Class {
	s := append([]rune(nil), set...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, r := range s {
		if i == 0 || r != s[i-1] {
			out = append(out, r)
		}
	}
	return &Class{Neg: neg, Set: out}
}

// Word returns a Node matching exactly the word w (ε for the empty word).
func Word(w string) Node {
	rs := []rune(w)
	if len(rs) == 0 {
		return &Eps{}
	}
	if len(rs) == 1 {
		return &Sym{R: rs[0]}
	}
	kids := make([]Node, len(rs))
	for i, r := range rs {
		kids[i] = &Sym{R: r}
	}
	return &Cat{Kids: kids}
}

// AnyWord returns a Node for Σ* relative to a symbolic wildcard (".*"), i.e.
// Star of the negated-empty class. Σ is resolved at compile time.
func AnyWord() Node { return &Star{Kid: &Class{Neg: true}} }

// Vars returns the set of string variables occurring in n (references and
// definitions), i.e. var(n) from Definition 3.
func Vars(n Node) map[string]bool {
	out := map[string]bool{}
	addVars(n, out)
	return out
}

func addVars(n Node, out map[string]bool) {
	switch t := n.(type) {
	case *Ref:
		out[t.Var] = true
	case *Def:
		out[t.Var] = true
		addVars(t.Body, out)
	case *Cat:
		for _, k := range t.Kids {
			addVars(k, out)
		}
	case *Alt:
		for _, k := range t.Kids {
			addVars(k, out)
		}
	case *Plus:
		addVars(t.Kid, out)
	case *Star:
		addVars(t.Kid, out)
	case *Opt:
		addVars(t.Kid, out)
	}
}

// SortedVars returns var(n) as a sorted slice, for deterministic iteration.
func SortedVars(n Node) []string {
	m := Vars(n)
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HasVars reports whether n contains any variable reference or definition.
func HasVars(n Node) bool {
	switch t := n.(type) {
	case *Ref, *Def:
		return true
	case *Cat:
		for _, k := range t.Kids {
			if HasVars(k) {
				return true
			}
		}
	case *Alt:
		for _, k := range t.Kids {
			if HasVars(k) {
				return true
			}
		}
	case *Plus:
		return HasVars(t.Kid)
	case *Star:
		return HasVars(t.Kid)
	case *Opt:
		return HasVars(t.Kid)
	}
	return false
}

// ContainsDef reports whether n contains a definition of variable x.
func ContainsDef(n Node, x string) bool {
	switch t := n.(type) {
	case *Def:
		return t.Var == x || ContainsDef(t.Body, x)
	case *Cat:
		for _, k := range t.Kids {
			if ContainsDef(k, x) {
				return true
			}
		}
	case *Alt:
		for _, k := range t.Kids {
			if ContainsDef(k, x) {
				return true
			}
		}
	case *Plus:
		return ContainsDef(t.Kid, x)
	case *Star:
		return ContainsDef(t.Kid, x)
	case *Opt:
		return ContainsDef(t.Kid, x)
	}
	return false
}

// ContainsRef reports whether n contains a reference of variable x.
func ContainsRef(n Node, x string) bool {
	switch t := n.(type) {
	case *Ref:
		return t.Var == x
	case *Def:
		return ContainsRef(t.Body, x)
	case *Cat:
		for _, k := range t.Kids {
			if ContainsRef(k, x) {
				return true
			}
		}
	case *Alt:
		for _, k := range t.Kids {
			if ContainsRef(k, x) {
				return true
			}
		}
	case *Plus:
		return ContainsRef(t.Kid, x)
	case *Star:
		return ContainsRef(t.Kid, x)
	case *Opt:
		return ContainsRef(t.Kid, x)
	}
	return false
}

// DefinedVars returns the set of variables that have at least one definition
// in n.
func DefinedVars(n Node) map[string]bool {
	out := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Def:
			out[t.Var] = true
			walk(t.Body)
		case *Cat:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Alt:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Plus:
			walk(t.Kid)
		case *Star:
			walk(t.Kid)
		case *Opt:
			walk(t.Kid)
		}
	}
	walk(n)
	return out
}

// Size returns the number of AST nodes in n, the size measure |α| used in
// the paper's blow-up bounds.
func Size(n Node) int {
	switch t := n.(type) {
	case *Def:
		return 1 + Size(t.Body)
	case *Cat:
		s := 1
		for _, k := range t.Kids {
			s += Size(k)
		}
		return s
	case *Alt:
		s := 1
		for _, k := range t.Kids {
			s += Size(k)
		}
		return s
	case *Plus:
		return 1 + Size(t.Kid)
	case *Star:
		return 1 + Size(t.Kid)
	case *Opt:
		return 1 + Size(t.Kid)
	default:
		return 1
	}
}

// Clone returns a deep copy of n.
func Clone(n Node) Node {
	switch t := n.(type) {
	case *Empty:
		return &Empty{}
	case *Eps:
		return &Eps{}
	case *Sym:
		return &Sym{R: t.R}
	case *Class:
		return &Class{Neg: t.Neg, Set: append([]rune(nil), t.Set...)}
	case *Ref:
		return &Ref{Var: t.Var}
	case *Def:
		return &Def{Var: t.Var, Body: Clone(t.Body)}
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = Clone(k)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = Clone(k)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: Clone(t.Kid)}
	case *Star:
		return &Star{Kid: Clone(t.Kid)}
	case *Opt:
		return &Opt{Kid: Clone(t.Kid)}
	}
	panic("xregex: unknown node type")
}

// IsClassical reports whether n is a classical regular expression (no
// variable definitions or references), i.e. n ∈ REΣ.
func IsClassical(n Node) bool { return !HasVars(n) }

// Symbols returns the set of terminal symbols occurring in n (including
// symbols listed in classes).
func Symbols(n Node) map[rune]bool {
	out := map[rune]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Sym:
			out[t.R] = true
		case *Class:
			for _, r := range t.Set {
				out[r] = true
			}
		case *Def:
			walk(t.Body)
		case *Cat:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Alt:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Plus:
			walk(t.Kid)
		case *Star:
			walk(t.Kid)
		case *Opt:
			walk(t.Kid)
		}
	}
	walk(n)
	return out
}
