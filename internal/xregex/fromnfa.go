package xregex

import "cxrpq/internal/automata"

// FromNFA converts a rune-labelled NFA into a classical regular expression
// with the same language, using the standard state-elimination algorithm on
// a generalized NFA whose transitions carry expressions. It is used by the
// Lemma 12 translation (ECRPQ^er → CXRPQ^vsf,fl), which needs a regular
// expression for the intersection of the expressions in an equality class.
//
// The output can be large (state elimination is worst-case exponential); the
// paper makes no conciseness claim for Lemma 12, only expressibility.
func FromNFA(m *automata.NFA) Node {
	m = m.Trim()
	if m.IsEmpty() {
		return &Empty{}
	}
	n := m.NumStates()
	// Generalized NFA with fresh start (n) and fresh final (n+1).
	gn := n + 2
	start, final := n, n+1
	// edge[i][j] = expression from i to j (nil means no edge).
	edge := make([][]Node, gn)
	for i := range edge {
		edge[i] = make([]Node, gn)
	}
	add := func(i, j int, e Node) {
		if edge[i][j] == nil {
			edge[i][j] = e
		} else {
			edge[i][j] = Simplify(&Alt{Kids: []Node{edge[i][j], e}})
		}
	}
	for p := 0; p < n; p++ {
		for _, t := range m.Transitions(p) {
			if t.Label == automata.Epsilon {
				add(p, t.To, &Eps{})
			} else {
				add(p, t.To, &Sym{R: rune(t.Label)})
			}
		}
	}
	add(start, m.Start(), &Eps{})
	for _, f := range m.Finals() {
		add(f, final, &Eps{})
	}
	// Eliminate original states one by one.
	alive := make([]bool, gn)
	for i := 0; i < gn; i++ {
		alive[i] = true
	}
	for k := 0; k < n; k++ {
		loop := edge[k][k]
		var loopStar Node
		if loop != nil {
			loopStar = Simplify(&Star{Kid: loop})
		}
		for i := 0; i < gn; i++ {
			if !alive[i] || i == k || edge[i][k] == nil {
				continue
			}
			for j := 0; j < gn; j++ {
				if !alive[j] || j == k || edge[k][j] == nil {
					continue
				}
				parts := []Node{edge[i][k]}
				if loopStar != nil {
					parts = append(parts, loopStar)
				}
				parts = append(parts, edge[k][j])
				add(i, j, Simplify(&Cat{Kids: parts}))
			}
		}
		alive[k] = false
		for i := 0; i < gn; i++ {
			edge[i][k] = nil
			edge[k][i] = nil
		}
	}
	if edge[start][final] == nil {
		return &Empty{}
	}
	return Simplify(edge[start][final])
}

// IntersectionRegex returns a classical regular expression for
// ⋂ L(exprs[i]) over the alphabet sigma, via NFA product and state
// elimination. All expressions must be classical.
func IntersectionRegex(sigma []rune, exprs ...Node) (Node, error) {
	if len(exprs) == 0 {
		return AnyWord(), nil
	}
	ms := make([]*automata.NFA, len(exprs))
	for i, e := range exprs {
		m, err := Compile(e, sigma)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return FromNFA(automata.IntersectAll(ms...)), nil
}
