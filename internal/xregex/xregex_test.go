package xregex

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"ab",
		"a|b",
		"(a|b)+",
		"a*b?c+",
		"$x{a|b}",
		"$x{a|b}($x|c)+",
		"$x{aa|b}",
		"[abc]",
		"[^ab]*",
		".",
		".*",
		"()",
		"$x{$y{a*}b}$y",
		"\\+\\(",
		"$x1{a*$x2{(a|b)*}b*a*}$x2*(a|b)*$x1",
	}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := String(n)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-Parse(%q) of %q: %v", out, src, err)
		}
		if String(n2) != out {
			t.Errorf("round trip not stable: %q -> %q -> %q", src, out, String(n2))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(",
		"a)",
		"$",
		"$x{a",
		"[ab",
		"+a",
		"*",
		"$x{a$x}",         // x ∈ var(body), violates Definition 3
		"$x{a}$x{b}",      // two definitions of x in one concatenation
		"($x{a})+",        // definition under + is not sequential
		"($x{a}|b)+",      // definition under + is not sequential
		"$x{$y{a}b$y{c}}", // nested double definition
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSequentialButMultipleDefsInAlternation(t *testing.T) {
	// G4 of Figure 2 has two mutually exclusive definitions of z — legal.
	n, err := Parse("$z{$x|$y}|$z{a*}")
	if err != nil {
		t.Fatalf("alternated double definition should be sequential: %v", err)
	}
	if !IsSequential(n) {
		t.Fatal("IsSequential = false")
	}
}

func TestClassifiersPaperExample4(t *testing.T) {
	// Example 4 of the paper, translated to our syntax.
	cases := []struct {
		src                      string
		vstar, valt, vsimp, simp bool
	}{
		// x{a*}(bx(c∨a))*b: not vstar-free, but valt-free
		{"$x{a*}(b$x(c|a))*b", false, true, false, false},
		// x{a*}y((bx)∨(ca))b*y: vstar-free, not valt-free
		{"$x{a*}$y((b$x)|(ca))b*$y", true, false, false, false},
		// ax{(b∨c)*by{dwa*}}bxa*z{d*}zy: variable-simple, not simple
		{"a$x{(b|c)*b$y{d$w a*}}b$x a*$z{d*}$z$y", true, true, true, false},
		// ax{(b∨c)*da}bxa*y{z}xy: simple
		{"a$x{(b|c)*da}b$x a*$y{$z}$x$y", true, true, true, true},
	}
	for _, c := range cases {
		n := MustParse(c.src)
		if got := IsVStarFree(n); got != c.vstar {
			t.Errorf("IsVStarFree(%s) = %v, want %v", c.src, got, c.vstar)
		}
		if got := IsValtFree(n); got != c.valt {
			t.Errorf("IsValtFree(%s) = %v, want %v", c.src, got, c.valt)
		}
		if got := IsVariableSimple(n); got != c.vsimp {
			t.Errorf("IsVariableSimple(%s) = %v, want %v", c.src, got, c.vsimp)
		}
		if got := IsSimple(n); got != c.simp {
			t.Errorf("IsSimple(%s) = %v, want %v", c.src, got, c.simp)
		}
	}
}

func TestAcyclicity(t *testing.T) {
	// α = x{a*}y{x} ∨ y{a*}x{y} is an xregex but ≺α is cyclic.
	n := MustParse("$x{a*}$y{$x}|$y{a*}$x{$y}")
	if IsAcyclic(n) {
		t.Fatal("expected cyclic variable relation")
	}
	m := MustParse("$x{a*}$y{$x}")
	if !IsAcyclic(m) {
		t.Fatal("expected acyclic variable relation")
	}
	order, err := TopoVars(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "x" {
		t.Fatalf("topo order = %v, want [x y]", order)
	}
}

// Example 1 of the paper: deref of a concrete ref-word.
func TestDerefPaperExample1(t *testing.T) {
	// w = a x4 a ⟨x1 ab ⟨x2 acc ⟩x2 a x2 x4 ⟩x1 ⟨x3 x1 a x2 ⟩x3 x3 b x1
	w := RefWord{
		{Kind: TSym, Sym: 'a'}, {Kind: TRef, Var: "x4"}, {Kind: TSym, Sym: 'a'},
		{Kind: TOpen, Var: "x1"},
		{Kind: TSym, Sym: 'a'}, {Kind: TSym, Sym: 'b'},
		{Kind: TOpen, Var: "x2"}, {Kind: TSym, Sym: 'a'}, {Kind: TSym, Sym: 'c'}, {Kind: TSym, Sym: 'c'}, {Kind: TClose, Var: "x2"},
		{Kind: TSym, Sym: 'a'}, {Kind: TRef, Var: "x2"}, {Kind: TRef, Var: "x4"},
		{Kind: TClose, Var: "x1"},
		{Kind: TOpen, Var: "x3"}, {Kind: TRef, Var: "x1"}, {Kind: TSym, Sym: 'a'}, {Kind: TRef, Var: "x2"}, {Kind: TClose, Var: "x3"},
		{Kind: TRef, Var: "x3"}, {Kind: TSym, Sym: 'b'}, {Kind: TRef, Var: "x1"},
	}
	word, vmap, err := Deref(w)
	if err != nil {
		t.Fatal(err)
	}
	// vmap_w = (abaccaacc, acc, abaccaaccaacc, ε)
	want := map[string]string{"x1": "abaccaacc", "x2": "acc", "x3": "abaccaaccaacc"}
	for k, v := range want {
		if vmap[k] != v {
			t.Errorf("vmap[%s] = %q, want %q", k, vmap[k], v)
		}
	}
	if _, ok := vmap["x4"]; ok {
		t.Errorf("x4 has no definition, should be absent from vmap")
	}
	// Definitions are replaced in place by their value (Definition 2), so
	// x3's definition contributes one copy and its reference another.
	wantWord := "a" + "a" + "abaccaacc" + "abaccaaccaacc" + "abaccaaccaacc" + "b" + "abaccaacc"
	if word != wantWord {
		t.Errorf("deref = %q, want %q", word, wantWord)
	}
}

func TestDerefInvalid(t *testing.T) {
	// axa ⟨x ayb ⟩x c ⟨y xa⟩  — overlapping/cyclic per paper examples
	bad := RefWord{
		{Kind: TOpen, Var: "x"}, {Kind: TRef, Var: "y"}, {Kind: TClose, Var: "x"},
		{Kind: TOpen, Var: "y"}, {Kind: TRef, Var: "x"}, {Kind: TClose, Var: "y"},
	}
	if _, _, err := Deref(bad); err == nil {
		t.Fatal("cyclic ref-word should fail validation")
	}
	unbalanced := RefWord{{Kind: TOpen, Var: "x"}}
	if _, _, err := Deref(unbalanced); err == nil {
		t.Fatal("unbalanced ref-word should fail validation")
	}
	double := RefWord{
		{Kind: TOpen, Var: "x"}, {Kind: TClose, Var: "x"},
		{Kind: TOpen, Var: "x"}, {Kind: TClose, Var: "x"},
	}
	if _, _, err := Deref(double); err == nil {
		t.Fatal("double definition should fail validation")
	}
}

// Example 2 of the paper: α = a*x1{a*x2{(a∨b)*}b*a*}x2*(a∨b)*x1 and the
// word wα = a⁴(ba)²(ab)³(ba)³a with two different witnesses.
func TestMatchPaperExample2(t *testing.T) {
	n := MustParse("a*$x1{a*$x2{(a|b)*}b*a*}$x2*(a|b)*$x1")
	w := "aaaa" + "baba" + "ababab" + "bababa" + "a"
	res, ok := Match(n, w, []rune("ab"))
	if !ok {
		t.Fatalf("w should match α")
	}
	// Verify the witness is internally consistent: re-instantiate and check.
	inst, err := InstantiateComponent(n, res.VMap, []rune("ab"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Matches(inst, w, []rune("ab")); !ok {
		t.Fatal("witness mapping does not reproduce the match")
	}
	// With all variables allowed to be ε, L(α) = (a|b)*; check a witness
	// exists for "b" too (x1 = x2 = ε).
	if !MatchBool(n, "b", []rune("ab")) {
		t.Fatal("'b' should match with x1 = x2 = ε")
	}
}

// From Example 2: γ = x1{c*(x2{a*}∨x3{b*})}cx2cx3bx1 matches c²a²ca²cbc²a²
// with vmap (c²a², a², ε).
func TestMatchPaperExample2Gamma(t *testing.T) {
	n := MustParse("$x1{c*($x2{a*}|$x3{b*})}c $x2 c $x3 b $x1")
	w := "ccaa" + "c" + "aa" + "c" + "" + "b" + "ccaa"
	res, ok := Match(n, w, []rune("abc"))
	if !ok {
		t.Fatal("word should match γ")
	}
	if res.VMap["x1"] != "ccaa" || res.VMap["x2"] != "aa" || res.VMap["x3"] != "" {
		t.Fatalf("vmap = %v, want (ccaa, aa, ε)", res.VMap)
	}
}

func TestMatchBasicBackreference(t *testing.T) {
	n := MustParse("$x{(a|b)+}$x")
	sigma := []rune("ab")
	for _, c := range []struct {
		w  string
		ok bool
	}{
		{"abab", true}, {"aa", true}, {"ab", false}, {"abba", false}, {"", false},
	} {
		if got := MatchBool(n, c.w, sigma); got != c.ok {
			t.Errorf("match %q = %v, want %v", c.w, got, c.ok)
		}
	}
}

func TestMatchRefBeforeDef(t *testing.T) {
	// References may precede definitions in the ref-word sense: x ⟨x ab⟩.
	n := MustParse("($x)ab$x{ab}")
	sigma := []rune("ab")
	if !MatchBool(n, "ababab", sigma) {
		t.Fatal("ababab should match: x=ab referenced before its definition")
	}
	if MatchBool(n, "abab", sigma) {
		// leading ref must also produce ab
		t.Fatal("abab should not match")
	}
}

// The paper's cyclic example: α = x{a*}y{x} ∨ y{a*}x{y} is a valid xregex
// whose ≺ relation is cyclic; matching must still work (every individual
// ref-word is acyclic since the branches are mutually exclusive).
func TestMatchCyclicXregex(t *testing.T) {
	n := MustParse("$x{a*}$y{$x}|$y{a*}$x{$y}")
	if IsAcyclic(n) {
		t.Fatal("≺ should be cyclic for this xregex")
	}
	sigma := []rune("ab")
	// branch 1: x = a^k, y = x: word = a^k a^k
	if !MatchBool(n, "aaaa", sigma) {
		t.Fatal("aaaa should match (x=aa, y=x)")
	}
	if !MatchBool(n, "", sigma) {
		t.Fatal("ε should match (x=y=ε)")
	}
	if MatchBool(n, "aaa", sigma) {
		t.Fatal("odd-length a-word cannot be split into two equal halves")
	}
}

func TestMatchUndefinedVarIsEpsilon(t *testing.T) {
	n := MustParse("a$u b")
	if !MatchBool(n, "ab", []rune("ab")) {
		t.Fatal("undefined variable reference should vanish (ε)")
	}
	if MatchBool(n, "aub", []rune("abu")) {
		t.Fatal("undefined variable is not a symbol")
	}
}

func TestRefNFAEnumeration(t *testing.T) {
	n := MustParse("$x{a|b}c$x")
	rws := EnumerateRefWords(n, []rune("abc"), 6, 0)
	if len(rws) != 2 {
		t.Fatalf("expected 2 ref-words, got %d: %v", len(rws), rws)
	}
	for _, rw := range rws {
		w, vmap, err := Deref(rw)
		if err != nil {
			t.Fatal(err)
		}
		x := vmap["x"]
		if w != x+"c"+x {
			t.Errorf("deref(%v) = %q, inconsistent with x=%q", rw, w, x)
		}
	}
}

func TestCompileClassical(t *testing.T) {
	sigma := []rune("abc")
	cases := []struct {
		src  string
		w    string
		want bool
	}{
		{"a(b|c)*a", "abcba", true},
		{"a(b|c)*a", "aa", true},
		{"a(b|c)*a", "aba", true},
		{"a(b|c)*a", "ab", false},
		{"[^ab]+", "cc", true},
		{"[^ab]+", "cac", false},
		{".*", "", true},
		{".+", "", false},
		{"a?b", "b", true},
		{"a?b", "ab", true},
		{"[]", "", false}, // empty class = ∅
	}
	for _, c := range cases {
		ok, err := Matches(MustParse(c.src), c.w, sigma)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if ok != c.want {
			t.Errorf("Matches(%s, %q) = %v, want %v", c.src, c.w, ok, c.want)
		}
	}
}

func TestFromNFARoundTrip(t *testing.T) {
	sigma := []rune("ab")
	exprs := []string{"a", "(ab)+", "a*b*", "(a|b)*a", "ab|ba", "a+b+a+"}
	words := []string{"", "a", "b", "ab", "ba", "aab", "abab", "aba", "bba", "aabbaa"}
	for _, src := range exprs {
		n := MustParse(src)
		m := MustCompile(n, sigma)
		back := FromNFA(m)
		if !IsClassical(back) {
			t.Fatalf("FromNFA produced variables for %s", src)
		}
		for _, w := range words {
			want := m.AcceptsString(w)
			got, err := Matches(back, w, sigma)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s: FromNFA language differs on %q (%v vs %v); back = %s", src, w, got, want, String(back))
			}
		}
	}
}

func TestIntersectionRegex(t *testing.T) {
	sigma := []rune("ab")
	inter, err := IntersectionRegex(sigma, MustParse("(ab)+"), MustParse("a(ba)*b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		w  string
		ok bool
	}{{"ab", true}, {"abab", true}, {"", false}, {"aab", false}} {
		got, err := Matches(inter, c.w, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.ok {
			t.Errorf("intersection on %q = %v want %v (expr %s)", c.w, got, c.ok, String(inter))
		}
	}
}

func TestExpandVariableSimple(t *testing.T) {
	// γ1 from the §5.1 walkthrough:
	// x{a*y{b*}az} ∨ (x{b*}·(z ∨ y{c*}))
	n := MustParse("$x{a*$y{b*}a$z}|($x{b*}($z|$y{c*}))")
	parts, err := ExpandVariableSimple(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("expected 3 variable-simple branches, got %d: %v", len(parts), renderAll(parts))
	}
	for _, p := range parts {
		if !IsVariableSimple(p) {
			t.Errorf("branch not variable-simple: %s", String(p))
		}
	}
	// A variable under + must be rejected.
	if _, err := ExpandVariableSimple(MustParse("($x a)+$x{b}")); err == nil {
		t.Fatal("expected vstar-free violation")
	}
}

func TestFactorize(t *testing.T) {
	n := MustParse("ab*$x{c*}d$x$y e")
	fs, err := Factorize(n)
	if err != nil {
		t.Fatal(err)
	}
	// ab* | def x | d | ref x | ref y | e  →  classical merged: ab*, def, d, $x, $y, e
	kinds := make([]FactorKind, len(fs))
	for i, f := range fs {
		kinds[i] = f.Kind
	}
	want := []FactorKind{FClassical, FDef, FClassical, FRef, FRef, FClassical}
	if len(kinds) != len(want) {
		t.Fatalf("factor kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("factor kinds = %v, want %v", kinds, want)
		}
	}
	if String(Simplify(FactorsNode(fs))) != String(Simplify(n)) {
		t.Errorf("FactorsNode does not rebuild: %s", String(FactorsNode(fs)))
	}
}

func TestInstantiateComponent(t *testing.T) {
	sigma := []rune("abc")
	// α1 from §6.1: x3{x1{ca*c}x2*} ∨ (x1{cb*}∨x1{x4c*})(b∨x2*)x3{x1x2x1*}
	n := MustParse("$x3{$x1{ca*c}$x2*}|($x1{cb*}|$x1{$x4 c*})(b|$x2*)$x3{$x1$x2$x1*}")
	v := map[string]string{"x1": "ca", "x2": "a", "x3": "caaca", "x4": "ca"}
	inst, err := InstantiateComponent(n, v, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !IsClassical(inst) {
		t.Fatalf("instantiation left variables: %s", String(inst))
	}
	// The paper's §6.1 walkthrough: β1 = ca(b|a*)caaca.
	for _, c := range []struct {
		w  string
		ok bool
	}{
		{"cabcaaca", true},  // ca · b · caaca
		{"caaacaaca", true}, // ca · aa · caaca (a* branch)
		{"cacaaca", true},   // ca · ε · caaca
		{"caacca", false},
		{"caaca", false},
	} {
		got, err := Matches(inst, c.w, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.ok {
			t.Errorf("instantiated β1 on %q = %v, want %v (inst=%s)", c.w, got, c.ok, String(inst))
		}
	}

	// α2 from §6.1: (x1∨x2)*x4{(b∨c)*x2*}x2{(a∨b)*a}
	n2 := MustParse("($x1|$x2)*$x4{(b|c)*$x2*}$x2{(a|b)*a}")
	inst2, err := InstantiateComponent(n2, v, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// β2 = ((ca)|a)*caa — e.g. "ca a caa" and "caa"... the last part is
	// x4=ca then x2=a: (ca|a)* · ca · a
	for _, c := range []struct {
		w  string
		ok bool
	}{
		{"caa", true},   // ε repetitions, then ca, then a
		{"cacaa", true}, // x1 once
		{"acaa", true},  // x2 once
		{"aacaa", true},
		{"cba", false},
	} {
		got, err := Matches(inst2, c.w, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.ok {
			t.Errorf("instantiated β2 on %q = %v, want %v (inst=%s)", c.w, got, c.ok, String(inst2))
		}
	}
}

func TestForceVar(t *testing.T) {
	n := MustParse("$x{a}b|cd")
	f := Simplify(ForceVar(n, "x"))
	// the cd branch must be cut
	if strings.Contains(String(f), "cd") {
		t.Fatalf("ForceVar kept a branch without the definition: %s", String(f))
	}
}

func TestSimplifyAlgebra(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a[]b", "[]"},
		{"a|[]", "a"},
		{"[]*", "()"},
		{"[]+", "[]"},
		{"[]?", "()"},
		{"()a()", "a"},
		{"$x{[]}", "[]"},
		{"(ab)(cd)", "abcd"},
		{"(a|b)|c", "a|b|c"},
	}
	for _, c := range cases {
		got := String(Simplify(MustParse(c.in)))
		if got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSizeAndVars(t *testing.T) {
	n := MustParse("$x{a|b}c$x")
	if Size(n) < 5 {
		t.Errorf("Size = %d seems too small", Size(n))
	}
	vs := SortedVars(n)
	if len(vs) != 1 || vs[0] != "x" {
		t.Errorf("vars = %v", vs)
	}
	if !DefinedVars(n)["x"] {
		t.Error("x should be defined")
	}
}

// Property: Simplify preserves the language of classical expressions.
func TestQuickSimplifyPreservesLanguage(t *testing.T) {
	sigma := []rune("ab")
	gen := func(seed int64) Node { return randClassical(seed, 4) }
	f := func(seed int64, wbits []bool) bool {
		n := gen(seed)
		s := Simplify(n)
		if len(wbits) > 6 {
			wbits = wbits[:6]
		}
		w := make([]byte, len(wbits))
		for i, b := range wbits {
			if b {
				w[i] = 'a'
			} else {
				w[i] = 'b'
			}
		}
		a, err1 := Matches(n, string(w), sigma)
		b, err2 := Matches(s, string(w), sigma)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parse∘print is the identity on printed form.
func TestQuickPrintParseStable(t *testing.T) {
	f := func(seed int64) bool {
		n := randClassical(seed, 5)
		out := String(n)
		n2, err := Parse(out)
		if err != nil {
			return false
		}
		return String(n2) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randClassical deterministically generates a random classical expression.
func randClassical(seed int64, depth int) Node {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	var gen func(d int) Node
	gen = func(d int) Node {
		if d == 0 {
			switch next(4) {
			case 0:
				return &Sym{R: 'a'}
			case 1:
				return &Sym{R: 'b'}
			case 2:
				return &Eps{}
			default:
				return &Empty{}
			}
		}
		switch next(6) {
		case 0:
			return &Cat{Kids: []Node{gen(d - 1), gen(d - 1)}}
		case 1:
			return &Alt{Kids: []Node{gen(d - 1), gen(d - 1)}}
		case 2:
			return &Star{Kid: gen(d - 1)}
		case 3:
			return &Plus{Kid: gen(d - 1)}
		case 4:
			return &Opt{Kid: gen(d - 1)}
		default:
			return gen(0)
		}
	}
	return gen(depth)
}

func renderAll(ns []Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = String(n)
	}
	return out
}
