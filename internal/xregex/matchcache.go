package xregex

import (
	"sync"

	"cxrpq/internal/automata"
)

// This file backs Matches with a process-wide bounded cache of compiled
// classical expressions and their subset-construction caches. Membership
// tests are the innermost primitive of the Lemma 10 instantiation machinery
// (CutFailedDefs runs one per definition per variable mapping) and of the
// Theorem 6 candidate filters, and the same small expressions recur across
// the exponentially many mappings of a bounded enumeration — compiling a
// fresh Thompson NFA per call dominated those paths. Entries are keyed by
// the canonical print plus the alphabet, so the determinization work warmed
// by one caller is shared by every concurrent one.

// matchCacheCap bounds the process-wide cache; on overflow the whole epoch
// is dropped (cheap, and correct because entries are pure caches).
const matchCacheCap = 4096

var (
	matchMu    sync.Mutex
	matchCache = map[string]*automata.SubsetCache{}
)

// subsetFor returns the shared determinization cache for the classical
// expression n over sigma, compiling it on first use.
func subsetFor(n Node, sigma []rune) (*automata.SubsetCache, error) {
	key := String(n) + "\x00" + string(sigma)
	matchMu.Lock()
	if c, ok := matchCache[key]; ok {
		matchMu.Unlock()
		return c, nil
	}
	matchMu.Unlock()

	m, err := Compile(n, sigma)
	if err != nil {
		return nil, err
	}
	c := automata.NewSubsetCache(m)
	matchMu.Lock()
	defer matchMu.Unlock()
	if old, ok := matchCache[key]; ok { // raced with another compiler
		return old, nil
	}
	if len(matchCache) >= matchCacheCap {
		matchCache = map[string]*automata.SubsetCache{}
	}
	matchCache[key] = c
	return c, nil
}
