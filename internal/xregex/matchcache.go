package xregex

import (
	"sync"

	"cxrpq/internal/automata"
)

// This file backs Matches with a process-wide bounded cache of compiled
// classical expressions and their subset-construction caches. Membership
// tests are the innermost primitive of the Lemma 10 instantiation machinery
// (CutFailedDefs runs one per definition per variable mapping) and of the
// Theorem 6 candidate filters, and the same small expressions recur across
// the exponentially many mappings of a bounded enumeration — compiling a
// fresh Thompson NFA per call dominated those paths. Entries are keyed by
// the canonical print plus the alphabet, so the determinization work warmed
// by one caller is shared by every concurrent one.

// defaultMatchCacheCap bounds the process-wide cache; on overflow the whole
// epoch is dropped (cheap, and correct because entries are pure caches).
const defaultMatchCacheCap = 4096

var (
	matchMu        sync.Mutex
	matchCacheCap  = defaultMatchCacheCap
	matchCache     = map[string]*automata.SubsetCache{}
	matchHits      uint64
	matchMisses    uint64
	matchEvictions uint64
)

// MatchCacheStats is a snapshot of the process-wide match-cache counters.
type MatchCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // whole-epoch drops on overflow
	Size      int
	Cap       int
}

// MatchCacheInfo returns the current counters of the process-wide compiled
// cache behind Matches.
func MatchCacheInfo() MatchCacheStats {
	matchMu.Lock()
	defer matchMu.Unlock()
	return MatchCacheStats{Hits: matchHits, Misses: matchMisses,
		Evictions: matchEvictions, Size: len(matchCache), Cap: matchCacheCap}
}

// SetMatchCacheCap sets the capacity of the process-wide compiled cache and
// returns the previous value (n <= 0 restores the default). Shrinking below
// the live size drops the whole epoch. Exposed for tests exercising the
// eviction path and for tuning long-running servers.
func SetMatchCacheCap(n int) int {
	matchMu.Lock()
	defer matchMu.Unlock()
	prev := matchCacheCap
	if n <= 0 {
		n = defaultMatchCacheCap
	}
	matchCacheCap = n
	if len(matchCache) >= matchCacheCap {
		matchCache = map[string]*automata.SubsetCache{}
		matchEvictions++
	}
	return prev
}

// subsetFor returns the shared determinization cache for the classical
// expression n over sigma, compiling it on first use.
func subsetFor(n Node, sigma []rune) (*automata.SubsetCache, error) {
	key := String(n) + "\x00" + string(sigma)
	matchMu.Lock()
	if c, ok := matchCache[key]; ok {
		matchHits++
		matchMu.Unlock()
		return c, nil
	}
	matchMisses++
	matchMu.Unlock()

	m, err := Compile(n, sigma)
	if err != nil {
		return nil, err
	}
	c := automata.NewSubsetCache(m)
	matchMu.Lock()
	defer matchMu.Unlock()
	if old, ok := matchCache[key]; ok { // raced with another compiler
		return old, nil
	}
	if len(matchCache) >= matchCacheCap {
		matchCache = map[string]*automata.SubsetCache{}
		matchEvictions++
	}
	matchCache[key] = c
	return c, nil
}
