package xregex

import "fmt"

// This file implements the per-component syntax-tree surgery of Lemma 10:
// fixing a variable mapping v̄ turns an xregex into a classical regular
// expression describing exactly the words matched with that mapping.
// The conjunctive (tuple-level) orchestration lives in package cxrpq.

// SubstituteAllVars replaces every reference and every definition of each
// variable by the literal image v[x] (missing entries mean ε).
func SubstituteAllVars(n Node, v map[string]string) Node {
	switch t := n.(type) {
	case *Ref:
		return Word(v[t.Var])
	case *Def:
		return Word(v[t.Var])
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = SubstituteAllVars(k, v)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = SubstituteAllVars(k, v)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: SubstituteAllVars(t.Kid, v)}
	case *Star:
		return &Star{Kid: SubstituteAllVars(t.Kid, v)}
	case *Opt:
		return &Opt{Kid: SubstituteAllVars(t.Kid, v)}
	default:
		return n
	}
}

// CutFailedDefs is Step 1 of the Lemma 10 procedure: definitions are
// considered innermost-first ("already marked" nested definitions are
// replaced by their intended images); a definition x{γ} whose substituted
// body γ′ cannot produce v[x] is replaced by ∅, which after Simplify
// propagates up to the nearest alternation — exactly the paper's surgery.
func CutFailedDefs(n Node, v map[string]string, sigma []rune) (Node, error) {
	switch t := n.(type) {
	case *Def:
		body, err := CutFailedDefs(t.Body, v, sigma)
		if err != nil {
			return nil, err
		}
		if isEmpty(Simplify(body)) {
			return &Empty{}, nil
		}
		gamma := Simplify(SubstituteAllVars(body, v))
		ok, err := Matches(gamma, v[t.Var], sigma)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &Empty{}, nil
		}
		return &Def{Var: t.Var, Body: body}, nil
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := CutFailedDefs(k, v, sigma)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &Cat{Kids: kids}, nil
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := CutFailedDefs(k, v, sigma)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &Alt{Kids: kids}, nil
	case *Plus:
		kid, err := CutFailedDefs(t.Kid, v, sigma)
		if err != nil {
			return nil, err
		}
		return &Plus{Kid: kid}, nil
	case *Star:
		kid, err := CutFailedDefs(t.Kid, v, sigma)
		if err != nil {
			return nil, err
		}
		return &Star{Kid: kid}, nil
	case *Opt:
		kid, err := CutFailedDefs(t.Kid, v, sigma)
		if err != nil {
			return nil, err
		}
		return &Opt{Kid: kid}, nil
	default:
		return n, nil
	}
}

// ForceVar is Step 2 of the Lemma 10 procedure for a single variable x with
// non-empty image: it prunes every alternation branch that would not
// instantiate a definition of x, so that every remaining derivation
// instantiates one. The caller must ensure ContainsDef(n, x).
func ForceVar(n Node, x string) Node {
	if !ContainsDef(n, x) {
		return &Empty{}
	}
	switch t := n.(type) {
	case *Def:
		if t.Var == x {
			return n
		}
		return &Def{Var: t.Var, Body: ForceVar(t.Body, x)}
	case *Cat:
		kids := make([]Node, len(t.Kids))
		copy(kids, t.Kids)
		for i, k := range t.Kids {
			if ContainsDef(k, x) {
				kids[i] = ForceVar(k, x)
				// sequentiality: at most one concatenation factor can hold
				// a definition of x
				break
			}
		}
		return &Cat{Kids: kids}
	case *Alt:
		var kids []Node
		for _, k := range t.Kids {
			if ContainsDef(k, x) {
				kids = append(kids, ForceVar(k, x))
			}
		}
		if len(kids) == 0 {
			return &Empty{}
		}
		return &Alt{Kids: kids}
	case *Opt:
		return ForceVar(t.Kid, x)
	case *Plus, *Star:
		// A definition under +/* contradicts sequentiality.
		panic(fmt.Sprintf("xregex: definition of $%s under repetition", x))
	}
	return &Empty{}
}

// InstantiateComponent applies the full Lemma 10 procedure to one component
// of a conjunctive xregex for the fixed variable mapping v: cut failing
// definitions, force instantiation of every variable with a non-empty image
// that is defined in this component, then replace all remaining definitions
// and references by the literal images. The result is a classical regular
// expression (possibly ∅) with
//
//	L(result) = { w : w matches n with variable mapping v }
//
// relative to this component; the tuple-level condition "some component must
// actually define x when v[x] ≠ ε" is enforced by the caller.
func InstantiateComponent(n Node, v map[string]string, sigma []rune) (Node, error) {
	cut, err := CutFailedDefs(n, v, sigma)
	if err != nil {
		return nil, err
	}
	cut = Simplify(cut)
	for _, x := range SortedVars(n) {
		if v[x] == "" {
			continue
		}
		if ContainsDef(cut, x) {
			cut = Simplify(ForceVar(cut, x))
		}
	}
	return Simplify(SubstituteAllVars(cut, v)), nil
}

// InstantiationAlphabet returns sigma extended with all symbols occurring in
// the images of v, so class-free membership tests see every needed symbol.
func InstantiationAlphabet(sigma []rune, v map[string]string) []rune {
	extra := map[rune]bool{}
	for _, w := range v {
		for _, r := range w {
			extra[r] = true
		}
	}
	var rs []rune
	for r := range extra {
		rs = append(rs, r)
	}
	return MergeAlphabets(sigma, rs)
}
