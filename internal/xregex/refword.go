package xregex

import (
	"fmt"
	"sort"
	"strings"

	"cxrpq/internal/automata"
)

// TokKind distinguishes the four kinds of ref-word tokens (Definition 1):
// terminal symbols, definition parentheses ⟨x and ⟩x, and references x.
type TokKind int

const (
	TSym TokKind = iota
	TOpen
	TClose
	TRef
)

// Token is one position of a ref-word.
type Token struct {
	Kind TokKind
	Sym  rune   // for TSym
	Var  string // for TOpen/TClose/TRef
}

func (t Token) String() string {
	switch t.Kind {
	case TSym:
		return string(t.Sym)
	case TOpen:
		return "<" + t.Var + ">"
	case TClose:
		return "</" + t.Var + ">"
	case TRef:
		return "$" + t.Var
	}
	return "?"
}

// RefWord is a subword-marked word over Σ and the variables (Definition 1).
type RefWord []Token

func (w RefWord) String() string {
	var b strings.Builder
	for _, t := range w {
		b.WriteString(t.String())
	}
	return b.String()
}

// ValidateRefWord checks the conditions of Definition 1: each ⟨x/⟩x pair
// occurs at most once, parentheses are well-nested, and the relation ≺w is
// acyclic.
func ValidateRefWord(w RefWord) error {
	opened := map[string]bool{}
	closed := map[string]bool{}
	var stack []string
	// ≺w edges: x ≺ y if a definition or reference of x occurs inside the
	// definition of y.
	rel := map[string]map[string]bool{}
	addRel := func(x string) {
		for _, y := range stack {
			if x == y {
				continue
			}
			if rel[x] == nil {
				rel[x] = map[string]bool{}
			}
			rel[x][y] = true
		}
	}
	for _, t := range w {
		switch t.Kind {
		case TOpen:
			if opened[t.Var] {
				return fmt.Errorf("refword: second definition of $%s", t.Var)
			}
			opened[t.Var] = true
			addRel(t.Var)
			stack = append(stack, t.Var)
		case TClose:
			if len(stack) == 0 || stack[len(stack)-1] != t.Var {
				return fmt.Errorf("refword: unbalanced ⟩%s", t.Var)
			}
			stack = stack[:len(stack)-1]
			closed[t.Var] = true
		case TRef:
			addRel(t.Var)
		}
	}
	if len(stack) > 0 {
		return fmt.Errorf("refword: unclosed definition of $%s", stack[len(stack)-1])
	}
	for v := range opened {
		if !closed[v] {
			return fmt.Errorf("refword: definition of $%s never closed", v)
		}
	}
	// acyclicity of ≺w
	state := map[string]int{}
	var visit func(string) error
	var vars []string
	for x := range rel {
		vars = append(vars, x)
	}
	sort.Strings(vars)
	visit = func(v string) error {
		switch state[v] {
		case 1:
			return fmt.Errorf("refword: cyclic variable dependency through $%s", v)
		case 2:
			return nil
		}
		state[v] = 1
		var succ []string
		for y := range rel[v] {
			succ = append(succ, y)
		}
		sort.Strings(succ)
		for _, y := range succ {
			if err := visit(y); err != nil {
				return err
			}
		}
		state[v] = 2
		return nil
	}
	for _, v := range vars {
		if err := visit(v); err != nil {
			return err
		}
	}
	return nil
}

// Deref computes deref(w) per Definition 2 together with the variable
// mapping vmap_w: the image of each variable that has a definition in w
// (variables without definitions map to ε). It returns an error if w is not
// a valid ref-word.
func Deref(w RefWord) (string, map[string]string, error) {
	if err := ValidateRefWord(w); err != nil {
		return "", nil, err
	}
	vmap := map[string]string{}
	toks := append(RefWord(nil), w...)

	// Step 1: delete references of variables without definitions.
	defined := map[string]bool{}
	for _, t := range toks {
		if t.Kind == TOpen {
			defined[t.Var] = true
		}
	}
	filtered := toks[:0]
	for _, t := range toks {
		if t.Kind == TRef && !defined[t.Var] {
			continue
		}
		filtered = append(filtered, t)
	}
	toks = filtered

	// Step 2: repeatedly resolve a definition whose content is terminal.
	for {
		// find innermost definition with terminal-only content
		resolved := false
		for i := 0; i < len(toks); i++ {
			if toks[i].Kind != TOpen {
				continue
			}
			x := toks[i].Var
			j := i + 1
			ok := true
			for ; j < len(toks); j++ {
				if toks[j].Kind == TClose && toks[j].Var == x {
					break
				}
				if toks[j].Kind != TSym {
					ok = false
					break
				}
			}
			if !ok || j >= len(toks) {
				continue
			}
			var val strings.Builder
			for k := i + 1; k < j; k++ {
				val.WriteRune(toks[k].Sym)
			}
			vx := val.String()
			vmap[x] = vx
			// replace definition span and all references of x by vx
			var next RefWord
			for k := 0; k < len(toks); k++ {
				if k == i {
					next = appendWord(next, vx)
					k = j // skip to close token (loop increments past it)
					continue
				}
				if toks[k].Kind == TRef && toks[k].Var == x {
					next = appendWord(next, vx)
					continue
				}
				next = append(next, toks[k])
			}
			toks = next
			resolved = true
			break
		}
		if !resolved {
			break
		}
	}
	var out strings.Builder
	for _, t := range toks {
		if t.Kind != TSym {
			return "", nil, fmt.Errorf("refword: deref did not terminate (leftover %s)", t)
		}
		out.WriteRune(t.Sym)
	}
	return out.String(), vmap, nil
}

func appendWord(w RefWord, s string) RefWord {
	for _, r := range s {
		w = append(w, Token{Kind: TSym, Sym: r})
	}
	return w
}

// refCodec maps ref-word tokens to automata labels: terminal runes map to
// their code point, special tokens to negative codes.
type refCodec struct {
	codes  map[string]int32
	tokens []Token
}

func newRefCodec() *refCodec { return &refCodec{codes: map[string]int32{}} }

func (c *refCodec) code(t Token) int32 {
	if t.Kind == TSym {
		return int32(t.Sym)
	}
	key := t.String()
	if code, ok := c.codes[key]; ok {
		return code
	}
	code := int32(-2 - len(c.tokens))
	c.codes[key] = code
	c.tokens = append(c.tokens, t)
	return code
}

func (c *refCodec) decode(code int32) Token {
	if code >= 0 {
		return Token{Kind: TSym, Sym: rune(code)}
	}
	return c.tokens[-2-code]
}

// RefNFA builds the NFA of the classical expression α_ref over the extended
// alphabet (§3): variable definitions x{β} become ⟨x·β_ref·⟩x and
// references become single tokens. sigma resolves character classes.
func RefNFA(n Node, sigma []rune) (*automata.NFA, *refCodec) {
	codec := newRefCodec()
	m := automata.New(2)
	m.SetStart(0)
	m.SetFinal(1, true)
	buildRef(m, n, 0, 1, sigma, codec)
	return m, codec
}

func buildRef(m *automata.NFA, n Node, from, to int, sigma []rune, c *refCodec) {
	switch t := n.(type) {
	case *Empty:
	case *Eps:
		m.AddTr(from, automata.Epsilon, to)
	case *Sym:
		m.AddTr(from, int32(t.R), to)
	case *Class:
		for _, r := range ClassSymbols(t, sigma) {
			m.AddTr(from, int32(r), to)
		}
	case *Ref:
		m.AddTr(from, c.code(Token{Kind: TRef, Var: t.Var}), to)
	case *Def:
		p := m.AddState()
		q := m.AddState()
		m.AddTr(from, c.code(Token{Kind: TOpen, Var: t.Var}), p)
		m.AddTr(q, c.code(Token{Kind: TClose, Var: t.Var}), to)
		buildRef(m, t.Body, p, q, sigma, c)
	case *Cat:
		cur := from
		for i, k := range t.Kids {
			next := to
			if i < len(t.Kids)-1 {
				next = m.AddState()
			}
			buildRef(m, k, cur, next, sigma, c)
			cur = next
		}
		if len(t.Kids) == 0 {
			m.AddTr(from, automata.Epsilon, to)
		}
	case *Alt:
		for _, k := range t.Kids {
			buildRef(m, k, from, to, sigma, c)
		}
	case *Plus:
		p := m.AddState()
		q := m.AddState()
		m.AddTr(from, automata.Epsilon, p)
		m.AddTr(q, automata.Epsilon, to)
		m.AddTr(q, automata.Epsilon, p)
		buildRef(m, t.Kid, p, q, sigma, c)
	case *Star:
		p := m.AddState()
		q := m.AddState()
		m.AddTr(from, automata.Epsilon, p)
		m.AddTr(q, automata.Epsilon, to)
		m.AddTr(q, automata.Epsilon, p)
		m.AddTr(from, automata.Epsilon, to)
		buildRef(m, t.Kid, p, q, sigma, c)
	case *Opt:
		m.AddTr(from, automata.Epsilon, to)
		buildRef(m, t.Kid, from, to, sigma, c)
	}
}

// EnumerateRefWords returns ref-words of L_ref(n) up to the given token
// length (and count, if maxCount > 0). Intended for tests and small
// examples.
func EnumerateRefWords(n Node, sigma []rune, maxLen, maxCount int) []RefWord {
	m, codec := RefNFA(n, sigma)
	words := m.EnumerateWords(maxLen, maxCount)
	out := make([]RefWord, len(words))
	for i, w := range words {
		rw := make(RefWord, len(w))
		for j, code := range w {
			rw[j] = codec.decode(code)
		}
		out[i] = rw
	}
	return out
}
