package xregex

// Eviction edge cases for the process-wide compiled cache behind Matches:
// filling past capacity must drop the epoch (counted), keep answering
// correctly, and the hit/miss counters must move as specified.

import (
	"strings"
	"testing"
)

func TestMatchCacheEvictionCorrectness(t *testing.T) {
	prev := SetMatchCacheCap(4)
	defer SetMatchCacheCap(prev)

	sigma := []rune("ab")
	before := MatchCacheInfo()

	// 20 distinct expressions against a cap of 4: at least 4 epoch drops.
	words := make([]string, 20)
	for i := range words {
		words[i] = strings.Repeat("a", i%5+1) + strings.Repeat("b", i/5)
	}
	for _, w := range words {
		ok, err := Matches(Word(w), w, sigma)
		if err != nil || !ok {
			t.Fatalf("Matches(%q, %q) = %v, %v; want true", w, w, ok, err)
		}
		ok, err = Matches(Word(w), w+"a", sigma)
		if err != nil || ok {
			t.Fatalf("Matches(%q, %q) = %v, %v; want false", w, w+"a", ok, err)
		}
	}
	mid := MatchCacheInfo()
	if mid.Evictions <= before.Evictions {
		t.Fatalf("expected epoch drops past capacity: before %+v, after %+v", before, mid)
	}
	if mid.Misses-before.Misses < 20 {
		t.Fatalf("expected ≥20 misses for 20 distinct expressions, got %d", mid.Misses-before.Misses)
	}
	if mid.Size > mid.Cap {
		t.Fatalf("live size %d exceeds cap %d", mid.Size, mid.Cap)
	}

	// Re-querying expressions evicted earlier must still answer correctly
	// (recompiled on a fresh miss).
	for _, w := range words[:4] {
		ok, err := Matches(Word(w), w, sigma)
		if err != nil || !ok {
			t.Fatalf("post-eviction Matches(%q) = %v, %v; want true", w, ok, err)
		}
	}

	// Repeated queries inside one epoch must hit: the second Matches of an
	// expression just inserted cannot miss.
	h0 := MatchCacheInfo().Hits
	for i := 0; i < 3; i++ {
		if ok, err := Matches(Word("abab"), "abab", sigma); err != nil || !ok {
			t.Fatalf("Matches(abab) = %v, %v", ok, err)
		}
	}
	if h2 := MatchCacheInfo().Hits; h2 < h0+2 {
		t.Fatalf("expected ≥2 hits from repeated queries, got %d", h2-h0)
	}
}

func TestSetMatchCacheCapShrinkDropsEpoch(t *testing.T) {
	prev := SetMatchCacheCap(64)
	defer SetMatchCacheCap(prev)
	sigma := []rune("ab")
	for _, w := range []string{"a", "b", "ab", "ba", "aa"} {
		if _, err := Matches(Word(w), w, sigma); err != nil {
			t.Fatal(err)
		}
	}
	if MatchCacheInfo().Size < 5 {
		t.Fatalf("expected ≥5 live entries, got %d", MatchCacheInfo().Size)
	}
	SetMatchCacheCap(2) // below live size: whole epoch must drop
	if got := MatchCacheInfo().Size; got != 0 {
		t.Fatalf("expected empty cache after shrink below live size, got %d", got)
	}
	// still correct after the drop
	if ok, err := Matches(Word("ab"), "ab", sigma); err != nil || !ok {
		t.Fatalf("Matches(ab) after shrink = %v, %v", ok, err)
	}
}
