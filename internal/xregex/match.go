package xregex

import "sort"

// MatchResult is a successful match of a word against an xregex, with the
// witnessing variable mapping (Definition: w matches α with witness
// u ∈ L_ref(α) and variable mapping vmap_u).
type MatchResult struct {
	VMap map[string]string
}

// Match reports whether w ∈ L(n) and, if so, returns one witnessing
// variable mapping. sigma is the alphabet for resolving classes (it is
// automatically extended with the symbols of n and w).
//
// The implementation enumerates candidate images (all factors of w, since
// every variable image must occur as a factor of the matched word) in
// ≺-topological order with definition-based pruning, and decides each full
// mapping via the Lemma 10 instantiation. Matching xregex is NP-complete in
// general ([40] in the paper); this procedure is exponential only in the
// number of variables.
func Match(n Node, w string, sigma []rune) (*MatchResult, bool) {
	sigma = MergeAlphabets(sigma, AlphabetOf(n), []rune(w))
	vars, err := TopoVars(n)
	if err != nil {
		// Single xregex may have a cyclic ≺ relation (the cycle is only
		// through mutually exclusive alternation branches; every ref-word is
		// still acyclic). Enumeration order is then irrelevant for
		// correctness — only for pruning — so fall back to sorted order.
		vars = SortedVars(n)
	}
	defined := DefinedVars(n)
	// Candidate images: ε plus every factor (substring) of w.
	factors := []string{""}
	seen := map[string]bool{"": true}
	rs := []rune(w)
	for i := 0; i <= len(rs); i++ {
		for j := i + 1; j <= len(rs); j++ {
			f := string(rs[i:j])
			if !seen[f] {
				seen[f] = true
				factors = append(factors, f)
			}
		}
	}
	sort.Slice(factors, func(i, j int) bool {
		if len(factors[i]) != len(factors[j]) {
			return len(factors[i]) < len(factors[j])
		}
		return factors[i] < factors[j]
	})

	// Relaxed definition automata for pruning: image of x must be accepted
	// by some definition body with all variables relaxed to Σ*...
	// (necessary, not sufficient; ε is always allowed since a definition in
	// an unused branch yields an empty image).
	relaxed := map[string][]Node{}
	for x := range defined {
		for _, body := range DefBodies(x, n) {
			relaxed[x] = append(relaxed[x], relaxVars(body))
		}
	}

	assign := map[string]string{}
	var try func(i int) (*MatchResult, bool)
	try = func(i int) (*MatchResult, bool) {
		if i == len(vars) {
			inst, err := InstantiateComponent(n, assign, InstantiationAlphabet(sigma, assign))
			if err != nil {
				return nil, false
			}
			// Tuple-level condition for a single xregex: every variable with
			// a non-empty image must have a definition (checked via pruning:
			// only defined variables get non-ε candidates).
			ok, err := Matches(inst, w, InstantiationAlphabet(sigma, assign))
			if err != nil || !ok {
				return nil, false
			}
			vm := map[string]string{}
			for k, v := range assign {
				vm[k] = v
			}
			return &MatchResult{VMap: vm}, true
		}
		x := vars[i]
		var cands []string
		if !defined[x] {
			cands = []string{""}
		} else {
			for _, f := range factors {
				if f == "" {
					cands = append(cands, f)
					continue
				}
				for _, g := range relaxed[x] {
					if ok, err := Matches(g, f, MergeAlphabets(sigma, []rune(f))); err == nil && ok {
						cands = append(cands, f)
						break
					}
				}
			}
		}
		for _, c := range cands {
			assign[x] = c
			if r, ok := try(i + 1); ok {
				return r, true
			}
		}
		delete(assign, x)
		return nil, false
	}
	return try(0)
}

// MatchBool reports w ∈ L(n).
func MatchBool(n Node, w string, sigma []rune) bool {
	_, ok := Match(n, w, sigma)
	return ok
}

// relaxVars replaces every variable reference and definition by Σ*.
func relaxVars(n Node) Node {
	switch t := n.(type) {
	case *Ref, *Def:
		return AnyWord()
	case *Cat:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxVars(k)
		}
		return &Cat{Kids: kids}
	case *Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxVars(k)
		}
		return &Alt{Kids: kids}
	case *Plus:
		return &Plus{Kid: relaxVars(t.Kid)}
	case *Star:
		return &Star{Kid: relaxVars(t.Kid)}
	case *Opt:
		return &Opt{Kid: relaxVars(t.Kid)}
	default:
		return n
	}
}
