package xregex

import (
	"fmt"
	"sort"

	"cxrpq/internal/automata"
)

// Compile translates a classical regular expression (no variables) into an
// NFA with rune labels using the Thompson construction. sigma is the
// concrete alphabet Σ used to resolve negated character classes and the "."
// wildcard; symbols occurring positively in n are matched even if absent
// from sigma.
func Compile(n Node, sigma []rune) (*automata.NFA, error) {
	if HasVars(n) {
		return nil, fmt.Errorf("xregex: cannot compile expression with variables to an NFA: %s", String(n))
	}
	m := automata.New(2)
	start, final := 0, 1
	m.SetStart(start)
	m.SetFinal(final, true)
	if err := build(m, n, start, final, sigma); err != nil {
		return nil, err
	}
	return m, nil
}

// MustCompile is Compile but panics on error.
func MustCompile(n Node, sigma []rune) *automata.NFA {
	m, err := Compile(n, sigma)
	if err != nil {
		panic(err)
	}
	return m
}

// ClassSymbols resolves a character class against Σ: the sorted set of
// symbols the class matches.
func ClassSymbols(c *Class, sigma []rune) []rune {
	if !c.Neg {
		return append([]rune(nil), c.Set...)
	}
	excl := map[rune]bool{}
	for _, r := range c.Set {
		excl[r] = true
	}
	var out []rune
	for _, r := range sigma {
		if !excl[r] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func build(m *automata.NFA, n Node, from, to int, sigma []rune) error {
	switch t := n.(type) {
	case *Empty:
		// no transitions
		return nil
	case *Eps:
		m.AddTr(from, automata.Epsilon, to)
		return nil
	case *Sym:
		m.AddTr(from, int32(t.R), to)
		return nil
	case *Class:
		for _, r := range ClassSymbols(t, sigma) {
			m.AddTr(from, int32(r), to)
		}
		return nil
	case *Cat:
		cur := from
		for i, k := range t.Kids {
			next := to
			if i < len(t.Kids)-1 {
				next = m.AddState()
			}
			if err := build(m, k, cur, next, sigma); err != nil {
				return err
			}
			cur = next
		}
		if len(t.Kids) == 0 {
			m.AddTr(from, automata.Epsilon, to)
		}
		return nil
	case *Alt:
		if len(t.Kids) == 0 {
			return nil // ∅
		}
		for _, k := range t.Kids {
			if err := build(m, k, from, to, sigma); err != nil {
				return err
			}
		}
		return nil
	case *Plus:
		// from -ε-> p -kid-> q -ε-> to, q -ε-> p
		p := m.AddState()
		q := m.AddState()
		m.AddTr(from, automata.Epsilon, p)
		m.AddTr(q, automata.Epsilon, to)
		m.AddTr(q, automata.Epsilon, p)
		return build(m, t.Kid, p, q, sigma)
	case *Star:
		p := m.AddState()
		q := m.AddState()
		m.AddTr(from, automata.Epsilon, p)
		m.AddTr(q, automata.Epsilon, to)
		m.AddTr(q, automata.Epsilon, p)
		m.AddTr(from, automata.Epsilon, to)
		return build(m, t.Kid, p, q, sigma)
	case *Opt:
		m.AddTr(from, automata.Epsilon, to)
		return build(m, t.Kid, from, to, sigma)
	case *Ref, *Def:
		return fmt.Errorf("xregex: variable in classical compilation")
	}
	panic("xregex: unknown node type")
}

// Matches reports whether the classical expression n matches w, resolving
// classes against sigma. Compiled automata are shared through the
// process-wide cache (see matchcache.go) and the word runs through the
// interned deterministic transition table.
func Matches(n Node, w string, sigma []rune) (bool, error) {
	c, err := subsetFor(n, sigma)
	if err != nil {
		return false, err
	}
	word := make([]int32, 0, len(w))
	for _, r := range w {
		word = append(word, int32(r))
	}
	return c.Accepts(word), nil
}

// MergeAlphabets unions rune alphabets, sorted and deduplicated.
func MergeAlphabets(as ...[]rune) []rune {
	set := map[rune]bool{}
	for _, a := range as {
		for _, r := range a {
			set[r] = true
		}
	}
	out := make([]rune, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AlphabetOf returns the sorted terminal symbols of the given expressions.
func AlphabetOf(nodes ...Node) []rune {
	set := map[rune]bool{}
	for _, n := range nodes {
		for r := range Symbols(n) {
			set[r] = true
		}
	}
	out := make([]rune, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
