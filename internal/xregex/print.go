package xregex

import "strings"

// String renders n in the syntax accepted by Parse, with parentheses only
// where required by operator precedence (atom > repetition > concatenation >
// alternation). The output of String parses back to a structurally
// equivalent tree (modulo re-flattening of Cat/Alt).
func String(n Node) string {
	var b strings.Builder
	printNode(&b, n, precAlt)
	return b.String()
}

const (
	precAlt = iota
	precCat
	precRep
	precAtom
)

func printNode(b *strings.Builder, n Node, ctx int) {
	switch t := n.(type) {
	case *Empty:
		b.WriteString("[]")
	case *Eps:
		b.WriteString("()")
	case *Sym:
		if isReserved(t.R) || t.R == ' ' {
			b.WriteByte('\\')
		}
		b.WriteRune(t.R)
	case *Class:
		if t.Neg && len(t.Set) == 0 {
			b.WriteByte('.')
			return
		}
		b.WriteByte('[')
		if t.Neg {
			b.WriteByte('^')
		}
		for _, r := range t.Set {
			if r == ']' || r == '\\' || r == '^' {
				b.WriteByte('\\')
			}
			b.WriteRune(r)
		}
		b.WriteByte(']')
	case *Ref:
		b.WriteByte('$')
		b.WriteString(t.Var)
	case *Def:
		b.WriteByte('$')
		b.WriteString(t.Var)
		b.WriteByte('{')
		printNode(b, t.Body, precAlt)
		b.WriteByte('}')
	case *Cat:
		if ctx > precCat {
			b.WriteByte('(')
		}
		for i, k := range t.Kids {
			// A bare Ref followed by a name rune would merge into the
			// reference token; parenthesize the ref to keep round-trips safe.
			if r, ok := k.(*Ref); ok && i+1 < len(t.Kids) && startsWithNameRune(t.Kids[i+1]) {
				b.WriteString("($")
				b.WriteString(r.Var)
				b.WriteByte(')')
				continue
			}
			printNode(b, k, precRep)
		}
		if ctx > precCat {
			b.WriteByte(')')
		}
	case *Alt:
		if ctx > precAlt {
			b.WriteByte('(')
		}
		for i, k := range t.Kids {
			if i > 0 {
				b.WriteByte('|')
			}
			printNode(b, k, precCat)
		}
		if ctx > precAlt {
			b.WriteByte(')')
		}
	case *Plus:
		printNode(b, t.Kid, precAtom)
		b.WriteByte('+')
	case *Star:
		printNode(b, t.Kid, precAtom)
		b.WriteByte('*')
	case *Opt:
		printNode(b, t.Kid, precAtom)
		b.WriteByte('?')
	default:
		b.WriteString("<?>")
	}
}

func startsWithNameRune(n Node) bool {
	switch t := n.(type) {
	case *Sym:
		return isNameRune(t.R)
	case *Cat:
		if len(t.Kids) > 0 {
			return startsWithNameRune(t.Kids[0])
		}
	case *Plus:
		return startsWithNameRune(t.Kid)
	case *Star:
		return startsWithNameRune(t.Kid)
	case *Opt:
		return startsWithNameRune(t.Kid)
	}
	return false
}

// Equal reports structural equality of two trees after simplification and
// canonical flattening; it is a syntactic check used in tests, not language
// equivalence.
func Equal(a, b Node) bool { return String(Simplify(a)) == String(Simplify(b)) }
