package xregex

import (
	"fmt"
	"unicode"
)

// Parse parses an xregex in the textual syntax of this library:
//
//	a b 0 …        terminal symbols (any non-reserved, non-space rune)
//	$x             reference of variable x
//	$x{α}          definition of variable x
//	αβ             concatenation
//	α|β            alternation (the paper's ∨)
//	α+  α*  α?     repetition (α* = α+ ∨ ε, α? = α ∨ ε as in the paper)
//	(α)            grouping; () is ε
//	[abc] [^ab] .  character classes and the Σ-wildcard
//	\(             escaped reserved symbol
//
// Whitespace between tokens is ignored. Variable names consist of letters,
// digits and underscores. Parse validates that the result is a well-formed
// xregex per Definition 3 (no definition x{α} with x ∈ var(α)) and that it
// is sequential (§3); it does not require acyclicity, which is a property of
// conjunctive tuples (checked by the cxrpq package).
func Parse(src string) (Node, error) {
	p := &parser{src: []rune(src)}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("xregex: unexpected %q at offset %d in %q", p.src[p.pos], p.pos, src)
	}
	if err := ValidateWellFormed(n); err != nil {
		return nil, fmt.Errorf("xregex: %v in %q", err, src)
	}
	if !IsSequential(n) {
		return nil, fmt.Errorf("xregex: expression is not sequential: %q", src)
	}
	return n, nil
}

// MustParse is Parse but panics on error; for tests and package examples.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

const reserved = "(){}[]|+*?.$\\"

func isReserved(r rune) bool {
	for _, x := range reserved {
		if x == r {
			return true
		}
	}
	return false
}

func isNameRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	src []rune
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *parser) peek() (rune, bool) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseAlt() (Node, error) {
	first, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		r, ok := p.peek()
		if !ok || r != '|' {
			break
		}
		p.pos++
		next, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Alt{Kids: kids}, nil
}

func (p *parser) parseCat() (Node, error) {
	var kids []Node
	for {
		r, ok := p.peek()
		if !ok || r == '|' || r == ')' || r == '}' {
			break
		}
		atom, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		kids = append(kids, atom)
	}
	switch len(kids) {
	case 0:
		return &Eps{}, nil
	case 1:
		return kids[0], nil
	}
	return &Cat{Kids: kids}, nil
}

func (p *parser) parseRepeat() (Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		r, ok := p.peek()
		if !ok {
			break
		}
		switch r {
		case '+':
			p.pos++
			n = &Plus{Kid: n}
		case '*':
			p.pos++
			n = &Star{Kid: n}
		case '?':
			p.pos++
			n = &Opt{Kid: n}
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *parser) parseAtom() (Node, error) {
	r, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("xregex: unexpected end of expression")
	}
	switch r {
	case '(':
		p.pos++
		if r2, ok := p.peek(); ok && r2 == ')' {
			p.pos++
			return &Eps{}, nil
		}
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if r2, ok := p.peek(); !ok || r2 != ')' {
			return nil, fmt.Errorf("xregex: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return &Class{Neg: true}, nil
	case '$':
		return p.parseVar()
	case '\\':
		p.pos++
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xregex: dangling escape")
		}
		sym := p.src[p.pos]
		p.pos++
		return &Sym{R: sym}, nil
	case ')', '}', ']', '|', '+', '*', '?', '{':
		return nil, fmt.Errorf("xregex: unexpected %q at offset %d", r, p.pos)
	default:
		p.pos++
		return &Sym{R: r}, nil
	}
}

func (p *parser) parseClass() (Node, error) {
	p.pos++ // consume '['
	neg := false
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		neg = true
		p.pos++
	}
	var set []rune
	for {
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xregex: missing ']'")
		}
		r := p.src[p.pos]
		if r == ']' {
			p.pos++
			return NewClass(neg, set), nil
		}
		if r == '\\' {
			p.pos++
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("xregex: dangling escape in class")
			}
			r = p.src[p.pos]
		}
		set = append(set, r)
		p.pos++
	}
}

func (p *parser) parseVar() (Node, error) {
	p.pos++ // consume '$'
	start := p.pos
	for p.pos < len(p.src) && isNameRune(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("xregex: '$' must be followed by a variable name at offset %d", start)
	}
	name := string(p.src[start:p.pos])
	if p.pos < len(p.src) && p.src[p.pos] == '{' {
		p.pos++
		body, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if r, ok := p.peek(); !ok || r != '}' {
			return nil, fmt.Errorf("xregex: missing '}' for definition of $%s", name)
		}
		p.pos++
		return &Def{Var: name, Body: body}, nil
	}
	return &Ref{Var: name}, nil
}

// ValidateWellFormed checks the syntactic side conditions of Definition 3:
// a definition x{α} requires x ∉ var(α).
func ValidateWellFormed(n Node) error {
	switch t := n.(type) {
	case *Def:
		if Vars(t.Body)[t.Var] {
			return fmt.Errorf("definition of $%s contains $%s (violates Definition 3)", t.Var, t.Var)
		}
		return ValidateWellFormed(t.Body)
	case *Cat:
		for _, k := range t.Kids {
			if err := ValidateWellFormed(k); err != nil {
				return err
			}
		}
	case *Alt:
		for _, k := range t.Kids {
			if err := ValidateWellFormed(k); err != nil {
				return err
			}
		}
	case *Plus:
		return ValidateWellFormed(t.Kid)
	case *Star:
		return ValidateWellFormed(t.Kid)
	case *Opt:
		return ValidateWellFormed(t.Kid)
	}
	return nil
}
