package ecrpq

import (
	"fmt"
	"testing"

	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// testRNG is a tiny SplitMix-style generator (workload.RNG would import
// cxrpq and close an import cycle with this package).
type testRNG struct{ s uint64 }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randomDB mirrors workload.Random: named nodes plus random labelled edges.
func randomDB(seed int64, nodes, edges int, alphabet string) *graph.DB {
	r := &testRNG{s: uint64(seed)*2654435761 + 1}
	d := graph.New()
	for i := 0; i < nodes; i++ {
		d.Node(fmt.Sprintf("n%d", i))
	}
	al := []rune(alphabet)
	for i := 0; i < edges; i++ {
		d.AddEdge(r.intn(nodes), al[r.intn(len(al))], r.intn(nodes))
	}
	return d
}

// relEqual compares two relations row by row.
func relEqual(a, b *EdgeRel) bool {
	if a.NumNodes() != b.NumNodes() || a.Size() != b.Size() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		av, bv := a.Forward(u), b.Forward(u)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestRelCacheApplyDelta drives insert-only deltas through a populated
// relation cache and checks every maintained relation — retained,
// node-grown and frontier-extended — against a from-scratch RelationFor on
// the mutated database.
func TestRelCacheApplyDelta(t *testing.T) {
	labels := []xregex.Node{
		xregex.MustParse("a(b|c)*"), // touched by a/b/c deltas
		xregex.MustParse("c+"),      // disjoint from pure-a/b deltas
		xregex.MustParse("(a|b)?"),  // ε-accepting: new nodes gain identity rows
		xregex.MustParse("b*"),      // ε-accepting and touched by b deltas
		xregex.AnyWord(),            // universal: always extended
		&xregex.Empty{},             // empty language: always retained
	}
	for seed := int64(0); seed < 12; seed++ {
		db := randomDB(seed, 8, 20, "abc")
		sigma := []rune("abc")
		c := NewRelCache(0)
		for _, l := range labels {
			if _, err := c.For(db, l, sigma); err != nil {
				t.Fatalf("seed %d: For: %v", seed, err)
			}
		}
		r := &testRNG{s: uint64(seed^0x5ca1ab1e)*2654435761 + 1}
		for step := 0; step < 4; step++ {
			rev := db.Revision()
			// Random insert-only delta over the existing alphabet, sometimes
			// interning a fresh node.
			var delta graph.Delta
			for i := 0; i <= r.intn(3); i++ {
				from := db.Name(r.intn(db.NumNodes()))
				to := db.Name(r.intn(db.NumNodes()))
				if r.intn(4) == 0 {
					to = "fresh" + string(rune('a'+r.intn(26))) + db.Name(0)
				}
				delta.Add = append(delta.Add, graph.DeltaEdge{From: from, Label: []rune("abc")[r.intn(3)], To: to})
			}
			info, err := db.ApplyDelta(delta)
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			if info.FromRev != rev || !info.InsertOnly() {
				t.Fatalf("seed %d step %d: unexpected info %+v", seed, step, info)
			}
			if len(info.NewLabels) > 0 {
				t.Fatalf("seed %d step %d: delta over abc reported new labels %q", seed, step, string(info.NewLabels))
			}
			retained, extended, err := c.ApplyDelta(db, info)
			if err != nil {
				t.Fatalf("seed %d step %d: RelCache.ApplyDelta: %v", seed, step, err)
			}
			if retained+extended != len(labels) {
				t.Fatalf("seed %d step %d: %d retained + %d extended != %d entries",
					seed, step, retained, extended, len(labels))
			}
			for _, l := range labels {
				got, err := c.For(db, l, sigma) // must hit: maintenance keeps entries live
				if err != nil {
					t.Fatal(err)
				}
				want, err := RelationFor(db, l, sigma)
				if err != nil {
					t.Fatal(err)
				}
				if !relEqual(got, want) {
					t.Fatalf("seed %d step %d: maintained relation for %s diverged (size %d, want %d)",
						seed, step, xregex.String(l), got.Size(), want.Size())
				}
			}
		}
		st := c.Stats()
		if st.Retained == 0 || st.Extended == 0 {
			t.Fatalf("seed %d: expected both retained and extended entries, got %+v", seed, st)
		}
	}
}

// TestRelCacheDeltaDisjointRetains pins the classification: a delta touching
// only label c must retain (not recompute) relations whose alphabet is
// disjoint, and must frontier-extend the ones it touches.
func TestRelCacheDeltaDisjointRetains(t *testing.T) {
	db := graph.MustParse("u a v\nv b w\nw c u")
	sigma := []rune("abc")
	c := NewRelCache(0)
	ab := xregex.MustParse("(a|b)+")
	cc := xregex.MustParse("c+")
	for _, l := range []xregex.Node{ab, cc} {
		if _, err := c.For(db, l, sigma); err != nil {
			t.Fatal(err)
		}
	}
	info, err := db.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{{From: "u", Label: 'c', To: "w"}}})
	if err != nil {
		t.Fatal(err)
	}
	retained, extended, err := c.ApplyDelta(db, info)
	if err != nil {
		t.Fatal(err)
	}
	if retained != 1 || extended != 1 {
		t.Fatalf("retained=%d extended=%d, want 1/1", retained, extended)
	}
	got, _ := c.For(db, cc, sigma)
	want, _ := RelationFor(db, cc, sigma)
	if !relEqual(got, want) {
		t.Fatal("extended c+ relation diverged")
	}
	if !got.Has(0, 2) { // u -c-> w is the new pair
		t.Fatal("extended relation is missing the new pair")
	}
}

// TestLabelAlphabet pins the conservative classification of label ASTs.
func TestLabelAlphabet(t *testing.T) {
	cases := []struct {
		src       string
		syms      string
		universal bool
	}{
		{"a(b|c)*", "abc", false},
		{"[ab]d?", "abd", false},
		{"[^a]", "", true},
		{".*", "", true},
		{"$x{a}b", "ab", true}, // variables: conservative
	}
	for _, tc := range cases {
		syms, universal := labelAlphabet(xregex.MustParse(tc.src))
		if universal != tc.universal {
			t.Fatalf("%s: universal=%v, want %v", tc.src, universal, tc.universal)
		}
		for _, r := range tc.syms {
			if !syms[r] {
				t.Fatalf("%s: missing symbol %c", tc.src, r)
			}
		}
	}
}
