package ecrpq_test

import (
	"strings"
	"testing"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
)

func TestParseQueryRelations(t *testing.T) {
	sigma := []rune("ab")
	q, err := ecrpq.ParseQuery(`
ans(x1, y1, x2, y2)
x1 y1 : (a|b)+
x2 y2 : (a|b)+
rel equality 0 1
`, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Groups) != 1 || !q.IsER() {
		t.Fatalf("groups = %+v", q.Groups)
	}
	db := graph.MustParse("u a m\nm b v\nu2 a m2\nm2 b v2")
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// every pair of equal-word paths: the "a" prefixes, "b" suffixes and
	// "ab" full paths of both chains pair with each other: 3 word classes ×
	// 2² ordered pairs = 12
	if res.Len() != 12 {
		t.Fatalf("res = %v", res.Sorted())
	}
}

func TestParseQueryAllRelationKinds(t *testing.T) {
	sigma := []rune("ab")
	for _, src := range []string{
		"ans()\nx y : a*\nu v : a*\nrel equal-length 0 1",
		"ans()\nx y : a*\nu v : a*\nrel prefix 0 1",
		"ans()\nx y : a*\nu v : a*\nrel hamming:1 0 1",
		"ans()\nx y : a*\nu v : a*\nw z : a*\nrel equality 0 1 2",
	} {
		if _, err := ecrpq.ParseQuery(src, sigma); err != nil {
			t.Errorf("ParseQuery(%q): %v", src, err)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	sigma := []rune("ab")
	for _, src := range []string{
		"ans()\nx y : a*\nrel equality 0",             // arity < 2
		"ans()\nx y : a*\nrel prefix 0 0",             // duplicate edge in group
		"ans()\nx y : a*\nrel equality 0 7",           // out of range
		"ans()\nx y : a*\nrel nosuch 0 1",             // unknown kind
		"ans()\nx y : a*\nrel hamming:x 0 1",          // bad distance
		"ans()\nx y : a*\nu v : a*\nrel prefix 0 1 1", // prefix arity
	} {
		if _, err := ecrpq.ParseQuery(src, sigma); err == nil {
			t.Errorf("ParseQuery(%q): expected error", src)
		}
	}
}

func TestQueryStringRoundTripEquality(t *testing.T) {
	sigma := []rune("ab")
	q := ecrpq.MustParseQuery("ans(x, y)\nx y : a+\nu v : .*\nrel equality 0 1", sigma)
	out := q.String()
	if !strings.Contains(out, "rel equality 0 1") {
		t.Fatalf("String() lost the relation: %s", out)
	}
	q2, err := ecrpq.ParseQuery(out, sigma)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if len(q2.Groups) != 1 {
		t.Fatal("round trip lost group")
	}
}

func TestHammingQueryEndToEnd(t *testing.T) {
	sigma := []rune("ab")
	// two 2-letter paths differing in at most one position
	db := graph.MustParse(`
u a m
m b v
u2 a m2
m2 a v2
u3 b m3
m3 a v3
`)
	q := ecrpq.MustParseQuery(`
ans(x1, y1, x2, y2)
x1 y1 : ..
x2 y2 : ..
rel hamming:1 0 1
`, sigma)
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	u2, _ := db.Lookup("u2")
	v2, _ := db.Lookup("v2")
	u3, _ := db.Lookup("u3")
	v3, _ := db.Lookup("v3")
	if !res.Contains([]int{u, v, u2, v2}) {
		t.Error("ab vs aa (distance 1) should match")
	}
	if res.Contains([]int{u, v, u3, v3}) {
		t.Error("ab vs ba (distance 2) must not match")
	}
}
