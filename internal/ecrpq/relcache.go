package ecrpq

import (
	"sync"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// RelCache is a bounded cache of materialized EdgeRels keyed by the
// canonical print of the (classical) label plus the alphabet. It is the
// sharing point of the prepared-query session layer: one session owns one
// RelCache per database binding, so the relations derived by one evaluation
// are reused by every later — and every concurrent — evaluation on the same
// session. On overflow the whole epoch is dropped (entries are pure caches,
// so correctness is unaffected). The zero value is not usable; construct
// with NewRelCache. All methods are safe for concurrent use.
//
// Entries carry the metadata delta maintenance needs — the label's AST, its
// literal alphabet, ε-acceptance and the compile alphabet — so an
// insert-only database delta can retain, grow or frontier-extend each
// relation (ApplyDelta) instead of the historical whole-cache flush.
type RelCache struct {
	mu        sync.Mutex
	cap       int
	m         map[string]*relEntry
	hits      uint64
	misses    uint64
	evictions uint64
	retained  uint64
	extended  uint64
}

// relEntry is one cached relation plus the metadata classifying it against
// mutation deltas (see RelCache.ApplyDelta).
type relEntry struct {
	rel   *EdgeRel
	label xregex.Node
	sigma []rune

	syms      map[rune]bool // literal symbols of the label's language
	universal bool          // label may involve any symbol of Σ (negated class, variables)
	hasEps    bool          // ε ∈ L(label)
}

// DefaultRelCacheCap is the capacity used when NewRelCache receives n <= 0.
const DefaultRelCacheCap = 8192

// NewRelCache returns an empty relation cache holding at most n entries
// (n <= 0 selects DefaultRelCacheCap).
func NewRelCache(n int) *RelCache {
	if n <= 0 {
		n = DefaultRelCacheCap
	}
	return &RelCache{cap: n, m: map[string]*relEntry{}}
}

// For resolves the relation of label over db through the cache, computing
// and inserting it on a miss (see RelationFor).
func (c *RelCache) For(db *graph.DB, label xregex.Node, sigma []rune) (*EdgeRel, error) {
	return c.ForOpts(db, label, sigma, nil, false)
}

// ForOpts is For with streaming extensions: the relation build honors bud
// at BFS-level granularity, and with levels set the returned relation
// carries BFS first-hit levels (EdgeRel.Dist for ranked joins) — a cached
// level-less relation is upgraded in place on first ranked demand. A
// budget-truncated build returns engine.ErrCanceled and installs NOTHING:
// a partial relation in the shared cache would silently drop answers from
// every later query on the session.
func (c *RelCache) ForOpts(db *graph.DB, label xregex.Node, sigma []rune, bud *engine.Budget, levels bool) (*EdgeRel, error) {
	key := xregex.String(label) + "\x00" + string(sigma)
	c.mu.Lock()
	if e, ok := c.m[key]; ok && (!levels || e.rel.HasLevels()) {
		c.hits++
		c.mu.Unlock()
		return e.rel, nil
	}
	c.misses++
	c.mu.Unlock()
	r, err := RelationForEx(db, label, sigma, bud, levels)
	if err != nil {
		return nil, err
	}
	e := newRelEntry(r, label, sigma)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[key]; ok && (!levels || old.rel.HasLevels()) {
		return old.rel, nil // raced with another worker
	}
	if len(c.m) >= c.cap {
		c.m = map[string]*relEntry{}
		c.evictions++
	}
	c.m[key] = e
	return r, nil
}

// newRelEntry derives the delta-classification metadata of a freshly
// computed relation.
func newRelEntry(r *EdgeRel, label xregex.Node, sigma []rune) *relEntry {
	e := &relEntry{rel: r, label: label, sigma: sigma}
	e.syms, e.universal = labelAlphabet(label)
	if _, empty := label.(*xregex.Empty); !empty {
		if ent, err := compiledFor(label, sigma); err == nil {
			e.hasEps = ent.shape().HasEps
		} else {
			e.universal = true // unknown shape: treat conservatively
		}
	}
	return e
}

// RelCacheStats is a point-in-time snapshot of a RelCache's counters.
type RelCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // whole-epoch drops on overflow
	Retained  uint64 // delta maintenance: entries kept (possibly grown for new nodes)
	Extended  uint64 // delta maintenance: entries frontier-recomputed
	Size      int    // live entries
	Cap       int
}

// Stats returns a snapshot of the cache counters.
func (c *RelCache) Stats() RelCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RelCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Retained: c.retained, Extended: c.extended, Size: len(c.m), Cap: c.cap}
}

// Fork returns an independent copy of the cache for a successor database
// snapshot: the entry map and its relEntry structs are cloned (so a
// subsequent ApplyDelta on the fork rewrites its own entries), while the
// EdgeRel values themselves — immutable once built — stay shared with the
// parent. Readers of the parent cache therefore keep their pinned
// relations untouched. Counters carry over: a fork continues the session
// lineage's telemetry rather than restarting it.
func (c *RelCache) Fork() *RelCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &RelCache{cap: c.cap, m: make(map[string]*relEntry, len(c.m)),
		hits: c.hits, misses: c.misses, evictions: c.evictions,
		retained: c.retained, extended: c.extended}
	for k, e := range c.m {
		ce := *e
		n.m[k] = &ce
	}
	return n
}

// Reset drops every entry (the counters are kept); used by session
// invalidation after a database mutation.
func (c *RelCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*relEntry{}
}
