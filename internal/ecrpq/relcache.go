package ecrpq

import (
	"sync"

	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// RelCache is a bounded cache of materialized EdgeRels keyed by the
// canonical print of the (classical) label plus the alphabet. It is the
// sharing point of the prepared-query session layer: one session owns one
// RelCache per database binding, so the relations derived by one evaluation
// are reused by every later — and every concurrent — evaluation on the same
// session. On overflow the whole epoch is dropped (entries are pure caches,
// so correctness is unaffected). The zero value is not usable; construct
// with NewRelCache. All methods are safe for concurrent use.
type RelCache struct {
	mu        sync.Mutex
	cap       int
	m         map[string]*EdgeRel
	hits      uint64
	misses    uint64
	evictions uint64
}

// DefaultRelCacheCap is the capacity used when NewRelCache receives n <= 0.
const DefaultRelCacheCap = 8192

// NewRelCache returns an empty relation cache holding at most n entries
// (n <= 0 selects DefaultRelCacheCap).
func NewRelCache(n int) *RelCache {
	if n <= 0 {
		n = DefaultRelCacheCap
	}
	return &RelCache{cap: n, m: map[string]*EdgeRel{}}
}

// For resolves the relation of label over db through the cache, computing
// and inserting it on a miss (see RelationFor).
func (c *RelCache) For(db *graph.DB, label xregex.Node, sigma []rune) (*EdgeRel, error) {
	key := xregex.String(label) + "\x00" + string(sigma)
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, nil
	}
	c.misses++
	c.mu.Unlock()
	r, err := RelationFor(db, label, sigma)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[key]; ok { // raced with another worker
		return old, nil
	}
	if len(c.m) >= c.cap {
		c.m = map[string]*EdgeRel{}
		c.evictions++
	}
	c.m[key] = r
	return r, nil
}

// RelCacheStats is a point-in-time snapshot of a RelCache's counters.
type RelCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // whole-epoch drops on overflow
	Size      int    // live entries
	Cap       int
}

// Stats returns a snapshot of the cache counters.
func (c *RelCache) Stats() RelCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RelCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Size: len(c.m), Cap: c.cap}
}

// Reset drops every entry (the counters are kept); used by session
// invalidation after a database mutation.
func (c *RelCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*EdgeRel{}
}
