package ecrpq

// Differential tests of the sharded relation-construction path: with the
// engine shard knob swept over 1, 2, 4, GOMAXPROCS and 2·GOMAXPROCS, the
// relations materialized through engine.ReachBatch (RelationFor and the
// RelCache frontier-extension path) must equal the per-source engine.Reach
// results on the same graph, including after insert-only deltas.

import (
	"runtime"
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// shardSweep returns the deduplicated shard counts the differential tests
// sweep. 4 is always included so the frontier-exchange path runs even on a
// single-core test machine.
func shardSweep() []int {
	p := runtime.GOMAXPROCS(0)
	var out []int
	for _, k := range []int{1, 2, 4, p, 2 * p} {
		dup := false
		for _, seen := range out {
			if seen == k {
				dup = true
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}

// rowEqual compares one relation row against a per-source Reach result
// (both sorted; nil and empty are interchangeable).
func rowEqual(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// perSourceRows computes the baseline relation of label over db one source
// at a time with the scalar Reach kernel.
func perSourceRows(t *testing.T, db *graph.DB, label xregex.Node, sigma []rune) [][]int {
	t.Helper()
	m, err := xregex.Compile(label, sigma)
	if err != nil {
		t.Fatalf("compile %s: %v", xregex.String(label), err)
	}
	ix := db.Index()
	c := automata.NewSubsetCache(m)
	rows := make([][]int, db.NumNodes())
	for u := range rows {
		rows[u] = engine.Reach(ix, c, u, true)
	}
	return rows
}

// TestShardedRelationForMatchesPerSourceReach: RelationFor under every
// swept shard count must materialize exactly the per-source Reach relation,
// on graphs large enough that the kernel really shards.
func TestShardedRelationForMatchesPerSourceReach(t *testing.T) {
	restore := engine.SetShards(1)
	defer engine.SetShards(restore)
	sigma := []rune("abc")
	labels := []xregex.Node{
		xregex.MustParse("a(b|c)*"),
		xregex.MustParse("(a|b)+c?"),
		xregex.MustParse("c*a"),
	}
	for seed := int64(1); seed <= 2; seed++ {
		nodes := 150 + int(seed)*70 // above the kernel's single-shard gate
		db := randomDB(seed, nodes, 5*nodes, "abc")
		for _, l := range labels {
			want := perSourceRows(t, db, l, sigma)
			for _, k := range shardSweep() {
				engine.SetShards(k)
				rel, err := RelationFor(db, l, sigma)
				if err != nil {
					t.Fatalf("seed %d shards %d: RelationFor(%s): %v", seed, k, xregex.String(l), err)
				}
				for u := 0; u < nodes; u++ {
					if !rowEqual(rel.Forward(u), want[u]) {
						t.Fatalf("seed %d shards %d label %s: row %d: got %v want %v",
							seed, k, xregex.String(l), u, rel.Forward(u), want[u])
					}
				}
			}
		}
	}
}

// TestShardedRelCacheDeltaMatchesPerSource drives insert-only deltas
// through a relation cache under every swept shard count: the maintained
// relations — grown through the batched frontier-extension path — must
// keep matching per-source Reach on the mutated database.
func TestShardedRelCacheDeltaMatchesPerSource(t *testing.T) {
	restore := engine.SetShards(1)
	defer engine.SetShards(restore)
	sigma := []rune("abc")
	labels := []xregex.Node{
		xregex.MustParse("a(b|c)*"),
		xregex.MustParse("(a|b)?"), // ε-accepting: new nodes gain identity rows
		xregex.AnyWord(),           // universal: always extended
	}
	for _, k := range shardSweep() {
		engine.SetShards(k)
		db := randomDB(int64(100+k), 160, 640, "abc")
		c := NewRelCache(0)
		for _, l := range labels {
			if _, err := c.For(db, l, sigma); err != nil {
				t.Fatalf("shards %d: For: %v", k, err)
			}
		}
		r := &testRNG{s: uint64(k)*0x9e3779b9 + 5}
		for step := 0; step < 3; step++ {
			var delta graph.Delta
			for i := 0; i <= r.intn(4); i++ {
				to := db.Name(r.intn(db.NumNodes()))
				if r.intn(4) == 0 {
					to = "fresh" + string(rune('a'+r.intn(26)))
				}
				delta.Add = append(delta.Add, graph.DeltaEdge{
					From:  db.Name(r.intn(db.NumNodes())),
					Label: []rune("abc")[r.intn(3)],
					To:    to,
				})
			}
			info, err := db.ApplyDelta(delta)
			if err != nil {
				t.Fatalf("shards %d step %d: ApplyDelta: %v", k, step, err)
			}
			if _, _, err := c.ApplyDelta(db, info); err != nil {
				t.Fatalf("shards %d step %d: RelCache.ApplyDelta: %v", k, step, err)
			}
			for _, l := range labels {
				rel, err := c.For(db, l, sigma)
				if err != nil {
					t.Fatal(err)
				}
				want := perSourceRows(t, db, l, sigma)
				for u := 0; u < db.NumNodes(); u++ {
					if !rowEqual(rel.Forward(u), want[u]) {
						t.Fatalf("shards %d step %d label %s: row %d diverged from per-source Reach",
							k, step, xregex.String(l), u)
					}
				}
			}
		}
		if st := c.Stats(); st.Extended == 0 {
			t.Fatalf("shards %d: no relation was frontier-extended: %+v", k, st)
		}
	}
}
