package ecrpq_test

import (
	"testing"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
)

// multiBottomRelation builds the arity-3 relation {(a^n, ε, ε) : n ≥ 1}:
// every transition tuple carries two ⊥ columns, so two components freeze in
// the same product step. Regression test for the frozen-component option
// buffers aliasing each other (components 2 and 3 must stay at their own
// source nodes, not each other's).
func multiBottomRelation() *ecrpq.NFARelation {
	b := ecrpq.NewRelationBuilder(3)
	s1 := b.AddState()
	b.SetFinal(s1)
	if err := b.AddTr(0, []rune{'a', ecrpq.Bottom, ecrpq.Bottom}, s1); err != nil {
		panic(err)
	}
	if err := b.AddTr(s1, []rune{'a', ecrpq.Bottom, ecrpq.Bottom}, s1); err != nil {
		panic(err)
	}
	return b.Build()
}

func TestExpandNFARelMultiBottomAgainstOracle(t *testing.T) {
	db := graph.MustParse("n0 a n1\nn1 a n2")
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery(
			"ans(x1, y1, x2, y2, x3, y3)\nx1 y1 : a*\nx2 y2 : a*\nx3 y3 : a*"),
		Groups: []ecrpq.Group{{Edges: []int{0, 1, 2}, Rel: multiBottomRelation()}},
	}
	got, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalECRPQ(q, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("engine %v\noracle %v", got.Sorted(), want.Sorted())
	}
	// Frozen components must end where they started.
	for _, tup := range got.Sorted() {
		if tup[2] != tup[3] || tup[4] != tup[5] {
			t.Fatalf("frozen component moved: %v", tup)
		}
	}
	if got.Len() == 0 {
		t.Fatal("expected matches (n0-a->n1-a->n2 satisfies component 1)")
	}
}
