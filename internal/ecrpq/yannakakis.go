package ecrpq

// The acyclic-join specialization (planner v2). When the conjunct graph
// of a join over materialized relations admits a join tree (GYO
// reduction, planner.BuildJoinTree), the generic backtracking search is
// replaced by Yannakakis' algorithm: a bottom-up semijoin pass filters
// every parent relation by its children, a top-down pass filters every
// child by its parent, and a final enumeration over the fully reduced
// relations is backtrack-free — total work linear in the relation sizes
// plus the output, where backtracking can spend time exponential in the
// query size on dead-end prefixes. The enumeration pass speaks the
// JoinRelationsStream yield contract (projected tuple + summed
// EdgeRel.Dist cost, no dedup, budget polled per step), so the PR 7
// cursors and budgets ride it unchanged. Subtrees containing no output
// variable are existence-checked by the semijoin passes alone and never
// enumerated (the free-connex trick) — disabled in ranked mode, where
// every atom's Dist must flow into the witness cost.

import (
	"sort"

	"cxrpq/internal/engine"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
)

// tryYannakakis is the evaluator-level dispatch: for a materialized
// (non-lazy) run over a group-free query whose minimized conjunct graph
// is acyclic, and whose estimated backtracking cost exceeds both the
// semijoin floor and YannakakisGain times the cost of materializing the
// kept relations, it builds the per-edge relations and runs the
// Yannakakis program into sink. It reports whether it ran — false means
// the caller should take the generic backtracking join.
func (ev *evaluator) tryYannakakis(pre map[string]int, sink StreamFunc) bool {
	if !planner.YannakakisEnabled() || ev.lazy || len(ev.q.Groups) > 0 {
		return false
	}
	floor := planner.SemijoinFloor()
	if floor < 0 {
		return false
	}
	var kept []int
	for i := range ev.q.Pattern.Edges {
		if !ev.dropped[i] {
			kept = append(kept, i)
		}
	}
	if len(kept) < 2 {
		return false // a single relation scan gains nothing from semijoins
	}
	atoms := make([]planner.Atom, len(kept))
	mat := 0.0
	for j, ei := range kept {
		e := ev.q.Pattern.Edges[ei]
		est := ev.ents[ei].shape().Estimate(ev.stats)
		atoms[j] = planner.Atom{From: e.From, To: e.To, Est: est}
		mat += est.Pairs + float64(est.Nodes)
	}
	spec := planner.Order(atoms, boundSet(pre))
	if !spec.CostBased || spec.Cost < floor || spec.Cost < mat*planner.YannakakisGain() {
		return false
	}
	refs := make([]planner.EdgeRef, len(ev.q.Pattern.Edges))
	for i, e := range ev.q.Pattern.Edges {
		refs[i] = planner.EdgeRef{From: e.From, To: e.To}
	}
	tree, ok := planner.BuildJoinTree(refs, ev.dropped)
	if !ok {
		planner.CountCyclicFallback()
		return false
	}
	rels := make([]*EdgeRel, len(ev.q.Pattern.Edges))
	for _, ei := range kept {
		r, err := RelationForW(ev.db, ev.q.Pattern.Edges[ei].Label, ev.sigma, ev.bud, ev.ranked, ev.rankedWeight())
		if err != nil {
			// Budget-truncated (or otherwise failed) materialization:
			// fall back — a canceled budget unwinds the backtracking
			// join immediately anyway.
			return false
		}
		rels[ei] = r
	}
	yannakakisStream(ev.q.Pattern, rels, tree, pre, ev.bud, sink)
	return true
}

// yanRel is one atom's relation with a pair-level liveness bitset laid
// over the EdgeRel's forward adjacency (flattened positions, prefix
// offsets per source). The semijoin passes only ever clear bits.
type yanRel struct {
	r        *EdgeRel
	from, to string
	selfLoop bool
	off      []int // off[u] = flattened position of fwd[u][0]; len n+1
	alive    []uint64
	live     int
}

func bitGet(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(b []uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(b []uint64, i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

// newYanRel builds the liveness overlay, pre-filtering by a self-loop
// constraint (From == To atoms keep only diagonal pairs) and by any
// pre-bound endpoint variables.
func newYanRel(r *EdgeRel, from, to string, pre map[string]int) *yanRel {
	n := r.NumNodes()
	y := &yanRel{r: r, from: from, to: to, selfLoop: from == to}
	y.off = make([]int, n+1)
	for u := 0; u < n; u++ {
		y.off[u+1] = y.off[u] + len(r.Forward(u))
	}
	total := y.off[n]
	y.alive = make([]uint64, (total+63)/64)
	pf, pfok := pre[from]
	pt, ptok := pre[to]
	for u := 0; u < n; u++ {
		if pfok && u != pf {
			continue
		}
		for i, v := range r.Forward(u) {
			if y.selfLoop && v != u {
				continue
			}
			if ptok && v != pt {
				continue
			}
			bitSet(y.alive, y.off[u]+i)
			y.live++
		}
	}
	return y
}

// pos returns the flattened position of (u, v), or -1 if absent.
func (y *yanRel) pos(u, v int) int {
	ws := y.r.Forward(u)
	i := sort.SearchInts(ws, v)
	if i < len(ws) && ws[i] == v {
		return y.off[u] + i
	}
	return -1
}

// hasAlive reports whether the pair (u, v) is present and still live.
func (y *yanRel) hasAlive(u, v int) bool {
	if u < 0 || u >= len(y.off)-1 {
		return false
	}
	p := y.pos(u, v)
	return p >= 0 && bitGet(y.alive, p)
}

// value resolves a shared variable to its side of the pair.
func (y *yanRel) value(z string, u, v int) int {
	if z == y.from {
		return u
	}
	return v
}

// eachAlive visits every live pair; returning false stops the sweep.
func (y *yanRel) eachAlive(f func(u, v int, p int) bool) {
	n := len(y.off) - 1
	for u := 0; u < n; u++ {
		if y.off[u] == y.off[u+1] {
			continue
		}
		for i, v := range y.r.Forward(u) {
			p := y.off[u] + i
			if bitGet(y.alive, p) && !f(u, v, p) {
				return
			}
		}
	}
}

// support returns the bitset of node values variable z takes over the
// live pairs.
func (y *yanRel) support(z string) []uint64 {
	n := len(y.off) - 1
	sup := make([]uint64, (n+63)/64)
	y.eachAlive(func(u, v, _ int) bool {
		bitSet(sup, y.value(z, u, v))
		return true
	})
	return sup
}

// filter clears every live pair the predicate rejects.
func (y *yanRel) filter(keep func(u, v int) bool) {
	y.eachAlive(func(u, v, p int) bool {
		if !keep(u, v) {
			bitClear(y.alive, p)
			y.live--
		}
		return true
	})
}

// semijoin filters p's live pairs to those joinable with a live pair of c
// on the given shared variables: a proper pairwise intersection when the
// atoms are parallel (both endpoints shared), an endpoint-support filter
// on one shared variable, and the cross-product rule (empty child ⇒
// empty parent) when the atoms share nothing. This is the relation-level
// operation arc consistency (planner.Reduce) only approximates: parallel
// relations {(a,b),(c,d)} and {(a,d),(c,b)} pass domain filtering but
// their semijoin is empty.
func semijoin(p, c *yanRel, shared []string) {
	switch len(shared) {
	case 0:
		if c.live == 0 {
			p.filter(func(int, int) bool { return false })
		}
	case 1:
		z := shared[0]
		sup := c.support(z)
		p.filter(func(u, v int) bool { return bitGet(sup, p.value(z, u, v)) })
	default:
		swapped := c.from != p.from
		p.filter(func(u, v int) bool {
			if swapped {
				u, v = v, u
			}
			return c.hasAlive(u, v)
		})
	}
}

// yannakakisStream evaluates the join of g over rels along the join tree
// and streams the output projections through yield under the
// JoinRelationsStream contract. Atoms outside the tree (Parent == -2,
// i.e. minimized duplicates the caller masked out of BuildJoinTree) are
// ignored; pre pre-binds node variables Check-style. The budget is
// polled per enumeration step; cancellation unwinds with the sound
// partial output already yielded.
func yannakakisStream(g *pattern.Graph, rels []*EdgeRel, tree *planner.JoinTree, pre map[string]int, bud *engine.Budget, yield func(t pattern.Tuple, cost int) bool) {
	planner.CountAcyclicPlan()
	nodes := make([]*yanRel, len(g.Edges))
	ranked := false
	for _, i := range tree.Order {
		e := g.Edges[i]
		nodes[i] = newYanRel(rels[i], e.From, e.To, pre)
		if rels[i].HasLevels() {
			ranked = true
		}
	}

	// Pass 1, leaves up: filter every parent by its children.
	planner.CountSemijoinPass()
	for k := len(tree.Order) - 1; k >= 0; k-- {
		i := tree.Order[k]
		if p := tree.Parent[i]; p >= 0 {
			semijoin(nodes[p], nodes[i], tree.Shared[i])
		}
	}
	if len(tree.Order) > 0 && nodes[tree.Order[0]].live == 0 {
		return // the root drained: the join is empty
	}
	// Pass 2, root down: filter every child by its parent. After this the
	// relations are fully reduced — every live pair extends to a full
	// answer, which is what makes the enumeration backtrack-free.
	planner.CountSemijoinPass()
	for _, i := range tree.Order {
		if p := tree.Parent[i]; p >= 0 {
			semijoin(nodes[i], nodes[p], tree.Shared[i])
		}
	}

	// Neededness: a variable must be bound during enumeration when it is
	// an output variable or is shared between two enumerated atoms; an
	// atom must be enumerated when its subtree contains a needed atom
	// (the connected hull of the output atoms — outside it, the semijoin
	// passes already guarantee existence). Ranked mode enumerates
	// everything so each atom's Dist reaches the witness cost.
	need := map[string]bool{}
	for _, z := range g.Out {
		need[z] = true
	}
	inS := make([]bool, len(g.Edges))
	for k := len(tree.Order) - 1; k >= 0; k-- {
		i := tree.Order[k]
		e := g.Edges[i]
		if ranked || need[e.From] || need[e.To] {
			inS[i] = true
		}
		if inS[i] && tree.Parent[i] >= 0 {
			inS[tree.Parent[i]] = true
		}
	}
	var enum []int
	for _, i := range tree.Order {
		if inS[i] {
			enum = append(enum, i)
			for _, z := range tree.Shared[i] {
				need[z] = true
			}
		}
	}

	assign := map[string]int{}
	for z, v := range pre {
		assign[z] = v
	}
	project := func(cost int) bool {
		t := make(pattern.Tuple, len(g.Out))
		for i, z := range g.Out {
			v, ok := assign[z]
			if !ok {
				return true // output var not constrained; Validate prevents this
			}
			t[i] = v
		}
		return yield(t, cost)
	}
	stop := false
	var rec func(k, cost int)
	rec = func(k, cost int) {
		if stop {
			return
		}
		if k == len(enum) {
			if !project(cost) {
				stop = true
			}
			return
		}
		if bud.Canceled() {
			stop = true
			return
		}
		y := nodes[enum[k]]
		u, uok := assign[y.from]
		v, vok := assign[y.to]
		dist := func(u, v int) int { return int(y.r.Dist(u, v)) }
		switch {
		case uok && vok: // includes bound self-loops (same var twice)
			if y.hasAlive(u, v) {
				rec(k+1, cost+dist(u, v))
			}
		case uok && !y.selfLoop:
			if ranked || need[y.to] {
				for i, w := range y.r.Forward(u) {
					if !bitGet(y.alive, y.off[u]+i) {
						continue
					}
					assign[y.to] = w
					rec(k+1, cost+dist(u, w))
					if stop {
						break
					}
				}
				delete(assign, y.to)
			} else {
				// The target is needed by nothing downstream: one live
				// pair proves the extension (full reduction), unranked
				// mode carries no Dist, so don't fan out over targets.
				for i := range y.r.Forward(u) {
					if bitGet(y.alive, y.off[u]+i) {
						rec(k+1, cost)
						break
					}
				}
			}
		case vok && !y.selfLoop:
			if ranked || need[y.from] {
				for _, w := range y.r.Backward(v) {
					if !y.hasAlive(w, v) {
						continue
					}
					assign[y.from] = w
					rec(k+1, cost+dist(w, v))
					if stop {
						break
					}
				}
				delete(assign, y.from)
			} else {
				for _, w := range y.r.Backward(v) {
					if y.hasAlive(w, v) {
						rec(k+1, cost)
						break
					}
				}
			}
		default:
			needF := ranked || need[y.from]
			needT := ranked || need[y.to]
			switch {
			case y.selfLoop:
				// Live pairs are diagonal by construction.
				prev := -1
				y.eachAlive(func(u, _, _ int) bool {
					if !needF {
						rec(k+1, cost)
						return false
					}
					if u == prev {
						return true
					}
					prev = u
					assign[y.from] = u
					rec(k+1, cost+dist(u, u))
					return !stop
				})
				if needF {
					delete(assign, y.from)
				}
			case needF && needT:
				y.eachAlive(func(u, v, _ int) bool {
					assign[y.from], assign[y.to] = u, v
					rec(k+1, cost+dist(u, v))
					return !stop
				})
				delete(assign, y.from)
				delete(assign, y.to)
			case needF:
				prevU := -1
				y.eachAlive(func(u, _, _ int) bool {
					if u == prevU {
						return true
					}
					prevU = u
					assign[y.from] = u
					rec(k+1, cost)
					return !stop
				})
				delete(assign, y.from)
			case needT:
				sup := y.support(y.to)
				for w := 0; w < y.r.NumNodes() && !stop; w++ {
					if !bitGet(sup, w) {
						continue
					}
					assign[y.to] = w
					rec(k+1, cost)
				}
				delete(assign, y.to)
			default:
				if y.live > 0 {
					rec(k+1, cost)
				}
			}
		}
	}
	rec(0, 0)
}
