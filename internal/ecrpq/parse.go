package ecrpq

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// ParseQuery parses the textual ECRPQ format: the CXRPQ pattern format
// (ans clause + edges with classical regular expressions) extended with
// relation lines referring to edges by 0-based index:
//
//	ans(x, y)
//	x y : (ab)+
//	u v : .*
//	rel equality 0 1
//	rel equal-length 0 1
//	rel prefix 0 1
//	rel hamming:2 0 1
//
// Relation kinds: equality (any arity), equal-length (any arity), prefix
// (binary), hamming:<d> (binary). The relation alphabet is taken from
// sigma; pass the database alphabet (merged with the query's symbols by
// the engine as needed).
func ParseQuery(src string, sigma []rune) (*Query, error) {
	var patternLines, relLines []string
	sc := bufio.NewScanner(strings.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "rel ") || line == "rel" {
			relLines = append(relLines, line)
			continue
		}
		patternLines = append(patternLines, line)
	}
	g, err := pattern.ParseQuery(strings.Join(patternLines, "\n"))
	if err != nil {
		return nil, err
	}
	q := &Query{Pattern: g}
	sigma = xregex.MergeAlphabets(sigma, xregex.AlphabetOf(g.Labels()...))
	for _, line := range relLines {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("ecrpq: relation line needs kind and at least two edges: %q", line)
		}
		kind := fields[1]
		var edges []int
		for _, f := range fields[2:] {
			i, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("ecrpq: bad edge index %q in %q", f, line)
			}
			edges = append(edges, i)
		}
		if len(edges) < 2 {
			return nil, fmt.Errorf("ecrpq: relation needs at least two edges: %q", line)
		}
		var rel Relation
		switch {
		case kind == "equality":
			rel = &Equality{N: len(edges)}
		case kind == "equal-length":
			rel = EqualLength(len(edges), sigma)
		case kind == "prefix":
			if len(edges) != 2 {
				return nil, fmt.Errorf("ecrpq: prefix relation is binary: %q", line)
			}
			rel = PrefixRelation(sigma)
		case strings.HasPrefix(kind, "hamming:"):
			d, err := strconv.Atoi(strings.TrimPrefix(kind, "hamming:"))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("ecrpq: bad hamming distance in %q", line)
			}
			if len(edges) != 2 {
				return nil, fmt.Errorf("ecrpq: hamming relation is binary: %q", line)
			}
			rel = HammingAtMost(d, sigma)
		default:
			return nil, fmt.Errorf("ecrpq: unknown relation kind %q", kind)
		}
		q.Groups = append(q.Groups, Group{Edges: edges, Rel: rel})
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(src string, sigma []rune) *Query {
	q, err := ParseQuery(src, sigma)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the query in the ParseQuery format (relation parameters
// such as the hamming distance are not reconstructible from the NFA and are
// rendered as "nfa" comments).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Pattern.String())
	for _, g := range q.Groups {
		switch g.Rel.(type) {
		case *Equality:
			b.WriteString("rel equality")
		default:
			b.WriteString("# rel nfa")
		}
		for _, ei := range g.Edges {
			fmt.Fprintf(&b, " %d", ei)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
