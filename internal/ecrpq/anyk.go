package ecrpq

// Incremental any-k ranked enumeration (ROADMAP item 3). The legacy ranked
// path drained the whole enumeration and sorted it before serving row one;
// AnyK replaces the drain with a best-first search over partial assignments,
// Lawler-style: the answer space is partitioned by the rank of the extension
// chosen at each join constraint, every node of the partition tree is pushed
// exactly once, and the priority key of a node is
//
//	cost(determined constraints) + lb(remaining constraints)
//
// where lb is an admissible per-suffix lower bound — each undetermined
// constraint contributes its global minimum witness contribution (the
// cheapest level any binding of that atom carries; see EdgeRel.MinDist and
// edgeMinCost). Keys are monotone along tree edges: a child determines one
// more constraint at actual cost d ≥ that constraint's minimum, so pops come
// off the heap in nondecreasing key order and a complete assignment (whose
// key IS its exact cost, the suffix bound being empty) is emitted in
// nondecreasing cost. Top-k therefore costs O(k) tree expansions after the
// first constraint's extension list is built — no full drain.
//
// Extension lists are computed lazily per (constraint, bound-variable
// values) and memoized: a popped node materializes the cost-sorted list of
// ways to satisfy its next constraint, pushes the child for its rank and one
// sibling for rank+1, and nothing else. Emission is NOT deduplicated (the
// same tuple may complete under several assignments, each with its own
// cost); the cxrpq layer keeps the first — i.e. cheapest — occurrence,
// which is exact precisely because costs are nondecreasing.
//
// Multiple roots (VSF branch combos, bounded-engine variable mappings) share
// one heap, so the merged emission across all of them is globally
// nondecreasing too.

import (
	"encoding/binary"
	"sort"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
)

// anykExt is one way to satisfy a constraint: the constraint's witness
// contribution and the values of its variable set (rt.vars[ci]) under that
// choice. Lists of these are cost-sorted and memoized per root.
type anykExt struct {
	d    int32
	vals []int
}

// anykRoot is one independent enumeration source feeding the shared heap:
// either a query-form root (an evaluator, expansions through
// satisfyEdgeCost/satisfyGroupCost) or a join-form root (a relation-free
// pattern over materialized EdgeRels, the bounded engine's leaf shape).
type anykRoot struct {
	bud *engine.Budget

	// query form (ev != nil)
	ev    *evaluator
	order []constraintRef

	// join form
	g      *pattern.Graph
	rels   []*EdgeRel
	jorder []int

	out  []string
	vars [][]string // per order position: the constraint's variable set (unique)
	lb   []int32    // lb[i] = admissible lower bound of constraints i..end; lb[len] = 0
	memo map[string][]anykExt

	hint    []int     // per order position: last extension-list length (presize hint)
	scratch []anykExt // counting-sort scratch, reused across extends
}

func (rt *anykRoot) orderLen() int {
	if rt.ev != nil {
		return len(rt.order)
	}
	return len(rt.jorder)
}

// anykNode is one node of the Lawler partition tree: constraints before ci
// are determined in assign at total witness cost cost, and the node stands
// for choosing extension rank of constraint ci (a node with ci == orderLen
// is a complete assignment). assign is shared with the node's siblings —
// only child creation copies it.
type anykNode struct {
	root   *anykRoot
	ci     int
	rank   int
	cost   int32
	assign map[string]int
}

// AnyK is the incremental ranked enumerator. Zero or more roots are added
// (AddQuery/AddJoin), then Next pops complete assignments in globally
// nondecreasing witness cost until the space is exhausted or the budget
// cancels. Not safe for concurrent use.
type AnyK struct {
	bud   *engine.Budget
	h     wHeap
	nodes []anykNode
	ord   int64
}

// NewAnyK returns an enumerator under an optional budget (nil = unlimited),
// polled once per pop and inside every extension computation.
func NewAnyK(bud *engine.Budget) *AnyK {
	return &AnyK{bud: bud}
}

func (a *AnyK) pushNode(nd anykNode, key int32) {
	a.nodes = append(a.nodes, nd)
	a.ord++
	a.h.push(wItem{cost: key, ord: a.ord, idx: len(a.nodes) - 1})
}

func uniqueVars(names ...string) []string {
	out := names[:0:0]
	for _, z := range names {
		dup := false
		for _, y := range out {
			if y == z {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, z)
		}
	}
	return out
}

// edgeMinCost is the admissible per-atom bound for a query-form edge: 0 when
// the edge language accepts the empty word (a node can witness itself for
// free), otherwise the cheapest single traversal — 1 under unit cost, the
// minimum clamped symbol weight under a pluggable weight.
func (ev *evaluator) edgeMinCost(ei int) int32 {
	c := ev.ents[ei].cache
	if c.Final(c.Start()) {
		return 0
	}
	if ev.weight == nil {
		return 1
	}
	nSyms := ev.ix.NumSyms()
	if nSyms == 0 {
		return 0
	}
	min := ev.symCost(ev.ix.Sym(0))
	for s := int32(1); s < int32(nSyms); s++ {
		if w := ev.symCost(ev.ix.Sym(s)); w < min {
			min = w
		}
	}
	return min
}

// AddQuery adds a query-form root: q enumerated over db under the
// enumerator's budget, ranked, with an optional pluggable edge weight.
func (a *AnyK) AddQuery(q *Query, db *graph.DB, weight engine.Weight) error {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return err
	}
	ev.bud, ev.ranked, ev.lazy, ev.weight = a.bud, true, true, weight
	order := ev.constraintOrder(nil)
	rt := &anykRoot{
		bud:   a.bud,
		ev:    ev,
		order: order,
		out:   q.Pattern.Out,
		vars:  make([][]string, len(order)),
		lb:    make([]int32, len(order)+1),
		memo:  map[string][]anykExt{},
	}
	for i, c := range order {
		if c.kind == cEdge {
			e := q.Pattern.Edges[c.idx]
			rt.vars[i] = uniqueVars(e.From, e.To)
		} else {
			g := q.Groups[c.idx]
			names := make([]string, 0, 2*len(g.Edges))
			for _, ei := range g.Edges {
				names = append(names, q.Pattern.Edges[ei].From, q.Pattern.Edges[ei].To)
			}
			rt.vars[i] = uniqueVars(names...)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		min := int32(0)
		if order[i].kind == cEdge {
			min = ev.edgeMinCost(order[i].idx)
		}
		rt.lb[i] = rt.lb[i+1] + min
	}
	a.pushNode(anykNode{root: rt, assign: map[string]int{}}, rt.lb[0])
	return nil
}

// AddJoin adds a join-form root: a relation-free pattern joined over
// materialized per-edge relations in the physical plan's order (nil spec
// falls back to the structural JoinOrder), with the variables of pre
// pre-bound. The relations should carry levels (RelationForW) for the costs
// to be meaningful; level-free relations enumerate at cost 0.
func (a *AnyK) AddJoin(g *pattern.Graph, rels []*EdgeRel, spec *planner.PlanSpec, pre map[string]int) {
	var jorder []int
	if spec != nil {
		jorder = spec.Order
	} else {
		jorder = JoinOrder(g, pre)
	}
	rt := &anykRoot{
		bud:    a.bud,
		g:      g,
		rels:   rels,
		jorder: jorder,
		out:    g.Out,
		vars:   make([][]string, len(jorder)),
		lb:     make([]int32, len(jorder)+1),
		memo:   map[string][]anykExt{},
	}
	for i, ei := range jorder {
		e := g.Edges[ei]
		rt.vars[i] = uniqueVars(e.From, e.To)
	}
	for i := len(jorder) - 1; i >= 0; i-- {
		min := int32(0)
		if r := rels[jorder[i]]; r != nil {
			min = r.MinDist()
		}
		rt.lb[i] = rt.lb[i+1] + min
	}
	assign := make(map[string]int, len(pre))
	for z, v := range pre {
		assign[z] = v
	}
	a.pushNode(anykNode{root: rt, assign: assign}, rt.lb[0])
}

// extKey identifies an extension list: the constraint position plus the
// bound-or-not value of each of its variables (the only parts of assign the
// satisfy paths read).
func (rt *anykRoot) extKey(ci int, assign map[string]int) string {
	buf := make([]byte, 0, 2+5*len(rt.vars[ci]))
	buf = binary.AppendVarint(buf, int64(ci))
	for _, z := range rt.vars[ci] {
		v, ok := assign[z]
		if !ok {
			v = -2
		}
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// extend materializes (or recalls) the cost-sorted extension list of
// constraint ci under assign. A budget-canceled computation may be partial
// and is not memoized.
func (rt *anykRoot) extend(ci int, assign map[string]int) []anykExt {
	key := rt.extKey(ci, assign)
	if exts, ok := rt.memo[key]; ok {
		return exts
	}
	vars := rt.vars[ci]
	// Presize from the previous list of the same constraint: siblings in the
	// partition tree materialize lists of similar length, and append-doubling
	// on the ~1k-wide cohort lists used to dominate allocation churn.
	if rt.hint == nil {
		rt.hint = make([]int, rt.orderLen())
	}
	h := rt.hint[ci]
	exts := make([]anykExt, 0, h)
	slab := make([]int, 0, h*len(vars)) // one backing array for every value tuple
	collect := func(d int) {
		base := len(slab)
		for _, z := range vars {
			slab = append(slab, assign[z]) // every constraint var is bound at yield time
		}
		exts = append(exts, anykExt{d: int32(d), vals: slab[base:len(slab):len(slab)]})
	}
	if rt.ev != nil {
		c := rt.order[ci]
		if c.kind == cEdge {
			rt.ev.satisfyEdgeCost(c.idx, assign, collect)
		} else {
			rt.ev.satisfyGroupCost(c.idx, assign, collect)
		}
	} else {
		rt.extendJoin(ci, assign, collect)
	}
	rt.hint[ci] = len(exts)
	rt.sortExts(exts)
	if !rt.bud.Canceled() {
		rt.memo[key] = exts
		rt.prefetchNext(ci, exts, assign)
	}
	return exts
}

// prefetchNext batches the per-source sweeps the cheapest cohort of a fresh
// extension list is about to trigger. Every extension tied at the minimum
// cost spawns a child with the same heap key, so before the enumerator can
// emit its first row at that key it expands all of them — and when the next
// constraint is an edge with exactly one endpoint bound, each expansion is
// one single-source reachability sweep. Issuing those sweeps individually
// wastes the sharded multi-source kernel; this collects the cohort's
// distinct sources and fills the evaluator's memos in one ReachBatchEx
// call. Extensions beyond the cheapest cohort are left to fault in lazily —
// under distinct costs (e.g. pluggable weights) the cohort is one node and
// the prefetch degenerates to a no-op.
func (rt *anykRoot) prefetchNext(ci int, exts []anykExt, assign map[string]int) {
	if rt.ev == nil || ci+1 >= len(rt.order) || len(exts) < 2 {
		return
	}
	c := rt.order[ci+1]
	if c.kind != cEdge {
		return
	}
	e := rt.ev.q.Pattern.Edges[c.idx]
	pos := func(z string) int {
		for i, y := range rt.vars[ci] {
			if y == z {
				return i
			}
		}
		return -1
	}
	_, fromBound := assign[e.From]
	_, toBound := assign[e.To]
	fi, ti := pos(e.From), pos(e.To)
	fromKnown, toKnown := fromBound || fi >= 0, toBound || ti >= 0
	if fromKnown == toKnown {
		return // both or neither endpoint determined: not a single-source sweep
	}
	idx := fi
	if toKnown {
		idx = ti
	}
	if idx < 0 {
		return // the determined endpoint is already fixed in assign: one source
	}
	cohort := exts[0].d
	seen := make(map[int]bool, len(exts))
	srcs := make([]int, 0, len(exts))
	for _, x := range exts {
		if x.d != cohort {
			break // sorted: the cheapest cohort is a prefix
		}
		if v := x.vals[idx]; !seen[v] {
			seen[v] = true
			srcs = append(srcs, v)
		}
	}
	if len(srcs) < 2 {
		return
	}
	if fromKnown {
		rt.ev.ensureForward(c.idx, srcs)
	} else {
		rt.ev.ensureBackward(c.idx, srcs)
	}
}

// sortExts orders an extension list by cost, stably (within a cost, the
// satisfy paths' deterministic enumeration order is preserved — rank
// indexing and cursor fast-forward both depend on it). Costs are small BFS
// levels or clamped weighted distances, so the common case is a stable
// counting sort into a root-owned scratch buffer — extension sorting used to
// dominate the time-to-first-row of cohort-heavy unit-cost queries through
// reflect-based SliceStable, and per-call scratch allocation through the
// zeroing of pointer-bearing memory. Wide or negative cost ranges fall back
// to the comparison sort.
func (rt *anykRoot) sortExts(exts []anykExt) {
	if len(exts) < 2 {
		return
	}
	maxD := int32(0)
	narrow := true
	for i := range exts {
		d := exts[i].d
		if d < 0 || d > 1<<20 {
			narrow = false
			break
		}
		if d > maxD {
			maxD = d
		}
	}
	if !narrow || int(maxD) > 4*len(exts)+1024 {
		sort.SliceStable(exts, func(i, j int) bool { return exts[i].d < exts[j].d })
		return
	}
	counts := make([]int32, maxD+2)
	for i := range exts {
		counts[exts[i].d+1]++
	}
	for d := 1; d < len(counts); d++ {
		counts[d] += counts[d-1]
	}
	if cap(rt.scratch) < len(exts) {
		rt.scratch = make([]anykExt, len(exts))
	}
	out := rt.scratch[:len(exts)]
	for i := range exts {
		d := exts[i].d
		out[counts[d]] = exts[i]
		counts[d]++
	}
	copy(exts, out)
}

// extendJoin enumerates the satisfying bindings of join-form atom ci,
// passing each one's Dist to collect with the binding transiently applied to
// assign (mirroring the satisfyEdgeCost contract).
func (rt *anykRoot) extendJoin(ci int, assign map[string]int, collect func(d int)) {
	ei := rt.jorder[ci]
	e := rt.g.Edges[ei]
	r := rt.rels[ei]
	if r == nil {
		return
	}
	u, uok := assign[e.From]
	v, vok := assign[e.To]
	switch {
	case uok && vok:
		if r.Has(u, v) {
			collect(int(r.Dist(u, v)))
		}
	case uok:
		for i, w := range r.Forward(u) {
			assign[e.To] = w
			collect(int(r.levAt(u, i)))
		}
		delete(assign, e.To)
	case vok:
		for _, w := range r.Backward(v) {
			assign[e.From] = w
			collect(int(r.Dist(w, v)))
		}
		delete(assign, e.From)
	default:
		for u := 0; u < r.NumNodes(); u++ {
			if rt.bud.Canceled() {
				break
			}
			ws := r.Forward(u)
			if len(ws) == 0 {
				continue
			}
			assign[e.From] = u
			if e.From == e.To {
				for i, w := range ws {
					if w == u {
						collect(int(r.levAt(u, i)))
					}
				}
				continue
			}
			for i, w := range ws {
				assign[e.To] = w
				collect(int(r.levAt(u, i)))
			}
			delete(assign, e.To)
		}
		delete(assign, e.From)
	}
}

// Next pops the next complete assignment's output projection and exact
// witness cost, in globally nondecreasing cost across every root. ok is
// false when the space is exhausted or the budget canceled — the caller
// distinguishes the two through the budget's Err.
func (a *AnyK) Next() (pattern.Tuple, int, bool) {
	for len(a.h) > 0 {
		if a.bud.Canceled() {
			return nil, 0, false
		}
		it := a.h.pop()
		nd := a.nodes[it.idx] // copy: pushNode below may grow the slab
		rt := nd.root
		if nd.ci == rt.orderLen() {
			t := make(pattern.Tuple, len(rt.out))
			ok := true
			for i, z := range rt.out {
				v, bound := nd.assign[z]
				if !bound {
					ok = false // output var unconstrained; Validate prevents this
					break
				}
				t[i] = v
			}
			if ok {
				return t, int(nd.cost), true
			}
			continue
		}
		exts := rt.extend(nd.ci, nd.assign)
		if nd.rank >= len(exts) {
			continue
		}
		ext := exts[nd.rank]
		if nd.rank+1 < len(exts) {
			a.pushNode(
				anykNode{root: rt, ci: nd.ci, rank: nd.rank + 1, cost: nd.cost, assign: nd.assign},
				nd.cost+exts[nd.rank+1].d+rt.lb[nd.ci+1])
		}
		child := anykNode{root: rt, ci: nd.ci + 1, cost: nd.cost + ext.d}
		child.assign = make(map[string]int, len(nd.assign)+len(ext.vals))
		for z, v := range nd.assign {
			child.assign[z] = v
		}
		for i, z := range rt.vars[nd.ci] {
			child.assign[z] = ext.vals[i]
		}
		a.pushNode(child, child.cost+rt.lb[nd.ci+1])
	}
	return nil, 0, false
}
