package ecrpq

import (
	"fmt"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Check decides t̄ ∈ q(D) (the problem Q-Check of §2.3). Rather than
// materializing q(D), the output variables are pre-bound to the tuple's
// nodes and the join searches for one extension — mirroring how the paper's
// nondeterministic Bool-Eval algorithms extend to Check (§8).
func Check(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	return CheckBudget(q, db, t, nil)
}

// CheckBudget is Check under an optional evaluation budget: the join and its
// BFS searches unwind at level granularity once the budget fires, and the
// pre-bound search runs lazily (chunked multi-source sweeps) so the first
// witness short-circuits before full relations are materialized. A canceled
// budget yields (false, engine.ErrCanceled) unless a witness was already
// found.
func CheckBudget(q *Query, db *graph.DB, t pattern.Tuple, bud *engine.Budget) (bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return false, err
	}
	ev.bud, ev.lazy = bud, true
	if len(t) != len(q.Pattern.Out) {
		return false, fmt.Errorf("ecrpq: tuple arity %d, query arity %d", len(t), len(q.Pattern.Out))
	}
	pre := map[string]int{}
	for i, z := range q.Pattern.Out {
		v := t[i]
		if v < 0 || v >= db.NumNodes() {
			return false, fmt.Errorf("ecrpq: node id %d out of range", v)
		}
		if prev, ok := pre[z]; ok && prev != v {
			return false, nil // same output variable bound to two nodes
		}
		pre[z] = v
	}
	return ev.runCheck(pre)
}

// runCheck runs the join with a pre-bound assignment, short-circuiting on
// the first full match (the first row the streaming loop yields).
func (ev *evaluator) runCheck(pre map[string]int) (bool, error) {
	found := false
	err := ev.runStream(pre, func(pattern.Tuple, int) bool {
		found = true
		return false
	})
	if err == nil && !found {
		err = ev.bud.Err()
	}
	return found, err
}
