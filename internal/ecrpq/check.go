package ecrpq

import (
	"fmt"

	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Check decides t̄ ∈ q(D) (the problem Q-Check of §2.3). Rather than
// materializing q(D), the output variables are pre-bound to the tuple's
// nodes and the join searches for one extension — mirroring how the paper's
// nondeterministic Bool-Eval algorithms extend to Check (§8).
func Check(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return false, err
	}
	if len(t) != len(q.Pattern.Out) {
		return false, fmt.Errorf("ecrpq: tuple arity %d, query arity %d", len(t), len(q.Pattern.Out))
	}
	pre := map[string]int{}
	for i, z := range q.Pattern.Out {
		v := t[i]
		if v < 0 || v >= db.NumNodes() {
			return false, fmt.Errorf("ecrpq: node id %d out of range", v)
		}
		if prev, ok := pre[z]; ok && prev != v {
			return false, nil // same output variable bound to two nodes
		}
		pre[z] = v
	}
	return ev.runCheck(pre)
}

// runCheck runs the join with a pre-bound assignment, short-circuiting on
// the first full match. The constraint order comes from the shared planner
// path (constraintOrder), with the tuple's variables pre-bound.
func (ev *evaluator) runCheck(pre map[string]int) (bool, error) {
	order := ev.constraintOrder(pre)

	assign := map[string]int{}
	for z, v := range pre {
		assign[z] = v
	}
	found := false
	var rec func(ci int)
	rec = func(ci int) {
		if found {
			return
		}
		if ci == len(order) {
			found = true
			return
		}
		c := order[ci]
		if c.kind == cEdge {
			ev.satisfyEdge(c.idx, assign, func() { rec(ci + 1) })
		} else {
			ev.satisfyGroup(c.idx, assign, func() { rec(ci + 1) })
		}
	}
	rec(0)
	return found, nil
}
