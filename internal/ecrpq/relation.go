// Package ecrpq implements extended conjunctive regular path queries
// (Barceló et al., cited as [8] in the paper; §1.3 and §7): CRPQs whose
// edges may additionally be constrained by regular relations of arbitrary
// arity. The fragment ECRPQ^er (only equality relations) is the evaluation
// target of the paper's Lemma 3 / Lemma 13 translation for simple CXRPQs,
// so this engine is the execution core of the whole library.
package ecrpq

import (
	"fmt"
	"sync"

	"cxrpq/internal/automata"
)

// Bottom is the padding symbol ⊥ used by regular relations to align words
// of different lengths (shorter words are padded at the end).
const Bottom rune = 0

// Relation is a regular relation over Σ* of some arity.
type Relation interface {
	Arity() int
	relKind() string
}

// Equality is the equality relation of the given arity:
// {(u1,…,us) : u1 = … = us}. It is handled by a specialized synchronized
// product in the engine.
type Equality struct{ N int }

// Arity returns the arity of the relation.
func (e *Equality) Arity() int      { return e.N }
func (e *Equality) relKind() string { return "equality" }

// NFARelation is a general regular relation given by an NFA over tuple
// symbols from (Σ ∪ {⊥})^arity, with ⊥-padding at the end of shorter words.
type NFARelation struct {
	N     int
	M     *automata.NFA
	codec *tupleCodec

	subsetOnce sync.Once
	subset     *automata.SubsetCache
	labelsOnce sync.Once
	labels     []int32
}

// Arity returns the arity of the relation.
func (r *NFARelation) Arity() int      { return r.N }
func (r *NFARelation) relKind() string { return "nfa" }

// subsetCache returns the relation NFA's interned determinization cache,
// built once and shared by every evaluation of the relation.
func (r *NFARelation) subsetCache() *automata.SubsetCache {
	r.subsetOnce.Do(func() { r.subset = automata.NewSubsetCache(r.M) })
	return r.subset
}

// labelSet returns the relation NFA's tuple-symbol alphabet, computed once.
func (r *NFARelation) labelSet() []int32 {
	r.labelsOnce.Do(func() { r.labels = r.M.Labels() })
	return r.labels
}

// tupleCodec maps tuples of runes (with Bottom) to automata labels.
type tupleCodec struct {
	codes  map[string]int32
	tuples [][]rune
}

func newTupleCodec() *tupleCodec { return &tupleCodec{codes: map[string]int32{}} }

func (c *tupleCodec) code(t []rune) int32 {
	k := string(t)
	if code, ok := c.codes[k]; ok {
		return code
	}
	code := int32(-2 - len(c.tuples))
	c.codes[k] = code
	c.tuples = append(c.tuples, append([]rune(nil), t...))
	return code
}

func (c *tupleCodec) decode(code int32) []rune { return c.tuples[-2-code] }

// RelationBuilder constructs NFARelations state by state.
type RelationBuilder struct {
	arity int
	m     *automata.NFA
	codec *tupleCodec
}

// NewRelationBuilder returns a builder for an arity-n relation with one
// initial state (state 0, the start state).
func NewRelationBuilder(arity int) *RelationBuilder {
	return &RelationBuilder{arity: arity, m: automata.New(1), codec: newTupleCodec()}
}

// AddState adds a state and returns its index.
func (b *RelationBuilder) AddState() int { return b.m.AddState() }

// SetFinal marks a state final.
func (b *RelationBuilder) SetFinal(s int) { b.m.SetFinal(s, true) }

// AddTr adds a transition labelled with the tuple symbol (use Bottom for ⊥).
func (b *RelationBuilder) AddTr(from int, tuple []rune, to int) error {
	if len(tuple) != b.arity {
		return fmt.Errorf("ecrpq: tuple arity %d, relation arity %d", len(tuple), b.arity)
	}
	b.m.AddTr(from, b.codec.code(tuple), to)
	return nil
}

// Build finalizes the relation.
func (b *RelationBuilder) Build() *NFARelation {
	return &NFARelation{N: b.arity, M: b.m, codec: b.codec}
}

// EqualLength builds the equal-length relation of the given arity over
// sigma: {(u1,…,us) : |u1| = … = |us|}, used by the paper's q_anbn query
// (Theorem 9). It is a single-state relation looping on every tuple of
// non-⊥ symbols.
func EqualLength(arity int, sigma []rune) *NFARelation {
	b := NewRelationBuilder(arity)
	b.SetFinal(0)
	tuple := make([]rune, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			t := append([]rune(nil), tuple...)
			if err := b.AddTr(0, t, 0); err != nil {
				panic(err)
			}
			return
		}
		for _, r := range sigma {
			tuple[i] = r
			rec(i + 1)
		}
	}
	rec(0)
	return b.Build()
}

// EqualityNFA builds equality as an explicit NFARelation (used in tests to
// cross-check the specialized equality product against the generic one).
func EqualityNFA(arity int, sigma []rune) *NFARelation {
	b := NewRelationBuilder(arity)
	b.SetFinal(0)
	for _, r := range sigma {
		tuple := make([]rune, arity)
		for i := range tuple {
			tuple[i] = r
		}
		if err := b.AddTr(0, tuple, 0); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// PrefixRelation builds the binary relation {(u, v) : u is a prefix of v}.
func PrefixRelation(sigma []rune) *NFARelation {
	b := NewRelationBuilder(2)
	tail := b.AddState() // state 1: first word finished
	b.SetFinal(0)
	b.SetFinal(tail)
	for _, r := range sigma {
		if err := b.AddTr(0, []rune{r, r}, 0); err != nil {
			panic(err)
		}
		if err := b.AddTr(0, []rune{Bottom, r}, tail); err != nil {
			panic(err)
		}
		if err := b.AddTr(tail, []rune{Bottom, r}, tail); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// HammingAtMost builds the binary relation of equal-length words over sigma
// that differ in at most d positions — an example of a regular relation
// strictly beyond equality and equal-length (the class ECRPQ is closed
// under all such synchronous relations, §1.3).
func HammingAtMost(d int, sigma []rune) *NFARelation {
	b := NewRelationBuilder(2)
	// state i = number of mismatches so far; state 0 exists already
	states := make([]int, d+1)
	states[0] = 0
	b.SetFinal(0)
	for i := 1; i <= d; i++ {
		states[i] = b.AddState()
		b.SetFinal(states[i])
	}
	for i := 0; i <= d; i++ {
		for _, r1 := range sigma {
			for _, r2 := range sigma {
				if r1 == r2 {
					if err := b.AddTr(states[i], []rune{r1, r2}, states[i]); err != nil {
						panic(err)
					}
				} else if i < d {
					if err := b.AddTr(states[i], []rune{r1, r2}, states[i+1]); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return b.Build()
}

// Contains reports whether the relation contains the given word tuple
// (reference semantics used by the brute-force oracles).
func (r *NFARelation) Contains(words []string) bool {
	if len(words) != r.N {
		return false
	}
	maxLen := 0
	rw := make([][]rune, r.N)
	for i, w := range words {
		rw[i] = []rune(w)
		if len(rw[i]) > maxLen {
			maxLen = len(rw[i])
		}
	}
	var padded []int32
	for pos := 0; pos < maxLen; pos++ {
		tuple := make([]rune, r.N)
		for i := range tuple {
			if pos < len(rw[i]) {
				tuple[i] = rw[i][pos]
			} else {
				tuple[i] = Bottom
			}
		}
		k := string(tuple)
		code, ok := r.codec.codes[k]
		if !ok {
			return false
		}
		padded = append(padded, code)
	}
	return r.M.Accepts(padded)
}

// EqualityContains is the reference semantics of the equality relation.
func EqualityContains(words []string) bool {
	for i := 1; i < len(words); i++ {
		if words[i] != words[0] {
			return false
		}
	}
	return true
}
