package ecrpq_test

import (
	"testing"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/workload"
)

// forceYannakakis drops the cost gates so every acyclic, group-free,
// non-lazy join takes the Yannakakis path, and returns a restore func.
func forceYannakakis(t *testing.T) func() {
	t.Helper()
	en := planner.SetEnabled(true)
	yan := planner.SetYannakakis(true)
	floor := planner.SetSemijoinFloor(0)
	gain := planner.SetYannakakisGain(0)
	return func() {
		planner.SetYannakakisGain(gain)
		planner.SetSemijoinFloor(floor)
		planner.SetYannakakis(yan)
		planner.SetEnabled(en)
	}
}

// TestYannakakisDifferential runs a query zoo over random graphs with the
// Yannakakis path forced and with it disabled, asserting tuple-set
// equality — the two join programs must be observationally identical.
func TestYannakakisDifferential(t *testing.T) {
	queries := []string{
		"ans(x, z)\nx y : a\ny z : b",
		"ans(w, z)\nw x : a\nx y : b\ny z : a|b",
		"ans(x)\nx y1 : a\nx y2 : b\nx y3 : a|b",
		"ans()\nx y : a\ny z : b",
		"ans(x, y)\nx x : a\nx y : b",
		"ans(x, y)\nx y : a\nx y : b",
		"ans(x, y)\nx y : a\nx y : a",
		"ans(x, u)\nx y : a\nu v : b",
		"ans(x, y, z)\nx y : a\ny z : b",
		"ans(x, z)\nx y : a+\ny z : b*a",
		// cyclic core: must fall back to backtracking, same answers
		"ans(x, z)\nx y : a\ny z : a\nx z : b",
	}
	for seed := int64(1); seed <= 3; seed++ {
		db := workload.Random(seed, 30, 140, "ab")
		for _, src := range queries {
			q := mustQuery(t, src)

			restore := forceYannakakis(t)
			planner.SetYannakakis(false)
			want, err := ecrpq.Eval(q, db)
			if err != nil {
				restore()
				t.Fatalf("seed %d %q backtracking: %v", seed, src, err)
			}
			planner.SetYannakakis(true)
			before := planner.Stats().AcyclicPlans
			got, err := ecrpq.Eval(q, db)
			fired := planner.Stats().AcyclicPlans - before
			gotBool, berr := ecrpq.EvalBool(q, db)
			restore()
			if err != nil {
				t.Fatalf("seed %d %q yannakakis: %v", seed, src, err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d %q: yannakakis %v != backtracking %v",
					seed, src, got.Sorted(), want.Sorted())
			}
			if berr != nil || gotBool != (want.Len() > 0) {
				t.Fatalf("seed %d %q: EvalBool = %v, %v; want %v", seed, src, gotBool, berr, want.Len() > 0)
			}
			if fired == 0 && len(q.Pattern.Edges) > 2 && src != "ans(x, z)\nx y : a\ny z : a\nx z : b" {
				t.Fatalf("seed %d %q: acyclic path never fired under forced gates", seed, src)
			}
		}
	}
}

// TestYannakakisPairwiseSemijoin pins the counterexample that separates
// relation-level semijoins from per-variable domain filtering: two
// parallel atoms whose relations agree on every endpoint domain but share
// no pair. The join is empty, and a domain-only reduction would not see
// it.
func TestYannakakisPairwiseSemijoin(t *testing.T) {
	db := graph.MustParse(`
a p b
c p d
a q d
c q b
`)
	q := mustQuery(t, "ans(u, v)\nu v : p\nu v : q")
	restore := forceYannakakis(t)
	defer restore()
	before := planner.Stats().AcyclicPlans
	got, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if planner.Stats().AcyclicPlans == before {
		t.Fatal("acyclic path never fired")
	}
	if got.Len() != 0 {
		t.Fatalf("expected the empty join, got %v", got.Sorted())
	}
}

// TestMinimizeDropsRedundantAtoms checks the evaluator-level containment
// pass end to end: a duplicated atom and an atom widened to a|b both
// vanish from the join without changing the answer set.
func TestMinimizeDropsRedundantAtoms(t *testing.T) {
	db := workload.Random(7, 25, 100, "ab")
	q := mustQuery(t, "ans(x, z)\nx y : a\nx y : a|b\ny z : a\ny z : a")

	en := planner.SetEnabled(true)
	defer planner.SetEnabled(en)
	min := planner.SetMinimize(false)
	want, err := ecrpq.Eval(q, db)
	if err != nil {
		planner.SetMinimize(min)
		t.Fatal(err)
	}
	planner.SetMinimize(true)
	before := planner.Stats().AtomsMinimized
	got, err := ecrpq.Eval(q, db)
	dropped := planner.Stats().AtomsMinimized - before
	planner.SetMinimize(min)
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 2 {
		t.Fatalf("minimization dropped %d atoms, want 2", dropped)
	}
	if !got.Equal(want) {
		t.Fatalf("minimized answers %v != full answers %v", got.Sorted(), want.Sorted())
	}
}

// TestEvalUnionParallel checks the fanned-out union evaluation: members
// evaluated concurrently must dedupe into the same set the sequential
// loop produced, and a member error must surface deterministically.
func TestEvalUnionParallel(t *testing.T) {
	db := workload.Random(11, 20, 80, "ab")
	u := &ecrpq.Union{Members: []*ecrpq.Query{
		mustQuery(t, "ans(x, y)\nx y : a"),
		mustQuery(t, "ans(x, y)\nx y : a|b"), // superset of member 1: forces dedup
		mustQuery(t, "ans(x, y)\nx y : b"),
	}}
	got, err := ecrpq.EvalUnion(u, db)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern.NewTupleSet()
	for _, m := range u.Members {
		res, err := ecrpq.Eval(m, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.All() {
			want.Add(tp)
		}
	}
	if !got.Equal(want) {
		t.Fatalf("parallel union %d tuples, sequential %d", got.Len(), want.Len())
	}
	ok, err := ecrpq.EvalUnionBool(u, db)
	if err != nil || ok != (want.Len() > 0) {
		t.Fatalf("EvalUnionBool = %v, %v; want %v", ok, err, want.Len() > 0)
	}
}
