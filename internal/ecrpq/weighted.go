package ecrpq

// Weighted group expansions: Dijkstra variants of the lock-step and padded
// product searches in engine.go. The unweighted expansions are breadth-first,
// so the depth at which a state is first reached is its minimal synchronized
// word length; under a pluggable engine.Weight that identity breaks — a
// longer word over cheap symbols can beat a shorter one — so the queue
// becomes a binary min-heap keyed by accumulated cost with lazy deletion.
// Pops are nondecreasing in cost, hence the first settle of an accepting
// state still carries the minimal cost for its end tuple, exactly mirroring
// the first-visit property the BFS versions rely on. Ties break on insertion
// order so the output sequence stays deterministic.
//
// Step costs: the lock-step (Equality) product consumes one shared symbol
// per step, so a step costs that symbol's clamped weight. The padded
// (NFARelation) product advances each unfrozen component by its own column
// symbol in one synchronized step; the step costs the maximum clamped weight
// over the consuming columns (an all-⊥ step costs 0). Both reduce to the
// BFS depth under the unit weight.

import (
	"cxrpq/internal/automata"
)

// symCost is the clamped per-label cost under the evaluator's weight.
func (ev *evaluator) symCost(label rune) int32 {
	c := ev.weight(label)
	if c < 0 {
		return 0
	}
	return c
}

// wItem / wHeap: a minimal binary min-heap on (cost, ord). ord is the
// insertion sequence, giving deterministic FIFO order among equal-cost
// entries (matching the BFS queue's determinism). idx points into a
// caller-owned slab of states; lazy deletion means stale entries (whose
// cost exceeds the slab key's settled distance) are skipped on pop.
type wItem struct {
	cost int32
	ord  int64
	idx  int
}

func (a wItem) before(b wItem) bool {
	return a.cost < b.cost || (a.cost == b.cost && a.ord < b.ord)
}

type wHeap []wItem

func (h *wHeap) push(x wItem) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *wHeap) pop() wItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s[l].before(s[m]) {
			m = l
		}
		if r < last && s[r].before(s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// expandEqualityW is expandEquality under the evaluator's weight: same
// lock-step product state space, cost-ordered exploration. deps entries are
// minimal total weights instead of word lengths.
func (ev *evaluator) expandEqualityW(g Group, src []int) groupExp {
	s := len(g.Edges)
	caches := make([]*automata.SubsetCache, s)
	for i, ei := range g.Edges {
		caches[i] = ev.ents[ei].cache
	}
	ix := ev.ix
	nSyms := ix.NumSyms()
	wsym := make([]int32, nSyms)
	for sy := int32(0); sy < int32(nSyms); sy++ {
		wsym[sy] = ev.symCost(ix.Sym(sy))
	}

	type state struct {
		nodes []int32
		ids   []int32
	}
	init := state{nodes: make([]int32, s), ids: make([]int32, s)}
	for i := range init.nodes {
		init.nodes[i] = int32(src[i])
		init.ids[i] = caches[i].Start()
	}
	var kbuf []byte
	var k string
	kbuf, k = nodesIDsKey(kbuf, init.nodes, init.ids)
	dist := map[string]int32{k: 0}
	states := []state{init}
	keys := []string{k}
	var h wHeap
	h.push(wItem{cost: 0, ord: 0, idx: 0})
	var ord int64
	var out groupExp
	outSeen := map[string]bool{}
	nextIDs := make([]int32, s)
	opts := make([][]int32, s)
	pops := 0
	for len(h) > 0 {
		it := h.pop()
		pops++
		if pops%256 == 0 && ev.bud.Canceled() {
			break
		}
		if it.cost > dist[keys[it.idx]] {
			continue // stale: a cheaper path already settled this state
		}
		cur := states[it.idx]
		allFinal := true
		for i := range caches {
			if !caches[i].Final(cur.ids[i]) {
				allFinal = false
				break
			}
		}
		if allFinal {
			k := intsKey(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out.ends = append(out.ends, toInts(cur.nodes))
				out.deps = append(out.deps, it.cost)
			}
		}
		for sy := int32(0); sy < int32(nSyms); sy++ {
			sym := int32(ix.Sym(sy))
			ok := true
			for i := range caches {
				opts[i] = ix.OutByID(int(cur.nodes[i]), sy)
				if len(opts[i]) == 0 {
					ok = false
					break
				}
				nextIDs[i] = caches[i].Step(cur.ids[i], sym)
				if nextIDs[i] == automata.Dead {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nc := it.cost + wsym[sy]
			productNodes32(opts, func(nodes []int32) {
				var k string
				kbuf, k = nodesIDsKey(kbuf, nodes, nextIDs)
				if d, ok := dist[k]; ok && d <= nc {
					return
				}
				dist[k] = nc
				states = append(states, state{
					nodes: append([]int32(nil), nodes...),
					ids:   append([]int32(nil), nextIDs...),
				})
				keys = append(keys, k)
				ord++
				h.push(wItem{cost: nc, ord: ord, idx: len(states) - 1})
			})
		}
	}
	return out
}

// expandNFARelW is expandNFARel under the evaluator's weight: same padded
// product state space, cost-ordered exploration. A synchronized step costs
// the maximum clamped weight over the columns that consume a real symbol.
func (ev *evaluator) expandNFARelW(g Group, rel *NFARelation, src []int) groupExp {
	s := len(g.Edges)
	caches := make([]*automata.SubsetCache, s)
	for i, ei := range g.Edges {
		caches[i] = ev.ents[ei].cache
	}
	ix := ev.ix
	rc := rel.subsetCache()
	labels := rel.labelSet()

	type state struct {
		nodes []int32
		ids   []int32
		rid   int32
		mask  uint64
	}
	init := state{nodes: make([]int32, s), ids: make([]int32, s), rid: rc.Start()}
	for i := range init.nodes {
		init.nodes[i] = int32(src[i])
		init.ids[i] = caches[i].Start()
	}
	var kbuf []byte
	var k string
	kbuf, k = relStateKey(kbuf, init.nodes, init.ids, init.rid, 0)
	dist := map[string]int32{k: 0}
	states := []state{init}
	keys := []string{k}
	var h wHeap
	h.push(wItem{cost: 0, ord: 0, idx: 0})
	var ord int64
	var out groupExp
	outSeen := map[string]bool{}
	nextIDs := make([]int32, s)
	opts := make([][]int32, s)
	selfOpts := make([]int32, s)
	pops := 0
	for len(h) > 0 {
		it := h.pop()
		pops++
		if pops%256 == 0 && ev.bud.Canceled() {
			break
		}
		if it.cost > dist[keys[it.idx]] {
			continue
		}
		cur := states[it.idx]
		accept := rc.Final(cur.rid)
		if accept {
			for i := range caches {
				if cur.mask&(1<<uint(i)) != 0 {
					continue
				}
				if !caches[i].Final(cur.ids[i]) {
					accept = false
					break
				}
			}
		}
		if accept {
			k := intsKey(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out.ends = append(out.ends, toInts(cur.nodes))
				out.deps = append(out.deps, it.cost)
			}
		}
		for _, code := range labels {
			rnext := rc.Step(cur.rid, code)
			if rnext == automata.Dead {
				continue
			}
			tuple := rel.codec.decode(code)
			mask := cur.mask
			ok := true
			stepCost := int32(0)
			for i := range tuple {
				if tuple[i] == Bottom {
					if mask&(1<<uint(i)) == 0 {
						if !caches[i].Final(cur.ids[i]) {
							ok = false
							break
						}
						mask |= 1 << uint(i)
					}
					nextIDs[i] = cur.ids[i]
					selfOpts[i] = cur.nodes[i]
					opts[i] = selfOpts[i : i+1]
					continue
				}
				if mask&(1<<uint(i)) != 0 {
					ok = false // symbol after ⊥ in the same column
					break
				}
				nextIDs[i] = caches[i].Step(cur.ids[i], int32(tuple[i]))
				if nextIDs[i] == automata.Dead {
					ok = false
					break
				}
				opts[i] = ix.OutByLabel(int(cur.nodes[i]), tuple[i])
				if len(opts[i]) == 0 {
					ok = false
					break
				}
				if c := ev.symCost(tuple[i]); c > stepCost {
					stepCost = c
				}
			}
			if !ok {
				continue
			}
			nc := it.cost + stepCost
			productNodes32(opts, func(nodes []int32) {
				var k string
				kbuf, k = relStateKey(kbuf, nodes, nextIDs, rnext, mask)
				if d, ok := dist[k]; ok && d <= nc {
					return
				}
				dist[k] = nc
				states = append(states, state{
					nodes: append([]int32(nil), nodes...),
					ids:   append([]int32(nil), nextIDs...),
					rid:   rnext,
					mask:  mask,
				})
				keys = append(keys, k)
				ord++
				h.push(wItem{cost: nc, ord: ord, idx: len(states) - 1})
			})
		}
	}
	return out
}
