package ecrpq_test

import (
	"testing"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
)

func mustQuery(t *testing.T, src string, groups ...ecrpq.Group) *ecrpq.Query {
	t.Helper()
	q := &ecrpq.Query{Pattern: pattern.MustParseQuery(src), Groups: groups}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCRPQBasic(t *testing.T) {
	// RPQ: pairs connected by a path in a(b)*c
	db := graph.MustParse(`
n0 a n1
n1 b n1
n1 c n2
n0 a n3
n3 c n4
`)
	q := mustQuery(t, "ans(x, y)\nx y : ab*c")
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("expected 2 pairs, got %v", res.Sorted())
	}
	n0, _ := db.Lookup("n0")
	n2, _ := db.Lookup("n2")
	if !res.Contains(pattern.Tuple{n0, n2}) {
		t.Fatal("missing (n0, n2)")
	}
}

func TestCRPQConjunction(t *testing.T) {
	// G3 of Figure 1: v1 with a biological ancestor that is also an
	// academical ancestor: v1 <-p+- z and z -s+-> v1 … modelled as two arcs.
	db := graph.MustParse(`
anna p bob
bob p carl
anna s carl
dora p emil
`)
	// ans(v): exists z: z -p+-> v and z -s+-> v
	q := mustQuery(t, "ans(v)\nz v : p+\nz v : s+")
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	carl, _ := db.Lookup("carl")
	if res.Len() != 1 || !res.Contains(pattern.Tuple{carl}) {
		t.Fatalf("expected {carl}, got %v", res.Sorted())
	}
}

func TestBooleanQuery(t *testing.T) {
	db := graph.MustParse("u a v")
	q := mustQuery(t, "ans()\nx y : a")
	ok, err := ecrpq.EvalBool(q, db)
	if err != nil || !ok {
		t.Fatalf("D |= q expected, got %v %v", ok, err)
	}
	q2 := mustQuery(t, "ans()\nx y : b")
	ok, err = ecrpq.EvalBool(q2, db)
	if err != nil || ok {
		t.Fatalf("D |= q2 not expected, got %v %v", ok, err)
	}
}

func TestEqualityGroup(t *testing.T) {
	// Two edges must carry the same word from (a|b)*.
	db := graph.MustParse(`
u a m1
m1 b v
u2 a m2
m2 b v2
u3 b m3
m3 a v3
`)
	q := mustQuery(t, "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+",
		ecrpq.Group{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}})
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// cross-check with brute force
	want, err := oracle.EvalECRPQ(q, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	// ab-paths pair with ab-paths and ba with ba, but ab never with ba:
	u, _ := db.Lookup("u")
	u3, _ := db.Lookup("u3")
	v, _ := db.Lookup("v")
	v3, _ := db.Lookup("v3")
	if !res.Contains(pattern.Tuple{u, v, u, v}) {
		t.Fatal("missing reflexive ab pair")
	}
	if res.Contains(pattern.Tuple{u, v, u3, v3}) {
		t.Fatal("ab must not pair with ba")
	}
}

func TestEqualityEpsilon(t *testing.T) {
	// equality groups satisfied by ε-paths (length-0)
	db := graph.MustParse("u a v")
	q := mustQuery(t, "ans(x, y)\nx x : a*\ny y : b*",
		ecrpq.Group{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}})
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// only the empty word is shared between a* and b*: all (x, y) pairs
	if res.Len() != 4 {
		t.Fatalf("expected all 4 node pairs via ε, got %v", res.Sorted())
	}
}

func TestEqualLengthRelation(t *testing.T) {
	// q_anbn-style: paths canc and dbmd with n = m (Theorem 9, Fig. 6).
	mk := func(n, m int) *graph.DB {
		db := graph.New()
		r0 := db.Node("r0")
		rest := "c"
		for i := 0; i < n; i++ {
			rest += "a"
		}
		rest += "c"
		rt := db.Node("rt")
		db.AddPath(r0, rest, rt)
		s0 := db.Node("s0")
		w := "d"
		for i := 0; i < m; i++ {
			w += "b"
		}
		w += "d"
		st := db.Node("st")
		db.AddPath(s0, w, st)
		return db
	}
	sigma := []rune("abcd")
	q := func() *ecrpq.Query {
		return &ecrpq.Query{
			Pattern: pattern.MustParseQuery(`
ans()
x y1 : c
y1 y2 : a*
y2 z : c
x2 w1 : d
w1 w2 : b*
w2 z2 : d
`),
			Groups: []ecrpq.Group{{Edges: []int{1, 4}, Rel: ecrpq.EqualLength(2, sigma)}},
		}
	}
	for _, tc := range []struct {
		n, m int
		want bool
	}{{2, 2, true}, {3, 3, true}, {2, 3, false}, {0, 0, true}, {0, 1, false}} {
		db := mk(tc.n, tc.m)
		got, err := ecrpq.EvalBool(q(), db)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("n=%d m=%d: got %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestPrefixRelation(t *testing.T) {
	db := graph.MustParse(`
u a v
v b w
u2 a v2
`)
	sigma := []rune("ab")
	q := mustQuery(t, "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)*\nx2 y2 : (a|b)*",
		ecrpq.Group{Edges: []int{0, 1}, Rel: ecrpq.PrefixRelation(sigma)})
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalECRPQ(q, db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	w, _ := db.Lookup("w")
	// "a" is a prefix of "ab"
	if !res.Contains(pattern.Tuple{u, v, u, w}) {
		t.Fatal("prefix pair (a, ab) missing")
	}
	// "ab" is not a prefix of "a"
	if res.Contains(pattern.Tuple{u, w, u, v}) {
		t.Fatal("(ab, a) should not be in prefix relation")
	}
}

func TestEqualityMatchesGenericNFA(t *testing.T) {
	// The specialized equality product must agree with the generic
	// NFA-relation product on the explicit equality NFA.
	db := graph.MustParse(`
a x b
b y c
c x a
a y d
d x a
`)
	sigma := []rune("xy")
	pat := "ans(p, q, r, s)\np q : [xy]+\nr s : [xy]+"
	q1 := mustQuery(t, pat, ecrpq.Group{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}})
	q2 := mustQuery(t, pat, ecrpq.Group{Edges: []int{0, 1}, Rel: ecrpq.EqualityNFA(2, sigma)})
	r1, err := ecrpq.Eval(q1, db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ecrpq.Eval(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("equality %v vs generic %v", r1.Sorted(), r2.Sorted())
	}
	if r1.Len() == 0 {
		t.Fatal("expected matches")
	}
}

func TestUnionEval(t *testing.T) {
	db := graph.MustParse("u a v\nw b z")
	u := &ecrpq.Union{Members: []*ecrpq.Query{
		{Pattern: pattern.MustParseQuery("ans(x, y)\nx y : a")},
		{Pattern: pattern.MustParseQuery("ans(x, y)\nx y : b")},
	}}
	res, err := ecrpq.EvalUnion(u, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("union should have 2 tuples, got %v", res.Sorted())
	}
	ok, err := ecrpq.EvalUnionBool(u, db)
	if err != nil || !ok {
		t.Fatal("union bool failed")
	}
}

func TestValidateErrors(t *testing.T) {
	pat := pattern.MustParseQuery("ans()\nx y : a\ny z : b")
	for _, q := range []*ecrpq.Query{
		{Pattern: pattern.MustParseQuery("ans()\nx y : $v{a}")},                              // variables in label
		{Pattern: pat, Groups: []ecrpq.Group{{Edges: []int{0}, Rel: &ecrpq.Equality{N: 2}}}}, // arity mismatch
		{Pattern: pat, Groups: []ecrpq.Group{{Edges: []int{0, 5}, Rel: &ecrpq.Equality{N: 2}}}},
		{Pattern: pat, Groups: []ecrpq.Group{
			{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}},
			{Edges: []int{1, 0}, Rel: &ecrpq.Equality{N: 2}},
		}},
	} {
		if err := q.Validate(); err == nil {
			t.Errorf("expected validation error for %+v", q)
		}
	}
}

func TestOracleAgreementRandom(t *testing.T) {
	// Cross-validate engine vs brute force on a family of small graphs.
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		db := randomGraph(seed, 5, 8, "ab")
		q := mustQuery(t, "ans(x, y)\nx z : a(a|b)*\nz y : b+")
		got, err := ecrpq.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.EvalECRPQ(q, db, 5)
		if err != nil {
			t.Fatal(err)
		}
		// the oracle only sees words up to length 5; engine ⊇ oracle, and on
		// these small graphs equality should hold for most seeds — check
		// oracle ⊆ engine strictly
		for _, tuple := range want.Sorted() {
			if !got.Contains(tuple) {
				t.Errorf("seed %d: engine missing %v", seed, tuple)
			}
		}
	}
}

func TestOracleAgreementEqualityRandom(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		db := randomGraph(seed, 4, 7, "ab")
		q := mustQuery(t, "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : a(a|b)*",
			ecrpq.Group{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}})
		got, err := ecrpq.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.EvalECRPQ(q, db, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, tuple := range want.Sorted() {
			if !got.Contains(tuple) {
				t.Errorf("seed %d: engine missing %v", seed, tuple)
			}
		}
	}
}

func randomGraph(seed int64, nodes, edges int, alphabet string) *graph.DB {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	db := graph.New()
	for i := 0; i < nodes; i++ {
		db.AddNode()
	}
	al := []rune(alphabet)
	for i := 0; i < edges; i++ {
		u := int(next(uint64(nodes)))
		v := int(next(uint64(nodes)))
		r := al[next(uint64(len(al)))]
		db.AddEdge(u, r, v)
	}
	return db
}
