package ecrpq

import "testing"

func TestEqualLengthContains(t *testing.T) {
	r := EqualLength(2, []rune("ab"))
	cases := []struct {
		u, v string
		want bool
	}{
		{"", "", true}, {"a", "b", true}, {"ab", "ba", true},
		{"a", "", false}, {"", "b", false}, {"aab", "ab", false},
	}
	for _, c := range cases {
		if got := r.Contains([]string{c.u, c.v}); got != c.want {
			t.Errorf("EqualLength(%q, %q) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEqualityNFAContains(t *testing.T) {
	r := EqualityNFA(3, []rune("ab"))
	if !r.Contains([]string{"ab", "ab", "ab"}) {
		t.Error("equal triple rejected")
	}
	if r.Contains([]string{"ab", "ab", "aa"}) {
		t.Error("unequal triple accepted")
	}
	if !r.Contains([]string{"", "", ""}) {
		t.Error("ε triple rejected")
	}
	if r.Contains([]string{"a", "a"}) {
		t.Error("arity mismatch accepted")
	}
}

func TestPrefixContains(t *testing.T) {
	r := PrefixRelation([]rune("ab"))
	cases := []struct {
		u, v string
		want bool
	}{
		{"", "", true}, {"", "ab", true}, {"a", "ab", true},
		{"ab", "ab", true}, {"b", "ab", false}, {"ab", "a", false},
	}
	for _, c := range cases {
		if got := r.Contains([]string{c.u, c.v}); got != c.want {
			t.Errorf("Prefix(%q, %q) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestHammingAtMostContains(t *testing.T) {
	r := HammingAtMost(1, []rune("ab"))
	cases := []struct {
		u, v string
		want bool
	}{
		{"", "", true}, {"a", "a", true}, {"a", "b", true},
		{"ab", "aa", true}, {"ab", "ba", false}, // two mismatches
		{"ab", "a", false}, // unequal length
		{"aba", "abb", true},
	}
	for _, c := range cases {
		if got := r.Contains([]string{c.u, c.v}); got != c.want {
			t.Errorf("Hamming≤1(%q, %q) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	r0 := HammingAtMost(0, []rune("ab"))
	if !r0.Contains([]string{"ab", "ab"}) || r0.Contains([]string{"ab", "aa"}) {
		t.Error("Hamming≤0 should be equality")
	}
}

func TestEqualityContainsHelper(t *testing.T) {
	if !EqualityContains([]string{"x", "x", "x"}) {
		t.Error("equal words rejected")
	}
	if EqualityContains([]string{"x", "y"}) {
		t.Error("unequal words accepted")
	}
	if !EqualityContains(nil) {
		t.Error("empty tuple should be vacuously equal")
	}
}

func TestRelationBuilderArityError(t *testing.T) {
	b := NewRelationBuilder(2)
	if err := b.AddTr(0, []rune{'a'}, 0); err == nil {
		t.Error("arity mismatch must error")
	}
}
