package ecrpq

// Streaming (any-k) enumeration for the ECRPQ^er evaluator. The
// backtracking join was historically accumulate-then-return; runStream
// inverts it into a push-with-cancel loop — every satisfying assignment is
// projected and yielded the moment the recursion completes it, and the
// consumer's return value unwinds the whole search. Eval/EvalBool/Check are
// thin shims over it, so there is exactly one enumeration loop.
//
// Ranked mode threads a witness length alongside every tuple: the sum over
// join constraints of the BFS level at which the chosen binding was first
// reached (ungrouped edges: shortest matching-path edge count, straight off
// the bitset BFS level indices the engine kernels already compute; groups:
// the synchronized product depth, i.e. the shared word length). Ranked
// emission is NOT deduplicated — the same tuple may arrive once per
// distinct assignment, each with that assignment's cost — because only a
// full drain can know the minimal witness; the cxrpq layer keeps the min
// per tuple while ordering. Unranked emission is deduplicated.

import (
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// StreamFunc consumes one enumerated tuple with its witness cost (0 unless
// ranked). Returning false stops the enumeration.
type StreamFunc func(t pattern.Tuple, cost int) bool

// EvalStream enumerates q(D) through yield instead of materializing it,
// under an optional budget (nil = unlimited) polled at BFS-level and
// join-node granularity. With ranked set, each tuple carries its witness
// length and duplicates may be emitted (see the package comment above);
// without it, tuples are distinct and cost is always 0. A canceled budget
// ends the enumeration early: everything already yielded is a sound subset
// of q(D). The error reports construction/validation failures only — the
// caller owns the budget and checks it for truncation.
func EvalStream(q *Query, db *graph.DB, bud *engine.Budget, ranked bool, yield StreamFunc) error {
	return EvalStreamW(q, db, bud, ranked, nil, yield)
}

// EvalStreamW is EvalStream under a pluggable edge weight (engine.Weight):
// with ranked set and a non-nil weight, every yielded cost is the minimum
// total edge weight of a witness for that assignment instead of its edge
// count — level lookups run the Dijkstra kernels and group expansions the
// cost-ordered product search. A nil weight is exactly EvalStream.
func EvalStreamW(q *Query, db *graph.DB, bud *engine.Budget, ranked bool, weight engine.Weight, yield StreamFunc) error {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return err
	}
	ev.bud, ev.ranked, ev.lazy, ev.weight = bud, ranked, true, weight
	return ev.runStream(nil, yield)
}

// EvalBoolBudget is EvalBool under an optional budget, running the lazy
// (chunked-sweep) search so the first witness is found without
// materializing full relations. A canceled budget yields
// (false, engine.ErrCanceled) unless a witness was already found.
func EvalBoolBudget(q *Query, db *graph.DB, bud *engine.Budget) (bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return false, err
	}
	ev.bud, ev.lazy = bud, true
	res, err := ev.run(true)
	if err != nil {
		return false, err
	}
	if res.Len() == 0 {
		if berr := bud.Err(); berr != nil {
			return false, berr
		}
	}
	return res.Len() > 0, nil
}

// EvalBudget is Eval under an optional budget. On cancellation it returns
// the sound partial set found so far together with engine.ErrCanceled.
func EvalBudget(q *Query, db *graph.DB, bud *engine.Budget) (*pattern.TupleSet, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return nil, err
	}
	ev.bud = bud
	res, err := ev.run(false)
	if err != nil {
		return res, err
	}
	return res, bud.Err()
}

// runStream is the single enumeration loop behind every evaluator entry
// point: a backtracking join over the planner's constraint order with the
// variables of pre pre-bound, yielding each completed assignment's output
// projection. The budget is polled on every recursion step, so deadline,
// row-cap, context and sibling-stop cancellation all cut the search at node
// granularity (the BFS expansions below additionally poll per level).
func (ev *evaluator) runStream(pre map[string]int, yield StreamFunc) error {
	q := ev.q
	seen := map[string]bool{}
	sink := func(t pattern.Tuple, cost int) bool {
		if !ev.ranked {
			k := intsKey(t)
			if seen[k] {
				return true
			}
			seen[k] = true
		}
		return yield(t, cost)
	}
	// Acyclic-core specialization: when the minimized conjunct graph has
	// a join tree and the backtracking search is estimated expensive
	// enough to pay for materializing the relations, run the Yannakakis
	// semijoin program instead (yannakakis.go) — same yields, same
	// dedup, same budget discipline.
	if ev.tryYannakakis(pre, sink) {
		return nil
	}
	order := ev.constraintOrder(pre)

	assign := map[string]int{}
	for z, v := range pre {
		assign[z] = v
	}
	stop := false
	var rec func(ci, cost int)
	rec = func(ci, cost int) {
		if stop {
			return
		}
		if ci == len(order) {
			t := make(pattern.Tuple, len(q.Pattern.Out))
			for i, z := range q.Pattern.Out {
				v, ok := assign[z]
				if !ok {
					return // output var not constrained; Validate prevents this
				}
				t[i] = v
			}
			if !sink(t, cost) {
				stop = true
			}
			return
		}
		if ev.bud.Canceled() {
			stop = true
			return
		}
		c := order[ci]
		if c.kind == cEdge {
			ev.satisfyEdgeCost(c.idx, assign, func(d int) { rec(ci+1, cost+d) })
		} else {
			ev.satisfyGroupCost(c.idx, assign, func(d int) { rec(ci+1, cost+d) })
		}
	}
	rec(0, 0)
	return nil
}
