package ecrpq

// Regression tests for the MS-BFS level-capture bug: ReachBatchEx used to
// merge bits arriving mid-expand into a not-yet-processed frontier
// configuration's live pending mask, expanding them one level early and
// understating downstream first-hit levels (the hit sets stayed correct, the
// distances did not). The bug needed two batched sources meeting at a
// configuration, so batch-of-one sweeps never showed it — these tests pin
// the batched ensureForward/ensureBackward memos against the single-source
// kernels and against ground-truth forward distances.

import (
	"fmt"
	"testing"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
)

// replica of workload.Random(seed, nodes, edges, alphabet) — workload can't
// be imported from a package-internal test (cycle through cxrpq)
func probeRandomDB(seed int64, nodes, edges int, alphabet string) *graph.DB {
	s := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	intn := func(n int) int { return int(next() % uint64(n)) }
	d := graph.New()
	for i := 0; i < nodes; i++ {
		d.AddNode()
	}
	al := []rune(alphabet)
	for i := 0; i < edges; i++ {
		d.AddEdge(intn(nodes), al[intn(len(al))], intn(nodes))
	}
	return d
}

// The batched ensureForward/ensureBackward prefetches must populate exactly
// the memo entries the single-source forwardLev/backwardLev kernels would —
// same hits, same levels — or the any-k enumerator's costs silently drift
// from the drain's.
func TestEnsureMatchesSingle(t *testing.T) {
	db := probeRandomDB(1, 30, 110, "ab")
	q, err := ParseQuery("ans(x, z)\nx y : a+\ny z : b+", []rune("ab"))
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	for u := 0; u < db.NumNodes(); u++ {
		all = append(all, u)
	}
	for ei := 0; ei < 2; ei++ {
		evF, err := newEvaluator(q, db)
		if err != nil {
			t.Fatal(err)
		}
		evF.ranked = true
		evB, _ := newEvaluator(q, db)
		evB.ranked = true
		evF.ensureForward(ei, all)
		evB.ensureBackward(ei, all)
		for u := 0; u < db.NumNodes(); u++ {
			evS, _ := newEvaluator(q, db) // fresh: empty memos, single-source sweeps
			evS.ranked = true
			fh, fl := evF.forwardLev(ei, u)
			sh, sl := evS.forwardLev(ei, u)
			if fmt.Sprint(fh) != fmt.Sprint(sh) || fmt.Sprint(fl) != fmt.Sprint(sl) {
				t.Fatalf("edge %d fwd src %d: batch (%v,%v) single (%v,%v)", ei, u, fh, fl, sh, sl)
			}
			bh, bl := evB.backwardLev(ei, u)
			bh2, bl2 := evS.backwardLev(ei, u)
			if fmt.Sprint(bh) != fmt.Sprint(bh2) || fmt.Sprint(bl) != fmt.Sprint(bl2) {
				t.Fatalf("edge %d bwd tgt %d: batch (%v,%v) single (%v,%v)", ei, u, bh, bl, bh2, bl2)
			}
		}
	}
}

// Backward levels — batched and single-source alike — must agree with the
// forward kernel's distances: dist(u→v) is direction-independent.
func TestBackwardAgainstForward(t *testing.T) {
	db := probeRandomDB(1, 30, 110, "ab")
	q, err := ParseQuery("ans(x, z)\nx y : a+\ny z : b+", []rune("ab"))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := newEvaluator(q, db)
	if err != nil {
		t.Fatal(err)
	}
	ev.ranked = true
	fdist := map[[2]int]int32{}
	for u := 0; u < db.NumNodes(); u++ {
		hits, levs := ev.forwardLev(0, u)
		for i, v := range hits {
			fdist[[2]int{u, v}] = levs[i]
		}
	}
	evB, _ := newEvaluator(q, db)
	evB.ranked = true
	var all []int
	for u := 0; u < db.NumNodes(); u++ {
		all = append(all, u)
	}
	evB.ensureBackward(0, all)
	for v := 0; v < db.NumNodes(); v++ {
		bh, bl := evB.backwardLev(0, v)
		for i, u := range bh {
			if want := fdist[[2]int{u, v}]; bl[i] != want {
				t.Fatalf("batch backward: dist(%d->%d) = %d, forward says %d", u, v, bl[i], want)
			}
		}
	}
}

// A batch of one source must match the single-source kernel bit for bit
// (the historical failure needed two sources; this pins the trivial case).
func TestBatchOfOneBackward(t *testing.T) {
	db := probeRandomDB(1, 30, 110, "ab")
	q, err := ParseQuery("ans(x, z)\nx y : a+\ny z : b+", []rune("ab"))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := newEvaluator(q, db)
	ev.ranked = true
	_, rc := ev.ents[0].reverse()
	for v := 0; v < db.NumNodes(); v++ {
		sh, sl := engine.ReachLevelsW(ev.ix, rc, v, false, nil, nil)
		one := engine.ReachBatchEx(ev.ix, db.Partition(engine.Shards()), rc, []int{v}, false,
			engine.BatchOpts{Levels: true})
		if fmt.Sprint(sh) != fmt.Sprint(one.Hits[0]) || fmt.Sprint(sl) != fmt.Sprint(one.Levs[0]) {
			t.Fatalf("batch-of-one tgt %d: single (%v,%v) batch (%v,%v)", v, sh, sl, one.Hits[0], one.Levs[0])
		}
	}
}
