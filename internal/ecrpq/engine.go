package ecrpq

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"cxrpq/internal/automata"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

// Eval computes q(D): the set of output tuples (node ids in the order of
// q.Pattern.Out). For Boolean queries the result is the empty tuple set or
// the set containing the empty tuple (D |= q).
//
// The algorithm follows the product constructions behind the paper's NL
// upper bounds, realized deterministically: ungrouped edges become binary
// reachability relations solved by the integer-interned product core of
// internal/engine (label-indexed CSR graph × on-the-fly determinized NFA);
// each relation group is expanded by a synchronized product over D^s
// (lock-step moves for equality relations; relation-NFA-driven moves with ⊥
// masks for general regular relations); a backtracking join over node
// variables combines them.
func Eval(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return nil, err
	}
	return ev.run(false)
}

// EvalBool decides D |= q for Boolean q (it also works for non-Boolean
// queries, deciding non-emptiness of q(D)).
func EvalBool(q *Query, db *graph.DB) (bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return false, err
	}
	res, err := ev.run(true)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// EvalUnion computes ⋃ qi(D). Members are evaluated concurrently across
// the engine worker pool (engine.Fan) — each worker materializes its own
// member's tuple set, and a mutex-guarded shared set dedupes the union as
// results land. The first member error (by member index, so the outcome is
// deterministic) wins.
func EvalUnion(u *Union, db *graph.DB) (*pattern.TupleSet, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	db.Index() // force one index build before the fan-out races on it
	out := pattern.NewTupleSet()
	errs := make([]error, len(u.Members))
	var mu sync.Mutex
	engine.Fan(len(u.Members), func(i int) {
		res, err := Eval(u.Members[i], db)
		if err != nil {
			errs[i] = err
			return
		}
		mu.Lock()
		for _, t := range res.All() {
			out.Add(t)
		}
		mu.Unlock()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EvalUnionBool decides whether some member matches. Members run
// concurrently; any satisfied member settles the answer (errors from other
// members are irrelevant once a witness exists, matching the sequential
// short-circuit semantics).
func EvalUnionBool(u *Union, db *graph.DB) (bool, error) {
	if err := u.Validate(); err != nil {
		return false, err
	}
	db.Index()
	var found atomic.Bool
	errs := make([]error, len(u.Members))
	engine.Fan(len(u.Members), func(i int) {
		if found.Load() {
			return
		}
		ok, err := EvalBool(u.Members[i], db)
		if err != nil {
			errs[i] = err
			return
		}
		if ok {
			found.Store(true)
		}
	})
	if found.Load() {
		return true, nil
	}
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	return false, nil
}

type evaluator struct {
	q     *Query
	db    *graph.DB
	ix    *graph.Index
	stats *graph.Stats
	sigma []rune
	ents  []*compiledEntry // per edge: shared compiled NFA + subset caches
	nfas  []*automata.NFA  // per edge, aliases ents[i].nfa (witness search)
	fwd   []map[int][]int  // per edge: memoized u -> targets
	rev   []map[int][]int  // per edge: memoized v -> sources
	fwdOK []bool           // per edge: fwd memo covers every node
	gmemo []map[string]groupExp

	inGroup []bool

	// dropped marks edges deleted by the planner's containment-based
	// minimization pass (planner.Minimize): an ungrouped edge whose
	// language contains a kept same-endpoint edge's language is implied
	// by it and never evaluated. Dropped edges still participate in the
	// witness-reconstruction search (soundness is free — they are
	// implied), just not in the join.
	dropped []bool

	// Streaming/any-k state (see stream.go). bud is polled at level
	// granularity inside the BFS expansions and per node in the join
	// recursion; nil means unlimited. ranked turns on BFS-level capture so
	// every emitted tuple carries a witness length. lazy switches the
	// both-ends-unbound edge case from one full multi-source sweep to
	// escalating source chunks, trading a little drain throughput for a
	// first row that arrives after one chunk instead of after the sweep.
	bud    *engine.Budget
	ranked bool
	lazy   bool
	fwdLev []map[int][]int32 // per edge: memoized u -> BFS level per target
	revLev []map[int][]int32 // per edge: memoized v -> BFS level per source

	// weight generalizes witness cost from edge count to a pluggable
	// per-edge-label weight (engine.Weight): with it set and ranked, level
	// lookups run the Dijkstra kernel (engine.ReachLevelsW) and group
	// expansions the weighted product search, so every cost this evaluator
	// reports is a minimum total weight instead of a minimum edge count.
	// The memos above are keyed per evaluator, so a fixed weight never
	// mixes with unit-cost entries.
	weight engine.Weight
}

// rankedWeight returns the weight to hand the kernels: only a ranked
// evaluation consumes level data, so unranked runs keep the plain BFS.
func (ev *evaluator) rankedWeight() engine.Weight {
	if !ev.ranked {
		return nil
	}
	return ev.weight
}

// groupExp is one memoized group expansion: the reachable end tuples and —
// when the evaluator is ranked — the product-BFS depth (synchronized word
// length) at which each was first produced.
type groupExp struct {
	ends [][]int
	deps []int32
}

func newEvaluator(q *Query, db *graph.DB) (*evaluator, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sigma := xregex.MergeAlphabets(db.Alphabet(), xregex.AlphabetOf(q.Pattern.Labels()...))
	ev := &evaluator{
		q:       q,
		db:      db,
		ix:      db.Index(),
		stats:   db.Stats(),
		sigma:   sigma,
		ents:    make([]*compiledEntry, len(q.Pattern.Edges)),
		nfas:    make([]*automata.NFA, len(q.Pattern.Edges)),
		fwd:     make([]map[int][]int, len(q.Pattern.Edges)),
		rev:     make([]map[int][]int, len(q.Pattern.Edges)),
		fwdOK:   make([]bool, len(q.Pattern.Edges)),
		gmemo:   make([]map[string]groupExp, len(q.Groups)),
		inGroup: make([]bool, len(q.Pattern.Edges)),
		fwdLev:  make([]map[int][]int32, len(q.Pattern.Edges)),
		revLev:  make([]map[int][]int32, len(q.Pattern.Edges)),
	}
	for i, e := range q.Pattern.Edges {
		ent, err := compiledFor(e.Label, sigma)
		if err != nil {
			return nil, err
		}
		ev.ents[i] = ent
		ev.nfas[i] = ent.nfa
		ev.fwd[i] = map[int][]int{}
		ev.rev[i] = map[int][]int{}
		ev.fwdLev[i] = map[int][]int32{}
		ev.revLev[i] = map[int][]int32{}
	}
	for gi, g := range q.Groups {
		ev.gmemo[gi] = map[string]groupExp{}
		for _, ei := range g.Edges {
			ev.inGroup[ei] = true
		}
	}
	// Containment-based minimization (planner v2): delete redundant
	// ungrouped atoms before any relation work. Grouped edges are
	// ineligible (their semantics involve the group relation, not the
	// edge language alone) and marked with a nil cache.
	minAtoms := make([]planner.MinAtom, len(q.Pattern.Edges))
	for i, e := range q.Pattern.Edges {
		minAtoms[i] = planner.MinAtom{From: e.From, To: e.To}
		if !ev.inGroup[i] {
			minAtoms[i].Cache = ev.ents[i].cache
		}
	}
	ev.dropped = planner.Minimize(minAtoms, 0)
	return ev, nil
}

// forward returns the nodes v with a path u→v matching edge ei's regex.
func (ev *evaluator) forward(ei, u int) []int {
	if vs, ok := ev.fwd[ei][u]; ok {
		return vs
	}
	vs := engine.Reach(ev.ix, ev.ents[ei].cache, u, true)
	ev.fwd[ei][u] = vs
	return vs
}

// forwardAll fills the forward memo of edge ei for every node still
// missing, in one sharded multi-source sweep (engine.ReachBatch) instead of
// a per-source fan.
func (ev *evaluator) forwardAll(ei int) {
	if ev.fwdOK[ei] {
		return
	}
	var missing []int
	for u := 0; u < ev.db.NumNodes(); u++ {
		if _, ok := ev.fwd[ei][u]; !ok {
			missing = append(missing, u)
		}
	}
	res := engine.ReachBatchEx(ev.ix, ev.db.Partition(engine.Shards()), ev.ents[ei].cache, missing, true,
		engine.BatchOpts{Budget: ev.bud})
	if res.Truncated {
		return // partial sweep: don't memoize, the join is unwinding anyway
	}
	for i, u := range missing {
		ev.fwd[ei][u] = res.Hits[i]
	}
	ev.fwdOK[ei] = true
}

// ensureForward fills the forward memo (and, when ranked, the level memo)
// for exactly the given sources in one batched sweep. Results computed under
// a canceled budget are discarded rather than memoized — a truncated hit
// list is sound for the current unwinding but would poison later lookups.
func (ev *evaluator) ensureForward(ei int, srcs []int) {
	var missing []int
	for _, u := range srcs {
		if _, ok := ev.fwd[ei][u]; !ok {
			missing = append(missing, u)
		} else if ev.ranked {
			if _, ok := ev.fwdLev[ei][u]; !ok {
				missing = append(missing, u)
			}
		}
	}
	if len(missing) == 0 {
		return
	}
	res := engine.ReachBatchEx(ev.ix, ev.db.Partition(engine.Shards()), ev.ents[ei].cache, missing, true,
		engine.BatchOpts{Budget: ev.bud, Levels: ev.ranked, Weight: ev.rankedWeight()})
	if res.Truncated {
		return
	}
	for i, u := range missing {
		ev.fwd[ei][u] = res.Hits[i]
		if ev.ranked {
			ev.fwdLev[ei][u] = res.Levs[i]
		}
	}
}

// ensureBackward mirrors ensureForward for reverse sweeps: it fills the
// backward memo (and, when ranked, the level memo) for exactly the given
// targets in one sharded multi-source sweep over the reversed automaton.
func (ev *evaluator) ensureBackward(ei int, tgts []int) {
	var missing []int
	for _, v := range tgts {
		if _, ok := ev.rev[ei][v]; !ok {
			missing = append(missing, v)
		} else if ev.ranked {
			if _, ok := ev.revLev[ei][v]; !ok {
				missing = append(missing, v)
			}
		}
	}
	if len(missing) == 0 {
		return
	}
	_, rc := ev.ents[ei].reverse()
	res := engine.ReachBatchEx(ev.ix, ev.db.Partition(engine.Shards()), rc, missing, false,
		engine.BatchOpts{Budget: ev.bud, Levels: ev.ranked, Weight: ev.rankedWeight()})
	if res.Truncated {
		return
	}
	for i, v := range missing {
		ev.rev[ei][v] = res.Hits[i]
		if ev.ranked {
			ev.revLev[ei][v] = res.Levs[i]
		}
	}
}

// forwardLev is forward plus the BFS level (shortest matching-path edge
// count) per target, for ranked enumeration.
func (ev *evaluator) forwardLev(ei, u int) ([]int, []int32) {
	if vs, ok := ev.fwd[ei][u]; ok {
		if ls, ok2 := ev.fwdLev[ei][u]; ok2 {
			return vs, ls
		}
	}
	vs, ls := engine.ReachLevelsW(ev.ix, ev.ents[ei].cache, u, true, ev.bud, ev.weight)
	if !ev.bud.Canceled() {
		ev.fwd[ei][u] = vs
		ev.fwdLev[ei][u] = ls
	}
	return vs, ls
}

// backward returns the nodes u with a path u→v matching edge ei's regex.
func (ev *evaluator) backward(ei, v int) []int {
	if us, ok := ev.rev[ei][v]; ok {
		return us
	}
	_, rc := ev.ents[ei].reverse()
	us := engine.ReachBitsToList(engine.ReachBitsBudget(ev.ix, rc, v, false, ev.bud))
	if !ev.bud.Canceled() {
		ev.rev[ei][v] = us
	}
	return us
}

// backwardLev is backward plus the BFS level per source.
func (ev *evaluator) backwardLev(ei, v int) ([]int, []int32) {
	if us, ok := ev.rev[ei][v]; ok {
		if ls, ok2 := ev.revLev[ei][v]; ok2 {
			return us, ls
		}
	}
	_, rc := ev.ents[ei].reverse()
	us, ls := engine.ReachLevelsW(ev.ix, rc, v, false, ev.bud, ev.weight)
	if !ev.bud.Canceled() {
		ev.rev[ei][v] = us
		ev.revLev[ei][v] = ls
	}
	return us, ls
}

func (ev *evaluator) hasEdgePath(ei, u, v int) bool {
	ws := ev.forward(ei, u)
	i := sort.SearchInts(ws, v)
	return i < len(ws) && ws[i] == v
}

// intsKey encodes an integer tuple as a compact binary map key.
func intsKey[T interface{ ~int | ~int32 }](xs []T) string {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
	}
	return string(buf)
}

// expandGroup returns all end tuples reachable from the given source tuple
// under the group's synchronized semantics (plus, when ranked, the product
// depth each first appeared at), memoized. Expansions cut short by the
// budget are returned for the current unwinding but not memoized.
func (ev *evaluator) expandGroup(gi int, src []int) groupExp {
	k := intsKey(src)
	if res, ok := ev.gmemo[gi][k]; ok {
		return res
	}
	g := ev.q.Groups[gi]
	var res groupExp
	weighted := ev.ranked && ev.weight != nil
	switch rel := g.Rel.(type) {
	case *Equality:
		if weighted {
			res = ev.expandEqualityW(g, src)
		} else {
			res = ev.expandEquality(g, src)
		}
	case *NFARelation:
		if weighted {
			res = ev.expandNFARelW(g, rel, src)
		} else {
			res = ev.expandNFARel(g, rel, src)
		}
	default:
		panic("ecrpq: unknown relation kind")
	}
	if !ev.bud.Canceled() {
		ev.gmemo[gi][k] = res
	}
	return res
}

// prodState and prodKey are retained for the witness-reconstruction product
// searches (witness.go), which re-run the cold path with parent tracking.
func prodKey(nodes []int, setKeys []string, extra string) string {
	var b []byte
	for _, n := range nodes {
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
	}
	for _, k := range setKeys {
		b = append(b, 0xff)
		b = append(b, k...)
	}
	b = append(b, 0xfe)
	b = append(b, extra...)
	return string(b)
}

// encodeNodesIDs writes the (node, set id) pair encoding into buf (reused
// across calls), the shared layout of nodesIDsKey and relStateKey.
func encodeNodesIDs(buf []byte, nodes, ids []int32) []byte {
	buf = buf[:0]
	for i := range nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nodes[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ids[i]))
	}
	return buf
}

// nodesIDsKey encodes a product configuration of (node, set id) pairs as a
// compact binary key; buf is reused across calls.
func nodesIDsKey(buf []byte, nodes, ids []int32) ([]byte, string) {
	buf = encodeNodesIDs(buf, nodes, ids)
	return buf, string(buf)
}

// relStateKey is nodesIDsKey plus the relation set id and the freeze mask.
func relStateKey(buf []byte, nodes, ids []int32, rid int32, mask uint64) ([]byte, string) {
	buf = encodeNodesIDs(buf, nodes, ids)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rid))
	buf = binary.LittleEndian.AppendUint64(buf, mask)
	return buf, string(buf)
}

func toInts(nodes []int32) []int {
	out := make([]int, len(nodes))
	for i, x := range nodes {
		out[i] = int(x)
	}
	return out
}

// expandEquality explores the lock-step product: all components consume the
// same symbol in every step; acceptance requires every component NFA to
// accept simultaneously (equal words have equal length). The product runs
// over interned DFA set ids and label-indexed adjacency spans.
func (ev *evaluator) expandEquality(g Group, src []int) groupExp {
	s := len(g.Edges)
	caches := make([]*automata.SubsetCache, s)
	for i, ei := range g.Edges {
		caches[i] = ev.ents[ei].cache
	}
	ix := ev.ix
	nSyms := ix.NumSyms()

	type state struct {
		nodes []int32
		ids   []int32
	}
	init := state{nodes: make([]int32, s), ids: make([]int32, s)}
	for i := range init.nodes {
		init.nodes[i] = int32(src[i])
		init.ids[i] = caches[i].Start()
	}
	var kbuf []byte
	var k string
	kbuf, k = nodesIDsKey(kbuf, init.nodes, init.ids)
	seen := map[string]bool{k: true}
	queue := []state{init}
	var out groupExp
	outSeen := map[string]bool{}
	nextIDs := make([]int32, s)
	opts := make([][]int32, s)
	depth, levelEnd := int32(0), 1
	for qi := 0; qi < len(queue); qi++ {
		if qi == levelEnd {
			depth++
			levelEnd = len(queue)
			if ev.bud.Canceled() {
				break
			}
		}
		cur := queue[qi]
		allFinal := true
		for i := range caches {
			if !caches[i].Final(cur.ids[i]) {
				allFinal = false
				break
			}
		}
		if allFinal {
			k := intsKey(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out.ends = append(out.ends, toInts(cur.nodes))
				if ev.ranked {
					out.deps = append(out.deps, depth)
				}
			}
		}
		for sy := int32(0); sy < int32(nSyms); sy++ {
			sym := int32(ix.Sym(sy))
			ok := true
			for i := range caches {
				// candidate next nodes per component, from the label index
				opts[i] = ix.OutByID(int(cur.nodes[i]), sy)
				if len(opts[i]) == 0 {
					ok = false
					break
				}
				nextIDs[i] = caches[i].Step(cur.ids[i], sym)
				if nextIDs[i] == automata.Dead {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			productNodes32(opts, func(nodes []int32) {
				var k string
				kbuf, k = nodesIDsKey(kbuf, nodes, nextIDs)
				if !seen[k] {
					seen[k] = true
					queue = append(queue, state{
						nodes: append([]int32(nil), nodes...),
						ids:   append([]int32(nil), nextIDs...),
					})
				}
			})
		}
	}
	return out
}

// expandNFARel explores the padded product driven by the relation NFA:
// components with a ⊥ column are frozen (their word has ended, so their
// edge NFA must accept at freeze time); acceptance requires the relation
// NFA to accept and every unfrozen component NFA to accept. Component and
// relation automata run through their interned subset caches.
func (ev *evaluator) expandNFARel(g Group, rel *NFARelation, src []int) groupExp {
	s := len(g.Edges)
	caches := make([]*automata.SubsetCache, s)
	for i, ei := range g.Edges {
		caches[i] = ev.ents[ei].cache
	}
	ix := ev.ix
	rc := rel.subsetCache()
	labels := rel.labelSet()

	type state struct {
		nodes []int32
		ids   []int32
		rid   int32
		mask  uint64
	}
	init := state{nodes: make([]int32, s), ids: make([]int32, s), rid: rc.Start()}
	for i := range init.nodes {
		init.nodes[i] = int32(src[i])
		init.ids[i] = caches[i].Start()
	}
	var kbuf []byte
	var k string
	kbuf, k = relStateKey(kbuf, init.nodes, init.ids, init.rid, 0)
	seen := map[string]bool{k: true}
	queue := []state{init}
	var out groupExp
	outSeen := map[string]bool{}
	nextIDs := make([]int32, s)
	opts := make([][]int32, s)
	selfOpts := make([]int32, s) // per-component single-node option backing
	depth, levelEnd := int32(0), 1
	for qi := 0; qi < len(queue); qi++ {
		if qi == levelEnd {
			depth++
			levelEnd = len(queue)
			if ev.bud.Canceled() {
				break
			}
		}
		cur := queue[qi]
		accept := rc.Final(cur.rid)
		if accept {
			for i := range caches {
				if cur.mask&(1<<uint(i)) != 0 {
					continue
				}
				if !caches[i].Final(cur.ids[i]) {
					accept = false
					break
				}
			}
		}
		if accept {
			k := intsKey(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out.ends = append(out.ends, toInts(cur.nodes))
				if ev.ranked {
					out.deps = append(out.deps, depth)
				}
			}
		}
		for _, code := range labels {
			rnext := rc.Step(cur.rid, code)
			if rnext == automata.Dead {
				continue
			}
			tuple := rel.codec.decode(code)
			mask := cur.mask
			ok := true
			for i := range tuple {
				if tuple[i] == Bottom {
					// component i is (or becomes) frozen; its word must be
					// complete, i.e. its NFA accepting at freeze time
					if mask&(1<<uint(i)) == 0 {
						if !caches[i].Final(cur.ids[i]) {
							ok = false
							break
						}
						mask |= 1 << uint(i)
					}
					nextIDs[i] = cur.ids[i]
					selfOpts[i] = cur.nodes[i]
					opts[i] = selfOpts[i : i+1]
					continue
				}
				if mask&(1<<uint(i)) != 0 {
					ok = false // symbol after ⊥ in the same column
					break
				}
				nextIDs[i] = caches[i].Step(cur.ids[i], int32(tuple[i]))
				if nextIDs[i] == automata.Dead {
					ok = false
					break
				}
				opts[i] = ix.OutByLabel(int(cur.nodes[i]), tuple[i])
				if len(opts[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			productNodes32(opts, func(nodes []int32) {
				var k string
				kbuf, k = relStateKey(kbuf, nodes, nextIDs, rnext, mask)
				if !seen[k] {
					seen[k] = true
					queue = append(queue, state{
						nodes: append([]int32(nil), nodes...),
						ids:   append([]int32(nil), nextIDs...),
						rid:   rnext,
						mask:  mask,
					})
				}
			})
		}
	}
	return out
}

// productNodes32 enumerates the cartesian product of node options.
func productNodes32(opts [][]int32, f func([]int32)) {
	nodes := make([]int32, len(opts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(opts) {
			f(nodes)
			return
		}
		for _, v := range opts[i] {
			nodes[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// productNodes enumerates the cartesian product of node options (witness
// reconstruction still uses the int-slice form).
func (ev *evaluator) productNodes(opts [][]int, f func([]int)) {
	nodes := make([]int, len(opts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(opts) {
			f(nodes)
			return
		}
		for _, v := range opts[i] {
			nodes[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// constraintOrder builds the join's execution order: the ungrouped edges
// are ordered by the cost-based planner over each edge NFA's estimation
// shape crossed with the database's per-label statistics (bound-variable
// selectivity propagated from pre; the structural most-bound-first greedy
// when the planner is disabled), then the relation groups follow in query
// order. This is the single ordering decision shared by run and runCheck —
// it used to be duplicated, structurally, in both.
func (ev *evaluator) constraintOrder(pre map[string]int) []constraintRef {
	var unary []int
	for i := range ev.q.Pattern.Edges {
		if !ev.inGroup[i] && !ev.dropped[i] {
			unary = append(unary, i)
		}
	}
	atoms := make([]planner.Atom, len(unary))
	for j, ei := range unary {
		e := ev.q.Pattern.Edges[ei]
		atoms[j] = planner.Atom{From: e.From, To: e.To, Est: ev.ents[ei].shape().Estimate(ev.stats)}
	}
	spec := planner.Order(atoms, boundSet(pre))
	order := make([]constraintRef, 0, len(unary)+len(ev.q.Groups))
	for _, ai := range spec.Order {
		order = append(order, constraintRef{kind: cEdge, idx: unary[ai]})
	}
	for gi := range ev.q.Groups {
		order = append(order, constraintRef{kind: cGroup, idx: gi})
	}
	return order
}

// run executes the backtracking join, materializing the result set. If
// boolOnly, it stops at the first matching assignment. It is the
// accumulate-everything shim over runStream (stream.go), which is the real
// enumeration loop.
func (ev *evaluator) run(boolOnly bool) (*pattern.TupleSet, error) {
	out := pattern.NewTupleSet()
	err := ev.runStream(nil, func(t pattern.Tuple, _ int) bool {
		out.Add(t)
		return !boolOnly
	})
	return out, err
}

type cKind int

const (
	cEdge cKind = iota
	cGroup
)

type constraintRef struct {
	kind cKind
	idx  int
}

// satisfyEdge is the cost-blind form kept for the witness-reconstruction
// search; the join paths go through satisfyEdgeCost.
func (ev *evaluator) satisfyEdge(ei int, assign map[string]int, cont func()) {
	ev.satisfyEdgeCost(ei, assign, func(int) { cont() })
}

// satisfyEdgeCost enumerates the edge's satisfying bindings, passing each
// continuation the edge's witness contribution — the BFS level (shortest
// matching-path length in graph edges) of the chosen target — when the
// evaluator is ranked, and 0 otherwise.
func (ev *evaluator) satisfyEdgeCost(ei int, assign map[string]int, cont func(cost int)) {
	e := ev.q.Pattern.Edges[ei]
	u, uok := assign[e.From]
	v, vok := assign[e.To]
	switch {
	case uok && vok:
		if ev.ranked {
			ws, ls := ev.forwardLev(ei, u)
			if i := sort.SearchInts(ws, v); i < len(ws) && ws[i] == v {
				cont(int(ls[i]))
			}
			return
		}
		if ev.hasEdgePath(ei, u, v) {
			cont(0)
		}
	case uok:
		if ev.ranked {
			ws, ls := ev.forwardLev(ei, u)
			for i, w := range ws {
				assign[e.To] = w
				cont(int(ls[i]))
			}
		} else {
			for _, w := range ev.forward(ei, u) {
				assign[e.To] = w
				cont(0)
			}
		}
		delete(assign, e.To)
	case vok:
		if ev.ranked {
			us, ls := ev.backwardLev(ei, v)
			for i, w := range us {
				assign[e.From] = w
				cont(int(ls[i]))
			}
		} else {
			for _, w := range ev.backward(ei, v) {
				assign[e.From] = w
				cont(0)
			}
		}
		delete(assign, e.From)
	default:
		// Both ends unbound. The materialized path prefetches every source
		// in one sharded multi-source sweep; the streaming path walks the
		// sources in escalating chunks (1, 4, 16, 64, then 256-wide) so the
		// first row costs one small batch, while the geometric growth keeps
		// the full drain within a constant factor of the single sweep.
		n := ev.db.NumNodes()
		if !ev.lazy {
			ev.forwardAll(ei)
		}
		chunk := 1
		for lo := 0; lo < n; {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if ev.lazy {
				if ev.bud.Canceled() {
					break
				}
				srcs := make([]int, 0, hi-lo)
				for u := lo; u < hi; u++ {
					srcs = append(srcs, u)
				}
				ev.ensureForward(ei, srcs)
			}
			for u := lo; u < hi; u++ {
				assign[e.From] = u
				var targets []int
				var levs []int32
				if ev.ranked {
					targets, levs = ev.forwardLev(ei, u)
				} else {
					targets = ev.forward(ei, u)
				}
				if e.From == e.To {
					for i, w := range targets {
						if w == u {
							if ev.ranked {
								cont(int(levs[i]))
							} else {
								cont(0)
							}
						}
					}
					continue
				}
				for i, w := range targets {
					assign[e.To] = w
					if ev.ranked {
						cont(int(levs[i]))
					} else {
						cont(0)
					}
				}
				delete(assign, e.To)
			}
			lo = hi
			if chunk < 256 {
				chunk *= 4
			}
		}
		delete(assign, e.From)
	}
}

// satisfyGroup is the cost-blind form kept for the witness-reconstruction
// search; the join paths go through satisfyGroupCost.
func (ev *evaluator) satisfyGroup(gi int, assign map[string]int, cont func()) {
	ev.satisfyGroupCost(gi, assign, func(int) { cont() })
}

// satisfyGroupCost enumerates the group's satisfying bindings, passing each
// continuation the group's witness contribution — the synchronized product
// depth (shared word length) of the chosen end tuple — when ranked.
func (ev *evaluator) satisfyGroupCost(gi int, assign map[string]int, cont func(cost int)) {
	g := ev.q.Groups[gi]
	srcVars := make([]string, len(g.Edges))
	tgtVars := make([]string, len(g.Edges))
	for i, ei := range g.Edges {
		srcVars[i] = ev.q.Pattern.Edges[ei].From
		tgtVars[i] = ev.q.Pattern.Edges[ei].To
	}
	// enumerate unbound source variables
	var unbound []string
	seenVar := map[string]bool{}
	for _, x := range srcVars {
		if _, ok := assign[x]; !ok && !seenVar[x] {
			seenVar[x] = true
			unbound = append(unbound, x)
		}
	}
	var bindSrc func(i int)
	bindSrc = func(i int) {
		if i < len(unbound) {
			for u := 0; u < ev.db.NumNodes(); u++ {
				assign[unbound[i]] = u
				bindSrc(i + 1)
			}
			delete(assign, unbound[i])
			return
		}
		src := make([]int, len(srcVars))
		for j, x := range srcVars {
			src[j] = assign[x]
		}
		exp := ev.expandGroup(gi, src)
		for ti, end := range exp.ends {
			// bind/check target variables consistently
			var newly []string
			ok := true
			for j, y := range tgtVars {
				if v, bound := assign[y]; bound {
					if v != end[j] {
						ok = false
						break
					}
					continue
				}
				assign[y] = end[j]
				newly = append(newly, y)
			}
			if ok {
				cost := 0
				if exp.deps != nil {
					cost = int(exp.deps[ti])
				}
				cont(cost)
			}
			for _, y := range newly {
				delete(assign, y)
			}
		}
	}
	bindSrc(0)
}
