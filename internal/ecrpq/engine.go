package ecrpq

import (
	"fmt"
	"sort"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// Eval computes q(D): the set of output tuples (node ids in the order of
// q.Pattern.Out). For Boolean queries the result is the empty tuple set or
// the set containing the empty tuple (D |= q).
//
// The algorithm follows the product constructions behind the paper's NL
// upper bounds, realized deterministically: ungrouped edges become binary
// reachability relations via NFA×D product search; each relation group is
// expanded by a synchronized product over D^s (lock-step moves for equality
// relations; relation-NFA-driven moves with ⊥ masks for general regular
// relations); a backtracking join over node variables combines them.
func Eval(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return nil, err
	}
	return ev.run(false)
}

// EvalBool decides D |= q for Boolean q (it also works for non-Boolean
// queries, deciding non-emptiness of q(D)).
func EvalBool(q *Query, db *graph.DB) (bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return false, err
	}
	res, err := ev.run(true)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// EvalUnion computes ⋃ qi(D).
func EvalUnion(u *Union, db *graph.DB) (*pattern.TupleSet, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := pattern.NewTupleSet()
	for _, m := range u.Members {
		res, err := Eval(m, db)
		if err != nil {
			return nil, err
		}
		for _, t := range res.Sorted() {
			out.Add(t)
		}
	}
	return out, nil
}

// EvalUnionBool decides whether some member matches.
func EvalUnionBool(u *Union, db *graph.DB) (bool, error) {
	if err := u.Validate(); err != nil {
		return false, err
	}
	for _, m := range u.Members {
		ok, err := EvalBool(m, db)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

type evaluator struct {
	q     *Query
	db    *graph.DB
	sigma []rune
	nfas  []*automata.NFA // per edge
	rnfas []*automata.NFA // reversed, built lazily
	fwd   []map[int][]int // per edge: memoized u -> targets
	rev   []map[int][]int // per edge: memoized v -> sources
	gmemo []map[string][][]int

	inGroup []bool
}

func newEvaluator(q *Query, db *graph.DB) (*evaluator, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sigma := xregex.MergeAlphabets(db.Alphabet(), xregex.AlphabetOf(q.Pattern.Labels()...))
	ev := &evaluator{
		q:       q,
		db:      db,
		sigma:   sigma,
		nfas:    make([]*automata.NFA, len(q.Pattern.Edges)),
		rnfas:   make([]*automata.NFA, len(q.Pattern.Edges)),
		fwd:     make([]map[int][]int, len(q.Pattern.Edges)),
		rev:     make([]map[int][]int, len(q.Pattern.Edges)),
		gmemo:   make([]map[string][][]int, len(q.Groups)),
		inGroup: make([]bool, len(q.Pattern.Edges)),
	}
	for i, e := range q.Pattern.Edges {
		m, err := xregex.Compile(e.Label, sigma)
		if err != nil {
			return nil, err
		}
		ev.nfas[i] = m
		ev.fwd[i] = map[int][]int{}
		ev.rev[i] = map[int][]int{}
	}
	for gi, g := range q.Groups {
		ev.gmemo[gi] = map[string][][]int{}
		for _, ei := range g.Edges {
			ev.inGroup[ei] = true
		}
	}
	return ev, nil
}

// reverse returns the reversed NFA of edge ei (lazy).
func (ev *evaluator) reverse(ei int) *automata.NFA {
	if ev.rnfas[ei] != nil {
		return ev.rnfas[ei]
	}
	m := ev.nfas[ei]
	r := automata.New(m.NumStates() + 1)
	newStart := m.NumStates()
	r.SetStart(newStart)
	for p := 0; p < m.NumStates(); p++ {
		for _, t := range m.Transitions(p) {
			r.AddTr(t.To, t.Label, p)
		}
		if m.IsFinal(p) {
			r.AddTr(newStart, automata.Epsilon, p)
		}
	}
	r.SetFinal(m.Start(), true)
	ev.rnfas[ei] = r
	return r
}

// reachProduct runs the NFA×D product from (src, m.Start) and returns the
// sorted graph nodes paired with an accepting NFA state. dir selects the
// forward graph (out edges) or the reversed graph (in edges).
func (ev *evaluator) reachProduct(m *automata.NFA, src int, forward bool) []int {
	type cfg struct {
		node int
		set  string
	}
	start := m.EpsClosure(m.Start())
	seen := map[cfg]bool{}
	sets := map[string]automata.StateSet{}
	key := func(s automata.StateSet) string {
		k := s.Key()
		sets[k] = s
		return k
	}
	var hits []int
	hitSet := map[int]bool{}
	queue := []struct {
		node int
		set  automata.StateSet
	}{{src, start}}
	seen[cfg{src, key(start)}] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if m.ContainsFinal(cur.set) && !hitSet[cur.node] {
			hitSet[cur.node] = true
			hits = append(hits, cur.node)
		}
		var edges []graph.Edge
		if forward {
			edges = ev.db.Out(cur.node)
		} else {
			edges = ev.db.In(cur.node)
		}
		// group moves by label to avoid recomputing Step per edge
		bySym := map[rune][]int{}
		for _, e := range edges {
			if forward {
				bySym[e.Label] = append(bySym[e.Label], e.To)
			} else {
				bySym[e.Label] = append(bySym[e.Label], e.From)
			}
		}
		for sym, targets := range bySym {
			next := m.Step(cur.set, int32(sym))
			if len(next) == 0 {
				continue
			}
			k := key(next)
			for _, v := range targets {
				c := cfg{v, k}
				if !seen[c] {
					seen[c] = true
					queue = append(queue, struct {
						node int
						set  automata.StateSet
					}{v, next})
				}
			}
		}
	}
	sort.Ints(hits)
	return hits
}

// forward returns the nodes v with a path u→v matching edge ei's regex.
func (ev *evaluator) forward(ei, u int) []int {
	if vs, ok := ev.fwd[ei][u]; ok {
		return vs
	}
	vs := ev.reachProduct(ev.nfas[ei], u, true)
	ev.fwd[ei][u] = vs
	return vs
}

// backward returns the nodes u with a path u→v matching edge ei's regex.
func (ev *evaluator) backward(ei, v int) []int {
	if us, ok := ev.rev[ei][v]; ok {
		return us
	}
	us := ev.reachProduct(ev.reverse(ei), v, false)
	ev.rev[ei][v] = us
	return us
}

func (ev *evaluator) hasEdgePath(ei, u, v int) bool {
	for _, w := range ev.forward(ei, u) {
		if w == v {
			return true
		}
	}
	return false
}

// expandGroup returns all end tuples reachable from the given source tuple
// under the group's synchronized semantics, memoized.
func (ev *evaluator) expandGroup(gi int, src []int) [][]int {
	k := fmt.Sprint(src)
	if res, ok := ev.gmemo[gi][k]; ok {
		return res
	}
	g := ev.q.Groups[gi]
	var res [][]int
	switch rel := g.Rel.(type) {
	case *Equality:
		res = ev.expandEquality(g, src)
	case *NFARelation:
		res = ev.expandNFARel(g, rel, src)
	default:
		panic("ecrpq: unknown relation kind")
	}
	ev.gmemo[gi][k] = res
	return res
}

type prodState struct {
	nodes []int
	sets  []automata.StateSet
}

func prodKey(nodes []int, setKeys []string, extra string) string {
	return fmt.Sprint(nodes, setKeys, extra)
}

// expandEquality explores the lock-step product: all components consume the
// same symbol in every step; acceptance requires every component NFA to
// accept simultaneously (equal words have equal length).
func (ev *evaluator) expandEquality(g Group, src []int) [][]int {
	s := len(g.Edges)
	ms := make([]*automata.NFA, s)
	for i, ei := range g.Edges {
		ms[i] = ev.nfas[ei]
	}
	startSets := make([]automata.StateSet, s)
	keys := make([]string, s)
	for i, m := range ms {
		startSets[i] = m.EpsClosure(m.Start())
		if len(startSets[i]) == 0 {
			return nil
		}
		keys[i] = startSets[i].Key()
	}
	init := prodState{nodes: append([]int(nil), src...), sets: startSets}
	seen := map[string]bool{prodKey(init.nodes, keys, ""): true}
	queue := []prodState{init}
	var out [][]int
	outSeen := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		allFinal := true
		for i, m := range ms {
			if !m.ContainsFinal(cur.sets[i]) {
				allFinal = false
				break
			}
		}
		if allFinal {
			k := fmt.Sprint(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out = append(out, append([]int(nil), cur.nodes...))
			}
		}
		for _, sym := range ev.sigma {
			nextSets := make([]automata.StateSet, s)
			nextKeys := make([]string, s)
			ok := true
			for i, m := range ms {
				nextSets[i] = m.Step(cur.sets[i], int32(sym))
				if len(nextSets[i]) == 0 {
					ok = false
					break
				}
				nextKeys[i] = nextSets[i].Key()
			}
			if !ok {
				continue
			}
			// candidate next nodes per component
			opts := make([][]int, s)
			for i := range opts {
				for _, e := range ev.db.Out(cur.nodes[i]) {
					if e.Label == sym {
						opts[i] = append(opts[i], e.To)
					}
				}
				if len(opts[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ev.productNodes(opts, func(nodes []int) {
				k := prodKey(nodes, nextKeys, "")
				if !seen[k] {
					seen[k] = true
					queue = append(queue, prodState{nodes: append([]int(nil), nodes...), sets: nextSets})
				}
			})
		}
	}
	return out
}

// expandNFARel explores the padded product driven by the relation NFA:
// components with a ⊥ column are frozen (their word has ended, so their
// edge NFA must accept at freeze time); acceptance requires the relation
// NFA to accept and every unfrozen component NFA to accept.
func (ev *evaluator) expandNFARel(g Group, rel *NFARelation, src []int) [][]int {
	s := len(g.Edges)
	ms := make([]*automata.NFA, s)
	for i, ei := range g.Edges {
		ms[i] = ev.nfas[ei]
	}
	type state struct {
		nodes []int
		sets  []automata.StateSet
		rset  automata.StateSet
		mask  uint64
	}
	startSets := make([]automata.StateSet, s)
	keys := make([]string, s)
	for i, m := range ms {
		startSets[i] = m.EpsClosure(m.Start())
		if len(startSets[i]) == 0 {
			return nil
		}
		keys[i] = startSets[i].Key()
	}
	rstart := rel.M.EpsClosure(rel.M.Start())
	key := func(st state) string {
		ks := make([]string, s)
		for i, set := range st.sets {
			ks[i] = set.Key()
		}
		return prodKey(st.nodes, ks, fmt.Sprint(st.rset.Key(), st.mask))
	}
	init := state{nodes: append([]int(nil), src...), sets: startSets, rset: rstart}
	seen := map[string]bool{key(init): true}
	queue := []state{init}
	labels := rel.M.Labels()
	var out [][]int
	outSeen := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		accept := rel.M.ContainsFinal(cur.rset)
		if accept {
			for i, m := range ms {
				if cur.mask&(1<<uint(i)) != 0 {
					continue
				}
				if !m.ContainsFinal(cur.sets[i]) {
					accept = false
					break
				}
			}
		}
		if accept {
			k := fmt.Sprint(cur.nodes)
			if !outSeen[k] {
				outSeen[k] = true
				out = append(out, append([]int(nil), cur.nodes...))
			}
		}
		for _, code := range labels {
			rnext := rel.M.Step(cur.rset, code)
			if len(rnext) == 0 {
				continue
			}
			tuple := rel.codec.decode(code)
			nextSets := make([]automata.StateSet, s)
			opts := make([][]int, s)
			mask := cur.mask
			ok := true
			for i := range tuple {
				if tuple[i] == Bottom {
					// component i is (or becomes) frozen; its word must be
					// complete, i.e. its NFA accepting at freeze time
					if mask&(1<<uint(i)) == 0 {
						if !ms[i].ContainsFinal(cur.sets[i]) {
							ok = false
							break
						}
						mask |= 1 << uint(i)
					}
					nextSets[i] = cur.sets[i]
					opts[i] = []int{cur.nodes[i]}
					continue
				}
				if mask&(1<<uint(i)) != 0 {
					ok = false // symbol after ⊥ in the same column
					break
				}
				nextSets[i] = ms[i].Step(cur.sets[i], int32(tuple[i]))
				if len(nextSets[i]) == 0 {
					ok = false
					break
				}
				for _, e := range ev.db.Out(cur.nodes[i]) {
					if e.Label == tuple[i] {
						opts[i] = append(opts[i], e.To)
					}
				}
				if len(opts[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ev.productNodes(opts, func(nodes []int) {
				st := state{nodes: append([]int(nil), nodes...), sets: nextSets, rset: rnext, mask: mask}
				k := key(st)
				if !seen[k] {
					seen[k] = true
					queue = append(queue, st)
				}
			})
		}
	}
	return out
}

// productNodes enumerates the cartesian product of node options.
func (ev *evaluator) productNodes(opts [][]int, f func([]int)) {
	nodes := make([]int, len(opts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(opts) {
			f(nodes)
			return
		}
		for _, v := range opts[i] {
			nodes[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// run executes the backtracking join. If boolOnly, it stops at the first
// matching assignment.
func (ev *evaluator) run(boolOnly bool) (*pattern.TupleSet, error) {
	q := ev.q
	// Build constraint order: ungrouped edges greedily by connectivity,
	// then groups (preferring groups whose sources become bound).
	var unary []int
	for i := range q.Pattern.Edges {
		if !ev.inGroup[i] {
			unary = append(unary, i)
		}
	}
	bound := map[string]bool{}
	var order []constraintRef
	remaining := append([]int(nil), unary...)
	for len(remaining) > 0 {
		best, bestScore := -1, -1
		for idx, ei := range remaining {
			score := 0
			e := q.Pattern.Edges[ei]
			if bound[e.From] {
				score += 2
			}
			if bound[e.To] {
				score++
			}
			if score > bestScore {
				bestScore, best = score, idx
			}
		}
		ei := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		e := q.Pattern.Edges[ei]
		bound[e.From], bound[e.To] = true, true
		order = append(order, constraintRef{kind: cEdge, idx: ei})
	}
	for gi := range q.Groups {
		order = append(order, constraintRef{kind: cGroup, idx: gi})
		for _, ei := range q.Groups[gi].Edges {
			e := q.Pattern.Edges[ei]
			bound[e.From], bound[e.To] = true, true
		}
	}

	out := pattern.NewTupleSet()
	assign := map[string]int{}
	stop := false
	var rec func(ci int)
	rec = func(ci int) {
		if stop {
			return
		}
		if ci == len(order) {
			t := make(pattern.Tuple, len(q.Pattern.Out))
			for i, z := range q.Pattern.Out {
				v, ok := assign[z]
				if !ok {
					return // output var not constrained; Validate prevents this
				}
				t[i] = v
			}
			out.Add(t)
			if boolOnly {
				stop = true
			}
			return
		}
		c := order[ci]
		if c.kind == cEdge {
			ev.satisfyEdge(c.idx, assign, func() { rec(ci + 1) })
		} else {
			ev.satisfyGroup(c.idx, assign, func() { rec(ci + 1) })
		}
	}
	rec(0)
	return out, nil
}

type cKind int

const (
	cEdge cKind = iota
	cGroup
)

type constraintRef struct {
	kind cKind
	idx  int
}

func (ev *evaluator) satisfyEdge(ei int, assign map[string]int, cont func()) {
	e := ev.q.Pattern.Edges[ei]
	u, uok := assign[e.From]
	v, vok := assign[e.To]
	switch {
	case uok && vok:
		if ev.hasEdgePath(ei, u, v) {
			cont()
		}
	case uok:
		for _, w := range ev.forward(ei, u) {
			assign[e.To] = w
			cont()
		}
		delete(assign, e.To)
	case vok:
		for _, w := range ev.backward(ei, v) {
			assign[e.From] = w
			cont()
		}
		delete(assign, e.From)
	default:
		for u := 0; u < ev.db.NumNodes(); u++ {
			assign[e.From] = u
			targets := ev.forward(ei, u)
			if e.From == e.To {
				for _, w := range targets {
					if w == u {
						cont()
					}
				}
				continue
			}
			for _, w := range targets {
				assign[e.To] = w
				cont()
			}
			delete(assign, e.To)
		}
		delete(assign, e.From)
	}
}

func (ev *evaluator) satisfyGroup(gi int, assign map[string]int, cont func()) {
	g := ev.q.Groups[gi]
	srcVars := make([]string, len(g.Edges))
	tgtVars := make([]string, len(g.Edges))
	for i, ei := range g.Edges {
		srcVars[i] = ev.q.Pattern.Edges[ei].From
		tgtVars[i] = ev.q.Pattern.Edges[ei].To
	}
	// enumerate unbound source variables
	var unbound []string
	seenVar := map[string]bool{}
	for _, x := range srcVars {
		if _, ok := assign[x]; !ok && !seenVar[x] {
			seenVar[x] = true
			unbound = append(unbound, x)
		}
	}
	var bindSrc func(i int)
	bindSrc = func(i int) {
		if i < len(unbound) {
			for u := 0; u < ev.db.NumNodes(); u++ {
				assign[unbound[i]] = u
				bindSrc(i + 1)
			}
			delete(assign, unbound[i])
			return
		}
		src := make([]int, len(srcVars))
		for j, x := range srcVars {
			src[j] = assign[x]
		}
		ends := ev.expandGroup(gi, src)
		for _, end := range ends {
			// bind/check target variables consistently
			var newly []string
			ok := true
			for j, y := range tgtVars {
				if v, bound := assign[y]; bound {
					if v != end[j] {
						ok = false
						break
					}
					continue
				}
				assign[y] = end[j]
				newly = append(newly, y)
			}
			if ok {
				cont()
			}
			for _, y := range newly {
				delete(assign, y)
			}
		}
	}
	bindSrc(0)
}
