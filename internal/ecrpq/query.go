package ecrpq

import (
	"fmt"

	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// Group attaches a regular relation to a set of pattern edges: the matching
// words of those edges (in edge-index order) must form a tuple of the
// relation.
type Group struct {
	Edges []int
	Rel   Relation
}

// Query is an ECRPQ: q = z̄ ← G, ∧_j R_j(ω̄_j). Edges not mentioned in any
// group are constrained only by their own (classical) regular expression.
type Query struct {
	Pattern *pattern.Graph
	Groups  []Group
}

// Validate checks that edge labels are classical, group arities match, and
// no edge belongs to two groups.
func (q *Query) Validate() error {
	if err := q.Pattern.Validate(); err != nil {
		return err
	}
	for i, e := range q.Pattern.Edges {
		if !xregex.IsClassical(e.Label) {
			return fmt.Errorf("ecrpq: edge %d label %s contains variables", i, xregex.String(e.Label))
		}
	}
	seen := map[int]bool{}
	for gi, g := range q.Groups {
		if g.Rel == nil {
			return fmt.Errorf("ecrpq: group %d has no relation", gi)
		}
		if g.Rel.Arity() != len(g.Edges) {
			return fmt.Errorf("ecrpq: group %d arity %d but %d edges", gi, g.Rel.Arity(), len(g.Edges))
		}
		for _, ei := range g.Edges {
			if ei < 0 || ei >= len(q.Pattern.Edges) {
				return fmt.Errorf("ecrpq: group %d references edge %d out of range", gi, ei)
			}
			if seen[ei] {
				return fmt.Errorf("ecrpq: edge %d in two groups", ei)
			}
			seen[ei] = true
		}
	}
	return nil
}

// IsER reports whether the query is in ECRPQ^er: every relation is an
// equality relation (§1.3, §7).
func (q *Query) IsER() bool {
	for _, g := range q.Groups {
		if _, ok := g.Rel.(*Equality); !ok {
			return false
		}
	}
	return true
}

// IsCRPQ reports whether the query has no relations at all, i.e. is a plain
// CRPQ.
func (q *Query) IsCRPQ() bool { return len(q.Groups) == 0 }

// Size returns a size measure: pattern size plus relation transition counts.
func (q *Query) Size() int {
	s := q.Pattern.Size()
	for _, g := range q.Groups {
		if r, ok := g.Rel.(*NFARelation); ok {
			s += r.M.NumTransitions()
		} else {
			s += len(g.Edges)
		}
	}
	return s
}

// Union is a union of ECRPQs (∪-ECRPQ, §7): q = q1 ∨ … ∨ qk with
// q(D) = ⋃ qi(D). All members must have the same output arity.
type Union struct {
	Members []*Query
}

// Validate checks all members and their output arities.
func (u *Union) Validate() error {
	if len(u.Members) == 0 {
		return fmt.Errorf("ecrpq: empty union")
	}
	arity := len(u.Members[0].Pattern.Out)
	for i, m := range u.Members {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("ecrpq: union member %d: %v", i, err)
		}
		if len(m.Pattern.Out) != arity {
			return fmt.Errorf("ecrpq: union member %d has arity %d, want %d", i, len(m.Pattern.Out), arity)
		}
	}
	return nil
}

// Size returns the total size of all members.
func (u *Union) Size() int {
	s := 0
	for _, m := range u.Members {
		s += m.Size()
	}
	return s
}
