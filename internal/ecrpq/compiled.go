package ecrpq

import (
	"sync"

	"cxrpq/internal/automata"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

// compiledEntry bundles a compiled edge NFA with its determinization cache
// and the lazily built reversed automaton. Entries are shared process-wide
// (keyed by printed regex and alphabet), so the subset-construction work
// accumulated by one evaluation — e.g. one branch combination of a
// vstar-free query — is reused by every other evaluation of the same edge
// language, including concurrent ones.
type compiledEntry struct {
	nfa   *automata.NFA
	cache *automata.SubsetCache

	revOnce  sync.Once
	revNFA   *automata.NFA
	revCache *automata.SubsetCache

	shapeOnce sync.Once
	shapeVal  *planner.Shape
}

// shape returns the planner's estimation skeleton of the edge NFA, built
// once per entry (it is graph-independent; consumers cross it with a
// database's graph.Stats).
func (e *compiledEntry) shape() *planner.Shape {
	e.shapeOnce.Do(func() { e.shapeVal = planner.ShapeOf(e.nfa) })
	return e.shapeVal
}

// reverse returns the reversed NFA and its subset cache, built on first use.
func (e *compiledEntry) reverse() (*automata.NFA, *automata.SubsetCache) {
	e.revOnce.Do(func() {
		e.revNFA = reverseNFA(e.nfa)
		e.revCache = automata.NewSubsetCache(e.revNFA)
	})
	return e.revNFA, e.revCache
}

// reverseNFA returns an NFA for the reversed language: transitions are
// flipped, a fresh start state ε-moves to the old finals, and the old start
// becomes the single final state.
func reverseNFA(m *automata.NFA) *automata.NFA {
	r := automata.New(m.NumStates() + 1)
	newStart := m.NumStates()
	r.SetStart(newStart)
	for p := 0; p < m.NumStates(); p++ {
		for _, t := range m.Transitions(p) {
			r.AddTr(t.To, t.Label, p)
		}
		if m.IsFinal(p) {
			r.AddTr(newStart, automata.Epsilon, p)
		}
	}
	r.SetFinal(m.Start(), true)
	return r
}

// compiledCap bounds the process-wide cache; on overflow the whole epoch is
// dropped (cheap, and correct because entries are pure caches).
const compiledCap = 4096

var (
	compiledMu  sync.Mutex
	compiledMap = map[string]*compiledEntry{}
)

// compiledFor returns the shared compiled entry for the regex over sigma.
func compiledFor(label xregex.Node, sigma []rune) (*compiledEntry, error) {
	key := xregex.String(label) + "\x00" + string(sigma)
	compiledMu.Lock()
	if e, ok := compiledMap[key]; ok {
		compiledMu.Unlock()
		return e, nil
	}
	compiledMu.Unlock()

	m, err := xregex.Compile(label, sigma)
	if err != nil {
		return nil, err
	}
	e := &compiledEntry{nfa: m, cache: automata.NewSubsetCache(m)}
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if old, ok := compiledMap[key]; ok { // raced with another compiler
		return old, nil
	}
	if len(compiledMap) >= compiledCap {
		compiledMap = map[string]*compiledEntry{}
	}
	compiledMap[key] = e
	return e, nil
}
