package ecrpq

import (
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

// This file is the relation layer's half of the incremental-update
// subsystem: RelCache.ApplyDelta maintains the materialized atom relations
// across an insert-only database delta instead of flushing them. Per entry
// it decides between three fates using the metadata captured at
// For() time:
//
//   - retain: the delta's labels are disjoint from the atom's alphabet. A
//     matching path can only use the atom's own symbols, so no new pair can
//     appear; the relation is kept, grown by rows for newly interned nodes
//     (an identity row when ε ∈ L, since every node trivially ε-reaches
//     itself).
//   - extend: the delta's labels intersect the atom's alphabet. Any NEW
//     matching path must pass through an added edge, so only sources that
//     can reach an added edge's tail in the updated graph can gain targets;
//     those frontier sources are re-searched (engine.Reach over the shared
//     compiled automaton) and every other row is carried over. Edge
//     insertion is monotone for reachability, which is what makes carrying
//     rows sound.
//   - recompute: anything that defeats the classification (a relation whose
//     node range doesn't match the pre-delta node count) falls back to
//     RelationFor.
//
// Removals and alphabet changes never reach this code: the session layer
// flushes the whole cache for those (see cxrpq.Session), because a removed
// edge can shrink relations in ways no local frontier bounds.

// labelAlphabet collects the literal symbols of a label's AST. universal
// reports that the language may involve any symbol of Σ — a negated
// character class (incl. the "." wildcard) or a variable — in which case
// syms is not exhaustive and the entry must be treated as intersecting
// every delta.
func labelAlphabet(n xregex.Node) (syms map[rune]bool, universal bool) {
	syms = map[rune]bool{}
	var walk func(xregex.Node)
	walk = func(n xregex.Node) {
		switch t := n.(type) {
		case *xregex.Sym:
			syms[t.R] = true
		case *xregex.Class:
			if t.Neg {
				universal = true
			} else {
				for _, r := range t.Set {
					syms[r] = true
				}
			}
		case *xregex.Ref:
			universal = true
		case *xregex.Def:
			universal = true
			walk(t.Body)
		case *xregex.Cat:
			for _, k := range t.Kids {
				walk(k)
			}
		case *xregex.Alt:
			for _, k := range t.Kids {
				walk(k)
			}
		case *xregex.Plus:
			walk(t.Kid)
		case *xregex.Star:
			walk(t.Kid)
		case *xregex.Opt:
			walk(t.Kid)
		}
	}
	walk(n)
	return syms, universal
}

// deltaFrontier is the set of sources whose relation rows an insert-only
// delta can change: every node that reaches the tail of an added edge in
// the updated graph (over any label — a sound over-approximation of the
// per-atom alphabets), plus every newly interned node (which has no row
// yet). Computed once per ApplyDelta and shared by all extended entries.
type deltaFrontier struct {
	bits []uint64
	list []int
}

func (f *deltaFrontier) has(u int) bool { return f.bits[u/64]&(1<<(uint(u)%64)) != 0 }

func buildFrontier(db *graph.DB, info *graph.DeltaInfo) *deltaFrontier {
	n := db.NumNodes()
	f := &deltaFrontier{bits: make([]uint64, (n+63)/64)}
	push := func(u int) {
		if !f.has(u) {
			f.bits[u/64] |= 1 << (uint(u) % 64)
			f.list = append(f.list, u)
		}
	}
	for u := info.FirstNewNode(); u < n; u++ {
		push(u)
	}
	var queue []int
	for _, e := range info.Added {
		if !f.has(e.From) {
			push(e.From)
			queue = append(queue, e.From)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range db.In(u) {
			if !f.has(e.From) {
				push(e.From)
				queue = append(queue, e.From)
			}
		}
	}
	return f
}

// Size returns the number of frontier sources.
func (f *deltaFrontier) Size() int { return len(f.list) }

// ApplyDelta maintains every cached relation across an insert-only delta
// with no new labels (the caller — cxrpq.Session — guarantees both; other
// deltas must Reset instead). It returns the number of entries retained and
// frontier-extended; on any error the cache is left empty, which is always
// correct.
func (c *RelCache) ApplyDelta(db *graph.DB, info *graph.DeltaInfo) (retained, extended int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if info.Empty() || len(c.m) == 0 {
		retained = len(c.m)
		c.retained += uint64(retained)
		return retained, 0, nil
	}
	deltaSyms := map[rune]bool{}
	for _, r := range info.Labels {
		deltaSyms[r] = true
	}
	oldN := info.FirstNewNode()
	var frontier *deltaFrontier
	for _, e := range c.m {
		_, isEmpty := e.label.(*xregex.Empty)
		touched := !isEmpty && e.universal
		if !touched && !isEmpty {
			for r := range deltaSyms {
				if e.syms[r] {
					touched = true
					break
				}
			}
		}
		switch {
		case e.rel.NumNodes() != oldN:
			// Unexpected range (shouldn't happen): recompute outright.
			rel, rerr := RelationFor(db, e.label, e.sigma)
			if rerr != nil {
				c.m = map[string]*relEntry{}
				return 0, 0, rerr
			}
			e.rel = rel
			extended++
		case !touched:
			e.rel = growRelation(e.rel, info.Nodes, e.hasEps)
			retained++
		default:
			if frontier == nil {
				frontier = buildFrontier(db, info)
			}
			rel, rerr := extendRelation(db, e, frontier, info.Nodes)
			if rerr != nil {
				c.m = map[string]*relEntry{}
				return 0, 0, rerr
			}
			e.rel = rel
			extended++
		}
	}
	c.retained += uint64(retained)
	c.extended += uint64(extended)
	return retained, extended, nil
}

// growRelation widens a relation untouched by the delta to the new node
// count: old rows are shared, rows of newly interned nodes are empty — or
// the identity singleton when ε is in the atom's language. Levels are
// carried over unchanged (an untouched atom's paths — and so its shortest
// paths — cannot change) with level 0 for the identity rows.
func growRelation(old *EdgeRel, newN int, hasEps bool) *EdgeRel {
	oldN := old.NumNodes()
	if newN == oldN {
		return old
	}
	r := &EdgeRel{fwd: make([][]int, newN), size: old.size}
	copy(r.fwd, old.fwd)
	if old.lev != nil {
		r.lev = make([][]int32, newN)
		copy(r.lev, old.lev)
	}
	if hasEps {
		for u := oldN; u < newN; u++ {
			r.fwd[u] = []int{u}
			if r.lev != nil {
				r.lev[u] = []int32{0}
			}
			r.size++
		}
	}
	return r
}

// extendRelation recomputes exactly the frontier sources' rows of a touched
// relation over the updated graph (one sharded ReachBatch sweep over the
// frontier instead of a per-source fan) and carries every other row over —
// including its levels when the entry has them: a non-frontier source
// cannot reach any added edge, so neither its pair set nor its shortest
// path lengths changed.
func extendRelation(db *graph.DB, e *relEntry, frontier *deltaFrontier, newN int) (*EdgeRel, error) {
	ent, err := compiledFor(e.label, e.sigma)
	if err != nil {
		return nil, err
	}
	ix := db.Index()
	withLev := e.rel.lev != nil
	res := engine.ReachBatchEx(ix, db.Partition(engine.Shards()), ent.cache, frontier.list, true,
		engine.BatchOpts{Levels: withLev})
	r := &EdgeRel{fwd: make([][]int, newN)}
	copy(r.fwd, e.rel.fwd)
	if withLev {
		r.lev = make([][]int32, newN)
		copy(r.lev, e.rel.lev)
	}
	for i, u := range frontier.list {
		r.fwd[u] = res.Hits[i]
		if withLev {
			r.lev[u] = res.Levs[i]
		}
	}
	for _, vs := range r.fwd {
		r.size += len(vs)
	}
	return r, nil
}
