package ecrpq

import (
	"fmt"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Witness is one matching morphism together with a tuple of matching words
// (§2.3): NodeOf assigns database nodes to the pattern's node variables and
// Words[i] is the label of the path matched by edge i. The paper's §8
// discusses extracting paths from the evaluation automata; this is the
// deterministic counterpart for one match.
type Witness struct {
	NodeOf map[string]int
	Words  []string
}

// FindWitness searches for a matching morphism of q on db (extending the
// pre-bound output tuple t if t is non-nil) and reconstructs a tuple of
// matching words. It returns false if no match exists.
func FindWitness(q *Query, db *graph.DB, t pattern.Tuple) (*Witness, bool, error) {
	ev, err := newEvaluator(q, db)
	if err != nil {
		return nil, false, err
	}
	pre := map[string]int{}
	if t != nil {
		if len(t) != len(q.Pattern.Out) {
			return nil, false, fmt.Errorf("ecrpq: tuple arity %d, query arity %d", len(t), len(q.Pattern.Out))
		}
		for i, z := range q.Pattern.Out {
			if prev, ok := pre[z]; ok && prev != t[i] {
				return nil, false, nil
			}
			pre[z] = t[i]
		}
	}
	assign, ok, err := ev.findAssignment(pre)
	if err != nil || !ok {
		return nil, ok, err
	}
	w := &Witness{NodeOf: assign, Words: make([]string, len(q.Pattern.Edges))}
	// Per-group word reconstruction (components share the search).
	done := make([]bool, len(q.Pattern.Edges))
	for gi, g := range q.Groups {
		words, err := ev.groupWitness(gi, assign)
		if err != nil {
			return nil, false, err
		}
		for j, ei := range g.Edges {
			w.Words[ei] = words[j]
			done[ei] = true
		}
	}
	for ei, e := range q.Pattern.Edges {
		if done[ei] {
			continue
		}
		word, ok := ev.edgeWitness(ei, assign[e.From], assign[e.To])
		if !ok {
			return nil, false, fmt.Errorf("ecrpq: internal error: matched edge %d has no witness word", ei)
		}
		w.Words[ei] = word
	}
	return w, true, nil
}

// findAssignment runs the join and captures the first full assignment.
func (ev *evaluator) findAssignment(pre map[string]int) (map[string]int, bool, error) {
	q := ev.q
	var unary []int
	for i := range q.Pattern.Edges {
		if !ev.inGroup[i] {
			unary = append(unary, i)
		}
	}
	var order []constraintRef
	for _, ei := range unary {
		order = append(order, constraintRef{kind: cEdge, idx: ei})
	}
	for gi := range q.Groups {
		order = append(order, constraintRef{kind: cGroup, idx: gi})
	}
	assign := map[string]int{}
	for z, v := range pre {
		assign[z] = v
	}
	// also require every pattern variable to be bound at the end: the join
	// binds all edge endpoints; output vars are pre-bound.
	var captured map[string]int
	var rec func(ci int)
	rec = func(ci int) {
		if captured != nil {
			return
		}
		if ci == len(order) {
			captured = map[string]int{}
			for k, v := range assign {
				captured[k] = v
			}
			return
		}
		c := order[ci]
		if c.kind == cEdge {
			ev.satisfyEdge(c.idx, assign, func() { rec(ci + 1) })
		} else {
			ev.satisfyGroup(c.idx, assign, func() { rec(ci + 1) })
		}
	}
	rec(0)
	if captured == nil {
		return nil, false, nil
	}
	return captured, true, nil
}

// edgeWitness reconstructs a shortest word labelling a path u→v that
// matches edge ei's regex, via parent-tracked BFS over (node, NFA-state).
func (ev *evaluator) edgeWitness(ei, u, v int) (string, bool) {
	m := ev.nfas[ei]
	type cfg struct{ node, state int }
	type parentInfo struct {
		prev cfg
		sym  rune
		has  bool
	}
	parent := map[cfg]parentInfo{}
	var queue []cfg
	push := func(c cfg, from cfg, sym rune, has bool) {
		if _, seen := parent[c]; seen {
			return
		}
		parent[c] = parentInfo{prev: from, sym: sym, has: has}
		queue = append(queue, c)
	}
	for _, s := range m.EpsClosure(m.Start()) {
		push(cfg{u, s}, cfg{}, 0, false)
	}
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		if c.node == v && m.IsFinal(c.state) {
			// reconstruct
			var rev []rune
			cur := c
			for {
				p := parent[cur]
				if !p.has {
					break
				}
				if p.sym != 0 {
					rev = append(rev, p.sym)
				}
				cur = p.prev
			}
			out := make([]rune, len(rev))
			for j := range rev {
				out[j] = rev[len(rev)-1-j]
			}
			return string(out), true
		}
		// ε-moves in the NFA
		for _, tr := range m.Transitions(c.state) {
			if tr.Label == automata.Epsilon {
				push(cfg{c.node, tr.To}, c, 0, true)
			}
		}
		// synchronized symbol moves
		for _, e := range ev.db.Out(c.node) {
			for _, tr := range m.Transitions(c.state) {
				if tr.Label == int32(e.Label) {
					push(cfg{e.To, tr.To}, c, e.Label, true)
				}
			}
		}
	}
	return "", false
}

// groupWitness reconstructs per-component matching words for a group given
// the node assignment, by a parent-tracked re-run of the synchronized
// product.
func (ev *evaluator) groupWitness(gi int, assign map[string]int) ([]string, error) {
	g := ev.q.Groups[gi]
	src := make([]int, len(g.Edges))
	tgt := make([]int, len(g.Edges))
	for j, ei := range g.Edges {
		src[j] = assign[ev.q.Pattern.Edges[ei].From]
		tgt[j] = assign[ev.q.Pattern.Edges[ei].To]
	}
	switch rel := g.Rel.(type) {
	case *Equality:
		w, ok := ev.equalityWitness(g, src, tgt)
		if !ok {
			return nil, fmt.Errorf("ecrpq: internal error: no equality witness for group %d", gi)
		}
		words := make([]string, len(g.Edges))
		for j := range words {
			words[j] = w
		}
		return words, nil
	case *NFARelation:
		words, ok := ev.nfaRelWitness(g, rel, src, tgt)
		if !ok {
			return nil, fmt.Errorf("ecrpq: internal error: no relation witness for group %d", gi)
		}
		return words, nil
	}
	return nil, fmt.Errorf("ecrpq: unknown relation kind")
}

// equalityWitness finds one shared word for an equality group between the
// given source and target tuples.
func (ev *evaluator) equalityWitness(g Group, src, tgt []int) (string, bool) {
	s := len(g.Edges)
	ms := make([]*automata.NFA, s)
	for i, ei := range g.Edges {
		ms[i] = ev.nfas[ei]
	}
	type node struct {
		nodes []int
		sets  []automata.StateSet
	}
	start := node{nodes: src, sets: make([]automata.StateSet, s)}
	for i, m := range ms {
		start.sets[i] = m.EpsClosure(m.Start())
		if len(start.sets[i]) == 0 {
			return "", false
		}
	}
	keyOf := func(n node) string {
		ks := make([]string, s)
		for i, set := range n.sets {
			ks[i] = set.Key()
		}
		return prodKey(n.nodes, ks, "")
	}
	type pinfo struct {
		prevKey string
		sym     rune
		has     bool
	}
	parent := map[string]pinfo{}
	queue := []node{start}
	parent[keyOf(start)] = pinfo{}
	accept := func(n node) bool {
		for i, m := range ms {
			if n.nodes[i] != tgt[i] || !m.ContainsFinal(n.sets[i]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		ck := keyOf(cur)
		if accept(cur) {
			var rev []rune
			k := ck
			for {
				p := parent[k]
				if !p.has {
					break
				}
				rev = append(rev, p.sym)
				k = p.prevKey
			}
			out := make([]rune, len(rev))
			for j := range rev {
				out[j] = rev[len(rev)-1-j]
			}
			return string(out), true
		}
		for _, sym := range ev.sigma {
			nextSets := make([]automata.StateSet, s)
			opts := make([][]int, s)
			ok := true
			for j, m := range ms {
				nextSets[j] = m.Step(cur.sets[j], int32(sym))
				if len(nextSets[j]) == 0 {
					ok = false
					break
				}
				for _, e := range ev.db.Out(cur.nodes[j]) {
					if e.Label == sym {
						opts[j] = append(opts[j], e.To)
					}
				}
				if len(opts[j]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ev.productNodes(opts, func(nodes []int) {
				n := node{nodes: append([]int(nil), nodes...), sets: nextSets}
				k := keyOf(n)
				if _, seen := parent[k]; !seen {
					parent[k] = pinfo{prevKey: ck, sym: sym, has: true}
					queue = append(queue, n)
				}
			})
		}
	}
	return "", false
}

// nfaRelWitness finds per-component words for a general relation group.
func (ev *evaluator) nfaRelWitness(g Group, rel *NFARelation, src, tgt []int) ([]string, bool) {
	s := len(g.Edges)
	ms := make([]*automata.NFA, s)
	for i, ei := range g.Edges {
		ms[i] = ev.nfas[ei]
	}
	type node struct {
		nodes []int
		sets  []automata.StateSet
		rset  automata.StateSet
		mask  uint64
	}
	start := node{nodes: src, sets: make([]automata.StateSet, s), rset: rel.M.EpsClosure(rel.M.Start())}
	for i, m := range ms {
		start.sets[i] = m.EpsClosure(m.Start())
		if len(start.sets[i]) == 0 {
			return nil, false
		}
	}
	keyOf := func(n node) string {
		ks := make([]string, s)
		for i, set := range n.sets {
			ks[i] = set.Key()
		}
		return prodKey(n.nodes, ks, fmt.Sprint(n.rset.Key(), n.mask))
	}
	type pinfo struct {
		prevKey string
		tuple   []rune
		has     bool
	}
	parent := map[string]pinfo{}
	queue := []node{start}
	parent[keyOf(start)] = pinfo{}
	labels := rel.M.Labels()
	accept := func(n node) bool {
		if !rel.M.ContainsFinal(n.rset) {
			return false
		}
		for i, m := range ms {
			if n.nodes[i] != tgt[i] {
				return false
			}
			if n.mask&(1<<uint(i)) == 0 && !m.ContainsFinal(n.sets[i]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		ck := keyOf(cur)
		if accept(cur) {
			words := make([][]rune, s)
			k := ck
			var chain []pinfo
			for {
				p := parent[k]
				if !p.has {
					break
				}
				chain = append(chain, p)
				k = p.prevKey
			}
			for j := len(chain) - 1; j >= 0; j-- {
				for c, sym := range chain[j].tuple {
					if sym != Bottom {
						words[c] = append(words[c], sym)
					}
				}
			}
			out := make([]string, s)
			for c := range out {
				out[c] = string(words[c])
			}
			return out, true
		}
		for _, code := range labels {
			rnext := rel.M.Step(cur.rset, code)
			if len(rnext) == 0 {
				continue
			}
			tuple := rel.codec.decode(code)
			nextSets := make([]automata.StateSet, s)
			opts := make([][]int, s)
			mask := cur.mask
			ok := true
			for j := range tuple {
				if tuple[j] == Bottom {
					if mask&(1<<uint(j)) == 0 {
						if !ms[j].ContainsFinal(cur.sets[j]) {
							ok = false
							break
						}
						mask |= 1 << uint(j)
					}
					nextSets[j] = cur.sets[j]
					opts[j] = []int{cur.nodes[j]}
					continue
				}
				if mask&(1<<uint(j)) != 0 {
					ok = false
					break
				}
				nextSets[j] = ms[j].Step(cur.sets[j], int32(tuple[j]))
				if len(nextSets[j]) == 0 {
					ok = false
					break
				}
				for _, e := range ev.db.Out(cur.nodes[j]) {
					if e.Label == tuple[j] {
						opts[j] = append(opts[j], e.To)
					}
				}
				if len(opts[j]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ev.productNodes(opts, func(nodes []int) {
				n := node{nodes: append([]int(nil), nodes...), sets: nextSets, rset: rnext, mask: mask}
				k := keyOf(n)
				if _, seen := parent[k]; !seen {
					parent[k] = pinfo{prevKey: ck, tuple: append([]rune(nil), tuple...), has: true}
					queue = append(queue, n)
				}
			})
		}
	}
	return nil, false
}
