package ecrpq_test

import (
	"sort"
	"testing"
	"time"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// drainRanked is the legacy baseline: full ranked drain with min-cost
// dedup, sorted by (cost, tuple).
func drainRanked(t *testing.T, q *ecrpq.Query, db *graph.DB, w engine.Weight) ([]pattern.Tuple, []int) {
	t.Helper()
	best := map[string]int{}
	tuples := map[string]pattern.Tuple{}
	err := ecrpq.EvalStreamW(q, db, nil, true, w, func(tu pattern.Tuple, cost int) bool {
		k := tupleKey(tu)
		if c, ok := best[k]; !ok || cost < c {
			best[k] = cost
			tuples[k] = append(pattern.Tuple(nil), tu...)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if best[keys[i]] != best[keys[j]] {
			return best[keys[i]] < best[keys[j]]
		}
		return tupleLess(tuples[keys[i]], tuples[keys[j]])
	})
	outT := make([]pattern.Tuple, len(keys))
	outC := make([]int, len(keys))
	for i, k := range keys {
		outT[i], outC[i] = tuples[k], best[k]
	}
	return outT, outC
}

func tupleKey(t pattern.Tuple) string {
	b := make([]byte, 0, 8*len(t))
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func tupleLess(a, b pattern.Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// anykDrain pulls the enumerator dry, checking nondecreasing costs and
// applying first-seen (= min-cost) dedup.
func anykDrain(t *testing.T, ak *ecrpq.AnyK) (map[string]int, []int) {
	t.Helper()
	best := map[string]int{}
	var costs []int
	prev := -1
	for {
		tu, cost, ok := ak.Next()
		if !ok {
			break
		}
		if cost < prev {
			t.Fatalf("any-k emitted cost %d after %d: not nondecreasing", cost, prev)
		}
		prev = cost
		costs = append(costs, cost)
		k := tupleKey(tu)
		if _, seen := best[k]; !seen {
			best[k] = cost
		}
	}
	return best, costs
}

// The any-k enumeration must produce exactly the drain's tuple set with the
// drain's minimal cost per tuple, in nondecreasing cost order — under the
// unit weight and under a pluggable one.
func TestAnyKMatchesDrain(t *testing.T) {
	queries := []string{
		"ans(x, y)\nx y : a(a|b)*",
		"ans(x, z)\nx y : a+\ny z : b+",
		"ans(x, y, z)\nx y : ab*\ny z : (a|b)a*",
		"ans(y)\nx y : ba*\ny x : ab*",
	}
	weights := []engine.Weight{
		nil,
		func(label rune) int32 {
			if label == 'b' {
				return 4
			}
			return 1
		},
	}
	for seed := int64(1); seed <= 6; seed++ {
		db := workload.Random(seed, 30, 110, "ab")
		for _, src := range queries {
			q := mustQuery(t, src)
			for wi, w := range weights {
				wantT, wantC := drainRanked(t, q, db, w)
				ak := ecrpq.NewAnyK(nil)
				if err := ak.AddQuery(q, db, w); err != nil {
					t.Fatal(err)
				}
				got, _ := anykDrain(t, ak)
				if len(got) != len(wantT) {
					t.Fatalf("seed %d query %q weight %d: any-k %d distinct tuples, drain %d",
						seed, src, wi, len(got), len(wantT))
				}
				for i, tu := range wantT {
					c, ok := got[tupleKey(tu)]
					if !ok {
						t.Fatalf("seed %d query %q weight %d: drain tuple %v missing from any-k", seed, src, wi, tu)
					}
					if c != wantC[i] {
						t.Fatalf("seed %d query %q weight %d: tuple %v any-k cost %d, drain min cost %d",
							seed, src, wi, tu, c, wantC[i])
					}
				}
			}
		}
	}
}

// Groups ride the same enumeration: equality-constrained conjuncts must
// agree with the drain too.
func TestAnyKMatchesDrainGroups(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db := workload.Random(seed, 16, 50, "ab")
		q := mustQuery(t, "ans(x, y)\nx y : (a|b)+\nx y : (a|b)+",
			ecrpq.Group{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}})
		wantT, wantC := drainRanked(t, q, db, nil)
		ak := ecrpq.NewAnyK(nil)
		if err := ak.AddQuery(q, db, nil); err != nil {
			t.Fatal(err)
		}
		got, _ := anykDrain(t, ak)
		if len(got) != len(wantT) {
			t.Fatalf("seed %d: any-k %d distinct tuples, drain %d", seed, len(got), len(wantT))
		}
		for i, tu := range wantT {
			if got[tupleKey(tu)] != wantC[i] {
				t.Fatalf("seed %d: tuple %v cost %d, want %d", seed, tu, got[tupleKey(tu)], wantC[i])
			}
		}
	}
}

// A canceled budget stops Next without emitting out-of-order rows.
func TestAnyKBudgetStops(t *testing.T) {
	db := workload.Random(5, 40, 160, "ab")
	q := mustQuery(t, "ans(x, z)\nx y : a+\ny z : b+")
	bud := engine.NewBudget(nil, time.Now().Add(-time.Second), 0)
	ak := ecrpq.NewAnyK(bud)
	if err := ak.AddQuery(q, db, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ak.Next(); ok {
		t.Fatal("expired budget must stop the enumeration")
	}
	if bud.Err() == nil {
		t.Fatal("budget must report cancellation")
	}
}
