package ecrpq

import (
	"sort"
	"sync"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

// EdgeRel is the materialized binary reachability relation of one classical
// regular expression over a database: Forward(u) lists (sorted) the nodes v
// such that some path u→v matches the expression. It is the unit of sharing
// of the bounded-evaluation engine: exponentially many variable mappings of
// a CXRPQ^≤k enumeration instantiate the same classical label, and all of
// them join over the same EdgeRel instead of re-running the product search.
// An EdgeRel is immutable after RelationFor returns and safe for concurrent
// readers.
type EdgeRel struct {
	fwd  [][]int
	lev  [][]int32 // parallel to fwd: BFS first-hit level per target (nil unless built with levels)
	size int

	revOnce sync.Once
	rev     [][]int

	estOnce sync.Once
	est     planner.Estimate

	minOnce sync.Once
	min     int32
}

// RelationFor computes the full relation of label over db with the sharded
// multi-source kernel (engine.ReachBatch over db's degree-balanced
// partition — one batched product sweep per 64 sources instead of a
// per-source BFS fan), reusing the process-wide compiled-NFA/subset caches.
// The ∅ expression short-circuits to the empty relation without touching
// the automata layer.
func RelationFor(db *graph.DB, label xregex.Node, sigma []rune) (*EdgeRel, error) {
	return RelationForEx(db, label, sigma, nil, false)
}

// RelationForEx is RelationFor with streaming extensions: an optional
// budget polled at BFS-level granularity, and first-hit level capture for
// ranked enumeration (EdgeRel.Dist). A budget-truncated sweep returns
// (nil, engine.ErrCanceled) rather than a partial relation — relations are
// cross-query building blocks and an incomplete one must never be shared.
func RelationForEx(db *graph.DB, label xregex.Node, sigma []rune, bud *engine.Budget, levels bool) (*EdgeRel, error) {
	return RelationForW(db, label, sigma, bud, levels, nil)
}

// RelationForW is RelationForEx under a pluggable edge weight: the captured
// per-pair levels (EdgeRel.Dist) become minimum total edge weights instead of
// edge counts (weighted sweeps run the per-source Dijkstra fan — see
// engine.BatchOpts.Weight). A non-nil weight implies level capture. Weighted
// relations must NEVER enter cross-query relation caches: a weight function
// has no cache identity, so two queries with distinct weights would collide
// on the same label key. Callers build them per query.
func RelationForW(db *graph.DB, label xregex.Node, sigma []rune, bud *engine.Budget, levels bool, w engine.Weight) (*EdgeRel, error) {
	if w != nil {
		levels = true
	}
	n := db.NumNodes()
	r := &EdgeRel{fwd: make([][]int, n)}
	if levels {
		r.lev = make([][]int32, n)
	}
	if _, empty := label.(*xregex.Empty); empty {
		return r, nil
	}
	ent, err := compiledFor(label, sigma)
	if err != nil {
		return nil, err
	}
	ix := db.Index()
	srcs := make([]int, n)
	for i := range srcs {
		srcs[i] = i
	}
	res := engine.ReachBatchEx(ix, db.Partition(engine.Shards()), ent.cache, srcs, true,
		engine.BatchOpts{Budget: bud, Levels: levels, Weight: w})
	if res.Truncated {
		return nil, engine.ErrCanceled
	}
	for u, vs := range res.Hits {
		r.fwd[u] = vs
		r.size += len(vs)
	}
	if levels {
		copy(r.lev, res.Levs)
	}
	return r, nil
}

// HasLevels reports whether the relation carries BFS first-hit levels
// (built by RelationForEx with levels, required for ranked joins).
func (r *EdgeRel) HasLevels() bool { return r.lev != nil }

// Dist returns the BFS level of (u, v) — the number of graph edges on a
// shortest path u→v matching the relation's label — or 0 when the relation
// was built without levels or the pair is absent.
func (r *EdgeRel) Dist(u, v int) int32 {
	if r.lev == nil || u < 0 || u >= len(r.fwd) {
		return 0
	}
	ws := r.fwd[u]
	i := sort.SearchInts(ws, v)
	if i < len(ws) && ws[i] == v {
		return r.lev[u][i]
	}
	return 0
}

// MinDist returns the minimum Dist over every pair in the relation — the
// cheapest single witness any binding of this atom can contribute. It is the
// atom's admissible lower bound for the any-k priority queue: an
// undetermined atom will cost at least MinDist, whatever binding the
// enumeration eventually picks. Relations without levels (or empty ones)
// report 0, which is trivially admissible.
func (r *EdgeRel) MinDist() int32 {
	r.minOnce.Do(func() {
		if r.lev == nil || r.size == 0 {
			return
		}
		min := int32(-1)
		for _, ls := range r.lev {
			for _, l := range ls {
				if min < 0 || l < min {
					min = l
				}
			}
		}
		if min > 0 {
			r.min = min
		}
	})
	return r.min
}

// levAt returns the level of Forward(u)[i] by position, skipping the binary
// search Dist pays (0 when the relation carries no levels).
func (r *EdgeRel) levAt(u, i int) int32 {
	if r.lev == nil || r.lev[u] == nil {
		return 0
	}
	return r.lev[u][i]
}

// Empty reports whether the relation holds for no pair at all.
func (r *EdgeRel) Empty() bool { return r.size == 0 }

// Size returns the number of pairs in the relation.
func (r *EdgeRel) Size() int { return r.size }

// NumNodes returns the number of database nodes the relation ranges over.
func (r *EdgeRel) NumNodes() int { return len(r.fwd) }

// Forward returns the sorted targets reachable from u (caller must not
// modify).
func (r *EdgeRel) Forward(u int) []int {
	if u < 0 || u >= len(r.fwd) {
		return nil
	}
	return r.fwd[u]
}

// Backward returns the sorted sources that reach v, building the reverse
// index from the forward lists on first use (no second automaton pass).
func (r *EdgeRel) Backward(v int) []int {
	r.revOnce.Do(func() {
		r.rev = make([][]int, len(r.fwd))
		for u, vs := range r.fwd {
			for _, w := range vs {
				r.rev[w] = append(r.rev[w], u) // u ascending ⇒ lists sorted
			}
		}
	})
	if v < 0 || v >= len(r.rev) {
		return nil
	}
	return r.rev[v]
}

// Has reports whether (u, v) is in the relation.
func (r *EdgeRel) Has(u, v int) bool {
	ws := r.Forward(u)
	i := sort.SearchInts(ws, v)
	return i < len(ws) && ws[i] == v
}

// Estimate returns the relation's exact planner cardinalities, computed
// once per EdgeRel (relations are shared through the session cache, so the
// sweep amortizes across every mapping that joins over the relation).
func (r *EdgeRel) Estimate() planner.Estimate {
	r.estOnce.Do(func() { r.est = planner.EstimateRel(r) })
	return r.est
}

// PlanJoin builds the cost-based physical plan for joining g over the
// materialized per-edge relations with the node variables of pre already
// bound: each atom carries its exact relation cardinalities
// (EdgeRel.Estimate) and the planner's greedy search orders them by
// estimated cost with bound-variable selectivity propagation. When the
// planner is disabled the spec degrades to the structural heuristic, making
// the ordering identical to JoinOrder.
func PlanJoin(g *pattern.Graph, rels []*EdgeRel, pre map[string]int) *planner.PlanSpec {
	atoms := make([]planner.Atom, len(g.Edges))
	for i, e := range g.Edges {
		atoms[i] = planner.Atom{From: e.From, To: e.To}
		if i < len(rels) && rels[i] != nil {
			atoms[i].Est = rels[i].Estimate()
		}
	}
	return planner.Order(atoms, boundSet(pre))
}

// boundSet converts a pre-assignment into the planner's bound-variable set.
func boundSet(pre map[string]int) map[string]bool {
	if len(pre) == 0 {
		return nil
	}
	bound := make(map[string]bool, len(pre))
	for z := range pre {
		bound[z] = true
	}
	return bound
}

// JoinOrder returns the structural greedy edge order for joining g with the
// node variables of pre already bound: most-bound edges first. It is the
// cardinality-blind baseline the planner's cost-based search replaces (and
// degrades to when disabled); callers joining materialized relations should
// prefer PlanJoin.
func JoinOrder(g *pattern.Graph, pre map[string]int) []int {
	bound := map[string]bool{}
	for z := range pre {
		bound[z] = true
	}
	remaining := make([]int, len(g.Edges))
	for i := range remaining {
		remaining[i] = i
	}
	var order []int
	for len(remaining) > 0 {
		best, bestScore := -1, -1
		for idx, ei := range remaining {
			e := g.Edges[ei]
			score := 0
			if bound[e.From] {
				score += 2
			}
			if bound[e.To] {
				score++
			}
			if score > bestScore {
				bestScore, best = score, idx
			}
		}
		ei := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		bound[g.Edges[ei].From], bound[g.Edges[ei].To] = true, true
		order = append(order, ei)
	}
	return order
}

// semijoinFloorFor resolves the cost floor gating the semijoin and
// Yannakakis passes of JoinRelations for one plan: the per-plan override
// (PlanSpec.SemijoinFloor, threaded from SessionOptions.SemijoinCostFloor)
// when set, the process-wide planner.SemijoinFloor() knob otherwise. A
// negative result disables the passes.
func semijoinFloorFor(spec *planner.PlanSpec) float64 {
	if spec != nil && spec.SemijoinFloor != 0 {
		return spec.SemijoinFloor
	}
	return planner.SemijoinFloor()
}

// JoinRelations runs the backtracking join of a relation-free pattern over
// precomputed per-edge relations (the leaf step of the bounded-evaluation
// engine), visiting edges in the order of the physical plan (see PlanJoin;
// nil falls back to the structural JoinOrder) and enumerating node
// variables from the relation rows. For plans whose estimated cost clears
// the semijoin floor (planner.SemijoinFloor, overridable per plan through
// PlanSpec.SemijoinFloor) an acyclic conjunct graph is evaluated with the
// Yannakakis semijoin program (yannakakis.go) — linear in the relation
// sizes, no backtracking — and a cyclic one falls back to the
// backtracking join after a semijoin reduction pass shrinks each node
// variable's candidate domain by propagating the relations' endpoint
// sets. pre pre-binds node variables (Check-style); with boolOnly the
// join stops at the first complete assignment.
func JoinRelations(g *pattern.Graph, rels []*EdgeRel, spec *planner.PlanSpec, pre map[string]int, boolOnly bool) *pattern.TupleSet {
	out := pattern.NewTupleSet()
	JoinRelationsStream(g, rels, spec, pre, nil, func(t pattern.Tuple, _ int) bool {
		out.Add(t)
		return !boolOnly
	})
	return out
}

// JoinRelationsStream is the streaming form of JoinRelations: each
// satisfying assignment's output projection is yielded as the backtracking
// completes it (with the summed EdgeRel.Dist witness cost when the
// relations carry levels, 0 otherwise), and a false return from yield — or
// a canceled budget, polled per recursion step — unwinds the join. Tuples
// are NOT deduplicated here: a projection can complete under several
// assignments, and the caller (the bounded engine merges many leaf joins
// anyway) owns dedup and min-cost selection.
func JoinRelationsStream(g *pattern.Graph, rels []*EdgeRel, spec *planner.PlanSpec, pre map[string]int, bud *engine.Budget, yield func(t pattern.Tuple, cost int) bool) {
	var order []int
	if spec != nil {
		order = spec.Order
	} else {
		order = JoinOrder(g, pre)
	}
	var dom *planner.Domains
	floor := semijoinFloorFor(spec)
	if spec != nil && spec.CostBased && floor >= 0 && spec.Cost >= floor && len(rels) > 0 && rels[0] != nil {
		refs := make([]planner.EdgeRef, len(g.Edges))
		prels := make([]planner.Rel, len(g.Edges))
		complete := len(rels) >= len(g.Edges)
		for i, e := range g.Edges {
			refs[i] = planner.EdgeRef{From: e.From, To: e.To}
			if i < len(rels) && rels[i] != nil {
				prels[i] = rels[i]
			} else {
				complete = false
			}
		}
		// Acyclic cores take the Yannakakis program: relation-level
		// semijoins along the join tree, then a backtrack-free streaming
		// enumeration under the same yield contract. Parallel atoms over
		// the identical relation are collapsed first (sound: identical
		// constraint) — except in ranked joins, where each atom's Dist
		// contributes to the witness cost.
		if complete && planner.YannakakisEnabled() {
			ranked := false
			for _, r := range rels[:len(g.Edges)] {
				if r.HasLevels() {
					ranked = true
				}
			}
			var skip []bool
			kept := len(g.Edges)
			if !ranked {
				skip = make([]bool, len(g.Edges))
				for i, e := range g.Edges {
					for j := 0; j < i; j++ {
						ej := g.Edges[j]
						if !skip[j] && ej.From == e.From && ej.To == e.To && rels[j] == rels[i] {
							skip[i] = true
							kept--
							break
						}
					}
				}
			}
			if kept > 0 {
				if tree, ok := planner.BuildJoinTree(refs, skip); ok {
					yannakakisStream(g, rels, tree, pre, bud, yield)
					return
				}
				planner.CountCyclicFallback()
			}
		}
		// Cyclic fallback: shrink the variable domains by arc consistency
		// and run the backtracking join over the reduced candidate sets.
		planner.CountSemijoinPass()
		d, ok := planner.Reduce(refs, prels, rels[0].NumNodes(), pre)
		if !ok {
			return // a variable lost every candidate: the join is empty
		}
		dom = d
	}
	assign := map[string]int{}
	for z, v := range pre {
		assign[z] = v
	}
	stop := false
	var rec func(ci, cost int)
	rec = func(ci, cost int) {
		if stop {
			return
		}
		if ci == len(order) {
			t := make(pattern.Tuple, len(g.Out))
			for i, z := range g.Out {
				v, ok := assign[z]
				if !ok {
					return // output var not constrained; Validate prevents this
				}
				t[i] = v
			}
			if !yield(t, cost) {
				stop = true
			}
			return
		}
		if bud.Canceled() {
			stop = true
			return
		}
		ei := order[ci]
		e := g.Edges[ei]
		r := rels[ei]
		u, uok := assign[e.From]
		v, vok := assign[e.To]
		switch {
		case uok && vok:
			if r.Has(u, v) {
				rec(ci+1, cost+int(r.Dist(u, v)))
			}
		case uok:
			for _, w := range r.Forward(u) {
				if !dom.Has(e.To, w) {
					continue
				}
				assign[e.To] = w
				rec(ci+1, cost+int(r.Dist(u, w)))
				if stop {
					break
				}
			}
			delete(assign, e.To)
		case vok:
			for _, w := range r.Backward(v) {
				if !dom.Has(e.From, w) {
					continue
				}
				assign[e.From] = w
				rec(ci+1, cost+int(r.Dist(w, v)))
				if stop {
					break
				}
			}
			delete(assign, e.From)
		default:
			for u := 0; u < r.NumNodes(); u++ {
				if stop {
					break
				}
				if !dom.Has(e.From, u) {
					continue
				}
				if e.From == e.To {
					if r.Has(u, u) {
						assign[e.From] = u
						rec(ci+1, cost+int(r.Dist(u, u)))
					}
					continue
				}
				ws := r.Forward(u)
				if len(ws) == 0 {
					continue
				}
				assign[e.From] = u
				for _, w := range ws {
					if !dom.Has(e.To, w) {
						continue
					}
					assign[e.To] = w
					rec(ci+1, cost+int(r.Dist(u, w)))
					if stop {
						break
					}
				}
				delete(assign, e.To)
			}
			delete(assign, e.From)
		}
	}
	rec(0, 0)
}
