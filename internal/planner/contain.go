package planner

import "cxrpq/internal/automata"

// Containment-based query minimization (planner v2). Minimizing
// Conjunctive Regular Path Queries (Figueira–Morvan–Romero) shows that
// deciding whether an atom is redundant reduces to CRPQ containment,
// which is EXPSPACE-complete in general — so this pass implements a sound
// sufficient condition that covers the rewrites that actually occur in
// workloads: an atom x →L y is redundant whenever another atom x →L' y
// with the *same* endpoint pair satisfies L' ⊆ L (the identity mapping on
// endpoints is an endpoint homomorphism, and any path witnessing the
// tighter language also witnesses the looser one). Language containment
// is decided on the existing subset-construction machinery with a hard
// cap on explored product states; hitting the cap means "undecided", and
// undecided atoms are kept — dropping is only ever done on a proof.

// DefaultContainLimit caps the number of determinized product states a
// single containment check may intern before giving up. Query automata
// are tiny (tens of states), so the cap exists to bound pathological
// regexes, not typical ones.
const DefaultContainLimit = 4096

// LangContains reports whether L(sub) ⊆ L(sup), exploring the product of
// the two subset constructions breadth-first. decided=false means the
// check hit the state cap (limit <= 0 selects DefaultContainLimit) and
// the answer is unknown.
func LangContains(sub, sup *automata.SubsetCache, limit int) (contained, decided bool) {
	if limit <= 0 {
		limit = DefaultContainLimit
	}
	ctrContainChecks.Add(1)
	if sub == sup {
		return true, true
	}
	type pair struct{ a, b int32 }
	start := pair{sub.Start(), sup.Start()}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		// A word accepted by sub but not by sup refutes containment. The
		// Dead id of sup is a permanent non-final sink, so reaching it on
		// a sub-live run refutes as soon as sub accepts.
		if sub.Final(p.a) && (p.b == automata.Dead || !sup.Final(p.b)) {
			return false, true
		}
		// Labels worth stepping: only those with sub-transitions — on any
		// other label sub's run dies and no word extends to a counterexample.
		m := sub.NFA()
		labels := map[int32]bool{}
		for _, st := range sub.Set(p.a) {
			for _, t := range m.Transitions(st) {
				if t.Label != automata.Epsilon {
					labels[t.Label] = true
				}
			}
		}
		for l := range labels {
			na := sub.Step(p.a, l)
			if na == automata.Dead {
				continue
			}
			nb := automata.Dead
			if p.b != automata.Dead {
				nb = sup.Step(p.b, l)
			}
			np := pair{na, nb}
			if seen[np] {
				continue
			}
			if len(seen) >= limit {
				ctrContainBails.Add(1)
				return false, false
			}
			seen[np] = true
			queue = append(queue, np)
		}
	}
	return true, true
}

// MinAtom is one conjunct as the minimization pass sees it: its endpoint
// variables and the subset-construction cache of its compiled language.
// A nil Cache marks the atom ineligible (e.g. a label with string
// variables, whose language depends on the mapping) — ineligible atoms
// are never dropped and never subsume others.
type MinAtom struct {
	From, To string
	Cache    *automata.SubsetCache
}

// Minimize returns drop[i] = true for every atom that is provably
// redundant: some kept atom j with the same (From, To) endpoint pair has
// L(j) ⊆ L(i). When two atoms have equal languages the one with the
// higher index is dropped. The pass is greedy and sound: an atom is only
// deleted against a subsumer that itself survives.
func Minimize(atoms []MinAtom, limit int) []bool {
	drop := make([]bool, len(atoms))
	if !MinimizeEnabled() || len(atoms) < 2 {
		return drop
	}
	// Group by endpoint pair; only groups with ≥2 eligible atoms can
	// contain a redundancy, so the common case does zero containment work.
	groups := map[[2]string][]int{}
	for i, a := range atoms {
		if a.Cache != nil {
			k := [2]string{a.From, a.To}
			groups[k] = append(groups[k], i)
		}
	}
	// memo[i][j] caches LangContains(atoms[j], atoms[i]) verdicts:
	// +1 contained, -1 not/undecided.
	memo := map[[2]int]int{}
	within := func(j, i int) bool {
		k := [2]int{j, i}
		if v, ok := memo[k]; ok {
			return v > 0
		}
		contained, decided := LangContains(atoms[j].Cache, atoms[i].Cache, limit)
		v := -1
		if contained && decided {
			v = 1
		}
		memo[k] = v
		return v > 0
	}
	dropped := uint64(0)
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		for _, i := range g {
			for _, j := range g {
				if i == j || drop[j] || drop[i] {
					continue
				}
				if !within(j, i) {
					continue
				}
				// L(j) ⊆ L(i): atom i is implied by atom j. On equal
				// languages keep the lower index deterministically.
				if within(i, j) && j > i {
					continue
				}
				drop[i] = true
				dropped++
				break
			}
		}
	}
	if dropped > 0 {
		ctrAtomsMinimized.Add(dropped)
	}
	return drop
}
