package planner

import "sort"

// Acyclicity detection for the conjunct graph (planner v2). A CRPQ's
// conjunctive skeleton is a hypergraph whose hyperedges are the atoms'
// endpoint-variable sets; GYO reduction (repeated ear removal) decides
// α-acyclicity and, on success, yields a join tree with the running
// intersection property — the structure the Yannakakis semijoin program
// in ecrpq evaluates in two linear passes. FreeConnex additionally tests
// the query+head hypergraph, which is what licenses skipping the
// enumeration of subtrees holding no output variable.

// JoinTree is the GYO witness for an acyclic conjunct set, indexed by
// atom position in the input edge list.
type JoinTree struct {
	// Parent[i] is the atom index of atom i's parent, -1 for a root, and
	// -2 for atoms excluded from the tree (skip[i] was set).
	Parent []int
	// Order lists the tree's atoms with every parent before its children
	// (the enumeration order of the Yannakakis third pass).
	Order []int
	// Shared[i] is the sorted list of variables atom i shares with its
	// parent (empty at roots and across cross-product links).
	Shared [][]string
}

// atomVars returns the deduplicated endpoint-variable set of an atom.
func atomVars(e EdgeRef) []string {
	if e.From == e.To {
		return []string{e.From}
	}
	return []string{e.From, e.To}
}

// gyo runs GYO ear removal over arbitrary-arity hyperedges. It returns,
// for each hyperedge, the index of the witness hyperedge it was removed
// against (-1 for the last survivor of each component) plus the removal
// sequence, and reports whether the hypergraph is α-acyclic. Hyperedges
// with nil varsets are ignored.
func gyo(varsets [][]string) (parent, removed []int, ok bool) {
	parent = make([]int, len(varsets))
	alive := 0
	for i := range parent {
		parent[i] = -2
		if varsets[i] != nil {
			parent[i] = -1
			alive++
		}
	}
	occurs := func(v string, not int) int {
		for j, vs := range varsets {
			if j == not || parent[j] == -2 || removedIn(removed, j) {
				continue
			}
			for _, w := range vs {
				if w == v {
					return j
				}
			}
		}
		return -1
	}
	for alive > 1 {
		progress := false
		for i, vs := range varsets {
			if parent[i] == -2 || removedIn(removed, i) || alive <= 1 {
				continue
			}
			// boundary: the vars of i visible outside i.
			var boundary []string
			for _, v := range vs {
				if occurs(v, i) >= 0 {
					boundary = append(boundary, v)
				}
			}
			// An ear needs one witness hyperedge covering its boundary;
			// prefer the witness sharing the most variables with i.
			best, bestShared := -1, -1
			for j, ws := range varsets {
				if j == i || parent[j] == -2 || removedIn(removed, j) {
					continue
				}
				if !subset(boundary, ws) {
					continue
				}
				shared := 0
				for _, v := range vs {
					for _, w := range ws {
						if v == w {
							shared++
						}
					}
				}
				if shared > bestShared {
					best, bestShared = j, shared
				}
			}
			if best >= 0 {
				parent[i] = best
				removed = append(removed, i)
				alive--
				progress = true
			}
		}
		if !progress {
			return nil, nil, false
		}
	}
	// Survivors (one per run; cross-component links were absorbed because
	// an empty boundary is covered by any witness) append last as roots.
	for i := range varsets {
		if parent[i] != -2 && !removedIn(removed, i) {
			removed = append(removed, i)
		}
	}
	return parent, removed, true
}

func removedIn(removed []int, i int) bool {
	for _, r := range removed {
		if r == i {
			return true
		}
	}
	return false
}

// subset reports whether every element of a occurs in b.
func subset(a, b []string) bool {
	for _, v := range a {
		found := false
		for _, w := range b {
			if v == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// BuildJoinTree runs GYO reduction over the (non-skipped) atoms of the
// conjunct set and returns the join tree, or ok=false when the conjunct
// graph is cyclic. Parallel atoms, self-loops and disconnected components
// are all handled: a disconnected component hangs off an arbitrary
// witness with an empty Shared list, which the Yannakakis passes treat as
// a cross product (empty child ⇒ empty parent).
func BuildJoinTree(edges []EdgeRef, skip []bool) (*JoinTree, bool) {
	varsets := make([][]string, len(edges))
	for i, e := range edges {
		if skip != nil && skip[i] {
			continue
		}
		varsets[i] = atomVars(e)
	}
	parent, removed, ok := gyo(varsets)
	if !ok {
		return nil, false
	}
	t := &JoinTree{Parent: parent, Shared: make([][]string, len(edges))}
	// Reverse of the removal sequence puts every witness (still alive at
	// its child's removal, so removed later) before the child.
	for i := len(removed) - 1; i >= 0; i-- {
		t.Order = append(t.Order, removed[i])
	}
	for i := range edges {
		p := parent[i]
		if p < 0 {
			continue
		}
		var shared []string
		for _, v := range varsets[i] {
			for _, w := range varsets[p] {
				if v == w {
					shared = append(shared, v)
				}
			}
		}
		sort.Strings(shared)
		t.Shared[i] = shared
	}
	return t, true
}

// FreeConnex reports whether the query is free-connex acyclic: the
// conjunct hypergraph extended with one hyperedge holding exactly the
// output variables is still acyclic. (For Boolean queries this coincides
// with plain acyclicity.) Free-connex queries admit enumeration that
// never materializes non-output subtrees.
func FreeConnex(edges []EdgeRef, skip []bool, out []string) bool {
	varsets := make([][]string, 0, len(edges)+1)
	for i, e := range edges {
		if skip != nil && skip[i] {
			varsets = append(varsets, nil)
			continue
		}
		varsets = append(varsets, atomVars(e))
	}
	if len(out) > 0 {
		head := map[string]bool{}
		var hv []string
		for _, v := range out {
			if !head[v] {
				head[v] = true
				hv = append(hv, v)
			}
		}
		varsets = append(varsets, hv)
	}
	_, _, ok := gyo(varsets)
	return ok
}
