package planner

// Atom is one join input: a binary constraint between two node variables
// with a cardinality estimate of its relation.
type Atom struct {
	From, To string
	Est      Estimate
}

// Mode names how the join visits an atom given the variables bound before
// it: a membership probe, a bound-endpoint expansion, or a full scan.
type Mode string

const (
	ModeCheck    Mode = "check"      // both endpoints bound: one probe per row
	ModeForward  Mode = "expand"     // source bound: enumerate targets
	ModeBackward Mode = "expand-rev" // target bound: enumerate sources
	ModeScan     Mode = "scan"       // neither bound: enumerate the relation
)

// Step is one placed atom of a plan with its cost-model numbers.
type Step struct {
	Atom int     // index into the input atom slice
	Mode Mode    // visit mode under the bindings accumulated before it
	Cost float64 // estimated work of the step (probes/expansions)
	Rows float64 // estimated intermediate rows after the step
}

// PlanSpec is a join order with its cost model: the order slice indexes the
// atoms handed to Order. CostBased reports whether the cost model chose the
// order (false: the structural fallback did).
type PlanSpec struct {
	Order     []int
	Steps     []Step
	Cost      float64 // Σ step costs
	Rows      float64 // estimated final rows
	CostBased bool
	// SemijoinFloor overrides the process-wide SemijoinFloor() gate for
	// joins executed under this plan: 0 keeps the process default, a
	// positive value is the floor, and a negative value disables the
	// semijoin/Yannakakis passes outright (SessionOptions threads the
	// per-session knob through here).
	SemijoinFloor float64
}

// rowsFloor keeps the running row estimate from collapsing to zero: an
// atom estimated empty would otherwise zero every later step's cost and
// make the remaining order arbitrary.
const rowsFloor = 1e-6

// stepFor models visiting atom a with `rows` intermediate rows and the
// given bound variables.
func stepFor(a Atom, bound map[string]bool, rows float64) (Mode, float64, float64) {
	ub, vb := bound[a.From], bound[a.To]
	switch {
	case ub && vb:
		return ModeCheck, rows, rows * a.Est.Selectivity()
	case ub:
		f := a.Est.Fanout()
		return ModeForward, rows * (1 + f), rows * f
	case vb:
		f := a.Est.RevFanout()
		return ModeBackward, rows * (1 + f), rows * f
	default:
		return ModeScan, rows * (1 + a.Est.Pairs), rows * a.Est.Pairs
	}
}

// CostOrder runs the greedy cost-based join-order search: at every step it
// picks the atom with the cheapest visit under the bindings accumulated so
// far (ties broken by the smaller resulting row estimate, then input
// order), binds its endpoints and propagates the row estimate. pre lists
// variables bound before the join starts (Check-style); nil means none.
func CostOrder(atoms []Atom, pre map[string]bool) *PlanSpec {
	bound := map[string]bool{}
	for x, b := range pre {
		if b {
			bound[x] = true
		}
	}
	spec := &PlanSpec{CostBased: true, Rows: 1}
	remaining := make([]int, len(atoms))
	for i := range remaining {
		remaining[i] = i
	}
	rows := 1.0
	for len(remaining) > 0 {
		best := -1
		var bestMode Mode
		var bestCost, bestRows float64
		for idx, ai := range remaining {
			mode, cost, nrows := stepFor(atoms[ai], bound, rows)
			if best < 0 || cost < bestCost || (cost == bestCost && nrows < bestRows) {
				best, bestMode, bestCost, bestRows = idx, mode, cost, nrows
			}
		}
		ai := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		bound[atoms[ai].From], bound[atoms[ai].To] = true, true
		rows = bestRows
		if rows < rowsFloor {
			rows = rowsFloor
		}
		spec.Order = append(spec.Order, ai)
		spec.Steps = append(spec.Steps, Step{Atom: ai, Mode: bestMode, Cost: bestCost, Rows: bestRows})
		spec.Cost += bestCost
	}
	spec.Rows = rows
	if len(spec.Steps) > 0 {
		spec.Rows = spec.Steps[len(spec.Steps)-1].Rows
	}
	return spec
}

// StructuralOrder reproduces the historical structural heuristic — most
// bound endpoints first (source worth 2, target 1), stable in input order —
// annotated with the same cost model so explain output stays comparable.
func StructuralOrder(atoms []Atom, pre map[string]bool) *PlanSpec {
	bound := map[string]bool{}
	for x, b := range pre {
		if b {
			bound[x] = true
		}
	}
	spec := &PlanSpec{Rows: 1}
	remaining := make([]int, len(atoms))
	for i := range remaining {
		remaining[i] = i
	}
	rows := 1.0
	for len(remaining) > 0 {
		best, bestScore := -1, -1
		for idx, ai := range remaining {
			score := 0
			if bound[atoms[ai].From] {
				score += 2
			}
			if bound[atoms[ai].To] {
				score++
			}
			if score > bestScore {
				bestScore, best = score, idx
			}
		}
		ai := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		mode, cost, nrows := stepFor(atoms[ai], bound, rows)
		bound[atoms[ai].From], bound[atoms[ai].To] = true, true
		rows = nrows
		if rows < rowsFloor {
			rows = rowsFloor
		}
		spec.Order = append(spec.Order, ai)
		spec.Steps = append(spec.Steps, Step{Atom: ai, Mode: mode, Cost: cost, Rows: nrows})
		spec.Cost += cost
	}
	if len(spec.Steps) > 0 {
		spec.Rows = spec.Steps[len(spec.Steps)-1].Rows
	}
	return spec
}

// Order returns the join order for the atoms: the cost-based search when
// the planner is enabled, the structural heuristic otherwise.
func Order(atoms []Atom, pre map[string]bool) *PlanSpec {
	if Enabled() {
		return CostOrder(atoms, pre)
	}
	return StructuralOrder(atoms, pre)
}
