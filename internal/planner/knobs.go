package planner

import "sync/atomic"

// Planner-v2 switches and counters. The minimization pass and the
// Yannakakis join program each get their own kill switch under the master
// Enabled() flag, so the differential tests can isolate one rewrite at a
// time; the semijoin cost floor, formerly a hard-coded constant in ecrpq,
// becomes a process-wide default that sessions may override per plan.

var (
	minimizeOff   atomic.Bool
	yannakakisOff atomic.Bool
)

// MinimizeEnabled reports whether the containment-based minimization pass
// is active. It is off whenever the whole planner is off.
func MinimizeEnabled() bool { return Enabled() && !minimizeOff.Load() }

// SetMinimize switches the minimization pass on or off process-wide and
// returns the previous setting.
func SetMinimize(on bool) bool { return !minimizeOff.Swap(!on) }

// YannakakisEnabled reports whether the acyclic-join specialization is
// active. It is off whenever the whole planner is off.
func YannakakisEnabled() bool { return Enabled() && !yannakakisOff.Load() }

// SetYannakakis switches the Yannakakis join program on or off
// process-wide and returns the previous setting.
func SetYannakakis(on bool) bool { return !yannakakisOff.Swap(!on) }

// DefaultSemijoinFloor is the estimated-join-cost floor below which the
// semijoin reduction (and the Yannakakis program over materialized
// relations) is considered not worth its linear pass over the relations.
const DefaultSemijoinFloor = 256

// semijoinFloor holds the process-wide floor, offset by one so the zero
// value of the atomic means "default".
var semijoinFloor atomic.Int64

// SemijoinFloor returns the process-wide semijoin cost floor. Negative
// means the pass is disabled outright.
func SemijoinFloor() float64 {
	v := semijoinFloor.Load()
	if v == 0 {
		return DefaultSemijoinFloor
	}
	return float64(v - 1)
}

// SetSemijoinFloor sets the process-wide semijoin cost floor and returns
// the previous value. Zero makes every eligible join take the pass; a
// negative value disables it.
func SetSemijoinFloor(v float64) float64 {
	prev := semijoinFloor.Swap(int64(v) + 1)
	if prev == 0 {
		return DefaultSemijoinFloor
	}
	return float64(prev - 1)
}

// DefaultYannakakisGain is the factor by which a join's estimated
// backtracking cost must exceed the cost of materializing its relations
// before the ecrpq evaluator switches to the Yannakakis program. The
// program is linear in the relation sizes, so it only pays off when the
// backtracking search is estimated to re-walk the relations repeatedly;
// selective joins (the planner's bread and butter) stay on backtracking.
const DefaultYannakakisGain = 4

// yanGain stores the gain offset by one so the atomic zero means default.
var yanGain atomic.Int64

// YannakakisGain returns the current gain factor.
func YannakakisGain() float64 {
	v := yanGain.Load()
	if v == 0 {
		return DefaultYannakakisGain
	}
	return float64(v - 1)
}

// SetYannakakisGain sets the gain factor and returns the previous value;
// 0 makes every acyclic join above the semijoin floor take the
// Yannakakis path (the differential tests use this to force coverage).
func SetYannakakisGain(v float64) float64 {
	prev := yanGain.Swap(int64(v) + 1)
	if prev == 0 {
		return DefaultYannakakisGain
	}
	return float64(prev - 1)
}

// Counters are the planner-v2 telemetry, surfaced by cxrpq-serve /stats.
type Counters struct {
	ContainChecks  uint64 `json:"contain_checks"`   // NFA-containment product explorations
	ContainBails   uint64 `json:"contain_bails"`    // explorations abandoned at the state cap
	AtomsMinimized uint64 `json:"atoms_minimized"`  // atoms deleted by Minimize
	AcyclicPlans   uint64 `json:"acyclic_plans"`    // Yannakakis programs executed
	SemijoinPasses uint64 `json:"semijoin_passes"`  // semijoin sweeps (Reduce calls + Yannakakis passes)
	CyclicFallback uint64 `json:"cyclic_fallbacks"` // joins that wanted the acyclic path but the core was cyclic
}

var (
	ctrContainChecks  atomic.Uint64
	ctrContainBails   atomic.Uint64
	ctrAtomsMinimized atomic.Uint64
	ctrAcyclicPlans   atomic.Uint64
	ctrSemijoinPasses atomic.Uint64
	ctrCyclicFallback atomic.Uint64
)

// CountSemijoinPass records one semijoin sweep over materialized
// relations; ecrpq calls it from Reduce consumers and the Yannakakis
// passes.
func CountSemijoinPass() { ctrSemijoinPasses.Add(1) }

// CountAcyclicPlan records one executed Yannakakis join program.
func CountAcyclicPlan() { ctrAcyclicPlans.Add(1) }

// CountCyclicFallback records a join that cleared the cost gate but whose
// conjunct graph was cyclic, so it fell back to the backtracking join.
func CountCyclicFallback() { ctrCyclicFallback.Add(1) }

// Stats returns a snapshot of the planner-v2 counters.
func Stats() Counters {
	return Counters{
		ContainChecks:  ctrContainChecks.Load(),
		ContainBails:   ctrContainBails.Load(),
		AtomsMinimized: ctrAtomsMinimized.Load(),
		AcyclicPlans:   ctrAcyclicPlans.Load(),
		SemijoinPasses: ctrSemijoinPasses.Load(),
		CyclicFallback: ctrCyclicFallback.Load(),
	}
}
