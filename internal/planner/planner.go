// Package planner is the cost-based query-planning layer of the evaluation
// stack. Every join in the library — the ecrpq evaluator's backtracking
// join, the bounded engine's leaf joins over materialized relations, and
// the Check/witness searches — orders its atoms through this package
// instead of the former purely structural "most-bound endpoints first"
// heuristic.
//
// The planner works from cardinality estimates:
//
//   - For an atom given as a compiled NFA, Shape extracts the
//     graph-independent skeleton (first/last symbol sets, ε-acceptance,
//     whether a labelled cycle makes the language infinite) and
//     Shape.Estimate crosses it with per-label graph statistics
//     (graph.Stats): estimated distinct sources come from the first-symbol
//     sets, targets from the last-symbol sets, and the pair count from the
//     first-step fanout — with the dense srcs×tgts default for Σ*-like
//     atoms whose words can be arbitrarily long.
//   - For an atom whose relation is already materialized (the bounded
//     engine's leaf joins), EstimateRel reads the exact counts.
//
// Order runs a greedy join-order search over those estimates, propagating
// bound-variable selectivity: starting from the pre-bound variables it
// repeatedly picks the cheapest next atom (probe for two bound endpoints,
// estimated fanout expansion for one, full relation scan for none) and
// multiplies the running intermediate-row estimate through, so one
// high-fanout atom no longer lands in front of selective atoms just
// because of tie-breaking. Reduce is the complementary semijoin pass for
// materialized relations: it shrinks each node variable's candidate domain
// by propagating relation endpoint supports (arc consistency, bounded
// sweeps) before a backtracking join runs.
//
// SetEnabled(false) reverts every consumer to the structural heuristic
// (Order falls back to StructuralOrder and Reduce returns no domains) —
// the differential baseline the property tests compare against.
package planner

import (
	"math"
	"math/bits"
	"sync/atomic"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
)

// disabled flips the whole planning layer back to the structural heuristic.
var disabledFlag atomic.Bool

// Enabled reports whether cost-based planning is active (the default).
func Enabled() bool { return !disabledFlag.Load() }

// SetEnabled switches cost-based planning on or off process-wide and
// returns the previous setting. Disabling reverts Order to the structural
// heuristic and Reduce to a no-op; it exists for the differential property
// tests and the before/after benchmarks.
func SetEnabled(on bool) bool {
	return !disabledFlag.Swap(!on)
}

// Estimate is the planner's cardinality model of one atom's binary
// reachability relation over a database.
type Estimate struct {
	Nodes  int     // |V_D| the relation ranges over
	Pairs  float64 // estimated number of (u, v) pairs
	Srcs   float64 // estimated distinct sources
	Tgts   float64 // estimated distinct targets
	HasEps bool    // ε ∈ L: every node is related to itself
	Exact  bool    // read off a materialized relation, not estimated
}

// Fanout returns the estimated targets per source.
func (e Estimate) Fanout() float64 {
	if e.Srcs <= 0 {
		return 0
	}
	return e.Pairs / e.Srcs
}

// RevFanout returns the estimated sources per target.
func (e Estimate) RevFanout() float64 {
	if e.Tgts <= 0 {
		return 0
	}
	return e.Pairs / e.Tgts
}

// Selectivity returns the estimated probability that a fixed (u, v) pair is
// in the relation.
func (e Estimate) Selectivity() float64 {
	n := float64(e.Nodes)
	if n <= 0 {
		return 0
	}
	s := e.Pairs / (n * n)
	if s > 1 {
		return 1
	}
	return s
}

// Shape is the graph-independent skeleton of an atom's NFA used for
// estimation: which symbols can start and end an accepted word, whether the
// empty word is accepted, and whether a labelled cycle makes the language
// infinite. Shapes depend only on the automaton, so callers holding shared
// compiled entries cache them and cross them with per-database statistics
// via Estimate.
type Shape struct {
	First  []rune // symbols that can start an accepted word (sorted)
	Last   []rune // symbols that can end an accepted word (sorted)
	HasEps bool   // ε accepted
	Loop   bool   // a useful cycle with ≥1 labelled transition exists
}

// ShapeOf extracts the estimation skeleton from an NFA. The automaton is
// trimmed first so only useful states contribute.
func ShapeOf(m *automata.NFA) *Shape {
	t := m.Trim()
	sh := &Shape{}
	start := t.EpsClosure(t.Start())
	sh.HasEps = t.ContainsFinal(start)

	n := t.NumStates()
	// coFinal[p]: a final state is in the ε-closure of p (a word may end
	// right after entering p).
	revEps := make([][]int, n)
	for p := 0; p < n; p++ {
		for _, tr := range t.Transitions(p) {
			if tr.Label == automata.Epsilon {
				revEps[tr.To] = append(revEps[tr.To], p)
			}
		}
	}
	coFinal := make([]bool, n)
	var stack []int
	for p := 0; p < n; p++ {
		if t.IsFinal(p) {
			coFinal[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range revEps[p] {
			if !coFinal[q] {
				coFinal[q] = true
				stack = append(stack, q)
			}
		}
	}

	firstSet := map[rune]bool{}
	for _, p := range start {
		for _, tr := range t.Transitions(p) {
			if tr.Label != automata.Epsilon {
				firstSet[rune(tr.Label)] = true
			}
		}
	}
	lastSet := map[rune]bool{}
	for p := 0; p < n; p++ {
		for _, tr := range t.Transitions(p) {
			if tr.Label != automata.Epsilon && coFinal[tr.To] {
				lastSet[rune(tr.Label)] = true
			}
		}
	}
	sh.First = sortedRunes(firstSet)
	sh.Last = sortedRunes(lastSet)
	sh.Loop = hasLabeledCycle(t)
	return sh
}

func sortedRunes(set map[rune]bool) []rune {
	out := make([]rune, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ { // insertion sort: sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// hasLabeledCycle reports whether the (trimmed) automaton contains a cycle
// traversing at least one non-ε transition, i.e. whether accepted words can
// be arbitrarily long. Reachability is computed per state by BFS; the
// automata are query-sized, so the quadratic bound is immaterial.
func hasLabeledCycle(t *automata.NFA) bool {
	n := t.NumStates()
	reach := make([][]bool, n)
	reachFrom := func(s int) []bool {
		if reach[s] != nil {
			return reach[s]
		}
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, tr := range t.Transitions(p) {
				if !seen[tr.To] {
					seen[tr.To] = true
					stack = append(stack, tr.To)
				}
			}
		}
		reach[s] = seen
		return seen
	}
	for p := 0; p < n; p++ {
		for _, tr := range t.Transitions(p) {
			if tr.Label == automata.Epsilon {
				continue
			}
			if tr.To == p || reachFrom(tr.To)[p] {
				return true
			}
		}
	}
	return false
}

// Estimate crosses the shape with per-label graph statistics. The model is
// first-order: distinct sources are the union of the first symbols'
// distinct sources (capped at |V|), targets mirror that over last symbols,
// and the pair count extrapolates the first-step fanout — except for atoms
// with a labelled cycle (Σ*-like), whose relation defaults to the dense
// srcs×tgts closure. ε-acceptance adds the identity relation.
func (sh *Shape) Estimate(st *graph.Stats) Estimate {
	n := float64(st.Nodes)
	est := Estimate{Nodes: st.Nodes, HasEps: sh.HasEps}
	var srcs, tgts, firstEdges, firstSrcs float64
	for _, r := range sh.First {
		if ls, ok := st.Label(r); ok {
			srcs += float64(ls.Srcs)
			firstEdges += float64(ls.Edges)
			firstSrcs += float64(ls.Srcs)
		}
	}
	for _, r := range sh.Last {
		if ls, ok := st.Label(r); ok {
			tgts += float64(ls.Tgts)
		}
	}
	srcs = math.Min(srcs, n)
	tgts = math.Min(tgts, n)
	var pairs float64
	if firstSrcs > 0 {
		pairs = srcs * (firstEdges / firstSrcs)
	}
	if sh.Loop {
		pairs = srcs * tgts // words of unbounded length: assume dense closure
	}
	pairs = math.Min(pairs, srcs*tgts)
	if sh.HasEps {
		pairs += n
		srcs, tgts = n, n
	}
	est.Pairs, est.Srcs, est.Tgts = pairs, srcs, tgts
	return est
}

// EstimateNFA is ShapeOf + Shape.Estimate for one-off use.
func EstimateNFA(st *graph.Stats, m *automata.NFA) Estimate {
	return ShapeOf(m).Estimate(st)
}

// Rel is the read surface of a materialized binary relation the planner
// consumes (ecrpq.EdgeRel satisfies it).
type Rel interface {
	NumNodes() int
	Size() int
	Forward(u int) []int
}

// EstimateRel reads the exact cardinalities off a materialized relation:
// pair count from Size, distinct sources from the forward lists and
// distinct targets from a bitset sweep over them (no reverse index is
// forced).
func EstimateRel(r Rel) Estimate {
	n := r.NumNodes()
	est := Estimate{Nodes: n, Exact: true, Pairs: float64(r.Size())}
	words := (n + 63) / 64
	tgtBits := make([]uint64, words)
	srcs := 0
	for u := 0; u < n; u++ {
		vs := r.Forward(u)
		if len(vs) == 0 {
			continue
		}
		srcs++
		for _, v := range vs {
			tgtBits[v/64] |= 1 << (uint(v) % 64)
		}
	}
	tgts := 0
	for _, w := range tgtBits {
		tgts += bits.OnesCount64(w)
	}
	est.Srcs, est.Tgts = float64(srcs), float64(tgts)
	return est
}
