package planner

import "testing"

// checkTree validates the structural invariants of a join tree over the
// given edges: every non-skipped atom appears exactly once in Order, every
// parent precedes its children, skipped atoms are marked -2, and Shared
// lists are the actual endpoint intersections.
func checkTree(t *testing.T, tree *JoinTree, edges []EdgeRef, skip []bool) {
	t.Helper()
	pos := map[int]int{}
	for p, i := range tree.Order {
		if skip != nil && skip[i] {
			t.Fatalf("skipped atom %d in Order", i)
		}
		if _, dup := pos[i]; dup {
			t.Fatalf("atom %d appears twice in Order", i)
		}
		pos[i] = p
	}
	for i := range edges {
		if skip != nil && skip[i] {
			if tree.Parent[i] != -2 {
				t.Fatalf("skipped atom %d has Parent %d, want -2", i, tree.Parent[i])
			}
			continue
		}
		if _, ok := pos[i]; !ok {
			t.Fatalf("atom %d missing from Order", i)
		}
		p := tree.Parent[i]
		if p == -2 {
			t.Fatalf("kept atom %d marked excluded", i)
		}
		if p >= 0 {
			if pos[p] >= pos[i] {
				t.Fatalf("parent %d not before child %d in Order %v", p, i, tree.Order)
			}
			want := map[string]bool{}
			for _, v := range atomVars(edges[i]) {
				for _, w := range atomVars(edges[p]) {
					if v == w {
						want[v] = true
					}
				}
			}
			if len(want) != len(tree.Shared[i]) {
				t.Fatalf("atom %d Shared = %v, want the %d-var intersection", i, tree.Shared[i], len(want))
			}
			for _, v := range tree.Shared[i] {
				if !want[v] {
					t.Fatalf("atom %d Shared contains %q, not an endpoint intersection", i, v)
				}
			}
		}
	}
}

func TestBuildJoinTreeAcyclic(t *testing.T) {
	cases := []struct {
		name  string
		edges []EdgeRef
		skip  []bool
	}{
		{"single", []EdgeRef{{"x", "y"}}, nil},
		{"chain", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "w"}}, nil},
		{"star", []EdgeRef{{"x", "y1"}, {"x", "y2"}, {"x", "y3"}}, nil},
		{"parallel", []EdgeRef{{"x", "y"}, {"x", "y"}}, nil},
		{"self-loop", []EdgeRef{{"x", "x"}, {"x", "y"}}, nil},
		{"disconnected", []EdgeRef{{"x", "y"}, {"u", "v"}}, nil},
		{"triangle minus skipped edge", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "x"}}, []bool{false, false, true}},
		{"reversed chain atoms", []EdgeRef{{"z", "w"}, {"y", "z"}, {"x", "y"}}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tree, ok := BuildJoinTree(c.edges, c.skip)
			if !ok {
				t.Fatal("BuildJoinTree reported cyclic")
			}
			checkTree(t, tree, c.edges, c.skip)
		})
	}
}

func TestBuildJoinTreeCyclic(t *testing.T) {
	cases := []struct {
		name  string
		edges []EdgeRef
	}{
		{"triangle", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "x"}}},
		{"4-cycle", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "w"}, {"w", "x"}}},
		{"triangle plus pendant", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "x"}, {"x", "p"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, ok := BuildJoinTree(c.edges, nil); ok {
				t.Fatal("BuildJoinTree accepted a cyclic conjunct graph")
			}
		})
	}
}

func TestFreeConnex(t *testing.T) {
	chain := []EdgeRef{{"x", "y"}, {"y", "z"}}
	cases := []struct {
		name  string
		edges []EdgeRef
		skip  []bool
		out   []string
		want  bool
	}{
		{"boolean chain", chain, nil, nil, true},
		{"head inside one atom", chain, nil, []string{"x", "y"}, true},
		{"endpoints of a path", chain, nil, []string{"x", "z"}, false},
		{"full head", chain, nil, []string{"x", "y", "z"}, true},
		{"duplicated head vars", chain, nil, []string{"x", "x", "y"}, true},
		{"cyclic stays cyclic", []EdgeRef{{"x", "y"}, {"y", "z"}, {"z", "x"}}, nil, []string{"x"}, false},
		{"skip restores free-connex", []EdgeRef{{"x", "y"}, {"y", "z"}, {"x", "z"}}, []bool{false, true, false}, []string{"x", "z"}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := FreeConnex(c.edges, c.skip, c.out); got != c.want {
				t.Fatalf("FreeConnex = %v, want %v", got, c.want)
			}
		})
	}
}
