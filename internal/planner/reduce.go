package planner

import "math/bits"

// EdgeRef names the endpoints of one atom for the semijoin pass.
type EdgeRef struct {
	From, To string
}

// Domains holds per-variable candidate node sets as bitsets: a value
// outside a variable's domain provably participates in no satisfying
// assignment, so backtracking joins skip it. A nil *Domains imposes no
// restriction (Has answers true for everything); consumers filter their
// own enumeration through Has rather than enumerating domains.
type Domains struct {
	n int
	m map[string][]uint64
}

// Has reports whether node v is still a candidate for variable x
// (variables without a recorded domain are unrestricted).
func (d *Domains) Has(x string, v int) bool {
	if d == nil {
		return true
	}
	bs, ok := d.m[x]
	if !ok {
		return true
	}
	if v < 0 || v >= d.n {
		return false
	}
	return bs[v/64]&(1<<(uint(v)%64)) != 0
}

// Size returns the number of candidates for x, or -1 if x is unrestricted.
func (d *Domains) Size(x string) int {
	if d == nil {
		return -1
	}
	bs, ok := d.m[x]
	if !ok {
		return -1
	}
	c := 0
	for _, w := range bs {
		c += bits.OnesCount64(w)
	}
	return c
}

// reduceSweeps caps the arc-consistency iterations: domains only shrink,
// so stopping early is sound (just less filtering).
const reduceSweeps = 3

// Reduce runs the semijoin reduction: starting from the full node set (or
// the pre-bound singleton for variables in pre), each sweep keeps only the
// sources of edge i with a surviving target (and vice versa), propagating
// the endpoint sets of the materialized relations through shared
// variables. It returns the domains and whether every variable kept at
// least one candidate; ok == false proves the join result empty. A nil
// relation slot (or one the caller passes as nil) leaves its edge out of
// the reduction.
func Reduce(edges []EdgeRef, rels []Rel, n int, pre map[string]int) (*Domains, bool) {
	if !Enabled() || n <= 0 || len(edges) == 0 {
		return nil, true
	}
	words := (n + 63) / 64
	d := &Domains{n: n, m: map[string][]uint64{}}
	full := func() []uint64 {
		bs := make([]uint64, words)
		for v := 0; v < n; v++ {
			bs[v/64] |= 1 << (uint(v) % 64)
		}
		return bs
	}
	domOf := func(x string) []uint64 {
		if bs, ok := d.m[x]; ok {
			return bs
		}
		var bs []uint64
		if v, ok := pre[x]; ok {
			bs = make([]uint64, words)
			if v >= 0 && v < n {
				bs[v/64] |= 1 << (uint(v) % 64)
			}
		} else {
			bs = full()
		}
		d.m[x] = bs
		return bs
	}
	for sweep := 0; sweep < reduceSweeps; sweep++ {
		changed := false
		for ei, e := range edges {
			if ei >= len(rels) || rels[ei] == nil {
				continue
			}
			r := rels[ei]
			from := domOf(e.From)
			if e.From == e.To {
				// self-loop edge: the constraint is (u, u) ∈ r
				for wi := range from {
					w := from[wi]
					for w != 0 {
						u := wi*64 + bits.TrailingZeros64(w)
						w &= w - 1
						if !relHas(r, u, u) {
							from[wi] &^= 1 << (uint(u) % 64)
							changed = true
						}
					}
				}
				continue
			}
			to := domOf(e.To)
			newTo := make([]uint64, words)
			for wi := range from {
				w := from[wi]
				for w != 0 {
					u := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					supported := false
					for _, v := range r.Forward(u) {
						if to[v/64]&(1<<(uint(v)%64)) != 0 {
							newTo[v/64] |= 1 << (uint(v) % 64)
							supported = true
						}
					}
					if !supported {
						from[wi] &^= 1 << (uint(u) % 64)
						changed = true
					}
				}
			}
			for wi := range to {
				if to[wi] != newTo[wi] {
					changed = true
				}
				to[wi] = newTo[wi]
			}
		}
		if !changed {
			break
		}
	}
	for _, bs := range d.m {
		empty := true
		for _, w := range bs {
			if w != 0 {
				empty = false
				break
			}
		}
		if empty {
			return d, false
		}
	}
	return d, true
}

// relHas probes (u, v) membership through the forward list (sorted, per
// ecrpq.EdgeRel's contract; a linear scan keeps the interface minimal and
// the lists are short per source).
func relHas(r Rel, u, v int) bool {
	for _, w := range r.Forward(u) {
		if w == v {
			return true
		}
		if w > v {
			return false
		}
	}
	return false
}
