package planner

import (
	"testing"

	"cxrpq/internal/graph"
	"cxrpq/internal/xregex"
)

func shapeFor(t *testing.T, src string, sigma string) *Shape {
	t.Helper()
	n := xregex.MustParse(src)
	m, err := xregex.Compile(n, []rune(sigma))
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return ShapeOf(m)
}

func TestShapeOf(t *testing.T) {
	cases := []struct {
		src         string
		first, last string
		eps, loop   bool
	}{
		{"a", "a", "a", false, false},
		{"ab", "a", "b", false, false},
		{"a|b", "ab", "ab", false, false},
		{"a*", "a", "a", true, true},
		{"(a|b)*", "ab", "ab", true, true},
		{"a?b", "ab", "b", false, false},
		{"ab?", "a", "ab", false, false},
		{"a+c", "a", "c", false, true},
		{"()", "", "", true, false},
	}
	for _, c := range cases {
		sh := shapeFor(t, c.src, "abc")
		if string(sh.First) != c.first || string(sh.Last) != c.last || sh.HasEps != c.eps || sh.Loop != c.loop {
			t.Errorf("%q: shape = first %q last %q eps %v loop %v, want %q %q %v %v",
				c.src, string(sh.First), string(sh.Last), sh.HasEps, sh.Loop, c.first, c.last, c.eps, c.loop)
		}
	}
}

func TestEstimateFromStats(t *testing.T) {
	// 3 a-edges from 2 sources, 1 b-edge; 4 nodes.
	db := graph.MustParse("u a v\nu a w\nv a w\nw b x")
	st := db.Stats()

	a := shapeFor(t, "a", "ab").Estimate(st)
	if a.Srcs != 2 || a.Tgts != 2 || a.Pairs != 3 {
		t.Fatalf("a estimate = %+v", a)
	}
	// Symbol absent from the graph: empty relation.
	z := shapeFor(t, "z", "abz").Estimate(st)
	if z.Pairs != 0 || z.Srcs != 0 {
		t.Fatalf("z estimate = %+v", z)
	}
	// Σ*-like: dense default over all nodes (ε adds the identity).
	any := shapeFor(t, "(a|b)*", "ab").Estimate(st)
	if any.Srcs != 4 || any.Tgts != 4 || !any.HasEps {
		t.Fatalf("sigma* estimate = %+v", any)
	}
	// Dense closure over the 3 sources × 3 targets with out/in edges, plus
	// the 4-node identity from ε.
	if any.Pairs != 13 {
		t.Fatalf("sigma* pairs = %v, want 13", any.Pairs)
	}
}

type sliceRel [][]int

func (r sliceRel) NumNodes() int { return len(r) }
func (r sliceRel) Size() int {
	n := 0
	for _, vs := range r {
		n += len(vs)
	}
	return n
}
func (r sliceRel) Forward(u int) []int {
	if u < 0 || u >= len(r) {
		return nil
	}
	return r[u]
}

func TestEstimateRel(t *testing.T) {
	r := sliceRel{{1, 2}, {2}, nil, nil}
	est := EstimateRel(r)
	if !est.Exact || est.Pairs != 3 || est.Srcs != 2 || est.Tgts != 2 {
		t.Fatalf("estimate = %+v", est)
	}
}

// skewedAtoms models one dense hub atom and one highly selective atom
// sharing the variable y.
func skewedAtoms() []Atom {
	n := 100
	hub := Atom{From: "x", To: "y", Est: Estimate{Nodes: n, Pairs: 1600, Srcs: 40, Tgts: 40}}
	sel := Atom{From: "y", To: "z", Est: Estimate{Nodes: n, Pairs: 1, Srcs: 1, Tgts: 1}}
	return []Atom{hub, sel}
}

func TestCostOrderPrefersSelective(t *testing.T) {
	spec := CostOrder(skewedAtoms(), nil)
	if spec.Order[0] != 1 {
		t.Fatalf("cost order = %v, want the selective atom first", spec.Order)
	}
	if spec.Steps[0].Mode != ModeScan || spec.Steps[1].Mode != ModeBackward {
		t.Fatalf("modes = %v %v", spec.Steps[0].Mode, spec.Steps[1].Mode)
	}
	if !spec.CostBased {
		t.Fatal("CostBased unset")
	}
	// The structural heuristic ties at score 0 and takes the hub first.
	str := StructuralOrder(skewedAtoms(), nil)
	if str.Order[0] != 0 {
		t.Fatalf("structural order = %v, want the hub atom first", str.Order)
	}
	if str.Cost <= spec.Cost {
		t.Fatalf("structural cost %v should exceed cost-based %v", str.Cost, spec.Cost)
	}
}

func TestOrderBoundPropagation(t *testing.T) {
	// With x pre-bound, expanding the hub forward costs ~40 rows; probing
	// nothing else is available, so the hub must come first now.
	atoms := skewedAtoms()
	spec := CostOrder(atoms, map[string]bool{"x": true, "z": true})
	if spec.Steps[0].Mode == ModeScan {
		t.Fatalf("pre-bound plan must not start with a scan: %+v", spec.Steps)
	}
	// All endpoints bound: everything is a probe.
	spec = CostOrder(atoms, map[string]bool{"x": true, "y": true, "z": true})
	for _, s := range spec.Steps {
		if s.Mode != ModeCheck {
			t.Fatalf("fully bound plan has non-check step %+v", s)
		}
	}
}

func TestOrderToggleFallback(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	spec := Order(skewedAtoms(), nil)
	if spec.CostBased {
		t.Fatal("disabled planner must fall back to the structural order")
	}
	if spec.Order[0] != 0 {
		t.Fatalf("structural fallback order = %v", spec.Order)
	}
	dom, ok := Reduce([]EdgeRef{{From: "x", To: "y"}}, []Rel{sliceRel{{1}, nil}}, 2, nil)
	if dom != nil || !ok {
		t.Fatal("disabled planner must skip the semijoin pass")
	}
}

func TestReduceShrinksDomains(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	// Nodes 0..4. Edge x->y supported only by (0,1) and (2,3); edge y->z
	// supported only by (3,4). Arc consistency must pin x=2, y=3, z=4.
	rxy := sliceRel{{1}, nil, {3}, nil, nil}
	ryz := sliceRel{nil, nil, nil, {4}, nil}
	edges := []EdgeRef{{From: "x", To: "y"}, {From: "y", To: "z"}}
	dom, ok := Reduce(edges, []Rel{rxy, ryz}, 5, nil)
	if !ok {
		t.Fatal("reduce reported empty")
	}
	if dom.Size("x") != 1 || !dom.Has("x", 2) {
		t.Fatalf("dom(x) size %d", dom.Size("x"))
	}
	if dom.Size("y") != 1 || !dom.Has("y", 3) {
		t.Fatalf("dom(y) size %d", dom.Size("y"))
	}
	if dom.Size("z") != 1 || !dom.Has("z", 4) {
		t.Fatalf("dom(z) size %d", dom.Size("z"))
	}
	var got []int
	for v := 0; v < 5; v++ {
		if dom.Has("x", v) {
			got = append(got, v)
		}
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("dom(x) candidates = %v", got)
	}
}

func TestReduceDetectsEmpty(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	rxy := sliceRel{{1}, nil, nil}
	ryz := sliceRel{nil, nil, nil} // no support at all
	edges := []EdgeRef{{From: "x", To: "y"}, {From: "y", To: "z"}}
	if _, ok := Reduce(edges, []Rel{rxy, ryz}, 3, nil); ok {
		t.Fatal("reduce missed the empty join")
	}
}

func TestReduceSelfLoopAndPre(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	// Self-loop edge x->x: only node 1 has (1,1).
	loop := sliceRel{{1}, {1}, {0}}
	dom, ok := Reduce([]EdgeRef{{From: "x", To: "x"}}, []Rel{loop}, 3, nil)
	if !ok || dom.Size("x") != 1 || !dom.Has("x", 1) {
		t.Fatalf("self-loop domain: ok=%v size=%d", ok, dom.Size("x"))
	}
	// Pre-bound variable restricts its domain to the singleton.
	rxy := sliceRel{{1, 2}, nil, nil}
	dom, ok = Reduce([]EdgeRef{{From: "x", To: "y"}}, []Rel{rxy}, 3, map[string]int{"y": 2})
	if !ok || dom.Size("y") != 1 || !dom.Has("y", 2) || dom.Has("y", 1) {
		t.Fatalf("pre-bound domain: ok=%v", ok)
	}
}
