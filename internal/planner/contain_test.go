package planner

import (
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/xregex"
)

func cacheFor(t *testing.T, src, sigma string) *automata.SubsetCache {
	t.Helper()
	m, err := xregex.Compile(xregex.MustParse(src), []rune(sigma))
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return automata.NewSubsetCache(m)
}

func TestLangContains(t *testing.T) {
	cases := []struct {
		sub, sup  string
		contained bool
	}{
		{"a", "a|b", true},
		{"a|b", "a", false},
		{"a+", "a*", true},
		{"a*", "a+", false}, // ε ∈ a* \ a+
		{"ab", "a|b", false},
		{"ab", "a*b*", true},
		{"a", "a", true},
		{"(a|b)*", "(a|b)*", true},
		{"aa*", "a+", true},
		{"abc", "a(b|c)*", true},
		{"abca", "a(b|c)*", false},
		{"ac|bc", "(a|b)c", true},
	}
	for _, c := range cases {
		sub := cacheFor(t, c.sub, "abc")
		sup := cacheFor(t, c.sup, "abc")
		got, decided := LangContains(sub, sup, DefaultContainLimit)
		if !decided {
			t.Errorf("LangContains(%q, %q) undecided", c.sub, c.sup)
			continue
		}
		if got != c.contained {
			t.Errorf("LangContains(%q, %q) = %v, want %v", c.sub, c.sup, got, c.contained)
		}
	}
}

func TestLangContainsSameCache(t *testing.T) {
	c := cacheFor(t, "a(b|c)*", "abc")
	got, decided := LangContains(c, c, DefaultContainLimit)
	if !got || !decided {
		t.Fatalf("LangContains(c, c) = %v, %v; want identical cache fast path", got, decided)
	}
}

func TestLangContainsLimitBail(t *testing.T) {
	sub := cacheFor(t, "(a|b)*a(a|b)(a|b)(a|b)", "ab")
	sup := cacheFor(t, "(a|b)*b(a|b)(a|b)(a|b)", "ab")
	if _, decided := LangContains(sub, sup, 2); decided {
		t.Fatal("limit 2 should bail undecided")
	}
	// And bailing must be reported as "keep the atom" by Minimize.
	atoms := []MinAtom{
		{From: "x", To: "y", Cache: sub},
		{From: "x", To: "y", Cache: sup},
	}
	drop := Minimize(atoms, 2)
	for i, d := range drop {
		if d {
			t.Fatalf("atom %d dropped on an undecided containment", i)
		}
	}
}

func TestMinimize(t *testing.T) {
	on := SetMinimize(true)
	defer SetMinimize(on)
	prev := SetEnabled(true)
	defer SetEnabled(prev)

	a := cacheFor(t, "a", "ab")
	ab := cacheFor(t, "a|b", "ab")
	aStar := cacheFor(t, "a*", "ab")

	t.Run("widened atom dropped", func(t *testing.T) {
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "y", Cache: ab},
		}, 0)
		if drop[0] || !drop[1] {
			t.Fatalf("drop = %v, want [false true]", drop)
		}
	})
	t.Run("equal languages keep lower index", func(t *testing.T) {
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "y", Cache: cacheFor(t, "a", "ab")},
		}, 0)
		if drop[0] || !drop[1] {
			t.Fatalf("drop = %v, want [false true]", drop)
		}
	})
	t.Run("chain of containments", func(t *testing.T) {
		// a ⊆ a|b and a ⊆ a*: both wider atoms drop.
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: ab},
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "y", Cache: aStar},
		}, 0)
		if drop[1] || !drop[0] || !drop[2] {
			t.Fatalf("drop = %v, want [true false true]", drop)
		}
	})
	t.Run("different endpoints never interact", func(t *testing.T) {
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "z", Cache: ab},
		}, 0)
		if drop[0] || drop[1] {
			t.Fatalf("drop = %v, want no drops across endpoint groups", drop)
		}
	})
	t.Run("nil cache ineligible", func(t *testing.T) {
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "y", Cache: nil},
		}, 0)
		if drop[0] || drop[1] {
			t.Fatalf("drop = %v, want no drops with an ineligible atom", drop)
		}
	})
	t.Run("disabled switch", func(t *testing.T) {
		SetMinimize(false)
		defer SetMinimize(true)
		drop := Minimize([]MinAtom{
			{From: "x", To: "y", Cache: a},
			{From: "x", To: "y", Cache: ab},
		}, 0)
		if drop[0] || drop[1] {
			t.Fatalf("drop = %v, want no drops with the pass off", drop)
		}
	})
}
