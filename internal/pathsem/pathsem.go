// Package pathsem implements RPQ evaluation under the three path semantics
// discussed in the paper's introduction (§1, citing Losemann & Martens and
// Martens & Trautner, [34–36]): arbitrary paths (the semantics used by
// CXRPQs throughout the paper), simple paths (no repeated node), and trails
// (no repeated edge). Under simple-path and trail semantics even RPQ
// evaluation is NP-hard, which is why the paper — like SPARQL 1.1 — sticks
// to arbitrary paths; this package makes the distinction executable.
package pathsem

import (
	"fmt"

	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// Semantics selects which paths count as matches.
type Semantics int

const (
	// Arbitrary allows any path (nodes and edges may repeat).
	Arbitrary Semantics = iota
	// Simple allows only paths with no repeated node.
	Simple
	// Trail allows only paths with no repeated edge.
	Trail
)

func (s Semantics) String() string {
	switch s {
	case Arbitrary:
		return "arbitrary"
	case Simple:
		return "simple"
	case Trail:
		return "trail"
	}
	return "unknown"
}

// EvalRPQ computes the pairs (u, v) such that D has a path from u to v
// conforming to the semantics whose label matches the classical regular
// expression rx. Under Arbitrary this is the polynomial product
// construction; under Simple/Trail it is a backtracking search (the problem
// is NP-hard in combined complexity).
func EvalRPQ(db *graph.DB, rx xregex.Node, sem Semantics) (*pattern.TupleSet, error) {
	if !xregex.IsClassical(rx) {
		return nil, fmt.Errorf("pathsem: RPQ labels must be classical regular expressions")
	}
	sigma := xregex.MergeAlphabets(db.Alphabet(), xregex.AlphabetOf(rx))
	m, err := xregex.Compile(rx, sigma)
	if err != nil {
		return nil, err
	}
	out := pattern.NewTupleSet()
	for u := 0; u < db.NumNodes(); u++ {
		for _, v := range reachUnder(db, m, u, sem) {
			out.Add(pattern.Tuple{u, v})
		}
	}
	return out, nil
}

// HasPathUnder reports whether a u→v path matching rx exists under the
// given semantics.
func HasPathUnder(db *graph.DB, rx xregex.Node, u, v int, sem Semantics) (bool, error) {
	res, err := EvalRPQ(db, rx, sem)
	if err != nil {
		return false, err
	}
	return res.Contains(pattern.Tuple{u, v}), nil
}

func reachUnder(db *graph.DB, m *automata.NFA, u int, sem Semantics) []int {
	switch sem {
	case Arbitrary:
		return productReach(db, m, u)
	case Simple:
		return restrictedReach(db, m, u, true)
	case Trail:
		return restrictedReach(db, m, u, false)
	}
	return nil
}

// productReach is the standard polynomial NFA×D search.
func productReach(db *graph.DB, m *automata.NFA, u int) []int {
	type cfg struct {
		node int
		set  string
	}
	sets := map[string]automata.StateSet{}
	key := func(s automata.StateSet) string {
		k := s.Key()
		sets[k] = s
		return k
	}
	start := m.EpsClosure(m.Start())
	seen := map[cfg]bool{{u, key(start)}: true}
	queue := []struct {
		node int
		set  automata.StateSet
	}{{u, start}}
	hit := map[int]bool{}
	var hits []int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if m.ContainsFinal(cur.set) && !hit[cur.node] {
			hit[cur.node] = true
			hits = append(hits, cur.node)
		}
		for _, e := range db.Out(cur.node) {
			next := m.Step(cur.set, int32(e.Label))
			if len(next) == 0 {
				continue
			}
			c := cfg{e.To, key(next)}
			if !seen[c] {
				seen[c] = true
				queue = append(queue, struct {
					node int
					set  automata.StateSet
				}{e.To, next})
			}
		}
	}
	return hits
}

// restrictedReach backtracks over paths that must not repeat nodes
// (simple=true) or edges (simple=false).
func restrictedReach(db *graph.DB, m *automata.NFA, u int, simple bool) []int {
	hit := map[int]bool{}
	usedNodes := map[int]bool{u: true}
	usedEdges := map[[3]int]bool{} // (from, label, to) — multigraph edges by occurrence index
	edgeKey := func(from, idx int) [3]int { return [3]int{from, idx, 0} }

	var dfs func(node int, set automata.StateSet)
	dfs = func(node int, set automata.StateSet) {
		if m.ContainsFinal(set) {
			hit[node] = true
		}
		for idx, e := range db.Out(node) {
			if simple {
				if usedNodes[e.To] {
					continue
				}
			} else {
				if usedEdges[edgeKey(node, idx)] {
					continue
				}
			}
			next := m.Step(set, int32(e.Label))
			if len(next) == 0 {
				continue
			}
			if simple {
				usedNodes[e.To] = true
			} else {
				usedEdges[edgeKey(node, idx)] = true
			}
			dfs(e.To, next)
			if simple {
				delete(usedNodes, e.To)
			} else {
				delete(usedEdges, edgeKey(node, idx))
			}
		}
	}
	dfs(u, m.EpsClosure(m.Start()))
	var hits []int
	for v := range hit {
		hits = append(hits, v)
	}
	return hits
}
