package pathsem

import (
	"testing"

	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

func TestSemanticsString(t *testing.T) {
	if Arbitrary.String() != "arbitrary" || Simple.String() != "simple" || Trail.String() != "trail" {
		t.Fatal("names wrong")
	}
}

// On a 3-cycle, the word aaaa needs to revisit nodes: it exists under
// arbitrary semantics but not under simple or trail semantics.
func TestCycleDistinguishesSemantics(t *testing.T) {
	db := graph.MustParse(`
u a v
v a w
w a u
`)
	rx := xregex.MustParse("aaaa")
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	okArb, err := HasPathUnder(db, rx, u, v, Arbitrary)
	if err != nil {
		t.Fatal(err)
	}
	if !okArb {
		t.Fatal("arbitrary: aaaa path u→v exists (wraps the cycle)")
	}
	okSimple, err := HasPathUnder(db, rx, u, v, Simple)
	if err != nil {
		t.Fatal(err)
	}
	if okSimple {
		t.Fatal("simple: aaaa must revisit a node on a 3-cycle")
	}
	okTrail, err := HasPathUnder(db, rx, u, v, Trail)
	if err != nil {
		t.Fatal(err)
	}
	if okTrail {
		t.Fatal("trail: aaaa must reuse an edge on a 3-cycle")
	}
}

// Trails may revisit nodes but not edges: the figure-eight graph admits a
// trail through the middle node twice.
func TestTrailAllowsNodeRevisit(t *testing.T) {
	db := graph.MustParse(`
m a p
p a m
m a q
q a m
`)
	rx := xregex.MustParse("aaaa")
	m, _ := db.Lookup("m")
	okSimple, err := HasPathUnder(db, rx, m, m, Simple)
	if err != nil {
		t.Fatal(err)
	}
	if okSimple {
		t.Fatal("simple: cannot revisit m")
	}
	okTrail, err := HasPathUnder(db, rx, m, m, Trail)
	if err != nil {
		t.Fatal(err)
	}
	if !okTrail {
		t.Fatal("trail: m→p→m→q→m uses 4 distinct edges")
	}
}

// On acyclic graphs all three semantics agree.
func TestAcyclicAgreement(t *testing.T) {
	db := graph.MustParse(`
a x b
b y c
a y d
d x c
`)
	rx := xregex.MustParse("(x|y)(x|y)")
	rArb, err := EvalRPQ(db, rx, Arbitrary)
	if err != nil {
		t.Fatal(err)
	}
	rSim, err := EvalRPQ(db, rx, Simple)
	if err != nil {
		t.Fatal(err)
	}
	rTra, err := EvalRPQ(db, rx, Trail)
	if err != nil {
		t.Fatal(err)
	}
	if !rArb.Equal(rSim) || !rArb.Equal(rTra) {
		t.Fatalf("semantics disagree on a DAG: %v / %v / %v", rArb.Sorted(), rSim.Sorted(), rTra.Sorted())
	}
	a, _ := db.Lookup("a")
	c, _ := db.Lookup("c")
	if !rArb.Contains(pattern.Tuple{a, c}) {
		t.Fatal("(a, c) expected")
	}
}

func TestEpsilonPathAllSemantics(t *testing.T) {
	db := graph.MustParse("u a v")
	rx := xregex.MustParse("a*")
	u, _ := db.Lookup("u")
	for _, sem := range []Semantics{Arbitrary, Simple, Trail} {
		ok, err := HasPathUnder(db, rx, u, u, sem)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%v: ε-path u→u should match a*", sem)
		}
	}
}

func TestRejectVariables(t *testing.T) {
	db := graph.MustParse("u a v")
	if _, err := EvalRPQ(db, xregex.MustParse("$x{a}$x"), Arbitrary); err == nil {
		t.Fatal("variables must be rejected")
	}
}
