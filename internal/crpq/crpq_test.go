package crpq

import (
	"testing"

	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// The genealogy graph used for Figure 1: arcs (u, p, v) mean "u is a parent
// of v" and (u, s, v) mean "v is u's PhD-supervisor".
func genealogy() *graph.DB {
	return graph.MustParse(`
ada p bea
bea p cid
ada s cid
bea s dan
cid p dan
dan p eve
eve s ada
`)
}

func TestFigure1G1(t *testing.T) {
	// G1: pairs (v1, v2) where v1's child has been supervised by v2's parent:
	// v1 -p-> z1, z1 -s-> ... the paper's G1 is v1 -p-> m -s-> w <-p- v2
	db := genealogy()
	q := MustParse(`
ans(v1, v2)
v1 m : p
m w : s
v2 w : p
`)
	res, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// bea -p-> cid? no: ada -p-> bea, bea -s-> dan, cid -p-> dan ⇒ (ada, cid)
	ada, _ := db.Lookup("ada")
	cid, _ := db.Lookup("cid")
	if !res.Contains(pattern.Tuple{ada, cid}) {
		t.Fatalf("expected (ada, cid) in %v", res.Sorted())
	}
}

func TestFigure1G2Union(t *testing.T) {
	// G2: v1 -p+ ∨ s+-> v2
	db := genealogy()
	q := MustParse("ans(v1, v2)\nv1 v2 : p+|s+")
	res, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	ada, _ := db.Lookup("ada")
	eve, _ := db.Lookup("eve")
	if !res.Contains(pattern.Tuple{ada, eve}) {
		t.Fatal("ada is an ancestor of eve via p+")
	}
}

func TestFigure1G3Cycle(t *testing.T) {
	// G3: v1 with some z: z -p+-> v1 and z -s+-> v1.
	db := genealogy()
	q := MustParse("ans(v1)\nz v1 : p+\nz v1 : s+")
	res, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// ada -p-> bea -p-> cid and ada -s-> cid: cid qualifies
	cid, _ := db.Lookup("cid")
	if !res.Contains(pattern.Tuple{cid}) {
		t.Fatalf("cid expected in %v", res.Sorted())
	}
}

func TestVariablesRejected(t *testing.T) {
	if _, err := Parse("ans()\nx y : $v{a}$v"); err == nil {
		t.Fatal("CRPQ must reject string variables")
	}
}

func TestUnion(t *testing.T) {
	db := graph.MustParse("u a v")
	u := &Union{Members: []*Query{
		MustParse("ans(x)\nx y : a"),
		MustParse("ans(x)\nx y : b"),
	}}
	res, err := u.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("res = %v", res.Sorted())
	}
	ok, err := u.EvalBool(db)
	if err != nil || !ok {
		t.Fatal("bool union failed")
	}
	if u.Size() <= 0 {
		t.Fatal("size should be positive")
	}
}
