// Package crpq implements conjunctive regular path queries (§2.3): graph
// patterns whose edges are labelled with classical regular expressions.
// CRPQs are ECRPQs without relations; evaluation is delegated to the ecrpq
// engine (whose per-edge product construction realizes the Lemma 1 bounds).
package crpq

import (
	"fmt"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// Query is a CRPQ: a graph pattern with classical regular expression labels.
type Query struct {
	Pattern *pattern.Graph
}

// New validates and wraps a pattern as a CRPQ.
func New(g *pattern.Graph) (*Query, error) {
	q := &Query{Pattern: g}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Parse parses the textual query format into a CRPQ.
func Parse(src string) (*Query, error) {
	g, err := pattern.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return New(g)
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks that all edge labels are classical regular expressions.
func (q *Query) Validate() error {
	if err := q.Pattern.Validate(); err != nil {
		return err
	}
	for i, e := range q.Pattern.Edges {
		if !xregex.IsClassical(e.Label) {
			return fmt.Errorf("crpq: edge %d label %s contains string variables (use package cxrpq)", i, xregex.String(e.Label))
		}
	}
	return nil
}

// Size returns |q|.
func (q *Query) Size() int { return q.Pattern.Size() }

// Eval computes q(D).
func (q *Query) Eval(db *graph.DB) (*pattern.TupleSet, error) {
	return ecrpq.Eval(&ecrpq.Query{Pattern: q.Pattern}, db)
}

// EvalBool decides D |= q.
func (q *Query) EvalBool(db *graph.DB) (bool, error) {
	return ecrpq.EvalBool(&ecrpq.Query{Pattern: q.Pattern}, db)
}

// Check decides t̄ ∈ q(D) (the problem CRPQ-Check of §2.3).
func (q *Query) Check(db *graph.DB, t pattern.Tuple) (bool, error) {
	return ecrpq.Check(&ecrpq.Query{Pattern: q.Pattern}, db, t)
}

// Union is a union of CRPQs (∪-CRPQ, §7).
type Union struct {
	Members []*Query
}

// Eval computes ⋃ qi(D).
func (u *Union) Eval(db *graph.DB) (*pattern.TupleSet, error) {
	out := pattern.NewTupleSet()
	for _, m := range u.Members {
		res, err := m.Eval(db)
		if err != nil {
			return nil, err
		}
		for _, t := range res.Sorted() {
			out.Add(t)
		}
	}
	return out, nil
}

// EvalBool decides whether some member matches.
func (u *Union) EvalBool(db *graph.DB) (bool, error) {
	for _, m := range u.Members {
		ok, err := m.EvalBool(db)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Size returns the total size of all members.
func (u *Union) Size() int {
	s := 0
	for _, m := range u.Members {
		s += m.Size()
	}
	return s
}
