package oracle_test

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/oracle"
	"cxrpq/internal/workload"
)

// Layered DAGs bound every path length by the number of layers, so the
// word-length-bounded oracle is exact there and must agree with the
// product engine on the full result set.

func TestOracleAgreesWithECRPQEval(t *testing.T) {
	queries := []string{
		"ans(x, y)\nx y : a(a|b)*",
		"ans(x, z)\nx y : (a|b)+\ny z : b(a|b)*",
		"ans(x, y)\nx y : (ab)+|ba",
	}
	for seed := int64(0); seed < 6; seed++ {
		db := workload.Layered(seed, 4, 3, "ab")
		for _, src := range queries {
			q, err := ecrpq.ParseQuery(src, []rune("ab"))
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			want, err := oracle.EvalECRPQ(q, db, 6)
			if err != nil {
				t.Fatalf("seed %d %q: oracle: %v", seed, src, err)
			}
			got, err := ecrpq.Eval(q, db)
			if err != nil {
				t.Fatalf("seed %d %q: engine: %v", seed, src, err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d %q: engine %v, oracle %v", seed, src, got.Sorted(), want.Sorted())
			}
		}
	}
}

func TestOracleAgreesWithECRPQEvalEquality(t *testing.T) {
	src := "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+\nrel equality 0 1"
	for seed := int64(0); seed < 4; seed++ {
		db := workload.Layered(seed*3+1, 3, 2, "ab")
		q, err := ecrpq.ParseQuery(src, []rune("ab"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.EvalECRPQ(q, db, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ecrpq.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed %d: engine %v, oracle %v", seed, got.Sorted(), want.Sorted())
		}
	}
}

func TestOracleAgreesWithECRPQEvalRelation(t *testing.T) {
	src := "ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+\nrel equal-length 0 1"
	db := workload.Layered(7, 3, 2, "ab")
	q, err := ecrpq.ParseQuery(src, []rune("ab"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalECRPQ(q, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("engine %v, oracle %v", got.Sorted(), want.Sorted())
	}
}

// TestOracleCXRPQAgreesWithVsfEval cross-checks the CXRPQ brute-force
// oracle (including its MatchTuple memoization) against the vstar-free
// engine on a bounded DAG, where the oracle is exact.
func TestOracleCXRPQAgreesWithVsfEval(t *testing.T) {
	db := workload.Layered(11, 4, 2, "ab")
	q := cxrpq.MustParse("ans(s, t)\ns t : $x{a|b}(a|b)*\nt s2 : $x")
	got, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("engine %v, oracle %v", got.Sorted(), want.Sorted())
	}
}
