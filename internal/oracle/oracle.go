// Package oracle provides brute-force reference implementations used to
// cross-validate the production engines in tests and experiments. They
// enumerate path words explicitly and therefore only terminate for small
// length bounds; the engines they check must agree with them whenever all
// relevant matching words fit under the bound.
package oracle

import (
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// EvalECRPQ computes q(D) by brute force, considering only matching words of
// length at most maxLen per edge.
func EvalECRPQ(q *ecrpq.Query, db *graph.DB, maxLen int) (*pattern.TupleSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sigma := xregex.MergeAlphabets(db.Alphabet(), xregex.AlphabetOf(q.Pattern.Labels()...))
	vars := q.Pattern.Vars()
	out := pattern.NewTupleSet()

	assign := map[string]int{}
	var rec func(i int) error
	rec = func(i int) error {
		if i < len(vars) {
			for u := 0; u < db.NumNodes(); u++ {
				assign[vars[i]] = u
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			delete(assign, vars[i])
			return nil
		}
		// all node variables bound: compute per-edge word sets
		words := make([][]string, len(q.Pattern.Edges))
		for ei, e := range q.Pattern.Edges {
			m, err := xregex.Compile(e.Label, sigma)
			if err != nil {
				return err
			}
			for _, w := range db.PathWordsBetween(assign[e.From], assign[e.To], maxLen) {
				if m.AcceptsString(w) {
					words[ei] = append(words[ei], w)
				}
			}
			if len(words[ei]) == 0 {
				return nil
			}
		}
		// check the groups: some choice of words must satisfy every relation
		if !chooseWords(q, words) {
			return nil
		}
		t := make(pattern.Tuple, len(q.Pattern.Out))
		for j, z := range q.Pattern.Out {
			t[j] = assign[z]
		}
		out.Add(t)
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// chooseWords checks whether some per-edge word choice satisfies all groups.
// Ungrouped edges are unconstrained beyond non-emptiness (already checked).
func chooseWords(q *ecrpq.Query, words [][]string) bool {
	if len(q.Groups) == 0 {
		return true
	}
	// groups are disjoint, so they can be checked independently
	for _, g := range q.Groups {
		if !chooseGroup(g, words) {
			return false
		}
	}
	return true
}

func chooseGroup(g ecrpq.Group, words [][]string) bool {
	choice := make([]string, len(g.Edges))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(g.Edges) {
			switch rel := g.Rel.(type) {
			case *ecrpq.Equality:
				return ecrpq.EqualityContains(choice)
			case *ecrpq.NFARelation:
				return rel.Contains(choice)
			}
			return false
		}
		for _, w := range words[g.Edges[i]] {
			choice[i] = w
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}
