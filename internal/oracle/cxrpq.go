package oracle

import (
	"fmt"
	"strings"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// EvalCXRPQ computes q(D) by brute force under the conjunctive-match
// semantics of §3.1: it enumerates matching morphisms h, per-edge path words
// of length ≤ maxLen, and decides conjunctive matches via
// cxrpq.MatchTuple. Variable images are implicitly bounded by maxLen (they
// are factors of the matched words), so with maxImage = maxLen this is also
// a reference for q^≤maxLen(D) restricted to short matching words.
func EvalCXRPQ(q *cxrpq.Query, db *graph.DB, maxLen int) (*pattern.TupleSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := q.CXRE()
	sigma := db.Alphabet()
	vars := q.Pattern.Vars()
	out := pattern.NewTupleSet()

	// MatchTupleBool is a pure function of the word tuple (c and sigma are
	// fixed per call), and the same word tuples recur across morphisms, so
	// memoize verdicts. This keeps the oracle brute force in spirit while
	// removing the repeated re-derivations.
	matchMemo := map[string]bool{}
	matchKey := func(choice []string) string {
		var b strings.Builder
		for _, w := range choice {
			fmt.Fprintf(&b, "%d:", len(w))
			b.WriteString(w)
		}
		return b.String()
	}
	match := func(choice []string) bool {
		k := matchKey(choice)
		if v, ok := matchMemo[k]; ok {
			return v
		}
		v := cxrpq.MatchTupleBool(c, choice, sigma)
		matchMemo[k] = v
		return v
	}

	assign := map[string]int{}
	var rec func(i int)
	rec = func(i int) {
		if i < len(vars) {
			for u := 0; u < db.NumNodes(); u++ {
				assign[vars[i]] = u
				rec(i + 1)
			}
			delete(assign, vars[i])
			return
		}
		words := make([][]string, len(q.Pattern.Edges))
		for ei, e := range q.Pattern.Edges {
			words[ei] = db.PathWordsBetween(assign[e.From], assign[e.To], maxLen)
			if len(words[ei]) == 0 {
				return
			}
		}
		choice := make([]string, len(q.Pattern.Edges))
		var pick func(ei int) bool
		pick = func(ei int) bool {
			if ei == len(choice) {
				return match(choice)
			}
			for _, w := range words[ei] {
				choice[ei] = w
				if pick(ei + 1) {
					return true
				}
			}
			return false
		}
		if !pick(0) {
			return
		}
		t := make(pattern.Tuple, len(q.Pattern.Out))
		for j, z := range q.Pattern.Out {
			t[j] = assign[z]
		}
		out.Add(t)
	}
	rec(0)
	return out, nil
}
