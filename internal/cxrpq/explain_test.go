package cxrpq_test

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

func TestFindWitnessUnary(t *testing.T) {
	db := graph.MustParse("u a m\nm b v")
	q := &ecrpq.Query{Pattern: pattern.MustParseQuery("ans(x, y)\nx y : ab")}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	w, ok, err := ecrpq.FindWitness(q, db, pattern.Tuple{u, v})
	if err != nil || !ok {
		t.Fatalf("witness not found: %v %v", ok, err)
	}
	if w.Words[0] != "ab" {
		t.Fatalf("witness word = %q, want ab", w.Words[0])
	}
	if w.NodeOf["x"] != u || w.NodeOf["y"] != v {
		t.Fatalf("node assignment wrong: %v", w.NodeOf)
	}
	// no witness for a non-answer
	_, ok, err = ecrpq.FindWitness(q, db, pattern.Tuple{v, u})
	if err != nil || ok {
		t.Fatalf("unexpected witness: %v %v", ok, err)
	}
}

func TestFindWitnessEqualityGroup(t *testing.T) {
	db := graph.MustParse(`
u a m1
m1 b v
u2 a m2
m2 b v2
`)
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans()\nx1 y1 : (a|b)+\nx2 y2 : a(a|b)*"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}},
	}
	w, ok, err := ecrpq.FindWitness(q, db, nil)
	if err != nil || !ok {
		t.Fatalf("witness not found: %v %v", ok, err)
	}
	if w.Words[0] != w.Words[1] {
		t.Fatalf("equality witness words differ: %q vs %q", w.Words[0], w.Words[1])
	}
	if w.Words[0] == "" {
		t.Fatal("equality witness should be non-empty (regexes require ≥1 symbol)")
	}
}

func TestFindWitnessEqualLength(t *testing.T) {
	db := graph.MustParse(`
u a m1
m1 a v
u2 b m2
m2 b v2
`)
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans()\nx1 y1 : a+\nx2 y2 : b+"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: ecrpq.EqualLength(2, []rune("ab"))}},
	}
	w, ok, err := ecrpq.FindWitness(q, db, nil)
	if err != nil || !ok {
		t.Fatalf("witness not found: %v %v", ok, err)
	}
	if len(w.Words[0]) != len(w.Words[1]) {
		t.Fatalf("equal-length violated: %q vs %q", w.Words[0], w.Words[1])
	}
}

func TestExplainVsf(t *testing.T) {
	db := graph.MustParse(`
u a v1
u a m
m c v2
`)
	q := cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)($x|c)?
`)
	ex, ok, err := cxrpq.ExplainVsf(q, db, nil)
	if err != nil || !ok {
		t.Fatalf("explain failed: %v %v", ok, err)
	}
	if ex.Images["x"] != "a" {
		t.Fatalf("image of x = %q, want a", ex.Images["x"])
	}
	if len(ex.Words) != 2 || ex.Words[0] != "a" {
		t.Fatalf("edge words = %v", ex.Words)
	}
	// the witness words must be a conjunctive match of the query's CXRE
	if !cxrpq.MatchTupleBool(q.CXRE(), ex.Words, db.Alphabet()) {
		t.Fatalf("explanation words %v are not a conjunctive match", ex.Words)
	}
}

func TestExplainVsfWithNonBasicDefs(t *testing.T) {
	// Step 3 eliminates z{x a}; the explanation must still report z's image.
	db := graph.New()
	s := db.Node("s")
	tn := db.Node("t")
	db.AddPath(s, "ba", tn)
	u := db.Node("u")
	v := db.Node("v")
	db.AddPath(u, "ba", v)
	q := cxrpq.MustParse(`
ans()
s t : $z{$x{b}a}
u v : $z
`)
	ex, ok, err := cxrpq.ExplainVsf(q, db, nil)
	if err != nil || !ok {
		t.Fatalf("explain failed: %v %v", ok, err)
	}
	if ex.Images["z"] != "ba" {
		t.Fatalf("image of z = %q, want ba (images: %v)", ex.Images["z"], ex.Images)
	}
	if ex.Images["x"] != "b" {
		t.Fatalf("image of x = %q, want b", ex.Images["x"])
	}
}

func TestExplainBounded(t *testing.T) {
	db := graph.New()
	s := db.Node("s")
	tn := db.Node("t")
	db.AddPath(s, "#aabaa#", tn)
	q := cxrpq.MustParse("ans()\nx y : #$v{a+}b$v#")
	ex, ok, err := cxrpq.ExplainBounded(q, db, 3, nil)
	if err != nil || !ok {
		t.Fatalf("explain failed: %v %v", ok, err)
	}
	if ex.Images["v"] != "aa" {
		t.Fatalf("image of v = %q, want aa", ex.Images["v"])
	}
	if ex.Words[0] != "#aabaa#" {
		t.Fatalf("edge word = %q", ex.Words[0])
	}
}

func TestExplainAliasChain(t *testing.T) {
	// x{y} aliases: x's image equals y's.
	q := &cxrpq.Query{Pattern: &pattern.Graph{
		Out: nil,
		Edges: []pattern.Edge{
			{From: "p", To: "q", Label: xregex.MustParse("$y{a}$x{$y}")},
			{From: "r", To: "s", Label: xregex.MustParse("$x")},
		},
	}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// p→q must read "aa" (y then x=y); r→s reads "a".
	db2 := graph.New()
	p := db2.Node("p")
	qq := db2.Node("q")
	db2.AddPath(p, "aa", qq)
	r := db2.Node("r")
	ss := db2.Node("s")
	db2.AddPath(r, "a", ss)
	ex, ok, err := cxrpq.ExplainVsf(q, db2, nil)
	if err != nil || !ok {
		t.Fatalf("explain failed: %v %v", ok, err)
	}
	if ex.Images["x"] != "a" || ex.Images["y"] != "a" {
		t.Fatalf("alias images wrong: %v", ex.Images)
	}
}
