package cxrpq_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

// randVsfQuery generates a small random vstar-free two-edge CXRPQ over
// {a,b}: the first edge defines $x, the second references it inside simple
// contexts.
func randVsfQuery(seed int64) *cxrpq.Query {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	defBodies := []string{"a|b", "ab|b", "a(a|b)", "b?a"}
	ctxs := []string{"$x", "$x|b", "($x|a)b?", "a$x", "$x($x|b)"}
	tails := []string{"", "a*", "(a|b)?"}
	src := "ans(p, q)\n" +
		"p m : $x{" + defBodies[next(uint64(len(defBodies)))] + "}" + tails[next(uint64(len(tails)))] + "\n" +
		"m q : " + ctxs[next(uint64(len(ctxs)))] + "\n"
	return cxrpq.MustParse(src)
}

// Property: EvalVsf agrees with the brute-force conjunctive-match oracle on
// small random graphs (words up to length 4 suffice for these shapes).
func TestQuickVsfAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randVsfQuery(seed)
		db := workload.Random(seed^0x5f5f, 4, 7, "ab")
		got, err := cxrpq.EvalVsf(q, db)
		if err != nil {
			return false
		}
		want, err := oracle.EvalCXRPQ(q, db, 4)
		if err != nil {
			return false
		}
		// oracle words are bounded by 4; engine must contain all oracle
		// tuples, and every engine tuple must be oracle-verifiable at some
		// bound — check containment both ways with a larger oracle bound
		for _, tup := range want.Sorted() {
			if !got.Contains(tup) {
				return false
			}
		}
		wider, err := oracle.EvalCXRPQ(q, db, 6)
		if err != nil {
			return false
		}
		for _, tup := range got.Sorted() {
			if !wider.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: InstantiateCXRE is sound — word tuples generated from the
// instantiated classical tuple are conjunctive matches of the original.
func TestQuickInstantiateTupleSound(t *testing.T) {
	sigma := []rune("ab")
	images := []string{"", "a", "b", "ab"}
	f := func(seed int64, xi uint8) bool {
		q := randVsfQuery(seed)
		c := q.CXRE()
		v := map[string]string{"x": images[int(xi)%len(images)]}
		inst, err := cxrpq.InstantiateCXRE(c, v, sigma)
		if err != nil {
			return false
		}
		// sample one word per component (shortest); skip if any ∅
		words := make([]string, len(inst))
		for i, n := range inst {
			m, err := xregex.Compile(n, sigma)
			if err != nil {
				return false
			}
			ws := m.EnumerateWords(5, 1)
			if len(ws) == 0 {
				return true // empty under this mapping — nothing to check
			}
			rs := make([]rune, 0, len(ws[0]))
			for _, code := range ws[0] {
				rs = append(rs, rune(code))
			}
			words[i] = string(rs)
		}
		return cxrpq.MatchTupleBool(c, words, sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: bounded evaluation is monotone in k: q^≤k(D) ⊆ q^≤k+1(D).
func TestQuickBoundedMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randVsfQuery(seed) // vsf queries are valid CXRPQ^≤k queries too
		db := workload.Random(seed^0xabcd, 4, 6, "ab")
		r1, err := cxrpq.EvalBounded(q, db, 1)
		if err != nil {
			return false
		}
		r2, err := cxrpq.EvalBounded(q, db, 2)
		if err != nil {
			return false
		}
		for _, tup := range r1.Sorted() {
			if !r2.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: for vstar-free queries with images bounded structurally by the
// database's path length, EvalVsf ⊇ EvalBounded for every k.
func TestQuickVsfContainsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randVsfQuery(seed)
		db := workload.Random(seed^0x1234, 4, 6, "ab")
		full, err := cxrpq.EvalVsf(q, db)
		if err != nil {
			return false
		}
		bounded, err := cxrpq.EvalBounded(q, db, 2)
		if err != nil {
			return false
		}
		for _, tup := range bounded.Sorted() {
			if !full.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchTuple witnesses are reproducible — re-instantiating with
// the returned mapping accepts the same words.
func TestQuickMatchTupleWitness(t *testing.T) {
	sigma := []rune("ab")
	c := cxrpq.CXRE{
		xregex.MustParse("$x{(a|b)+}"),
		xregex.MustParse("$x|b"),
	}
	f := func(w1bits, w2bits []bool) bool {
		w1 := bitsToWord(w1bits, 3)
		w2 := bitsToWord(w2bits, 3)
		vm, ok := cxrpq.MatchTuple(c, []string{w1, w2}, sigma)
		if !ok {
			// spec: match iff w1 ∈ (a|b)+ and (w2 == w1 or w2 == "b")
			return !(len(w1) > 0 && (w2 == w1 || w2 == "b"))
		}
		inst, err := cxrpq.InstantiateCXRE(c, vm, sigma)
		if err != nil {
			return false
		}
		ok1, err1 := xregex.Matches(inst[0], w1, sigma)
		ok2, err2 := xregex.Matches(inst[1], w2, sigma)
		return err1 == nil && err2 == nil && ok1 && ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func bitsToWord(bits []bool, maxLen int) string {
	if len(bits) > maxLen {
		bits = bits[:maxLen]
	}
	w := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			w[i] = 'a'
		} else {
			w[i] = 'b'
		}
	}
	return string(w)
}

// Regression guard: Eval on a CRPQ-shaped CXRPQ agrees with the CRPQ engine.
func TestQuickClassicalDispatchAgrees(t *testing.T) {
	f := func(seed int64) bool {
		db := workload.Random(seed, 5, 10, "ab")
		q := cxrpq.MustParse("ans(x, y)\nx m : a(a|b)*\nm y : b+")
		r1, err := cxrpq.Eval(q, db)
		if err != nil {
			return false
		}
		want, err := oracle.EvalCXRPQ(q, db, 5)
		if err != nil {
			return false
		}
		for _, tup := range want.Sorted() {
			if !r1.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pruned Theorem 6 enumeration agrees exactly with the
// literal blind guess over (Σ^≤k)^n — the pruning is sound and complete.
func TestQuickBoundedPruningExact(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randVsfQuery(seed)
		db := workload.Random(seed^0x7777, 4, 6, "ab")
		pruned, err := cxrpq.EvalBounded(q, db, 2)
		if err != nil {
			return false
		}
		naive, err := cxrpq.EvalBoundedNaive(q, db, 2)
		if err != nil {
			return false
		}
		return pruned.Equal(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 4): the normal form is language-equivalent — queries
// labelled with ᾱ and with NF(ᾱ) return the same answers on random DBs.
func TestQuickNormalFormEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randVsfQuery(seed)
		c := q.CXRE()
		nf, _, err := cxrpq.NormalForm(c)
		if err != nil {
			return false
		}
		g := q.Pattern.Clone()
		for i := range g.Edges {
			g.Edges[i].Label = nf[i]
		}
		qnf, err := cxrpq.New(g)
		if err != nil {
			return false
		}
		db := workload.Random(seed^0x2468, 4, 7, "ab")
		r1, err := cxrpq.EvalVsf(q, db)
		if err != nil {
			return false
		}
		r2, err := cxrpq.EvalVsf(qnf, db)
		if err != nil {
			return false
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

var _ = graph.New
var _ = pattern.NewTupleSet
