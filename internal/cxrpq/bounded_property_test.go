package cxrpq_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// randBoundedQuery generates a small random CXRPQ exercising the bounded
// engine beyond the vstar-free fragment: two string variables, references
// under repetition, defs spread across up to three edges, and a dependent
// second definition ($y's body references $x) so the ≺-topological prefix
// checks and the tuple-level force condition both fire.
func randBoundedQuery(seed int64) *cxrpq.Query {
	s := uint64(seed)
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	xBodies := []string{"a|b", "(a|b)+", "ab|b", "b?a"}
	yBodies := []string{"$x", "$x|b", "a|b", "$x a?"}
	mids := []string{"$y", "($x|$y)", "$x+", "($y|a)b*"}
	tails := []string{"$x", "$x+|b", "($x|$y)+", "$y?a*"}
	src := "ans(p, q)\n" +
		"p m : $x{" + xBodies[next(uint64(len(xBodies)))] + "}c?\n" +
		"m n : $y{" + yBodies[next(uint64(len(yBodies)))] + "}" + mids[next(uint64(len(mids)))] + "\n" +
		"n q : " + tails[next(uint64(len(tails)))] + "\n"
	return cxrpq.MustParse(src)
}

// Property (tentpole differential): the prefix-incremental bounded engine
// agrees with the literal Theorem 6 rendering EvalBoundedNaive on full tuple
// sets — not just Boolean outcomes — across randomized graphs, bounds and
// queries.
func TestQuickBoundedEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randBoundedQuery(seed)
		db := workload.Random(seed^0x3b3b, 4, 7, "ab")
		k := 1 + int(uint64(seed)%2)
		fast, err := cxrpq.EvalBounded(q, db, k)
		if err != nil {
			return false
		}
		naive, err := cxrpq.EvalBoundedNaive(q, db, k)
		if err != nil {
			return false
		}
		return fast.Equal(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

// Property: CheckBounded agrees with membership in the naive tuple set, for
// both members and non-members.
func TestQuickCheckBoundedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randBoundedQuery(seed)
		db := workload.Random(seed^0x9c9c, 4, 7, "ab")
		naive, err := cxrpq.EvalBoundedNaive(q, db, 1)
		if err != nil {
			return false
		}
		for _, tup := range naive.Sorted() {
			ok, err := cxrpq.CheckBounded(q, db, 1, tup)
			if err != nil || !ok {
				return false
			}
		}
		// a sample of arbitrary tuples must agree with set membership
		for a := 0; a < db.NumNodes(); a++ {
			tup := pattern.Tuple{a, (a + 1) % db.NumNodes()}
			ok, err := cxrpq.CheckBounded(q, db, 1, tup)
			if err != nil || ok != naive.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parallel enumeration returns exactly the sequential result
// (the worker fan-out must not lose or duplicate subtrees).
func TestQuickBoundedParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		q := randBoundedQuery(seed)
		db := workload.Random(seed^0x6d6d, 5, 9, "ab")
		par, err := cxrpq.EvalBounded(q, db, 2)
		if err != nil {
			return false
		}
		prev := engine.SetMaxWorkers(1)
		seqRes, err := cxrpq.EvalBounded(q, db, 2)
		engine.SetMaxWorkers(prev)
		if err != nil {
			return false
		}
		return par.Equal(seqRes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// Property: EvalAny's capped flag (now a single HasPathOfLen frontier sweep)
// agrees with the definition via PathLabels growth.
func TestQuickEvalAnyCappedAgrees(t *testing.T) {
	f := func(seed int64) bool {
		db := workload.Random(seed^0x4e4e, 4, int(uint64(seed)%9), "ab")
		q := cxrpq.MustParse("ans(p, q)\np q : $x{a|b}$x*")
		for k := 0; k <= 2; k++ {
			_, capped, err := cxrpq.EvalAny(q, db, k)
			if err != nil {
				return false
			}
			want := len(db.PathLabels(k+1, 0)) > len(db.PathLabels(k, 0))
			if capped != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}
