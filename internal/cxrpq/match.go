package cxrpq

import (
	"sort"

	"cxrpq/internal/automata"
	"cxrpq/internal/xregex"
)

// MatchTuple decides whether w̄ ∈ L(ᾱ) — the conjunctive-match semantics of
// §3.1 — and returns a witnessing variable mapping ψ. It enumerates
// candidate images (factors of the matched words) in ≺-topological order and
// decides each full mapping via the Lemma 10 instantiation; it is the
// reference semantics used by the brute-force oracles and the expressiveness
// experiments.
func MatchTuple(c CXRE, words []string, sigma []rune) (map[string]string, bool) {
	if len(words) != len(c) {
		return nil, false
	}
	if err := c.Validate(); err != nil {
		return nil, false
	}
	sigma = xregex.MergeAlphabets(sigma, c.Alphabet())
	for _, w := range words {
		sigma = xregex.MergeAlphabets(sigma, []rune(w))
	}
	vars, err := xregex.TopoVars([]xregex.Node(c)...)
	if err != nil {
		return nil, false
	}
	defined := c.DefinedVars()

	// Candidate images: ε plus every factor of every word. Any image that
	// influences a match must occur as a factor of some matched word (it is
	// produced by a definition or consumed by a reference inside some wi).
	// Free variables whose references are all unused can take ε.
	factorSet := map[string]bool{"": true}
	for _, w := range words {
		rs := []rune(w)
		for i := 0; i <= len(rs); i++ {
			for j := i + 1; j <= len(rs); j++ {
				factorSet[string(rs[i:j])] = true
			}
		}
	}
	factors := make([]string, 0, len(factorSet))
	for f := range factorSet {
		factors = append(factors, f)
	}
	sort.Slice(factors, func(i, j int) bool {
		if len(factors[i]) != len(factors[j]) {
			return len(factors[i]) < len(factors[j])
		}
		return factors[i] < factors[j]
	})

	// Pruning automata: a defined variable's non-empty image must match some
	// definition body with all variables relaxed to Σ*. The relaxed bodies do
	// not depend on the assignment, so compile each once up front (sigma
	// already contains every rune of every factor).
	relaxed := map[string][]*automata.NFA{}
	for x := range defined {
		for _, body := range xregex.DefBodies(x, []xregex.Node(c)...) {
			m, err := xregex.Compile(relaxAllVars(body), sigma)
			if err != nil {
				return nil, false
			}
			relaxed[x] = append(relaxed[x], m)
		}
	}

	assign := map[string]string{}
	var try func(i int) (map[string]string, bool)
	try = func(i int) (map[string]string, bool) {
		if i == len(vars) {
			inst, err := InstantiateCXRE(c, assign, sigma)
			if err != nil {
				return nil, false
			}
			for j, w := range words {
				ok, err := xregex.Matches(inst[j], w, xregex.InstantiationAlphabet(sigma, assign))
				if err != nil || !ok {
					return nil, false
				}
			}
			out := map[string]string{}
			for k, v := range assign {
				out[k] = v
			}
			return out, true
		}
		x := vars[i]
		for _, f := range factors {
			if f != "" && defined[x] {
				ok := false
				for _, g := range relaxed[x] {
					if g.AcceptsString(f) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			assign[x] = f
			if r, ok := try(i + 1); ok {
				return r, true
			}
		}
		delete(assign, x)
		return nil, false
	}
	return try(0)
}

// MatchTupleBool reports w̄ ∈ L(ᾱ).
func MatchTupleBool(c CXRE, words []string, sigma []rune) bool {
	_, ok := MatchTuple(c, words, sigma)
	return ok
}

func relaxAllVars(n xregex.Node) xregex.Node {
	switch t := n.(type) {
	case *xregex.Ref, *xregex.Def:
		return xregex.AnyWord()
	case *xregex.Cat:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxAllVars(k)
		}
		return &xregex.Cat{Kids: kids}
	case *xregex.Alt:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxAllVars(k)
		}
		return &xregex.Alt{Kids: kids}
	case *xregex.Plus:
		return &xregex.Plus{Kid: relaxAllVars(t.Kid)}
	case *xregex.Star:
		return &xregex.Star{Kid: relaxAllVars(t.Kid)}
	case *xregex.Opt:
		return &xregex.Opt{Kid: relaxAllVars(t.Kid)}
	default:
		return n
	}
}
