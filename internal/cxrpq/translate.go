package cxrpq

import (
	"fmt"
	"sort"

	"cxrpq/internal/crpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// SimpleToECRPQer translates a CXRPQ whose conjunctive xregex is simple into
// an equivalent ECRPQ^er (the constructions inside Lemma 3 and Lemma 13):
// components are factorized, definitions x{y} are collapsed into references
// of y, each factor becomes its own pattern edge, and every string variable
// becomes an equality group tying its definition edge (labelled by the
// definition body) to its reference edges (labelled Σ*).
//
// forcedEps lists variables that are defined in the *original* conjunctive
// xregex but not in this (branch-selected) one; per §3.1 their image is
// forced to ε, so their references become ε-edges. Variables with no
// definition anywhere (free variables) share an arbitrary word via an
// equality group without a definition edge. Pass nil for forcedEps when the
// query itself is the original.
func SimpleToECRPQer(q *Query, forcedEps map[string]bool) (*ecrpq.Query, error) {
	tr, err := simpleToECRPQerInfo(q, forcedEps)
	if err != nil {
		return nil, err
	}
	return tr.Query, nil
}

// SimpleTranslation is the result of the simple-CXRPQ → ECRPQ^er
// translation together with the bookkeeping needed to map witnesses back:
// which translated edge defines each variable, which edges reference it,
// which original edge each translated edge came from, and which variables
// were forced to ε.
type SimpleTranslation struct {
	Query     *ecrpq.Query
	DefEdge   map[string]int
	RefEdges  map[string][]int
	ForcedEps map[string]bool
	EdgeSplit [][]int           // original edge index -> translated edge indices
	Alias     map[string]string // x -> y for collapsed definitions x{y}
}

func simpleToECRPQerInfo(q *Query, forcedEps map[string]bool) (*SimpleTranslation, error) {
	c := q.CXRE()
	if !c.IsSimple() {
		return nil, fmt.Errorf("cxrpq: conjunctive xregex is not simple")
	}
	work := c.Clone()

	// Collapse definitions x{y}: replace the definition and all references
	// of x by references of y (Lemma 3). Process in ≺-topological order so
	// chains x{y}, u{x} resolve fully. Aliases are recorded for witness
	// reconstruction.
	alias := map[string]string{}
	order, err := xregex.TopoVars([]xregex.Node(work)...)
	if err != nil {
		return nil, err
	}
	for _, x := range order {
		bodies := xregex.DefBodies(x, []xregex.Node(work)...)
		if len(bodies) != 1 {
			continue
		}
		ref, ok := bodies[0].(*xregex.Ref)
		if !ok {
			continue
		}
		y := ref.Var
		alias[x] = y
		for i := range work {
			work[i] = xregex.ReplaceDefs(work[i], x, func(xregex.Node) xregex.Node {
				return &xregex.Ref{Var: y}
			})
			work[i] = xregex.ReplaceRefs(work[i], x, &xregex.Ref{Var: y})
		}
	}

	defined := work.DefinedVars()
	out := &pattern.Graph{Out: append([]string(nil), q.Pattern.Out...)}
	defEdge := map[string]int{}
	refEdges := map[string][]int{}
	edgeSplit := make([][]int, len(q.Pattern.Edges))

	for i, e := range q.Pattern.Edges {
		factors, err := xregex.Factorize(work[i])
		if err != nil {
			return nil, fmt.Errorf("cxrpq: component %d: %v", i, err)
		}
		cur := e.From
		for j, f := range factors {
			next := e.To
			if j < len(factors)-1 {
				next = fmt.Sprintf("_%s_%d_%d", e.From, i, j)
			}
			ei := len(out.Edges)
			edgeSplit[i] = append(edgeSplit[i], ei)
			switch f.Kind {
			case xregex.FClassical:
				out.Edges = append(out.Edges, pattern.Edge{From: cur, To: next, Label: f.Expr})
			case xregex.FDef:
				if !xregex.IsClassical(f.Expr) {
					return nil, fmt.Errorf("cxrpq: non-basic definition of $%s survived", f.Var)
				}
				out.Edges = append(out.Edges, pattern.Edge{From: cur, To: next, Label: f.Expr})
				defEdge[f.Var] = ei
			case xregex.FRef:
				if forcedEps[f.Var] {
					out.Edges = append(out.Edges, pattern.Edge{From: cur, To: next, Label: &xregex.Eps{}})
				} else {
					out.Edges = append(out.Edges, pattern.Edge{From: cur, To: next, Label: xregex.AnyWord()})
					refEdges[f.Var] = append(refEdges[f.Var], ei)
				}
			}
			cur = next
		}
	}

	eq := &ecrpq.Query{Pattern: out}
	var vars []string
	for v := range defined {
		vars = append(vars, v)
	}
	for v := range refEdges {
		if !defined[v] {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	seen := map[string]bool{}
	for _, x := range vars {
		if seen[x] {
			continue
		}
		seen[x] = true
		var members []int
		if ei, ok := defEdge[x]; ok {
			members = append(members, ei)
		}
		members = append(members, refEdges[x]...)
		if len(members) >= 2 {
			eq.Groups = append(eq.Groups, ecrpq.Group{
				Edges: members,
				Rel:   &ecrpq.Equality{N: len(members)},
			})
		}
	}
	if err := eq.Validate(); err != nil {
		return nil, err
	}
	fe := map[string]bool{}
	for v := range forcedEps {
		fe[v] = true
	}
	return &SimpleTranslation{
		Query:     eq,
		DefEdge:   defEdge,
		RefEdges:  refEdges,
		ForcedEps: fe,
		EdgeSplit: edgeSplit,
		Alias:     alias,
	}, nil
}

// branchCombos enumerates one branch choice per component; each callback
// receives a variable-simple conjunctive xregex. Used by EvalVsf and
// VsfToUnionECRPQer; the enumeration realizes Lemma 7's nondeterministic
// alternation resolution. Returns an error from the callback, stopping early
// if errStop is returned.
var errStop = fmt.Errorf("stop")

func branchCombos(c CXRE, f func(CXRE) error) error {
	expanded := make([][]xregex.Node, len(c))
	for i, n := range c {
		branches, err := xregex.ExpandVariableSimple(n)
		if err != nil {
			return err
		}
		expanded[i] = branches
	}
	combo := make(CXRE, len(c))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(c) {
			return f(combo.Clone())
		}
		for _, b := range expanded[i] {
			combo[i] = b
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// comboToSimpleECRPQ normalizes one variable-simple branch combination via
// Step 3 and translates it into an ECRPQ^er, with images of originally
// defined but branch-dropped variables forced to ε.
func comboToSimpleECRPQ(q *Query, combo CXRE, origDefined map[string]bool) (*ecrpq.Query, error) {
	simple, err := Step3MainModification(combo)
	if err != nil {
		return nil, err
	}
	g := &pattern.Graph{Out: append([]string(nil), q.Pattern.Out...)}
	for i, e := range q.Pattern.Edges {
		g.Edges = append(g.Edges, pattern.Edge{From: e.From, To: e.To, Label: simple[i]})
	}
	sq := &Query{Pattern: g}
	forcedEps := map[string]bool{}
	nowDefined := simple.DefinedVars()
	for v := range origDefined {
		if !nowDefined[v] {
			forcedEps[v] = true
		}
	}
	return SimpleToECRPQer(sq, forcedEps)
}

// VsfToUnionECRPQer implements Lemma 13: every CXRPQ^vsf is equivalent to a
// union of ECRPQ^er (with an exponential size blow-up in general).
func VsfToUnionECRPQer(q *Query) (*ecrpq.Union, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return nil, fmt.Errorf("cxrpq: query is not vstar-free")
	}
	origDefined := c.DefinedVars()
	u := &ecrpq.Union{}
	err := branchCombos(c, func(combo CXRE) error {
		eq, err := comboToSimpleECRPQ(q, combo, origDefined)
		if err != nil {
			return err
		}
		u.Members = append(u.Members, eq)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return u, nil
}

// BoundedToUnionCRPQ implements Lemma 14: for every k, a CXRPQ interpreted
// under CXRPQ^≤k semantics is equivalent to the union of the CRPQs q[v̄]
// over all variable mappings v̄ ∈ (Σ^≤k)^n — an O((|Σ|+1)^{nk}) blow-up
// (§8 notes this is likely unavoidable). sigma is the alphabet over which
// images range (typically the database alphabet).
func BoundedToUnionCRPQ(q *Query, k int, sigma []rune) (*crpq.Union, error) {
	c := q.CXRE()
	var vars []string
	for v := range c.Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	words := wordsUpTo(sigma, k)
	u := &crpq.Union{}
	assign := map[string]string{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			inst, err := q.InstantiateCRPQ(assign, sigma)
			if err != nil {
				return err
			}
			// skip members that are trivially empty (some edge is ∅)
			for _, e := range inst.Pattern.Edges {
				if _, empty := e.Label.(*xregex.Empty); empty {
					return nil
				}
			}
			u.Members = append(u.Members, inst)
			return nil
		}
		for _, w := range words {
			assign[vars[i]] = w
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(assign, vars[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return u, nil
}

// wordsUpTo returns all words over sigma of length ≤ k, shortest first.
func wordsUpTo(sigma []rune, k int) []string {
	words := []string{""}
	level := []string{""}
	for i := 0; i < k; i++ {
		var next []string
		for _, w := range level {
			for _, r := range sigma {
				next = append(next, w+string(r))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}

// FromECRPQer implements Lemma 12: every ECRPQ^er is equivalent to a
// CXRPQ^vsf,fl. Each equality class gets a fresh string variable: its first
// edge is labelled z{β} where β is a regular expression for the
// intersection of the class's edge languages, and the remaining edges are
// labelled with references of z.
func FromECRPQer(eq *ecrpq.Query, sigma []rune) (*Query, error) {
	if err := eq.Validate(); err != nil {
		return nil, err
	}
	if !eq.IsER() {
		return nil, fmt.Errorf("cxrpq: query has non-equality relations")
	}
	sigma = xregex.MergeAlphabets(sigma, xregex.AlphabetOf(eq.Pattern.Labels()...))
	g := eq.Pattern.Clone()
	for gi, grp := range eq.Groups {
		var exprs []xregex.Node
		for _, ei := range grp.Edges {
			exprs = append(exprs, g.Edges[ei].Label)
		}
		inter, err := xregex.IntersectionRegex(sigma, exprs...)
		if err != nil {
			return nil, err
		}
		z := fmt.Sprintf("z%d", gi)
		first := grp.Edges[0]
		g.Edges[first].Label = &xregex.Def{Var: z, Body: inter}
		for _, ei := range grp.Edges[1:] {
			g.Edges[ei].Label = &xregex.Ref{Var: z}
		}
	}
	q, err := New(g)
	if err != nil {
		return nil, err
	}
	if !q.IsVStarFreeFlat() {
		return nil, fmt.Errorf("cxrpq: Lemma 12 output not in CXRPQ^vsf,fl")
	}
	return q, nil
}
