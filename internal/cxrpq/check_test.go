package cxrpq_test

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// Check must agree with Eval membership on every tuple, across fragments.
func TestCheckAgreesWithEval(t *testing.T) {
	db := workload.Random(31, 6, 14, "abc")
	queries := []struct {
		src     string
		bounded int // -1 = dispatchable fragment
	}{
		{"ans(x, y)\nx m : a(b|c)*\nm y : c+", -1},           // CRPQ
		{"ans(s, t)\ns t : $x{(a|b)b}\nt s : $x", -1},        // simple
		{"ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|c)c?", -1}, // vsf
		{"ans(v1, v2)\nu v1 : $x{a|b}\nu v2 : ($x|c)+", 1},   // bounded
	}
	for _, qc := range queries {
		q := cxrpq.MustParse(qc.src)
		var res *pattern.TupleSet
		var err error
		if qc.bounded < 0 {
			res, err = cxrpq.Eval(q, db)
		} else {
			res, err = cxrpq.EvalBounded(q, db, qc.bounded)
		}
		if err != nil {
			t.Fatalf("%s: %v", qc.src, err)
		}
		// every tuple in q(D) must Check true; a sample of others false
		for _, tup := range res.Sorted() {
			ok, err := check(q, db, qc.bounded, tup)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s: Check(%v) = false but tuple ∈ q(D)", qc.src, tup)
			}
		}
		arity := len(q.Pattern.Out)
		count := 0
		for u := 0; u < db.NumNodes() && count < 10; u++ {
			for v := 0; v < db.NumNodes() && count < 10; v++ {
				tup := pattern.Tuple{u, v}[:arity]
				if res.Contains(tup) {
					continue
				}
				ok, err := check(q, db, qc.bounded, tup)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Errorf("%s: Check(%v) = true but tuple ∉ q(D)", qc.src, tup)
				}
				count++
			}
		}
	}
}

func check(q *cxrpq.Query, db *graph.DB, bounded int, tup pattern.Tuple) (bool, error) {
	if bounded < 0 {
		return cxrpq.Check(q, db, tup)
	}
	return cxrpq.CheckBounded(q, db, bounded, tup)
}

func TestCheckArityAndRepeatedVars(t *testing.T) {
	db := graph.MustParse("u a v\nv a u")
	q := cxrpq.MustParse("ans(x, x)\nx y : a")
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	ok, err := cxrpq.Check(q, db, pattern.Tuple{u, u})
	if err != nil || !ok {
		t.Fatalf("Check(u,u) = %v, %v", ok, err)
	}
	// repeated output variable bound to two different nodes is impossible
	ok, err = cxrpq.Check(q, db, pattern.Tuple{u, v})
	if err != nil || ok {
		t.Fatalf("Check(u,v) must be false for ans(x,x): %v %v", ok, err)
	}
	if _, err := cxrpq.Check(q, db, pattern.Tuple{u}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestECRPQCheckWithGroups(t *testing.T) {
	db := graph.MustParse(`
u a m1
m1 b v
u2 a m2
m2 b v2
u3 b m3
m3 a v3
`)
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}},
	}
	res, err := ecrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.Sorted() {
		ok, err := ecrpq.Check(q, db, tup)
		if err != nil || !ok {
			t.Fatalf("Check(%v) should hold: %v %v", tup, ok, err)
		}
	}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	u3, _ := db.Lookup("u3")
	v3, _ := db.Lookup("v3")
	ok, err := ecrpq.Check(q, db, pattern.Tuple{u, v, u3, v3})
	if err != nil || ok {
		t.Fatalf("ab/ba pair must fail Check: %v %v", ok, err)
	}
}
