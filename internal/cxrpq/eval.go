package cxrpq

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// EvalSimple evaluates a CXRPQ with a simple conjunctive xregex (Lemma 3)
// by translating it to an ECRPQ^er and running the synchronized-product
// engine.
func EvalSimple(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	eq, err := SimpleToECRPQer(q, nil)
	if err != nil {
		return nil, err
	}
	return ecrpq.Eval(eq, db)
}

// EvalVsf evaluates a vstar-free CXRPQ (Theorem 2 / Lemma 7): the
// alternation choices of Lemma 7's nondeterministic guessing are enumerated
// as branch combinations; each combination is normalized by Step 3 into a
// simple conjunctive xregex and evaluated via the ECRPQ^er engine.
func EvalVsf(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	return evalVsf(q, db, false)
}

// EvalVsfBool decides D |= q for vstar-free q, short-circuiting on the
// first matching branch combination.
func EvalVsfBool(q *Query, db *graph.DB) (bool, error) {
	res, err := evalVsf(q, db, true)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// evalVsf enumerates the branch combinations of Lemma 7's nondeterministic
// guessing and evaluates them concurrently: each combination is an
// independent ECRPQ^er evaluation, and all of them share the process-wide
// compiled-NFA/subset caches and the database's label index, so the
// determinization work done by one branch is immediately visible to the
// others. Combinations are streamed through a bounded channel (their count
// is exponential in the worst case), and for Boolean queries both the
// workers and the enumeration stop at the first matching combination.
func evalVsf(q *Query, db *graph.DB, boolOnly bool) (*pattern.TupleSet, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return nil, fmt.Errorf("cxrpq: EvalVsf requires a vstar-free query (got %s)", q.Fragment())
	}
	origDefined := c.DefinedVars()
	evalCombo := func(combo CXRE) (*pattern.TupleSet, error) {
		eq, err := comboToSimpleECRPQ(q, combo, origDefined)
		if err != nil {
			return nil, err
		}
		if boolOnly {
			ok, err := ecrpq.EvalBool(eq, db)
			if err != nil || !ok {
				return nil, err
			}
			res := pattern.NewTupleSet()
			res.Add(pattern.Tuple{})
			return res, nil
		}
		return ecrpq.Eval(eq, db)
	}

	// Boolean semantics, identical on the sequential and parallel paths: a
	// match anywhere wins (the query is satisfied regardless of what another
	// branch combination would have reported); an error surfaces only when
	// no combination matched.
	out := pattern.NewTupleSet()
	workers := engine.Workers(1 << 16)
	if workers == 1 {
		// sequential path: stream combos, stop at the first Boolean match
		var deferred error
		err := branchCombos(c, func(combo CXRE) error {
			res, err := evalCombo(combo)
			if err != nil {
				if boolOnly {
					if deferred == nil {
						deferred = err
					}
					return nil // keep searching for a match
				}
				return err
			}
			if res == nil {
				return nil
			}
			for _, t := range res.Sorted() {
				out.Add(t)
			}
			if boolOnly {
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return nil, err
		}
		if boolOnly && out.Len() == 0 && deferred != nil {
			return nil, deferred
		}
		return out, nil
	}

	db.Index() // prebuild once before fanning out

	type job struct {
		idx   int
		combo CXRE
	}
	jobs := make(chan job, 2*workers)
	var stop atomic.Bool
	var prodErr error
	go func() {
		i := 0
		err := branchCombos(c, func(combo CXRE) error {
			if stop.Load() {
				return errStop
			}
			jobs <- job{i, combo}
			i++
			return nil
		})
		if err != nil && err != errStop {
			prodErr = err // happens-before close(jobs)
		}
		close(jobs)
	}()

	var mu sync.Mutex
	matched := false // some combo matched (Boolean short-circuit)
	errAt := -1
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				if stop.Load() {
					continue // drain
				}
				res, err := evalCombo(j.combo)
				if err != nil {
					mu.Lock()
					if errAt < 0 || j.idx < errAt {
						errAt, firstErr = j.idx, err
					}
					mu.Unlock()
					// In Boolean mode an error must not cancel the search:
					// a later combination may still match, and a match wins.
					if !boolOnly {
						stop.Store(true)
					}
					continue
				}
				if res == nil {
					continue
				}
				mu.Lock()
				for _, t := range res.Sorted() {
					out.Add(t)
				}
				if boolOnly {
					matched = true
				}
				mu.Unlock()
				if boolOnly {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// A Boolean match wins over errors from other combinations: the query
	// is satisfied regardless of what another branch would have reported.
	if boolOnly && matched {
		return out, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if prodErr != nil {
		return nil, prodErr
	}
	return out, nil
}

// EvalBounded evaluates q under the CXRPQ^≤k semantics (Theorem 6):
// q^≤k(D), considering only matches whose variable images have length at
// most k. The nondeterministic guess of v̄ ∈ (Σ^≤k)^n is realized as an
// enumeration in ≺-topological order, pruned by two sound filters: every
// image must label a path of D, and every non-empty image of a defined
// variable must match one of its definition bodies with currently assigned
// variables substituted and the rest relaxed to Σ*. Each complete mapping is
// instantiated to a CRPQ via Lemma 11 and evaluated.
func EvalBounded(q *Query, db *graph.DB, k int) (*pattern.TupleSet, error) {
	return evalBounded(q, db, k, false)
}

// EvalBoundedBool decides D |=^≤k q, short-circuiting on the first mapping.
func EvalBoundedBool(q *Query, db *graph.DB, k int) (bool, error) {
	res, err := evalBounded(q, db, k, true)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// EvalLog evaluates q under CXRPQ^log semantics (Corollary 1):
// image size bounded by log2(|D|).
func EvalLog(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	return EvalBounded(q, db, logBound(db))
}

// EvalLogBool decides D |=^log q.
func EvalLogBool(q *Query, db *graph.DB) (bool, error) {
	return EvalBoundedBool(q, db, logBound(db))
}

func logBound(db *graph.DB) int {
	size := db.Size()
	if size < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(size))))
}

// evalBounded runs the prefix-incremental bounded engine (bounded.go):
// atoms are instantiated and pruned as soon as the ≺-topological prefix
// determines their variables, relations are shared across mappings through
// the session cache, and disjoint subtrees are evaluated in parallel.
func evalBounded(q *Query, db *graph.DB, k int, boolOnly bool) (*pattern.TupleSet, error) {
	e, err := newBoundedEngine(q, db, k, boolOnly, nil)
	if err != nil {
		return nil, err
	}
	res, err := e.run()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func catAll(c CXRE) xregex.Node {
	return &xregex.Cat{Kids: append([]xregex.Node(nil), c...)}
}

// mergeDBAlphabet returns the combined alphabet of a database and a tuple.
func mergeDBAlphabet(db *graph.DB, c CXRE) []rune {
	return xregex.MergeAlphabets(db.Alphabet(), c.Alphabet())
}

// relaxUnassigned substitutes assigned variables by their literal images and
// relaxes unassigned ones (and nested definitions) to Σ*.
func relaxUnassigned(n xregex.Node, assign map[string]string) xregex.Node {
	switch t := n.(type) {
	case *xregex.Ref:
		if w, ok := assign[t.Var]; ok {
			return xregex.Word(w)
		}
		return xregex.AnyWord()
	case *xregex.Def:
		if w, ok := assign[t.Var]; ok {
			return xregex.Word(w)
		}
		return xregex.AnyWord()
	case *xregex.Cat:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxUnassigned(k, assign)
		}
		return &xregex.Cat{Kids: kids}
	case *xregex.Alt:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxUnassigned(k, assign)
		}
		return &xregex.Alt{Kids: kids}
	case *xregex.Plus:
		return &xregex.Plus{Kid: relaxUnassigned(t.Kid, assign)}
	case *xregex.Star:
		return &xregex.Star{Kid: relaxUnassigned(t.Kid, assign)}
	case *xregex.Opt:
		return &xregex.Opt{Kid: relaxUnassigned(t.Kid, assign)}
	default:
		return n
	}
}

// EvalBoundedNaive is the literal Theorem 6 algorithm: it blindly guesses
// every v̄ ∈ (Σ^≤k)^n, instantiates (Lemma 11) and evaluates the CRPQ. It
// exists as the ablation baseline for EvalBounded's candidate pruning (the
// two must agree; see the ablation benchmark) and as the most direct
// rendering of the paper's proof.
func EvalBoundedNaive(q *Query, db *graph.DB, k int) (*pattern.TupleSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := q.CXRE()
	sigma := mergeDBAlphabet(db, c)
	var vars []string
	for v := range c.Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	words := allWordsUpTo(sigma, k)
	out := pattern.NewTupleSet()
	assign := map[string]string{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			inst, err := q.InstantiateCRPQ(assign, sigma)
			if err != nil {
				return err
			}
			res, err := inst.Eval(db)
			if err != nil {
				return err
			}
			for _, t := range res.Sorted() {
				out.Add(t)
			}
			return nil
		}
		for _, w := range words {
			assign[vars[i]] = w
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(assign, vars[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

func allWordsUpTo(sigma []rune, k int) []string {
	words := []string{""}
	level := []string{""}
	for i := 0; i < k; i++ {
		var next []string
		for _, w := range level {
			for _, r := range sigma {
				next = append(next, w+string(r))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}

// EvalAny evaluates an unrestricted CXRPQ soundly by capping variable-image
// length at maxImage. The paper leaves the decidability/upper bound of
// unrestricted evaluation open (§8) and shows it PSpace-hard even in data
// complexity (Theorem 1); results are complete for all matches whose images
// fit under the cap, and capped reports whether longer images are
// conceivable (i.e. D has paths longer than the cap).
func EvalAny(q *Query, db *graph.DB, maxImage int) (res *pattern.TupleSet, capped bool, err error) {
	res, err = EvalBounded(q, db, maxImage)
	if err != nil {
		return nil, false, err
	}
	// A word of length maxImage+1 labels a path iff D has a path that long;
	// one frontier sweep replaces the two full PathLabels enumerations.
	capped = db.HasPathOfLen(maxImage + 1)
	return res, capped, nil
}

// Eval dispatches to the strongest complete algorithm for q's syntactic
// fragment: CRPQ evaluation for variable-free queries, the Lemma 3 engine
// for simple queries, and the Theorem 2 algorithm for vstar-free queries.
// For unrestricted CXRPQs (image sizes unbounded) it returns an error
// directing callers to EvalBounded/EvalLog/EvalAny, whose semantics are the
// paper's ≤k / log fragments.
func Eval(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	c := q.CXRE()
	switch {
	case c.IsClassical():
		return ecrpq.Eval(&ecrpq.Query{Pattern: q.Pattern}, db)
	case c.IsSimple():
		return EvalSimple(q, db)
	case c.IsVStarFree():
		return EvalVsf(q, db)
	default:
		return nil, fmt.Errorf("cxrpq: %s is not vstar-free; use EvalBounded (CXRPQ^≤k), EvalLog (CXRPQ^log) or EvalAny", q.Fragment())
	}
}

// EvalBool is the Boolean counterpart of Eval.
func EvalBool(q *Query, db *graph.DB) (bool, error) {
	c := q.CXRE()
	switch {
	case c.IsClassical():
		return ecrpq.EvalBool(&ecrpq.Query{Pattern: q.Pattern}, db)
	case c.IsSimple():
		eq, err := SimpleToECRPQer(q, nil)
		if err != nil {
			return false, err
		}
		return ecrpq.EvalBool(eq, db)
	case c.IsVStarFree():
		return EvalVsfBool(q, db)
	default:
		return false, fmt.Errorf("cxrpq: %s is not vstar-free; use EvalBoundedBool or EvalLogBool", q.Fragment())
	}
}

// SortedVarsOf is a helper returning the query's string variables sorted.
func SortedVarsOf(q *Query) []string {
	var vars []string
	for v := range q.CXRE().Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
