package cxrpq

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// The one-shot evaluation API. Every function here is a thin wrapper that
// prepares the query (Prepare), binds it to the database (Plan.Bind) and
// runs the corresponding Session method, so the single-call and
// prepared-session paths execute the same engines; callers evaluating one
// query many times should hold the Plan/Session themselves and reuse the
// caches the wrappers throw away.

// EvalSimple evaluates a CXRPQ with a simple conjunctive xregex (Lemma 3)
// by translating it to an ECRPQ^er and running the synchronized-product
// engine.
func EvalSimple(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	eq, err := SimpleToECRPQer(q, nil)
	if err != nil {
		return nil, err
	}
	return ecrpq.Eval(eq, db)
}

// EvalVsf evaluates a vstar-free CXRPQ (Theorem 2 / Lemma 7): the
// alternation choices of Lemma 7's nondeterministic guessing are enumerated
// as branch combinations; each combination is normalized by Step 3 into a
// simple conjunctive xregex and evaluated via the ECRPQ^er engine.
func EvalVsf(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	p, err := Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Bind(db).EvalVsf()
}

// EvalVsfBool decides D |= q for vstar-free q, short-circuiting on the
// first matching branch combination.
func EvalVsfBool(q *Query, db *graph.DB) (bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return false, err
	}
	return p.Bind(db).EvalVsfBool()
}

// vsfSink accumulates per-branch-combination outcomes under the Boolean
// contract shared by every vstar-free evaluation path (the materialized
// combos of a Plan and the streaming fallback): a match anywhere wins (the
// query is satisfied regardless of what another combination would have
// reported), errors are ranked by combination index, and an error surfaces
// only when no combination matched (Boolean mode) or stops the fan-out
// immediately (full evaluation). Safe for concurrent record calls.
type vsfSink struct {
	boolOnly bool
	stop     *atomic.Bool
	fan      *engine.Budget // optional fan budget: stopped alongside the flag

	mu       sync.Mutex
	out      *pattern.TupleSet
	matched  bool
	errAt    int
	firstErr error
}

func newVsfSink(boolOnly bool, stop *atomic.Bool, fan *engine.Budget) *vsfSink {
	return &vsfSink{boolOnly: boolOnly, stop: stop, fan: fan, out: pattern.NewTupleSet(), errAt: -1}
}

// raise stops the fan: the flag keeps unstarted combinations from launching,
// the budget unwinds the in-flight siblings' BFS sweeps at level granularity.
func (s *vsfSink) raise() {
	s.stop.Store(true)
	s.fan.Stop()
}

// record merges the outcome of combination idx. A partial result alongside a
// truncation error is merged too (budget-cut evaluations return the sound
// subset they found), so the caller can surface partial rows with the error.
func (s *vsfSink) record(idx int, res *pattern.TupleSet, err error) {
	if err != nil {
		s.mu.Lock()
		// Rank: a real failure outranks a budget truncation (a sibling that
		// gets cut by the fan stop must not mask the error that raised it);
		// within a class, the lowest combination index wins.
		oldC, newC := errors.Is(s.firstErr, engine.ErrCanceled), errors.Is(err, engine.ErrCanceled)
		switch {
		case s.errAt < 0, oldC && !newC, oldC == newC && idx < s.errAt:
			s.errAt, s.firstErr = idx, err
		}
		s.mu.Unlock()
		// In Boolean mode an error must not cancel the search: a later
		// combination may still match, and a match wins.
		if !s.boolOnly {
			s.raise()
		}
	}
	if res == nil || res.Len() == 0 {
		return
	}
	tuples := res.Sorted() // materialize outside the critical section
	s.mu.Lock()
	for _, t := range tuples {
		s.out.Add(t)
	}
	if s.boolOnly && err == nil {
		s.matched = true
	}
	s.mu.Unlock()
	if s.boolOnly && err == nil {
		s.raise()
	}
}

// finish resolves the accumulated outcomes; call after every worker is done.
// On error the partial tuple set is returned alongside it (callers that
// cannot use partial results check err first, as before).
func (s *vsfSink) finish() (*pattern.TupleSet, error) {
	if s.boolOnly && s.matched {
		return s.out, nil
	}
	if s.firstErr != nil {
		return s.out, s.firstErr
	}
	return s.out, nil
}

// evalVsfStream is the streaming fallback of the vstar-free path, used when
// a query has more branch combinations than a Plan materializes
// (vsfComboCap): combinations are enumerated and evaluated concurrently,
// each an independent ECRPQ^er evaluation sharing the process-wide
// compiled-NFA/subset caches and the database's label index. Combinations
// are streamed through a bounded channel (their count is exponential in the
// worst case), and for Boolean queries both the workers and the enumeration
// stop at the first matching combination.
func evalVsfStream(q *Query, db *graph.DB, boolOnly bool, bud *engine.Budget) (*pattern.TupleSet, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return nil, fmt.Errorf("cxrpq: EvalVsf requires a vstar-free query (got %s)", q.Fragment())
	}
	fan := bud.Fork() // first Boolean witness stops in-flight siblings
	origDefined := c.DefinedVars()
	evalCombo := func(combo CXRE) (*pattern.TupleSet, error) {
		eq, err := comboToSimpleECRPQ(q, combo, origDefined)
		if err != nil {
			return nil, err
		}
		if boolOnly {
			ok, err := ecrpq.EvalBoolBudget(eq, db, fan)
			if err != nil || !ok {
				return nil, err
			}
			res := pattern.NewTupleSet()
			res.Add(pattern.Tuple{})
			return res, nil
		}
		return ecrpq.EvalBudget(eq, db, fan)
	}

	var stop atomic.Bool
	sink := newVsfSink(boolOnly, &stop, fan)
	workers := engine.Workers(1 << 16)
	if workers == 1 {
		// sequential path: stream combos, stop as soon as the sink raises
		// the flag (Boolean match, or an error in full-evaluation mode)
		i := 0
		err := branchCombos(c, func(combo CXRE) error {
			res, err := evalCombo(combo)
			sink.record(i, res, err)
			i++
			if stop.Load() || fan.Canceled() {
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return nil, err
		}
		return sink.finish()
	}

	db.Index() // prebuild once before fanning out

	type job struct {
		idx   int
		combo CXRE
	}
	jobs := make(chan job, 2*workers)
	var prodErr error
	go func() {
		i := 0
		err := branchCombos(c, func(combo CXRE) error {
			if stop.Load() || fan.Canceled() {
				return errStop
			}
			jobs <- job{i, combo}
			i++
			return nil
		})
		if err != nil && err != errStop {
			prodErr = err // happens-before close(jobs)
		}
		close(jobs)
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				if stop.Load() {
					continue // drain
				}
				res, err := evalCombo(j.combo)
				sink.record(j.idx, res, err)
			}
		}()
	}
	wg.Wait()
	res, err := sink.finish()
	if err != nil {
		return nil, err
	}
	if prodErr != nil {
		return nil, prodErr
	}
	return res, nil
}

// EvalBounded evaluates q under the CXRPQ^≤k semantics (Theorem 6):
// q^≤k(D), considering only matches whose variable images have length at
// most k. The nondeterministic guess of v̄ ∈ (Σ^≤k)^n is realized as an
// enumeration in ≺-topological order, pruned by two sound filters: every
// image must label a path of D, and every non-empty image of a defined
// variable must match one of its definition bodies with currently assigned
// variables substituted and the rest relaxed to Σ*. Each complete mapping is
// instantiated to a CRPQ via Lemma 11 and evaluated.
func EvalBounded(q *Query, db *graph.DB, k int) (*pattern.TupleSet, error) {
	p, err := Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Bind(db).EvalBounded(k)
}

// EvalBoundedBool decides D |=^≤k q, short-circuiting on the first mapping.
func EvalBoundedBool(q *Query, db *graph.DB, k int) (bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return false, err
	}
	return p.Bind(db).EvalBoundedBool(k)
}

// EvalLog evaluates q under CXRPQ^log semantics (Corollary 1):
// image size bounded by log2(|D|).
func EvalLog(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	return EvalBounded(q, db, logBound(db))
}

// EvalLogBool decides D |=^log q.
func EvalLogBool(q *Query, db *graph.DB) (bool, error) {
	return EvalBoundedBool(q, db, logBound(db))
}

func logBound(db *graph.DB) int {
	size := db.Size()
	if size < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(size))))
}

func catAll(c CXRE) xregex.Node {
	return &xregex.Cat{Kids: append([]xregex.Node(nil), c...)}
}

// mergeDBAlphabet returns the combined alphabet of a database and a tuple.
func mergeDBAlphabet(db *graph.DB, c CXRE) []rune {
	return xregex.MergeAlphabets(db.Alphabet(), c.Alphabet())
}

// relaxUnassigned substitutes assigned variables by their literal images and
// relaxes unassigned ones (and nested definitions) to Σ*.
func relaxUnassigned(n xregex.Node, assign map[string]string) xregex.Node {
	switch t := n.(type) {
	case *xregex.Ref:
		if w, ok := assign[t.Var]; ok {
			return xregex.Word(w)
		}
		return xregex.AnyWord()
	case *xregex.Def:
		if w, ok := assign[t.Var]; ok {
			return xregex.Word(w)
		}
		return xregex.AnyWord()
	case *xregex.Cat:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxUnassigned(k, assign)
		}
		return &xregex.Cat{Kids: kids}
	case *xregex.Alt:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = relaxUnassigned(k, assign)
		}
		return &xregex.Alt{Kids: kids}
	case *xregex.Plus:
		return &xregex.Plus{Kid: relaxUnassigned(t.Kid, assign)}
	case *xregex.Star:
		return &xregex.Star{Kid: relaxUnassigned(t.Kid, assign)}
	case *xregex.Opt:
		return &xregex.Opt{Kid: relaxUnassigned(t.Kid, assign)}
	default:
		return n
	}
}

// EvalBoundedNaive is the literal Theorem 6 algorithm: it blindly guesses
// every v̄ ∈ (Σ^≤k)^n, instantiates (Lemma 11) and evaluates the CRPQ. It
// exists as the ablation baseline for EvalBounded's candidate pruning (the
// two must agree; see the ablation benchmark and the differential fuzz
// harness) and as the most direct rendering of the paper's proof.
func EvalBoundedNaive(q *Query, db *graph.DB, k int) (*pattern.TupleSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := q.CXRE()
	sigma := mergeDBAlphabet(db, c)
	var vars []string
	for v := range c.Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	words := allWordsUpTo(sigma, k)
	out := pattern.NewTupleSet()
	assign := map[string]string{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			inst, err := q.InstantiateCRPQ(assign, sigma)
			if err != nil {
				return err
			}
			res, err := inst.Eval(db)
			if err != nil {
				return err
			}
			for _, t := range res.Sorted() {
				out.Add(t)
			}
			return nil
		}
		for _, w := range words {
			assign[vars[i]] = w
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(assign, vars[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

func allWordsUpTo(sigma []rune, k int) []string {
	words := []string{""}
	level := []string{""}
	for i := 0; i < k; i++ {
		var next []string
		for _, w := range level {
			for _, r := range sigma {
				next = append(next, w+string(r))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}

// EvalAny evaluates an unrestricted CXRPQ soundly by capping variable-image
// length at maxImage. The paper leaves the decidability/upper bound of
// unrestricted evaluation open (§8) and shows it PSpace-hard even in data
// complexity (Theorem 1); results are complete for all matches whose images
// fit under the cap, and capped reports whether longer images are
// conceivable (i.e. D has paths longer than the cap).
func EvalAny(q *Query, db *graph.DB, maxImage int) (res *pattern.TupleSet, capped bool, err error) {
	res, err = EvalBounded(q, db, maxImage)
	if err != nil {
		return nil, false, err
	}
	// A word of length maxImage+1 labels a path iff D has a path that long;
	// one frontier sweep replaces the two full PathLabels enumerations.
	capped = db.HasPathOfLen(maxImage + 1)
	return res, capped, nil
}

// Eval dispatches to the strongest complete algorithm for q's syntactic
// fragment: CRPQ evaluation for variable-free queries, the Lemma 3 engine
// for simple queries, and the Theorem 2 algorithm for vstar-free queries.
// For unrestricted CXRPQs (image sizes unbounded) it returns an error
// directing callers to EvalBounded/EvalLog/EvalAny, whose semantics are the
// paper's ≤k / log fragments.
func Eval(q *Query, db *graph.DB) (*pattern.TupleSet, error) {
	p, err := Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Bind(db).Eval()
}

// EvalBool is the Boolean counterpart of Eval.
func EvalBool(q *Query, db *graph.DB) (bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return false, err
	}
	return p.Bind(db).EvalBool()
}

// SortedVarsOf is a helper returning the query's string variables sorted.
func SortedVarsOf(q *Query) []string {
	var vars []string
	for v := range q.CXRE().Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
