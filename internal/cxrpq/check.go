package cxrpq

import (
	"fmt"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Check decides t̄ ∈ q(D) (the problem CXRPQ-Check of §2.3) for CRPQ,
// simple and vstar-free queries, using the same fragment dispatch as Eval.
// The paper notes (§8) that all Bool-Eval algorithms extend to Check; here
// the output variables are pre-bound before the join / per-branch search.
// This is the one-shot wrapper over Session.Check.
func Check(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return false, err
	}
	return p.Bind(db).Check(t)
}

// CheckVsf decides t̄ ∈ q(D) for vstar-free q, streaming the branch
// combinations and short-circuiting on the first match. It is the fallback
// of Session.Check for plans whose combination count exceeds the
// materialization cap.
func CheckVsf(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return false, fmt.Errorf("cxrpq: CheckVsf requires a vstar-free query")
	}
	origDefined := c.DefinedVars()
	found := false
	err := branchCombos(c, func(combo CXRE) error {
		eq, err := comboToSimpleECRPQ(q, combo, origDefined)
		if err != nil {
			return err
		}
		ok, err := ecrpq.Check(eq, db, t)
		if err != nil {
			return err
		}
		if ok {
			found = true
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// CheckBounded decides t̄ ∈ q^≤k(D) (Theorem 6 semantics); the one-shot
// wrapper over Session.CheckBounded.
func CheckBounded(q *Query, db *graph.DB, k int, t pattern.Tuple) (bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return false, err
	}
	return p.Bind(db).CheckBounded(k, t)
}
