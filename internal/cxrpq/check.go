package cxrpq

import (
	"fmt"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Check decides t̄ ∈ q(D) (the problem CXRPQ-Check of §2.3) for CRPQ,
// simple and vstar-free queries, using the same fragment dispatch as Eval.
// The paper notes (§8) that all Bool-Eval algorithms extend to Check; here
// the output variables are pre-bound before the join / per-branch search.
func Check(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	c := q.CXRE()
	switch {
	case c.IsClassical():
		return ecrpq.Check(&ecrpq.Query{Pattern: q.Pattern}, db, t)
	case c.IsSimple():
		eq, err := SimpleToECRPQer(q, nil)
		if err != nil {
			return false, err
		}
		return ecrpq.Check(eq, db, t)
	case c.IsVStarFree():
		return CheckVsf(q, db, t)
	default:
		return false, fmt.Errorf("cxrpq: %s is not vstar-free; use CheckBounded", q.Fragment())
	}
}

// CheckVsf decides t̄ ∈ q(D) for vstar-free q, short-circuiting across
// branch combinations.
func CheckVsf(q *Query, db *graph.DB, t pattern.Tuple) (bool, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return false, fmt.Errorf("cxrpq: CheckVsf requires a vstar-free query")
	}
	origDefined := c.DefinedVars()
	found := false
	err := branchCombos(c, func(combo CXRE) error {
		eq, err := comboToSimpleECRPQ(q, combo, origDefined)
		if err != nil {
			return err
		}
		ok, err := ecrpq.Check(eq, db, t)
		if err != nil {
			return err
		}
		if ok {
			found = true
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// CheckBounded decides t̄ ∈ q^≤k(D) (Theorem 6 semantics).
func CheckBounded(q *Query, db *graph.DB, k int, t pattern.Tuple) (bool, error) {
	// Evaluate with pre-bound outputs by rewriting the query: add a fresh
	// Boolean query whose output variables are constrained via instantiated
	// CRPQ checks per variable mapping.
	res, err := evalBoundedCheck(q, db, k, t)
	if err != nil {
		return false, err
	}
	return res, nil
}

func evalBoundedCheck(q *Query, db *graph.DB, k int, t pattern.Tuple) (bool, error) {
	if len(t) != len(q.Pattern.Out) {
		return false, fmt.Errorf("cxrpq: tuple arity %d, query arity %d", len(t), len(q.Pattern.Out))
	}
	// The prefix-incremental engine with the output variables pre-bound:
	// each leaf join only searches for one extension of the tuple.
	pre := map[string]int{}
	for i, z := range q.Pattern.Out {
		v := t[i]
		if v < 0 || v >= db.NumNodes() {
			return false, fmt.Errorf("cxrpq: node id %d out of range", v)
		}
		if prev, ok := pre[z]; ok && prev != v {
			return false, nil // same output variable bound to two nodes
		}
		pre[z] = v
	}
	e, err := newBoundedEngine(q, db, k, true, pre)
	if err != nil {
		return false, err
	}
	res, err := e.run()
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}
