package cxrpq

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
)

// This file is the evaluate-many half of the prepared-query subsystem: a
// Session is a Plan bound to one database, owning every per-database memo
// the evaluation engines consult — the atom-relation cache, the feasibility
// memo, the path-label candidate lists and a bounded result cache. All
// Session methods are safe for concurrent use; concurrent calls share the
// caches, so relation work done by one request is immediately visible to
// the others.
//
// Invalidation contract: the database must not be mutated while a call is
// in flight. After a (quiescent) mutation, the next call observes the
// bumped graph.DB revision and re-maintains the caches — fine-grained when
// the DB's delta log covers the window with an insert-only, known-label
// delta (atom relations are retained or frontier-extended per entry, the
// feasibility memo survives, only the result/label/plan caches drop; see
// maintainLocked for the full matrix), wholesale otherwise. Session.
// ApplyDelta applies a batched mutation and maintains eagerly; Invalidate
// always forces the wholesale drop. Results returned by Eval/EvalBounded
// may be served from the result cache and shared between callers — treat
// the returned TupleSet as immutable.

const (
	// defaultFeasCap bounds the session feasibility memo.
	defaultFeasCap = 1 << 16
	// defaultResultCap bounds the session result cache.
	defaultResultCap = 256
)

// SessionOptions tunes the cache capacities of a Session. Zero values
// select defaults; a negative ResultCacheCap disables result caching
// (structural caches stay on — they are what make a session worth
// holding).
type SessionOptions struct {
	RelCacheCap    int // atom-relation cache entries (default ecrpq.DefaultRelCacheCap)
	FeasCacheCap   int // feasibility memo entries (default 65536)
	ResultCacheCap int // whole-result entries (default 256; < 0 disables)

	// SemijoinCostFloor overrides the estimated-join-cost floor above which
	// this session's leaf joins run the semijoin reduction / Yannakakis
	// program (see planner.SemijoinFloor): 0 keeps the process default, a
	// positive value is the floor, a negative value disables the passes for
	// this session outright.
	SemijoinCostFloor int
}

// epochMap is the session-local instance of the drop-all-on-overflow
// bounded cache pattern (ecrpq.RelCache and xregex's match cache follow the
// same recipe where they additionally need compute-outside-the-lock
// insertion or exported stats): mutex + cap + whole-epoch drop + hit/miss
// counters. It backs both the feasibility memo and the result cache.
type epochMap[V any] struct {
	mu     sync.Mutex
	cap    int
	m      map[string]V
	hits   uint64
	misses uint64
}

func newEpochMap[V any](cap int) *epochMap[V] {
	return &epochMap[V]{cap: cap, m: map[string]V{}}
}

func (c *epochMap[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *epochMap[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		c.m = map[string]V{}
	}
	c.m[key] = v
}

func (c *epochMap[V]) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// sessionCaches is one epoch of per-database memos. A fresh set is swapped
// in whenever the database revision moves, so no entry can outlive the data
// it was derived from.
type sessionCaches struct {
	rels *ecrpq.RelCache
	feas *epochMap[bool]

	labMu  sync.Mutex
	labels map[int][]string // k -> words of length ≤ k labelling paths of D

	// The physical plan of the query's conjunctive skeleton (see
	// planreport.go): cached per epoch like everything else, so it is
	// recomputed exactly when the DB revision moves.
	planMu    sync.Mutex
	planDone  bool
	planAtoms []planner.Atom
	planSpec  *planner.PlanSpec
	planMin   []int             // atoms Minimize would drop (report only)
	planTree  *planner.JoinTree // join tree of the kept atoms; nil if cyclic
	planFC    bool              // free-connex w.r.t. the output variables
	planErr   error

	// semijoinFloor is the session's SemijoinCostFloor option, threaded
	// into every leaf-join PlanSpec (0 = process default).
	semijoinFloor float64
}

func newSessionCaches(relCap, feasCap, floor int) *sessionCaches {
	if feasCap <= 0 {
		feasCap = defaultFeasCap
	}
	return &sessionCaches{
		rels:          ecrpq.NewRelCache(relCap),
		feas:          newEpochMap[bool](feasCap),
		labels:        map[int][]string{},
		semijoinFloor: float64(floor),
	}
}

// dropDerived clears the caches a fine-grained delta pass cannot keep: the
// path-label candidate lists (insertions may create new words) and the
// physical plan (graph statistics moved). The relation cache and the
// feasibility memo — the expensive state — are maintained by the caller.
func (sc *sessionCaches) dropDerived() {
	sc.labMu.Lock()
	sc.labels = map[int][]string{}
	sc.labMu.Unlock()
	sc.planMu.Lock()
	sc.planDone = false
	sc.planAtoms = nil
	sc.planSpec = nil
	sc.planMin = nil
	sc.planTree = nil
	sc.planFC = false
	sc.planErr = nil
	sc.planMu.Unlock()
}

func (sc *sessionCaches) feasGet(key string) (res, ok bool) { return sc.feas.get(key) }

func (sc *sessionCaches) feasPut(key string, res bool) { sc.feas.put(key, res) }

// labelsFor returns the candidate image list for bound k, computed once per
// (session epoch, k).
func (sc *sessionCaches) labelsFor(db *graph.DB, k int) []string {
	sc.labMu.Lock()
	defer sc.labMu.Unlock()
	if ws, ok := sc.labels[k]; ok {
		return ws
	}
	ws := db.PathLabels(k, 0)
	sc.labels[k] = ws
	return ws
}

// resultCache memoizes whole call results keyed by (operation, arguments);
// it lives inside one cache epoch, so revision bumps clear it with
// everything else. A nil *resultCache is valid and disabled.
type resultCache struct {
	epochMap[any]
}

func newResultCache(cap int) *resultCache {
	if cap < 0 {
		return nil
	}
	if cap == 0 {
		cap = defaultResultCap
	}
	rc := &resultCache{}
	rc.cap = cap
	rc.m = map[string]any{}
	return rc
}

func (c *resultCache) get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	return c.epochMap.get(key)
}

func (c *resultCache) put(key string, v any) {
	if c == nil {
		return
	}
	c.epochMap.put(key, v)
}

// Session is a Plan bound to one database: the compile-once/evaluate-many
// handle of the prepared-query subsystem. Create one with Plan.Bind and
// share it freely between goroutines; see the file comment for the
// invalidation contract.
type Session struct {
	plan *Plan
	db   *graph.DB
	opts SessionOptions

	mu      sync.Mutex // guards the epoch fields below
	bound   bool
	rev     uint64
	sigma   []rune
	caches  *sessionCaches
	results *resultCache
	maint   SessionMaint
}

// SessionMaint counts how the session reacted to database revision moves:
// fine-grained delta maintenance, wholesale retention of a net-empty delta,
// or a full cache flush (first bind, removals, new labels, an uncovered
// revision window, or an explicit Invalidate).
type SessionMaint struct {
	DeltaApplies uint64 // per-entry maintenance passes (insert-only deltas)
	Retains      uint64 // net-empty deltas: every cache kept, results included
	FullRebuilds uint64 // whole-epoch flushes
}

// Bind binds the plan to a database with default cache options.
func (p *Plan) Bind(db *graph.DB) *Session { return p.BindOpts(db, SessionOptions{}) }

// BindOpts binds the plan to a database with explicit cache options.
func (p *Plan) BindOpts(db *graph.DB, opts SessionOptions) *Session {
	return &Session{plan: p, db: db, opts: opts}
}

// current returns this call's cache epoch, transparently maintaining it
// when the database revision moved since the last call (see refreshLocked).
// Calls already in flight keep the epoch they started with.
func (s *Session) current() (*sessionCaches, *resultCache, []rune) {
	rev := s.db.Revision()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bound || rev != s.rev {
		s.refreshLocked(rev)
	}
	return s.caches, s.results, s.sigma
}

// refreshLocked brings the cache epoch up to revision rev: fine-grained
// delta maintenance when the DB's mutation log covers the window with a
// maintainable delta, a fresh epoch otherwise.
func (s *Session) refreshLocked(rev uint64) {
	if s.bound && s.caches != nil && rev != s.rev {
		if info := s.db.DeltaSince(s.rev); info != nil && s.maintainLocked(info) {
			s.rev = rev
			return
		}
	}
	s.bound = true
	s.rev = rev
	s.sigma = mergeDBAlphabet(s.db, s.plan.c)
	s.caches = newSessionCaches(s.opts.RelCacheCap, s.opts.FeasCacheCap, s.opts.SemijoinCostFloor)
	s.results = newResultCache(s.opts.ResultCacheCap)
	s.maint.FullRebuilds++
}

// maintainLocked applies the per-cache invalidation matrix for one delta
// window and reports whether fine-grained maintenance succeeded (false
// demands a full flush):
//
//	delta kind              rels        feas   labels  plan   results
//	net-empty (cancelled)   keep        keep   keep    keep   keep
//	insert-only, no new     retain/     keep   drop    drop   drop
//	labels                  extend
//	removals / new labels   — full flush —
//
// The feasibility memo depends only on the session alphabet (definition
// bodies × candidate words), which is unchanged exactly when the delta
// introduces no label; the relation cache delegates to ecrpq.RelCache.
// ApplyDelta.
func (s *Session) maintainLocked(info *graph.DeltaInfo) bool {
	if info.Empty() {
		s.maint.Retains++
		return true
	}
	if !info.InsertOnly() || len(info.NewLabels) > 0 {
		return false
	}
	if _, _, err := s.caches.rels.ApplyDelta(s.db, info); err != nil {
		return false
	}
	s.caches.dropDerived()
	s.results = newResultCache(s.opts.ResultCacheCap)
	s.maint.DeltaApplies++
	return true
}

// ApplyDelta applies a batched mutation to the bound database and eagerly
// re-maintains the session caches, so the delta cost is paid at write time
// instead of on the next query. Like every mutation it must be quiescent:
// no session call (on any session bound to the same DB) may be in flight.
// Other sessions bound to the database maintain themselves lazily on their
// next call through the same delta log.
func (s *Session) ApplyDelta(delta graph.Delta) (*graph.DeltaInfo, error) {
	info, err := s.db.ApplyDelta(delta)
	if err != nil {
		return info, err
	}
	s.Refresh()
	return info, nil
}

// Refresh brings the session caches up to the database's current revision
// immediately (delta maintenance or full flush, whichever applies) instead
// of waiting for the next call. It is a no-op when nothing changed.
func (s *Session) Refresh() {
	rev := s.db.Revision()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bound || rev != s.rev {
		s.refreshLocked(rev)
	}
}

// Fork returns a new Session bound to db — a successor of the current
// binding, typically the next graph.Snapshot view of the same lineage —
// with the cache epoch carried forward by the same invalidation matrix as
// maintainLocked, but applied copy-on-write: the receiver is never
// modified, so in-flight and parked readers of the old session (open
// stream cursors included) keep their pinned epoch on their pinned
// revision. This is the MVCC publish step of the serving layer: the writer
// forks the pooled sessions onto each new snapshot at write time, so no
// reader ever waits on maintenance.
//
// The fate of the caches per delta window (receiver revision → db's):
//
//	same revision / net-empty    epoch shared outright (caches are
//	                             concurrency-safe; same data)
//	insert-only, no new labels   relation cache forked + delta-maintained,
//	                             feasibility memo shared (alphabet
//	                             unchanged), labels/plan/results fresh
//	anything else                fresh epoch (full rebuild)
func (s *Session) Fork(db *graph.DB) *Session {
	ns := &Session{plan: s.plan, db: db, opts: s.opts}
	rev := db.Revision()
	s.mu.Lock()
	defer s.mu.Unlock()
	ns.maint = s.maint
	if !s.bound || s.caches == nil {
		return ns // never-used receiver: the fork binds lazily on first use
	}
	if rev == s.rev {
		ns.bound, ns.rev, ns.sigma = true, rev, s.sigma
		ns.caches, ns.results = s.caches, s.results
		return ns
	}
	if info := db.DeltaSince(s.rev); info != nil {
		if info.Empty() {
			ns.bound, ns.rev, ns.sigma = true, rev, s.sigma
			ns.caches, ns.results = s.caches, s.results
			ns.maint.Retains++
			return ns
		}
		if info.InsertOnly() && len(info.NewLabels) == 0 {
			rels := s.caches.rels.Fork()
			if _, _, err := rels.ApplyDelta(db, info); err == nil {
				ns.bound, ns.rev, ns.sigma = true, rev, s.sigma
				ns.caches = &sessionCaches{rels: rels, feas: s.caches.feas,
					labels:        map[int][]string{},
					semijoinFloor: s.caches.semijoinFloor}
				ns.results = newResultCache(s.opts.ResultCacheCap)
				ns.maint.DeltaApplies++
				return ns
			}
		}
	}
	ns.refreshLocked(rev) // fresh epoch; safe: ns is not yet shared
	return ns
}

// Invalidate drops every cache of the session unconditionally — no delta
// maintenance, the next call starts a fresh epoch. Calling it is never
// required for correctness after a quiescent DB mutation (the revision
// check does it), but it releases memory immediately and covers callers
// that mutated derived state out of band.
func (s *Session) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound = false
	s.caches = nil
	s.results = nil
}

// DB returns the bound database.
func (s *Session) DB() *graph.DB { return s.db }

// Plan returns the prepared plan the session evaluates.
func (s *Session) Plan() *Plan { return s.plan }

// Fragment returns the plan's fragment classification.
func (s *Session) Fragment() string { return s.plan.fragment }

// SessionStats is a point-in-time snapshot of a session's cache counters
// (of the current epoch: Invalidate and revision bumps reset them).
type SessionStats struct {
	Revision     uint64
	Fragment     string
	Rel          ecrpq.RelCacheStats
	Maint        SessionMaint
	FeasSize     int
	ResultHits   uint64
	ResultMisses uint64
	ResultSize   int
}

// Stats returns a snapshot of the session's cache counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	sc, rc := s.caches, s.results
	st := SessionStats{Revision: s.rev, Fragment: s.plan.fragment, Maint: s.maint}
	s.mu.Unlock()
	if sc != nil {
		st.Rel = sc.rels.Stats()
		_, _, st.FeasSize = sc.feas.stats()
	}
	if rc != nil {
		st.ResultHits, st.ResultMisses, st.ResultSize = rc.stats()
	}
	return st
}

// Eval evaluates the query with the strongest complete algorithm for its
// fragment (the Session counterpart of the package-level Eval).
func (s *Session) Eval() (*pattern.TupleSet, error) { return s.evalBudget(nil) }

// evalBudget is Eval under an optional budget. On truncation the sound
// partial set is returned together with engine.ErrCanceled and is NOT
// installed in the result cache.
func (s *Session) evalBudget(bud *engine.Budget) (*pattern.TupleSet, error) {
	switch s.plan.kind {
	case kindClassical, kindSimple:
		return s.evalSimple(bud)
	case kindVsf:
		return s.evalVsfSession(false, bud)
	default:
		return nil, fmt.Errorf("cxrpq: %s is not vstar-free; use EvalBounded (CXRPQ^≤k), EvalLog (CXRPQ^log) or EvalAny", s.plan.fragment)
	}
}

// EvalBool decides D |= q, short-circuiting where the fragment allows.
func (s *Session) EvalBool() (bool, error) { return s.evalBoolBudget(nil) }

// evalBoolBudget is EvalBool under an optional budget. The simple path runs
// the lazy (chunked-sweep) streaming search, so the first witness returns
// without materializing full relations — the first-result fast path. A
// canceled budget with no witness yields (false, engine.ErrCanceled).
func (s *Session) evalBoolBudget(bud *engine.Budget) (bool, error) {
	switch s.plan.kind {
	case kindClassical, kindSimple:
		_, rc, _ := s.current()
		if v, ok := rc.get("bool"); ok {
			return v.(bool), nil
		}
		eq, err := s.plan.simpleQuery()
		if err != nil {
			return false, err
		}
		ok, err := ecrpq.EvalBoolBudget(eq, s.db, bud)
		if err != nil {
			return false, err
		}
		if bud.Err() == nil {
			rc.put("bool", ok)
		}
		return ok, nil
	case kindVsf:
		res, err := s.evalVsfSession(true, bud)
		if err != nil {
			return false, err
		}
		return res.Len() > 0, nil
	default:
		return false, fmt.Errorf("cxrpq: %s is not vstar-free; use EvalBoundedBool or EvalLogBool", s.plan.fragment)
	}
}

func (s *Session) evalSimple(bud *engine.Budget) (*pattern.TupleSet, error) {
	_, rc, _ := s.current()
	if v, ok := rc.get("eval"); ok {
		return v.(*pattern.TupleSet), nil
	}
	eq, err := s.plan.simpleQuery()
	if err != nil {
		return nil, err
	}
	res, err := ecrpq.EvalBudget(eq, s.db, bud)
	if err != nil {
		return res, err // truncated: sound partial set, never cached
	}
	rc.put("eval", res)
	return res, nil
}

// EvalVsf evaluates a vstar-free query by the Theorem 2 algorithm over the
// plan's materialized branch combinations (falling back to streaming them
// when the combination count exceeds the plan cap).
func (s *Session) EvalVsf() (*pattern.TupleSet, error) { return s.evalVsfSession(false, nil) }

// EvalVsfBool decides D |= q for vstar-free q, short-circuiting on the
// first matching branch combination.
func (s *Session) EvalVsfBool() (bool, error) {
	res, err := s.evalVsfSession(true, nil)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

func (s *Session) evalVsfSession(boolOnly bool, bud *engine.Budget) (*pattern.TupleSet, error) {
	_, rc, _ := s.current()
	key := "vsf"
	if boolOnly {
		key = "vsfb"
	}
	if v, ok := rc.get(key); ok {
		return v.(*pattern.TupleSet), nil
	}
	combos, overflow, err := s.plan.vsfCombos()
	if err != nil {
		return nil, err
	}
	var res *pattern.TupleSet
	if overflow {
		res, err = evalVsfStream(s.plan.q, s.db, boolOnly, bud)
	} else {
		res, err = evalVsfCombos(combos, s.db, boolOnly, bud)
	}
	if err != nil {
		return res, err // truncated partial (or failure); never cached
	}
	if bud.Err() == nil {
		rc.put(key, res)
	}
	return res, nil
}

// evalVsfCombos evaluates materialized branch combinations concurrently
// across the engine worker pool, aggregating through the same vsfSink as
// the streaming path (evalVsfStream), so the two share one Boolean
// contract. The combinations share a fork of the caller's budget: the first
// Boolean witness stops it, so in-flight sibling evaluations unwind at BFS
// level granularity instead of running to completion.
func evalVsfCombos(combos []vsfCombo, db *graph.DB, boolOnly bool, bud *engine.Budget) (*pattern.TupleSet, error) {
	if len(combos) == 0 {
		return pattern.NewTupleSet(), nil
	}
	db.Index() // prebuild once before fanning out

	fan := bud.Fork()
	var stop atomic.Bool
	sink := newVsfSink(boolOnly, &stop, fan)
	engine.Fan(len(combos), func(i int) {
		if stop.Load() || fan.Canceled() {
			return
		}
		cb := combos[i]
		var res *pattern.TupleSet
		err := cb.err
		if err == nil {
			if boolOnly {
				ok, berr := ecrpq.EvalBoolBudget(cb.eq, db, fan)
				if berr != nil {
					err = berr
				} else if ok {
					res = pattern.NewTupleSet()
					res.Add(pattern.Tuple{})
				}
			} else {
				res, err = ecrpq.EvalBudget(cb.eq, db, fan)
			}
		}
		sink.record(i, res, err)
	})
	return sink.finish()
}

// EvalBounded evaluates the query under the CXRPQ^≤k semantics (Theorem 6)
// through the session caches.
func (s *Session) EvalBounded(k int) (*pattern.TupleSet, error) {
	return s.evalBoundedSession(k, false)
}

// EvalBoundedBool decides D |=^≤k q, short-circuiting on the first mapping.
func (s *Session) EvalBoundedBool(k int) (bool, error) {
	res, err := s.evalBoundedSession(k, true)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// EvalLog evaluates the query under CXRPQ^log semantics (Corollary 1).
func (s *Session) EvalLog() (*pattern.TupleSet, error) {
	return s.EvalBounded(logBound(s.db))
}

// EvalLogBool decides D |=^log q.
func (s *Session) EvalLogBool() (bool, error) {
	return s.EvalBoundedBool(logBound(s.db))
}

func (s *Session) evalBoundedSession(k int, boolOnly bool) (*pattern.TupleSet, error) {
	return s.evalBoundedBudget(k, boolOnly, nil)
}

// evalBoundedBudget is the bounded evaluation under an optional budget. A
// truncated run returns the sound partial set with engine.ErrCanceled —
// except in Boolean mode with a witness already found, where the answer is
// definitive regardless of what the budget cut. Truncated results are never
// cached.
func (s *Session) evalBoundedBudget(k int, boolOnly bool, bud *engine.Budget) (*pattern.TupleSet, error) {
	sc, rc, sigma := s.current()
	key := fmt.Sprintf("bnd\x1f%d\x1f%v", k, boolOnly)
	if v, ok := rc.get(key); ok {
		return v.(*pattern.TupleSet), nil
	}
	bp, err := s.plan.boundedPlanFor()
	if err != nil {
		return nil, err
	}
	e, err := newBoundedEngine(bp, s.db, k, boolOnly, nil, sc, sigma)
	if err != nil {
		return nil, err
	}
	e.setBudget(bud)
	res, err := e.run()
	if err != nil {
		return nil, err
	}
	if berr := bud.Err(); berr != nil {
		if boolOnly && res.Len() > 0 {
			return res, nil
		}
		return res, berr
	}
	rc.put(key, res)
	return res, nil
}

// Check decides t̄ ∈ q(D) with the fragment dispatch of the package-level
// Check.
func (s *Session) Check(t pattern.Tuple) (bool, error) { return s.checkBudget(t, nil) }

// checkBudget is Check under an optional budget; the pre-bound search runs
// lazily so the first witness short-circuits (ecrpq.CheckBudget). A canceled
// budget with no witness yields (false, engine.ErrCanceled).
func (s *Session) checkBudget(t pattern.Tuple, bud *engine.Budget) (bool, error) {
	switch s.plan.kind {
	case kindClassical, kindSimple:
		_, rc, _ := s.current()
		key := "chk\x1f" + t.Key()
		if v, ok := rc.get(key); ok {
			return v.(bool), nil
		}
		eq, err := s.plan.simpleQuery()
		if err != nil {
			return false, err
		}
		ok, err := ecrpq.CheckBudget(eq, s.db, t, bud)
		if err != nil {
			return false, err
		}
		if bud.Err() == nil {
			rc.put(key, ok)
		}
		return ok, nil
	case kindVsf:
		return s.checkVsf(t, bud)
	default:
		return false, fmt.Errorf("cxrpq: %s is not vstar-free; use CheckBounded", s.plan.fragment)
	}
}

func (s *Session) checkVsf(t pattern.Tuple, bud *engine.Budget) (bool, error) {
	_, rc, _ := s.current()
	key := "chkv\x1f" + t.Key()
	if v, ok := rc.get(key); ok {
		return v.(bool), nil
	}
	combos, overflow, err := s.plan.vsfCombos()
	if err != nil {
		return false, err
	}
	if overflow {
		return CheckVsf(s.plan.q, s.db, t)
	}
	found := false
	for _, cb := range combos {
		if cb.err != nil {
			return false, cb.err
		}
		ok, err := ecrpq.CheckBudget(cb.eq, s.db, t, bud)
		if err != nil {
			return false, err
		}
		if ok {
			found = true
			break
		}
	}
	if bud.Err() == nil {
		rc.put(key, found)
	}
	return found, nil
}

// CheckBounded decides t̄ ∈ q^≤k(D) (Theorem 6 semantics) through the
// session caches: the output variables are pre-bound, so each leaf join
// only searches for one extension of the tuple.
func (s *Session) CheckBounded(k int, t pattern.Tuple) (bool, error) {
	return s.checkBoundedBudget(k, t, nil)
}

// checkBoundedBudget is CheckBounded under an optional budget: a found
// witness is definitive (the sibling-cancel stop may fire afterwards, that
// is expected); a canceled budget with no witness is unknown and yields
// (false, engine.ErrCanceled) without caching.
func (s *Session) checkBoundedBudget(k int, t pattern.Tuple, bud *engine.Budget) (bool, error) {
	if len(t) != len(s.plan.q.Pattern.Out) {
		return false, fmt.Errorf("cxrpq: tuple arity %d, query arity %d", len(t), len(s.plan.q.Pattern.Out))
	}
	sc, rc, sigma := s.current()
	key := fmt.Sprintf("chkb\x1f%d\x1f%s", k, t.Key())
	if v, ok := rc.get(key); ok {
		return v.(bool), nil
	}
	pre := map[string]int{}
	for i, z := range s.plan.q.Pattern.Out {
		v := t[i]
		if v < 0 || v >= s.db.NumNodes() {
			return false, fmt.Errorf("cxrpq: node id %d out of range", v)
		}
		if prev, ok := pre[z]; ok && prev != v {
			return false, nil // same output variable bound to two nodes
		}
		pre[z] = v
	}
	bp, err := s.plan.boundedPlanFor()
	if err != nil {
		return false, err
	}
	e, err := newBoundedEngine(bp, s.db, k, true, pre, sc, sigma)
	if err != nil {
		return false, err
	}
	e.setBudget(bud)
	res, err := e.run()
	if err != nil {
		return false, err
	}
	ok := res.Len() > 0
	if !ok {
		if berr := bud.Err(); berr != nil {
			return false, berr
		}
	}
	if bud.Err() == nil {
		rc.put(key, ok)
	}
	return ok, nil
}

// explainVal is the result-cache entry type of the Explain methods.
type explainVal struct {
	ex *Explanation
	ok bool
}

// Explain searches for one match (optionally constrained to output tuple t;
// pass nil for any match) and reconstructs its witness, for any vstar-free
// query. For unrestricted queries use ExplainBounded.
func (s *Session) Explain(t pattern.Tuple) (*Explanation, bool, error) {
	if s.plan.kind == kindGeneral {
		return nil, false, fmt.Errorf("cxrpq: %s is not vstar-free; use ExplainBounded", s.plan.fragment)
	}
	_, rc, _ := s.current()
	key := "exp\x1f" + t.Key()
	if v, ok := rc.get(key); ok {
		ev := v.(explainVal)
		return ev.ex, ev.ok, nil
	}
	ex, ok, err := ExplainVsf(s.plan.q, s.db, t)
	if err != nil {
		return nil, false, err
	}
	if ex != nil {
		ex.Plan, _ = s.PlanReport() // best effort: the witness stands alone
	}
	rc.put(key, explainVal{ex, ok})
	return ex, ok, nil
}

// ExplainBounded searches for one match under CXRPQ^≤k semantics and
// reconstructs its witness. It runs the bounded engine sequentially — so
// the witness is the first one in enumeration order — with a leaf that
// searches the instantiated CRPQ for a concrete path witness instead of
// joining cached relations; the engine's subtree pruning applies unchanged.
func (s *Session) ExplainBounded(k int, t pattern.Tuple) (*Explanation, bool, error) {
	sc, rc, sigma := s.current()
	key := fmt.Sprintf("expb\x1f%d\x1f%s", k, t.Key())
	if v, ok := rc.get(key); ok {
		ev := v.(explainVal)
		return ev.ex, ev.ok, nil
	}
	bp, err := s.plan.boundedPlanFor()
	if err != nil {
		return nil, false, err
	}
	e, err := newBoundedEngine(bp, s.db, k, false, nil, sc, sigma)
	if err != nil {
		return nil, false, err
	}
	e.seq = true
	q := s.plan.q
	var result *Explanation
	e.leaf = func(st *boundedState) error {
		g := &pattern.Graph{Out: append([]string(nil), q.Pattern.Out...)}
		for i, pe := range q.Pattern.Edges {
			g.Edges = append(g.Edges, pattern.Edge{From: pe.From, To: pe.To, Label: st.insts[i]})
		}
		w, ok, err := ecrpq.FindWitness(&ecrpq.Query{Pattern: g}, s.db, t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		images := map[string]string{}
		for x, v := range st.assign {
			images[x] = v
		}
		result = &Explanation{NodeOf: w.NodeOf, Words: w.Words, Images: images}
		e.stop.Store(true)
		return nil
	}
	if _, err := e.run(); err != nil {
		return nil, false, err
	}
	if result != nil {
		result.Plan, _ = s.PlanReport() // best effort: the witness stands alone
	}
	rc.put(key, explainVal{result, result != nil})
	return result, result != nil, nil
}

// Request is one operation of an EvalBatch call.
type Request struct {
	Op        string        // "eval", "bool", "check" or "explain"
	Semantics string        // "" or "auto": fragment dispatch; "bounded": ≤K semantics; "log": log semantics
	K         int           // image bound for Semantics == "bounded" (k = 0 is legal: ε-only images)
	Tuple     pattern.Tuple // check/explain argument (nil explains any match)

	// Budget optionally bounds the evaluation (deadline, row cap, context
	// cancellation — see engine.Budget); nil is unlimited. A truncated eval
	// returns the sound partial tuples found so far with
	// Err == engine.ErrCanceled (check errors.Is); a truncated bool/check
	// with no witness reports the same error (the answer is unknown).
	// Explain ignores the budget.
	Budget *engine.Budget
}

// Response is the result of one batch Request. Exactly the fields relevant
// to the request's Op are set.
type Response struct {
	Tuples      *pattern.TupleSet // eval
	OK          bool              // bool/check outcome; explain: match found
	Explanation *Explanation      // explain
	Err         error
}

// Do executes one request against the session.
func (s *Session) Do(req Request) Response {
	bounded := false
	k := 0
	switch req.Semantics {
	case "", "auto":
	case "bounded":
		bounded, k = true, req.K
	case "log":
		bounded, k = true, logBound(s.db)
	default:
		return Response{Err: fmt.Errorf("cxrpq: unknown request semantics %q", req.Semantics)}
	}
	switch req.Op {
	case "eval":
		var res *pattern.TupleSet
		var err error
		if bounded {
			res, err = s.evalBoundedBudget(k, false, req.Budget)
		} else {
			res, err = s.evalBudget(req.Budget)
		}
		return Response{Tuples: res, OK: res != nil && res.Len() > 0, Err: err}
	case "bool":
		var ok bool
		var err error
		if bounded {
			res, berr := s.evalBoundedBudget(k, true, req.Budget)
			ok, err = res != nil && res.Len() > 0, berr
		} else {
			ok, err = s.evalBoolBudget(req.Budget)
		}
		return Response{OK: ok, Err: err}
	case "check":
		var ok bool
		var err error
		if bounded {
			ok, err = s.checkBoundedBudget(k, req.Tuple, req.Budget)
		} else {
			ok, err = s.checkBudget(req.Tuple, req.Budget)
		}
		return Response{OK: ok, Err: err}
	case "explain":
		var ex *Explanation
		var ok bool
		var err error
		if bounded {
			ex, ok, err = s.ExplainBounded(k, req.Tuple)
		} else {
			ex, ok, err = s.Explain(req.Tuple)
		}
		return Response{Explanation: ex, OK: ok, Err: err}
	default:
		return Response{Err: fmt.Errorf("cxrpq: unknown batch op %q", req.Op)}
	}
}

// EvalBatch executes the requests concurrently across the engine worker
// pool and returns the responses in request order. The requests share the
// session caches, so overlapping work is done once.
func (s *Session) EvalBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	engine.Fan(len(reqs), func(i int) {
		out[i] = s.Do(reqs[i])
	})
	return out
}
