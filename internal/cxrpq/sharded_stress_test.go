package cxrpq_test

// Sharded-kernel coverage at the query level: a differential sweep of
// random CXRPQs across engine shard counts, and a -race stress test driving
// concurrent sharded session evaluations against an ApplyDelta writer on a
// graph large enough that the frontier-exchange kernel really shards.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// shardSweep returns the deduplicated shard counts to sweep: 1 (MS-BFS
// batching only), 2, 4 (so frontier exchange runs even on one core),
// GOMAXPROCS and 2·GOMAXPROCS.
func shardSweep() []int {
	p := runtime.GOMAXPROCS(0)
	var out []int
	for _, k := range []int{1, 2, 4, p, 2 * p} {
		dup := false
		for _, seen := range out {
			if seen == k {
				dup = true
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}

// TestShardedRandomQueryDifferential sweeps workload.RandomQuery seeds
// across every shard count: the full pipeline (parse → plan → sharded
// relation construction → join) must agree with the naive Theorem 6
// baseline on small graphs, and stay self-consistent across shard counts on
// a graph above the kernel's single-shard gate.
func TestShardedRandomQueryDifferential(t *testing.T) {
	restore := engine.SetShards(1)
	defer engine.SetShards(restore)
	for seed := int64(0); seed < 8; seed++ {
		r := workload.NewRNG(seed*977 + 11)
		q := workload.RandomQuery(r, r.Intn(4) != 0)
		nodes := 3 + r.Intn(3)
		db := workload.Random(seed^0x5ad, nodes, nodes+r.Intn(nodes+3), "ab")
		k := 1 + r.Intn(2)
		want, err := cxrpq.EvalBoundedNaive(q, db, k)
		if err != nil {
			t.Fatalf("seed %d: naive: %v\nquery:\n%s", seed, err, q.Pattern)
		}
		for _, shards := range shardSweep() {
			engine.SetShards(shards)
			got, err := cxrpq.EvalBounded(q, db, k)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v\nquery:\n%s", seed, shards, err, q.Pattern)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d shards %d: %d tuples, naive %d\nquery:\n%s",
					seed, shards, got.Len(), want.Len(), q.Pattern)
			}
		}
	}

	// Above the gate: the answer set must not depend on the shard count.
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : ($x|b)a?\n")
	db := workload.Random(23, 200, 600, "ab")
	engine.SetShards(1)
	want, err := cxrpq.EvalBounded(q, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardSweep()[1:] {
		engine.SetShards(shards)
		got, err := cxrpq.EvalBounded(q, db, 1)
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if !got.Equal(want) {
			t.Fatalf("shards %d: %d tuples, single-shard %d", shards, got.Len(), want.Len())
		}
	}
}

// TestSessionConcurrentShardedDeltaStress is the sharded twin of
// TestSessionConcurrentDeltaStress: concurrent Session.Do readers against
// an ApplyDelta writer under -race, with the engine forced to 4 shards and
// a 200-node base graph so every relation build runs the frontier-exchange
// kernel with goroutine-owned shards. Per-generation ground truths are
// computed up front with one-shot evaluations on a scratch copy (the naive
// baseline would be too slow at this node count).
func TestSessionConcurrentShardedDeltaStress(t *testing.T) {
	restore := engine.SetShards(4)
	defer engine.SetShards(restore)

	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : ($x|b)a?\n")
	mkDB := func() *graph.DB { return workload.Random(23, 200, 600, "ab") }
	db := mkDB()
	const k = 1

	// Additions (fine-grained maintenance), a removal (full flush) and a
	// round trip, as in the unsharded stress test.
	script := []graph.Delta{
		{Add: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(3)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(1), Label: 'b', To: "fresh0"}, {From: "fresh0", Label: 'a', To: db.Name(2)}}},
		{Del: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(3)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(4), Label: 'a', To: db.Name(5)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(2), Label: 'b', To: db.Name(0)}}, Del: []graph.DeltaEdge{{From: db.Name(4), Label: 'a', To: db.Name(5)}}},
	}

	scratch := mkDB()
	truths := make([]*pattern.TupleSet, 0, len(script)+1)
	truth := func() *pattern.TupleSet {
		res, err := cxrpq.EvalBounded(q, scratch, k)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	truths = append(truths, truth())
	for _, delta := range script {
		if _, err := scratch.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		truths = append(truths, truth())
	}

	sess := cxrpq.MustPrepare(q).Bind(db)
	var dbMu sync.RWMutex
	var gen atomic.Int64

	const readers = 6
	errs := make(chan error, readers*64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dbMu.RLock()
				want := truths[gen.Load()]
				resp := sess.Do(cxrpq.Request{Op: "eval", Semantics: "bounded", K: k})
				dbMu.RUnlock()
				if resp.Err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, resp.Err)
					return
				}
				if !resp.Tuples.Equal(want) {
					errs <- fmt.Errorf("reader %d iter %d: %d tuples, want %d", g, i, resp.Tuples.Len(), want.Len())
					return
				}
			}
		}(g)
	}

	for step, delta := range script {
		time.Sleep(2 * time.Millisecond)
		dbMu.Lock()
		if _, err := sess.ApplyDelta(delta); err != nil {
			dbMu.Unlock()
			t.Fatalf("writer step %d: %v", step, err)
		}
		gen.Store(int64(step + 1))
		dbMu.Unlock()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sess.Stats()
	if st.Maint.DeltaApplies == 0 {
		t.Errorf("no fine-grained delta maintenance happened under stress: %+v", st.Maint)
	}
	if st.Maint.FullRebuilds < 2 { // initial bind + the removal step
		t.Errorf("removal step did not force a full flush: %+v", st.Maint)
	}
}
