package cxrpq_test

// Concurrency stress tests for the Session layer: many goroutines share one
// Session and issue mixed Eval/Check/Explain/batch calls; every result must
// match the sequentially computed ground truth, under -race. A second test
// drives the invalidation contract: after a (quiescent) DB mutation the
// session must never serve relations derived from the old revision, with
// and without an explicit Invalidate call.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

func TestSessionConcurrentStressBounded(t *testing.T) {
	// General-fragment query: only the bounded engine applies.
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}c?\nm n : $y{$x|b}($x|$y)\nn q : $x+|b\n")
	db := workload.Random(42, 6, 14, "abc")
	const k = 2

	want, err := cxrpq.EvalBoundedNaive(q, db, k)
	if err != nil {
		t.Fatal(err)
	}
	wantBool := want.Len() > 0
	members := want.Sorted()
	nonMember := pattern.Tuple{0, 0}
	for v := 0; v < db.NumNodes(); v++ {
		probe := pattern.Tuple{v, v}
		if !want.Contains(probe) {
			nonMember = probe
			break
		}
	}

	plan, err := cxrpq.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Bind(db)

	const goroutines = 8
	const iters = 20
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 5 {
				case 0:
					res, err := sess.EvalBounded(k)
					if err != nil {
						errs <- fmt.Errorf("EvalBounded: %v", err)
					} else if !res.Equal(want) {
						errs <- fmt.Errorf("EvalBounded: %d tuples, want %d", res.Len(), want.Len())
					}
				case 1:
					ok, err := sess.EvalBoundedBool(k)
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("EvalBoundedBool=%v err=%v, want %v", ok, err, wantBool)
					}
				case 2:
					tup := members[(g*iters+i)%len(members)]
					ok, err := sess.CheckBounded(k, tup)
					if err != nil || !ok {
						errs <- fmt.Errorf("CheckBounded(%v)=%v err=%v, want true", tup, ok, err)
					}
					if ok2, err := sess.CheckBounded(k, nonMember); err != nil || ok2 {
						errs <- fmt.Errorf("CheckBounded(%v)=%v err=%v, want false", nonMember, ok2, err)
					}
				case 3:
					ex, ok, err := sess.ExplainBounded(k, nil)
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("ExplainBounded ok=%v err=%v, want %v", ok, err, wantBool)
					} else if ok && ex == nil {
						errs <- fmt.Errorf("ExplainBounded: ok without explanation")
					}
				case 4:
					resps := sess.EvalBatch([]cxrpq.Request{
						{Op: "eval", Semantics: "bounded", K: k},
						{Op: "bool", Semantics: "bounded", K: k},
						{Op: "check", Semantics: "bounded", K: k, Tuple: members[0]},
					})
					if resps[0].Err != nil || !resps[0].Tuples.Equal(want) {
						errs <- fmt.Errorf("batch eval diverged: %v", resps[0].Err)
					}
					if resps[1].Err != nil || resps[1].OK != wantBool {
						errs <- fmt.Errorf("batch bool diverged: %v", resps[1].Err)
					}
					if resps[2].Err != nil || !resps[2].OK {
						errs <- fmt.Errorf("batch check diverged: %v", resps[2].Err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sess.Stats()
	if st.Rel.Hits == 0 {
		t.Errorf("expected relation-cache hits under concurrent reuse, got %+v", st.Rel)
	}
}

func TestSessionConcurrentStressVsf(t *testing.T) {
	// Vstar-free query: the materialized branch-combination path.
	q := cxrpq.MustParse("ans(p, q)\np m : $x{aa|b}\nm q : ($x|c)b?\n")
	db := workload.Random(7, 7, 18, "abc")

	want, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantBool := want.Len() > 0
	sess := cxrpq.MustPrepare(q).Bind(db)

	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 3 {
				case 0:
					res, err := sess.Eval()
					if err != nil || !res.Equal(want) {
						errs <- fmt.Errorf("vsf Eval diverged: %v", err)
					}
				case 1:
					ok, err := sess.EvalBool()
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("vsf EvalBool=%v err=%v", ok, err)
					}
				case 2:
					if want.Len() > 0 {
						tup := want.Sorted()[(g+i)%want.Len()]
						ok, err := sess.Check(tup)
						if err != nil || !ok {
							errs <- fmt.Errorf("vsf Check(%v)=%v err=%v", tup, ok, err)
						}
						if _, ok, err := sess.Explain(tup); err != nil || !ok {
							errs <- fmt.Errorf("vsf Explain(%v) ok=%v err=%v", tup, ok, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionInvalidation drives the invalidation contract: a session must
// never serve relations from a stale DB revision after a quiescent
// mutation, both via the automatic revision check and via an explicit
// Invalidate call.
func TestSessionInvalidation(t *testing.T) {
	db := graph.New()
	u, v, w := db.Node("u"), db.Node("v"), db.Node("w")
	db.AddEdge(u, 'a', v)
	db.AddEdge(v, 'b', w)

	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : $x|b\n")
	sess := cxrpq.MustPrepare(q).Bind(db)

	check := func(label string) {
		t.Helper()
		got, err := sess.EvalBounded(1)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, err := cxrpq.EvalBoundedNaive(q, db, 1)
		if err != nil {
			t.Fatalf("%s: naive: %v", label, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: stale result: session %d tuples, fresh naive %d", label, got.Len(), want.Len())
		}
	}

	check("initial")
	before, _ := sess.EvalBounded(1)

	// Mutation 1: new edges that add answers; the automatic revision check
	// must drop the caches.
	x := db.Node("x")
	db.AddEdge(w, 'a', x)
	db.AddEdge(x, 'a', u)
	check("after mutation (auto revision check)")
	after, _ := sess.EvalBounded(1)
	if after.Equal(before) {
		t.Fatal("mutation did not change the answer set; test is vacuous")
	}

	// Mutation 2: explicit Invalidate before the next call must behave the
	// same (and is allowed to be redundant with the revision check).
	db.AddEdge(u, 'b', w)
	sess.Invalidate()
	check("after mutation (explicit Invalidate)")

	// A new symbol extends the session alphabet too.
	db.AddEdge(w, 'c', u)
	check("after alphabet-extending mutation")
}

// TestSessionConcurrentDeltaStress drives concurrent Session.Do readers
// against a writer looping ApplyDelta under -race. The writer coordinates
// with readers through an RWMutex — the server's quiescence pattern — and
// walks a fixed delta script whose per-generation ground truths are
// precomputed, so every reader can verify the exact tuple set of the
// revision it observed while the caches around it are being
// delta-maintained.
func TestSessionConcurrentDeltaStress(t *testing.T) {
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : ($x|b)a?\n")
	db := workload.Random(23, 6, 12, "ab")
	const k = 1

	// The delta script: additions (fine-grained maintenance), a removal
	// (full flush) and a round trip (net-empty retention), cycled.
	script := []graph.Delta{
		{Add: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(3)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(1), Label: 'b', To: "fresh0"}, {From: "fresh0", Label: 'a', To: db.Name(2)}}},
		{Del: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(3)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(4), Label: 'a', To: db.Name(5)}}},
		{Add: []graph.DeltaEdge{{From: db.Name(2), Label: 'b', To: db.Name(0)}}, Del: []graph.DeltaEdge{{From: db.Name(4), Label: 'a', To: db.Name(5)}}},
	}

	// Precompute the ground truth of every generation on a scratch copy.
	scratch := workload.Random(23, 6, 12, "ab")
	truths := make([]*pattern.TupleSet, 0, len(script)+1)
	truth := func() *pattern.TupleSet {
		res, err := cxrpq.EvalBoundedNaive(q, scratch, k)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	truths = append(truths, truth())
	for _, delta := range script {
		if _, err := scratch.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		truths = append(truths, truth())
	}

	sess := cxrpq.MustPrepare(q).Bind(db)
	var dbMu sync.RWMutex
	var gen atomic.Int64

	const readers = 6
	errs := make(chan error, readers*64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dbMu.RLock()
				want := truths[gen.Load()]
				resp := sess.Do(cxrpq.Request{Op: "eval", Semantics: "bounded", K: k})
				dbMu.RUnlock()
				if resp.Err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, resp.Err)
					return
				}
				if !resp.Tuples.Equal(want) {
					errs <- fmt.Errorf("reader %d iter %d: %d tuples, want %d", g, i, resp.Tuples.Len(), want.Len())
					return
				}
			}
		}(g)
	}

	// Writer: walk the script under the write lock, yielding between steps
	// so readers interleave with every generation.
	for step, delta := range script {
		time.Sleep(2 * time.Millisecond)
		dbMu.Lock()
		if _, err := sess.ApplyDelta(delta); err != nil {
			dbMu.Unlock()
			t.Fatalf("writer step %d: %v", step, err)
		}
		gen.Store(int64(step + 1))
		dbMu.Unlock()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sess.Stats()
	if st.Maint.DeltaApplies == 0 {
		t.Errorf("no fine-grained delta maintenance happened under stress: %+v", st.Maint)
	}
	if st.Maint.FullRebuilds < 2 { // initial bind + the removal step
		t.Errorf("removal step did not force a full flush: %+v", st.Maint)
	}
}

// TestSessionInvalidateForcesFullFlush is the regression test for the
// explicit escape hatch: Invalidate must always start a fresh epoch — no
// delta maintenance, empty relation cache — even when the delta log could
// have maintained the caches fine-grained.
func TestSessionInvalidateForcesFullFlush(t *testing.T) {
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : $x|b\n")
	db := workload.Random(31, 5, 10, "ab")
	sess := cxrpq.MustPrepare(q).Bind(db)
	if _, err := sess.EvalBounded(1); err != nil {
		t.Fatal(err)
	}
	pre := sess.Stats()
	if pre.Rel.Size == 0 {
		t.Fatal("relation cache unexpectedly empty after a bounded eval")
	}

	// Insert-only delta — maintainable — but Invalidate must win.
	if _, err := db.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(1)}}}); err != nil {
		t.Fatal(err)
	}
	sess.Invalidate()
	got, err := sess.EvalBounded(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cxrpq.EvalBoundedNaive(q, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("post-Invalidate result diverged: %d tuples, want %d", got.Len(), want.Len())
	}
	st := sess.Stats()
	if st.Maint.DeltaApplies != 0 {
		t.Fatalf("Invalidate was bypassed by delta maintenance: %+v", st.Maint)
	}
	if st.Maint.FullRebuilds != pre.Maint.FullRebuilds+1 {
		t.Fatalf("Invalidate did not force a full flush: %+v -> %+v", pre.Maint, st.Maint)
	}
	if st.Rel.Retained != 0 || st.Rel.Extended != 0 {
		t.Fatalf("fresh epoch inherited maintenance counters: %+v", st.Rel)
	}
}
