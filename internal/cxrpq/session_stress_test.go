package cxrpq_test

// Concurrency stress tests for the Session layer: many goroutines share one
// Session and issue mixed Eval/Check/Explain/batch calls; every result must
// match the sequentially computed ground truth, under -race. A second test
// drives the invalidation contract: after a (quiescent) DB mutation the
// session must never serve relations derived from the old revision, with
// and without an explicit Invalidate call.

import (
	"fmt"
	"sync"
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

func TestSessionConcurrentStressBounded(t *testing.T) {
	// General-fragment query: only the bounded engine applies.
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}c?\nm n : $y{$x|b}($x|$y)\nn q : $x+|b\n")
	db := workload.Random(42, 6, 14, "abc")
	const k = 2

	want, err := cxrpq.EvalBoundedNaive(q, db, k)
	if err != nil {
		t.Fatal(err)
	}
	wantBool := want.Len() > 0
	members := want.Sorted()
	nonMember := pattern.Tuple{0, 0}
	for v := 0; v < db.NumNodes(); v++ {
		probe := pattern.Tuple{v, v}
		if !want.Contains(probe) {
			nonMember = probe
			break
		}
	}

	plan, err := cxrpq.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Bind(db)

	const goroutines = 8
	const iters = 20
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 5 {
				case 0:
					res, err := sess.EvalBounded(k)
					if err != nil {
						errs <- fmt.Errorf("EvalBounded: %v", err)
					} else if !res.Equal(want) {
						errs <- fmt.Errorf("EvalBounded: %d tuples, want %d", res.Len(), want.Len())
					}
				case 1:
					ok, err := sess.EvalBoundedBool(k)
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("EvalBoundedBool=%v err=%v, want %v", ok, err, wantBool)
					}
				case 2:
					tup := members[(g*iters+i)%len(members)]
					ok, err := sess.CheckBounded(k, tup)
					if err != nil || !ok {
						errs <- fmt.Errorf("CheckBounded(%v)=%v err=%v, want true", tup, ok, err)
					}
					if ok2, err := sess.CheckBounded(k, nonMember); err != nil || ok2 {
						errs <- fmt.Errorf("CheckBounded(%v)=%v err=%v, want false", nonMember, ok2, err)
					}
				case 3:
					ex, ok, err := sess.ExplainBounded(k, nil)
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("ExplainBounded ok=%v err=%v, want %v", ok, err, wantBool)
					} else if ok && ex == nil {
						errs <- fmt.Errorf("ExplainBounded: ok without explanation")
					}
				case 4:
					resps := sess.EvalBatch([]cxrpq.Request{
						{Op: "eval", Semantics: "bounded", K: k},
						{Op: "bool", Semantics: "bounded", K: k},
						{Op: "check", Semantics: "bounded", K: k, Tuple: members[0]},
					})
					if resps[0].Err != nil || !resps[0].Tuples.Equal(want) {
						errs <- fmt.Errorf("batch eval diverged: %v", resps[0].Err)
					}
					if resps[1].Err != nil || resps[1].OK != wantBool {
						errs <- fmt.Errorf("batch bool diverged: %v", resps[1].Err)
					}
					if resps[2].Err != nil || !resps[2].OK {
						errs <- fmt.Errorf("batch check diverged: %v", resps[2].Err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sess.Stats()
	if st.Rel.Hits == 0 {
		t.Errorf("expected relation-cache hits under concurrent reuse, got %+v", st.Rel)
	}
}

func TestSessionConcurrentStressVsf(t *testing.T) {
	// Vstar-free query: the materialized branch-combination path.
	q := cxrpq.MustParse("ans(p, q)\np m : $x{aa|b}\nm q : ($x|c)b?\n")
	db := workload.Random(7, 7, 18, "abc")

	want, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantBool := want.Len() > 0
	sess := cxrpq.MustPrepare(q).Bind(db)

	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 3 {
				case 0:
					res, err := sess.Eval()
					if err != nil || !res.Equal(want) {
						errs <- fmt.Errorf("vsf Eval diverged: %v", err)
					}
				case 1:
					ok, err := sess.EvalBool()
					if err != nil || ok != wantBool {
						errs <- fmt.Errorf("vsf EvalBool=%v err=%v", ok, err)
					}
				case 2:
					if want.Len() > 0 {
						tup := want.Sorted()[(g+i)%want.Len()]
						ok, err := sess.Check(tup)
						if err != nil || !ok {
							errs <- fmt.Errorf("vsf Check(%v)=%v err=%v", tup, ok, err)
						}
						if _, ok, err := sess.Explain(tup); err != nil || !ok {
							errs <- fmt.Errorf("vsf Explain(%v) ok=%v err=%v", tup, ok, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionInvalidation drives the invalidation contract: a session must
// never serve relations from a stale DB revision after a quiescent
// mutation, both via the automatic revision check and via an explicit
// Invalidate call.
func TestSessionInvalidation(t *testing.T) {
	db := graph.New()
	u, v, w := db.Node("u"), db.Node("v"), db.Node("w")
	db.AddEdge(u, 'a', v)
	db.AddEdge(v, 'b', w)

	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : $x|b\n")
	sess := cxrpq.MustPrepare(q).Bind(db)

	check := func(label string) {
		t.Helper()
		got, err := sess.EvalBounded(1)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, err := cxrpq.EvalBoundedNaive(q, db, 1)
		if err != nil {
			t.Fatalf("%s: naive: %v", label, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: stale result: session %d tuples, fresh naive %d", label, got.Len(), want.Len())
		}
	}

	check("initial")
	before, _ := sess.EvalBounded(1)

	// Mutation 1: new edges that add answers; the automatic revision check
	// must drop the caches.
	x := db.Node("x")
	db.AddEdge(w, 'a', x)
	db.AddEdge(x, 'a', u)
	check("after mutation (auto revision check)")
	after, _ := sess.EvalBounded(1)
	if after.Equal(before) {
		t.Fatal("mutation did not change the answer set; test is vacuous")
	}

	// Mutation 2: explicit Invalidate before the next call must behave the
	// same (and is allowed to be redundant with the revision check).
	db.AddEdge(u, 'b', w)
	sess.Invalidate()
	check("after mutation (explicit Invalidate)")

	// A new symbol extends the session alphabet too.
	db.AddEdge(w, 'c', u)
	check("after alphabet-extending mutation")
}
