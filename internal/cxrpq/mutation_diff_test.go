package cxrpq_test

// Metamorphic mutation-sequence harness for the incremental-update
// subsystem: every seed generates a random small graph and query
// (internal/workload), binds a Session, and drives a randomized
// Session.ApplyDelta sequence — edge additions, fresh-node interning,
// occasional removals and new labels — asserting after every step that
//
//	(a) the delta-maintained session result equals a re-evaluation on a
//	    structurally fresh database rebuilt from the live edge multiset
//	    (catching bugs anywhere in the graph index / stats / relation
//	    maintenance chain) and equals EvalBoundedNaive on the live
//	    database (catching engine-level divergence on the maintained
//	    index);
//	(b) under insert-only deltas the answer sets of Eval/EvalBounded and
//	    the verdicts of EvalBoundedBool/CheckBounded grow monotonically
//	    (CXRPQ semantics are monotone in the edge set);
//	(c) an add-then-remove round trip restores the original tuple set.
//
// TestMutationCorpus replays a fixed seed list so CI exercises the laws
// deterministically via `go test -run Mutation -short`;
// TestMutationSequenceRandom sweeps 500+ fresh seeds.

import (
	"fmt"
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// mutationState mirrors the live database so a structurally fresh copy can
// be rebuilt at every step (same interning order, hence identical node ids).
type mutationState struct {
	db    *graph.DB
	sess  *cxrpq.Session
	q     *cxrpq.Query
	k     int
	names []string
}

// freshEval rebuilds the database from scratch and evaluates with a fresh
// plan and session — the ground truth of law (a).
func (m *mutationState) freshEval(t *testing.T, seed int64) *pattern.TupleSet {
	t.Helper()
	fresh := graph.New()
	for _, name := range m.names {
		fresh.Node(name)
	}
	for u := 0; u < m.db.NumNodes(); u++ {
		for _, e := range m.db.Out(u) {
			fresh.AddEdge(e.From, e.Label, e.To)
		}
	}
	res, err := cxrpq.MustPrepare(m.q).Bind(fresh).EvalBounded(m.k)
	if err != nil {
		t.Fatalf("seed %d: fresh re-evaluation: %v", seed, err)
	}
	return res
}

// checkStep asserts law (a) for the current state and returns the session
// result.
func (m *mutationState) checkStep(t *testing.T, seed int64, step string) *pattern.TupleSet {
	t.Helper()
	got, err := m.sess.EvalBounded(m.k)
	if err != nil {
		t.Fatalf("seed %d %s: Session.EvalBounded: %v", seed, step, err)
	}
	fresh := m.freshEval(t, seed)
	if !got.Equal(fresh) {
		t.Fatalf("seed %d %s: maintained session %d tuples, fresh re-evaluation %d\nquery:\n%s",
			seed, step, got.Len(), fresh.Len(), m.q.Pattern)
	}
	naive, err := cxrpq.EvalBoundedNaive(m.q, m.db, m.k)
	if err != nil {
		t.Fatalf("seed %d %s: EvalBoundedNaive: %v", seed, step, err)
	}
	if !got.Equal(naive) {
		t.Fatalf("seed %d %s: maintained session %d tuples, naive on live DB %d\nquery:\n%s",
			seed, step, got.Len(), naive.Len(), m.q.Pattern)
	}
	return got
}

// apply routes a delta through Session.ApplyDelta and keeps the name mirror
// in sync.
func (m *mutationState) apply(t *testing.T, seed int64, delta graph.Delta) *graph.DeltaInfo {
	t.Helper()
	info, err := m.sess.ApplyDelta(delta)
	if err != nil {
		t.Fatalf("seed %d: ApplyDelta(%+v): %v", seed, delta, err)
	}
	for len(m.names) < m.db.NumNodes() {
		m.names = append(m.names, m.db.Name(len(m.names)))
	}
	return info
}

// randomDelta draws a small mutation: mostly additions over the existing
// alphabet, sometimes interning a fresh node, sometimes (when allowed)
// removing a live edge or introducing a brand-new label.
func randomDelta(r *workload.RNG, db *graph.DB, step int, insertOnly bool) graph.Delta {
	var delta graph.Delta
	node := func() string { return db.Name(r.Intn(db.NumNodes())) }
	for i := 0; i <= r.Intn(2); i++ {
		to := node()
		if r.Intn(4) == 0 {
			to = fmt.Sprintf("f%d_%d", step, i) // fresh node
		}
		label := []rune("ab")[r.Intn(2)]
		if !insertOnly && r.Intn(8) == 0 {
			label = 'c' // brand-new label: forces the full-flush path
		}
		delta.Add = append(delta.Add, graph.DeltaEdge{From: node(), Label: label, To: to})
	}
	if !insertOnly && r.Intn(3) == 0 && db.NumEdges() > 0 {
		// Remove a uniformly random live edge.
		pick := r.Intn(db.NumEdges())
		for u := 0; u < db.NumNodes(); u++ {
			es := db.Out(u)
			if pick < len(es) {
				e := es[pick]
				delta.Del = append(delta.Del, graph.DeltaEdge{From: db.Name(e.From), Label: e.Label, To: db.Name(e.To)})
				break
			}
			pick -= len(es)
		}
	}
	return delta
}

// tupleSubset reports a ⊆ b.
func tupleSubset(a, b *pattern.TupleSet) bool {
	for _, t := range a.Sorted() {
		if !b.Contains(t) {
			return false
		}
	}
	return true
}

// mutationSeed runs one full metamorphic sequence for a seed.
func mutationSeed(t *testing.T, seed int64) {
	t.Helper()
	r := workload.NewRNG(seed)
	q := workload.RandomQuery(r, true) // finite-language templates keep the naive baseline fast
	nodes := 3 + r.Intn(3)
	db := workload.Random(seed^0x0ddba11, nodes, nodes+r.Intn(nodes+2), "ab")
	m := &mutationState{db: db, sess: cxrpq.MustPrepare(q).Bind(db), q: q, k: 1}
	for id := 0; id < db.NumNodes(); id++ {
		m.names = append(m.names, db.Name(id))
	}

	prev := m.checkStep(t, seed, "initial")
	steps := 3 + r.Intn(3)
	for step := 0; step < steps; step++ {
		delta := randomDelta(r, m.db, step, step%2 == 0)
		info := m.apply(t, seed, delta)
		got := m.checkStep(t, seed, fmt.Sprintf("step %d", step))

		if info.InsertOnly() {
			// Law (b): monotone growth of the answer set…
			if !tupleSubset(prev, got) {
				t.Fatalf("seed %d step %d: insert-only delta shrank the answer set (%d -> %d)\nquery:\n%s",
					seed, step, prev.Len(), got.Len(), q.Pattern)
			}
			// …of the Boolean verdict…
			if prev.Len() > 0 {
				if ok, err := m.sess.EvalBoundedBool(m.k); err != nil || !ok {
					t.Fatalf("seed %d step %d: Boolean verdict regressed (ok=%v err=%v)", seed, step, ok, err)
				}
				// …and of Check on a previously accepted tuple.
				tup := prev.Sorted()[r.Intn(prev.Len())]
				if ok, err := m.sess.CheckBounded(m.k, tup); err != nil || !ok {
					t.Fatalf("seed %d step %d: CheckBounded(%v) regressed (ok=%v err=%v)", seed, step, tup, ok, err)
				}
			}
		}
		prev = got
	}

	// Law (c): an add-then-remove round trip restores the original tuples.
	before := prev
	roundTrip := graph.Delta{Add: []graph.DeltaEdge{
		{From: m.names[r.Intn(len(m.names))], Label: 'a', To: m.names[r.Intn(len(m.names))]},
		{From: m.names[r.Intn(len(m.names))], Label: 'b', To: m.names[r.Intn(len(m.names))]},
	}}
	m.apply(t, seed, roundTrip)
	mid := m.checkStep(t, seed, "round-trip add")
	if !tupleSubset(before, mid) {
		t.Fatalf("seed %d: round-trip addition shrank the answer set", seed)
	}
	m.apply(t, seed, graph.Delta{Del: roundTrip.Add})
	after := m.checkStep(t, seed, "round-trip remove")
	if !after.Equal(before) {
		t.Fatalf("seed %d: add-then-remove round trip did not restore the tuple set (%d vs %d)\nquery:\n%s",
			seed, after.Len(), before.Len(), q.Pattern)
	}
}

// mutationCorpus is the deterministic replay list: a spread over the
// template families plus seeds whose sequences hit removals, new labels and
// fresh-node interning early.
var mutationCorpus = []int64{
	0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144,
	233, 377, 610, 987, 1597, 2584, 4181, 6765,
	31337, 54321,
}

// TestMutationCorpus replays the fixed corpus (always, including -short).
func TestMutationCorpus(t *testing.T) {
	for _, seed := range mutationCorpus {
		mutationSeed(t, seed)
	}
}

// TestMutationSequenceRandom sweeps 500+ fresh seeds; -short trims the
// sweep but never skips it entirely.
func TestMutationSequenceRandom(t *testing.T) {
	n := int64(520)
	if testing.Short() {
		n = 60
	}
	for seed := int64(700000); seed < 700000+n; seed++ {
		mutationSeed(t, seed)
	}
}

// TestMutationMaintStats pins that an insert-only known-label delta takes
// the fine-grained path (relation entries retained or extended, no full
// flush) and that removals and new labels take the full-flush path.
func TestMutationMaintStats(t *testing.T) {
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}\nm q : $x|b\n")
	db := workload.Random(99, 6, 14, "ab")
	sess := cxrpq.MustPrepare(q).Bind(db)
	if _, err := sess.EvalBounded(1); err != nil {
		t.Fatal(err)
	}
	base := sess.Stats()
	if base.Maint.FullRebuilds != 1 || base.Maint.DeltaApplies != 0 {
		t.Fatalf("unexpected baseline maint stats: %+v", base.Maint)
	}

	if _, err := sess.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(1)}}}); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Maint.DeltaApplies != 1 || st.Maint.FullRebuilds != 1 {
		t.Fatalf("insert-only delta did not take the fine-grained path: %+v", st.Maint)
	}
	if st.Rel.Retained+st.Rel.Extended == 0 {
		t.Fatalf("no relation entries maintained: %+v", st.Rel)
	}

	// A removal must force the full flush.
	if _, err := sess.ApplyDelta(graph.Delta{Del: []graph.DeltaEdge{{From: db.Name(0), Label: 'a', To: db.Name(1)}}}); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Maint.FullRebuilds != 2 {
		t.Fatalf("removal did not force a full flush: %+v", st.Maint)
	}

	// A brand-new label must force the full flush too.
	if _, err := sess.EvalBounded(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{{From: db.Name(0), Label: 'z', To: db.Name(1)}}}); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Maint.FullRebuilds != 3 {
		t.Fatalf("new label did not force a full flush: %+v", st.Maint)
	}

	// An add-then-remove round trip between calls nets out: everything —
	// including the result cache — is retained.
	if _, err := sess.EvalBounded(1); err != nil {
		t.Fatal(err)
	}
	pre := sess.Stats()
	if _, err := db.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{{From: db.Name(2), Label: 'a', To: db.Name(3)}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ApplyDelta(graph.Delta{Del: []graph.DeltaEdge{{From: db.Name(2), Label: 'a', To: db.Name(3)}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.EvalBounded(1); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Maint.Retains != pre.Maint.Retains+1 {
		t.Fatalf("net-empty window not retained: %+v -> %+v", pre.Maint, st.Maint)
	}
	if st.ResultHits != pre.ResultHits+1 {
		t.Fatalf("net-empty window dropped the result cache: %+v -> %+v", pre, st)
	}
}
