package cxrpq_test

// A table-driven conformance corpus for the conjunctive-match semantics of
// §3.1 and the fragment evaluators. Every case states a database, a query,
// the expected Boolean outcome or answer count, and which evaluator decides
// it; each case exercises a distinct semantic behaviour.

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
)

type confCase struct {
	name  string
	db    string
	query string
	algo  string // "auto", "vsf", "bounded:<k>"
	// expectations: exactly one of wantBool / wantCount is used
	boolean   bool
	wantBool  bool
	wantCount int
}

var conformance = []confCase{
	{
		name:  "variable shared across edges, positive",
		db:    "u a v\nu a w",
		query: "ans()\nu1 v1 : $x{a|b}\nu1 w1 : $x",
		algo:  "auto", boolean: true, wantBool: true,
	},
	{
		name:  "variable shared across edges, negative (different symbols)",
		db:    "u a v\nu2 b w",
		query: "ans()\nu1 v1 : $x{a}\nw1 z1 : $x$x",
		algo:  "auto", boolean: true, wantBool: false,
	},
	{
		name:  "empty image allowed when definition yields ε",
		db:    "u c v",
		query: "ans()\nx y : $v{a*}c$v",
		algo:  "auto", boolean: true, wantBool: true,
	},
	{
		name:  "definition in untaken branch forces ε references",
		db:    "u b v\nv c w",
		query: "ans()\nx y : $z{a}|b\ny w : $z c",
		algo:  "vsf", boolean: true, wantBool: true,
	},
	{
		name:  "forced-ε reference cannot produce symbols",
		db:    "u b v\nv a w\nw c z",
		query: "ans()\nx y : $z{a}|b\ny w : $z c",
		algo:  "vsf", boolean: false, wantCount: 0,
	},
	{
		name:  "free variable shared between components",
		db:    "u a v\nw a z",
		query: "ans(x, y)\nx y : $f\nx2 y2 : $f",
		algo:  "auto", boolean: false,
		// projected on (x, y): f=ε forces x=y (4 tuples), f=a gives (u,v)
		// and (w,z); the second edge always has a matching pair: 6 total
		wantCount: 6,
	},
	{
		name:  "reference before definition within one component",
		db:    "s a m1\nm1 b m2\nm2 a m3\nm3 b t",
		query: "ans()\nx y : ($v)$v{ab}",
		algo:  "auto", boolean: true, wantBool: true,
	},
	{
		name:  "nested definitions compose",
		db:    "s b m\nm a t",
		query: "ans()\nx y : $o{$i{b}a}",
		algo:  "vsf", boolean: true, wantBool: true,
	},
	{
		name:  "nested definition image reused elsewhere",
		db:    "s b m\nm a t\nu b v",
		query: "ans()\nx y : $o{$i{b}a}\nx2 y2 : $i",
		algo:  "vsf", boolean: true, wantBool: true,
	},
	{
		name:  "negated class uses database alphabet",
		db:    "u c v\nu a w",
		query: "ans(x, y)\nx y : [^ab]",
		algo:  "auto", boolean: false, wantCount: 1,
	},
	{
		name:  "mutually exclusive double definition (G4-style)",
		db:    "u a v\nw a z",
		query: "ans()\nx y : $z1{a}|$z1{b}b\nx2 y2 : $z1",
		algo:  "vsf", boolean: true, wantBool: true,
	},
	{
		name:  "bounded image: exact length boundary",
		db:    "s # m0\nm0 a m1\nm1 a m2\nm2 b m3\nm3 a m4\nm4 a m5\nm5 # t",
		query: "ans()\nx y : #$v{a+}b$v#",
		algo:  "bounded:2", boolean: true, wantBool: true,
	},
	{
		name:  "bounded image: bound too small",
		db:    "s # m0\nm0 a m1\nm1 a m2\nm2 b m3\nm3 a m4\nm4 a m5\nm5 # t",
		query: "ans()\nx y : #$v{a+}b$v#",
		algo:  "bounded:1", boolean: true, wantBool: false,
	},
	{
		name:  "epsilon path matches length-0 (node to itself)",
		db:    "u a v",
		query: "ans(x, y)\nx y : a*",
		algo:  "auto", boolean: false,
		// ε on both nodes (2) + the a-edge (1)
		wantCount: 3,
	},
	{
		name:  "variable image can span multiple symbols",
		db:    "s a m1\nm1 b m2\nm2 c t\nu a n1\nn1 b n2\nn2 c w",
		query: "ans()\nx y : $v{abc}\nx2 y2 : $v",
		algo:  "auto", boolean: true, wantBool: true,
	},
	{
		name:  "conjunction constrains shared endpoint",
		db:    "u a v\nu b v\nw a z",
		query: "ans(x)\nx y : a\nx y : b",
		algo:  "auto", boolean: false, wantCount: 1,
	},
	{
		name:  "self-loop edge with same variable twice in one label",
		db:    "u a u",
		query: "ans()\nx x : $v{a}$v",
		algo:  "auto", boolean: true, wantBool: true,
	},
	{
		name:  "optional variable occurrence",
		db:    "u a v",
		query: "ans()\nx y : $v{b}?a",
		algo:  "vsf", boolean: true, wantBool: true,
	},
	{
		name:  "wildcard dot respects alphabet",
		db:    "u q v",
		query: "ans(x, y)\nx y : .",
		algo:  "auto", boolean: false, wantCount: 1,
	},
	{
		name:  "star over classical inside definition",
		db:    "s a m1\nm1 a m2\nm2 b t\nu a n1\nn1 a n2\nn2 b w",
		query: "ans()\nx y : $v{a*b}\nx2 y2 : $v",
		algo:  "auto", boolean: true, wantBool: true,
	},
}

func TestConformance(t *testing.T) {
	for _, c := range conformance {
		c := c
		t.Run(c.name, func(t *testing.T) {
			db := graph.MustParse(c.db)
			q := cxrpq.MustParse(c.query)
			var (
				count int
				ok    bool
				err   error
			)
			switch {
			case c.algo == "auto":
				if c.boolean {
					ok, err = cxrpq.EvalBool(q, db)
				} else {
					var res interface{ Len() int }
					res, err = cxrpq.Eval(q, db)
					if err == nil {
						count = res.Len()
					}
				}
			case c.algo == "vsf":
				if c.boolean {
					ok, err = cxrpq.EvalVsfBool(q, db)
				} else {
					var res interface{ Len() int }
					res, err = cxrpq.EvalVsf(q, db)
					if err == nil {
						count = res.Len()
					}
				}
			case c.algo == "bounded:1":
				ok, err = cxrpq.EvalBoundedBool(q, db, 1)
			case c.algo == "bounded:2":
				ok, err = cxrpq.EvalBoundedBool(q, db, 2)
			default:
				t.Fatalf("unknown algo %q", c.algo)
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.boolean {
				if ok != c.wantBool {
					t.Fatalf("got %v, want %v", ok, c.wantBool)
				}
			} else if count != c.wantCount {
				t.Fatalf("got %d answers, want %d", count, c.wantCount)
			}
		})
	}
}

func TestUnionCXRPQ(t *testing.T) {
	db := graph.MustParse("u a v\nw b z")
	u := &cxrpq.Union{Members: []*cxrpq.Query{
		cxrpq.MustParse("ans(x, y)\nx y : $v{a}$v?"),
		cxrpq.MustParse("ans(x, y)\nx y : b"),
	}}
	res, err := u.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("union answers = %v", res.Sorted())
	}
	rb, err := u.EvalBounded(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Equal(res) {
		t.Fatal("bounded union should agree here")
	}
	if u.Size() <= 0 {
		t.Fatal("size must be positive")
	}
	bad := &cxrpq.Union{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty union must fail validation")
	}
	mixed := &cxrpq.Union{Members: []*cxrpq.Query{
		cxrpq.MustParse("ans(x)\nx y : a"),
		cxrpq.MustParse("ans(x, y)\nx y : a"),
	}}
	if err := mixed.Validate(); err == nil {
		t.Fatal("arity mismatch must fail validation")
	}
}
