package cxrpq_test

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// figure2G1 is G1 of Figure 2: v1 <-x{a|b}- u -(x|c)+-> v2 — in the paper
// the first arc points INTO v1 (v1 has a direct a- or b-predecessor u).
func figure2G1() *cxrpq.Query {
	return cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)+
`)
}

func TestFigure2G1(t *testing.T) {
	// u -a-> v1 and u -a-> m -c-> v2: v2 is a transitive a-or-c successor.
	db := graph.MustParse(`
u a v1
u a m
m c v2
w b v3
w b n
n b v4
w a v5
`)
	q := figure2G1()
	// G1 has $x under +, so it is not vstar-free; the paper (§1.4) notes its
	// image size is necessarily 1, so CXRPQ^≤1 semantics coincide with
	// unrestricted semantics.
	res, err := cxrpq.EvalBounded(q, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	v1, _ := db.Lookup("v1")
	v2, _ := db.Lookup("v2")
	v3, _ := db.Lookup("v3")
	v4, _ := db.Lookup("v4")
	v5, _ := db.Lookup("v5")
	if !res.Contains(pattern.Tuple{v1, v2}) {
		t.Errorf("x=a: (v1, v2) expected; got %v", res.Sorted())
	}
	if !res.Contains(pattern.Tuple{v3, v4}) {
		t.Errorf("x=b: (v3, v4) expected")
	}
	// x=b via w but path to v5 uses 'a', which is neither x=b nor c:
	if res.Contains(pattern.Tuple{v3, v5}) {
		t.Errorf("(v3, v5) must not match: a ∉ {x=b, c}")
	}
}

func TestFragmentClassification(t *testing.T) {
	// Paper §1.4 / Figure 2: G4 ∈ CXRPQ^vsf, G2 ∈ CXRPQ^vsf,fl,
	// G3 is not vstar-free, G1 is vstar-free (single-symbol images).
	g1 := figure2G1()
	if g1.IsVStarFree() {
		t.Error("G1 has $x under +: not vstar-free")
	}
	if g1.Fragment() != "CXRPQ" {
		t.Errorf("G1 fragment = %s", g1.Fragment())
	}
	// G2: x{aa|b} on one edge, y{[^ab]*} on another, (x|y) on the third
	g2 := cxrpq.MustParse(`
ans(v1, v2, v3)
v1 v2 : $x{aa|b}
v2 v3 : $y{[^ab]*}
v3 v1 : $x|$y
`)
	if !g2.IsVStarFreeFlat() {
		t.Error("G2 should be in CXRPQ^vsf,fl")
	}
	// G3: x{..+}…(x|y)+ uses variables under +: not vstar-free
	g3 := cxrpq.MustParse(`
ans(v1, v2)
v1 v2 : $x{..+}
v2 v1 : $y{..+}
v1 w : ($x|$y)+
v2 w : ($x|$y)+
`)
	if g3.IsVStarFree() {
		t.Error("G3 must not be vstar-free")
	}
	// G4 of Figure 2: y referenced inside definitions of x and z: vsf but
	// not flat.
	g4 := cxrpq.MustParse(`
ans(v1, v2)
v1 v2 : a*($x{($y a*)|(b*$y)})$z
w v1 : b*($y{c*|d*})
w v2 : $z{$x|$y}|$z{a*}
`)
	if !g4.IsVStarFree() {
		t.Error("G4 should be vstar-free")
	}
	if g4.IsVStarFreeFlat() {
		t.Error("G4 is not flat: y is referenced inside definitions of x and z")
	}
	if g4.Fragment() != "CXRPQ^vsf" {
		t.Errorf("G4 fragment = %s", g4.Fragment())
	}
}

func TestValidateConjunctive(t *testing.T) {
	// Example 3: (α2, α4) is not a conjunctive xregex (α2α4 not sequential:
	// both define x1).
	if _, err := cxrpq.Parse(`
ans()
a b : $x1{(a|b)*}$x3{c*}b$x3
b c : $x4{a*}b$x4($x1{$x2 a})
`); err == nil {
		t.Fatal("two definitions of x1 across components must be rejected")
	}
	// (α3, α4) is a conjunctive xregex.
	if _, err := cxrpq.Parse(`
ans()
a b : $x2*a*$x1
b c : $x4{a*}b$x4($x1{$x2 a})
`); err != nil {
		t.Fatalf("(α3, α4) should validate: %v", err)
	}
	// cyclic variable relation across components
	if _, err := cxrpq.Parse(`
ans()
a b : $x{$y a}
b c : $y{$x b}
`); err == nil {
		t.Fatal("cyclic ≺ must be rejected")
	}
}

// Example 3 of the paper: (w1,w2,w3)=(aab, bbacbc, aa) is NOT a conjunctive
// match for (α1,α2,α3), but (abb, abccbcc, ababaaab) IS (vmap (ab,ab,cc)).
func TestMatchTuplePaperExample3(t *testing.T) {
	c := cxrpq.CXRE{
		mustRx(t, "$x2{$x1|a*}b"),
		mustRx(t, "$x1{(a|b)*}$x3{c*}b$x3"),
		mustRx(t, "$x2*a*$x1"),
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sigma := []rune("abc")
	if cxrpq.MatchTupleBool(c, []string{"aab", "bbacbc", "aa"}, sigma) {
		t.Fatal("(aab, bbacbc, aa) must not be a conjunctive match")
	}
	vm, ok := cxrpq.MatchTuple(c, []string{"abb", "abccbcc", "ababaaab"}, sigma)
	if !ok {
		t.Fatal("(abb, abccbcc, ababaaab) should be a conjunctive match")
	}
	if vm["x1"] != "ab" || vm["x2"] != "ab" || vm["x3"] != "cc" {
		t.Fatalf("vmap = %v, want (ab, ab, cc)", vm)
	}
}

// §3.1 example: γ1 = (x{a*}∨b*)y, γ2 = y{xaxb}by* — (aaaaaab, aabab…) etc.
func TestMatchTupleSection31(t *testing.T) {
	c := cxrpq.CXRE{
		mustRx(t, "($x{a*}|b*)$y"),
		mustRx(t, "$y{$x a$x b}b$y*"),
	}
	sigma := []rune("ab")
	// x=aa, y=aab+aab? paper: u1 gives (w1,w2) = (aa·a⁵b, a⁵b·b·(a⁵b)²)
	w1 := "aa" + "aaaaab"
	w2 := "aaaaab" + "b" + "aaaaab" + "aaaaab"
	if !cxrpq.MatchTupleBool(c, []string{w1, w2}, sigma) {
		t.Fatal("paper's conjunctive match rejected")
	}
	// (a#aa, a#a³bba³b) with differing y images is NOT a match:
	if cxrpq.MatchTupleBool(c, []string{"aa", "aaabbaaab"}, sigma) {
		t.Fatal("inconsistent variable mapping accepted")
	}
}

func TestEvalSimpleAgainstOracle(t *testing.T) {
	db := graph.MustParse(`
u a m1
m1 b v
u b m2
m2 b v
v a u
`)
	// simple conjunctive xregex: x{(a|b)b} shared across two edges
	q := cxrpq.MustParse(`
ans(s, t, s2, t2)
s t : $x{(a|b)b}
s2 t2 : $x
`)
	if !q.IsSimple() {
		t.Fatal("query should be simple")
	}
	res, err := cxrpq.EvalSimple(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	if res.Len() == 0 {
		t.Fatal("expected matches")
	}
}

func TestEvalVsfAgainstOracle(t *testing.T) {
	db := graph.MustParse(`
u a v1
u a m
m c v2
w b v3
w c n
n c v4
`)
	// vstar-free with alternation over variables: (x|c) on second edge
	q := cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)($x|c)?
`)
	if !q.IsVStarFree() || q.IsSimple() {
		t.Fatalf("fragment = %s", q.Fragment())
	}
	res, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
}

func TestEvalVsfForcedEpsilon(t *testing.T) {
	// x is defined in one branch of edge 1; if the ε/b branch is taken,
	// references of x elsewhere must be forced to ε.
	db := graph.MustParse(`
u b v
u c w
`)
	q := cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a}|b
u v2 : $x c|c
`)
	res, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	v, _ := db.Lookup("v")
	w, _ := db.Lookup("w")
	// branch b chosen ⇒ x = ε ⇒ second edge must match εc = c: (v, w) holds
	if !res.Contains(pattern.Tuple{v, w}) {
		t.Fatalf("(v, w) expected in %v", res.Sorted())
	}
}

func TestEvalBoundedAgainstOracle(t *testing.T) {
	db := graph.MustParse(`
u a m1
m1 a v
u b m2
m2 b v
v c u
`)
	// not vstar-free: x under +
	q := cxrpq.MustParse(`
ans(s, t)
s t : $x{aa|bb}
t s : c$x*c|c
`)
	if q.IsVStarFree() {
		t.Fatal("query should not be vstar-free")
	}
	res, err := cxrpq.EvalBounded(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range want.Sorted() {
		if !res.Contains(tup) {
			t.Errorf("bounded eval missing %v", tup)
		}
	}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	if !res.Contains(pattern.Tuple{u, v}) {
		t.Fatalf("(u, v) expected (x=aa, second edge c branch): %v", res.Sorted())
	}
}

func TestEvalBoundedRespectsBound(t *testing.T) {
	// Image x = "aaa" needs k ≥ 3. Anchor the path with '#' markers so no
	// shorter sub-path can match.
	q := cxrpq.MustParse(`
ans()
s t : #$x{a+}b$x#
`)
	db2 := graph.New()
	s := db2.Node("s")
	tn := db2.Node("t")
	db2.AddPath(s, "#aaabaaa#", tn)
	ok2, err := cxrpq.EvalBoundedBool(q, db2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Fatal("k=2 must not admit image aaa")
	}
	ok3, err := cxrpq.EvalBoundedBool(q, db2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok3 {
		t.Fatal("k=3 should admit image aaa")
	}
}

func TestEvalLogAndAny(t *testing.T) {
	db := graph.New()
	s := db.Node("s")
	tn := db.Node("t")
	db.AddPath(s, "aabaa", tn)
	q := cxrpq.MustParse("ans()\nx y : $v{a+}b$v")
	ok, err := cxrpq.EvalLogBool(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("log bound (≥3) should admit image aa")
	}
	res, capped, err := cxrpq.EvalAny(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("EvalAny should find the match")
	}
	if !capped {
		t.Fatal("paths longer than 2 exist; capped should be true")
	}
}

func TestInstantiateCRPQ(t *testing.T) {
	q := cxrpq.MustParse(`
ans(s, t)
s t : $x{a|b}c
t s : $x+
`)
	inst, err := q.InstantiateCRPQ(map[string]string{"x": "a"}, []rune("abc"))
	if err != nil {
		t.Fatal(err)
	}
	db := graph.MustParse(`
s a m
m c t
t a s
`)
	res, err := inst.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	si, _ := db.Lookup("s")
	ti, _ := db.Lookup("t")
	if !res.Contains(pattern.Tuple{si, ti}) {
		t.Fatalf("instantiated CRPQ should match: %v", res.Sorted())
	}
	// x=b yields no match on this database
	inst2, err := q.InstantiateCRPQ(map[string]string{"x": "b"}, []rune("abc"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := inst2.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 0 {
		t.Fatalf("x=b should not match: %v", res2.Sorted())
	}
}

func TestEvalDispatch(t *testing.T) {
	db := graph.MustParse("u a v")
	crpqQ := cxrpq.MustParse("ans(x, y)\nx y : a+")
	res, err := cxrpq.Eval(crpqQ, db)
	if err != nil || res.Len() != 1 {
		t.Fatalf("CRPQ dispatch failed: %v %v", res, err)
	}
	nonVsf := cxrpq.MustParse("ans()\nx y : $v{a}$v*")
	if _, err := cxrpq.Eval(nonVsf, db); err == nil {
		t.Fatal("non-vsf query must be rejected by Eval")
	}
	if _, err := cxrpq.EvalBool(nonVsf, db); err == nil {
		t.Fatal("non-vsf query must be rejected by EvalBool")
	}
}

func mustRx(t *testing.T, src string) xregex.Node {
	t.Helper()
	return xregex.MustParse(src)
}
