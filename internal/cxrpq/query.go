// Package cxrpq implements the paper's primary contribution: conjunctive
// xregex path queries (CXRPQ, Definitions 4 and 5) and their fragments
// CXRPQ^vsf (§5), CXRPQ^vsf,fl (§5.3), CXRPQ^≤k (§6) and CXRPQ^log (§6.2),
// together with the evaluation algorithms behind Theorems 2, 5, 6 and
// Corollary 1, the normal-form construction of Lemmas 4–6 and 8, and the
// expressiveness translations of Lemmas 12–14 (Figure 5).
package cxrpq

import (
	"fmt"

	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// CXRE is a conjunctive xregex ᾱ = (α1, …, αm) (Definition 4): a tuple of
// xregex such that α1·α2·…·αm is an acyclic, sequential xregex.
type CXRE []xregex.Node

// Validate checks Definition 4: the concatenation of the components must be
// a (sequential) xregex with acyclic variable relation ≺.
func (c CXRE) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("cxrpq: empty conjunctive xregex")
	}
	for i, n := range c {
		if err := xregex.ValidateWellFormed(n); err != nil {
			return fmt.Errorf("cxrpq: component %d: %v", i, err)
		}
	}
	cat := &xregex.Cat{Kids: append([]xregex.Node(nil), c...)}
	if !xregex.IsSequential(cat) {
		return fmt.Errorf("cxrpq: α1…α%d is not sequential (some variable may be defined twice)", len(c))
	}
	if !xregex.IsAcyclic(c...) {
		return fmt.Errorf("cxrpq: variable relation ≺ is cyclic")
	}
	return nil
}

// DefinedVars returns the variables with a definition in some component.
func (c CXRE) DefinedVars() map[string]bool {
	out := map[string]bool{}
	for _, n := range c {
		for v := range xregex.DefinedVars(n) {
			out[v] = true
		}
	}
	return out
}

// Vars returns all variables of the tuple.
func (c CXRE) Vars() map[string]bool {
	out := map[string]bool{}
	for _, n := range c {
		for v := range xregex.Vars(n) {
			out[v] = true
		}
	}
	return out
}

// FreeVars returns the variables that have no definition in any component;
// per the ⟨γ⟩_int semantics of §3.1 they receive dummy definitions x{Σ*}
// and thus range over arbitrary (shared) words.
func (c CXRE) FreeVars() map[string]bool {
	defined := c.DefinedVars()
	out := map[string]bool{}
	for v := range c.Vars() {
		if !defined[v] {
			out[v] = true
		}
	}
	return out
}

// Size returns |ᾱ| = Σ |αi|.
func (c CXRE) Size() int {
	s := 0
	for _, n := range c {
		s += xregex.Size(n)
	}
	return s
}

// IsVStarFree reports whether every component is vstar-free (§5).
func (c CXRE) IsVStarFree() bool {
	for _, n := range c {
		if !xregex.IsVStarFree(n) {
			return false
		}
	}
	return true
}

// IsSimple reports whether every component is simple (§5).
func (c CXRE) IsSimple() bool {
	for _, n := range c {
		if !xregex.IsSimple(n) {
			return false
		}
	}
	return true
}

// IsClassical reports whether no component uses variables (a CRPQ tuple).
func (c CXRE) IsClassical() bool {
	for _, n := range c {
		if !xregex.IsClassical(n) {
			return false
		}
	}
	return true
}

// FlatVars reports whether every variable is flat (§5.3): its definition is
// basic, or it has no reference inside any other definition.
func (c CXRE) FlatVars() bool {
	nodes := []xregex.Node(c)
	for v := range c.Vars() {
		flat := true
		for _, body := range xregex.DefBodies(v, nodes...) {
			if !xregex.IsBasicDef(body) {
				flat = false
				break
			}
		}
		if flat {
			continue
		}
		if xregex.RefInsideAnyDef(v, nodes...) {
			return false
		}
	}
	return true
}

// Alphabet returns the terminal symbols used by the tuple.
func (c CXRE) Alphabet() []rune { return xregex.AlphabetOf([]xregex.Node(c)...) }

// Clone returns a deep copy.
func (c CXRE) Clone() CXRE {
	out := make(CXRE, len(c))
	for i, n := range c {
		out[i] = xregex.Clone(n)
	}
	return out
}

// Strings renders each component.
func (c CXRE) Strings() []string {
	out := make([]string, len(c))
	for i, n := range c {
		out[i] = xregex.String(n)
	}
	return out
}

// Query is a CXRPQ (Definition 5): a conjunctive path query whose edge
// labels, read in edge order, form a conjunctive xregex.
type Query struct {
	Pattern *pattern.Graph
}

// New validates and wraps a pattern as a CXRPQ.
func New(g *pattern.Graph) (*Query, error) {
	q := &Query{Pattern: g}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Parse parses the textual query format into a CXRPQ.
func Parse(src string) (*Query, error) {
	g, err := pattern.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return New(g)
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks the pattern and the conjunctive xregex conditions.
func (q *Query) Validate() error {
	if err := q.Pattern.Validate(); err != nil {
		return err
	}
	if len(q.Pattern.Edges) == 0 {
		return fmt.Errorf("cxrpq: query has no edges")
	}
	return q.CXRE().Validate()
}

// CXRE returns the conjunctive xregex of the query (edge labels in order).
func (q *Query) CXRE() CXRE { return CXRE(q.Pattern.Labels()) }

// Size returns |q|.
func (q *Query) Size() int { return q.Pattern.Size() }

// IsVStarFree reports q ∈ CXRPQ^vsf.
func (q *Query) IsVStarFree() bool { return q.CXRE().IsVStarFree() }

// IsVStarFreeFlat reports q ∈ CXRPQ^vsf,fl (§5.3).
func (q *Query) IsVStarFreeFlat() bool {
	c := q.CXRE()
	return c.IsVStarFree() && c.FlatVars()
}

// IsSimple reports whether the conjunctive xregex is simple.
func (q *Query) IsSimple() bool { return q.CXRE().IsSimple() }

// IsCRPQ reports whether the query is variable-free.
func (q *Query) IsCRPQ() bool { return q.CXRE().IsClassical() }

// Fragment returns a human-readable name of the smallest syntactic fragment
// containing q, for reporting.
func (q *Query) Fragment() string {
	switch {
	case q.IsCRPQ():
		return "CRPQ"
	case q.IsSimple():
		return "CXRPQ (simple)"
	case q.IsVStarFreeFlat():
		return "CXRPQ^vsf,fl"
	case q.IsVStarFree():
		return "CXRPQ^vsf"
	default:
		return "CXRPQ"
	}
}
