package cxrpq_test

// MVCC snapshot semantics of the session layer: Session.Fork carries the
// cache epoch onto a successor graph.Snapshot view without touching the
// receiver, so readers pinned to the old session/view never observe the
// mutation — while the forked session answers exactly like a fresh bind on
// the new view, at delta-maintenance cost for insert-only windows.

import (
	"sync"
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/workload"
)

func TestSessionForkSnapshotIsolation(t *testing.T) {
	db := graph.MustParse("u a v\nu a w\nv b w\nw a u\n")
	q := cxrpq.MustParse("ans(x, y)\nx y : $w{a|b}\ny z : $w+\n")
	plan := cxrpq.MustPrepare(q)
	const k = 1

	snap1 := db.Snapshot()
	s1 := plan.Bind(snap1.DB())
	base, err := s1.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}

	// Insert-only write: fork onto the new snapshot.
	if _, err := db.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{
		{From: "v", Label: 'a', To: "u"}, {From: "x", Label: 'b', To: "u"},
	}}); err != nil {
		t.Fatal(err)
	}
	snap2 := db.Snapshot()
	s2 := s1.Fork(snap2.DB())

	// The old session, pinned to the old view, answers as before.
	again, err := s1.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(base) {
		t.Fatal("pinned session observed a later revision")
	}
	// The fork agrees with a fresh bind on the new view.
	want, err := plan.Bind(snap2.DB()).EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("forked session diverged: %d tuples, want %d", got.Len(), want.Len())
	}
	if got.Equal(base) {
		t.Fatal("test vacuous: the delta did not change the answer")
	}
	st := s2.Stats()
	if st.Maint.DeltaApplies != 1 || st.Maint.FullRebuilds != 1 {
		t.Fatalf("insert-only fork should delta-maintain (applies=1, rebuilds=1), got %+v", st.Maint)
	}
	if st.Rel.Retained+st.Rel.Extended == 0 {
		t.Fatalf("fork maintained no relation entries: %+v", st.Rel)
	}

	// A removal window cannot be maintained: the next fork rebuilds.
	if _, err := db.ApplyDelta(graph.Delta{Del: []graph.DeltaEdge{
		{From: "x", Label: 'b', To: "u"},
	}}); err != nil {
		t.Fatal(err)
	}
	snap3 := db.Snapshot()
	s3 := s2.Fork(snap3.DB())
	want3, err := plan.Bind(snap3.DB()).EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := s3.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Equal(want3) {
		t.Fatal("post-removal fork diverged from a fresh bind")
	}
	if st3 := s3.Stats(); st3.Maint.FullRebuilds != 2 {
		t.Fatalf("removal fork should full-rebuild, got %+v", st3.Maint)
	}

	// Forking without an intervening mutation shares the epoch.
	s4 := s3.Fork(snap3.DB())
	if s4.Stats().ResultHits == 0 {
		if _, err := s4.EvalBounded(k); err != nil {
			t.Fatal(err)
		}
		if s4.Stats().ResultHits == 0 {
			t.Fatal("same-revision fork did not share the result cache")
		}
	}
}

// Differential sweep: a fork chain across a MutationStream delta sequence
// must answer exactly like a fresh session on every snapshot.
func TestSessionForkMutationStreamDifferential(t *testing.T) {
	db, deltas := workload.MutationStream(5, 40, 12, 4)
	q := cxrpq.MustParse("ans(x, y)\nx y : $w{a|b}\ny z : $w+\n")
	plan := cxrpq.MustPrepare(q)
	const k = 1

	sess := plan.Bind(db.Snapshot().DB())
	if _, err := sess.EvalBounded(k); err != nil {
		t.Fatal(err)
	}
	for i, delta := range deltas {
		if _, err := db.ApplyDelta(delta); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		view := db.Snapshot().DB()
		sess = sess.Fork(view)
		got, err := sess.EvalBounded(k)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want, err := plan.Bind(view).EvalBounded(k)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("step %d: fork chain diverged: %d tuples, want %d", i, got.Len(), want.Len())
		}
	}
	if st := sess.Stats(); st.Maint.DeltaApplies == 0 {
		t.Fatalf("MutationStream deltas are insert-only; expected delta maintenance, got %+v", st.Maint)
	}
}

// Readers keep evaluating on their pinned sessions while the writer applies
// deltas and forks — under -race this proves reads never synchronize with
// the write path.
func TestSessionForkConcurrentReaders(t *testing.T) {
	db, deltas := workload.MutationStream(7, 30, 8, 3)
	q := cxrpq.MustParse("ans(x, y)\nx y : a|b\n")
	plan := cxrpq.MustPrepare(q)

	sess := plan.Bind(db.Snapshot().DB())
	var wg sync.WaitGroup
	for i, delta := range deltas {
		cur := sess
		wantLen := -1
		wg.Add(1)
		go func(s *cxrpq.Session, step int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				res, err := s.Eval()
				if err != nil {
					t.Errorf("step %d: %v", step, err)
					return
				}
				if wantLen == -1 {
					wantLen = res.Len()
				} else if res.Len() != wantLen {
					t.Errorf("step %d: pinned session answer drifted %d -> %d", step, wantLen, res.Len())
					return
				}
			}
		}(cur, i)
		if _, err := db.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		sess = sess.Fork(db.Snapshot().DB())
	}
	wg.Wait()
	final, err := sess.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Bind(db.Snapshot().DB()).Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(want) {
		t.Fatal("final forked session diverged")
	}
}
