package cxrpq_test

// Differential property for the cost-based planning layer: the
// planner-chosen join orders (plus the semijoin reduction) must produce
// exactly the tuple sets of the fixed structural order, across randomized
// workloads, on every evaluation path — fragment-dispatched Eval, the
// bounded engine, and the Check views of both. planner.SetEnabled(false)
// reverts every consumer to the structural heuristic, which is the
// pre-planner behavior; any divergence is a planner bug by construction.

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/workload"
)

// plannerDiffSeed compares structural vs cost-based evaluation for one
// random (query, graph, k) triple.
func plannerDiffSeed(t *testing.T, seed int64) {
	t.Helper()
	r := workload.NewRNG(seed)
	finite := r.Intn(3) != 0
	q := workload.RandomQuery(r, finite)
	nodes := 3 + r.Intn(4)
	edges := nodes + r.Intn(nodes+4)
	db := workload.Random(seed^0x5eed, nodes, edges, "ab")
	k := 1
	if !finite && r.Intn(2) == 0 {
		k = 2
	}

	type outcome struct {
		bounded *pattern.TupleSet
		eval    *pattern.TupleSet // nil when the fragment has no Eval
	}
	run := func(enabled bool) outcome {
		prev := planner.SetEnabled(enabled)
		defer planner.SetEnabled(prev)
		var o outcome
		var err error
		o.bounded, err = cxrpq.EvalBounded(q, db, k)
		if err != nil {
			t.Fatalf("seed %d (planner=%v): EvalBounded: %v\nquery:\n%s", seed, enabled, err, q.Pattern)
		}
		if q.CXRE().IsVStarFree() {
			o.eval, err = cxrpq.Eval(q, db)
			if err != nil {
				t.Fatalf("seed %d (planner=%v): Eval: %v\nquery:\n%s", seed, enabled, err, q.Pattern)
			}
		}
		return o
	}
	structural := run(false)
	costBased := run(true)

	if !costBased.bounded.Equal(structural.bounded) {
		t.Fatalf("seed %d: EvalBounded diverged: planner %d tuples, structural %d\nquery:\n%s",
			seed, costBased.bounded.Len(), structural.bounded.Len(), q.Pattern)
	}
	if structural.eval != nil && !costBased.eval.Equal(structural.eval) {
		t.Fatalf("seed %d: Eval diverged: planner %d tuples, structural %d\nquery:\n%s",
			seed, costBased.eval.Len(), structural.eval.Len(), q.Pattern)
	}

	// Check paths: answers accept, an off-answer probe agrees both ways.
	checkBoth := func(tu pattern.Tuple, want bool) {
		for _, enabled := range []bool{false, true} {
			prev := planner.SetEnabled(enabled)
			ok, err := cxrpq.CheckBounded(q, db, k, tu)
			planner.SetEnabled(prev)
			if err != nil {
				t.Fatalf("seed %d (planner=%v): CheckBounded(%v): %v", seed, enabled, tu, err)
			}
			if ok != want {
				t.Fatalf("seed %d (planner=%v): CheckBounded(%v)=%v, want %v\nquery:\n%s",
					seed, enabled, tu, ok, want, q.Pattern)
			}
			if q.CXRE().IsVStarFree() {
				prev := planner.SetEnabled(enabled)
				okE, err := cxrpq.Check(q, db, tu)
				planner.SetEnabled(prev)
				if err != nil {
					t.Fatalf("seed %d (planner=%v): Check(%v): %v", seed, enabled, tu, err)
				}
				// Unrestricted Check may accept more than the ≤k view on
				// general seeds; on finite seeds the two coincide for answers.
				if finite && okE != want {
					t.Fatalf("seed %d (planner=%v): Check(%v)=%v, want %v\nquery:\n%s",
						seed, enabled, tu, okE, want, q.Pattern)
				}
			}
		}
	}
	if len(q.Pattern.Out) > 0 {
		answers := structural.bounded.Sorted()
		for i, tu := range answers {
			if i >= 2 {
				break
			}
			checkBoth(tu, true)
		}
		// Probe for a non-answer constant tuple.
		probe := make(pattern.Tuple, len(q.Pattern.Out))
		for v := 0; v < db.NumNodes(); v++ {
			for i := range probe {
				probe[i] = v
			}
			if !structural.bounded.Contains(probe) {
				checkBoth(probe, false)
				break
			}
		}
	}
}

func TestPlannerDifferential(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 20
	}
	for seed := int64(0); seed < n; seed++ {
		plannerDiffSeed(t, seed)
	}
}

// TestPlannerDifferentialSkewed pins the skew scenario the planner exists
// for: a dense hub atom plus selective atoms, evaluated both ways on the
// classical and bounded paths.
func TestPlannerDifferentialSkewed(t *testing.T) {
	db := workload.SkewedJoin(10)
	for _, src := range []string{
		"ans(x, z)\nx y : h\ny z : s",
		"ans(x)\nx y : h\ny z : s\nz w : s",
		"ans(x, z)\nx y : $w{h}\ny z : s$w?",
	} {
		q := cxrpq.MustParse(src)
		results := map[bool]*pattern.TupleSet{}
		for _, enabled := range []bool{false, true} {
			prev := planner.SetEnabled(enabled)
			res, err := cxrpq.EvalBounded(q, db, 1)
			planner.SetEnabled(prev)
			if err != nil {
				t.Fatalf("%q (planner=%v): %v", src, enabled, err)
			}
			results[enabled] = res
		}
		if !results[true].Equal(results[false]) {
			t.Fatalf("%q: planner %d tuples, structural %d", src, results[true].Len(), results[false].Len())
		}
	}
}
