package cxrpq_test

// Differential properties for the planner-v2 rewrites (PR 9): the
// containment-based minimization pass and the acyclicity-aware Yannakakis
// join program must be observationally invisible — across randomized
// workloads, every evaluation path must produce exactly the tuple sets of
// (a) the structural pre-planner baseline and (b) the v1 planner with both
// rewrites switched off, including under interleaved ApplyDelta mutations.
// The /plan report assertions pin the new explain fields the server
// surfaces.

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/workload"
)

// setV2 installs a full planner knob configuration and returns a restore
// func. floor/gain use the planner knob conventions (floor: 0 forces, <0
// disables; gain: 0 makes every acyclic join above the floor eligible).
func setV2(enabled, minimize, yannakakis bool, floor, gain float64) func() {
	e := planner.SetEnabled(enabled)
	m := planner.SetMinimize(minimize)
	y := planner.SetYannakakis(yannakakis)
	fl := planner.SetSemijoinFloor(floor)
	g := planner.SetYannakakisGain(gain)
	return func() {
		planner.SetYannakakisGain(g)
		planner.SetSemijoinFloor(fl)
		planner.SetYannakakis(y)
		planner.SetMinimize(m)
		planner.SetEnabled(e)
	}
}

// plannerV2DiffSeed compares three configurations on one random
// (query, graph, k) triple: structural baseline (planner off), planner v1
// (rewrites off), and planner v2 forced (minimization on, Yannakakis
// gates dropped to zero so every acyclic join takes the semijoin
// program).
func plannerV2DiffSeed(t *testing.T, seed int64) {
	t.Helper()
	r := workload.NewRNG(seed)
	finite := r.Intn(3) != 0
	q := workload.RandomQuery(r, finite)
	nodes := 3 + r.Intn(4)
	edges := nodes + r.Intn(nodes+4)
	db := workload.Random(seed^0x9a7, nodes, edges, "ab")
	k := 1
	if !finite && r.Intn(2) == 0 {
		k = 2
	}

	type outcome struct {
		bounded *pattern.TupleSet
		eval    *pattern.TupleSet // nil when the fragment has no Eval
	}
	run := func(name string, config func() func()) outcome {
		restore := config()
		defer restore()
		var o outcome
		var err error
		o.bounded, err = cxrpq.EvalBounded(q, db, k)
		if err != nil {
			t.Fatalf("seed %d (%s): EvalBounded: %v\nquery:\n%s", seed, name, err, q.Pattern)
		}
		if q.CXRE().IsVStarFree() {
			o.eval, err = cxrpq.Eval(q, db)
			if err != nil {
				t.Fatalf("seed %d (%s): Eval: %v\nquery:\n%s", seed, name, err, q.Pattern)
			}
		}
		return o
	}

	structural := run("structural", func() func() { return setV2(false, false, false, 0, 0) })
	v1 := run("planner-v1", func() func() {
		return setV2(true, false, false, planner.DefaultSemijoinFloor, planner.DefaultYannakakisGain)
	})
	v2 := run("planner-v2", func() func() { return setV2(true, true, true, 0, 0) })

	for _, c := range []struct {
		name string
		got  outcome
	}{{"planner-v1", v1}, {"planner-v2", v2}} {
		if !c.got.bounded.Equal(structural.bounded) {
			t.Fatalf("seed %d: EvalBounded diverged (%s %d tuples, structural %d)\nquery:\n%s",
				seed, c.name, c.got.bounded.Len(), structural.bounded.Len(), q.Pattern)
		}
		if structural.eval != nil && !c.got.eval.Equal(structural.eval) {
			t.Fatalf("seed %d: Eval diverged (%s %d tuples, structural %d)\nquery:\n%s",
				seed, c.name, c.got.eval.Len(), structural.eval.Len(), q.Pattern)
		}
	}
}

func TestPlannerV2Differential(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 15
	}
	for seed := int64(0); seed < n; seed++ {
		plannerV2DiffSeed(t, seed)
	}
}

// TestPlannerV2DifferentialWithDeltas interleaves session mutations with
// evaluations: after every ApplyDelta, the v2-forced session must agree
// with a fresh v2-disabled bind on the mutated database.
func TestPlannerV2DifferentialWithDeltas(t *testing.T) {
	db, deltas := workload.MutationStream(3, 40, 6, 4)
	q := cxrpq.MustParse("ans(x, z)\nx y : a\nx y : a|b\ny z : b+")
	plan := cxrpq.MustPrepare(q)

	restore := setV2(true, true, true, 0, 0)
	defer restore()
	sess := plan.Bind(db)
	for step, delta := range deltas {
		if _, err := sess.ApplyDelta(delta); err != nil {
			t.Fatalf("step %d: ApplyDelta: %v", step, err)
		}
		got, err := sess.EvalBounded(1)
		if err != nil {
			t.Fatalf("step %d: EvalBounded (v2): %v", step, err)
		}
		inner := setV2(true, false, false, -1, 0) // rewrites and semijoins all off
		want, werr := plan.Bind(sess.DB()).EvalBounded(1)
		inner()
		if werr != nil {
			t.Fatalf("step %d: EvalBounded (baseline): %v", step, werr)
		}
		if !got.Equal(want) {
			t.Fatalf("step %d: v2 session %d tuples, baseline %d", step, got.Len(), want.Len())
		}
	}
}

// TestPlanReportV2Fields pins the planner-v2 explain surface served by
// cxrpq-serve /plan: minimized atoms, acyclicity, free-connexness, the
// join tree and the chosen strategy.
func TestPlanReportV2Fields(t *testing.T) {
	db := workload.Random(2, 20, 60, "ab")
	report := func(src string, opts cxrpq.SessionOptions) *cxrpq.PlanReport {
		t.Helper()
		rep, err := cxrpq.MustPrepare(cxrpq.MustParse(src)).BindOpts(db, opts).PlanReport()
		if err != nil {
			t.Fatalf("%q: PlanReport: %v", src, err)
		}
		return rep
	}
	restore := setV2(true, true, true, 0, 0)
	defer restore()

	t.Run("redundant acyclic chain", func(t *testing.T) {
		rep := report("ans(x, z)\nx y : a\nx y : a|b\ny z : a", cxrpq.SessionOptions{})
		if len(rep.MinimizedAtoms) != 1 || rep.MinimizedAtoms[0] != 1 {
			t.Fatalf("MinimizedAtoms = %v, want [1] (the widened a|b atom)", rep.MinimizedAtoms)
		}
		if !rep.Acyclic {
			t.Fatal("chain reported cyclic")
		}
		if rep.FreeConnex {
			t.Fatal("ans(x, z) over a path must not be free-connex (head closes a cycle)")
		}
		if len(rep.JoinTree) != 2 {
			t.Fatalf("JoinTree has %d nodes, want 2 kept atoms", len(rep.JoinTree))
		}
		if rep.Strategy != "yannakakis" {
			t.Fatalf("Strategy = %q, want yannakakis under forced gates", rep.Strategy)
		}
	})
	t.Run("free-connex star", func(t *testing.T) {
		rep := report("ans(x)\nx y1 : a\nx y2 : b", cxrpq.SessionOptions{})
		if !rep.Acyclic || !rep.FreeConnex {
			t.Fatalf("Acyclic=%v FreeConnex=%v, want both true", rep.Acyclic, rep.FreeConnex)
		}
	})
	t.Run("cyclic triangle", func(t *testing.T) {
		rep := report("ans(x)\nx y : a\ny z : a\nz x : b", cxrpq.SessionOptions{})
		if rep.Acyclic || len(rep.JoinTree) != 0 {
			t.Fatalf("Acyclic=%v JoinTree=%v, want cyclic with no tree", rep.Acyclic, rep.JoinTree)
		}
		if rep.Strategy != "backtracking" {
			t.Fatalf("Strategy = %q, want backtracking", rep.Strategy)
		}
	})
	t.Run("session floor disables", func(t *testing.T) {
		rep := report("ans(x, z)\nx y : a\ny z : a", cxrpq.SessionOptions{SemijoinCostFloor: -1})
		if !rep.Acyclic {
			t.Fatal("chain reported cyclic")
		}
		if rep.Strategy != "backtracking" {
			t.Fatalf("Strategy = %q, want backtracking with the session floor negative", rep.Strategy)
		}
	})
}
