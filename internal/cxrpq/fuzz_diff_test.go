package cxrpq_test

// Randomized differential fuzz harness for the prepared-query subsystem:
// every seed generates a random small graph (internal/workload) and a
// random CXRPQ (workload.RandomQuery) and asserts that Plan/Session
// evaluation agrees with the literal Theorem 6 rendering EvalBoundedNaive
// — and, on finite-language seeds, exactly with the brute-force
// conjunctive-match oracle. Finite-mode queries are constructed so that no
// matched edge word exceeds workload.RandomQueryMaxWord and no image
// exceeds workload.RandomQueryMaxImage, hence oracle(MaxWord) computes the
// exact unrestricted semantics and must coincide with the ≤k semantics for
// k ≥ MaxImage; general-mode queries (repetition operators) are compared
// against the naive engine on full tuple sets and against the oracle by
// containment.
//
// TestFuzzCorpus replays a fixed list of seeds (including historically
// tricky shapes) so CI exercises the corpus deterministically even with
// -short; TestFuzzDiffRandom sweeps a larger randomized range; and
// FuzzPreparedDiff exposes the same property to `go test -fuzz`.

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// diffSeed runs the full differential check for one seed, failing t with
// the query text on any disagreement or infrastructure error.
func diffSeed(t *testing.T, seed int64) {
	t.Helper()
	r := workload.NewRNG(seed)
	finite := r.Intn(4) != 0 // 3/4 exact three-way seeds, 1/4 general-mode
	q := workload.RandomQuery(r, finite)
	nodes := 3 + r.Intn(3)
	edges := nodes + r.Intn(nodes+3)
	db := workload.Random(seed^0x7e7e, nodes, edges, "ab")
	k := 1
	if !finite && r.Intn(2) == 0 {
		k = 2
	}

	plan, err := cxrpq.Prepare(q)
	if err != nil {
		t.Fatalf("seed %d: Prepare: %v\nquery:\n%s", seed, err, q.Pattern)
	}
	sess := plan.Bind(db)
	got, err := sess.EvalBounded(k)
	if err != nil {
		t.Fatalf("seed %d: Session.EvalBounded: %v\nquery:\n%s", seed, err, q.Pattern)
	}
	naive, err := cxrpq.EvalBoundedNaive(q, db, k)
	if err != nil {
		t.Fatalf("seed %d: EvalBoundedNaive: %v\nquery:\n%s", seed, err, q.Pattern)
	}
	if !got.Equal(naive) {
		t.Fatalf("seed %d: session %d tuples, naive %d tuples\nquery:\n%s",
			seed, got.Len(), naive.Len(), q.Pattern)
	}

	// The session must keep agreeing on repeated calls (result cache) and
	// on the Boolean/Check views of the same semantics.
	again, err := sess.EvalBounded(k)
	if err != nil || !again.Equal(naive) {
		t.Fatalf("seed %d: cached re-evaluation diverged (err=%v)", seed, err)
	}
	ok, err := sess.EvalBoundedBool(k)
	if err != nil || ok != (naive.Len() > 0) {
		t.Fatalf("seed %d: EvalBoundedBool=%v err=%v, want %v", seed, ok, err, naive.Len() > 0)
	}
	for i, tup := range naive.Sorted() {
		if i >= 3 {
			break
		}
		ok, err := sess.CheckBounded(k, tup)
		if err != nil || !ok {
			t.Fatalf("seed %d: CheckBounded(%v)=%v err=%v, want true\nquery:\n%s",
				seed, tup, ok, err, q.Pattern)
		}
	}
	if len(q.Pattern.Out) > 0 && naive.Len() > 0 {
		// a tuple off the answer set must be rejected
		probe := make(pattern.Tuple, len(q.Pattern.Out))
		found := false
		for v := 0; v < db.NumNodes() && !found; v++ {
			for i := range probe {
				probe[i] = v
			}
			if !naive.Contains(probe) {
				found = true
			}
		}
		if found {
			ok, err := sess.CheckBounded(k, probe)
			if err != nil || ok {
				t.Fatalf("seed %d: CheckBounded(non-member %v)=%v err=%v, want false", seed, probe, ok, err)
			}
		}
	}

	// Oracle: exact on finite seeds, containment on general ones.
	checkOracle := func(stage string, res *pattern.TupleSet) {
		t.Helper()
		if finite {
			want, err := oracle.EvalCXRPQ(q, db, workload.RandomQueryMaxWord)
			if err != nil {
				t.Fatalf("seed %d %s: oracle: %v", seed, stage, err)
			}
			if !res.Equal(want) {
				t.Fatalf("seed %d %s: session %d tuples, oracle %d tuples\nquery:\n%s",
					seed, stage, res.Len(), want.Len(), q.Pattern)
			}
		} else {
			want, err := oracle.EvalCXRPQ(q, db, k)
			if err != nil {
				t.Fatalf("seed %d %s: oracle: %v", seed, stage, err)
			}
			for _, tup := range want.Sorted() {
				if !res.Contains(tup) {
					t.Fatalf("seed %d %s: oracle tuple %v missing from session result\nquery:\n%s",
						seed, stage, tup, q.Pattern)
				}
			}
		}
	}
	checkOracle("pre-delta", got)

	// Delta interleaving: mutate the database between queries through the
	// session's incremental-update path and re-run the three-way check on
	// the maintained caches. Labels stay within the query alphabet so the
	// finite-mode oracle stays exact; every third seed also removes an edge
	// to exercise the full-flush path in the same sequence. Half the seeds
	// interleave (the re-check re-runs the oracle, which dominates the
	// harness cost); the dedicated mutation-sequence harness
	// (mutation_diff_test.go) covers delta maintenance in depth.
	if seed%2 != 0 {
		return
	}
	delta := graph.Delta{Add: []graph.DeltaEdge{
		{From: db.Name(r.Intn(db.NumNodes())), Label: []rune("ab")[r.Intn(2)], To: db.Name(r.Intn(db.NumNodes()))},
		{From: db.Name(r.Intn(db.NumNodes())), Label: []rune("ab")[r.Intn(2)], To: db.Name(r.Intn(db.NumNodes()))},
	}}
	if seed%3 == 0 && db.NumEdges() > 0 {
		e := db.Out(firstNonEmptyOut(db))[0]
		delta.Del = append(delta.Del, graph.DeltaEdge{From: db.Name(e.From), Label: e.Label, To: db.Name(e.To)})
	}
	if _, err := sess.ApplyDelta(delta); err != nil {
		t.Fatalf("seed %d: ApplyDelta: %v", seed, err)
	}
	got, err = sess.EvalBounded(k)
	if err != nil {
		t.Fatalf("seed %d: post-delta Session.EvalBounded: %v", seed, err)
	}
	naive, err = cxrpq.EvalBoundedNaive(q, db, k)
	if err != nil {
		t.Fatalf("seed %d: post-delta EvalBoundedNaive: %v", seed, err)
	}
	if !got.Equal(naive) {
		t.Fatalf("seed %d: post-delta session %d tuples, naive %d tuples\nquery:\n%s",
			seed, got.Len(), naive.Len(), q.Pattern)
	}
	checkOracle("post-delta", got)
}

// firstNonEmptyOut returns a node with at least one outgoing edge.
func firstNonEmptyOut(db *graph.DB) int {
	for u := 0; u < db.NumNodes(); u++ {
		if len(db.Out(u)) > 0 {
			return u
		}
	}
	return 0
}

// fuzzCorpus is the deterministic replay corpus: a spread of seeds covering
// every template family plus seeds that historically exercised tricky
// interactions (force-condition pruning, ε-images with shared free
// variables, 2-edge self-referencing tails). CI replays it with
// `go test -run Fuzz -short`.
var fuzzCorpus = []int64{
	0, 1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
	58, 77, 101, 137, 222, 313, 404, 555, 713, 999,
	1024, 2048, 4096, 31337,
}

// TestFuzzCorpus replays the fixed corpus (always, including -short).
func TestFuzzCorpus(t *testing.T) {
	for _, seed := range fuzzCorpus {
		diffSeed(t, seed)
	}
}

// TestFuzzDiffRandom sweeps 500+ fresh seeds; -short trims the sweep but
// never skips it entirely.
func TestFuzzDiffRandom(t *testing.T) {
	n := int64(520)
	if testing.Short() {
		n = 60
	}
	for seed := int64(100000); seed < 100000+n; seed++ {
		diffSeed(t, seed)
	}
}

// FuzzPreparedDiff exposes the differential property to the native fuzzer;
// its seed corpus mirrors fuzzCorpus.
func FuzzPreparedDiff(f *testing.F) {
	for _, seed := range fuzzCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffSeed(t, seed)
	})
}
