package cxrpq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

// This file is the prefix-incremental CXRPQ^≤k evaluation engine behind
// EvalBounded, EvalBoundedBool, CheckBounded and ExplainBounded. The
// Theorem 6 guess of v̄ ∈ (Σ^≤k)^n is still an enumeration in ≺-topological
// order with the two sound candidate filters (images must label paths of D;
// non-empty images of defined variables must match a definition body with
// the assigned prefix substituted), but the per-mapping work is restructured
// around three observations:
//
//  1. An atom (pattern edge) is fully instantiated as soon as the prefix
//     covers all variables occurring in it — its Lemma 10 surgery and its
//     reachability relation can be computed right then, and an atom whose
//     instantiated language is empty on D prunes the entire subtree before
//     any deeper variable is guessed.
//  2. Exponentially many mappings agree on an atom's instantiated label
//     (ε-images collapse, only the images matter — not how the enumeration
//     reached them), so per-atom relations are memoized in a bounded,
//     session-scoped cache keyed by the canonical print of the label.
//  3. A complete mapping then needs only a join over the cached relations
//     (ecrpq.JoinRelations), not a fresh CRPQ evaluation.
//
// Since PR 3 the engine is split along the prepared-query boundary
// (plan.go / session.go): boundedPlan holds everything derivable from the
// query alone (the ≺-topological order and the instantiation/pruning/check
// schedule), computed once by Prepare; sessionCaches holds the per-database
// memos (atom relations, feasibility verdicts, path-label candidates),
// owned by a Session and shared across calls and across concurrent engine
// runs. A boundedEngine is the cheap per-call object tying one run's
// enumeration state and result sink to those two.
//
// Disjoint enumeration subtrees are fanned across the engine worker pool
// with the same stop-flag short-circuit protocol as the vstar-free path.
//
// EvalBoundedNaive (eval.go) remains the literal Theorem 6 rendering and the
// differential baseline: the two must agree on full tuple sets.

const (
	// boundedMaxJobs caps the number of enumeration-prefix jobs generated
	// for the parallel fan-out.
	boundedMaxJobs = 4096
)

// boundedPlan is the immutable, database-independent part of the bounded
// engine: the enumeration order and the per-step instantiation, pruning and
// force-condition schedule. It is computed once per query by Prepare (or by
// the one-shot wrappers) and shared by every Session and engine run.
type boundedPlan struct {
	q *Query
	c CXRE

	vars []string // string variables in ≺-topological order

	edgeVars   [][]string       // per edge: sorted variables occurring in its label
	stepEdges  [][]int          // stepEdges[i]: edges determined once vars[:i] are assigned
	touchEdges [][]int          // touchEdges[i]: edges touched but not yet determined at step i
	stepChecks [][]string       // defined vars whose force-condition resolves at step i
	defEdges   map[string][]int // var -> edges syntactically defining it
	defined    map[string]bool  // tuple-level defined variables
	defBodies  map[string][]xregex.Node
	refAny     map[string]bool // free var: referenced anywhere at all
}

// planBounded computes q's bounded-evaluation schedule. The query is
// already validated (Prepare, the only caller's entry point, validates).
func planBounded(q *Query) (*boundedPlan, error) {
	c := q.CXRE()
	vars, err := xregex.TopoVars([]xregex.Node(c)...)
	if err != nil {
		return nil, err
	}
	p := &boundedPlan{
		q:          q,
		c:          c,
		vars:       vars,
		edgeVars:   make([][]string, len(c)),
		stepEdges:  make([][]int, len(vars)+1),
		touchEdges: make([][]int, len(vars)+1),
		stepChecks: make([][]string, len(vars)+1),
		defEdges:   map[string][]int{},
		defined:    c.DefinedVars(),
		defBodies:  map[string][]xregex.Node{},
		refAny:     map[string]bool{},
	}

	pos := map[string]int{}
	for i, x := range vars {
		pos[x] = i
	}
	nodes := []xregex.Node(c)
	all := catAll(c)
	for _, x := range vars {
		bodies := xregex.DefBodies(x, nodes...)
		p.defBodies[x] = bodies
		if len(bodies) == 0 {
			p.refAny[x] = xregex.ContainsRef(all, x)
		}
	}
	ready := make([]int, len(nodes))
	for ei, n := range nodes {
		vs := xregex.SortedVars(n)
		p.edgeVars[ei] = vs
		for _, x := range vs {
			if pos[x]+1 > ready[ei] {
				ready[ei] = pos[x] + 1
			}
		}
		p.stepEdges[ready[ei]] = append(p.stepEdges[ready[ei]], ei)
		for x := range xregex.DefinedVars(n) {
			p.defEdges[x] = append(p.defEdges[x], ei)
		}
		// Partial pruning schedule: re-relax an undetermined edge whenever
		// one of its variables was just assigned (and once up front, at
		// step 0, with everything relaxed).
		if ready[ei] > 0 {
			p.touchEdges[0] = append(p.touchEdges[0], ei)
		}
		for _, x := range vs {
			if pos[x]+1 < ready[ei] {
				p.touchEdges[pos[x]+1] = append(p.touchEdges[pos[x]+1], ei)
			}
		}
	}
	// The tuple-level Step 2 condition of Lemma 10 — a variable with a
	// non-empty image must have a surviving definition in SOME component —
	// resolves as soon as every component defining the variable has been
	// instantiated.
	for x, eis := range p.defEdges {
		last := 0
		for _, ei := range eis {
			if ready[ei] > last {
				last = ready[ei]
			}
		}
		p.stepChecks[last] = append(p.stepChecks[last], x)
	}
	return p, nil
}

// boundedEngine is one evaluation run: the plan plus the database binding,
// the session caches, the per-run options and the result sink. All mutable
// enumeration state lives in boundedState, one per worker subtree.
type boundedEngine struct {
	p        *boundedPlan
	db       *graph.DB
	sigma    []rune
	boolOnly bool
	seq      bool           // force sequential enumeration (witness search)
	pre      map[string]int // pre-bound node variables (CheckBounded)

	labels []string // candidate images: words labelling paths of D

	caches *sessionCaches // per-DB memos, shared across runs of one Session

	// bud is the caller's evaluation budget (nil = unlimited); fanBud is its
	// per-run fork, threaded into relation builds and leaf joins so that both
	// budget exhaustion AND the Boolean first-witness stop unwind in-flight
	// BFS sweeps at level granularity. fanBud is stopped (not bud) on first
	// witness, so sibling cancellation never spends the caller's budget.
	bud    *engine.Budget
	fanBud *engine.Budget

	// ranked requests BFS first-hit levels on every atom relation
	// (ecrpq.EdgeRel.Dist), so leaf joins can report witness costs.
	ranked bool

	// weight generalizes ranked witness cost from edge count to a pluggable
	// per-edge-label weight. Weighted relations have no cache identity (a
	// function can't key the session RelCache), so relationFor builds them
	// outside the shared cache, memoized per run in wrels.
	weight engine.Weight
	wrelMu sync.Mutex
	wrels  map[string]*ecrpq.EdgeRel

	// anyk, when set, redirects every complete mapping's leaf join onto the
	// shared incremental any-k priority queue (one AddJoin per mapping,
	// relations snapshotted) instead of executing it: run() then only
	// enumerates mappings and builds relations, and the consumer pulls
	// ranked rows lazily from the queue. Implies seq.
	anyk *ecrpq.AnyK

	// yield, when set, streams each leaf join's rows (with witness cost)
	// instead of merging into out; a false return stops the run. Streaming
	// runs force seq — yield is called from one goroutine only. Tuples are
	// NOT deduplicated across mappings here; the consumer owns dedup.
	yield func(t pattern.Tuple, cost int) bool

	// leaf consumes a complete mapping; the default joins the cached atom
	// relations, ExplainBounded swaps in a witness search.
	leaf func(st *boundedState) error

	// structSpec is non-nil when the planner is disabled: the structural
	// order is a pure function of (pattern, pre), so it is computed once
	// per run instead of per mapping.
	structSpec *planner.PlanSpec

	stop atomic.Bool

	outMu sync.Mutex
	out   *pattern.TupleSet
}

// boundedState is the mutable state of one enumeration subtree: the partial
// assignment and, per edge, the instantiated label, its relation and the
// defined variables whose definitions survived the Lemma 10 cut. Entries for
// edge ei are valid whenever the current prefix covers ei's ready step.
type boundedState struct {
	e        *boundedEngine
	assign   map[string]string
	insts    []xregex.Node
	rels     []*ecrpq.EdgeRel
	survived []map[string]bool
}

// newBoundedEngine binds a bounded plan to a database for one run. caches
// may be shared with other concurrent runs (a Session's cache set) or fresh
// (the one-shot wrappers).
func newBoundedEngine(p *boundedPlan, db *graph.DB, k int, boolOnly bool, pre map[string]int, caches *sessionCaches, sigma []rune) (*boundedEngine, error) {
	if k < 0 {
		return nil, fmt.Errorf("cxrpq: negative image bound %d", k)
	}
	e := &boundedEngine{
		p:        p,
		db:       db,
		sigma:    sigma,
		boolOnly: boolOnly,
		pre:      pre,
		// Images must label paths of D (they are factors of matching words).
		labels: caches.labelsFor(db, k),
		caches: caches,
		out:    pattern.NewTupleSet(),
	}
	e.fanBud = e.bud.Fork() // nil-safe: a standalone fork when unbudgeted
	e.leaf = e.joinLeaf
	if !planner.Enabled() {
		e.structSpec = &planner.PlanSpec{Order: ecrpq.JoinOrder(p.q.Pattern, pre),
			SemijoinFloor: caches.semijoinFloor}
	}
	return e, nil
}

// setBudget attaches the caller's budget to the run (before run() starts):
// fanBud is re-forked so every relation build and leaf join observes it.
func (e *boundedEngine) setBudget(bud *engine.Budget) {
	e.bud = bud
	e.fanBud = bud.Fork()
}

func (e *boundedEngine) newState() *boundedState {
	ne := len(e.p.c)
	return &boundedState{
		e:        e,
		assign:   map[string]string{},
		insts:    make([]xregex.Node, ne),
		rels:     make([]*ecrpq.EdgeRel, ne),
		survived: make([]map[string]bool, ne),
	}
}

// instantiateEdge runs the Lemma 10 surgery for edge ei under the current
// (prefix) assignment — sound because all of ei's variables are assigned at
// its ready step — and resolves the edge's reachability relation through the
// session cache. It reports false when the subtree is pruned: the label is
// ∅, or it labels no path of D.
func (st *boundedState) instantiateEdge(ei int) (bool, error) {
	e := st.e
	cut, err := xregex.CutFailedDefs(e.p.c[ei], st.assign, e.sigma)
	if err != nil {
		return false, err
	}
	cut = xregex.Simplify(cut)
	var surv map[string]bool
	for _, x := range e.p.edgeVars[ei] {
		if !e.p.defined[x] || st.assign[x] == "" {
			continue
		}
		if xregex.ContainsDef(cut, x) {
			if surv == nil {
				surv = map[string]bool{}
			}
			surv[x] = true
			cut = xregex.Simplify(xregex.ForceVar(cut, x))
		}
	}
	st.survived[ei] = surv
	inst := xregex.Simplify(xregex.SubstituteAllVars(cut, st.assign))
	st.insts[ei] = inst
	rel, err := e.relationFor(inst)
	if err != nil {
		return false, err
	}
	st.rels[ei] = rel
	return !rel.Empty(), nil
}

// relaxCut over-approximates the Lemma 10 instantiation of n under a
// ≺-downward-closed partial assignment: assigned definitions are cut exactly
// (their bodies only contain ≺-smaller, hence assigned, variables) and
// replaced by their images, while unassigned definitions and references are
// relaxed to Σ*. The result is classical and its language contains the exact
// instantiated language of every completion of the prefix, so an empty
// relation on D prunes the whole subtree.
func relaxCut(n xregex.Node, assign map[string]string, sigma []rune) (xregex.Node, error) {
	switch t := n.(type) {
	case *xregex.Ref:
		if w, ok := assign[t.Var]; ok {
			return xregex.Word(w), nil
		}
		return xregex.AnyWord(), nil
	case *xregex.Def:
		w, ok := assign[t.Var]
		if !ok {
			return xregex.AnyWord(), nil
		}
		body, err := relaxCut(t.Body, assign, sigma)
		if err != nil {
			return nil, err
		}
		m, err := xregex.Matches(xregex.Simplify(body), w, sigma)
		if err != nil {
			return nil, err
		}
		if !m {
			return &xregex.Empty{}, nil
		}
		return xregex.Word(w), nil
	case *xregex.Cat:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := relaxCut(k, assign, sigma)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &xregex.Cat{Kids: kids}, nil
	case *xregex.Alt:
		kids := make([]xregex.Node, len(t.Kids))
		for i, k := range t.Kids {
			nk, err := relaxCut(k, assign, sigma)
			if err != nil {
				return nil, err
			}
			kids[i] = nk
		}
		return &xregex.Alt{Kids: kids}, nil
	case *xregex.Plus:
		kid, err := relaxCut(t.Kid, assign, sigma)
		if err != nil {
			return nil, err
		}
		return &xregex.Plus{Kid: kid}, nil
	case *xregex.Star:
		kid, err := relaxCut(t.Kid, assign, sigma)
		if err != nil {
			return nil, err
		}
		return &xregex.Star{Kid: kid}, nil
	case *xregex.Opt:
		kid, err := relaxCut(t.Kid, assign, sigma)
		if err != nil {
			return nil, err
		}
		return &xregex.Opt{Kid: kid}, nil
	default:
		return n, nil
	}
}

// pruneRelaxed checks the Σ*-relaxed partial instantiation of edge ei
// against D. It reports false when the relaxed atom labels no path at all —
// no completion of the current prefix can satisfy the atom.
func (st *boundedState) pruneRelaxed(ei int) (bool, error) {
	e := st.e
	relaxed, err := relaxCut(e.p.c[ei], st.assign, e.sigma)
	if err != nil {
		return false, err
	}
	rel, err := e.relationFor(xregex.Simplify(relaxed))
	if err != nil {
		return false, err
	}
	return !rel.Empty(), nil
}

// processStep instantiates the edges that become determined once vars[:i]
// are assigned, applies the force-condition checks that resolve at this
// step, and runs the relaxed-atom pruning for edges the step touched but
// did not determine. It reports false when the whole subtree is pruned.
func (st *boundedState) processStep(i int) (bool, error) {
	e := st.e
	for _, ei := range e.p.stepEdges[i] {
		ok, err := st.instantiateEdge(ei)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, ei := range e.p.touchEdges[i] {
		ok, err := st.pruneRelaxed(ei)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, x := range e.p.stepChecks[i] {
		if st.assign[x] == "" {
			continue
		}
		found := false
		for _, ei := range e.p.defEdges[x] {
			if st.survived[ei][x] {
				found = true
				break
			}
		}
		if !found {
			// no surviving definition can produce the non-empty image: the
			// instantiated tuple is (∅, …, ∅)
			return false, nil
		}
	}
	return true, nil
}

// relationFor resolves the relation of an instantiated label through the
// session relation cache, keyed by the canonical print — the sharing point
// for all mappings (and all Session calls) that agree on the label. The
// build honors the run's fan budget (a truncated build surfaces as
// engine.ErrCanceled and is never cached) and requests BFS levels when the
// run is ranked.
func (e *boundedEngine) relationFor(inst xregex.Node) (*ecrpq.EdgeRel, error) {
	if e.ranked && e.weight != nil {
		// Weighted levels never enter the cross-query cache: two queries
		// with different weights would collide on the same label key. The
		// per-run memo still shares the build across this run's mappings.
		key := xregex.String(inst)
		e.wrelMu.Lock()
		if r, ok := e.wrels[key]; ok {
			e.wrelMu.Unlock()
			return r, nil
		}
		e.wrelMu.Unlock()
		r, err := ecrpq.RelationForW(e.db, inst, e.sigma, e.fanBud, true, e.weight)
		if err != nil {
			return nil, err
		}
		e.wrelMu.Lock()
		if e.wrels == nil {
			e.wrels = map[string]*ecrpq.EdgeRel{}
		}
		e.wrels[key] = r
		e.wrelMu.Unlock()
		return r, nil
	}
	return e.caches.rels.ForOpts(e.db, inst, e.sigma, e.fanBud, e.ranked)
}

// feasible is the sound candidate filter of the Theorem 6 enumeration: a
// non-empty image of a defined variable must match one of its definition
// bodies with previously assigned variables substituted and the rest relaxed
// to Σ* (all variables in a definition body precede the defined variable in
// ≺-topological order, so the check is exact relative to the prefix). Checks
// are memoized per (relaxed body, word) in the session feasibility memo —
// the relaxed print is exactly the signature of the assignment restricted to
// the body's variables — and run through the process-wide compiled-NFA
// cache.
func (e *boundedEngine) feasible(x, w string, assign map[string]string) bool {
	if w == "" {
		return true
	}
	bodies := e.p.defBodies[x]
	if len(bodies) == 0 {
		// free variable: only useful if referenced at all
		return e.p.refAny[x]
	}
	for _, body := range bodies {
		relaxed := relaxUnassigned(body, assign)
		key := xregex.String(relaxed) + "\x00" + w
		if res, ok := e.caches.feasGet(key); ok {
			if res {
				return true
			}
			continue
		}
		m, err := xregex.Matches(relaxed, w, e.sigma)
		res := err == nil && m
		e.caches.feasPut(key, res)
		if res {
			return true
		}
	}
	return false
}

// rec enumerates images for vars[i:] depth-first with prefix pruning.
func (st *boundedState) rec(i int) error {
	e := st.e
	if e.stop.Load() || e.fanBud.Canceled() {
		return nil
	}
	if i == len(e.p.vars) {
		return e.leaf(st)
	}
	x := e.p.vars[i]
	for _, w := range e.labels {
		if e.stop.Load() || e.fanBud.Canceled() {
			break
		}
		if !e.feasible(x, w, st.assign) {
			continue
		}
		st.assign[x] = w
		ok, err := st.processStep(i + 1)
		if err != nil {
			return err
		}
		if ok {
			if err := st.rec(i + 1); err != nil {
				return err
			}
		}
	}
	delete(st.assign, x)
	return nil
}

// joinLeaf is the default leaf: join the cached atom relations and merge the
// answers into the shared result set. The physical plan is rebuilt per
// mapping from the exact cardinalities of this mapping's relations
// (EdgeRel.Estimate is cached on the shared relation, so the sweep
// amortizes across every mapping hitting the same label) — one mapping's
// skewed atom no longer dictates another's join order. With the planner
// disabled the run's fixed structural order is used instead, exactly the
// pre-planner behavior.
func (e *boundedEngine) joinLeaf(st *boundedState) error {
	spec := e.structSpec
	if spec == nil {
		spec = ecrpq.PlanJoin(e.p.q.Pattern, st.rels, e.pre)
		spec.SemijoinFloor = e.caches.semijoinFloor
	}
	if e.anyk != nil {
		// Deferred ranked leaf (incremental any-k): snapshot this mapping's
		// relations — boundedState reuses its slices across mappings — and
		// register the join as one root on the shared priority queue. The
		// join itself runs lazily as the consumer pulls ranked rows.
		e.anyk.AddJoin(e.p.q.Pattern, append([]*ecrpq.EdgeRel(nil), st.rels...), spec, e.pre)
		return nil
	}
	if e.yield != nil {
		// Streaming leaf (Session.Stream): rows flow to the consumer as the
		// backtracking completes them. Runs are sequential (e.seq), so the
		// yield needs no locking.
		ecrpq.JoinRelationsStream(e.p.q.Pattern, st.rels, spec, e.pre, e.fanBud,
			func(t pattern.Tuple, cost int) bool {
				if !e.yield(t, cost) {
					e.stop.Store(true)
					return false
				}
				return true
			})
		return nil
	}
	res := pattern.NewTupleSet()
	ecrpq.JoinRelationsStream(e.p.q.Pattern, st.rels, spec, e.pre, e.fanBud,
		func(t pattern.Tuple, _ int) bool {
			res.Add(t)
			return !e.boolOnly
		})
	if res.Len() == 0 {
		return nil
	}
	tuples := res.Sorted() // materialize outside the critical section
	e.outMu.Lock()
	for _, t := range tuples {
		e.out.Add(t)
	}
	e.outMu.Unlock()
	if e.boolOnly {
		// First witness: raise the stop flag for enumeration subtrees and
		// stop the fan budget so sibling workers' in-flight BFS sweeps and
		// joins unwind at level granularity instead of running to completion.
		e.stop.Store(true)
		e.fanBud.Stop()
	}
	return nil
}

// run drives the enumeration: sequentially for a single worker (or when a
// deterministic first witness is required), otherwise by expanding feasible
// assignment prefixes into jobs and fanning the disjoint subtrees across the
// engine worker pool with Boolean short-circuit.
func (e *boundedEngine) run() (*pattern.TupleSet, error) {
	st := e.newState()
	ok, err := st.processStep(0)
	if err != nil || !ok {
		return e.out, e.ignoreCanceled(err)
	}
	if len(e.p.vars) == 0 {
		return e.out, e.ignoreCanceled(e.leaf(st))
	}

	pool := engine.Workers(1 << 16)
	if pool == 1 || e.seq {
		return e.out, e.ignoreCanceled(st.rec(0))
	}

	// Expand prefixes breadth-first (feasibility-filtered only; the workers
	// replay them with the full atom pruning, which is cache-warm by then)
	// until there are enough disjoint subtrees to keep the pool busy.
	jobs := [][]string{nil}
	depth := 0
	for depth < len(e.p.vars) && len(jobs) < 2*pool && len(jobs)*len(e.labels) <= boundedMaxJobs {
		var next [][]string
		partial := map[string]string{}
		for _, p := range jobs {
			clear(partial)
			for j, w := range p {
				partial[e.p.vars[j]] = w
			}
			for _, w := range e.labels {
				if e.feasible(e.p.vars[depth], w, partial) {
					np := make([]string, depth+1)
					copy(np, p)
					np[depth] = w
					next = append(next, np)
				}
			}
		}
		jobs = next
		depth++
		if len(jobs) == 0 {
			return e.out, nil
		}
	}

	var errMu sync.Mutex
	errAt := -1
	var firstErr error
	engine.Fan(len(jobs), func(ji int) {
		if e.stop.Load() {
			return
		}
		st := e.newState()
		ok, err := st.processStep(0)
		for j := 0; err == nil && ok && j < depth; j++ {
			st.assign[e.p.vars[j]] = jobs[ji][j]
			ok, err = st.processStep(j + 1)
		}
		if err == nil && ok {
			err = st.rec(depth)
		}
		if err = e.ignoreCanceled(err); err != nil {
			errMu.Lock()
			if errAt < 0 || ji < errAt {
				errAt, firstErr = ji, err
			}
			errMu.Unlock()
			e.stop.Store(true)
			e.fanBud.Stop()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return e.out, nil
}

// ignoreCanceled filters engine.ErrCanceled out of a run's error flow:
// budget truncation (and the Boolean first-witness sibling stop, which rides
// the same fork) is not a failure — the accumulated output is a sound
// partial answer, and the caller consults its own Budget.Err() to learn
// whether the run was cut short.
func (e *boundedEngine) ignoreCanceled(err error) error {
	if errors.Is(err, engine.ErrCanceled) {
		return nil
	}
	return err
}
