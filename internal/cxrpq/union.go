package cxrpq

import (
	"fmt"

	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Union is a union of CXRPQs (the ∪-classes of §7 are defined for any class
// of conjunctive path queries): q = q1 ∨ … ∨ qk with q(D) = ⋃ qi(D).
type Union struct {
	Members []*Query
}

// Validate checks all members and that output arities agree.
func (u *Union) Validate() error {
	if len(u.Members) == 0 {
		return fmt.Errorf("cxrpq: empty union")
	}
	arity := len(u.Members[0].Pattern.Out)
	for i, m := range u.Members {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("cxrpq: union member %d: %v", i, err)
		}
		if len(m.Pattern.Out) != arity {
			return fmt.Errorf("cxrpq: union member %d has arity %d, want %d", i, len(m.Pattern.Out), arity)
		}
	}
	return nil
}

// Eval computes ⋃ qi(D), dispatching each member to its fragment's
// algorithm (members must be classical, simple or vstar-free).
func (u *Union) Eval(db *graph.DB) (*pattern.TupleSet, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := pattern.NewTupleSet()
	for _, m := range u.Members {
		res, err := Eval(m, db)
		if err != nil {
			return nil, err
		}
		for _, t := range res.Sorted() {
			out.Add(t)
		}
	}
	return out, nil
}

// EvalBounded computes ⋃ qi^≤k(D).
func (u *Union) EvalBounded(db *graph.DB, k int) (*pattern.TupleSet, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := pattern.NewTupleSet()
	for _, m := range u.Members {
		res, err := EvalBounded(m, db, k)
		if err != nil {
			return nil, err
		}
		for _, t := range res.Sorted() {
			out.Add(t)
		}
	}
	return out, nil
}

// Size returns the total size of the members.
func (u *Union) Size() int {
	s := 0
	for _, m := range u.Members {
		s += m.Size()
	}
	return s
}
