package cxrpq

import (
	"fmt"
	"sort"

	"cxrpq/internal/xregex"
)

// NormalFormStats records the size development across the three steps of
// the normal-form construction, reproducing the blow-up analysis of §5.1
// and §5.3 (experiment E5).
type NormalFormStats struct {
	Input      int // |ᾱ|
	AfterStep1 int // Lemma 4: O(2^|ᾱ|)
	AfterStep2 int // Lemma 5: O(|ᾱ|²) relative to step 1
	AfterStep3 int // Lemma 6: O(|ᾱ|^{|Xs|+1}); Lemma 8: O(|ᾱ|²) if flat
}

// Step1MultiplyOut (Lemma 4) turns each component of a vstar-free
// conjunctive xregex into an alternation of variable-simple xregex.
func Step1MultiplyOut(c CXRE) (CXRE, error) {
	out := make(CXRE, len(c))
	for i, n := range c {
		branches, err := xregex.ExpandVariableSimple(n)
		if err != nil {
			return nil, fmt.Errorf("cxrpq: component %d: %v", i, err)
		}
		if len(branches) == 1 {
			out[i] = branches[0]
		} else {
			out[i] = &xregex.Alt{Kids: branches}
		}
	}
	return out, nil
}

// componentBranches views a component as its list of alternation branches.
func componentBranches(n xregex.Node) []xregex.Node {
	if alt, ok := n.(*xregex.Alt); ok {
		return alt.Kids
	}
	return []xregex.Node{n}
}

func branchesNode(bs []xregex.Node) xregex.Node {
	if len(bs) == 1 {
		return bs[0]
	}
	return &xregex.Alt{Kids: bs}
}

// Step2RenameApart (Lemma 5) renames variables so that every variable has
// at most one definition in the whole tuple: a variable x defined in
// several branches of its component gets one fresh name per branch, and
// every reference of x anywhere is replaced by the concatenation of the
// fresh names (at most one of which is instantiated in any derivation).
func Step2RenameApart(c CXRE) CXRE {
	out := c.Clone()
	// collect variables in deterministic order
	var vars []string
	for v := range out.Vars() {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	fresh := newNamer(out)
	for _, x := range vars {
		// count definitions of x across the tuple
		total := 0
		comp := -1
		for i, n := range out {
			if k := len(xregex.DefBodies(x, n)); k > 0 {
				total += k
				comp = i
			}
		}
		if total <= 1 {
			continue
		}
		branches := componentBranches(out[comp])
		var newNames []string
		for j, b := range branches {
			if !xregex.ContainsDef(b, x) {
				continue
			}
			name := fresh.fresh(fmt.Sprintf("%s_%d", x, j))
			branches[j] = xregex.RenameVar(b, x, name)
			newNames = append(newNames, name)
		}
		out[comp] = branchesNode(branches)
		// replace every remaining reference of x (anywhere) by the
		// concatenation of the new names
		repl := make([]xregex.Node, len(newNames))
		for i, nm := range newNames {
			repl[i] = &xregex.Ref{Var: nm}
		}
		concat := xregex.Simplify(&xregex.Cat{Kids: repl})
		for i := range out {
			out[i] = xregex.ReplaceRefs(out[i], x, concat)
		}
	}
	return out
}

// Step3MainModification (Lemma 6) removes non-basic definitions: processing
// variables in ≺-topological order (roots first), each non-basic definition
// z{γ1…γp} is replaced by a concatenation of fresh basic definitions
// y1{…}…yp{…} and every reference of z by y1…yp.
//
// Precondition: every component is an alternation of variable-simple
// xregex and every variable has at most one definition in the tuple
// (ensured by Steps 1 and 2, or by branch selection in EvalVsf).
func Step3MainModification(c CXRE) (CXRE, error) {
	out, _, err := step3WithMap(c)
	return out, err
}

// step3WithMap additionally returns, for every variable z whose non-basic
// definition was eliminated, the ordered list of replacement variables whose
// concatenated images equal z's image (used to reconstruct witnesses).
func step3WithMap(c CXRE) (CXRE, map[string][]string, error) {
	out := c.Clone()
	repl := map[string][]string{}
	order, err := xregex.TopoVars([]xregex.Node(out)...)
	if err != nil {
		return nil, nil, err
	}
	fresh := newNamer(out)
	for _, z := range order {
		bodies := xregex.DefBodies(z, []xregex.Node(out)...)
		if len(bodies) == 0 {
			continue
		}
		if len(bodies) > 1 {
			return nil, nil, fmt.Errorf("cxrpq: step 3 precondition violated: %d definitions of $%s", len(bodies), z)
		}
		if xregex.IsBasicDef(bodies[0]) {
			continue
		}
		factors, err := xregex.Factorize(bodies[0])
		if err != nil {
			return nil, nil, fmt.Errorf("cxrpq: step 3 on $%s: %v", z, err)
		}
		// Build the replacement definition sequence and the reference list.
		var defSeq []xregex.Node
		var refSeq []xregex.Node
		for _, f := range factors {
			switch f.Kind {
			case xregex.FDef:
				defSeq = append(defSeq, f.Node())
				refSeq = append(refSeq, &xregex.Ref{Var: f.Var})
			case xregex.FClassical:
				y := fresh.fresh(z + "c")
				defSeq = append(defSeq, &xregex.Def{Var: y, Body: f.Expr})
				refSeq = append(refSeq, &xregex.Ref{Var: y})
			case xregex.FRef:
				y := fresh.fresh(z + "r")
				defSeq = append(defSeq, &xregex.Def{Var: y, Body: &xregex.Ref{Var: f.Var}})
				refSeq = append(refSeq, &xregex.Ref{Var: y})
			}
		}
		defRepl := xregex.Simplify(&xregex.Cat{Kids: defSeq})
		refRepl := xregex.Simplify(&xregex.Cat{Kids: refSeq})
		var names []string
		for _, r := range refSeq {
			names = append(names, r.(*xregex.Ref).Var)
		}
		repl[z] = names
		for i := range out {
			out[i] = xregex.ReplaceDefs(out[i], z, func(xregex.Node) xregex.Node {
				return xregex.Clone(defRepl)
			})
			out[i] = xregex.ReplaceRefs(out[i], z, refRepl)
		}
	}
	return out, repl, nil
}

// NormalForm transforms a vstar-free conjunctive xregex into an equivalent
// one in normal form (Theorem 4: each component is an alternation of simple
// xregex), returning size statistics for the blow-up experiments.
func NormalForm(c CXRE) (CXRE, *NormalFormStats, error) {
	stats := &NormalFormStats{Input: c.Size()}
	s1, err := Step1MultiplyOut(c)
	if err != nil {
		return nil, nil, err
	}
	stats.AfterStep1 = s1.Size()
	s2 := Step2RenameApart(s1)
	stats.AfterStep2 = s2.Size()
	s3, err := Step3MainModification(s2)
	if err != nil {
		return nil, nil, err
	}
	stats.AfterStep3 = s3.Size()
	for i, n := range s3 {
		if !xregex.IsNormalForm(n) {
			return nil, nil, fmt.Errorf("cxrpq: component %d not in normal form after step 3: %s", i, xregex.String(n))
		}
	}
	return s3, stats, nil
}

// namer generates variable names that are fresh with respect to an existing
// conjunctive xregex and everything generated so far.
type namer struct{ used map[string]bool }

func newNamer(c CXRE) *namer {
	n := &namer{used: map[string]bool{}}
	for v := range c.Vars() {
		n.used[v] = true
	}
	return n
}

func (n *namer) fresh(base string) string {
	if !n.used[base] {
		n.used[base] = true
		return base
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !n.used[cand] {
			n.used[cand] = true
			return cand
		}
	}
}
