package cxrpq_test

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/oracle"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// §5.1 walkthrough: γ1 = x{a*y{b*}az} ∨ (x{b*}·(z ∨ y{c*})),
// γ2 = (a* ∨ x)·z{y·(a∨b)}.
func walkthroughCXRE(t *testing.T) cxrpq.CXRE {
	t.Helper()
	return cxrpq.CXRE{
		xregex.MustParse("$x{a*$y{b*}a$z}|($x{b*}($z|$y{c*}))"),
		xregex.MustParse("(a*|$x)$z{$y(a|b)}"),
	}
}

func TestNormalFormWalkthrough(t *testing.T) {
	c := walkthroughCXRE(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	nf, stats, err := cxrpq.NormalForm(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nf {
		if !xregex.IsNormalForm(n) {
			t.Errorf("component %d not in normal form: %s", i, xregex.String(n))
		}
	}
	if stats.AfterStep3 < stats.Input {
		t.Errorf("normal form should not shrink here: %+v", stats)
	}
	// Language preservation, checked by evaluating the original and the
	// normal-form query on a database and against the brute-force oracle.
	// (MatchTuple on the normal form directly would be exponential in the
	// many fresh variables, so we compare q(D) instead.)
	mkQuery := func(labels cxrpq.CXRE) *cxrpq.Query {
		g := &pattern.Graph{
			Out: []string{"s", "t"},
			Edges: []pattern.Edge{
				{From: "s", To: "m", Label: labels[0]},
				{From: "m", To: "t", Label: labels[1]},
			},
		}
		q, err := cxrpq.New(g)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	db := graph.MustParse(`
s0 b m0
m0 c m1
m1 a t0
s0 a m2
m2 b m0
s0 b s0
`)
	qc := mkQuery(c)
	qnf := mkQuery(nf)
	resC, err := cxrpq.EvalVsf(qc, db)
	if err != nil {
		t.Fatal(err)
	}
	resNF, err := cxrpq.EvalVsf(qnf, db)
	if err != nil {
		t.Fatal(err)
	}
	if !resC.Equal(resNF) {
		t.Fatalf("normal form changed q(D): %v vs %v", resC.Sorted(), resNF.Sorted())
	}
	want, err := oracle.EvalCXRPQ(qc, db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !resC.Equal(want) {
		t.Fatalf("EvalVsf %v vs oracle %v", resC.Sorted(), want.Sorted())
	}
}

// §5.3: the chain x1{a}x2{x1x1}x3{x2x2}… blows up exponentially in Step 3,
// while flat conjunctive xregex stay quadratic (Lemma 8).
func TestNormalFormChainBlowup(t *testing.T) {
	chain := func(n int) cxrpq.CXRE {
		src := "$x1{a}"
		for i := 2; i <= n; i++ {
			src += "$x" + itoa(i) + "{$x" + itoa(i-1) + "$x" + itoa(i-1) + "}"
		}
		return cxrpq.CXRE{xregex.MustParse(src)}
	}
	var sizes []int
	for n := 2; n <= 6; n++ {
		c := chain(n)
		_, stats, err := cxrpq.NormalForm(c)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, stats.AfterStep3)
	}
	// exponential growth: size(n+1) ≳ 1.5 · size(n)
	for i := 1; i < len(sizes); i++ {
		if float64(sizes[i]) < 1.5*float64(sizes[i-1]) {
			t.Errorf("chain blow-up not exponential: %v", sizes)
			break
		}
	}

	// flat variant: all variables referenced only outside definitions
	flat := func(n int) cxrpq.CXRE {
		src := "$x1{a*}"
		for i := 2; i <= n; i++ {
			src += "$x" + itoa(i) + "{b*a}"
		}
		for i := 1; i <= n; i++ {
			src += "$x" + itoa(i)
		}
		return cxrpq.CXRE{xregex.MustParse(src)}
	}
	for n := 2; n <= 6; n++ {
		c := flat(n)
		if !c.FlatVars() {
			t.Fatalf("flat(%d) should be flat", n)
		}
		_, stats, err := cxrpq.NormalForm(c)
		if err != nil {
			t.Fatal(err)
		}
		in := stats.Input
		if stats.AfterStep3 > 4*in*in {
			t.Errorf("flat normal form exceeded quadratic bound: %+v", stats)
		}
	}
}

func TestVsfToUnionECRPQer(t *testing.T) {
	db := graph.MustParse(`
u a v1
u a m
m c v2
w b v3
w c n
n c v4
`)
	q := cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)($x|c)?
`)
	union, err := cxrpq.VsfToUnionECRPQer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(union.Members) < 2 {
		t.Fatalf("expected several union members, got %d", len(union.Members))
	}
	for i, m := range union.Members {
		if !m.IsER() {
			t.Fatalf("member %d is not ECRPQ^er", i)
		}
	}
	got, err := ecrpq.EvalUnion(union, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cxrpq.EvalVsf(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("union %v vs direct %v", got.Sorted(), want.Sorted())
	}
}

func TestBoundedToUnionCRPQ(t *testing.T) {
	db := graph.MustParse(`
u a v1
u a m
m c v2
w b v3
w b n
n b v4
`)
	q := cxrpq.MustParse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)+
`)
	sigma := db.Alphabet()
	union, err := cxrpq.BoundedToUnionCRPQ(q, 1, sigma)
	if err != nil {
		t.Fatal(err)
	}
	got, err := union.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cxrpq.EvalBounded(q, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("∪-CRPQ %v vs bounded eval %v", got.Sorted(), want.Sorted())
	}
	if want.Len() == 0 {
		t.Fatal("expected matches")
	}
}

func TestFromECRPQer(t *testing.T) {
	// ECRPQ^er: two edges whose words must be equal and both in (ab)+ / a(ba)*b.
	eq := &ecrpq.Query{
		Pattern: pattern.MustParseQuery(`
ans(x1, y1, x2, y2)
x1 y1 : (ab)+
x2 y2 : a(ba)*b
`),
		Groups: []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}},
	}
	sigma := []rune("ab")
	q, err := cxrpq.FromECRPQer(eq, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsVStarFreeFlat() {
		t.Fatal("Lemma 12 output must be in CXRPQ^vsf,fl")
	}
	db := graph.MustParse(`
u a m1
m1 b v
v a m2
m2 b w
p b q
`)
	got, err := cxrpq.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ecrpq.Eval(eq, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("CXRPQ %v vs ECRPQ^er %v", got.Sorted(), want.Sorted())
	}
	if got.Len() == 0 {
		t.Fatal("expected matches ((ab) words)")
	}
}

func TestSimpleToECRPQerFreeVariables(t *testing.T) {
	// A free variable (no definition anywhere) shared across two edges must
	// match the same arbitrary word (⟨γ⟩_int semantics, §3.1).
	db := graph.MustParse(`
u a v
u2 a v2
u3 b v3
`)
	q := cxrpq.MustParse(`
ans(x, y, x2, y2)
x y : $w
x2 y2 : $w
`)
	res, err := cxrpq.EvalSimple(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.EvalCXRPQ(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("engine %v vs oracle %v", res.Sorted(), want.Sorted())
	}
	u, _ := db.Lookup("u")
	v, _ := db.Lookup("v")
	u3, _ := db.Lookup("u3")
	v3, _ := db.Lookup("v3")
	// both a-words: fine; a-word with b-word: only via w=ε … a≠b, so (u,v,u3,v3)
	// requires w common to both paths: only ε, but then x=y; so it must NOT hold.
	if res.Contains(pattern.Tuple{u, v, u3, v3}) {
		t.Fatal("free variable must be shared: a-path and b-path cannot both match $w")
	}
}

func TestStep2RenameApart(t *testing.T) {
	// G4-style: two mutually exclusive definitions of z.
	c := cxrpq.CXRE{
		xregex.MustParse("$z{a}b|$z{b*}c"),
		xregex.MustParse("$z d"),
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, err := cxrpq.Step1MultiplyOut(c)
	if err != nil {
		t.Fatal(err)
	}
	s2 := cxrpq.Step2RenameApart(s1)
	// after renaming, every variable has at most one definition
	for v := range s2.Vars() {
		if len(xregex.DefBodies(v, []xregex.Node(s2)...)) > 1 {
			t.Fatalf("variable %s still has multiple definitions", v)
		}
	}
	// language preserved on samples
	sigma := []rune("abcd")
	for _, ws := range [][]string{
		{"ab", "ad"}, {"bbc", "bbd"}, {"c", "d"}, {"ab", "bd"}, {"b", "d"},
	} {
		want := cxrpq.MatchTupleBool(c, ws, sigma)
		got := cxrpq.MatchTupleBool(s2, ws, sigma)
		if got != want {
			t.Errorf("step 2 changed membership of %v: got %v want %v", ws, got, want)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}
