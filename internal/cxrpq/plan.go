package cxrpq

import (
	"fmt"
	"sync"

	"cxrpq/internal/ecrpq"
)

// This file is the compile-once half of the prepared-query subsystem.
// Prepare(q) classifies q's fragment and precomputes everything derivable
// from the query alone — the bounded-evaluation schedule (boundedPlan), the
// Lemma 3 simple→ECRPQ^er translation, and the Lemma 7 branch-combination
// translations of the vstar-free path — into an immutable Plan. Binding a
// Plan to a database (Plan.Bind, session.go) yields a Session owning the
// per-database caches; the historical one-shot functions (Eval, EvalBounded,
// Check, Explain, …) are thin wrappers that prepare and bind per call.

// planKind is the dispatch class of a prepared query, mirroring the
// fragment dispatch of Eval: the strongest complete algorithm for the
// query's syntactic fragment.
type planKind int

const (
	kindClassical planKind = iota // CRPQ: no string variables
	kindSimple                    // simple conjunctive xregex (Lemma 3)
	kindVsf                       // vstar-free (Theorem 2 / Lemma 7)
	kindGeneral                   // unrestricted: only ≤k / log semantics
)

// vsfComboCap bounds the number of Lemma 7 branch combinations a Plan
// materializes; beyond it the vstar-free path falls back to streaming the
// combinations per evaluation (their count is exponential in the worst
// case, and a Plan must stay small).
const vsfComboCap = 1024

// vsfCombo is one materialized branch combination: its translated ECRPQ^er,
// or the translation error (kept, not raised, because the Boolean
// evaluation semantics defer per-combination errors until no combination
// matches).
type vsfCombo struct {
	eq  *ecrpq.Query
	err error
}

// vsfPlan caches the Lemma 7 branch-combination translations of a
// vstar-free query, materialized on first use.
type vsfPlan struct {
	origDefined map[string]bool

	once     sync.Once
	combos   []vsfCombo
	overflow bool // more than vsfComboCap combinations: stream per call
	err      error
}

// Plan is an immutable prepared CXRPQ: the validated query, its fragment
// classification, and the (lazily materialized, built at most once) pieces
// each evaluation path needs — the bounded-evaluation schedule and the
// fragment translations. A Plan holds no database state — bind it to a
// graph.DB with Bind to evaluate — and is safe for concurrent use by any
// number of Sessions.
type Plan struct {
	q        *Query
	c        CXRE
	kind     planKind
	fragment string

	boundedOnce sync.Once
	bounded     *boundedPlan // any query has ≤k / log semantics
	boundedErr  error

	simpleOnce sync.Once
	simple     *ecrpq.Query
	simpleErr  error

	vsf *vsfPlan // non-nil iff the query is vstar-free (incl. simple/CRPQ)
}

// Prepare validates q and compiles it into a reusable Plan. The fragment
// classification happens here, once; the per-fragment machinery (bounded
// schedule, translations) materializes on first use of its path, so
// classical/simple/vsf plans never pay for the bounded schedule and vice
// versa.
func Prepare(q *Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{q: q, c: q.CXRE(), fragment: q.Fragment()}
	switch {
	case p.c.IsClassical():
		p.kind = kindClassical
	case p.c.IsSimple():
		p.kind = kindSimple
	case p.c.IsVStarFree():
		p.kind = kindVsf
	default:
		p.kind = kindGeneral
	}
	if p.kind != kindGeneral {
		p.vsf = &vsfPlan{origDefined: p.c.DefinedVars()}
	}
	return p, nil
}

// boundedPlanFor returns the bounded-evaluation schedule, built once per
// Plan on first use.
func (p *Plan) boundedPlanFor() (*boundedPlan, error) {
	p.boundedOnce.Do(func() {
		p.bounded, p.boundedErr = planBounded(p.q)
	})
	return p.bounded, p.boundedErr
}

// MustPrepare is Prepare but panics on error.
func MustPrepare(q *Query) *Plan {
	p, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return p
}

// PrepareSrc parses and prepares the textual query format in one step.
func PrepareSrc(src string) (*Plan, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Prepare(q)
}

// Query returns the underlying query.
func (p *Plan) Query() *Query { return p.q }

// Fragment returns the human-readable name of the smallest syntactic
// fragment containing the query (classified once at Prepare).
func (p *Plan) Fragment() string { return p.fragment }

// simpleQuery returns the Lemma 3 translation for classical/simple queries,
// built once per Plan.
func (p *Plan) simpleQuery() (*ecrpq.Query, error) {
	p.simpleOnce.Do(func() {
		switch p.kind {
		case kindClassical:
			p.simple = &ecrpq.Query{Pattern: p.q.Pattern}
		case kindSimple:
			p.simple, p.simpleErr = SimpleToECRPQer(p.q, nil)
		default:
			p.simpleErr = fmt.Errorf("cxrpq: %s is not simple", p.fragment)
		}
	})
	return p.simple, p.simpleErr
}

// vsfCombos materializes the translated branch combinations of a vstar-free
// query, once per Plan. overflow reports that the combination count exceeds
// vsfComboCap, in which case callers must stream combinations themselves.
func (p *Plan) vsfCombos() (combos []vsfCombo, overflow bool, err error) {
	if p.vsf == nil {
		return nil, false, fmt.Errorf("cxrpq: EvalVsf requires a vstar-free query (got %s)", p.fragment)
	}
	v := p.vsf
	v.once.Do(func() {
		count := 0
		err := branchCombos(p.q.CXRE(), func(combo CXRE) error {
			count++
			if count > vsfComboCap {
				v.overflow = true
				return errStop
			}
			eq, err := comboToSimpleECRPQ(p.q, combo, v.origDefined)
			v.combos = append(v.combos, vsfCombo{eq: eq, err: err})
			return nil
		})
		if err != nil && err != errStop {
			v.err = err
		}
		if v.overflow {
			v.combos = nil // streamed per call instead
		}
	})
	return v.combos, v.overflow, v.err
}
