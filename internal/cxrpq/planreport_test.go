package cxrpq

import (
	"strings"
	"testing"

	"cxrpq/internal/graph"
	"cxrpq/internal/planner"
)

// skewedPlanDB builds a graph with a dense h-hub and a single selective
// s-edge, so cost-based ordering must place the s-atom first.
func skewedPlanDB() *graph.DB {
	var b strings.Builder
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			b.WriteString("a")
			b.WriteByte(byte('0' + i))
			b.WriteString(" h b")
			b.WriteByte(byte('0' + j))
			b.WriteString("\n")
		}
	}
	b.WriteString("b0 s c0\n")
	return graph.MustParse(b.String())
}

func TestPlanReportOrdersBySelectivity(t *testing.T) {
	db := skewedPlanDB()
	sess := MustPrepare(MustParse("ans(x, z)\nx y : h\ny z : s")).Bind(db)
	rep, err := sess.PlanReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CostBased {
		t.Fatal("report not cost-based with the planner enabled")
	}
	if rep.Fragment != "CRPQ" {
		t.Fatalf("fragment = %q", rep.Fragment)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(rep.Steps))
	}
	if rep.Steps[0].Label != "s" {
		t.Fatalf("first step = %+v, want the selective s atom", rep.Steps[0])
	}
	if rep.Steps[0].EstPairs != 1 {
		t.Fatalf("s atom estimated pairs = %v, want 1", rep.Steps[0].EstPairs)
	}
	if rep.Steps[1].Mode != "expand-rev" {
		t.Fatalf("h atom mode = %q, want expand-rev (target bound)", rep.Steps[1].Mode)
	}
}

func TestPlanReportRevisionRecompute(t *testing.T) {
	db := skewedPlanDB()
	sess := MustPrepare(MustParse("ans(x, z)\nx y : h\ny z : s")).Bind(db)
	rep1, err := sess.PlanReport()
	if err != nil {
		t.Fatal(err)
	}
	db.AddEdgeNames("b1", 's', "c1")
	rep2, err := sess.PlanReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Revision == rep1.Revision {
		t.Fatal("report revision did not move with the database")
	}
	if rep2.Steps[0].EstPairs != 2 {
		t.Fatalf("recomputed s estimate = %v, want 2", rep2.Steps[0].EstPairs)
	}
}

func TestPlanReportStructuralFallback(t *testing.T) {
	prev := planner.SetEnabled(false)
	defer planner.SetEnabled(prev)
	db := skewedPlanDB()
	sess := MustPrepare(MustParse("ans(x, z)\nx y : h\ny z : s")).Bind(db)
	rep, err := sess.PlanReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CostBased {
		t.Fatal("disabled planner must report a structural plan")
	}
	if rep.Steps[0].Label != "h" {
		t.Fatalf("structural order starts with %q, want the first edge h", rep.Steps[0].Label)
	}
}

func TestExplainCarriesPlan(t *testing.T) {
	db := skewedPlanDB()
	sess := MustPrepare(MustParse("ans(x, z)\nx y : h\ny z : s")).Bind(db)
	ex, ok, err := sess.Explain(nil)
	if err != nil || !ok {
		t.Fatalf("explain: ok=%v err=%v", ok, err)
	}
	if ex.Plan == nil || len(ex.Plan.Steps) != 2 {
		t.Fatalf("explanation plan = %+v", ex.Plan)
	}
	// Bounded explain on a query with a string variable.
	sess2 := MustPrepare(MustParse("ans(x, z)\nx y : $w{h}\ny z : s")).Bind(db)
	ex2, ok, err := sess2.ExplainBounded(1, nil)
	if err != nil || !ok {
		t.Fatalf("explain bounded: ok=%v err=%v", ok, err)
	}
	if ex2.Plan == nil || len(ex2.Plan.Steps) != 2 {
		t.Fatalf("bounded explanation plan = %+v", ex2.Plan)
	}
}
