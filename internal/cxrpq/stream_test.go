package cxrpq_test

// Tests for the pull-based streaming layer (Session.Stream): a drained
// cursor must agree exactly with the materialized evaluation of the same
// semantics (differential property over the random query/graph generators,
// for every fragment dispatch and for the ≤k engine), ranked streams must
// yield nondecreasing witness costs with top-k a prefix of the full ranked
// order, limits and page sizes must not change the answer set, canceled
// budgets must neither hang nor yield unsound rows, and abandoned cursors
// interleaved with ApplyDelta writers must be race-free (the page protocol's
// parked-producer guarantee; run with -race).

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/workload"
)

// drainCursor pulls the whole stream with the given page size (short page =
// exhausted), failing on evaluation errors.
func drainCursor(t *testing.T, cur *cxrpq.Cursor, page int) []cxrpq.Row {
	t.Helper()
	var rows []cxrpq.Row
	for {
		p := cur.Fetch(page)
		rows = append(rows, p...)
		if len(p) < page {
			break
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return rows
}

func rowSet(rows []cxrpq.Row) *pattern.TupleSet {
	s := pattern.NewTupleSet()
	for _, r := range rows {
		s.Add(r.Tuple)
	}
	return s
}

// Property: a drained unranked stream equals the materialized evaluation of
// the same semantics — across fragments (auto dispatch where Eval is
// defined, bounded everywhere), page sizes, and cache states (stream before
// and after the materialized call).
func TestStreamMatchesEval(t *testing.T) {
	pages := []int{1, 3, 7, 1024}
	for seed := int64(0); seed < 60; seed++ {
		r := workload.NewRNG(seed)
		q := workload.RandomQuery(r, r.Intn(4) != 0)
		nodes := 3 + r.Intn(3)
		db := workload.Random(seed^0x51e4, nodes, nodes+r.Intn(nodes+3), "ab")
		sess := cxrpq.MustPrepare(q).Bind(db)
		page := pages[int(seed)%len(pages)]
		streamFirst := seed%2 == 0

		checkAgainst := func(opts cxrpq.StreamOptions, want *pattern.TupleSet, name string) {
			cur, err := sess.Stream(opts)
			if err != nil {
				t.Fatalf("seed %d: Stream(%s): %v\nquery:\n%s", seed, name, err, q.Pattern)
			}
			rows := drainCursor(t, cur, page)
			if cur.Truncated() {
				t.Fatalf("seed %d: %s stream truncated without a budget", seed, name)
			}
			if got := rowSet(rows); !got.Equal(want) {
				t.Fatalf("seed %d: %s stream %d tuples, eval %d tuples\nquery:\n%s",
					seed, name, got.Len(), want.Len(), q.Pattern)
			}
			if int64(len(rows)) != cur.RowsStreamed() {
				t.Fatalf("seed %d: RowsStreamed=%d, drained %d", seed, cur.RowsStreamed(), len(rows))
			}
		}

		// Bounded semantics: defined for every query.
		boundedOpts := cxrpq.StreamOptions{Semantics: "bounded", K: 1}
		if streamFirst {
			want := mustEvalBounded(t, sess, 1, seed)
			checkAgainst(boundedOpts, want, "bounded")
		} else {
			want := mustEvalBounded(t, sess, 1, seed)
			checkAgainst(boundedOpts, want, "bounded(cached)")
		}

		// Auto dispatch: only where Eval is defined for the fragment.
		if want, err := sess.Eval(); err == nil {
			checkAgainst(cxrpq.StreamOptions{}, want, "auto")
		}
	}
}

func mustEvalBounded(t *testing.T, sess *cxrpq.Session, k int, seed int64) *pattern.TupleSet {
	t.Helper()
	res, err := sess.EvalBounded(k)
	if err != nil {
		t.Fatalf("seed %d: EvalBounded: %v", seed, err)
	}
	return res
}

// Property: ranked streams yield the same tuple set as the unranked
// evaluation, with nondecreasing witness costs; Limit selects a prefix of
// the full ranked order (top-k); and using Next instead of Fetch sees the
// same sequence.
func TestStreamRanked(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := workload.NewRNG(seed ^ 0x9a9a)
		q := workload.RandomQuery(r, true)
		db := workload.Random(seed^0x3c3c, 4, 8, "ab")
		sess := cxrpq.MustPrepare(q).Bind(db)

		want := mustEvalBounded(t, sess, 1, seed)
		cur, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1, Ranked: true})
		if err != nil {
			t.Fatalf("seed %d: Stream ranked: %v", seed, err)
		}
		rows := drainCursor(t, cur, 5)
		if got := rowSet(rows); !got.Equal(want) {
			t.Fatalf("seed %d: ranked stream %d tuples, eval %d\nquery:\n%s",
				seed, got.Len(), want.Len(), q.Pattern)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Cost < rows[i-1].Cost {
				t.Fatalf("seed %d: ranked costs decrease at %d: %d after %d",
					seed, i, rows[i].Cost, rows[i-1].Cost)
			}
		}
		if len(rows) > 1 {
			k := 1 + int(seed)%len(rows)
			topk, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1, Ranked: true, Limit: k})
			if err != nil {
				t.Fatalf("seed %d: Stream top-k: %v", seed, err)
			}
			var got []cxrpq.Row
			for {
				row, ok := topk.Next()
				if !ok {
					break
				}
				got = append(got, row)
			}
			if len(got) != k {
				t.Fatalf("seed %d: top-%d yielded %d rows", seed, k, len(got))
			}
			for i, row := range got {
				if row.Cost != rows[i].Cost || row.Tuple.Key() != rows[i].Tuple.Key() {
					t.Fatalf("seed %d: top-%d row %d = (%v,%d), full order has (%v,%d)",
						seed, k, i, row.Tuple, row.Cost, rows[i].Tuple, rows[i].Cost)
				}
			}
		}
	}
}

// Unranked Limit caps the row count without changing soundness, and the
// rows are a subset of the full result.
func TestStreamLimit(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := workload.NewRNG(seed ^ 0x77)
		q := workload.RandomQuery(r, true)
		db := workload.Random(seed^0x88, 4, 9, "ab")
		sess := cxrpq.MustPrepare(q).Bind(db)
		full := mustEvalBounded(t, sess, 1, seed)
		if full.Len() < 2 {
			continue
		}
		limit := 1 + int(seed)%full.Len()
		cur, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1, Limit: limit})
		if err != nil {
			t.Fatalf("seed %d: Stream: %v", seed, err)
		}
		rows := drainCursor(t, cur, 2)
		if len(rows) != limit {
			t.Fatalf("seed %d: limit %d yielded %d rows", seed, limit, len(rows))
		}
		if cur.Truncated() {
			t.Fatalf("seed %d: limit stop must not report truncation", seed)
		}
		for _, row := range rows {
			if !full.Contains(row.Tuple) {
				t.Fatalf("seed %d: limited stream emitted %v outside the result", seed, row.Tuple)
			}
		}
	}
}

// A canceled context (and an expired deadline) truncates the stream
// promptly: no hang, Truncated reported, every emitted row sound.
func TestStreamCancellation(t *testing.T) {
	q := workload.RandomQuery(workload.NewRNG(3), true)
	db := workload.Random(0xbeef, 5, 12, "ab")
	sess := cxrpq.MustPrepare(q).Bind(db)
	full := mustEvalBounded(t, sess, 1, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first fetch
	cur, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1, Ctx: ctx})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	done := make(chan []cxrpq.Row, 1)
	go func() { done <- drainCursor(t, cur, 8) }()
	var rows []cxrpq.Row
	select {
	case rows = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("canceled stream did not finish")
	}
	if !cur.Truncated() {
		t.Fatal("canceled stream must report Truncated")
	}
	for _, row := range rows {
		if !full.Contains(row.Tuple) {
			t.Fatalf("canceled stream emitted unsound row %v", row.Tuple)
		}
	}

	past, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1,
		Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	_ = drainCursor(t, past, 8)
	if !past.Truncated() {
		t.Fatal("expired deadline must report Truncated")
	}

	// Closing a part-read cursor joins the producer and is idempotent.
	cur2, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	cur2.Fetch(1)
	cur2.Close()
	cur2.Close()
	if got := cur2.Fetch(5); got != nil {
		t.Fatalf("Fetch after Close returned %v", got)
	}
}

// Race stress (run under -race): cursors opened, part-read and abandoned by
// several goroutines, interleaved with ApplyDelta writers. The session's
// quiescent-mutation contract is per call here: the mutex serializes every
// session call and fetch against the writer, and the page protocol
// guarantees the producers are parked in between — so the only concurrency
// left is the cursor handshake itself, which must be clean.
func TestStreamAbandonWithWriters(t *testing.T) {
	q := workload.RandomQuery(workload.NewRNG(7), true)
	db := workload.Random(0x5157, 5, 10, "ab")
	sess := cxrpq.MustPrepare(q).Bind(db)

	var mu sync.Mutex // serializes session calls/fetches against mutations
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				mu.Lock()
				cur, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1, Ranked: i%2 == 1})
				mu.Unlock()
				if err != nil {
					t.Errorf("worker %d: Stream: %v", w, err)
					return
				}
				for j := 0; j <= (w+i)%3; j++ {
					mu.Lock()
					cur.Fetch(1 + j)
					mu.Unlock()
				}
				mu.Lock()
				cur.Close() // abandon mid-stream; joins the producer
				mu.Unlock()
				if err := cur.Err(); err != nil {
					t.Errorf("worker %d: abandoned cursor error: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			mu.Lock()
			_, err := sess.ApplyDelta(graph.Delta{Add: []graph.DeltaEdge{
				{From: fmt.Sprintf("w%d", i), Label: 'a', To: fmt.Sprintf("w%d", i+1)},
				{From: fmt.Sprintf("w%d", i+1), Label: 'b', To: "w0"},
			}})
			mu.Unlock()
			if err != nil {
				t.Errorf("writer: ApplyDelta: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the stream and the materialized evaluation
	// still agree on the final database.
	want := mustEvalBounded(t, sess, 1, 7)
	cur, err := sess.Stream(cxrpq.StreamOptions{Semantics: "bounded", K: 1})
	if err != nil {
		t.Fatalf("final Stream: %v", err)
	}
	if got := rowSet(drainCursor(t, cur, 64)); !got.Equal(want) {
		t.Fatalf("post-mutation stream %d tuples, eval %d", got.Len(), want.Len())
	}
}

// Request.Budget threads through Session.Do: a generous budget changes
// nothing; an exhausted one yields ErrCanceled (or a sound partial set)
// without poisoning the result cache for later unbudgeted calls.
func TestDoWithBudget(t *testing.T) {
	q := workload.RandomQuery(workload.NewRNG(11), true)
	db := workload.Random(0x1122, 4, 8, "ab")
	sess := cxrpq.MustPrepare(q).Bind(db)
	want := mustEvalBounded(t, sess, 1, 11)
	sess.Invalidate()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := sess.Do(cxrpq.Request{Op: "eval", Semantics: "bounded", K: 1,
		Budget: engine.NewBudget(ctx, time.Time{}, 0)})
	if resp.Err == nil && resp.Tuples != nil && !resp.Tuples.Equal(want) {
		t.Fatalf("truncated eval returned a full-looking but wrong set")
	}
	if resp.Tuples != nil {
		for _, tup := range resp.Tuples.Sorted() {
			if !want.Contains(tup) {
				t.Fatalf("truncated eval emitted unsound tuple %v", tup)
			}
		}
	}

	// The truncated call must not have cached a partial set.
	resp = sess.Do(cxrpq.Request{Op: "eval", Semantics: "bounded", K: 1})
	if resp.Err != nil {
		t.Fatalf("unbudgeted eval after truncation: %v", resp.Err)
	}
	if !resp.Tuples.Equal(want) {
		t.Fatalf("result cache poisoned by truncated call: %d tuples, want %d",
			resp.Tuples.Len(), want.Len())
	}
}

// rowLess replicates the default ranked comparator. Passing it as a custom
// Less is semantically a no-op but forces the legacy drain-then-sort
// producer (a custom comparator forfeits the incremental path) — which makes
// it the differential baseline for the incremental any-k stream.
func rowLess(a, b cxrpq.Row) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	for i := 0; i < len(a.Tuple) && i < len(b.Tuple); i++ {
		if a.Tuple[i] != b.Tuple[i] {
			return a.Tuple[i] < b.Tuple[i]
		}
	}
	return len(a.Tuple) < len(b.Tuple)
}

// Property: for every k, the incremental any-k ranked stream is exactly the
// k-prefix of the historical full-drain-and-sort ranked order — across 60
// random query/graph seeds, both semantics dispatches, unit and pluggable
// weights — and its costs never decrease.
func TestStreamAnyKPrefixEqualsDrain(t *testing.T) {
	weights := []engine.Weight{
		nil,
		func(label rune) int32 {
			if label == 'b' {
				return 3
			}
			return 1
		},
	}
	for seed := int64(0); seed < 60; seed++ {
		r := workload.NewRNG(seed ^ 0x4a11)
		q := workload.RandomQuery(r, true)
		db := workload.Random(seed^0x77aa, 4, 9, "ab")
		sess := cxrpq.MustPrepare(q).Bind(db)

		type dispatch struct {
			sem string
			k   int
		}
		dispatches := []dispatch{{"bounded", 1}}
		if _, err := sess.Eval(); err == nil {
			dispatches = append(dispatches, dispatch{"auto", 0})
		}
		for _, d := range dispatches {
			for wi, w := range weights {
				opts := cxrpq.StreamOptions{Semantics: d.sem, K: d.k, Ranked: true, Weight: w}

				drainOpts := opts
				drainOpts.Less = rowLess // baseline: legacy drain-then-sort
				base, err := sess.Stream(drainOpts)
				if err != nil {
					t.Fatalf("seed %d %s w%d: baseline Stream: %v", seed, d.sem, wi, err)
				}
				want := drainCursor(t, base, 7)

				inc, err := sess.Stream(opts)
				if err != nil {
					t.Fatalf("seed %d %s w%d: any-k Stream: %v", seed, d.sem, wi, err)
				}
				got := drainCursor(t, inc, 7)
				if len(got) != len(want) {
					t.Fatalf("seed %d %s w%d: any-k %d rows, drain %d\nquery:\n%s",
						seed, d.sem, wi, len(got), len(want), q.Pattern)
				}
				for i := range want {
					if got[i].Cost != want[i].Cost || got[i].Tuple.Key() != want[i].Tuple.Key() {
						t.Fatalf("seed %d %s w%d: row %d any-k (%v,%d), drain (%v,%d)",
							seed, d.sem, wi, i, got[i].Tuple, got[i].Cost, want[i].Tuple, want[i].Cost)
					}
					if i > 0 && got[i].Cost < got[i-1].Cost {
						t.Fatalf("seed %d %s w%d: costs decrease at row %d", seed, d.sem, wi, i)
					}
				}

				for k := 1; k <= len(want); k++ {
					kOpts := opts
					kOpts.Limit = k
					topk, err := sess.Stream(kOpts)
					if err != nil {
						t.Fatalf("seed %d %s w%d k=%d: Stream: %v", seed, d.sem, wi, k, err)
					}
					rows := drainCursor(t, topk, 3)
					if len(rows) != k {
						t.Fatalf("seed %d %s w%d: top-%d yielded %d rows", seed, d.sem, wi, k, len(rows))
					}
					for i := range rows {
						if rows[i].Cost != want[i].Cost || rows[i].Tuple.Key() != want[i].Tuple.Key() {
							t.Fatalf("seed %d %s w%d: top-%d row %d = (%v,%d), full order has (%v,%d)",
								seed, d.sem, wi, k, i, rows[i].Tuple, rows[i].Cost, want[i].Tuple, want[i].Cost)
						}
					}
				}
			}
		}
	}
}

// Table test for ranked Limit semantics: Limit == 0 streams every row, any
// positive Limit yields exactly min(limit, total) rows as a prefix of the
// full ranked order, with no off-by-one when rows tie on equal costs — under
// the incremental default comparator and under a custom Less whose ties make
// the drain path's sort unstable on purpose.
func TestStreamRankedLimitTable(t *testing.T) {
	// Three cost-1 ties and one cost-2 row under ans(x, y), x y : ab?.
	db := graph.MustParse("u a v1\nu a v2\nu a v3\nv1 b w\nv2 b w")
	plan, err := cxrpq.PrepareSrc("ans(x, y)\nx y : ab?")
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.Bind(db)

	full, err := sess.Stream(cxrpq.StreamOptions{Ranked: true})
	if err != nil {
		t.Fatal(err)
	}
	order := drainCursor(t, full, 10)
	if len(order) != 4 || order[3].Cost != 2 {
		t.Fatalf("fixture drifted: full ranked order %v", order)
	}

	costOnly := func(a, b cxrpq.Row) bool { return a.Cost < b.Cost } // ties on every equal cost
	for _, limit := range []int{0, 1, 2, 3, 4, 5} {
		want := len(order)
		if limit > 0 && limit < want {
			want = limit
		}
		for _, less := range []func(a, b cxrpq.Row) bool{nil, costOnly} {
			cur, err := sess.Stream(cxrpq.StreamOptions{Ranked: true, Limit: limit, Less: less})
			if err != nil {
				t.Fatal(err)
			}
			rows := drainCursor(t, cur, 2)
			if len(rows) != want {
				t.Fatalf("limit=%d less=%v: %d rows, want %d", limit, less != nil, len(rows), want)
			}
			for i, row := range rows {
				if row.Cost != order[i].Cost {
					t.Fatalf("limit=%d less=%v: row %d cost %d, want %d", limit, less != nil, i, row.Cost, order[i].Cost)
				}
				if less == nil && row.Tuple.Key() != order[i].Tuple.Key() {
					t.Fatalf("limit=%d: row %d = %v, full order has %v", limit, i, row.Tuple, order[i].Tuple)
				}
			}
			if cur.Truncated() {
				t.Fatalf("limit=%d less=%v: limit stop reported truncation", limit, less != nil)
			}
		}
	}
}

// A ranked stream cut by its deadline serves the rows collected so far like
// a complete top-k — sound, deduplicated, nondecreasing — with Truncated
// latched on the pages, and the truncated set never enters any cache: a
// fresh ranked stream afterwards is complete again.
func TestStreamRankedDeadlineTruncated(t *testing.T) {
	plan, err := cxrpq.PrepareSrc("ans(x, z)\nx y : a+\ny z : b+")
	if err != nil {
		t.Fatal(err)
	}
	db := workload.Random(0x7e57, 30, 120, "ab")
	sess := plan.Bind(db)

	full, err := sess.Stream(cxrpq.StreamOptions{Ranked: true})
	if err != nil {
		t.Fatal(err)
	}
	order := drainCursor(t, full, 16)
	if len(order) < 3 {
		t.Fatalf("fixture drifted: only %d ranked rows", len(order))
	}
	fullSet := rowSet(order)

	// Cancel after the first page: the producer is parked between pages, so
	// the cut lands mid-enumeration deterministically.
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := sess.Stream(cxrpq.StreamOptions{Ranked: true, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	first := cur.Fetch(1)
	if len(first) != 1 || first[0].Tuple.Key() != order[0].Tuple.Key() || first[0].Cost != order[0].Cost {
		t.Fatalf("first ranked row = %v, want %v", first, order[0])
	}
	cancel()
	rows := append(first, cur.Fetch(1<<20)...)
	for cur.Err() == nil && !cur.Truncated() {
		p := cur.Fetch(1 << 20)
		rows = append(rows, p...)
		if len(p) == 0 {
			break
		}
	}
	if !cur.Truncated() {
		t.Fatal("canceled ranked stream must report Truncated")
	}
	seen := map[string]bool{}
	for i, row := range rows {
		if !fullSet.Contains(row.Tuple) {
			t.Fatalf("truncated ranked stream emitted unsound row %v", row.Tuple)
		}
		if seen[string(row.Tuple.Key())] {
			t.Fatalf("truncated ranked stream duplicated %v", row.Tuple)
		}
		seen[string(row.Tuple.Key())] = true
		if i > 0 && row.Cost < rows[i-1].Cost {
			t.Fatalf("truncated ranked stream costs decrease at %d", i)
		}
	}
	cur.Close()

	// An expired deadline before the first fetch behaves the same way.
	past, err := sess.Stream(cxrpq.StreamOptions{Ranked: true, Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range past.Fetch(1 << 20) {
		if !fullSet.Contains(row.Tuple) {
			t.Fatalf("expired-deadline stream emitted unsound row %v", row.Tuple)
		}
	}
	if !past.Truncated() {
		t.Fatal("expired-deadline ranked stream must report Truncated")
	}

	// The truncated ranked set must not have entered any cache: a fresh
	// ranked stream and the materialized evaluation are both complete.
	again, err := sess.Stream(cxrpq.StreamOptions{Ranked: true})
	if err != nil {
		t.Fatal(err)
	}
	rows2 := drainCursor(t, again, 16)
	if len(rows2) != len(order) {
		t.Fatalf("ranked stream after truncation: %d rows, want %d (truncated set cached?)", len(rows2), len(order))
	}
	for i := range order {
		if rows2[i].Tuple.Key() != order[i].Tuple.Key() || rows2[i].Cost != order[i].Cost {
			t.Fatalf("ranked stream after truncation diverges at row %d", i)
		}
	}
	if want, err := sess.Eval(); err == nil {
		if !rowSet(rows2).Equal(want) {
			t.Fatalf("ranked stream after truncation disagrees with Eval")
		}
	}
}
