package cxrpq

import (
	"cxrpq/internal/crpq"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

// InstantiateCXRE implements Lemma 10 at the tuple level: given a fixed
// variable mapping v̄, it returns a tuple β̄ of classical regular
// expressions with L(β̄) = L_v̄(ᾱ) — the conjunctive matches of ᾱ whose
// variable mapping is exactly v̄.
//
// Steps (following the proof of Lemma 10):
//  1. cut every definition that cannot produce its intended image (with
//     nested definitions and references replaced by their images), with
//     ∅-propagation realizing the delete-up-to-alternation surgery;
//  2. for every variable with a non-empty image that is defined in the
//     tuple, force its (unique defining) component to instantiate a
//     definition — if no definition survived step 1, the whole tuple
//     becomes (∅, …, ∅);
//  3. replace all remaining definitions and references by the images.
//
// Variables that are free in ᾱ (no definition anywhere) take their images
// from the dummy definitions of the ⟨γ⟩_int semantics and need no forcing.
func InstantiateCXRE(c CXRE, v map[string]string, sigma []rune) (CXRE, error) {
	sigma = xregex.InstantiationAlphabet(xregex.MergeAlphabets(sigma, c.Alphabet()), v)
	defined := c.DefinedVars()

	// Step 1: cut failing definitions per component.
	cut := make([]xregex.Node, len(c))
	for i, n := range c {
		cn, err := xregex.CutFailedDefs(n, v, sigma)
		if err != nil {
			return nil, err
		}
		cut[i] = xregex.Simplify(cn)
	}

	empty := func() CXRE {
		out := make(CXRE, len(c))
		for i := range out {
			out[i] = &xregex.Empty{}
		}
		return out
	}

	// Step 2: force instantiation for non-empty images of defined variables.
	for x := range defined {
		if v[x] == "" {
			continue
		}
		found := false
		for i := range cut {
			if xregex.ContainsDef(cut[i], x) {
				cut[i] = xregex.Simplify(xregex.ForceVar(cut[i], x))
				found = true
			}
		}
		if !found {
			// no surviving definition can produce v[x] ≠ ε
			return empty(), nil
		}
	}

	// Step 3: replace definitions and references by the images.
	out := make(CXRE, len(c))
	for i := range cut {
		out[i] = xregex.Simplify(xregex.SubstituteAllVars(cut[i], v))
		if !xregex.IsClassical(out[i]) {
			panic("cxrpq: instantiation left variables behind")
		}
	}
	return out, nil
}

// InstantiateCRPQ implements Lemma 11: for a fixed variable mapping v̄ it
// returns a CRPQ q′ with q′(D) = q_v̄(D) for every database D.
func (q *Query) InstantiateCRPQ(v map[string]string, sigma []rune) (*crpq.Query, error) {
	inst, err := InstantiateCXRE(q.CXRE(), v, sigma)
	if err != nil {
		return nil, err
	}
	g := &pattern.Graph{Out: append([]string(nil), q.Pattern.Out...)}
	for i, e := range q.Pattern.Edges {
		g.Edges = append(g.Edges, pattern.Edge{From: e.From, To: e.To, Label: inst[i]})
	}
	return crpq.New(g)
}
