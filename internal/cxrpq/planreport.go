package cxrpq

import (
	"cxrpq/internal/automata"
	"cxrpq/internal/graph"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

// This file is the explain surface of the planning layer: the physical
// plan a Session would use for the query's conjunctive skeleton, rendered
// with variable names and per-step cardinality estimates. The plan is
// computed from the Σ*-relaxed classical approximation of each atom (the
// same relaxation the bounded engine prunes with) crossed with the
// database's per-label statistics, and cached in the session's cache epoch
// — so it is recomputed exactly when the DB revision moves, next to the
// relation and feasibility caches.

// PlanStep is one entry of a PlanReport: the pattern edge placed at this
// plan position, how the join visits it, and the cost model's estimates.
type PlanStep struct {
	Edge     int     `json:"edge"` // index into the query pattern's edges
	From     string  `json:"from"`
	To       string  `json:"to"`
	Label    string  `json:"label"` // the edge's xregex (original form)
	Mode     string  `json:"mode"`  // check | expand | expand-rev | scan
	EstPairs float64 `json:"est_pairs"`
	EstCost  float64 `json:"est_cost"`
	EstRows  float64 `json:"est_rows"`
}

// PlanTreeNode is one node of the join tree in a PlanReport, listed in
// parent-before-child order.
type PlanTreeNode struct {
	Edge   int      `json:"edge"`             // index into the query pattern's edges
	Parent int      `json:"parent"`           // parent's edge index; -1 for the root
	Shared []string `json:"shared,omitempty"` // join variables shared with the parent
}

// PlanReport is the humanly (and machine) readable physical plan of a
// prepared query bound to a database: the chosen join order with estimated
// cardinalities, plus the planner-v2 rewrites — which atoms the
// containment-based minimization pass deletes, whether the (minimized)
// conjunct graph is acyclic and free-connex, its join tree, and which join
// strategy the leaf joins would take. CostBased reports whether the
// cost-based planner chose the order (false: the structural fallback).
type PlanReport struct {
	Fragment  string     `json:"fragment"`
	Revision  uint64     `json:"revision"`
	CostBased bool       `json:"cost_based"`
	Steps     []PlanStep `json:"steps"`
	TotalCost float64    `json:"total_cost"`
	EstRows   float64    `json:"est_rows"`

	// Planner-v2 rewrite report. MinimizedAtoms lists the edge indices the
	// containment pass proves redundant (evaluation skips them); Acyclic /
	// FreeConnex classify the conjunct graph that remains; JoinTree is its
	// GYO join tree when acyclic; Strategy is "yannakakis" when the leaf
	// joins would run the semijoin program over that tree (acyclic, cost
	// estimate above the session's semijoin floor, switch on) and
	// "backtracking" otherwise.
	MinimizedAtoms []int          `json:"minimized_atoms,omitempty"`
	Acyclic        bool           `json:"acyclic"`
	FreeConnex     bool           `json:"free_connex"`
	JoinTree       []PlanTreeNode `json:"join_tree,omitempty"`
	Strategy       string         `json:"strategy"`
}

// plannerPlan returns the session's cached physical plan for the query
// pattern, computing it on first use within the current cache epoch: each
// atom's label is Σ*-relaxed to a classical expression, compiled, and
// estimated against the database statistics; the planner then orders the
// atoms with no variables pre-bound.
func (sc *sessionCaches) plannerPlan(db *graph.DB, q *Query, sigma []rune) ([]planner.Atom, *planner.PlanSpec, error) {
	sc.planMu.Lock()
	defer sc.planMu.Unlock()
	if sc.planDone {
		return sc.planAtoms, sc.planSpec, sc.planErr
	}
	sc.planDone = true
	st := db.Stats()
	atoms := make([]planner.Atom, len(q.Pattern.Edges))
	minAtoms := make([]planner.MinAtom, len(q.Pattern.Edges))
	refs := make([]planner.EdgeRef, len(q.Pattern.Edges))
	for i, e := range q.Pattern.Edges {
		relaxed, err := relaxCut(e.Label, map[string]string{}, sigma)
		if err != nil {
			sc.planErr = err
			return nil, nil, err
		}
		m, err := xregex.Compile(xregex.Simplify(relaxed), sigma)
		if err != nil {
			sc.planErr = err
			return nil, nil, err
		}
		atoms[i] = planner.Atom{From: e.From, To: e.To, Est: planner.EstimateNFA(st, m)}
		refs[i] = planner.EdgeRef{From: e.From, To: e.To}
		minAtoms[i] = planner.MinAtom{From: e.From, To: e.To}
		if !xregex.HasVars(e.Label) {
			// Only variable-free atoms participate in minimization: the
			// relaxed NFA is then the atom's exact language. (The ecrpq
			// evaluator applies the same restriction via its entry caches.)
			minAtoms[i].Cache = automata.NewSubsetCache(m)
		}
	}
	drop := planner.Minimize(minAtoms, 0)
	for i, d := range drop {
		if d {
			sc.planMin = append(sc.planMin, i)
		}
	}
	if tree, ok := planner.BuildJoinTree(refs, drop); ok {
		sc.planTree = tree
		sc.planFC = planner.FreeConnex(refs, drop, q.Pattern.Out)
	}
	sc.planAtoms = atoms
	sc.planSpec = planner.Order(atoms, nil)
	return sc.planAtoms, sc.planSpec, nil
}

// PlanReport returns the physical plan the session's evaluation paths
// derive from the current database revision: the planner-chosen join order
// over the query's atoms with estimated cardinalities. It is a debug/
// observability surface (the cxrpq-serve /plan endpoint serves it); the
// bounded engine's leaf joins refine the same model with exact relation
// counts per mapping.
func (s *Session) PlanReport() (*PlanReport, error) {
	sc, _, sigma := s.current()
	atoms, spec, err := sc.plannerPlan(s.db, s.plan.q, sigma)
	if err != nil {
		return nil, err
	}
	rep := &PlanReport{
		Fragment:  s.plan.fragment,
		Revision:  s.db.Revision(),
		CostBased: spec.CostBased,
		TotalCost: spec.Cost,
		EstRows:   spec.Rows,
		Strategy:  "backtracking",
	}
	sc.planMu.Lock()
	rep.MinimizedAtoms = append([]int(nil), sc.planMin...)
	if tree := sc.planTree; tree != nil {
		rep.Acyclic = true
		rep.FreeConnex = sc.planFC
		for _, i := range tree.Order {
			p := -1
			if tree.Parent[i] >= 0 {
				p = tree.Parent[i]
			}
			rep.JoinTree = append(rep.JoinTree, PlanTreeNode{
				Edge: i, Parent: p,
				Shared: append([]string(nil), tree.Shared[i]...),
			})
		}
		floor := sc.semijoinFloor
		if floor == 0 {
			floor = planner.SemijoinFloor()
		}
		if planner.YannakakisEnabled() && spec.CostBased && floor >= 0 && spec.Cost >= floor {
			rep.Strategy = "yannakakis"
		}
	}
	sc.planMu.Unlock()
	for _, step := range spec.Steps {
		ei := step.Atom
		e := s.plan.q.Pattern.Edges[ei]
		rep.Steps = append(rep.Steps, PlanStep{
			Edge:     ei,
			From:     e.From,
			To:       e.To,
			Label:    xregex.String(e.Label),
			Mode:     string(step.Mode),
			EstPairs: atoms[ei].Est.Pairs,
			EstCost:  step.Cost,
			EstRows:  step.Rows,
		})
	}
	return rep, nil
}
