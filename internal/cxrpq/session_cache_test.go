package cxrpq_test

// Eviction edge cases for the session-scoped bounded caches: a relation
// cache far smaller than the number of distinct instantiated labels must
// still produce exact results (entries are pure caches), the eviction
// counter must move, and the result cache must report hits on repeated
// calls and honor its disable switch.

import (
	"testing"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/workload"
)

func TestSessionRelCacheEviction(t *testing.T) {
	q := cxrpq.MustParse("ans(p, q)\np m : $x{a|b}c?\nm n : $y{$x|b}($x|$y)\nn q : $x+|b\n")
	db := workload.Random(11, 6, 14, "abc")
	const k = 2

	want, err := cxrpq.EvalBoundedNaive(q, db, k)
	if err != nil {
		t.Fatal(err)
	}

	plan := cxrpq.MustPrepare(q)
	// Capacity 2 forces constant epoch drops (a 3-edge query instantiates
	// far more than 2 distinct labels per mapping sweep); result caching is
	// disabled so the second call recomputes through the starved cache.
	sess := plan.BindOpts(db, cxrpq.SessionOptions{RelCacheCap: 2, FeasCacheCap: 4, ResultCacheCap: -1})

	for call := 0; call < 2; call++ {
		got, err := sess.EvalBounded(k)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		if !got.Equal(want) {
			t.Fatalf("call %d: wrong result under eviction pressure: %d tuples, want %d",
				call, got.Len(), want.Len())
		}
	}
	st := sess.Stats()
	if st.Rel.Evictions == 0 {
		t.Fatalf("expected relation-cache evictions at capacity 2, got %+v", st.Rel)
	}
	if st.Rel.Size > 2 {
		t.Fatalf("relation cache exceeded its capacity: %+v", st.Rel)
	}
	if st.Rel.Misses == 0 {
		t.Fatalf("expected relation-cache misses, got %+v", st.Rel)
	}
	if st.ResultHits != 0 || st.ResultMisses != 0 {
		t.Fatalf("result cache disabled but counted: %+v", st)
	}

	// An amply sized session must agree with the starved one and show
	// result-cache hits on the repeated call.
	roomy := plan.Bind(db)
	r1, err := roomy.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := roomy.EvalBounded(k)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(want) || !r2.Equal(want) {
		t.Fatal("roomy session diverged")
	}
	rst := roomy.Stats()
	if rst.ResultHits == 0 {
		t.Fatalf("expected a result-cache hit on the repeated call, got %+v", rst)
	}
	if rst.Rel.Evictions != 0 {
		t.Fatalf("roomy session should not evict, got %+v", rst.Rel)
	}
}

// The feasibility memo must also survive overflow (epoch drop) without
// affecting results: a tiny FeasCacheCap exercises the drop path on every
// enumeration sweep.
func TestSessionFeasMemoOverflow(t *testing.T) {
	q := cxrpq.MustParse("ans(p)\np m : $x{a|b}\nm q : $y{$x a?}$y\n")
	db := workload.Random(3, 5, 12, "ab")
	want, err := cxrpq.EvalBoundedNaive(q, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess := cxrpq.MustPrepare(q).BindOpts(db, cxrpq.SessionOptions{FeasCacheCap: 1, ResultCacheCap: -1})
	for i := 0; i < 2; i++ {
		got, err := sess.EvalBounded(2)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("wrong result with overflowing feasibility memo: %d vs %d tuples", got.Len(), want.Len())
		}
	}
}
