package cxrpq

import (
	"fmt"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

// Explanation is a full witness for one match of a CXRPQ: the matching
// morphism h on the query's node variables, a tuple of matching words (one
// per query edge), and the variable mapping ψ of the underlying conjunctive
// match (§3.1). This realizes, for a single match, the path-extraction
// capability the paper sketches in §8.
type Explanation struct {
	NodeOf map[string]int    // node variable -> database node
	Words  []string          // per original query edge, the matched path label
	Images map[string]string // string variable -> image

	// Plan is the physical plan of the query on the database the witness
	// was found in — the planner-chosen join order with estimated
	// cardinalities. The Session explain paths attach it (best effort;
	// nil when explaining through a one-shot helper that bypasses them).
	Plan *PlanReport
}

// ExplainVsf searches for one match of a vstar-free query (optionally
// constrained to output tuple t; pass nil for any match) and reconstructs
// its witness. It returns false if D ̸|= q.
func ExplainVsf(q *Query, db *graph.DB, t pattern.Tuple) (*Explanation, bool, error) {
	c := q.CXRE()
	if !c.IsVStarFree() {
		return nil, false, fmt.Errorf("cxrpq: ExplainVsf requires a vstar-free query")
	}
	origDefined := c.DefinedVars()
	var result *Explanation
	err := branchCombos(c, func(combo CXRE) error {
		simple, repl, err := step3WithMap(combo)
		if err != nil {
			return err
		}
		g := &pattern.Graph{Out: append([]string(nil), q.Pattern.Out...)}
		for i, e := range q.Pattern.Edges {
			g.Edges = append(g.Edges, pattern.Edge{From: e.From, To: e.To, Label: simple[i]})
		}
		forcedEps := map[string]bool{}
		nowDefined := simple.DefinedVars()
		for v := range origDefined {
			if !nowDefined[v] {
				forcedEps[v] = true
			}
		}
		tr, err := simpleToECRPQerInfo(&Query{Pattern: g}, forcedEps)
		if err != nil {
			return err
		}
		w, ok, err := ecrpq.FindWitness(tr.Query, db, t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		result = buildExplanation(q, tr, repl, w)
		return errStop
	})
	if err != nil && err != errStop {
		return nil, false, err
	}
	return result, result != nil, nil
}

// ExplainBounded searches for one match under CXRPQ^≤k semantics and
// reconstructs its witness (images come from the Theorem 6 enumeration);
// the one-shot wrapper over Session.ExplainBounded, which runs the bounded
// engine sequentially with a witness-search leaf.
func ExplainBounded(q *Query, db *graph.DB, k int, t pattern.Tuple) (*Explanation, bool, error) {
	p, err := Prepare(q)
	if err != nil {
		return nil, false, err
	}
	return p.Bind(db).ExplainBounded(k, t)
}

// buildExplanation maps an ECRPQ^er witness back through the translation:
// per-original-edge words are the concatenation of the split edges' words;
// variable images come from definition edges, free-variable reference
// edges, forced-ε variables, and the Step 3 replacement lists.
func buildExplanation(q *Query, tr *SimpleTranslation, repl map[string][]string, w *ecrpq.Witness) *Explanation {
	ex := &Explanation{
		NodeOf: map[string]int{},
		Words:  make([]string, len(q.Pattern.Edges)),
		Images: map[string]string{},
	}
	// restrict node assignment to the original pattern's variables
	origVars := map[string]bool{}
	for _, v := range q.Pattern.Vars() {
		origVars[v] = true
	}
	for v, n := range w.NodeOf {
		if origVars[v] {
			ex.NodeOf[v] = n
		}
	}
	for i, split := range tr.EdgeSplit {
		word := ""
		for _, ei := range split {
			word += w.Words[ei]
		}
		ex.Words[i] = word
	}
	for x, ei := range tr.DefEdge {
		ex.Images[x] = w.Words[ei]
	}
	for x, eis := range tr.RefEdges {
		if _, ok := ex.Images[x]; !ok && len(eis) > 0 {
			ex.Images[x] = w.Words[eis[0]] // free variable: shared word
		}
	}
	for x := range tr.ForcedEps {
		ex.Images[x] = ""
	}
	// resolve aliases from collapsed x{y} definitions (chains resolve in a
	// bounded number of passes)
	for pass := 0; pass < len(tr.Alias)+1; pass++ {
		changed := false
		for x, y := range tr.Alias {
			if _, ok := ex.Images[x]; ok {
				continue
			}
			if v, ok := ex.Images[y]; ok {
				ex.Images[x] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// resolve variables eliminated by Step 3: image = concatenation of the
	// replacement variables' images (all of which survive)
	queryVars := q.CXRE().Vars()
	for z, parts := range repl {
		if !queryVars[z] {
			continue
		}
		img := ""
		complete := true
		for _, y := range parts {
			v, ok := ex.Images[y]
			if !ok {
				complete = false
				break
			}
			img += v
		}
		if complete {
			ex.Images[z] = img
		}
	}
	// report only the original query's string variables
	for x := range ex.Images {
		if !queryVars[x] {
			delete(ex.Images, x)
		}
	}
	return ex
}
