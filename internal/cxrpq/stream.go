package cxrpq

// Pull-based (any-k) result streaming for prepared sessions. Session.Stream
// turns the push-with-cancel enumeration loops of the lower layers
// (ecrpq.EvalStream, the bounded engine's streaming leaf) into a Cursor the
// consumer drives: rows are produced strictly on demand, so the first row of
// a large result costs a small prefix of the full evaluation, and an
// abandoned cursor stops paying immediately.
//
// The Cursor runs the enumeration in one producer goroutine under a strict
// request/response page protocol: every Fetch(n) sends one request and
// receives exactly one page of up to n rows; the producer parks on the
// request channel the moment a page is full. Between Fetch calls the
// producer is therefore provably quiescent — it holds no lock, reads no
// session state, and cannot race a writer — which is what makes interleaving
// cursors with ApplyDelta mutations safe as long as no Fetch overlaps the
// write (the session's usual quiescent-mutation contract, per call instead
// of per drain). Close stops the cursor's budget, unwinds the producer at
// its next budget poll, and joins it before returning.
//
// Ranked mode (shortest-witness-first) streams incrementally under the
// default comparator: the producer runs the any-k enumerator
// (ecrpq.AnyK) — a priority queue over partial join assignments keyed by
// admissible lower bounds from the kernels' level indices — whose pops
// arrive in nondecreasing witness cost, so the first occurrence of a tuple
// IS its minimal cost and top-k costs O(k) queue expansions instead of a
// full drain. Equal-cost runs are buffered and sorted lexicographically
// before emission, making the output sequence identical to the historical
// drain-then-sort. A custom Less falls back to that drain — an arbitrary
// comparator's order can only be known once every row has been enumerated —
// and a witness cost under a pluggable StreamOptions.Weight rides either
// path. In all ranked modes costs are nondecreasing across the stream.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/pattern"
)

// Row is one streamed result: the output tuple and, on ranked streams, its
// witness length (the number of graph edges on the shortest witness paths of
// the assignment that produced it; 0 on unranked streams).
type Row struct {
	Tuple pattern.Tuple
	Cost  int
}

// StreamOptions configures one Session.Stream call. The zero value streams
// the fragment-dispatched evaluation (like Session.Eval) unranked, unbounded
// and unlimited.
type StreamOptions struct {
	// Semantics selects the evaluation: ""/"auto" dispatches by fragment
	// (classical/simple/vstar-free; unrestricted queries error, as in Eval),
	// "bounded" forces CXRPQ^≤K semantics, "log" CXRPQ^log.
	Semantics string
	K         int // image bound for Semantics == "bounded"

	// Ranked orders the stream shortest-witness-first (nondecreasing Cost).
	// Under the default comparator the stream is incremental (any-k); see
	// the package comment.
	Ranked bool

	// Less overrides the ranked comparator (default: Cost ascending, then
	// lexicographic tuple order). Ignored unless Ranked. A custom Less
	// forfeits incremental streaming: the producer drains and sorts.
	Less func(a, b Row) bool

	// Weight generalizes the ranked witness cost from edge count to a
	// pluggable per-edge-label weight (engine.Weight; nil = unit cost).
	// Ignored unless Ranked. Weighted evaluations bypass the session's
	// cross-query relation caches — a weight function has no cache
	// identity — so they trade cache reuse for the custom metric.
	Weight engine.Weight

	// Limit caps the total number of rows the cursor yields (0 = all).
	// On ranked streams this is top-k selection.
	Limit int

	// Deadline and Ctx bound the evaluation: once the deadline passes or the
	// context is done, the enumeration unwinds at its next budget poll and
	// the cursor reports Truncated. Zero/nil impose no bound.
	Deadline time.Time
	Ctx      context.Context
}

// cursorPage is one producer→consumer transfer: up to the requested number
// of rows, plus — on the final page — the enumeration's outcome.
type cursorPage struct {
	rows      []Row
	final     bool
	err       error
	truncated bool
}

// Cursor is a pull-based result iterator; obtain one from Session.Stream.
// It is NOT safe for concurrent use (one consumer drives it), and it must be
// Closed when abandoned before exhaustion — Close releases the producer
// goroutine. Iterating past the end is fine without Close.
type Cursor struct {
	bud   *engine.Budget
	reqs  chan int
	pages chan cursorPage

	buf        []Row // rows fetched but not yet returned by Next
	nextWant   int   // escalating page size for Next
	rowsOut    int64
	err        error
	truncated  bool
	exhausted  bool
	closed     bool
	reqsClosed bool
}

// streamRun is the producer-side enumeration of one Stream dispatch: it
// pushes every row into emit and honors emit's false return by unwinding.
type streamRun func(emit func(t pattern.Tuple, cost int) bool) error

// Stream starts a pull-based enumeration of the query's results and returns
// its cursor. Rows are computed as the consumer demands them (Next/Fetch);
// see StreamOptions for semantics, ranking, limits and deadlines, and the
// Cursor type for the concurrency contract. Construction-time failures
// (unknown semantics, fragment mismatch, translation errors) surface here;
// evaluation-time failures surface on the final fetch through Cursor.Err.
func (s *Session) Stream(opts StreamOptions) (*Cursor, error) {
	bounded, k := false, 0
	switch opts.Semantics {
	case "", "auto":
		if s.plan.kind == kindGeneral {
			return nil, fmt.Errorf("cxrpq: %s is not vstar-free; stream with Semantics \"bounded\" or \"log\"", s.plan.fragment)
		}
	case "bounded":
		bounded, k = true, opts.K
	case "log":
		bounded, k = true, logBound(s.db)
	default:
		return nil, fmt.Errorf("cxrpq: unknown stream semantics %q", opts.Semantics)
	}
	bud := engine.NewBudget(opts.Ctx, opts.Deadline, 0)
	if opts.Ranked && opts.Less == nil {
		build, err := s.anyKBuilderFor(bounded, k, bud, opts.Weight)
		if err != nil {
			return nil, err
		}
		if build != nil {
			return newCursor(bud, opts, nil, build), nil
		}
	}
	run, err := s.streamRunFor(bounded, k, opts.Ranked, opts.Weight, bud)
	if err != nil {
		return nil, err
	}
	return newCursor(bud, opts, run, nil), nil
}

// anyKBuilderFor builds the deferred constructor of the incremental any-k
// enumerator for one ranked dispatch under the default comparator. It
// returns (nil, nil) when the dispatch has no incremental path (the VSF
// branch-combination overflow case) — the caller falls back to the drain.
// The constructor itself runs on the producer goroutine: for query-form
// dispatches it only registers roots (evaluation is lazy behind Next), while
// the bounded dispatch first enumerates the variable mappings and builds
// their relations, deferring every leaf join onto the queue.
func (s *Session) anyKBuilderFor(bounded bool, k int, bud *engine.Budget, w engine.Weight) (func() (*ecrpq.AnyK, error), error) {
	if bounded {
		sc, _, sigma := s.current()
		bp, err := s.plan.boundedPlanFor()
		if err != nil {
			return nil, err
		}
		return func() (*ecrpq.AnyK, error) {
			e, err := newBoundedEngine(bp, s.db, k, false, nil, sc, sigma)
			if err != nil {
				return nil, err
			}
			e.setBudget(bud)
			e.ranked = true
			e.seq = true // AnyK is single-consumer; leaves run on this goroutine
			e.weight = w
			ak := ecrpq.NewAnyK(bud)
			e.anyk = ak
			if _, err := e.run(); err != nil {
				return nil, err
			}
			return ak, nil
		}, nil
	}
	switch s.plan.kind {
	case kindClassical, kindSimple:
		eq, err := s.plan.simpleQuery()
		if err != nil {
			return nil, err
		}
		return func() (*ecrpq.AnyK, error) {
			ak := ecrpq.NewAnyK(bud)
			if err := ak.AddQuery(eq, s.db, w); err != nil {
				return nil, err
			}
			return ak, nil
		}, nil
	case kindVsf:
		combos, overflow, err := s.plan.vsfCombos()
		if err != nil {
			return nil, err
		}
		if overflow {
			return nil, nil // too many branch combos to root eagerly: drain
		}
		return func() (*ecrpq.AnyK, error) {
			ak := ecrpq.NewAnyK(bud)
			for _, cb := range combos {
				if cb.err != nil {
					return nil, cb.err
				}
				if err := ak.AddQuery(cb.eq, s.db, w); err != nil {
					return nil, err
				}
			}
			return ak, nil
		}, nil
	default:
		return nil, fmt.Errorf("cxrpq: %s is not vstar-free; stream with Semantics \"bounded\" or \"log\"", s.plan.fragment)
	}
}

// streamRunFor builds the producer enumeration for one dispatch. Unranked
// multi-source dispatches (branch combinations, bounded mappings) dedup at
// this layer — each source dedups only within itself; ranked dispatches must
// NOT dedup here (the cursor keeps the minimal cost per tuple instead).
func (s *Session) streamRunFor(bounded bool, k int, ranked bool, weight engine.Weight, bud *engine.Budget) (streamRun, error) {
	if bounded {
		sc, rc, sigma := s.current()
		bp, err := s.plan.boundedPlanFor()
		if err != nil {
			return nil, err
		}
		if run, ok := cachedRun(rc, fmt.Sprintf("bnd\x1f%d\x1ffalse", k), ranked); ok {
			return run, nil
		}
		return func(emit func(t pattern.Tuple, cost int) bool) error {
			e, err := newBoundedEngine(bp, s.db, k, false, nil, sc, sigma)
			if err != nil {
				return err
			}
			e.setBudget(bud)
			e.ranked = ranked
			e.weight = weight
			e.seq = true // yield is called from this goroutine only
			if ranked {
				e.yield = emit
			} else {
				e.yield = dedupEmit(emit)
			}
			_, err = e.run()
			return err
		}, nil
	}
	switch s.plan.kind {
	case kindClassical, kindSimple:
		_, rc, _ := s.current()
		eq, err := s.plan.simpleQuery()
		if err != nil {
			return nil, err
		}
		if run, ok := cachedRun(rc, "eval", ranked); ok {
			return run, nil
		}
		return func(emit func(t pattern.Tuple, cost int) bool) error {
			return ecrpq.EvalStreamW(eq, s.db, bud, ranked, weight, ecrpq.StreamFunc(emit))
		}, nil
	case kindVsf:
		_, rc, _ := s.current()
		combos, overflow, err := s.plan.vsfCombos()
		if err != nil {
			return nil, err
		}
		if run, ok := cachedRun(rc, "vsf", ranked); ok {
			return run, nil
		}
		return func(emit func(t pattern.Tuple, cost int) bool) error {
			if !ranked {
				emit = dedupEmit(emit)
			}
			stopped := false
			wrapped := func(t pattern.Tuple, cost int) bool {
				if !emit(t, cost) {
					stopped = true
					return false
				}
				return true
			}
			if !overflow {
				for _, cb := range combos {
					if cb.err != nil {
						return cb.err
					}
					if err := ecrpq.EvalStreamW(cb.eq, s.db, bud, ranked, weight, wrapped); err != nil {
						return err
					}
					if stopped || bud.Canceled() {
						return nil
					}
				}
				return nil
			}
			c := s.plan.q.CXRE()
			origDefined := c.DefinedVars()
			err := branchCombos(c, func(combo CXRE) error {
				if stopped || bud.Canceled() {
					return errStop
				}
				eq, err := comboToSimpleECRPQ(s.plan.q, combo, origDefined)
				if err != nil {
					return err
				}
				return ecrpq.EvalStreamW(eq, s.db, bud, ranked, weight, wrapped)
			})
			if err == errStop {
				err = nil
			}
			return err
		}, nil
	default:
		return nil, fmt.Errorf("cxrpq: %s is not vstar-free; stream with Semantics \"bounded\" or \"log\"", s.plan.fragment)
	}
}

// cachedRun serves an unranked stream straight from a complete cached result
// of the same evaluation (the session result cache only ever holds complete,
// un-truncated sets), skipping the enumeration entirely. Ranked streams
// cannot use it: cached sets carry no witness costs.
func cachedRun(rc *resultCache, key string, ranked bool) (streamRun, bool) {
	if ranked {
		return nil, false
	}
	v, ok := rc.get(key)
	if !ok {
		return nil, false
	}
	res, ok := v.(*pattern.TupleSet)
	if !ok {
		return nil, false
	}
	return func(emit func(t pattern.Tuple, cost int) bool) error {
		for _, t := range res.Sorted() {
			if !emit(t, 0) {
				return nil
			}
		}
		return nil
	}, true
}

// dedupEmit wraps an emit with tuple-level deduplication for unranked
// multi-source dispatches.
func dedupEmit(emit func(t pattern.Tuple, cost int) bool) func(t pattern.Tuple, cost int) bool {
	seen := map[string]bool{}
	return func(t pattern.Tuple, cost int) bool {
		k := t.Key()
		if seen[k] {
			return true
		}
		seen[k] = true
		return emit(t, cost)
	}
}

// defaultLess is the ranked comparator: witness length ascending, ties in
// lexicographic tuple order (so equal-cost rows stream deterministically).
func defaultLess(a, b Row) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	for i := 0; i < len(a.Tuple) && i < len(b.Tuple); i++ {
		if a.Tuple[i] != b.Tuple[i] {
			return a.Tuple[i] < b.Tuple[i]
		}
	}
	return len(a.Tuple) < len(b.Tuple)
}

// newCursor starts the producer goroutine parked on the first request.
// Exactly one of run and build is non-nil: build selects the incremental
// any-k ranked producer, run the unranked stream or the ranked drain.
func newCursor(bud *engine.Budget, opts StreamOptions, run streamRun, build func() (*ecrpq.AnyK, error)) *Cursor {
	c := &Cursor{
		bud:      bud,
		reqs:     make(chan int),
		pages:    make(chan cursorPage),
		nextWant: 1,
	}
	less := opts.Less
	if less == nil {
		less = defaultLess
	}
	go func() {
		defer close(c.pages)
		want, ok := <-c.reqs
		if !ok {
			return // closed before the first fetch: nothing ran
		}
		if build != nil {
			c.produceAnyK(build, opts.Limit, want)
			return
		}
		if opts.Ranked {
			c.produceRanked(run, less, opts.Limit, want)
			return
		}
		c.produceStream(run, opts.Limit, want)
	}()
	return c
}

// produceAnyK is the incremental ranked producer: rows pop off the any-k
// priority queue in nondecreasing witness cost, each equal-cost run is
// buffered, sorted lexicographically and deduplicated first-seen (exact
// min-cost dedup, since later occurrences cannot be cheaper), and pages
// flow under the same request protocol as the unranked stream — so the
// first row costs one queue expansion chain, not a drain. The emitted
// sequence is identical to produceRanked under defaultLess.
func (c *Cursor) produceAnyK(build func() (*ecrpq.AnyK, error), limit, want int) {
	ak, err := build()
	if err != nil {
		c.pages <- cursorPage{final: true, err: err, truncated: c.bud.Err() != nil}
		return
	}
	var page []Row
	closed := false // consumer closed reqs mid-stream: unwind silently
	send := func(r Row) {
		page = append(page, r)
		if len(page) >= want {
			c.pages <- cursorPage{rows: page}
			page = nil
			var ok bool
			want, ok = <-c.reqs
			if !ok {
				closed = true
			}
		}
	}
	seen := map[string]bool{}
	total, limitHit := 0, false
	var batch []Row
	curCost := 0
	flush := func() {
		sort.SliceStable(batch, func(i, j int) bool { return defaultLess(batch[i], batch[j]) })
		for _, r := range batch {
			k := r.Tuple.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if limit > 0 && total >= limit {
				limitHit = true
				return
			}
			send(r)
			total++
			if closed {
				return
			}
		}
		batch = batch[:0]
	}
	for !closed && !limitHit {
		t, cost, ok := ak.Next()
		if !ok {
			break
		}
		if len(batch) > 0 && cost != curCost {
			flush()
			if closed || limitHit {
				break
			}
		}
		curCost = cost
		batch = append(batch, Row{Tuple: t, Cost: cost})
	}
	if !closed && !limitHit {
		flush()
	}
	if closed {
		return
	}
	trunc := !limitHit && c.bud.Err() != nil
	c.pages <- cursorPage{rows: page, final: true, truncated: trunc}
}

// produceStream is the unranked producer: rows flow to the consumer as the
// enumeration finds them, one page per request, producer parked between
// pages.
func (c *Cursor) produceStream(run streamRun, limit, want int) {
	var batch []Row
	total := 0
	limitHit := false
	emit := func(t pattern.Tuple, cost int) bool {
		batch = append(batch, Row{Tuple: t, Cost: cost})
		total++
		if limit > 0 && total >= limit {
			limitHit = true
			return false
		}
		if len(batch) >= want {
			c.pages <- cursorPage{rows: batch}
			batch = nil
			var ok bool
			want, ok = <-c.reqs
			if !ok {
				return false // Close: unwind; the drain collects the final page
			}
		}
		return true
	}
	err := run(emit)
	trunc := !limitHit && c.bud.Err() != nil
	if errors.Is(err, engine.ErrCanceled) {
		trunc, err = true, nil
	}
	c.pages <- cursorPage{rows: batch, final: true, err: err, truncated: trunc}
}

// produceRanked drains the enumeration keeping the minimal witness cost per
// tuple, orders by the comparator, applies top-k, then serves pages. It is
// the fallback for custom comparators (an arbitrary Less needs the full
// result before any row's position is known); the default comparator takes
// the incremental produceAnyK instead. Truncation is known before the first
// page, so EVERY page carries the flag — a deadline-cut ranked result must
// never be mistaken for a complete top-k mid-pagination.
func (c *Cursor) produceRanked(run streamRun, less func(a, b Row) bool, limit, want int) {
	best := map[string]int{} // tuple key -> index into rows
	var rows []Row
	err := run(func(t pattern.Tuple, cost int) bool {
		k := t.Key()
		if i, ok := best[k]; ok {
			if cost < rows[i].Cost {
				rows[i].Cost = cost
			}
			return true
		}
		best[k] = len(rows)
		rows = append(rows, Row{Tuple: t, Cost: cost})
		return true
	})
	trunc := c.bud.Err() != nil
	if errors.Is(err, engine.ErrCanceled) {
		trunc, err = true, nil
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	idx := 0
	for {
		take := len(rows) - idx
		if take > want {
			take = want
		}
		page := rows[idx : idx+take]
		idx += take
		if idx == len(rows) {
			c.pages <- cursorPage{rows: page, final: true, err: err, truncated: trunc}
			return
		}
		c.pages <- cursorPage{rows: page, truncated: trunc}
		var ok bool
		want, ok = <-c.reqs
		if !ok {
			return
		}
	}
}

// Fetch returns the next page of up to n rows. A short (or empty) page means
// the stream is exhausted — check Err and Truncated then. After Close it
// returns nil.
func (c *Cursor) Fetch(n int) []Row {
	if n <= 0 || c.closed {
		return nil
	}
	var out []Row
	if len(c.buf) > 0 {
		take := n
		if take > len(c.buf) {
			take = len(c.buf)
		}
		out = append(out, c.buf[:take]...)
		c.buf = c.buf[take:]
		n -= take
	}
	for n > 0 && !c.exhausted {
		c.reqs <- n
		p := <-c.pages
		out = append(out, p.rows...)
		n -= len(p.rows)
		if p.truncated {
			// Latched per page, not only on the final one: a deadline-cut
			// ranked drain knows up front, and every page it serves is part
			// of an incomplete result.
			c.truncated = true
		}
		if p.final {
			c.exhausted = true
			c.err = p.err
			close(c.reqs)
			c.reqsClosed = true
		}
	}
	c.rowsOut += int64(len(out))
	return out
}

// Next returns the next row. The underlying page size escalates
// geometrically (1, 4, 16, …, 256), so the first call does the least work
// that can produce a row and a full drain still amortizes the page
// handshakes.
func (c *Cursor) Next() (Row, bool) {
	if len(c.buf) == 0 {
		if c.closed || c.exhausted {
			return Row{}, false
		}
		want := c.nextWant
		if c.nextWant < 256 {
			c.nextWant *= 4
		}
		c.buf = c.Fetch(want)
		c.rowsOut -= int64(len(c.buf)) // recounted as Next hands them out
		if len(c.buf) == 0 {
			return Row{}, false
		}
	}
	r := c.buf[0]
	c.buf = c.buf[1:]
	c.rowsOut++
	return r, true
}

// Close stops the stream: the budget is stopped, the producer unwinds at its
// next poll, and Close blocks until it has exited — after Close returns, no
// cursor goroutine touches the session. Safe to call multiple times and
// after exhaustion.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.bud.Stop()
	if !c.reqsClosed {
		close(c.reqs)
		c.reqsClosed = true
	}
	for p := range c.pages {
		if p.truncated {
			c.truncated = true
		}
		if p.final {
			c.err = p.err
		}
	}
	c.buf = nil
}

// Err returns the evaluation error of an exhausted (or closed) stream, nil
// while rows remain or when the stream ended cleanly. Budget truncation is
// not an error here — see Truncated.
func (c *Cursor) Err() error { return c.err }

// Truncated reports that the enumeration was cut short by the deadline or
// context (not by Limit): the rows streamed are a sound subset of the full
// result. It latches as soon as any fetched page is known to belong to an
// incomplete result — for a deadline-cut ranked drain that is the FIRST
// page, so paginating consumers see the flag without draining to the end.
func (c *Cursor) Truncated() bool { return c.truncated }

// RowsStreamed returns the number of rows handed to the consumer so far.
func (c *Cursor) RowsStreamed() int64 { return c.rowsOut }
