// Quickstart: parse a graph database and a CXRPQ, classify the query's
// fragment, and evaluate it with the strongest complete algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
)

func main() {
	// A small graph database: one edge "from label to" per line.
	db, err := graph.Parse(`
alice a bob
bob   a carol
alice b dave
dave  b erin
carol c erin
`)
	if err != nil {
		log.Fatal(err)
	}

	// G1 of Figure 2 of the paper, in this library's syntax: the string
	// variable $x is bound to a or b on the first edge and reused on the
	// second; the two paths must agree on the symbol.
	q, err := cxrpq.Parse(`
ans(v1, v2)
u v1 : $x{a|b}
u v2 : ($x|c)+
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query fragment:", q.Fragment())

	// G1 is not vstar-free ($x occurs under +), but its images are single
	// symbols, so CXRPQ^≤1 semantics are exact (§1.4 of the paper).
	res, err := cxrpq.EvalBounded(q, db, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d answers:\n", res.Len())
	for _, t := range res.Sorted() {
		fmt.Printf("  (v1=%s, v2=%s)\n", db.Name(t[0]), db.Name(t[1]))
	}

	// A vstar-free query is evaluated completely by cxrpq.Eval.
	q2, err := cxrpq.Parse(`
ans(x, y)
x m : $v{a|b}
m y : $v|c
`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := cxrpq.Eval(q2, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vstar-free query (%s): %d answers\n", q2.Fragment(), res2.Len())
}
