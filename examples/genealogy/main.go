// Genealogy reproduces the Figure 1 examples of the paper on a synthetic
// parent/supervisor graph: arcs (u, p, v) mean "u is a (biological) parent
// of v", arcs (u, s, v) mean "v is u's PhD-supervisor". The four CRPQs
// G1–G4 of Figure 1 are evaluated with the CRPQ engine.
//
//	go run ./examples/genealogy
package main

import (
	"fmt"
	"log"

	"cxrpq/internal/crpq"
	"cxrpq/internal/workload"
)

func main() {
	db := workload.Genealogy(42, 40)
	fmt.Printf("genealogy: %d persons, %d arcs\n", db.NumNodes(), db.NumEdges())

	queries := []struct{ name, desc, src string }{
		{"G1", "v1's child was supervised by v2's parent",
			"ans(v1, v2)\nv1 m : p\nm w : s\nv2 w : p"},
		{"G2", "v1 is a biological ancestor or academical descendant of v2",
			"ans(v1, v2)\nv1 v2 : p+|s+"},
		{"G3", "v1 has a biological ancestor that is also their academical ancestor",
			"ans(v1)\nz v1 : p+\nz v1 : s+"},
		{"G4", "v1 and v2 are biologically and academically related",
			"ans(v1, v2)\nz1 v1 : p+\nz1 v2 : p+\nz2 v1 : s+\nz2 v2 : s+"},
	}
	for _, qc := range queries {
		q, err := crpq.Parse(qc.src)
		if err != nil {
			log.Fatal(err)
		}
		res, err := q.Eval(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %d answers\n", qc.name, qc.desc, res.Len())
		for i, t := range res.Sorted() {
			if i == 3 {
				fmt.Println("   ...")
				break
			}
			fmt.Print("   (")
			for j, v := range t {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Print(db.Name(v))
			}
			fmt.Println(")")
		}
	}
}
