// Explain demonstrates witness extraction (the path-extraction capability
// sketched in §8 of the paper): instead of only the matched node tuple, the
// library reconstructs one full matching morphism — the matched path labels
// per query edge and the images of all string variables.
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"log"
	"sort"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
)

func main() {
	// A tiny social graph: follows (f) and mentions (m).
	db, err := graph.Parse(`
ana  f bob
bob  m cem
cem  f ana
ana  m dia
dia  f bob
`)
	if err != nil {
		log.Fatal(err)
	}

	// Two paths from two different starting points must use the same
	// two-step interaction pattern $p (e.g. both "fm" or both "mf").
	q, err := cxrpq.Parse(`
ans(a, b)
a z : $p{[fm][fm]}
b z : $p
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fragment:", q.Fragment())

	res, err := cxrpq.Eval(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d answers\n", res.Len())

	ex, found, err := cxrpq.ExplainVsf(q, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		fmt.Println("no match")
		return
	}
	fmt.Println("one witness:")
	var vars []string
	for v := range ex.NodeOf {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		fmt.Printf("  node %s -> %s\n", v, db.Name(ex.NodeOf[v]))
	}
	for i, w := range ex.Words {
		fmt.Printf("  edge %d matched word %q\n", i, w)
	}
	fmt.Printf("  shared pattern $p = %q\n", ex.Images["p"])
}
