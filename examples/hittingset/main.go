// Hittingset demonstrates the Theorem 7 reduction (Figure 4 of the paper)
// end to end: a Hitting Set instance is compiled into a graph database and
// a Boolean single-edge CXRPQ^≤1, evaluated with the Theorem 6 algorithm,
// and cross-checked against a brute-force solver.
//
//	go run ./examples/hittingset
package main

import (
	"fmt"
	"log"

	"cxrpq/internal/reductions"
)

func main() {
	instances := []*reductions.HittingSetInstance{
		{N: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1},
		{N: 3, Sets: [][]int{{0}, {2}}, K: 1},
		{N: 3, Sets: [][]int{{0}, {2}}, K: 2},
	}
	for _, h := range instances {
		db := h.ToGraphDB()
		q, err := h.ToCXRPQ()
		if err != nil {
			log.Fatal(err)
		}
		viaQuery, err := h.SolveViaReduction()
		if err != nil {
			log.Fatal(err)
		}
		direct := h.HasHittingSet()
		fmt.Printf("U=%d sets=%v k=%d  |D|=%d |q|=%d  reduction=%v  brute-force=%v  agree=%v\n",
			h.N, h.Sets, h.K, db.Size(), q.Size(), viaQuery, direct, viaQuery == direct)
	}
}
