// Messagenet reproduces the hidden-communication scenario that motivates G3
// of Figure 2 in the paper: nodes are persons, arcs are text messages; some
// individuals hide their direct communication by encoding messages as
// sequences of simple messages routed through intermediaries. G3 finds
// pairs (v1, v2) that exchange message sequences x and y (of length ≥ 2)
// and both reach a mutual contact by repeating those sequences.
//
//	go run ./examples/messagenet
package main

import (
	"fmt"
	"log"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/workload"
)

func main() {
	// 12 persons with random chatter, plus 2 hidden pairs communicating via
	// secret 2-message sequences repeated twice towards a mutual contact.
	db := workload.MessageNetwork(7, 12, "ab", 2, 2, 2)
	fmt.Printf("message network: %d persons, %d messages\n", db.NumNodes(), db.NumEdges())

	// G3 of Figure 2: x and y are message sequences of length ≥ 2; the
	// paths to the mutual friend w are repetitions of those sequences.
	q, err := cxrpq.Parse(`
ans(v1, v2)
v1 v2 : $x{..+}
v2 v1 : $y{..+}
v1 w : ($x|$y)+
v2 w : ($x|$y)+
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query fragment:", q.Fragment(), "(variables under +: needs bounded-image semantics)")

	// The paper suggests reading G3 as a CXRPQ^≤k: secret sequences of
	// bounded length, but unboundedly many repetitions (§1.4).
	res, err := cxrpq.EvalBounded(q, db, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d suspicious pairs:\n", res.Len())
	for _, t := range res.Sorted() {
		fmt.Printf("  %s <-> %s\n", db.Name(t[0]), db.Name(t[1]))
	}
}
