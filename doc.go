// Package repro is a from-scratch Go reproduction of
//
//	Markus L. Schmid, "Conjunctive Regular Path Queries with String
//	Variables", PODS 2020 (arXiv:1912.09326).
//
// The module path is cxrpq (see go.mod); build and test with
// `go build ./... && go test ./...` from a clean checkout.
//
// The implementation lives under internal/:
//
//	internal/automata    NFAs (products, emptiness, enumeration) and the
//	                     on-the-fly subset-construction cache (SubsetCache)
//	                     that interns state sets as dense int ids
//	internal/xregex      regular expressions with backreferences: AST,
//	                     parser, ref-word semantics, fragment classifiers,
//	                     compilation, Lemma 10 instantiation machinery
//	internal/graph       graph databases (§2.2) with a label-indexed CSR
//	                     adjacency view (Index), per-label statistics
//	                     (Stats), a revision-cached alphabet and a
//	                     degree-balanced shard map (Partition) for the
//	                     sharded reachability kernel, all
//	                     delta-maintained: batched mutations (Delta /
//	                     ApplyDelta) are recorded in a per-revision log,
//	                     and insert-only windows extend the index in place
//	                     (shared CSR base + overlay), recompute only
//	                     touched labels' stats and revalidate the alphabet
//	                     instead of rebuilding (MaintStats counts the
//	                     retained-vs-rebuilt paths); DB.Snapshot pins a
//	                     revision as an immutable read view sharing the
//	                     live DB's storage (persistent name layers, pinned
//	                     CSR spans, pre-warmed derived caches), and
//	                     store.go is the durability layer: an append-only
//	                     write-ahead log of framed Delta batches
//	                     (length + CRC32 + revision-windowed payload,
//	                     fsync per SyncEvery) with automatic checkpoints,
//	                     torn-tail-tolerant crash recovery (OpenStore),
//	                     log-tailing read-only followers (OpenFollower)
//	                     and opaque application side records
//	                     (AppendSide/SideRecords, sentinel-framed so old
//	                     logs parse unchanged) behind the serving layer's
//	                     restart-surviving parked cursors
//	internal/engine      the product-reachability core shared by every
//	                     evaluation path: integer-interned graph×NFA BFS
//	                     with bitset visited sets (Reach/ReachBits), a
//	                     bounded worker pool (Fan/ReachAll), and the
//	                     sharded multi-source kernel (ReachBatch): a
//	                     level-synchronous frontier-exchange BFS over the
//	                     graph×automaton product with one goroutine per
//	                     degree-balanced shard, MS-BFS source batching (64
//	                     sources per machine word) and per-shard exchange
//	                     counters; relation construction in ecrpq runs
//	                     through it instead of the per-source fan; the
//	                     kernels expose BFS level indices (shortest-witness
//	                     distances, ReachLevels / BatchResult.Levs),
//	                     accept a pluggable edge-weight function (Weight;
//	                     ReachLevelsW switches the level computation from
//	                     BFS to a heap Dijkstra over the same product) and
//	                     poll a per-query Budget (deadline, row cap,
//	                     context cancellation, Fork for
//	                     first-witness-cancels-siblings fans) at level
//	                     granularity
//	internal/pattern     graph patterns / conjunctive path queries (§2.3)
//	internal/planner     the cost-based query-planning layer: per-atom
//	                     cardinality estimation (first/last-symbol NFA
//	                     shapes × graph.Stats, exact counts for
//	                     materialized relations), a greedy join-order
//	                     search with bound-variable selectivity
//	                     propagation (Order), a semijoin domain
//	                     reduction (Reduce), and the v2 rewrite pipeline:
//	                     containment-based query minimization (Minimize,
//	                     with LangContains deciding L' ⊆ L by a bounded
//	                     BFS over the product of the atoms' SubsetCache
//	                     determinizations) and GYO acyclicity detection
//	                     with join-tree construction and a free-connex
//	                     test (BuildJoinTree / FreeConnex) feeding the
//	                     two-pass Yannakakis semijoin program in ecrpq;
//	                     every join in the stack consults it, and
//	                     SetEnabled(false) / SetMinimize / SetYannakakis
//	                     restore the earlier behaviours as differential
//	                     baselines
//	internal/crpq        CRPQs (Lemma 1 evaluation)
//	internal/ecrpq       ECRPQs with regular relations; ECRPQ^er is the
//	                     synchronized-product evaluation core
//	internal/cxrpq       the paper's contribution: CXRPQs, their fragments,
//	                     evaluation algorithms (Thms 2/5/6, Cor 1), normal
//	                     form (Lemmas 4-6, 8), translations (Lemmas 12-14);
//	                     bounded.go is the prefix-incremental CXRPQ^≤k
//	                     engine (shared atom-relation cache, relaxed-atom
//	                     subtree pruning, parallel mapping enumeration);
//	                     plan.go/session.go are the prepared-query
//	                     subsystem: Prepare(q) compiles an immutable Plan
//	                     (fragment class, bounded schedule, fragment
//	                     translations), Plan.Bind(db) yields a
//	                     concurrency-safe Session owning the per-database
//	                     caches (atom relations, feasibility memo, result
//	                     cache, the physical plan of the conjunctive
//	                     skeleton) with revision-checked, delta-maintained
//	                     invalidation: insert-only mutations retain or
//	                     frontier-extend cached relations per entry and
//	                     keep the feasibility memo (Session.ApplyDelta /
//	                     Refresh; removals and new labels flush), hardened
//	                     by the metamorphic mutation-sequence harness in
//	                     mutation_diff_test.go; every one-shot entry point
//	                     is a thin wrapper over them,
//	                     Session.PlanReport exposes the chosen join order
//	                     with estimated cardinalities, and Session.Stream
//	                     (stream.go) is the pull-based any-k surface: a
//	                     Cursor serving Fetch/Next pages from a lazy
//	                     backtracking join (atom relations computed in
//	                     growing source chunks, so the first row costs one
//	                     shallow probe), with per-stream budgets
//	                     (deadline/limit/context cancellation), ranked
//	                     best-witness-first order produced by the
//	                     incremental any-k enumerator (ecrpq/anyk.go: a
//	                     priority queue over partial assignments keyed by
//	                     cost plus an admissible per-constraint lower
//	                     bound, Lawler child/sibling expansion, memoized
//	                     kernel-batched extension lists — the first row
//	                     streams out without draining the answer set)
//	                     over unit or pluggable per-label edge weights,
//	                     and a producer provably parked between fetches
//	                     so ApplyDelta interleaves with open cursors
//	internal/oracle      brute-force reference implementations backing the
//	                     conformance tests
//	internal/reductions  executable hardness reductions (Thms 1/3/7)
//	internal/separations Figure 5 separating queries and witness families
//	internal/workload    synthetic graph generators (incl. the gMark-style
//	                     skewed GMark), the random query
//	                     generator (RandomQuery) behind the differential
//	                     fuzz harness, and the MutationStream delta
//	                     workload behind the incremental-update experiment
//	internal/exp         the E1-E26 experiment harness (see DESIGN.md)
//
// cmd/cxrpq-serve is the concurrent HTTP/JSON evaluation server over the
// prepared-query subsystem: a per-database pool of prepared sessions,
// MVCC reads (every /query, /plan and cursor fetch runs lock-free on the
// latest published snapshot epoch, loaded through one atomic pointer),
// pull-based streaming /query with limit/cursor pagination, deadline_ms
// budgets (expiry or client disconnect returns the rows found so far with
// "truncated" on every page of the cut stream) and ranked
// best-witness-first order served incrementally with optional per-label
// "weights" — on a durable database parked ranked cursors are persisted
// as WAL side records and resume at the exact delivered row after a
// restart — a two-tier
// in-flight limiter that degrades to shed partial answers before
// rejecting with 429, batched /update deltas (additions and removals)
// that append to the write-ahead log before acknowledging and fork the
// pooled sessions' caches incrementally off the reader path (invalidating
// parked cursors), a /plan debug endpoint reporting the planner-chosen
// join order with estimated cardinalities plus the planner-v2 rewrite
// report (minimized atoms, acyclicity, free-connexness, join tree,
// strategy), and /stats counters for
// retained-vs-rebuilt cache entries, time-to-first-row and rows-streamed
// telemetry, the sharded kernel's per-shard edge/exchange volumes, and the
// store's WAL/checkpoint/recovery counters; -data-dir makes every
// database durable (recover on startup, WAL-append-then-ack), -follower
// serves the same directories read-only by tailing the leader's log,
// -shards pins the kernel shard count and -pprof mounts net/http/pprof
// (see the quickstart and the PR 8 durability section in
// internal/README.md).
//
// internal/README.md describes the architecture of the hot path and the
// Plan/Session lifecycle. bench_test.go in this directory exposes every
// experiment as a Go benchmark; cmd/cxrpq-exp prints the tables recorded in
// EXPERIMENTS.md and, with -json, emits the machine-readable benchmark
// report tracked as BENCH_engine.json.
package repro
