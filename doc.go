// Package repro is a from-scratch Go reproduction of
//
//	Markus L. Schmid, "Conjunctive Regular Path Queries with String
//	Variables", PODS 2020 (arXiv:1912.09326).
//
// The implementation lives under internal/:
//
//	internal/automata    NFAs (products, emptiness, enumeration)
//	internal/xregex      regular expressions with backreferences: AST,
//	                     parser, ref-word semantics, fragment classifiers,
//	                     compilation, Lemma 10 instantiation machinery
//	internal/graph       graph databases (§2.2)
//	internal/pattern     graph patterns / conjunctive path queries (§2.3)
//	internal/crpq        CRPQs (Lemma 1 evaluation)
//	internal/ecrpq       ECRPQs with regular relations; ECRPQ^er is the
//	                     synchronized-product evaluation core
//	internal/cxrpq       the paper's contribution: CXRPQs, their fragments,
//	                     evaluation algorithms (Thms 2/5/6, Cor 1), normal
//	                     form (Lemmas 4-6, 8), translations (Lemmas 12-14)
//	internal/reductions  executable hardness reductions (Thms 1/3/7)
//	internal/separations Figure 5 separating queries and witness families
//	internal/workload    synthetic graph generators
//	internal/exp         the E1-E18 experiment harness (see DESIGN.md)
//
// bench_test.go in this directory exposes every experiment as a Go
// benchmark; cmd/cxrpq-exp prints the tables recorded in EXPERIMENTS.md.
package repro
