// Package repro is a from-scratch Go reproduction of
//
//	Markus L. Schmid, "Conjunctive Regular Path Queries with String
//	Variables", PODS 2020 (arXiv:1912.09326).
//
// The module path is cxrpq (see go.mod); build and test with
// `go build ./... && go test ./...` from a clean checkout.
//
// The implementation lives under internal/:
//
//	internal/automata    NFAs (products, emptiness, enumeration) and the
//	                     on-the-fly subset-construction cache (SubsetCache)
//	                     that interns state sets as dense int ids
//	internal/xregex      regular expressions with backreferences: AST,
//	                     parser, ref-word semantics, fragment classifiers,
//	                     compilation, Lemma 10 instantiation machinery
//	internal/graph       graph databases (§2.2) with a label-indexed CSR
//	                     adjacency view (Index) built once per DB revision
//	internal/engine      the product-reachability core shared by every
//	                     evaluation path: integer-interned graph×NFA BFS
//	                     with bitset visited sets and a bounded worker pool
//	internal/pattern     graph patterns / conjunctive path queries (§2.3)
//	internal/crpq        CRPQs (Lemma 1 evaluation)
//	internal/ecrpq       ECRPQs with regular relations; ECRPQ^er is the
//	                     synchronized-product evaluation core
//	internal/cxrpq       the paper's contribution: CXRPQs, their fragments,
//	                     evaluation algorithms (Thms 2/5/6, Cor 1), normal
//	                     form (Lemmas 4-6, 8), translations (Lemmas 12-14);
//	                     bounded.go is the prefix-incremental CXRPQ^≤k
//	                     engine (shared atom-relation cache, relaxed-atom
//	                     subtree pruning, parallel mapping enumeration);
//	                     plan.go/session.go are the prepared-query
//	                     subsystem: Prepare(q) compiles an immutable Plan
//	                     (fragment class, bounded schedule, fragment
//	                     translations), Plan.Bind(db) yields a
//	                     concurrency-safe Session owning the per-database
//	                     caches (atom relations, feasibility memo, result
//	                     cache) with revision-checked invalidation; every
//	                     one-shot entry point is a thin wrapper over them
//	internal/oracle      brute-force reference implementations backing the
//	                     conformance tests
//	internal/reductions  executable hardness reductions (Thms 1/3/7)
//	internal/separations Figure 5 separating queries and witness families
//	internal/workload    synthetic graph generators and the random query
//	                     generator (RandomQuery) behind the differential
//	                     fuzz harness
//	internal/exp         the E1-E19 experiment harness (see DESIGN.md)
//
// cmd/cxrpq-serve is the concurrent HTTP/JSON evaluation server over the
// prepared-query subsystem: a per-database pool of prepared sessions, a
// bounded in-flight limiter, and /update mutations with automatic session
// invalidation (see the quickstart in internal/README.md).
//
// internal/README.md describes the architecture of the hot path and the
// Plan/Session lifecycle. bench_test.go in this directory exposes every
// experiment as a Go benchmark; cmd/cxrpq-exp prints the tables recorded in
// EXPERIMENTS.md and, with -json, emits the machine-readable benchmark
// report tracked as BENCH_engine.json.
package repro
