module cxrpq

go 1.24
