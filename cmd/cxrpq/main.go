// Command cxrpq evaluates a CXRPQ (or CRPQ) on a graph database.
//
// Usage:
//
//	cxrpq -graph db.txt -query q.txt [-algo auto|vsf|bounded|log|any] [-k 3]
//
// The graph format is one edge per line: "from label to". The query format:
//
//	ans(x, y)
//	x y : a$v{a|b}b*
//	y z : $v+
//
// The algorithm is chosen per the query's fragment by default (auto):
// CRPQ/simple/vstar-free queries get their complete algorithms; other
// queries require -algo bounded/log/any with the CXRPQ^≤k / CXRPQ^log
// semantics of §6 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
)

func main() {
	graphPath := flag.String("graph", "", "path to the graph database file")
	queryPath := flag.String("query", "", "path to the query file")
	algo := flag.String("algo", "auto", "evaluation algorithm: auto, vsf, bounded, log, any")
	k := flag.Int("k", 3, "image bound for -algo bounded/any")
	explain := flag.Bool("explain", false, "print one witness (matching words and variable images)")
	flag.Parse()
	if *graphPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *queryPath, *algo, *k, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "cxrpq:", err)
		os.Exit(1)
	}
}

func run(graphPath, queryPath, algo string, k int, explain bool) error {
	gf, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	db, err := graph.Read(gf)
	if err != nil {
		return err
	}
	qb, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := cxrpq.Parse(string(qb))
	if err != nil {
		return err
	}
	fmt.Printf("fragment: %s  |q|=%d  |D|=%d\n", q.Fragment(), q.Size(), db.Size())

	if explain {
		var ex *cxrpq.Explanation
		var found bool
		if q.IsVStarFree() {
			ex, found, err = cxrpq.ExplainVsf(q, db, nil)
		} else {
			ex, found, err = cxrpq.ExplainBounded(q, db, k, nil)
		}
		if err != nil {
			return err
		}
		if !found {
			fmt.Println("no match to explain")
			return nil
		}
		fmt.Println("witness:")
		for v, n := range ex.NodeOf {
			fmt.Printf("  node %s = %s\n", v, db.Name(n))
		}
		for i, w := range ex.Words {
			fmt.Printf("  edge %d word = %q\n", i, w)
		}
		for x, img := range ex.Images {
			fmt.Printf("  $%s = %q\n", x, img)
		}
		return nil
	}

	var res *pattern.TupleSet
	switch algo {
	case "auto":
		res, err = cxrpq.Eval(q, db)
	case "vsf":
		res, err = cxrpq.EvalVsf(q, db)
	case "bounded":
		res, err = cxrpq.EvalBounded(q, db, k)
	case "log":
		res, err = cxrpq.EvalLog(q, db)
	case "any":
		var capped bool
		res, capped, err = cxrpq.EvalAny(q, db, k)
		if capped {
			fmt.Println("note: image cap reached; matches with longer variable images may be missing")
		}
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}
	if err != nil {
		return err
	}
	if q.Pattern.IsBoolean() {
		if res.Len() > 0 {
			fmt.Println("D |= q: true")
		} else {
			fmt.Println("D |= q: false")
		}
		return nil
	}
	fmt.Printf("%d answer tuple(s):\n", res.Len())
	for _, t := range res.Sorted() {
		for i, v := range t {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(db.Name(v))
		}
		fmt.Println()
	}
	return nil
}
