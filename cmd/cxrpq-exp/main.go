// Command cxrpq-exp runs the paper-reproduction experiment suite (the
// E1–E16 index in DESIGN.md) and prints one table per experiment. The
// outputs recorded in EXPERIMENTS.md were produced by this command.
//
// With -json the per-experiment wall-clock times are additionally written
// as a machine-readable report (the repo tracks one as BENCH_engine.json
// so PRs can diff the perf trajectory).
//
// Usage:
//
//	cxrpq-exp [-scale 1] [-only E5,E11] [-json BENCH_engine.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxrpq/internal/exp"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = fast)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark results to this file")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := false
	tts := exp.AllTimed(*scale)
	for _, tt := range tts {
		if len(want) > 0 && !want[strings.ToUpper(tt.Table.ID)] {
			continue
		}
		fmt.Println(tt.Table.Render())
		if tt.Table.Err != nil {
			failed = true
		}
	}
	if *jsonPath != "" {
		if err := exp.WriteBenchJSON(*jsonPath, tts, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
