// Command cxrpq-exp runs the paper-reproduction experiment suite (the
// E1–E16 index in DESIGN.md) and prints one table per experiment. The
// outputs recorded in EXPERIMENTS.md were produced by this command.
//
// Usage:
//
//	cxrpq-exp [-scale 1] [-only E5,E11]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxrpq/internal/exp"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = fast)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := false
	for _, t := range exp.All(*scale) {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] {
			continue
		}
		fmt.Println(t.Render())
		if t.Err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
