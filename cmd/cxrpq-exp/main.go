// Command cxrpq-exp runs the paper-reproduction experiment suite (the
// E1–E16 index in DESIGN.md) and prints one table per experiment. The
// outputs recorded in EXPERIMENTS.md were produced by this command.
//
// With -json the per-experiment wall-clock times are additionally written
// as a machine-readable report (the repo tracks one as BENCH_engine.json
// so PRs can diff the perf trajectory). -cpuprofile/-memprofile write
// runtime/pprof profiles of the run, the intended workflow for tuning the
// sharded reachability kernel (engine.SetShards) against E22.
//
// Usage:
//
//	cxrpq-exp [-scale 1] [-only E5,E11] [-json BENCH_engine.json] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"cxrpq/internal/exp"
)

func main() {
	os.Exit(run())
}

// run carries the whole command so the profile-writing defers execute
// before the process exits (os.Exit in main would skip them).
func run() int {
	scale := flag.Int("scale", 1, "workload scale factor (1 = fast)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark results to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
			}
		}()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := false
	tts := exp.AllTimed(*scale)
	for _, tt := range tts {
		if len(want) > 0 && !want[strings.ToUpper(tt.Table.ID)] {
			continue
		}
		fmt.Println(tt.Table.Render())
		if tt.Table.Err != nil {
			failed = true
		}
	}
	if *jsonPath != "" {
		if err := exp.WriteBenchJSON(*jsonPath, tts, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "cxrpq-exp:", err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
