package main

// Regression tests for the cursor-registry hardening: a crypto/rand failure
// must fail the one request (500) instead of panicking the handler
// goroutine, and a non-positive capacity must mean "unbounded" instead of
// spinning the eviction loop forever on an empty registry.

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestCursorTokenEntropyFailure(t *testing.T) {
	old := randRead
	randRead = func([]byte) (int, error) { return 0, errors.New("entropy source unavailable") }
	defer func() { randRead = old }()

	srv, ts := testServer(t)
	// limit=1 on a 3-row answer set wants to park a cursor; minting its
	// token fails, which must surface as a 500 — not a panic.
	code, out := postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a|b","limit":1}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d (%v), want 500", code, out)
	}
	if srv.cursors.open() != 0 {
		t.Fatalf("failed put leaked %d cursors", srv.cursors.open())
	}

	// The server keeps serving: restore entropy, same query succeeds.
	randRead = old
	code, out = postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a|b","limit":1}`)
	if code != http.StatusOK || out["cursor"] == nil {
		t.Fatalf("after entropy recovery: %d %v", code, out)
	}
}

func TestCursorRegistryUnboundedCap(t *testing.T) {
	cr := newCursorRegistry(0, time.Minute)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			if _, _, err := cr.put(&cursorRec{}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("put spun in the eviction loop with cap <= 0")
	}
	if cr.open() != 3 {
		t.Fatalf("registry holds %d records, want 3 (cap<=0 means unbounded)", cr.open())
	}
}

func TestCursorRegistryEvictsOldest(t *testing.T) {
	cr := newCursorRegistry(1, time.Minute)
	first := &cursorRec{closed: true} // closed: evicting it must not touch a nil cursor
	if _, _, err := cr.put(first); err != nil {
		t.Fatal(err)
	}
	_, evicted, err := cr.put(&cursorRec{closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != first {
		t.Fatalf("capacity eviction returned %v, want the first record", evicted)
	}
	if cr.open() != 1 {
		t.Fatalf("registry holds %d records, want 1", cr.open())
	}
}
